package chopper

import (
	"errors"
	"testing"

	"chopper/internal/transpose"
)

const relAdderSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func compileRel(t *testing.T, harden bool) *Kernel {
	t.Helper()
	k, err := Compile(relAdderSrc, Options{Harden: harden})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// Identical Config + seed must reproduce identical corruption, lane for
// lane — the acceptance bar for the deterministic fault models.
func TestFaultInjectionDeterministic(t *testing.T) {
	k := compileRel(t, false)
	const lanes = 64
	cfg := FaultConfig{TRAFlipRate: 0.05, CopyFlipRate: 0.02, RetentionRate: 0.1, RefreshOps: 32}

	inputs := map[string][]uint64{"a": make([]uint64, lanes), "b": make([]uint64, lanes)}
	for l := 0; l < lanes; l++ {
		inputs["a"][l] = uint64(l * 7 % 256)
		inputs["b"][l] = uint64(l * 13 % 256)
	}
	run := func() (*RunResult, error) {
		rows := map[string][][]uint64{
			"a": transpose.ToVertical(inputs["a"], 8, lanes),
			"b": transpose.ToVertical(inputs["b"], 8, lanes),
		}
		return k.RunRowsUnderFault(rows, lanes, cfg, 99)
	}
	r1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Faults != r2.Faults {
		t.Fatalf("fault counts diverged: %+v vs %+v", r1.Faults, r2.Faults)
	}
	if r1.Faults.Total() == 0 {
		t.Fatal("no faults injected at these rates (test is vacuous)")
	}
	for name, rows1 := range r1.Rows {
		for b := range rows1 {
			for w := range rows1[b] {
				if rows1[b][w] != r2.Rows[name][b][w] {
					t.Fatalf("output %s bit %d word %d diverged: %#x vs %#x",
						name, b, w, rows1[b][w], r2.Rows[name][b][w])
				}
			}
		}
	}
}

// The robustness win: a guaranteed single TRA fault breaks the unhardened
// adder, while the TMR-hardened build of the same source survives it.
func TestHardenSurvivesSingleFault(t *testing.T) {
	plain := compileRel(t, false)
	hard := compileRel(t, true)

	cfg := FaultConfig{TRAFlipRate: 1, MaxFaults: 1}
	err := plain.VerifyUnderFault(4, 17, cfg)
	if err == nil {
		t.Fatal("unhardened kernel survived a guaranteed TRA fault")
	}
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("corruption error %v does not match ErrVerify", err)
	}
	if err := hard.VerifyUnderFault(4, 17, cfg); err != nil {
		t.Fatalf("hardened kernel corrupted by a single TRA fault: %v", err)
	}
}

// Hardening must not change fault-free semantics.
func TestHardenedKernelVerifies(t *testing.T) {
	hard := compileRel(t, true)
	if err := hard.Verify(3, 2); err != nil {
		t.Fatal(err)
	}
	if hard.Stats().APs <= compileRel(t, false).Stats().APs {
		t.Fatal("hardened kernel is not larger than the plain one")
	}
}

// The reliability harness quantifies the trade: hardened kernels trade
// latency (TimeNs overhead) for a lower silent-data-corruption rate.
func TestReliabilityReport(t *testing.T) {
	plain := compileRel(t, false)
	hard := compileRel(t, true)

	cfgs := []FaultConfig{
		{},                             // control point: no faults
		{TRAFlipRate: 1, MaxFaults: 1}, // guaranteed single fault
	}
	const trials = 6
	pr, err := plain.Reliability(trials, 41, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := hard.Reliability(trials, 41, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	if pr.Points[0].SDCRuns != 0 || hr.Points[0].SDCRuns != 0 {
		t.Fatalf("SDC without faults: plain %d, hardened %d", pr.Points[0].SDCRuns, hr.Points[0].SDCRuns)
	}
	if pr.Points[1].SDCRate() == 0 {
		t.Fatal("unhardened kernel shows no SDC under guaranteed single faults")
	}
	if hr.Points[1].SDCRuns != 0 {
		t.Fatalf("hardened kernel shows SDC under single faults: %d/%d runs",
			hr.Points[1].SDCRuns, hr.Points[1].Runs)
	}
	if hr.Points[1].Injected.Total() == 0 {
		t.Fatal("no faults injected into the hardened kernel (survival is vacuous)")
	}
	if hr.TimeNs <= pr.TimeNs {
		t.Fatalf("TMR latency overhead missing: hardened %.1fns <= plain %.1fns", hr.TimeNs, pr.TimeNs)
	}
	t.Logf("TMR overhead: %.2fx latency, SDC %0.2f -> %0.2f",
		hr.TimeNs/pr.TimeNs, pr.Points[1].SDCRate(), hr.Points[1].SDCRate())
}
