// Wavelet Tree Construction: encode a document strip through an unbalanced
// wavelet tree on the simulated PUD hardware and verify the encoding
// against a plain Go implementation.
//
// Run with: go run ./examples/wavelettree
package main

import (
	"fmt"
	"log"
	"math/rand"

	chopper "chopper"
	"chopper/internal/workloads"
)

func main() {
	const sigma = 64
	spec := workloads.Build("WTC", sigma)
	fmt.Printf("workload: %s — %s\n", spec.Name, spec.Desc)

	k, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.SIMDRAM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d micro-ops, %d D rows\n\n", len(k.Prog().Ops), k.Prog().DRowsUsed)

	// One lane = one strip of sigma/2 characters. Fill 16 lanes randomly.
	lanes := 16
	chars := sigma / 2
	rng := rand.New(rand.NewSource(7))
	in := make(map[string][]uint64, chars)
	for i := 0; i < chars; i++ {
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = uint64(rng.Intn(2 * sigma))
		}
		in[fmt.Sprintf("c__%d", i)] = vals
	}

	out, err := k.Run(in, lanes)
	if err != nil {
		log.Fatal(err)
	}

	// Verify lane 0's strip against the host-side encoder.
	levels := 0
	for 1<<levels < sigma {
		levels++
	}
	mismatches := 0
	for i := 0; i < chars; i++ {
		c := in[fmt.Sprintf("c__%d", i)][0]
		want := hostEncode(c, sigma)
		for l := 0; l < levels; l++ {
			got := out[fmt.Sprintf("b__%d", i*levels+l)][0]
			if got != want[l] {
				mismatches++
			}
		}
	}
	fmt.Printf("lane 0: %d characters x %d levels verified, %d mismatches\n", chars, levels, mismatches)
	c0 := in["c__0"][0]
	fmt.Printf("example: symbol %d encodes as %v\n", c0, hostEncode(c0, sigma))
	if mismatches > 0 {
		log.Fatal("encoding mismatch")
	}
}

// hostEncode is the reference unbalanced wavelet-tree encoder.
func hostEncode(c uint64, sigma int) []uint64 {
	levels := 0
	for 1<<levels < sigma {
		levels++
	}
	span := 2 * sigma
	cuts := make([]int, levels)
	for l := 0; l < levels; l++ {
		cuts[l] = span * 5 / 8
		if cuts[l] < 1 {
			cuts[l] = 1
		}
		span -= cuts[l]
		if span < 2 {
			span = 2
		}
	}
	bits := make([]uint64, levels)
	lo := uint64(0)
	for l := 0; l < levels; l++ {
		med := (lo + uint64(cuts[l])) & 1023
		if c >= med {
			bits[l] = 1
			lo = med
		}
	}
	return bits
}
