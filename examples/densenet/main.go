// DenseNet: compile a binary dense block (the paper's DNN workload) for
// all three PUD architectures, run one tile, and compare code statistics
// between CHOPPER and the hands-tuned methodology.
//
// Run with: go run ./examples/densenet
package main

import (
	"fmt"
	"log"
	"math/rand"

	chopper "chopper"
	"chopper/internal/workloads"
)

func main() {
	spec := workloads.Build("DenseNet", 16)
	fmt.Printf("workload: %s — %s\n\n", spec.Name, spec.Desc)

	lanes := 64
	rng := rand.New(rand.NewSource(42))
	x := make([]uint64, lanes)
	for i := range x {
		x[i] = rng.Uint64() & 0xF
	}

	for _, target := range []chopper.Target{chopper.Ambit, chopper.ELP2IM, chopper.SIMDRAM} {
		k, err := chopper.Compile(spec.Src, chopper.Options{Target: target})
		if err != nil {
			log.Fatal(err)
		}
		kb, err := chopper.CompileBaseline(spec.Src, chopper.Options{Target: target})
		if err != nil {
			log.Fatal(err)
		}
		out, err := k.Run(map[string][]uint64{"x0": x}, lanes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v CHOPPER: %6d ops, %3d rows | hands-tuned: %6d ops, %3d rows | y[0..7]=%v\n",
			target,
			len(k.Prog().Ops), k.Prog().DRowsUsed,
			len(kb.Prog().Ops), kb.Prog().DRowsUsed,
			out["y"][:8])
	}

	fmt.Println("\nThe dense block keeps every feature live for later layers (feature")
	fmt.Println("reuse), which is why the hands-tuned full-width buffering needs so many")
	fmt.Println("more rows — and why larger blocks push it into SSD spilling.")
}
