// Significance Weighting: normalize wide per-user statistics (the
// recommender-system workload) with 128-bit elements, exercising the
// wide-operand path of the public API.
//
// Run with: go run ./examples/sigweight
package main

import (
	"fmt"
	"log"
	"math/rand"

	chopper "chopper"
	"chopper/internal/workloads"
)

func main() {
	spec := workloads.Build("SW", 128)
	fmt.Printf("workload: %s — %s\n\n", spec.Name, spec.Desc)

	k, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.SIMDRAM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d micro-ops, %d D rows\n\n", len(k.Prog().Ops), k.Prog().DRowsUsed)

	lanes := 6
	rng := rand.New(rand.NewSource(3))
	n := make([]uint64, lanes)   // items rated per user
	s := make([][]uint64, lanes) // 128-bit statistics, 2 limbs
	for l := 0; l < lanes; l++ {
		n[l] = uint64(rng.Intn(100))
		s[l] = []uint64{rng.Uint64(), rng.Uint64() >> 16}
	}
	nWide := make([][]uint64, lanes)
	for l := range nWide {
		nWide[l] = []uint64{n[l]}
	}

	out, err := k.RunWide(map[string][][]uint64{"n": nWide, "s": s}, lanes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user: rated  statistic(high:low)                    -> normalized(high:low)")
	for l := 0; l < lanes; l++ {
		marker := " "
		if n[l] < 50 {
			marker = "*" // normalized (rated fewer than 50 items)
		}
		fmt.Printf("%4d: %4d%s  %016x:%016x -> %016x:%016x\n",
			l, n[l], marker, s[l][1], s[l][0], out["sp"][l][1], out["sp"][l][0])
	}
	fmt.Println("\n* = sparse user: statistic adjusted by the significance constant")
}
