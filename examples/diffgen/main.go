// DiffGen: generalize record attributes through taxonomy-level thresholds
// (the differential-privacy workload) and show the effect of the OBS
// optimizations on the generated code.
//
// Run with: go run ./examples/diffgen
package main

import (
	"fmt"
	"log"
	"math/rand"

	chopper "chopper"
	"chopper/internal/workloads"
)

func main() {
	spec := workloads.Build("DiffGen", 64)
	fmt.Printf("workload: %s — %s\n\n", spec.Name, spec.Desc)

	// Breakdown: compile at each OBS level and compare generated code.
	fmt.Println("OBS breakdown (Ambit):")
	for _, lv := range []chopper.OptLevel{chopper.OptBitslice, chopper.OptSchedule, chopper.OptReuse, chopper.OptFull} {
		k, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit}.WithOpt(lv))
		if err != nil {
			log.Fatal(err)
		}
		s := k.Stats()
		fmt.Printf("  %-9v %6d ops, %3d live rows, %4d const writes, %4d stores elided\n",
			lv, len(k.Prog().Ops), s.MaxLiveRows, s.ConstWrites, s.StoresElided)
	}

	// Run one tile and show a few generalized records.
	k, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit})
	if err != nil {
		log.Fatal(err)
	}
	lanes := 8
	rng := rand.New(rand.NewSource(1))
	in := make(map[string][]uint64, 64)
	for a := 0; a < 64; a++ {
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = uint64(rng.Intn(16))
		}
		in[fmt.Sprintf("v__%d", a)] = vals
	}
	out, err := k.Run(in, lanes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecord 0, first 8 attributes (value -> taxonomy indicators >=3, >=10):")
	for a := 0; a < 8; a++ {
		fmt.Printf("  v%-2d = %2d -> (%d, %d)\n", a,
			in[fmt.Sprintf("v__%d", a)][0],
			out[fmt.Sprintf("e__%d", 2*a)][0],
			out[fmt.Sprintf("e__%d", 2*a+1)][0])
	}
}
