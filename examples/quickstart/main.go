// Quickstart: compile the paper's Figure 3 program (packed add/sub with
// predication) and run it on the simulated Ambit subarray.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	chopper "chopper"
)

// The CHOPPER side of Figure 3: no explicit memory allocation, no explicit
// transposition — compare with the SIMDRAM interface in Figure 3(A).
const src = `
node addsub(a: u8, b: u8) returns (s: u8, d: u8)
let
  s = a + b;
  d = a - b;
tel

node main(a: u8, b: u8, pred: u8) returns (c: u8)
vars s: u8, d: u8, f: u1;
let
  (s, d) = addsub(a, b);
  f = a > pred;
  c = f ? s : d;
tel
`

func main() {
	k, err := chopper.Compile(src, chopper.Options{Target: chopper.Ambit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d micro-ops for one Ambit subarray\n", len(k.Prog().Ops))
	fmt.Printf("stats: %+v\n\n", k.Stats())

	// Each slice element is one SIMD lane (one DRAM bitline).
	lanes := 8
	in := map[string][]uint64{
		"a":    {10, 200, 30, 77, 5, 250, 100, 60},
		"b":    {3, 6, 30, 200, 5, 5, 1, 60},
		"pred": {50, 50, 50, 50, 50, 50, 50, 50},
	}
	out, err := k.Run(in, lanes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lane:  a    b  pred  ->  c = a>pred ? a+b : a-b")
	for l := 0; l < lanes; l++ {
		fmt.Printf("%4d: %3d  %3d  %3d   -> %3d\n", l, in["a"][l], in["b"][l], in["pred"][l], out["c"][l])
	}
}
