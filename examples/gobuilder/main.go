// Go-builder: construct a kernel programmatically (no DSL source) and run
// it over a dataset larger than one subarray, tiled across banks — the
// integration path a dataflow framework would use (paper Section VI-C).
//
// The kernel is a saturating brightness adjustment over 8-bit pixels:
// out = min(255, pixel + gain) when enabled, else pixel.
//
// Run with: go run ./examples/gobuilder
package main

import (
	"fmt"
	"log"

	chopper "chopper"
	"chopper/internal/dram"
)

func main() {
	b := chopper.NewBuilder()
	pix := b.Input("pix", 8)
	en := b.Input("en", 1)

	gain := b.Const(48, 8)
	wide := b.Add(b.Resize(pix, 9), b.Resize(gain, 9)) // 9-bit headroom
	sat := b.Mux(b.Gt(wide, b.Const(255, 9)), b.Const(255, 9), wide)
	b.Output("out", b.Mux(en, b.Resize(sat, 8), pix))

	// A small simulated device keeps the demo quick: 64-lane subarrays.
	geom := dram.Geometry{Banks: 8, SubarraysPB: 8, RowsPerSub: 256, RowBytes: 8, ReservedRows: 18}
	k, err := b.Compile(chopper.Options{Target: chopper.SIMDRAM, Geometry: geom})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d micro-ops, %d D rows\n", len(k.Prog().Ops), k.Prog().DRowsUsed)

	// A 1000-pixel "image": a ramp, with every third pixel's adjustment
	// disabled.
	lanes := 1000
	pixels := make([][]uint64, lanes)
	enables := make([][]uint64, lanes)
	for i := range pixels {
		pixels[i] = []uint64{uint64(i) % 256}
		enables[i] = []uint64{uint64(1 - i%3%2)} // pattern of 1,0,1,1,0,1...
	}

	res, err := k.RunTiled(map[string][][]uint64{"pix": pixels, "en": enables}, lanes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d pixels across %d tiles in %.1f us (simulated)\n",
		lanes, res.Tiles, res.TimeNs/1000)

	fmt.Println("\npixel  enable  ->  out")
	for _, i := range []int{0, 1, 2, 200, 230, 254, 255, 999} {
		fmt.Printf("%5d  %6d  -> %4d\n", pixels[i][0], enables[i][0], res.Outputs["out"][i][0])
	}
}
