package chopper

import (
	"errors"
	"strings"
	"testing"
)

const errAdderSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

// Every pipeline stage classes its failures with the matching sentinel, so
// callers can dispatch on errors.Is instead of message text.
func TestSentinelErrorStages(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
		want error
		not  []error
	}{
		{
			name: "parse",
			src:  "node main(a: u8 returns", // truncated garbage
			want: ErrParse,
			not:  []error{ErrTypecheck, ErrNormalize, ErrCodegen, ErrInternal},
		},
		{
			name: "typecheck",
			src:  "node main(a: u8) returns (z: u16) let z = a; tel",
			want: ErrTypecheck,
			not:  []error{ErrParse, ErrNormalize, ErrCodegen},
		},
		{
			name: "normalize",
			src:  errAdderSrc,
			opts: Options{Entry: "nosuchnode"},
			want: ErrNormalize,
			not:  []error{ErrParse, ErrTypecheck, ErrCodegen},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, tc.opts)
			if err == nil {
				t.Fatal("Compile succeeded, want error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not match %v", err, tc.want)
			}
			for _, s := range tc.not {
				if errors.Is(err, s) {
					t.Errorf("error %v unexpectedly matches %v", err, s)
				}
			}
		})
	}
}

func TestSentinelErrorCodegen(t *testing.T) {
	// The baseline methodology rejects Harden at the codegen stage.
	_, err := CompileBaseline(errAdderSrc, Options{Harden: true})
	if err == nil {
		t.Fatal("CompileBaseline accepted Harden")
	}
	if !errors.Is(err, ErrCodegen) {
		t.Fatalf("error %v does not match ErrCodegen", err)
	}
}

// Panics inside the pipeline must surface as ErrInternal errors, never as
// crashes escaping the public API.
func TestCompileGraphNilRecovers(t *testing.T) {
	_, err := CompileGraph(nil, Options{})
	if err == nil {
		t.Fatal("CompileGraph(nil) succeeded")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error %v does not match ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "chopper: internal") {
		t.Fatalf("error %q missing internal prefix", err)
	}
}

func TestRunRejectsBadLanes(t *testing.T) {
	k, err := Compile(errAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// lanes = -1 used to panic deep inside sim.NewSubarray and surface as
	// a recovered ErrInternal; options validation now rejects it up front
	// with the ErrOptions sentinel (and never a crash).
	_, err = k.Run(map[string][]uint64{"a": {1}, "b": {2}}, -1)
	if err == nil {
		t.Fatal("Run with lanes=-1 succeeded")
	}
	if !errors.Is(err, ErrOptions) {
		t.Fatalf("error %v does not match ErrOptions", err)
	}
}

func TestVerifyErrorClass(t *testing.T) {
	k, err := Compile(errAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A certain single fault corrupts the unhardened adder, and the
	// resulting mismatch is classed ErrVerify.
	err = k.VerifyUnderFault(1, 5, FaultConfig{TRAFlipRate: 1, MaxFaults: 1})
	if err == nil {
		t.Fatal("VerifyUnderFault passed under a guaranteed fault")
	}
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("error %v does not match ErrVerify", err)
	}
}
