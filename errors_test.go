package chopper

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

const errAdderSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

// Every pipeline stage classes its failures with the matching sentinel, so
// callers can dispatch on errors.Is instead of message text.
func TestSentinelErrorStages(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
		want error
		not  []error
	}{
		{
			name: "parse",
			src:  "node main(a: u8 returns", // truncated garbage
			want: ErrParse,
			not:  []error{ErrTypecheck, ErrNormalize, ErrCodegen, ErrInternal},
		},
		{
			name: "typecheck",
			src:  "node main(a: u8) returns (z: u16) let z = a; tel",
			want: ErrTypecheck,
			not:  []error{ErrParse, ErrNormalize, ErrCodegen},
		},
		{
			name: "normalize",
			src:  errAdderSrc,
			opts: Options{Entry: "nosuchnode"},
			want: ErrNormalize,
			not:  []error{ErrParse, ErrTypecheck, ErrCodegen},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, tc.opts)
			if err == nil {
				t.Fatal("Compile succeeded, want error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not match %v", err, tc.want)
			}
			for _, s := range tc.not {
				if errors.Is(err, s) {
					t.Errorf("error %v unexpectedly matches %v", err, s)
				}
			}
		})
	}
}

func TestSentinelErrorCodegen(t *testing.T) {
	// The baseline methodology rejects Harden at the codegen stage.
	_, err := CompileBaseline(errAdderSrc, Options{Harden: true})
	if err == nil {
		t.Fatal("CompileBaseline accepted Harden")
	}
	if !errors.Is(err, ErrCodegen) {
		t.Fatalf("error %v does not match ErrCodegen", err)
	}
}

// Panics inside the pipeline must surface as ErrInternal errors, never as
// crashes escaping the public API.
func TestCompileGraphNilRecovers(t *testing.T) {
	_, err := CompileGraph(nil, Options{})
	if err == nil {
		t.Fatal("CompileGraph(nil) succeeded")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error %v does not match ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "chopper: internal") {
		t.Fatalf("error %q missing internal prefix", err)
	}
}

func TestRunRejectsBadLanes(t *testing.T) {
	k, err := Compile(errAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// lanes = -1 used to panic deep inside sim.NewSubarray and surface as
	// a recovered ErrInternal; options validation now rejects it up front
	// with the ErrOptions sentinel (and never a crash).
	_, err = k.Run(map[string][]uint64{"a": {1}, "b": {2}}, -1)
	if err == nil {
		t.Fatal("Run with lanes=-1 succeeded")
	}
	if !errors.Is(err, ErrOptions) {
		t.Fatalf("error %v does not match ErrOptions", err)
	}
}

// TestErrorClassMatrix pins ErrorClass over the full sentinel matrix —
// synthetic stage-classed errors for every sentinel, plus real errors
// produced by the API — so the server's status mapper and the CLI's exit
// logic stay in lockstep with the error taxonomy.
func TestErrorClassMatrix(t *testing.T) {
	synthetic := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{stage(ErrParse, "chopper: parse", errors.New("x")), "parse"},
		{stage(ErrTypecheck, "chopper: typecheck", errors.New("x")), "typecheck"},
		{stage(ErrNormalize, "chopper: normalize", errors.New("x")), "normalize"},
		{stage(ErrCodegen, "chopper: codegen", errors.New("x")), "codegen"},
		{stage(ErrVerify, "chopper: verify", errors.New("x")), "verify"},
		{stage(ErrInternal, "chopper: internal", errors.New("x")), "internal"},
		{optionsErrf("bad"), "options"},
		{ErrParse, "parse"},
		{ErrTypecheck, "typecheck"},
		{ErrNormalize, "normalize"},
		{ErrCodegen, "codegen"},
		{ErrVerify, "verify"},
		{ErrInternal, "internal"},
		{ErrOptions, "options"},
		{ErrBudget, "budget"},
		{ErrDeadline, "deadline"},
		{ErrCanceled, "canceled"},
		{&BudgetError{Dimension: DimMicroOps, Limit: 1, Count: 2}, "budget"},
		{errors.New("some I/O thing"), "unknown"},
	}
	for _, tc := range synthetic {
		if got := ErrorClass(tc.err); got != tc.want {
			t.Errorf("ErrorClass(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}

	// Real errors from the API must land in the same classes.
	real := []struct {
		want string
		err  func() error
	}{
		{"parse", func() error {
			_, err := Compile("node main(", Options{})
			return err
		}},
		{"typecheck", func() error {
			_, err := Compile("node main(a: u8) returns (z: u16) let z = a; tel", Options{})
			return err
		}},
		{"normalize", func() error {
			_, err := Compile(errAdderSrc, Options{Entry: "nope"})
			return err
		}},
		{"options", func() error {
			_, err := Compile(errAdderSrc, Options{Budget: Budget{MaxMicroOps: -1}})
			return err
		}},
		{"budget", func() error {
			_, err := Compile(errAdderSrc, Options{Budget: Budget{MaxNetGates: 1}})
			return err
		}},
		{"deadline", func() error {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel()
			_, err := CompileCtx(ctx, errAdderSrc, Options{})
			return err
		}},
		{"canceled", func() error {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := CompileCtx(ctx, errAdderSrc, Options{})
			return err
		}},
		{"internal", func() error {
			_, err := CompileGraph(nil, Options{})
			return err
		}},
		{"verify", func() error {
			k, err := Compile(errAdderSrc, Options{})
			if err != nil {
				return err
			}
			return k.VerifyUnderFault(1, 5, FaultConfig{TRAFlipRate: 1, MaxFaults: 1})
		}},
	}
	for _, tc := range real {
		if got := ErrorClass(tc.err()); got != tc.want {
			t.Errorf("real-world %s error classified as %q", tc.want, got)
		}
	}
}

func TestVerifyErrorClass(t *testing.T) {
	k, err := Compile(errAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A certain single fault corrupts the unhardened adder, and the
	// resulting mismatch is classed ErrVerify.
	err = k.VerifyUnderFault(1, 5, FaultConfig{TRAFlipRate: 1, MaxFaults: 1})
	if err == nil {
		t.Fatal("VerifyUnderFault passed under a guaranteed fault")
	}
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("error %v does not match ErrVerify", err)
	}
}
