package chopper

import (
	"reflect"
	"testing"
)

// TestPoolReuseInterleavedFaultyCleanRuns hammers the shared machine and
// injector pools with alternating faulty-recovered, faulty-plain and clean
// runs. Every clean run must be bit-identical to the reference and report
// zero faults and zero recovery activity; every faulty run must reproduce
// its own first result. This is the regression net for pooled-Reset state
// leaks (stuck-at column tables, retention timestamps, epoch checkpoints,
// parity tracking).
func TestPoolReuseInterleavedFaultyCleanRuns(t *testing.T) {
	const lanes = 64
	plain, err := Compile(recAdderSrc, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Compile(recAdderSrc, Options{Target: Ambit,
		Recovery: Recovery{Detector: DetectorParity, EpochUops: 64, MaxRetries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := plain.RunRows(recRows(t, plain, lanes), lanes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FaultConfig{
		TRAFlipRate:   0.01,
		RetentionRate: 0.2,
		RefreshOps:    32,
		StuckColumns:  []StuckColumn{{Lane: 11, High: true}},
	}
	var faultyRef, recRef *RunResult
	for i := 0; i < 8; i++ {
		fr, err := plain.RunRowsUnderFault(recRows(t, plain, lanes), lanes, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := rec.RunRowsUnderFault(recRows(t, rec, lanes), lanes, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := plain.RunRows(recRows(t, plain, lanes), lanes)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			faultyRef, recRef = fr, rr
			if fr.Faults.Total() == 0 {
				t.Fatal("fault config injected nothing; interleave test is vacuous")
			}
			if rr.RecoveryStats.Detections == 0 {
				t.Fatal("recovered run detected nothing; interleave test is vacuous")
			}
			continue
		}
		if !reflect.DeepEqual(fr.Rows, faultyRef.Rows) || fr.Faults != faultyRef.Faults {
			t.Fatalf("round %d: faulty run drifted (pooled injector leaked state)", i)
		}
		if !reflect.DeepEqual(rr.Rows, recRef.Rows) || rr.RecoveryStats != recRef.RecoveryStats {
			t.Fatalf("round %d: recovered run drifted: %+v vs %+v", i, rr.RecoveryStats, recRef.RecoveryStats)
		}
		if !reflect.DeepEqual(clean.Rows, ref.Rows) {
			t.Fatalf("round %d: clean run corrupted by pooled state from faulty runs", i)
		}
		if clean.Faults.Total() != 0 || clean.RecoveryStats != (RecoveryStats{}) {
			t.Fatalf("round %d: clean run reports fault/recovery activity: %+v %+v",
				i, clean.Faults, clean.RecoveryStats)
		}
	}
}
