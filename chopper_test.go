package chopper

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/obs"
)

var allOpts = []OptLevel{OptBitslice, OptSchedule, OptReuse, OptFull}

func randLanes(rng *rand.Rand, n, width int) []uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & mask
	}
	return out
}

// compileAll compiles src for every (arch, optlevel) pair.
func compileAll(t *testing.T, src string) map[string]*Kernel {
	t.Helper()
	ks := make(map[string]*Kernel)
	for _, arch := range isa.AllArchs {
		for _, lv := range allOpts {
			k, err := Compile(src, Options{Target: arch}.WithOpt(lv))
			if err != nil {
				t.Fatalf("%v/%v: %v", arch, lv, err)
			}
			ks[fmt.Sprintf("%v/%v", arch, lv)] = k
		}
	}
	return ks
}

func TestEndToEndAddSub(t *testing.T) {
	src := `
node main(a: u8, b: u8) returns (s: u8, d: u8)
let
  s = a + b;
  d = a - b;
tel`
	rng := rand.New(rand.NewSource(1))
	lanes := 100
	as := randLanes(rng, lanes, 8)
	bs := randLanes(rng, lanes, 8)
	for name, k := range compileAll(t, src) {
		out, err := k.Run(map[string][]uint64{"a": as, "b": bs}, lanes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := 0; l < lanes; l++ {
			if got, want := out["s"][l], (as[l]+bs[l])&0xFF; got != want {
				t.Fatalf("%s lane %d: s=%d want %d", name, l, got, want)
			}
			if got, want := out["d"][l], (as[l]-bs[l])&0xFF; got != want {
				t.Fatalf("%s lane %d: d=%d want %d", name, l, got, want)
			}
		}
	}
}

// The Figure 3 program: packed add/sub with predication.
const fig3Src = `
node addsub(a: u8, b: u8) returns (s: u8, d: u8)
let
  s = a + b;
  d = a - b;
tel
node main(a: u8, b: u8, pred: u8) returns (c: u8)
vars s: u8, d: u8, f: u1;
let
  (s, d) = addsub(a, b);
  f = a > pred;
  c = f ? s : d;
tel`

func TestEndToEndFig3(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lanes := 64
	as := randLanes(rng, lanes, 8)
	bs := randLanes(rng, lanes, 8)
	ps := randLanes(rng, lanes, 8)
	for name, k := range compileAll(t, fig3Src) {
		out, err := k.Run(map[string][]uint64{"a": as, "b": bs, "pred": ps}, lanes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := 0; l < lanes; l++ {
			want := (as[l] - bs[l]) & 0xFF
			if as[l] > ps[l] {
				want = (as[l] + bs[l]) & 0xFF
			}
			if out["c"][l] != want {
				t.Fatalf("%s lane %d: c=%d want %d", name, l, out["c"][l], want)
			}
		}
	}
}

func TestEndToEndKitchenSink(t *testing.T) {
	src := `
node main(a: u8, b: u8) returns (z: u8, w: u1, pc: u8)
vars m: u8, x: u16;
let
  m = mux(a < b, a * b, absdiff(a, b));
  x = u16(m) + u16(a) * 3;
  z = u8(x >> 1);
  w = x >= 100;
  pc = popcount(a ^ b);
tel`
	rng := rand.New(rand.NewSource(3))
	lanes := 70
	as := randLanes(rng, lanes, 8)
	bs := randLanes(rng, lanes, 8)
	for name, k := range compileAll(t, src) {
		out, err := k.Run(map[string][]uint64{"a": as, "b": bs}, lanes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := 0; l < lanes; l++ {
			var m uint64
			if as[l] < bs[l] {
				m = (as[l] * bs[l]) & 0xFF
			} else if as[l] >= bs[l] {
				if as[l] >= bs[l] {
					m = as[l] - bs[l]
				}
			}
			x := (m + as[l]*3) & 0xFFFF
			wantZ := (x >> 1) & 0xFF
			var wantW uint64
			if x >= 100 {
				wantW = 1
			}
			var wantPC uint64
			for v := as[l] ^ bs[l]; v != 0; v &= v - 1 {
				wantPC++
			}
			if out["z"][l] != wantZ || out["w"][l] != wantW || out["pc"][l] != wantPC {
				t.Fatalf("%s lane %d (a=%d b=%d): z=%d/%d w=%d/%d pc=%d/%d",
					name, l, as[l], bs[l], out["z"][l], wantZ, out["w"][l], wantW, out["pc"][l], wantPC)
			}
		}
	}
}

func TestEndToEndWide(t *testing.T) {
	src := "node main(a: u128, b: u128) returns (z: u128) let z = a + b; tel"
	rng := rand.New(rand.NewSource(4))
	lanes := 10
	mk := func() [][]uint64 {
		v := make([][]uint64, lanes)
		for i := range v {
			v[i] = []uint64{rng.Uint64(), rng.Uint64()}
		}
		return v
	}
	as, bs := mk(), mk()
	k, err := Compile(src, Options{Target: SIMDRAM})
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.RunWide(map[string][][]uint64{"a": as, "b": bs}, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		lo := as[l][0] + bs[l][0]
		carry := uint64(0)
		if lo < as[l][0] {
			carry = 1
		}
		hi := as[l][1] + bs[l][1] + carry
		if out["z"][l][0] != lo || out["z"][l][1] != hi {
			t.Fatalf("lane %d: got %x:%x want %x:%x", l, out["z"][l][1], out["z"][l][0], hi, lo)
		}
	}
}

func TestSpillPathCorrect(t *testing.T) {
	// A tiny subarray forces spilling; results must stay correct.
	src := `
node main(a: u16, b: u16, c: u16, d: u16) returns (z: u16)
vars t1: u16, t2: u16, t3: u16;
let
  t1 = a * b;
  t2 = c * d;
  t3 = t1 + t2;
  z = t3 * t3 + a;
tel`
	geom := dram.DefaultGeometry()
	geom.RowsPerSub = 42 // 24 data rows after the 18 reserved
	geom.SubarraysPB = 64
	k, err := Compile(src, Options{Target: Ambit, Geometry: geom}.WithOpt(OptFull))
	if err != nil {
		t.Fatal(err)
	}
	if k.Code.Prog.SpillSlots == 0 {
		t.Fatalf("expected spilling with %d data rows (max live %d)", geom.DRows(), k.Stats().MaxLiveRows)
	}
	rng := rand.New(rand.NewSource(5))
	lanes := 64
	in := map[string][]uint64{
		"a": randLanes(rng, lanes, 16), "b": randLanes(rng, lanes, 16),
		"c": randLanes(rng, lanes, 16), "d": randLanes(rng, lanes, 16),
	}
	out, err := k.Run(in, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		t3 := (in["a"][l]*in["b"][l] + in["c"][l]*in["d"][l]) & 0xFFFF
		want := (t3*t3 + in["a"][l]) & 0xFFFF
		if out["z"][l] != want {
			t.Fatalf("lane %d: z=%d want %d", l, out["z"][l], want)
		}
	}
}

func TestOptimizationsReduceWork(t *testing.T) {
	src := fig3Src
	type m struct {
		ops    int
		drows  int
		writes int
	}
	got := make(map[OptLevel]m)
	for _, lv := range allOpts {
		k, err := Compile(src, Options{Target: Ambit}.WithOpt(lv))
		if err != nil {
			t.Fatal(err)
		}
		got[lv] = m{
			ops:    len(k.Code.Prog.Ops),
			drows:  k.Stats().MaxLiveRows,
			writes: k.Stats().Writes,
		}
	}
	// O1 reduces buffering pressure.
	if got[OptSchedule].drows > got[OptBitslice].drows {
		t.Errorf("schedule increased row pressure: %d -> %d", got[OptBitslice].drows, got[OptSchedule].drows)
	}
	// O2 removes host constant writes.
	kNoReuse, _ := Compile(src, Options{Target: Ambit}.WithOpt(OptSchedule))
	kReuse, _ := Compile(src, Options{Target: Ambit}.WithOpt(OptReuse))
	if kReuse.Stats().ConstWrites != 0 {
		t.Errorf("reuse level still writes constants: %d", kReuse.Stats().ConstWrites)
	}
	if kNoReuse.Stats().ConstWrites == 0 {
		t.Errorf("schedule level should host-write constants")
	}
	// O3 shortens the program.
	if got[OptFull].ops >= got[OptReuse].ops {
		t.Errorf("rename did not shorten program: %d -> %d", got[OptReuse].ops, got[OptFull].ops)
	}
	if kFull, _ := Compile(src, Options{Target: Ambit}.WithOpt(OptFull)); kFull.Stats().StoresElided == 0 {
		t.Errorf("rename elided no stores")
	}
	// Full CHOPPER uses fewer rows and fewer ops than bitslice.
	if got[OptFull].drows > got[OptBitslice].drows {
		t.Errorf("full uses more rows than bitslice: %d vs %d", got[OptFull].drows, got[OptBitslice].drows)
	}
	if got[OptFull].ops >= got[OptBitslice].ops {
		t.Errorf("full not shorter than bitslice: %d vs %d", got[OptFull].ops, got[OptBitslice].ops)
	}
}

func TestSIMDRAMFewerTRAsThanAmbit(t *testing.T) {
	src := "node main(a: u16, b: u16) returns (z: u16) let z = a + b; tel"
	kA, err := Compile(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	kS, err := Compile(src, Options{Target: SIMDRAM})
	if err != nil {
		t.Fatal(err)
	}
	if kS.Code.Stats.APs >= kA.Code.Stats.APs {
		t.Errorf("SIMDRAM adder uses %d TRAs, Ambit %d", kS.Code.Stats.APs, kA.Code.Stats.APs)
	}
}

func TestNoreuseAnnotation(t *testing.T) {
	src := `
@noreuse
node main(a: u8) returns (z: u8)
let z = a + 42; tel`
	k, err := Compile(src, Options{Target: Ambit}.WithOpt(OptReuse))
	if err != nil {
		t.Fatal(err)
	}
	if k.Stats().ConstWrites == 0 {
		t.Error("@noreuse ignored: no host constant writes at the reuse level")
	}
	if k.Stats().ConstCopies > 0 {
		t.Error("@noreuse ignored: constants still sourced from the C-group")
	}
	// Without the annotation, reuse eliminates the host writes.
	plain, err := Compile(strings.Replace(src, "@noreuse", "", 1), Options{Target: Ambit}.WithOpt(OptReuse))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats().ConstWrites != 0 {
		t.Error("reuse level should not host-write constants without @noreuse")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := Compile("node f(", Options{}); err == nil {
		t.Error("parse error not propagated")
	}
	if _, err := Compile("node f(a: u8) returns (z: u8) let z = q; tel", Options{}); err == nil {
		t.Error("type error not propagated")
	}
	if _, err := Compile("node f(a: u8) returns (z: u8) let z = a; tel", Options{Entry: "nosuch"}); err == nil {
		t.Error("bad entry not caught")
	}
}

func TestAsmDump(t *testing.T) {
	k, err := Compile("node main(a: u4, b: u4) returns (z: u4) let z = a & b; tel", Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	asm := k.Asm()
	for _, want := range []string{"WRITE", "AP T0,T1,T2", "READ"} {
		if !contains(asm, want) {
			t.Errorf("asm missing %q:\n%s", want, asm)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (stringIndex(s, sub) >= 0))
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property-style sweep: random programs of chained arithmetic stay correct
// across variants and architectures.
func TestRandomProgramSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ops := []string{"+", "-", "&", "|", "^"}
	for trial := 0; trial < 10; trial++ {
		// Build a random straight-line program over u8.
		nvars := 3 + rng.Intn(3)
		src := "node main(a: u8, b: u8) returns (z: u8)\nvars "
		for i := 0; i < nvars; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("t%d: u8", i)
		}
		src += ";\nlet\n"
		avail := []string{"a", "b"}
		for i := 0; i < nvars; i++ {
			x := avail[rng.Intn(len(avail))]
			y := avail[rng.Intn(len(avail))]
			op := ops[rng.Intn(len(ops))]
			src += fmt.Sprintf("  t%d = %s %s %s;\n", i, x, op, y)
			avail = append(avail, fmt.Sprintf("t%d", i))
		}
		src += fmt.Sprintf("  z = t%d;\ntel\n", nvars-1)

		lanes := 64
		as := randLanes(rng, lanes, 8)
		bs := randLanes(rng, lanes, 8)

		// Golden evaluation in Go.
		golden := func(a, b uint64) uint64 {
			vals := map[string]uint64{"a": a, "b": b}
			// Re-simulate the generated source (same RNG order as above
			// is unavailable here, so parse the src lines instead).
			return evalStraightLine(src, vals)
		}
		for _, arch := range isa.AllArchs {
			for _, lv := range []OptLevel{OptBitslice, OptFull} {
				k, err := Compile(src, Options{Target: arch}.WithOpt(lv))
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v\n%s", trial, arch, lv, err, src)
				}
				out, err := k.Run(map[string][]uint64{"a": as, "b": bs}, lanes)
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, arch, lv, err)
				}
				for l := 0; l < lanes; l++ {
					if want := golden(as[l], bs[l]); out["z"][l] != want {
						t.Fatalf("trial %d %v/%v lane %d: z=%d want %d\n%s",
							trial, arch, lv, l, out["z"][l], want, src)
					}
				}
			}
		}
	}
}

// evalStraightLine interprets the simple generated programs of
// TestRandomProgramSweep.
func evalStraightLine(src string, vals map[string]uint64) uint64 {
	lines := splitLines(src)
	for _, ln := range lines {
		var dst, x, op, y string
		if n, _ := fmt.Sscanf(ln, "  %s = %s %s %s;", &dst, &x, &op, &y); n == 4 {
			y = trimSemi(y)
			var v uint64
			switch op {
			case "+":
				v = vals[x] + vals[y]
			case "-":
				v = vals[x] - vals[y]
			case "&":
				v = vals[x] & vals[y]
			case "|":
				v = vals[x] | vals[y]
			case "^":
				v = vals[x] ^ vals[y]
			}
			vals[dst] = v & 0xFF
		} else if n, _ := fmt.Sscanf(ln, "  z = %s", &x); n == 1 {
			vals["z"] = vals[trimSemi(x)]
		}
	}
	return vals["z"]
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func trimSemi(s string) string {
	for len(s) > 0 && (s[len(s)-1] == ';' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	return s
}

func TestVariantsObeyHierarchy(t *testing.T) {
	for i, lv := range obs.AllVariants {
		if int(lv) != i {
			t.Errorf("variant order broken at %d", i)
		}
	}
	if !obs.Rename.HasSchedule() || !obs.Rename.HasReuse() || !obs.Rename.HasRename() {
		t.Error("rename must include all optimizations")
	}
	if obs.Bitslice.HasSchedule() || obs.Bitslice.HasReuse() || obs.Bitslice.HasRename() {
		t.Error("bitslice must include none")
	}
}

func TestSignedComparisons(t *testing.T) {
	src := `
node main(a: u8, b: u8) returns (lt: u1, le: u1, gt: u1, ge: u1, m: u8)
let
  lt = slt(a, b);
  le = sle(a, b);
  gt = sgt(a, b);
  ge = sge(a, b);
  m = mux(slt(a, b), b, a); // signed max
tel`
	rng := rand.New(rand.NewSource(41))
	lanes := 64
	as := randLanes(rng, lanes, 8)
	bs := randLanes(rng, lanes, 8)
	for _, arch := range []Target{Ambit, SIMDRAM} {
		k, err := Compile(src, Options{Target: arch})
		if err != nil {
			t.Fatal(err)
		}
		out, err := k.Run(map[string][]uint64{"a": as, "b": bs}, lanes)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			sa, sb := int8(as[l]), int8(bs[l])
			want := map[string]uint64{"lt": 0, "le": 0, "gt": 0, "ge": 0}
			if sa < sb {
				want["lt"] = 1
			}
			if sa <= sb {
				want["le"] = 1
			}
			if sa > sb {
				want["gt"] = 1
			}
			if sa >= sb {
				want["ge"] = 1
			}
			wantM := as[l]
			if sa < sb {
				wantM = bs[l]
			}
			for name, w := range want {
				if out[name][l] != w {
					t.Fatalf("%v lane %d (%d vs %d): %s = %d, want %d", arch, l, sa, sb, name, out[name][l], w)
				}
			}
			if out["m"][l] != wantM {
				t.Fatalf("%v lane %d: m = %d, want %d", arch, l, out["m"][l], wantM)
			}
		}
	}
}

// A richer random sweep driven by the dataflow reference (Verify), covering
// every operator the language offers, at every optimization level.
func TestRandomRichProgramsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		src := randomRichProgram(rng)
		for _, arch := range isa.AllArchs {
			lv := allOpts[rng.Intn(len(allOpts))]
			k, err := Compile(src, Options{Target: arch}.WithOpt(lv))
			if err != nil {
				t.Fatalf("trial %d %v/%v: %v\n%s", trial, arch, lv, err, src)
			}
			if err := k.Verify(1, int64(trial*100)+int64(arch)); err != nil {
				t.Fatalf("trial %d %v/%v: %v\n%s", trial, arch, lv, err, src)
			}
		}
	}
}

// randomRichProgram emits a random straight-line program over u12 values
// using the full operator surface.
func randomRichProgram(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("node main(a: u12, b: u12, c: u12) returns (z: u12, f: u1)\nvars ")
	n := 4 + rng.Intn(4)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "t%d: u12", i)
	}
	sb.WriteString(", p: u1;\nlet\n")
	avail := []string{"a", "b", "c"}
	pick := func() string { return avail[rng.Intn(len(avail))] }
	for i := 0; i < n; i++ {
		var expr string
		switch rng.Intn(9) {
		case 0:
			expr = fmt.Sprintf("%s + %s", pick(), pick())
		case 1:
			expr = fmt.Sprintf("%s - %s", pick(), pick())
		case 2:
			expr = fmt.Sprintf("%s ^ (%s | %s)", pick(), pick(), pick())
		case 3:
			expr = fmt.Sprintf("min(%s, %s)", pick(), pick())
		case 4:
			expr = fmt.Sprintf("absdiff(%s, %s)", pick(), pick())
		case 5:
			expr = fmt.Sprintf("popcount(%s)", pick())
		case 6:
			expr = fmt.Sprintf("(%s << %d) | (%s >> %d)", pick(), rng.Intn(12), pick(), rng.Intn(12))
		case 7:
			expr = fmt.Sprintf("mux(%s < %s, %s, %s)", pick(), pick(), pick(), pick())
		case 8:
			expr = fmt.Sprintf("mux(slt(%s, %s), %s + %d, %s)", pick(), pick(), pick(), rng.Intn(100), pick())
		}
		fmt.Fprintf(&sb, "  t%d = %s;\n", i, expr)
		avail = append(avail, fmt.Sprintf("t%d", i))
	}
	fmt.Fprintf(&sb, "  p = %s >= %s;\n", pick(), pick())
	fmt.Fprintf(&sb, "  z = mux(p, %s, %s);\n  f = p;\ntel\n", pick(), pick())
	return sb.String()
}

func TestVariableShifts(t *testing.T) {
	src := `
node main(a: u16, s: u5) returns (l: u16, r: u16)
let
  l = a << s;
  r = a >> s;
tel`
	rng := rand.New(rand.NewSource(51))
	lanes := 64
	as := randLanes(rng, lanes, 16)
	ss := randLanes(rng, lanes, 5) // amounts 0..31, some beyond the width
	for _, arch := range []Target{Ambit, SIMDRAM} {
		k, err := Compile(src, Options{Target: arch})
		if err != nil {
			t.Fatal(err)
		}
		out, err := k.Run(map[string][]uint64{"a": as, "s": ss}, lanes)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			var wantL, wantR uint64
			if ss[l] < 16 {
				wantL = (as[l] << ss[l]) & 0xFFFF
				wantR = as[l] >> ss[l]
			}
			if out["l"][l] != wantL || out["r"][l] != wantR {
				t.Fatalf("%v lane %d (a=%#x s=%d): l=%#x/%#x r=%#x/%#x",
					arch, l, as[l], ss[l], out["l"][l], wantL, out["r"][l], wantR)
			}
		}
	}
}

func TestDivisionAndModulo(t *testing.T) {
	src := `
node main(a: u10, b: u10) returns (q: u10, r: u10)
let
  q = div(a, b);
  r = mod(a, b);
tel`
	rng := rand.New(rand.NewSource(61))
	lanes := 64
	as := randLanes(rng, lanes, 10)
	bs := randLanes(rng, lanes, 10)
	bs[0] = 0 // divide-by-zero lane
	bs[1] = 1
	as[2], bs[2] = 777, 777
	for _, arch := range []Target{Ambit, SIMDRAM} {
		k, err := Compile(src, Options{Target: arch})
		if err != nil {
			t.Fatal(err)
		}
		out, err := k.Run(map[string][]uint64{"a": as, "b": bs}, lanes)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			var wantQ, wantR uint64
			if bs[l] == 0 {
				wantQ, wantR = 1023, as[l] // RISC-V convention
			} else {
				wantQ, wantR = as[l]/bs[l], as[l]%bs[l]
			}
			if out["q"][l] != wantQ || out["r"][l] != wantR {
				t.Fatalf("%v lane %d (%d/%d): q=%d/%d r=%d/%d",
					arch, l, as[l], bs[l], out["q"][l], wantQ, out["r"][l], wantR)
			}
		}
	}
}

func TestArithmeticShiftRight(t *testing.T) {
	src := `
node main(a: u8, s: u4) returns (c: u8, v: u8)
let
  c = asr(a, 2);
  v = asr(a, s);
tel`
	rng := rand.New(rand.NewSource(67))
	lanes := 64
	as := randLanes(rng, lanes, 8)
	ss := randLanes(rng, lanes, 4)
	k, err := Compile(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Run(map[string][]uint64{"a": as, "s": ss}, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		wantC := uint64(uint8(int8(uint8(as[l])) >> 2))
		sh := ss[l]
		if sh > 8 {
			sh = 8
		}
		wantV := uint64(uint8(int8(uint8(as[l])) >> sh))
		if sh >= 8 {
			wantV = uint64(uint8(int8(uint8(as[l])) >> 7))
		}
		if out["c"][l] != wantC || out["v"][l] != wantV {
			t.Fatalf("lane %d (a=%#x s=%d): c=%#x/%#x v=%#x/%#x",
				l, as[l], ss[l], out["c"][l], wantC, out["v"][l], wantV)
		}
	}
	if err := k.Verify(2, 3); err != nil {
		t.Fatal(err)
	}
}
