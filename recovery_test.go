package chopper

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"chopper/internal/transpose"
)

const recAdderSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func recInputs(lanes int) map[string][]uint64 {
	a := make([]uint64, lanes)
	b := make([]uint64, lanes)
	for l := 0; l < lanes; l++ {
		a[l] = uint64(l*7+3) & 0xff
		b[l] = uint64(l*13+1) & 0xff
	}
	return map[string][]uint64{"a": a, "b": b}
}

func recRows(t *testing.T, k *Kernel, lanes int) map[string][][]uint64 {
	t.Helper()
	in := recInputs(lanes)
	rows := make(map[string][][]uint64, len(in))
	for _, spec := range k.Inputs {
		rows[spec.Name] = transpose.ToVertical(in[spec.Name], spec.Width, lanes)
	}
	return rows
}

func TestRecoveryOptionsNormalize(t *testing.T) {
	r := Recovery{Detector: DetectorVote}.normalize()
	if r.EpochUops != DefaultEpochUops || r.MaxRetries != DefaultMaxRetries || r.Backoff != DefaultRecoveryBackoff {
		t.Errorf("defaults not applied: %+v", r)
	}
	if r := (Recovery{Detector: DetectorParity, MaxRetries: -1}).normalize(); r.MaxRetries != 0 {
		t.Errorf("negative MaxRetries should normalize to detect-only (0), got %d", r.MaxRetries)
	}
	// Recovery-off has exactly one canonical encoding: stray fields are
	// dropped so the cache key of "disabled" is unique.
	if r := (Recovery{EpochUops: 99, MaxRetries: 7, Backoff: time.Second}).normalize(); r != (Recovery{}) {
		t.Errorf("disabled recovery should normalize to the zero value, got %+v", r)
	}
	if _, err := Compile(recAdderSrc, Options{Recovery: Recovery{Detector: Detector(42)}}); !errors.Is(err, ErrOptions) {
		t.Errorf("unknown detector should be rejected with ErrOptions, got %v", err)
	}
	if _, err := Compile(recAdderSrc, Options{Recovery: Recovery{Detector: DetectorVote, EpochUops: -5}}); !errors.Is(err, ErrOptions) {
		t.Errorf("negative epoch length should be rejected with ErrOptions, got %v", err)
	}
	if _, err := Compile(recAdderSrc, Options{Recovery: Recovery{Detector: DetectorVote, Backoff: -time.Second}}); !errors.Is(err, ErrOptions) {
		t.Errorf("negative backoff should be rejected with ErrOptions, got %v", err)
	}
}

func TestRecoveryCacheKeyed(t *testing.T) {
	cache := NewKernelCache(16)
	base := Options{Target: Ambit, Cache: cache}
	if _, err := Compile(recAdderSrc, base); err != nil {
		t.Fatal(err)
	}
	withRec := base
	withRec.Recovery = Recovery{Detector: DetectorVote}
	if _, err := Compile(recAdderSrc, withRec); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Errorf("recovery options must split the cache key: %d misses, want 2", s.Misses)
	}
	// Same options again: a hit, and the cached kernel keeps its policy.
	k, err := Compile(recAdderSrc, withRec)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Errorf("repeat compile should hit, stats %+v", s)
	}
	if !k.Opts.Recovery.Enabled() || k.Opts.Recovery.EpochUops != DefaultEpochUops {
		t.Errorf("cached kernel lost its recovery options: %+v", k.Opts.Recovery)
	}
}

func TestRecoveryZeroFaultOutputsIdentical(t *testing.T) {
	// With no faults injected, a recovery-enabled kernel must produce
	// byte-identical outputs to a recovery-free one (the detector only
	// observes; attempt 0 replays nothing).
	const lanes = 64
	plain, err := Compile(recAdderSrc, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(recInputs(lanes), lanes)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []Detector{DetectorParity, DetectorVote} {
		k, err := Compile(recAdderSrc, Options{Target: Ambit, Recovery: Recovery{Detector: det}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Run(recInputs(lanes), lanes)
		if err != nil {
			t.Fatalf("%s: %v", det, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: outputs differ from recovery-free run", det)
		}
	}
}

func TestRecoveryStatsReported(t *testing.T) {
	const lanes = 64
	k, err := Compile(recAdderSrc, Options{Target: Ambit,
		Recovery: Recovery{Detector: DetectorParity, EpochUops: 64, MaxRetries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// A stuck-at column is a storage fault: parity must detect it, and no
	// amount of replay can fix it — the run degrades gracefully and says so.
	res, err := k.RunRowsUnderFault(recRows(t, k, lanes), lanes,
		FaultConfig{StuckColumns: []StuckColumn{{Lane: 5, High: true}}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rs := res.RecoveryStats
	if rs.Epochs == 0 || rs.Detections == 0 || rs.Uncorrected == 0 {
		t.Errorf("stuck-at under parity should report detected-but-uncorrected epochs, got %+v", rs)
	}
	if rs.Retries == 0 || rs.ScrubbedRows == 0 || rs.WastedUops == 0 {
		t.Errorf("retries should be visible in the stats, got %+v", rs)
	}
	// Clean run on the same (pooled) machinery: stats come back zeroed.
	res2, err := k.RunRows(recRows(t, k, lanes), lanes)
	if err != nil {
		t.Fatal(err)
	}
	rs2 := res2.RecoveryStats
	if rs2.Detections != 0 || rs2.Retries != 0 || rs2.Uncorrected != 0 {
		t.Errorf("clean run after a faulty one reports recovery activity: %+v (pool state leak)", rs2)
	}
}

func TestRecoveryRunTiledRejected(t *testing.T) {
	k, err := Compile(recAdderSrc, Options{Target: Ambit, Recovery: Recovery{Detector: DetectorVote}})
	if err != nil {
		t.Fatal(err)
	}
	lanes := 8
	in := recInputs(lanes)
	wide := make(map[string][][]uint64, len(in))
	for name, vals := range in {
		per := make([][]uint64, lanes)
		for l := 0; l < lanes; l++ {
			per[l] = []uint64{vals[l]}
		}
		wide[name] = per
	}
	if _, err := k.RunTiled(wide, lanes); !errors.Is(err, ErrOptions) {
		t.Fatalf("RunTiled with recovery should fail with ErrOptions, got %v", err)
	}
}

// TestRecoveryBudgetMidRetry forces a retry loop (permanent stuck-at under
// parity re-detects every attempt) under a sim-step budget that runs out
// inside a replay: the stop must surface as ErrBudget — never as a
// detector artifact or a hang.
func TestRecoveryBudgetMidRetry(t *testing.T) {
	const lanes = 64
	k, err := Compile(recAdderSrc, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	nops := len(k.Prog().Ops)
	opts := Options{Target: Ambit,
		Recovery: Recovery{Detector: DetectorParity, EpochUops: 64, MaxRetries: 3},
		Budget:   Budget{MaxSimSteps: nops + 32}} // enough for attempt 0, not for the replays
	k, err = Compile(recAdderSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.RunRowsUnderFault(recRows(t, k, lanes), lanes,
		FaultConfig{StuckColumns: []StuckColumn{{Lane: 5, High: true}}}, 7)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Dimension != DimSimSteps {
		t.Fatalf("budget stop should name the sim-steps dimension, got %v", err)
	}
}

// TestRecoveryDeadlineMidRetry cancels by deadline while the recovery loop
// is retrying: the guard sentinel must come through unchanged.
func TestRecoveryDeadlineMidRetry(t *testing.T) {
	const lanes = 64
	k, err := Compile(recAdderSrc, Options{Target: Ambit,
		Recovery: Recovery{Detector: DetectorParity, EpochUops: 64, MaxRetries: 3}})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = k.RunRowsUnderFaultCtx(ctx, recRows(t, k, lanes), lanes,
		FaultConfig{StuckColumns: []StuckColumn{{Lane: 5, High: true}}}, 7)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if n := settleGoroutines(t, before, 2); n > before+2 {
		t.Errorf("goroutines leaked across a deadline-stopped recovery run: %d -> %d", before, n)
	}
}

// TestRecoveryCancelMidRetry is the cancellation variant: an already
// canceled context stops the run with ErrCanceled before any retry work.
func TestRecoveryCancelMidRetry(t *testing.T) {
	const lanes = 64
	k, err := Compile(recAdderSrc, Options{Target: Ambit,
		Recovery: Recovery{Detector: DetectorVote, EpochUops: 64, MaxRetries: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = k.RunRowsCtx(ctx, recRows(t, k, lanes), lanes)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestDeterminismRecoveryRuns: a recovered run under faults is a pure
// function of (kernel, inputs, fault config, seed) — repeated runs on the
// pooled machinery agree bit-for-bit, stats included. The suite runs under
// -race -cpu 1,4 in CI.
func TestDeterminismRecoveryRuns(t *testing.T) {
	const lanes = 64
	for _, det := range []Detector{DetectorParity, DetectorVote} {
		k, err := Compile(recAdderSrc, Options{Target: Ambit,
			Recovery: Recovery{Detector: det, EpochUops: 64, MaxRetries: 2}})
		if err != nil {
			t.Fatal(err)
		}
		cfg := FaultConfig{TRAFlipRate: 0.002, StuckColumns: []StuckColumn{{Lane: 9}}}
		first, err := k.RunRowsUnderFault(recRows(t, k, lanes), lanes, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, err := k.RunRowsUnderFault(recRows(t, k, lanes), lanes, cfg, 11)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again.Rows, first.Rows) {
				t.Fatalf("%s: run %d produced different outputs", det, i)
			}
			if again.RecoveryStats != first.RecoveryStats {
				t.Fatalf("%s: run %d stats %+v != %+v", det, i, again.RecoveryStats, first.RecoveryStats)
			}
			if again.TimeNs != first.TimeNs {
				t.Fatalf("%s: run %d makespan %v != %v", det, i, again.TimeNs, first.TimeNs)
			}
		}
	}
}
