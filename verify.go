package chopper

import (
	"fmt"
	"math/big"
	"math/rand"

	"chopper/internal/transpose"
)

// Verify checks a compiled kernel against the reference dataflow semantics
// on `trials` batches of random inputs (64 lanes each): the compiled
// micro-ops run on the functional DRAM simulator and every output lane is
// compared bit-exactly with dfg evaluation. It returns the first
// discrepancy as an error, or nil.
//
// This is the library-level version of the test suite's central invariant,
// exposed so downstream users can validate kernels they generate (for
// example after extending the synthesis library).
func (k *Kernel) Verify(trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	const lanes = 64
	for trial := 0; trial < trials; trial++ {
		// Random inputs, as limbs (handles any width).
		inWide := make(map[string][][]uint64, len(k.Inputs))
		for _, in := range k.Inputs {
			limbs := (in.Width + 63) / 64
			vals := make([][]uint64, lanes)
			for l := range vals {
				v := make([]uint64, limbs)
				for i := range v {
					v[i] = rng.Uint64()
				}
				if r := in.Width % 64; r != 0 {
					v[limbs-1] &= (uint64(1) << uint(r)) - 1
				}
				vals[l] = v
			}
			inWide[in.Name] = vals
		}

		got, err := k.RunWide(inWide, lanes)
		if err != nil {
			return fmt.Errorf("chopper: verify trial %d: %w", trial, err)
		}

		for l := 0; l < lanes; l++ {
			ref := make(map[string]*big.Int, len(k.Inputs))
			for name, vals := range inWide {
				ref[name] = limbsToBig(vals[l])
			}
			want, err := k.Graph.Eval(ref)
			if err != nil {
				return fmt.Errorf("chopper: verify trial %d: reference eval: %w", trial, err)
			}
			for _, out := range k.Outputs {
				gotV := limbsToBig(got[out.Name][l])
				if gotV.Cmp(want[out.Name]) != 0 {
					return fmt.Errorf("chopper: verify trial %d lane %d: output %q = %v, reference says %v",
						trial, l, out.Name, gotV, want[out.Name])
				}
			}
		}
	}
	return nil
}

func limbsToBig(limbs []uint64) *big.Int {
	v := new(big.Int)
	for i := len(limbs) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(limbs[i]))
	}
	return v
}

// TransposeCost reports the host-side transposition work for one tile of
// the kernel (rows to produce, bytes to move), a quantity front-of-house
// tooling displays; the compiled program's WRITE count matches it.
func (k *Kernel) TransposeCost(lanes int) (rows int, bytes int64) {
	words := transpose.Words(lanes)
	for _, in := range k.Inputs {
		rows += in.Width
	}
	return rows, int64(rows) * int64(words) * 8
}
