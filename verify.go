package chopper

import (
	"context"
	"math/big"
	"math/rand"

	"chopper/internal/guard"
	"chopper/internal/pool"
	"chopper/internal/transpose"
)

// verifyLaneSchedule is the SIMD width each verification trial runs at.
// Trial t uses entry t mod len: trial 0 keeps the historical 64-lane
// shape, and the rest deliberately straddle the 64-bit word boundary
// (1, 63, 65) and cross it (128) so partial-word masking bugs in the
// transposition and simulator paths cannot hide behind whole-word lane
// counts.
var verifyLaneSchedule = []int{64, 1, 63, 65, 128}

// trialSeed derives an independent RNG seed for one trial from the
// user-supplied seed. Each trial must be self-contained — no RNG state
// flowing from trial t into trial t+1 — so trials can run on any worker
// of the pool and still produce byte-identical results at any worker
// count. The splitmix64 finalizer decorrelates consecutive (seed, trial)
// pairs.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + (uint64(trial)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Verify checks a compiled kernel against the reference dataflow semantics
// on `trials` batches of random inputs: the compiled micro-ops run on the
// functional DRAM simulator and every output lane is compared bit-exactly
// with dfg evaluation. Lane counts vary per trial (1, 63, 64, 65, 128) to
// exercise partial-word masking. It returns the first discrepancy — the
// one from the lowest failing trial, regardless of parallelism — as an
// ErrVerify-classed error, or nil.
//
// Trials fan out across GOMAXPROCS workers; results are byte-identical at
// any worker count because each trial derives its inputs from (seed,
// trial) alone. Use VerifyParallel to pin the worker count.
//
// This is the library-level version of the test suite's central invariant,
// exposed so downstream users can validate kernels they generate (for
// example after extending the synthesis library).
func (k *Kernel) Verify(trials int, seed int64) error {
	return k.VerifyParallel(trials, seed, 0)
}

// VerifyParallel is Verify with an explicit worker count (<= 0 means
// GOMAXPROCS). Any worker count returns the same result.
func (k *Kernel) VerifyParallel(trials int, seed int64, workers int) (err error) {
	return k.VerifyCtx(nil, trials, seed, workers)
}

// VerifyCtx is VerifyParallel under the guard layer: workers observe ctx
// between trials (and the simulator observes it between micro-ops), so a
// canceled or deadline-expired context stops the sweep promptly with
// ErrCanceled/ErrDeadline — never reporting the partial sweep as a pass.
// The kernel's Options.Budget is enforced inside every trial.
func (k *Kernel) VerifyCtx(ctx context.Context, trials int, seed int64, workers int) (err error) {
	defer recoverToError(&err)
	return k.verifyTrials(ctx, trials, seed, workers, func(_ int, rows map[string][][]uint64, lanes int) (*RunResult, error) {
		return k.runRows(ctx, rows, lanes, nil)
	})
}

// VerifyUnderFault is Verify on a faulty DRAM substrate: every trial runs
// with the fault models of cfg injected (trial t uses seed+t as the
// injection seed, so each trial draws an independent but reproducible
// fault pattern). A returned ErrVerify-classed error means the faults
// caused silent data corruption the kernel could not mask; nil means every
// trial survived bit-exact. Compile with Options.Harden to make kernels
// that survive single intermediate-row faults which break their unhardened
// counterparts.
func (k *Kernel) VerifyUnderFault(trials int, seed int64, cfg FaultConfig) error {
	return k.VerifyUnderFaultParallel(trials, seed, cfg, 0)
}

// VerifyUnderFaultParallel is VerifyUnderFault with an explicit worker
// count (<= 0 means GOMAXPROCS). Any worker count returns the same
// result.
func (k *Kernel) VerifyUnderFaultParallel(trials int, seed int64, cfg FaultConfig, workers int) (err error) {
	return k.VerifyUnderFaultCtx(nil, trials, seed, cfg, workers)
}

// VerifyUnderFaultCtx is VerifyUnderFaultParallel under the guard layer
// (see VerifyCtx for the cancellation contract).
func (k *Kernel) VerifyUnderFaultCtx(ctx context.Context, trials int, seed int64, cfg FaultConfig, workers int) (err error) {
	defer recoverToError(&err)
	return k.verifyTrials(ctx, trials, seed, workers, func(trial int, rows map[string][][]uint64, lanes int) (*RunResult, error) {
		return k.runRowsUnderFault(ctx, rows, lanes, cfg, seed+int64(trial))
	})
}

// verifyTrials drives `trials` random-input runs through `run` and
// compares every output lane against the reference dataflow evaluation.
// Trials are independent units of work: inputs come from trialSeed(seed,
// trial), the lane count from verifyLaneSchedule, so the pool can place
// them on any worker without changing the outcome. Each trial runs on a
// pooled simulation machine (see machinePool): workers reuse subarray
// arenas, spill buffers and engine tables across trials instead of
// reallocating them, with Reconfigure resetting all trial state.
func (k *Kernel) verifyTrials(ctx context.Context, trials int, seed int64, workers int, run func(trial int, rows map[string][][]uint64, lanes int) (*RunResult, error)) error {
	if trials <= 0 {
		return optionsErrf("trials must be positive, have %d", trials)
	}
	return pool.RunCtx(ctx, workers, trials, func(trial int) error {
		lanes := verifyLaneSchedule[trial%len(verifyLaneSchedule)]
		rng := rand.New(rand.NewSource(trialSeed(seed, trial)))
		inWide := randWideInputs(rng, k.Inputs, lanes)
		k.clampAnnotated(inWide)
		rows := make(map[string][][]uint64, len(inWide))
		for _, in := range k.Inputs {
			rows[in.Name] = transpose.ToVerticalWide(inWide[in.Name], in.Width, lanes)
		}
		res, err := run(trial, rows, lanes)
		if err != nil {
			if guard.IsGuard(err) {
				// Budget/cancellation stops keep their sentinel identity
				// instead of being re-classed as verification failures.
				return err
			}
			return stagef(ErrVerify, "chopper: verify", "trial %d: %v", trial, err)
		}
		got := make(map[string][][]uint64, len(k.Outputs))
		for _, o := range k.Outputs {
			got[o.Name] = transpose.FromVerticalWide(res.Rows[o.Name], o.Width, lanes)
		}

		return k.compareTrial(trial, inWide, got, lanes)
	})
}

// compareTrial checks one trial's outputs lane by lane against the
// reference dataflow evaluation. It is shared between the solo sweep
// (verifyTrials) and the batched sweep (VerifyBatchCtx) so the two paths
// report byte-identical discrepancies.
func (k *Kernel) compareTrial(trial int, inWide, got map[string][][]uint64, lanes int) error {
	for l := 0; l < lanes; l++ {
		ref := make(map[string]*big.Int, len(k.Inputs))
		for name, vals := range inWide {
			ref[name] = limbsToBig(vals[l])
		}
		want, err := k.Graph.Eval(ref)
		if err != nil {
			return stagef(ErrVerify, "chopper: verify", "trial %d: reference eval: %v", trial, err)
		}
		for _, out := range k.Outputs {
			gotV := limbsToBig(got[out.Name][l])
			if gotV.Cmp(want[out.Name]) != 0 {
				return stagef(ErrVerify, "chopper: verify", "trial %d lane %d: output %q = %v, reference says %v",
					trial, l, out.Name, gotV, want[out.Name])
			}
		}
	}
	return nil
}

// randWideInputs draws one batch of random operand values in wide
// (limbs-per-lane) layout.
func randWideInputs(rng *rand.Rand, inputs []IOSpec, lanes int) map[string][][]uint64 {
	inWide := make(map[string][][]uint64, len(inputs))
	for _, in := range inputs {
		limbs := (in.Width + 63) / 64
		vals := make([][]uint64, lanes)
		for l := range vals {
			v := make([]uint64, limbs)
			for i := range v {
				v[i] = rng.Uint64()
			}
			if r := in.Width % 64; r != 0 {
				v[limbs-1] &= (uint64(1) << uint(r)) - 1
			}
			vals[l] = v
		}
		inWide[in.Name] = vals
	}
	return inWide
}

// clampAnnotated folds randomly drawn inputs into their @range bounds. A
// kernel compiled with annotated narrowing is only contractually correct
// for inputs the annotations admit, so its verification sweeps must draw
// from that set: each raw draw x becomes lo + (x mod (hi-lo+1)), keeping
// trials deterministic in the seed. Kernels without annotations (and every
// safe-mode kernel) pass through untouched.
func (k *Kernel) clampAnnotated(inWide map[string][][]uint64) {
	if len(k.inputRanges) == 0 {
		return
	}
	for _, in := range k.Inputs {
		r, ok := k.inputRanges[in.Name]
		if !ok || r.Lo == nil || r.Hi == nil || r.Lo.Sign() < 0 ||
			r.Lo.Cmp(r.Hi) > 0 || r.Hi.BitLen() > in.Width {
			continue
		}
		span := new(big.Int).Sub(r.Hi, r.Lo)
		span.Add(span, big.NewInt(1))
		for _, limbs := range inWide[in.Name] {
			v := limbsToBig(limbs)
			v.Mod(v, span).Add(v, r.Lo)
			bigToLimbs(v, limbs)
		}
	}
}

func limbsToBig(limbs []uint64) *big.Int {
	v := new(big.Int)
	for i := len(limbs) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(limbs[i]))
	}
	return v
}

// bigToLimbs writes v back into an existing little-endian limb slice; v
// must fit (callers only shrink values, never widen them).
func bigToLimbs(v *big.Int, limbs []uint64) {
	t := new(big.Int).Set(v)
	low := new(big.Int)
	mask := new(big.Int).SetUint64(^uint64(0))
	for i := range limbs {
		limbs[i] = low.And(t, mask).Uint64()
		t.Rsh(t, 64)
	}
}

// TransposeCost reports the host-side transposition work for one tile of
// the kernel (rows to produce, bytes to move), a quantity front-of-house
// tooling displays; the compiled program's WRITE count matches it.
func (k *Kernel) TransposeCost(lanes int) (rows int, bytes int64) {
	words := transpose.Words(lanes)
	for _, in := range k.Inputs {
		rows += in.Width
	}
	return rows, int64(rows) * int64(words) * 8
}
