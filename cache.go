package chopper

import (
	"context"
	"strconv"
	"strings"

	"chopper/internal/guard"
	"chopper/internal/kcache"
)

// CacheStats is a snapshot of a KernelCache's hit/miss/eviction counters.
type CacheStats = kcache.Stats

// KernelCache is a bounded, content-addressed cache of compiled kernels.
// Keys are SHA-256 addresses of (pipeline, normalized source, canonical
// Options), so a repeat Compile of the same program costs a map lookup
// instead of the DSL -> bitslice -> OBS -> codegen pipeline. Kernels are
// immutable after compilation and the cache is safe for concurrent use,
// so one cache can serve every goroutine of a server.
//
// Attach a cache via Options.Cache, or use the process-wide SharedCache.
type KernelCache struct {
	c *kcache.Cache[*Kernel]
}

// NewKernelCache creates a cache bounded to maxEntries compiled kernels
// (<= 0 means kcache.DefaultEntries). Eviction is LRU.
func NewKernelCache(maxEntries int) *KernelCache {
	return &KernelCache{c: kcache.New[*Kernel](maxEntries)}
}

// Stats returns the cache counters (hits, misses, evictions, entries).
func (kc *KernelCache) Stats() CacheStats { return kc.c.Stats() }

// sharedCache is the process-wide kernel cache for server-style callers
// that compile the same sources over and over from many goroutines.
var sharedCache = NewKernelCache(256)

// SharedCache returns the process-wide kernel cache. Typical use:
//
//	opts := chopper.Options{Target: chopper.Ambit, Cache: chopper.SharedCache()}
//	k, err := chopper.Compile(src, opts) // first call compiles, repeats hit
func SharedCache() *KernelCache { return sharedCache }

// normalizeSource canonicalizes source text for content addressing: CRLF
// becomes LF and trailing whitespace (per line and surrounding) is
// dropped, so formatting-only differences still hit.
func normalizeSource(src string) string {
	src = strings.ReplaceAll(src, "\r\n", "\n")
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " \t")
	}
	return strings.TrimSpace(strings.Join(lines, "\n"))
}

// cacheKey builds the content address for one compilation request. opts
// must already be normalized; pipeline names the entry point ("chopper",
// "baseline", "horizontal") since the three back-ends produce different
// kernels from identical source. Options.Cache itself is deliberately
// not part of the key.
func cacheKey(pipeline, src string, opts Options) string {
	g := opts.Geometry
	return kcache.Key(
		pipeline,
		normalizeSource(src),
		opts.Target.String(),
		opts.Opt.String(),
		opts.Entry,
		strconv.FormatBool(opts.Harden),
		strconv.Itoa(g.Banks),
		strconv.Itoa(g.SubarraysPB),
		strconv.Itoa(g.RowsPerSub),
		strconv.Itoa(g.RowBytes),
		strconv.Itoa(g.ReservedRows),
		strconv.Itoa(g.Channels),
		// Budgets change what compiles (a capped emission fails where an
		// uncapped one succeeds), so they are part of the content address.
		strconv.Itoa(opts.Budget.MaxMicroOps),
		strconv.Itoa(opts.Budget.MaxDRAMCommands),
		strconv.Itoa(opts.Budget.MaxNetGates),
		strconv.Itoa(opts.Budget.MaxSimSteps),
		// Recovery options live on the kernel (runs consult them), so two
		// compiles differing only in recovery must not share an entry.
		strconv.Itoa(int(opts.Recovery.Detector)),
		strconv.Itoa(opts.Recovery.EpochUops),
		strconv.Itoa(opts.Recovery.MaxRetries),
		strconv.FormatInt(opts.Recovery.Backoff.Nanoseconds(), 10),
		// Timing-replay options also live on the kernel: RunTiled consults
		// SALP, the emitter mode and the host-transfer model.
		strconv.FormatBool(opts.SALP),
		strconv.Itoa(int(opts.Emitter)),
		// Narrowing changes the emitted program, so the mode is part of
		// the content address.
		strconv.Itoa(int(opts.Narrow)),
		strconv.FormatFloat(opts.Transfer.ChannelBWGBs, 'g', -1, 64),
		strconv.FormatFloat(opts.Transfer.DMASetupNs, 'g', -1, 64),
	)
}

// CacheOutcome reports how a compile interacted with Options.Cache:
// served from the cache, deduplicated onto another goroutine's in-flight
// compile of the same content address, or compiled fresh.
type CacheOutcome int

const (
	// CacheNone means no cache was attached (Options.Cache == nil).
	CacheNone CacheOutcome = iota
	// CacheMiss means this call ran the compile pipeline itself (and, on
	// success, populated the cache).
	CacheMiss
	// CacheHit means the kernel was already resident.
	CacheHit
	// CacheShared means this call joined a concurrent identical compile
	// already in flight and shared its result without compiling.
	CacheShared
)

func (o CacheOutcome) String() string {
	switch o {
	case CacheMiss:
		return "miss"
	case CacheHit:
		return "hit"
	case CacheShared:
		return "shared"
	default:
		return "none"
	}
}

// CompileCtxCached is CompileCtx reporting how the kernel cache served
// the call — the entry point for servers that surface cache behavior per
// request (chopperd's responses carry the outcome, and its hit-rate
// metrics are built from it). With no cache attached the outcome is
// CacheNone and the call is a plain CompileCtx.
func CompileCtxCached(ctx context.Context, src string, opts Options) (k *Kernel, outcome CacheOutcome, err error) {
	defer recoverToError(&err)
	opts = opts.normalize()
	if err := opts.validate(); err != nil {
		return nil, CacheNone, err
	}
	if err := guard.Ctx(ctx); err != nil {
		return nil, CacheNone, err
	}
	return cachedCompileOutcome("chopper", src, opts, func() (*Kernel, error) {
		return compileSource(ctx, src, opts)
	})
}

// CompileBaselineCached is CompileBaseline reporting the cache outcome
// (see CompileCtxCached).
func CompileBaselineCached(src string, opts Options) (k *Kernel, outcome CacheOutcome, err error) {
	defer recoverToError(&err)
	opts = opts.normalize()
	if err := opts.validate(); err != nil {
		return nil, CacheNone, err
	}
	return cachedCompileOutcome("baseline", src, opts, func() (*Kernel, error) {
		return compileBaselineSource(src, opts)
	})
}

// cachedCompile wraps a compile function with the content-addressed
// lookup when opts carries a cache; otherwise it just compiles.
func cachedCompile(pipeline, src string, opts Options, compile func() (*Kernel, error)) (*Kernel, error) {
	k, _, err := cachedCompileOutcome(pipeline, src, opts, compile)
	return k, err
}

// cachedCompileOutcome is the single-flight core: concurrent compiles of
// the same content address perform one pipeline run and share the
// resulting kernel (kernels are immutable after compilation, so sharing
// is safe — it is what the cache does on a hit anyway). Compile errors
// are shared with concurrent waiters but never cached, so a transient
// failure does not poison the key.
func cachedCompileOutcome(pipeline, src string, opts Options, compile func() (*Kernel, error)) (*Kernel, CacheOutcome, error) {
	if opts.Cache == nil {
		k, err := compile()
		return k, CacheNone, err
	}
	key := cacheKey(pipeline, src, opts)
	k, out, err := opts.Cache.c.Do(key, compile)
	if err != nil {
		return nil, mapOutcome(out), err
	}
	return k, mapOutcome(out), nil
}

func mapOutcome(o kcache.Outcome) CacheOutcome {
	switch o {
	case kcache.Hit:
		return CacheHit
	case kcache.Shared:
		return CacheShared
	default:
		return CacheMiss
	}
}
