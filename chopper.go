// Package chopper is a compiler infrastructure for programmable bit-serial
// SIMD Processing-Using-DRAM (PUD), reproducing the system described in
// "CHOPPER: A Compiler Infrastructure for Programmable Bit-serial SIMD
// Processing Using Memory in DRAM" (HPCA 2023).
//
// Programs are written in a synchronous dataflow language (see the dsl
// package and the examples directory), compiled through bit-slicing into
// 1-bit logic operations, optimized by the three OBS passes, and lowered to
// micro-op programs (AAP/AP/WRITE/READ) for the Ambit, ELP2IM and SIMDRAM
// in-DRAM computing substrates. A functional simulator executes compiled
// programs bit-exactly, and a command-level timing model (with bank- and
// subarray-level parallelism and an SSD spill model) evaluates them.
//
// Basic use:
//
//	k, err := chopper.Compile(src, chopper.Options{Target: chopper.Ambit})
//	out, err := k.Run(map[string][]uint64{"a": {...}, "b": {...}}, lanes)
package chopper

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"chopper/internal/baseline"
	"chopper/internal/bitslice"
	"chopper/internal/codegen"
	"chopper/internal/dfg"
	"chopper/internal/dram"
	"chopper/internal/dsl"
	"chopper/internal/fault"
	"chopper/internal/guard"
	"chopper/internal/hostmodel"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/narrow"
	"chopper/internal/obs"
	"chopper/internal/pool"
	"chopper/internal/sim"
	"chopper/internal/transpose"
	"chopper/internal/typecheck"
	"chopper/internal/vircoe"
)

// Target identifies a Bit-serial SIMD PUD architecture.
type Target = isa.Arch

// Supported targets.
const (
	Ambit   = isa.Ambit
	ELP2IM  = isa.ELP2IM
	SIMDRAM = isa.SIMDRAM
)

// OptLevel is a cumulative OBS optimization level (the paper's breakdown
// variants): Bitslice ⊂ Schedule ⊂ Reuse ⊂ Rename (= full CHOPPER).
type OptLevel = obs.Variant

// Optimization levels.
const (
	OptBitslice = obs.Bitslice
	OptSchedule = obs.Schedule
	OptReuse    = obs.Reuse
	OptFull     = obs.Rename
)

// EmitterMode selects the VIRCOE emitter's assumption about the device
// when RunTiled interleaves the issue stream (see internal/vircoe): the
// emitter believes either that banks are the parallel units or that every
// subarray is one. An assumption that disagrees with the timing model's
// SALP setting reproduces the paper's Figure 12 degradation; the default
// keeps them consistent.
type EmitterMode int

const (
	// EmitterAuto matches the emitter to the timing model: subarray-aware
	// when Options.SALP is set, bank-aware otherwise.
	EmitterAuto EmitterMode = iota
	// EmitterBankAware assumes banks are parallel and same-bank subarrays
	// serialize (true on any device).
	EmitterBankAware
	// EmitterSubarrayAware assumes every subarray is an independent unit
	// (true only with Subarray-Level Parallelism enabled).
	EmitterSubarrayAware
)

func (m EmitterMode) String() string {
	switch m {
	case EmitterBankAware:
		return "bank-aware"
	case EmitterSubarrayAware:
		return "subarray-aware"
	default:
		return "auto"
	}
}

// NarrowMode selects the precision-inference middle end (internal/narrow):
// a range/demanded-bits analysis over the dataflow graph that shrinks each
// value to its live bits before bit-slicing. Bit-serial cost is linear in
// operand width, so narrowing directly cuts emitted micro-ops and
// makespan; narrowed kernels still verify bit-identically against the
// original graph's golden reference.
type NarrowMode int

const (
	// NarrowOff disables the pass; output is byte-identical to a build
	// without it.
	NarrowOff NarrowMode = iota
	// NarrowSafe narrows using only facts provable from the program
	// (constants, shifts, comparison results, conversion truncations).
	// Always sound, no annotations consulted.
	NarrowSafe
	// NarrowAnnotated additionally trusts @range(name, lo, hi)
	// annotations on the entry node. Inputs are then contractually
	// confined to their annotated ranges: Verify and the fault harnesses
	// clamp generated inputs to them, and running a kernel on
	// out-of-range inputs yields unspecified (but still deterministic)
	// output values.
	NarrowAnnotated
)

func (m NarrowMode) String() string {
	switch m {
	case NarrowSafe:
		return "safe"
	case NarrowAnnotated:
		return "annotated"
	default:
		return "off"
	}
}

// NarrowReport summarizes what the precision-inference pass did to one
// kernel (Kernel.Narrow; nil when the pass was off or fell back).
type NarrowReport struct {
	// Mode is the narrowing mode the kernel compiled under.
	Mode NarrowMode
	// Values is the value count of the pre-narrowing graph.
	Values int
	// Narrowed counts values emitted below their declared width;
	// DeadValues counts values dropped as unreachable from any output.
	Narrowed   int
	DeadValues int
	// DeclaredBits sums declared widths before the pass; LiveBits sums
	// the widths actually emitted. Their ratio is the width-level win.
	DeclaredBits int
	LiveBits     int
	// ResizesInserted counts width-boundary resize nodes added;
	// SignedRewrites counts signed ops proven sign-clear and rewritten
	// unsigned; SplitCompares counts wide-vs-narrow comparisons split
	// into a high-bits check plus a narrow compare; ReassocChains counts
	// add chains rebalanced for narrower partial sums.
	ResizesInserted int
	SignedRewrites  int
	SplitCompares   int
	ReassocChains   int
}

// HostTransfer configures the host<->DRAM DMA model RunTiled charges for
// scattering inputs into the subarrays and gathering outputs back. The
// zero value selects the evaluation default (one DDR4-2400 channel's
// 19.2 GB/s per channel, 600 ns DMA setup); a non-zero value must carry a
// positive bandwidth.
type HostTransfer struct {
	// ChannelBWGBs is the sustained host<->DRAM bandwidth of one memory
	// channel in GB/s; an n-channel geometry streams at n times this.
	ChannelBWGBs float64
	// DMASetupNs is the fixed per-DMA-direction overhead in nanoseconds
	// (descriptor programming, doorbell, completion).
	DMASetupNs float64
}

// model converts to the internal transfer model. t must already be
// normalized (zero value replaced by the default).
func (t HostTransfer) model() hostmodel.Transfer {
	return hostmodel.Transfer{ChannelBWGBs: t.ChannelBWGBs, DMASetupNs: t.DMASetupNs}
}

// Options configure compilation.
type Options struct {
	// Target selects the PUD architecture. Default Ambit.
	Target Target
	// Opt selects the optimization level. Default OptFull.
	Opt OptLevel
	// Geometry describes the DRAM device. Zero value = evaluation default
	// (16 banks, 64 subarrays/bank, 1024 rows, 8 KB rows, 1 channel).
	Geometry dram.Geometry
	// SALP enables Subarray-Level Parallelism in the timing model: tiled
	// runs schedule each subarray as an independent unit instead of
	// serializing same-bank subarrays. Off by default (the base device of
	// the evaluation has no SALP).
	SALP bool
	// Emitter selects the VIRCOE emitter mode for tiled runs. The
	// default, EmitterAuto, follows SALP.
	Emitter EmitterMode
	// Transfer is the host<->DRAM DMA cost model for tiled runs; the
	// zero value selects the evaluation default.
	Transfer HostTransfer
	// Entry selects the entry node; "" uses "main" or the last node.
	Entry string
	// Harden enables triple-modular-redundancy codegen: the legalized
	// logic net is triplicated and every output majority-voted, so any
	// single corrupted intermediate row (a TRA charge-sharing flip, a
	// bad AAP copy) is outvoted instead of reaching the output. Costs
	// roughly 3x the micro-ops plus a vote per output bit; quantify with
	// Kernel.Reliability and see docs/RELIABILITY.md for the trade-offs.
	// CHOPPER pipeline only (CompileBaseline rejects it).
	Harden bool
	// Budget caps resource dimensions (micro-ops emitted, logic-net
	// gates, simulator steps, DRAM commands) at deterministic
	// checkpoints; the zero value is unlimited. Exceeding a dimension
	// surfaces as a *BudgetError matching ErrBudget. See docs/GUARDS.md.
	Budget Budget
	// Recovery configures self-healing execution: epoch checkpoints, an
	// online error detector, retention scrubbing and bounded
	// retry/backoff replay. The zero value disables it (runs stay
	// byte-identical to a recovery-free build); RunResult.RecoveryStats
	// reports what the layer did. Single-subarray runs only (RunTiled
	// rejects it). See docs/RELIABILITY.md.
	Recovery Recovery
	// Narrow selects the precision-inference middle end. The default,
	// NarrowOff, compiles every value at its declared width; NarrowSafe
	// narrows to provably live bits; NarrowAnnotated additionally trusts
	// @range annotations. Kernel.Narrow reports what the pass did. See
	// docs/PERFORMANCE.md ("Precision-adaptive compilation").
	Narrow NarrowMode
	// SetOpt marks Opt as explicitly set (distinguishes OptBitslice, which
	// is the zero value, from "use the default"). Use WithOpt to build
	// Options fluently, or set both fields.
	SetOpt bool
	// Cache, when non-nil, memoizes compilation: Compile, CompileBaseline
	// and CompileHorizontal first look up the SHA-256 content address of
	// (normalized source, canonical options) and return the cached kernel
	// on a hit, skipping the whole pipeline. Kernels are immutable after
	// compilation, so a cached kernel is safe to share across goroutines.
	// The Cache field itself is not part of the cache key. See
	// NewKernelCache and SharedCache; docs/CONCURRENCY.md has the keying
	// and eviction contract.
	Cache *KernelCache
}

// WithOpt returns o with the optimization level set.
func (o Options) WithOpt(lv OptLevel) Options {
	o.Opt = lv
	o.SetOpt = true
	return o
}

func (o Options) normalize() Options {
	if !o.SetOpt {
		o.Opt = OptFull
		o.SetOpt = true
	}
	if o.Geometry == (dram.Geometry{}) {
		o.Geometry = dram.DefaultGeometry()
	}
	if o.Transfer == (HostTransfer{}) {
		def := hostmodel.DefaultTransfer()
		o.Transfer = HostTransfer{ChannelBWGBs: def.ChannelBWGBs, DMASetupNs: def.DMASetupNs}
	}
	o.Recovery = o.Recovery.normalize()
	return o
}

// validate rejects nonsensical options with ErrOptions-classed errors.
// o must already be normalized.
func (o Options) validate() error {
	if err := o.Budget.Validate(); err != nil {
		return optionsErrf("%v", err)
	}
	if o.Opt < OptBitslice || o.Opt > OptFull {
		return optionsErrf("unknown optimization level %d", int(o.Opt))
	}
	if o.Emitter < EmitterAuto || o.Emitter > EmitterSubarrayAware {
		return optionsErrf("unknown emitter mode %d", int(o.Emitter))
	}
	if o.Narrow < NarrowOff || o.Narrow > NarrowAnnotated {
		return optionsErrf("unknown narrowing mode %d", int(o.Narrow))
	}
	if err := o.Transfer.model().Validate(); err != nil {
		return optionsErrf("%v", err)
	}
	if err := o.Recovery.validate(); err != nil {
		return err
	}
	return o.Geometry.Validate()
}

// emitterMode resolves Options.Emitter onto the internal emitter mode,
// following SALP when the mode is EmitterAuto.
func (o Options) emitterMode() vircoe.Mode {
	switch o.Emitter {
	case EmitterBankAware:
		return vircoe.BankAware
	case EmitterSubarrayAware:
		return vircoe.SubarrayAware
	default:
		if o.SALP {
			return vircoe.SubarrayAware
		}
		return vircoe.BankAware
	}
}

// IOSpec describes one operand of a compiled kernel.
type IOSpec struct {
	Name  string
	Width int // bits
}

// Kernel is a compiled program for one PUD subarray — produced either by
// the CHOPPER pipeline (Compile) or by the hands-tuned SIMDRAM methodology
// (CompileBaseline).
type Kernel struct {
	Opts Options

	// Program is the DSL AST (exported for tooling; nil for graph-compiled
	// kernels).
	Program *dsl.Program
	// Graph is the normalized dataflow graph.
	Graph *dfg.Graph
	// Net is the legalized bit-sliced logic net (nil for baseline kernels,
	// which lower per multi-bit operation).
	Net *logic.Net
	// Code is the CHOPPER-generated micro-op program and host interface
	// (nil for baseline kernels).
	Code *codegen.Result
	// Baseline is the hands-tuned result (nil for CHOPPER kernels).
	Baseline *baseline.Result

	// Inputs and Outputs describe the kernel interface in program order.
	Inputs  []IOSpec
	Outputs []IOSpec

	// Degradation is non-nil when the compiler could not use the
	// requested optimization pipeline and walked the degradation ladder
	// (full -> pass-disabled -> OptBitslice) instead; it records which
	// levels failed and why, and the level this kernel actually compiled
	// at. Nil means the requested pipeline worked.
	Degradation *DegradationReport

	// Narrow reports what the precision-inference pass did (bits
	// declared vs live, values narrowed, rewrites applied). Nil when
	// Options.Narrow is NarrowOff — or when the pass fell back to the
	// declared-width graph because it could not prove its own rewrite
	// well-formed, so nil is also the "not actually narrowed" signal.
	Narrow *NarrowReport

	prog         *isa.Program
	inputTag     map[string]int
	outputTag    map[string]int
	constPattern map[int]uint64

	// inputRanges holds the trusted @range annotations the kernel
	// compiled under (NarrowAnnotated only): verify and reliability
	// trials clamp their generated inputs into these ranges.
	inputRanges map[string]narrow.Range

	// decoded caches the pre-decoded execution stream of prog (built once,
	// on first run). Kernels are immutable after compilation, so the cache
	// is safe to share across goroutines — which is exactly what the
	// parallel verify/reliability sweeps do with a cached kernel.
	decodeOnce sync.Once
	decoded    *sim.Decoded
}

// decodedProg returns the kernel's pre-decoded execution stream, building
// it on first use.
func (k *Kernel) decodedProg() *sim.Decoded {
	k.decodeOnce.Do(func() { k.decoded = sim.Decode(k.prog) })
	return k.decoded
}

// machinePool recycles simulation machines (subarray arenas, spill buffers,
// timing-engine tables) across runs: a verify or reliability sweep reuses
// one machine per worker instead of reallocating per trial. Machines are
// reset via Reconfigure on checkout, so no trial state leaks between runs.
var machinePool = sync.Pool{New: func() any { return new(sim.Machine) }}

func getMachine(cfg sim.MachineConfig) *sim.Machine {
	m := machinePool.Get().(*sim.Machine)
	m.Reconfigure(cfg)
	return m
}

func putMachine(m *sim.Machine) { machinePool.Put(m) }

// compilePool recycles the code generator's per-compile scratch arena
// (location tables, CSR use/output indices, the row-allocator free list)
// across compiles, the same way machinePool recycles simulators. The
// scratch is reset by Generate on checkout, so no state leaks between
// kernels; it is returned to the pool only after the last pass that
// reads it has finished.
var compilePool = sync.Pool{New: func() any { return new(codegen.Scratch) }}

// Prog returns the compiled micro-op program.
func (k *Kernel) Prog() *isa.Program { return k.prog }

// Compile compiles CHOPPER source into a kernel. Failures are classed by
// pipeline stage (ErrParse, ErrTypecheck, ErrNormalize, ErrCodegen) and
// internal panics surface as ErrInternal errors, never as crashes.
//
// With Options.Cache set, a repeat compile of the same (source, Options)
// pair returns the previously compiled kernel in O(1).
func Compile(src string, opts Options) (k *Kernel, err error) {
	return CompileCtx(nil, src, opts)
}

// CompileCtx is Compile under the guard layer: a non-nil ctx is observed
// at pipeline checkpoints (including inside codegen emission), so a
// canceled or deadline-expired context stops the compile promptly with
// ErrCanceled/ErrDeadline; Options.Budget is enforced at the same
// checkpoints. A nil ctx disables the cancellation checks.
func CompileCtx(ctx context.Context, src string, opts Options) (k *Kernel, err error) {
	k, _, err = CompileCtxCached(ctx, src, opts)
	return k, err
}

func compileSource(ctx context.Context, src string, opts Options) (*Kernel, error) {
	prog, err := dsl.ParseAndExpand(src)
	if err != nil {
		return nil, stage(ErrParse, "chopper: parse", err)
	}
	checked, err := typecheck.Check(prog)
	if err != nil {
		return nil, stage(ErrTypecheck, "chopper: typecheck", err)
	}
	entry := opts.Entry
	if entry == "" {
		e := prog.Entry()
		if e == nil {
			return nil, stagef(ErrNormalize, "chopper: normalize", "no entry node")
		}
		entry = e.Name
	}
	graph, err := dfg.BuildNode(checked, entry)
	if err != nil {
		return nil, stage(ErrNormalize, "chopper: normalize", err)
	}
	var ranges map[string]narrow.Range
	if opts.Narrow == NarrowAnnotated {
		if e := prog.Lookup(entry); e != nil {
			for name, r := range typecheck.InputRanges(e) {
				if ranges == nil {
					ranges = make(map[string]narrow.Range)
				}
				ranges[name] = narrow.Range{Lo: r.Lo, Hi: r.Hi}
			}
		}
	}
	return compileGraph(ctx, prog, entry, graph, opts, ranges)
}

// compileGraph drives the graceful-degradation ladder: it attempts the
// back-end pipeline at the requested optimization level and, when a pass
// panics or its output fails the inter-pass structural check, retries one
// cumulative level lower (disabling the failed pass and everything above
// it), down to the un-optimized OptBitslice pipeline. Abandoned attempts
// are recorded in a DegradationReport on the kernel. Ordinary input
// errors and guard stops (budget, cancellation) fail directly — retrying
// cannot fix the former and must not mask the latter.
func compileGraph(ctx context.Context, prog *dsl.Program, entry string, graph *dfg.Graph, opts Options, ranges map[string]narrow.Range) (*Kernel, error) {
	// Honour the @noreuse annotation: the OBS-2 hook that lets programmers
	// "transparently decide whether this optimization shall be enforced".
	opt := opts.Opt
	if prog != nil {
		if e := prog.Lookup(entry); e != nil && e.HasAttr("noreuse") && opt == obs.Reuse {
			opt = obs.Schedule
		}
	}

	// Precision inference runs once, ahead of the degradation ladder: the
	// narrowed graph feeds bit-slicing while the original stays the
	// kernel's interface and golden reference. Narrowing is an
	// optimization, so any failure — a pass panic, or the pass declining
	// its own rewrite — silently falls back to the declared-width graph;
	// Kernel.Narrow == nil is the fallback signal.
	lower := graph
	var nrep *NarrowReport
	if opts.Narrow != NarrowOff {
		if err := protect("narrow", func() error {
			ng, st, err := narrow.Run(graph, narrow.Opts{Ranges: ranges})
			if err != nil {
				return stage(ErrCodegen, "chopper: narrow", err)
			}
			lower = ng
			nrep = &NarrowReport{
				Mode: opts.Narrow, Values: st.Values,
				Narrowed: st.Narrowed, DeadValues: st.DeadValues,
				DeclaredBits: st.DeclaredBits, LiveBits: st.LiveBits,
				ResizesInserted: st.ResizesInserted, SignedRewrites: st.SignedRewrites,
				SplitCompares: st.SplitCompares, ReassocChains: st.ReassocChains,
			}
			return nil
		}); err != nil {
			lower, nrep = graph, nil
		}
	}

	report := &DegradationReport{Requested: opt}
	for lv := opt; ; lv-- {
		k, err := compileGraphAt(ctx, prog, graph, lower, opts, lv)
		if err == nil {
			report.Effective = lv
			if report.Degraded() {
				k.Degradation = report
			}
			k.Narrow = nrep
			if opts.Narrow == NarrowAnnotated {
				k.inputRanges = ranges
			}
			return k, nil
		}
		pf, ok := degradable(err)
		if !ok {
			return nil, err
		}
		report.Events = append(report.Events, DegradationEvent{Opt: lv, Stage: pf.stage, Reason: pf.reason})
		if lv == OptBitslice {
			return nil, stagef(ErrInternal, "chopper: internal",
				"all optimization levels failed; last: pass %s: %s", pf.stage, pf.reason)
		}
	}
}

// compileGraphAt runs the back-end pipeline at one fixed optimization
// level, with every pass under panic isolation and a structural self-check
// after each one. Pass panics and check failures come back as *passFailure
// for the ladder in compileGraph; budget and cancellation checkpoints
// surface guard errors directly.
// graph is the kernel's interface and golden reference; lower is the
// graph actually lowered (the narrowed graph when precision inference ran,
// otherwise graph itself).
func compileGraphAt(ctx context.Context, prog *dsl.Program, graph, lower *dfg.Graph, opts Options, opt OptLevel) (*Kernel, error) {
	b := opts.Budget

	// Parallel bit-slicing of independent equations. Kept serial when a
	// kernel cache absorbs repeat compiles anyway, or when budgets are
	// set: the guard checkpoints then observe exactly the serial pass
	// sequence, so truncation points stay reproducible.
	workers := 1
	if opts.Cache == nil && b == (Budget{}) {
		workers = pool.Size(0)
	}

	var net *logic.Net
	if err := protect("bitslice", func() error {
		n, err := bitslice.Lower(lower, bitslice.Options{Fold: opt.HasReuse(), Workers: workers})
		if err != nil {
			return stage(ErrCodegen, "chopper: bitslice", err)
		}
		net = n
		return nil
	}); err != nil {
		return nil, err
	}
	if err := guard.Check(guard.DimNetGates, b.MaxNetGates, len(net.Gates)); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, checkFailure("bitslice", err)
	}
	if err := guard.Ctx(ctx); err != nil {
		return nil, err
	}

	var leg *logic.Net
	if err := protect("legalize", func() error {
		l, err := logic.Legalize(net, opts.Target, logic.BuilderOptions{Fold: opt.HasReuse(), CSE: true})
		if err != nil {
			return stage(ErrCodegen, "chopper: legalize", err)
		}
		leg = l.DCE()
		return nil
	}); err != nil {
		return nil, err
	}
	if opts.Harden {
		if err := protect("harden", func() error {
			h, err := logic.TMR(leg, logic.NativeGates(opts.Target))
			if err != nil {
				return stage(ErrCodegen, "chopper: harden", err)
			}
			leg = h
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := guard.Check(guard.DimNetGates, b.MaxNetGates, len(leg.Gates)); err != nil {
		return nil, err
	}
	if err := leg.Validate(); err != nil {
		return nil, checkFailure("legalize", err)
	}
	if err := guard.Ctx(ctx); err != nil {
		return nil, err
	}

	var code *codegen.Result
	scratch := compilePool.Get().(*codegen.Scratch)
	defer compilePool.Put(scratch)
	if err := protect("codegen", func() error {
		c, err := codegen.Generate(leg, codegen.Options{
			Arch:    opts.Target,
			Variant: opt,
			DRows:   opts.Geometry.DRows(),
			MaxOps:  b.MaxMicroOps,
			Ctx:     ctx,
			Scratch: scratch,
		})
		if err != nil {
			if guard.IsGuard(err) {
				return err
			}
			return stage(ErrCodegen, "chopper: codegen", err)
		}
		code = c
		return nil
	}); err != nil {
		return nil, err
	}
	// isa.Program.Validate as the inter-pass invariant: a structurally
	// broken program from a buggy pass degrades instead of shipping.
	if err := code.Prog.Validate(opts.Geometry.DRows()); err != nil {
		return nil, checkFailure("codegen", err)
	}

	k := &Kernel{
		Opts: opts, Program: prog, Graph: graph, Net: leg, Code: code,
		prog: code.Prog, inputTag: code.InputTag, outputTag: code.OutputTag,
		constPattern: code.ConstPattern,
	}
	for _, in := range graph.Inputs {
		v := graph.Values[in]
		k.Inputs = append(k.Inputs, IOSpec{Name: v.Name, Width: v.Width})
	}
	for i, o := range graph.Outputs {
		k.Outputs = append(k.Outputs, IOSpec{Name: graph.OutputNames[i], Width: graph.Values[o].Width})
	}
	return k, nil
}

// CompileGraph compiles an already-built dataflow graph (used by workload
// generators that synthesize graphs directly).
func CompileGraph(graph *dfg.Graph, opts Options) (k *Kernel, err error) {
	defer recoverToError(&err)
	opts = opts.normalize()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return compileGraph(nil, nil, "", graph, opts, nil)
}

// splitBit parses "name[3]" into ("name", 3).
func splitBit(s string) (string, int, error) {
	i := strings.LastIndexByte(s, '[')
	if i < 0 || !strings.HasSuffix(s, "]") {
		return "", 0, fmt.Errorf("chopper: malformed bit name %q", s)
	}
	bit, err := strconv.Atoi(s[i+1 : len(s)-1])
	if err != nil {
		return "", 0, err
	}
	return s[:i], bit, nil
}

// hostIO builds the WRITE source / READ sink for a run over transposed
// operand rows.
func (k *Kernel) hostIO(rows map[string][][]uint64, lanes int) (*sim.HostIO, map[string][][]uint64, error) {
	words := transpose.Words(lanes)
	mask := ^uint64(0)
	if r := lanes % 64; r != 0 {
		mask = (uint64(1) << uint(r)) - 1
	}

	// tag -> row data for inputs (tags may interleave with constant-row
	// tags, so this is a sparse map).
	writeRows := make(map[int][]uint64, len(k.inputTag))
	for name, tag := range k.inputTag {
		base, bit, err := splitBit(name)
		if err != nil {
			return nil, nil, err
		}
		op, ok := rows[base]
		if !ok {
			return nil, nil, fmt.Errorf("chopper: missing input operand %q", base)
		}
		if bit >= len(op) {
			return nil, nil, fmt.Errorf("chopper: input %q has %d bit-rows, kernel needs bit %d", base, len(op), bit)
		}
		writeRows[tag] = op[bit]
	}

	outRows := make(map[string][][]uint64)
	for _, o := range k.Outputs {
		rs := make([][]uint64, o.Width)
		for b := range rs {
			rs[b] = make([]uint64, words)
		}
		outRows[o.Name] = rs
	}
	outByTag := make(map[int]func([]uint64), len(k.outputTag))
	for name, tag := range k.outputTag {
		base, bit, err := splitBit(name)
		if err != nil {
			return nil, nil, err
		}
		dst := outRows[base]
		if bit >= len(dst) {
			return nil, nil, fmt.Errorf("chopper: output bit %q out of range", name)
		}
		b := bit
		outByTag[tag] = func(data []uint64) { copy(dst[b], data) }
	}

	// Constant-pattern rows are materialized once per run, not once per
	// WRITE: the simulator copies the payload into the subarray, so a
	// shared backing row is safe to hand out repeatedly.
	var constRows map[int][]uint64
	if len(k.constPattern) > 0 {
		constRows = make(map[int][]uint64, len(k.constPattern))
		for tag, pat := range k.constPattern {
			row := make([]uint64, words)
			for i := range row {
				row[i] = pat
			}
			row[words-1] &= mask
			constRows[tag] = row
		}
	}

	io := &sim.HostIO{
		WriteData: func(tag int) []uint64 {
			if row, ok := writeRows[tag]; ok {
				return row
			}
			return constRows[tag]
		},
		ReadSink: func(tag int, data []uint64) {
			if sink, ok := outByTag[tag]; ok {
				sink(data)
			}
		},
	}
	return io, outRows, nil
}

// RunResult carries a run's outputs and its simulated time.
type RunResult struct {
	// Rows holds each output operand in vertical (bit-row) layout.
	Rows map[string][][]uint64
	// TimeNs is the single-subarray makespan in nanoseconds.
	TimeNs float64
	// Stats are the timing-engine counters.
	Stats dram.EngineStats
	// Faults counts injected fault events (RunRowsUnderFault only).
	Faults FaultCounts
	// ScratchBytes is the peak reusable simulator storage the run held
	// (subarray arenas, spill buffers, engine tables) — the working-set
	// figure choppersim reports as "peak scratch".
	ScratchBytes int64
	// RecoveryStats reports the self-healing layer's activity (epochs,
	// detections, retries, wasted work); all-zero when Options.Recovery
	// is disabled.
	RecoveryStats RecoveryStats
}

// RunRows executes the kernel on one simulated subarray over operands
// already in vertical layout (rows[op][bit][word]), with `lanes` SIMD
// lanes, and returns outputs in vertical layout.
func (k *Kernel) RunRows(rows map[string][][]uint64, lanes int) (res *RunResult, err error) {
	defer recoverToError(&err)
	return k.runRows(nil, rows, lanes, nil)
}

// RunRowsCtx is RunRows under the guard layer: the kernel's compile-time
// Options.Budget caps simulator steps and DRAM commands, and a non-nil
// ctx is observed between micro-ops for cooperative cancellation.
func (k *Kernel) RunRowsCtx(ctx context.Context, rows map[string][][]uint64, lanes int) (res *RunResult, err error) {
	defer recoverToError(&err)
	return k.runRows(ctx, rows, lanes, nil)
}

// RunRowsUnderFault is RunRows on a faulty subarray: the fault models in
// cfg, reproducible from seed, perturb the simulated row operations. The
// result's Faults field counts what was injected.
func (k *Kernel) RunRowsUnderFault(rows map[string][][]uint64, lanes int, cfg FaultConfig, seed int64) (res *RunResult, err error) {
	defer recoverToError(&err)
	return k.runRowsUnderFault(nil, rows, lanes, cfg, seed)
}

// RunRowsUnderFaultCtx is RunRowsUnderFault under the guard layer (see
// RunRowsCtx).
func (k *Kernel) RunRowsUnderFaultCtx(ctx context.Context, rows map[string][][]uint64, lanes int, cfg FaultConfig, seed int64) (res *RunResult, err error) {
	defer recoverToError(&err)
	return k.runRowsUnderFault(ctx, rows, lanes, cfg, seed)
}

// injectorPool recycles fault injectors across fault trials; Reset makes a
// pooled injector indistinguishable from a fresh fault.New.
var injectorPool = sync.Pool{New: func() any { return fault.New(FaultConfig{}, 0) }}

func (k *Kernel) runRowsUnderFault(ctx context.Context, rows map[string][][]uint64, lanes int, cfg FaultConfig, seed int64) (*RunResult, error) {
	inj := injectorPool.Get().(*fault.Injector)
	inj.Reset(cfg, seed)
	res, err := k.runRows(ctx, rows, lanes, func(bank, sub int) sim.FaultHook {
		if bank == 0 && sub == 0 {
			return inj
		}
		// Single-subarray kernels never get here; keep extra subarrays
		// deterministic too by deriving their seed from the placement.
		return fault.New(cfg, seed+int64(bank)<<20+int64(sub))
	})
	if err != nil {
		injectorPool.Put(inj)
		return nil, err
	}
	res.Faults = inj.Counts()
	injectorPool.Put(inj)
	return res, nil
}

func (k *Kernel) runRows(ctx context.Context, rows map[string][][]uint64, lanes int, hook func(bank, sub int) sim.FaultHook) (*RunResult, error) {
	if lanes <= 0 {
		return nil, optionsErrf("lanes must be positive, have %d", lanes)
	}
	io, outRows, err := k.hostIO(rows, lanes)
	if err != nil {
		return nil, err
	}
	// Kernels run single-subarray programs through the pre-decoded fast
	// path on a pooled machine: no placed-stream build, no per-trial
	// machine allocation. The generic stream path (sim.Machine.RunCtx) is
	// behaviorally identical — the equivalence tests hold the two together.
	m := getMachine(sim.MachineConfig{
		Geom:  k.Opts.Geometry,
		Arch:  k.Opts.Target,
		Lanes: lanes,
		Fault: hook,
	})
	var t float64
	var rs RecoveryStats
	if k.Opts.Recovery.Enabled() {
		t, rs, err = m.RunRecoveredCtx(ctx, k.decodedProg(), 0, 0, io, k.Opts.Budget, k.Opts.Recovery.policy())
	} else {
		t, err = m.RunDecodedCtx(ctx, k.decodedProg(), 0, 0, io, k.Opts.Budget)
	}
	if err != nil {
		putMachine(m)
		return nil, err
	}
	res := &RunResult{Rows: outRows, TimeNs: t, Stats: m.Stats(), ScratchBytes: m.MemBytes(), RecoveryStats: rs}
	putMachine(m)
	return res, nil
}

// Run executes the kernel on operands given as one value per lane (widths
// up to 64 bits) and returns outputs the same way. Use RunWide for wider
// operands.
func (k *Kernel) Run(inputs map[string][]uint64, lanes int) (out map[string][]uint64, err error) {
	defer recoverToError(&err)
	rows := make(map[string][][]uint64, len(inputs))
	for _, in := range k.Inputs {
		vals, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("chopper: missing input %q", in.Name)
		}
		if in.Width > 64 {
			return nil, fmt.Errorf("chopper: input %q is %d bits wide; use RunWide", in.Name, in.Width)
		}
		rows[in.Name] = transpose.ToVertical(vals, in.Width, lanes)
	}
	res, err := k.RunRows(rows, lanes)
	if err != nil {
		return nil, err
	}
	out = make(map[string][]uint64, len(k.Outputs))
	for _, o := range k.Outputs {
		w := o.Width
		if w > 64 {
			return nil, fmt.Errorf("chopper: output %q is %d bits wide; use RunWide", o.Name, o.Width)
		}
		out[o.Name] = transpose.FromVertical(res.Rows[o.Name], w, lanes)
	}
	return out, nil
}

// RunWide is Run for operands of arbitrary width, as little-endian 64-bit
// limb slices per lane.
func (k *Kernel) RunWide(inputs map[string][][]uint64, lanes int) (out map[string][][]uint64, err error) {
	defer recoverToError(&err)
	rows := make(map[string][][]uint64, len(inputs))
	for _, in := range k.Inputs {
		vals, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("chopper: missing input %q", in.Name)
		}
		rows[in.Name] = transpose.ToVerticalWide(vals, in.Width, lanes)
	}
	res, err := k.RunRows(rows, lanes)
	if err != nil {
		return nil, err
	}
	out = make(map[string][][]uint64, len(k.Outputs))
	for _, o := range k.Outputs {
		out[o.Name] = transpose.FromVerticalWide(res.Rows[o.Name], o.Width, lanes)
	}
	return out, nil
}

// Asm renders the generated micro-op program as assembly text.
func (k *Kernel) Asm() string {
	var sb strings.Builder
	for i := range k.prog.Ops {
		fmt.Fprintf(&sb, "%4d: %s\n", i, k.prog.Ops[i])
	}
	return sb.String()
}

// Stats returns code generation statistics (CHOPPER kernels only; zero for
// baseline kernels — see Kernel.Baseline for their statistics).
func (k *Kernel) Stats() codegen.Stats {
	if k.Code == nil {
		return codegen.Stats{}
	}
	return k.Code.Stats
}

// CompileBaseline compiles CHOPPER source with the hands-tuned SIMDRAM
// methodology instead of the CHOPPER back-end — the comparison target of
// every experiment in the paper.
func CompileBaseline(src string, opts Options) (k *Kernel, err error) {
	k, _, err = CompileBaselineCached(src, opts)
	return k, err
}

func compileBaselineSource(src string, opts Options) (*Kernel, error) {
	prog, err := dsl.ParseAndExpand(src)
	if err != nil {
		return nil, stage(ErrParse, "chopper: parse", err)
	}
	checked, err := typecheck.Check(prog)
	if err != nil {
		return nil, stage(ErrTypecheck, "chopper: typecheck", err)
	}
	entry := opts.Entry
	if entry == "" {
		entry = prog.Entry().Name
	}
	graph, err := dfg.BuildNode(checked, entry)
	if err != nil {
		return nil, stage(ErrNormalize, "chopper: normalize", err)
	}
	k, err := compileBaselineGraph(graph, opts)
	if err != nil {
		return nil, err
	}
	k.Program = prog
	return k, nil
}

// CompileBaselineGraph is CompileBaseline for an already-built graph.
func CompileBaselineGraph(graph *dfg.Graph, opts Options) (k *Kernel, err error) {
	defer recoverToError(&err)
	opts = opts.normalize()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return compileBaselineGraph(graph, opts)
}

func compileBaselineGraph(graph *dfg.Graph, opts Options) (*Kernel, error) {
	if opts.Harden {
		return nil, stagef(ErrCodegen, "chopper: baseline", "Harden is not supported by the hands-tuned methodology")
	}
	res, err := baseline.Generate(graph, baseline.Options{
		Arch:  opts.Target,
		DRows: opts.Geometry.DRows(),
	})
	if err != nil {
		return nil, stage(ErrCodegen, "chopper: baseline", err)
	}
	// The baseline generator has no emission-time checkpoint; enforce the
	// micro-op budget on its finished program instead.
	if err := guard.Check(guard.DimMicroOps, opts.Budget.MaxMicroOps, len(res.Prog.Ops)); err != nil {
		return nil, err
	}
	k := &Kernel{
		Opts: opts, Graph: graph, Baseline: res,
		prog: res.Prog, inputTag: res.InputTag, outputTag: res.OutputTag,
		constPattern: res.ConstPattern,
	}
	for _, in := range graph.Inputs {
		v := graph.Values[in]
		k.Inputs = append(k.Inputs, IOSpec{Name: v.Name, Width: v.Width})
	}
	for i, o := range graph.Outputs {
		k.Outputs = append(k.Outputs, IOSpec{Name: graph.OutputNames[i], Width: graph.Values[o].Width})
	}
	return k, nil
}
