package chopper

import (
	"time"

	"chopper/internal/sim"
)

// Detector selects the online error detector of the self-healing
// execution layer (Options.Recovery). See docs/RELIABILITY.md for the
// coverage trade-offs.
type Detector int

const (
	// DetectorNone disables epoch recovery (the default): runs behave
	// byte-identically to a build without the recovery layer.
	DetectorNone Detector = iota
	// DetectorParity arms per-row parity tracking with an end-of-epoch
	// sweep: near-zero overhead, catches storage faults (stuck-at
	// columns, retention decay) but is blind to compute faults.
	DetectorParity
	// DetectorVote re-executes every epoch until two attempts agree on a
	// functional-state digest: roughly 2x the micro-ops (epoch-granular
	// recompute redundancy, cheaper than whole-kernel TMR's ~3x) and
	// catches transient compute faults, but is blind to permanent
	// defects, which corrupt every attempt identically.
	DetectorVote
)

func (d Detector) String() string {
	switch d {
	case DetectorNone:
		return "none"
	case DetectorParity:
		return "parity"
	case DetectorVote:
		return "vote"
	}
	return "unknown"
}

// Recovery defaults, applied by Options normalization when a detector is
// selected and the corresponding field is zero.
const (
	// DefaultEpochUops is the default epoch length target in micro-ops.
	DefaultEpochUops = 256
	// DefaultMaxRetries is the default bound on fault-triggered replays
	// of one epoch.
	DefaultMaxRetries = 3
	// DefaultRecoveryBackoff is the default base backoff charged before a
	// fault-triggered replay.
	DefaultRecoveryBackoff = time.Microsecond
)

// Recovery configures self-healing execution: the run is split into
// epochs at scheduler-chosen cut points, each epoch's state is
// checkpointed, an online detector validates the epoch, and on a
// detection the run rolls back, scrubs retention state, waits out an
// exponential backoff and replays — at most MaxRetries times, every
// replayed micro-op charged against Options.Budget. The zero value
// disables recovery entirely; runs are then byte-identical to earlier
// releases. Recovery complements Harden: TMR masks faults in-line at ~3x
// every run, epoch recovery pays for redundancy only when (vote) or where
// (parity) it is needed. See docs/RELIABILITY.md.
type Recovery struct {
	// Detector selects the online detector; DetectorNone disables
	// recovery and zeroes the other fields during normalization.
	Detector Detector
	// EpochUops is the target epoch length in micro-ops; actual cuts snap
	// forward to the next codegen gate boundary. 0 means DefaultEpochUops.
	EpochUops int
	// MaxRetries bounds fault-triggered replays per epoch (beyond the
	// vote detector's one mandatory redundant execution). When exhausted
	// the run accepts the last state and reports the epoch in
	// RecoveryStats.Uncorrected rather than failing. 0 means
	// DefaultMaxRetries; use a negative value for "no retries, detect
	// only".
	MaxRetries int
	// Backoff is the base stall charged to the timing model before a
	// fault-triggered replay, doubling per further detection in the same
	// epoch. 0 means DefaultRecoveryBackoff.
	Backoff time.Duration
}

// Enabled reports whether a detector is selected.
func (r Recovery) Enabled() bool { return r.Detector != DetectorNone }

// normalize applies defaults; the zero value stays all-zero so that
// "recovery off" has exactly one canonical encoding (and one cache key).
func (r Recovery) normalize() Recovery {
	if r.Detector == DetectorNone {
		return Recovery{}
	}
	if r.EpochUops == 0 {
		r.EpochUops = DefaultEpochUops
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = DefaultMaxRetries
	} else if r.MaxRetries < 0 {
		r.MaxRetries = 0
	}
	if r.Backoff == 0 {
		r.Backoff = DefaultRecoveryBackoff
	}
	return r
}

// validate rejects nonsensical recovery options (r must be normalized).
func (r Recovery) validate() error {
	if r.Detector < DetectorNone || r.Detector > DetectorVote {
		return optionsErrf("unknown recovery detector %d", int(r.Detector))
	}
	if !r.Enabled() {
		return nil
	}
	if r.EpochUops < 0 {
		return optionsErrf("recovery epoch length must be positive, have %d", r.EpochUops)
	}
	if r.Backoff < 0 {
		return optionsErrf("recovery backoff must be non-negative, have %s", r.Backoff)
	}
	return nil
}

// policy lowers the public options to the simulator's recovery policy.
func (r Recovery) policy() sim.RecoveryPolicy {
	pol := sim.RecoveryPolicy{
		EpochUops:  r.EpochUops,
		MaxRetries: r.MaxRetries,
		BackoffNs:  float64(r.Backoff.Nanoseconds()),
	}
	switch r.Detector {
	case DetectorParity:
		pol.Detector = sim.DetectParity
	case DetectorVote:
		pol.Detector = sim.DetectVote
	}
	return pol
}

// RecoveryStats reports what the self-healing layer did during one run;
// see the field docs in internal/sim.
type RecoveryStats = sim.RecoveryStats
