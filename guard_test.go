package chopper

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"chopper/internal/obs"
)

const guardAdderSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

// A 32-bit multiply lowers to thousands of gates and micro-ops — the
// canonical budget-blowing program.
const guardMulSrc = `
node main(a: u32, b: u32) returns (z: u32)
  let z = a * b;
tel`

// settleGoroutines polls until the goroutine count returns to within
// `slack` of `before` (worker goroutines need a moment to observe the
// canceled context and exit) and returns the final count.
func settleGoroutines(t *testing.T, before, slack int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before+slack && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestCompileBudgetExceededNetGates(t *testing.T) {
	_, err := Compile(guardMulSrc, Options{Target: Ambit, Budget: Budget{MaxNetGates: 256}})
	if err == nil {
		t.Fatal("compile under a 256-gate budget succeeded")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("error %v does not match ErrBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Dimension != DimNetGates {
		t.Fatalf("exhausted dimension %q, want %q", be.Dimension, DimNetGates)
	}
	if be.Limit != 256 || be.Count <= 256 {
		t.Fatalf("implausible budget fields: %+v", be)
	}
	// Budget stops are deterministic: a second compile exhausts the same
	// dimension at the same count.
	_, err2 := Compile(guardMulSrc, Options{Target: Ambit, Budget: Budget{MaxNetGates: 256}})
	if err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("budget error not reproducible: %v vs %v", err, err2)
	}
}

func TestCompileBudgetExceededMicroOps(t *testing.T) {
	_, err := Compile(guardMulSrc, Options{Target: Ambit, Budget: Budget{MaxMicroOps: 100}})
	var be *BudgetError
	if !errors.As(err, &be) || be.Dimension != DimMicroOps {
		t.Fatalf("want a %s BudgetError, got %v", DimMicroOps, err)
	}
	// The emission-loop checkpoint stops promptly: the count cannot run
	// far past the limit (at most one gate's worth of micro-ops).
	if be.Count > be.Limit+8 {
		t.Fatalf("emission overran the budget: %+v", be)
	}
}

func TestCompileBaselineBudget(t *testing.T) {
	_, err := CompileBaseline(guardMulSrc, Options{Target: SIMDRAM, Budget: Budget{MaxMicroOps: 100}})
	var be *BudgetError
	if !errors.As(err, &be) || be.Dimension != DimMicroOps {
		t.Fatalf("want a %s BudgetError, got %v", DimMicroOps, err)
	}
}

func TestCompileCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := CompileCtx(ctx, guardAdderSrc, Options{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error %v does not match ErrDeadline", err)
	}
	c2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = CompileCtx(c2, guardAdderSrc, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Compile(guardAdderSrc, Options{Budget: Budget{MaxMicroOps: -1}}); !errors.Is(err, ErrOptions) {
		t.Fatalf("negative budget: %v does not match ErrOptions", err)
	}
	if _, err := CompileBaseline(guardAdderSrc, Options{Budget: Budget{MaxSimSteps: -7}}); !errors.Is(err, ErrOptions) {
		t.Fatalf("baseline negative budget: %v does not match ErrOptions", err)
	}
	k, err := Compile(guardAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(0, 1); !errors.Is(err, ErrOptions) {
		t.Fatalf("Verify(0 trials): %v does not match ErrOptions", err)
	}
	if err := k.Verify(-3, 1); !errors.Is(err, ErrOptions) {
		t.Fatalf("Verify(-3 trials): %v does not match ErrOptions", err)
	}
	if _, err := k.Reliability(0, 1, []FaultConfig{{}}); !errors.Is(err, ErrOptions) {
		t.Fatalf("Reliability(0 trials): %v does not match ErrOptions", err)
	}
	if _, err := k.RunTiled(map[string][][]uint64{}, 0); !errors.Is(err, ErrOptions) {
		t.Fatalf("RunTiled(0 lanes): %v does not match ErrOptions", err)
	}
}

// A budget stop inside a verify sweep keeps its sentinel identity (it is
// not re-classed ErrVerify) and is byte-identical at any worker count —
// the lowest-failing-trial contract extends to guard errors.
func TestVerifyBudgetDeterministicAcrossWorkers(t *testing.T) {
	k, err := Compile(guardAdderSrc, Options{Budget: Budget{MaxSimSteps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, workers := range []int{1, 4} {
		err := k.VerifyCtx(nil, 8, 42, workers)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("workers=%d: %v does not match ErrBudget", workers, err)
		}
		if errors.Is(err, ErrVerify) {
			t.Fatalf("workers=%d: budget stop was re-classed as ErrVerify: %v", workers, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Dimension != DimSimSteps {
			t.Fatalf("workers=%d: want a %s BudgetError, got %v", workers, DimSimSteps, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("budget error differs across worker counts: %q vs %q", msgs[0], msgs[1])
	}
}

func TestVerifyCtxCancelPromptNoLeak(t *testing.T) {
	k, err := Compile(guardMulSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- k.VerifyCtx(ctx, 100000, 7, 4) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("VerifyCtx did not return after cancellation")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled verify returned %v, want ErrCanceled (a partial sweep must never pass)", err)
	}
	if after := settleGoroutines(t, before, 2); after > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after cancellation", before, after)
	}
}

func TestVerifyCtxPreExpiredDeadline(t *testing.T) {
	k, err := Compile(guardAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, workers := range []int{1, 4} {
		if err := k.VerifyCtx(ctx, 16, 1, workers); !errors.Is(err, ErrDeadline) {
			t.Fatalf("workers=%d: %v does not match ErrDeadline", workers, err)
		}
	}
}

func TestReliabilityCtxCanceledReturnsNoReport(t *testing.T) {
	k, err := Compile(guardAdderSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := k.ReliabilityCtx(ctx, 4, 1, []FaultConfig{{TRAFlipRate: 0.01}}, 2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
	if rep != nil {
		t.Fatalf("canceled sweep returned a report: %+v", rep)
	}
}

func TestRunTiledBudgets(t *testing.T) {
	k, err := Compile(guardAdderSrc, Options{Budget: Budget{MaxSimSteps: 8}})
	if err != nil {
		t.Fatal(err)
	}
	lanes := 100
	inputs := map[string][][]uint64{"a": make([][]uint64, lanes), "b": make([][]uint64, lanes)}
	for l := 0; l < lanes; l++ {
		inputs["a"][l] = []uint64{uint64(l) & 0xff}
		inputs["b"][l] = []uint64{uint64(2*l) & 0xff}
	}
	_, err = k.RunTiledCtx(nil, inputs, lanes)
	var be *BudgetError
	if !errors.As(err, &be) || be.Dimension != DimSimSteps {
		t.Fatalf("want a %s BudgetError, got %v", DimSimSteps, err)
	}

	k2, err := Compile(guardAdderSrc, Options{Budget: Budget{MaxDRAMCommands: 10}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = k2.RunTiledCtx(nil, inputs, lanes)
	if !errors.As(err, &be) || be.Dimension != DimDRAMCommands {
		t.Fatalf("want a %s BudgetError, got %v", DimDRAMCommands, err)
	}
	if be.Limit != 10 || be.Count != 11 {
		t.Fatalf("timing-engine stop not exact: %+v", be)
	}
}

// An OBS pass forced to panic must not fail the compile: the degradation
// ladder walks down to the un-optimized OptBitslice pipeline, the kernel
// still computes correctly, and the DegradationReport records every
// abandoned level.
func TestDegradationLadderOnPassPanic(t *testing.T) {
	obs.TestPanicHook = func(pressureAware bool) {
		if pressureAware {
			panic("obs: forced scheduler panic (test hook)")
		}
	}
	defer func() { obs.TestPanicHook = nil }()

	k, err := Compile(guardAdderSrc, Options{})
	if err != nil {
		t.Fatalf("compile failed instead of degrading: %v", err)
	}
	r := k.Degradation
	if r == nil {
		t.Fatal("kernel has no DegradationReport")
	}
	if !r.Degraded() {
		t.Fatal("report does not say Degraded")
	}
	if r.Requested != OptFull || r.Effective != OptBitslice {
		t.Fatalf("requested %v effective %v, want %v -> %v", r.Requested, r.Effective, OptFull, OptBitslice)
	}
	// Rename, Reuse and Schedule all run the pressure-aware scheduler and
	// were each tried and abandoned, highest level first.
	if len(r.Events) != 3 {
		t.Fatalf("got %d degradation events, want 3: %+v", len(r.Events), r.Events)
	}
	wantOrder := []OptLevel{OptFull, OptReuse, OptSchedule}
	for i, ev := range r.Events {
		if ev.Opt != wantOrder[i] {
			t.Fatalf("event %d at level %v, want %v", i, ev.Opt, wantOrder[i])
		}
		if !strings.Contains(ev.Reason, "forced scheduler panic") {
			t.Fatalf("event %d reason %q does not carry the panic value", i, ev.Reason)
		}
	}
	// The degraded kernel still computes.
	out, err := k.Run(map[string][]uint64{"a": {3, 200}, "b": {4, 100}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out["s"][0] != 7 || out["s"][1] != (200+100)&0xff {
		t.Fatalf("degraded kernel miscomputed: %v", out["s"])
	}
}

// If even the OptBitslice pipeline fails, the ladder gives up with
// ErrInternal — degradation never masks a totally broken compiler.
func TestDegradationLadderExhausted(t *testing.T) {
	obs.TestPanicHook = func(bool) { panic("obs: always panics (test hook)") }
	defer func() { obs.TestPanicHook = nil }()

	_, err := Compile(guardAdderSrc, Options{})
	if err == nil {
		t.Fatal("compile succeeded with every level panicking")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error %v does not match ErrInternal", err)
	}
}

// Guard stops must not trigger the ladder: a budget-stopped compile at the
// requested level fails with ErrBudget rather than silently retrying at a
// lower optimization level.
func TestBudgetStopDoesNotDegrade(t *testing.T) {
	k, err := Compile(guardMulSrc, Options{Target: Ambit, Budget: Budget{MaxMicroOps: 100}})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("error %v does not match ErrBudget", err)
	}
	if k != nil {
		t.Fatal("budget-stopped compile returned a kernel")
	}
}
