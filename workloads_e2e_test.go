package chopper

// End-to-end verification of the evaluation workloads: compile each
// domain's smallest configuration with both the CHOPPER pipeline and the
// hands-tuned baseline, run the micro-ops on the functional DRAM
// simulator, and compare every output lane bit-exactly against the
// dataflow reference semantics.

import (
	"testing"

	"chopper/internal/workloads"
)

func TestWorkloadKernelsVerifyOnAllArchitectures(t *testing.T) {
	for _, domain := range workloads.Domains {
		spec := workloads.Build(domain, workloads.Configs[domain][0])
		t.Run(spec.Name, func(t *testing.T) {
			for _, arch := range []Target{Ambit, ELP2IM, SIMDRAM} {
				k, err := Compile(spec.Src, Options{Target: arch})
				if err != nil {
					t.Fatalf("%v: %v", arch, err)
				}
				if err := k.Verify(1, int64(arch)+100); err != nil {
					t.Fatalf("%v: %v", arch, err)
				}
			}
		})
	}
}

func TestWorkloadKernelsVerifyUnderBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline workload verification is slow")
	}
	for _, domain := range workloads.Domains {
		spec := workloads.Build(domain, workloads.Configs[domain][0])
		t.Run(spec.Name, func(t *testing.T) {
			k, err := CompileBaseline(spec.Src, Options{Target: Ambit})
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Verify(1, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWorkloadKernelsVerifyAtEveryOptLevel(t *testing.T) {
	// The breakdown variants must all be functionally identical.
	spec := workloads.Build("DiffGen", 64)
	for _, lv := range []OptLevel{OptBitslice, OptSchedule, OptReuse, OptFull} {
		k, err := Compile(spec.Src, Options{Target: Ambit}.WithOpt(lv))
		if err != nil {
			t.Fatalf("%v: %v", lv, err)
		}
		if err := k.Verify(1, 23); err != nil {
			t.Fatalf("%v: %v", lv, err)
		}
	}
}

func TestWorkloadKernelsVerifyUnderSpillPressure(t *testing.T) {
	// Shrink the subarray so the smallest SW config spills, then verify.
	spec := workloads.Build("SW", 64)
	opts := Options{Target: Ambit}
	opts.Geometry = opts.normalize().Geometry.WithRowsPerSub(64) // 46 data rows
	k, err := Compile(spec.Src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if k.Prog().SpillSlots == 0 && k.Stats().Drops == 0 {
		t.Fatalf("expected evictions with %d data rows (pressure %d)", opts.Geometry.DRows(), k.Stats().MaxLiveRows)
	}
	if err := k.Verify(1, 31); err != nil {
		t.Fatal(err)
	}
}
