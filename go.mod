module chopper

go 1.22
