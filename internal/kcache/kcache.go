// Package kcache implements a content-addressed, bounded LRU cache with
// single-flight computation.
//
// Keys are SHA-256 content addresses built from the canonical parts of
// whatever produced the value (for compiled kernels: the normalized
// source text plus every Options field that affects code generation), so
// two semantically identical compile requests collide on purpose and the
// second one costs a map lookup instead of the full pipeline. Do adds
// the thundering-herd defense a server needs: N concurrent requests for
// the same missing key perform one computation and share its result.
// The cache is safe for concurrent use and keeps hit/miss/eviction/dedup
// counters for observability.
package kcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// DefaultEntries is the bound used when New is given a non-positive size.
const DefaultEntries = 128

// Key hashes the given components into a content address. Components are
// length-prefixed before hashing so ("ab","c") and ("a","bc") cannot
// collide.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      uint64 // Get/Do calls that found the key resident
	Misses    uint64 // Get/Do calls that did not (Do counts one per computation)
	Evictions uint64 // entries dropped by the LRU bound
	Dedups    uint64 // Do calls that joined another caller's in-flight computation
	Entries   int    // entries currently resident
}

// Cache is a bounded LRU cache from content address to V. The zero value
// is not usable; construct with New.
type Cache[V any] struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	flights   map[string]*flight[V]
	hits      uint64
	misses    uint64
	evictions uint64
	dedups    uint64
}

type entry[V any] struct {
	key string
	val V
}

// flight is one in-progress Do computation; waiters block on done and
// read val/err afterwards (the close is the happens-before edge).
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New creates a cache bounded to max entries (<= 0 means DefaultEntries).
func New[V any](max int) *Cache[V] {
	if max <= 0 {
		max = DefaultEntries
	}
	return &Cache[V]{
		max:     max,
		ll:      list.New(),
		items:   make(map[string]*list.Element, max),
		flights: make(map[string]*flight[V]),
	}
}

// Get returns the value stored under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores val under key, evicting the least recently used entry if the
// cache is full. Re-putting an existing key refreshes its value and
// recency without evicting.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *Cache[V]) putLocked(key string, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[V]).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
}

// Do returns the value stored under key, computing it with fn on a miss.
// Concurrent Do calls for the same missing key are deduplicated: exactly
// one caller runs fn while the rest block and share its result (including
// its error — identical keys mean identical requests, so an error applies
// to every waiter). Errors are not cached; a later Do retries. A panic in
// fn is re-raised in the computing caller and surfaced as an error to the
// waiters, never a deadlock.
//
// The returned Outcome says how the call was served.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.dedups++
		c.mu.Unlock()
		<-f.done
		return f.val, Shared, f.err
	}
	c.misses++
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	finish := func(val V, err error) {
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil {
			c.putLocked(key, val)
		}
		c.mu.Unlock()
		f.val, f.err = val, err
		close(f.done)
	}
	panicking := true
	defer func() {
		if panicking {
			// Release the waiters before the panic unwinds through the
			// caller's recovery; they get an error, not a hung channel.
			var zero V
			finish(zero, fmt.Errorf("kcache: computation for %s panicked", key))
		}
	}()
	val, err := fn()
	panicking = false
	finish(val, err)
	return val, Miss, err
}

// Outcome reports how a Do call was served.
type Outcome int

const (
	// Miss means this caller ran the computation itself.
	Miss Outcome = iota
	// Hit means the value was already resident.
	Hit
	// Shared means this caller joined another caller's in-flight
	// computation and shared its result.
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "miss"
	}
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Dedups: c.dedups, Entries: c.ll.Len()}
}
