// Package kcache implements a content-addressed, bounded LRU cache.
//
// Keys are SHA-256 content addresses built from the canonical parts of
// whatever produced the value (for compiled kernels: the normalized
// source text plus every Options field that affects code generation), so
// two semantically identical compile requests collide on purpose and the
// second one costs a map lookup instead of the full pipeline. The cache
// is safe for concurrent use and keeps hit/miss/eviction counters for
// observability.
package kcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// DefaultEntries is the bound used when New is given a non-positive size.
const DefaultEntries = 128

// Key hashes the given components into a content address. Components are
// length-prefixed before hashing so ("ab","c") and ("a","bc") cannot
// collide.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      uint64 // Get calls that found the key
	Misses    uint64 // Get calls that did not
	Evictions uint64 // entries dropped by the LRU bound
	Entries   int    // entries currently resident
}

// Cache is a bounded LRU cache from content address to V. The zero value
// is not usable; construct with New.
type Cache[V any] struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[V any] struct {
	key string
	val V
}

// New creates a cache bounded to max entries (<= 0 means DefaultEntries).
func New[V any](max int) *Cache[V] {
	if max <= 0 {
		max = DefaultEntries
	}
	return &Cache[V]{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the value stored under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores val under key, evicting the least recently used entry if the
// cache is full. Re-putting an existing key refreshes its value and
// recency without evicting.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[V]).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}
