package kcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyIsPositional(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("length prefixing failed: shifted parts collide")
	}
	if Key("x") != Key("x") {
		t.Fatal("Key is not deterministic")
	}
	if len(Key()) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(Key()))
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes oldest
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d,%v", v, ok)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction, 2 entries", s)
	}
	// Get: a hit, b miss, a hit, c hit = 3 hits 1 miss... plus the b hit
	// check above (miss). Recount: hits a, a, c = 3; misses b = 1.
	if s.Hits != 3 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 3 hits 1 miss", s)
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	c := New[string](2)
	c.Put("k", "v1")
	c.Put("k", "v2")
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1 (re-put must not duplicate)", c.Len())
	}
	if v, _ := c.Get("k"); v != "v2" {
		t.Fatalf("got %q, want refreshed v2", v)
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("re-put evicted: %+v", s)
	}
}

func TestDefaultBound(t *testing.T) {
	c := New[int](0)
	for i := 0; i < DefaultEntries+10; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	if c.Len() != DefaultEntries {
		t.Fatalf("len %d, want %d", c.Len(), DefaultEntries)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Exercised further by `go test -race`: hammer the cache from many
	// goroutines and make sure counters stay coherent.
	c := New[int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprint(i % 48)
				if v, ok := c.Get(k); ok && v != i%48 {
					t.Errorf("key %s holds %d", k, v)
				}
				c.Put(k, i%48)
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*200 {
		t.Fatalf("counter drift: %+v", s)
	}
	if s.Entries > 32 {
		t.Fatalf("bound exceeded: %+v", s)
	}
}
