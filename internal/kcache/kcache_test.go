package kcache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyIsPositional(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("length prefixing failed: shifted parts collide")
	}
	if Key("x") != Key("x") {
		t.Fatal("Key is not deterministic")
	}
	if len(Key()) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(Key()))
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes oldest
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d,%v", v, ok)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction, 2 entries", s)
	}
	// Get: a hit, b miss, a hit, c hit = 3 hits 1 miss... plus the b hit
	// check above (miss). Recount: hits a, a, c = 3; misses b = 1.
	if s.Hits != 3 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 3 hits 1 miss", s)
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	c := New[string](2)
	c.Put("k", "v1")
	c.Put("k", "v2")
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1 (re-put must not duplicate)", c.Len())
	}
	if v, _ := c.Get("k"); v != "v2" {
		t.Fatalf("got %q, want refreshed v2", v)
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("re-put evicted: %+v", s)
	}
}

func TestDefaultBound(t *testing.T) {
	c := New[int](0)
	for i := 0; i < DefaultEntries+10; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	if c.Len() != DefaultEntries {
		t.Fatalf("len %d, want %d", c.Len(), DefaultEntries)
	}
}

// TestDoSingleflightBarrier proves the dedup contract with a barrier: N
// goroutines Do the same missing key while the one computation is held
// open until every goroutine has reached Do, so all N are concurrent —
// and exactly one underlying computation runs.
func TestDoSingleflightBarrier(t *testing.T) {
	const n = 16
	c := New[int](8)
	var computes atomic.Int64
	var arrived sync.WaitGroup // goroutines that have reached their Do call
	arrived.Add(n)
	fn := func() (int, error) {
		computes.Add(1)
		arrived.Wait() // hold the flight open until all n are concurrent
		return 42, nil
	}
	var wg sync.WaitGroup
	results := make([]int, n)
	outcomes := make([]Outcome, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arrived.Done()
			v, o, err := c.Do("k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[g], outcomes[g] = v, o
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for %d concurrent Do calls, want exactly 1", got, n)
	}
	misses := 0
	for g := 0; g < n; g++ {
		if results[g] != 42 {
			t.Fatalf("goroutine %d got %d, want the shared 42", g, results[g])
		}
		if outcomes[g] == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d Miss outcomes, want exactly 1 (rest Hit/Shared)", misses)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Dedups != n-1 {
		t.Fatalf("stats %+v: want 1 miss and %d hits+dedups", s, n-1)
	}
	// The result is now resident: a late caller hits without computing.
	if v, o, err := c.Do("k", fn); err != nil || v != 42 || o != Hit {
		t.Fatalf("late Do = %d,%v,%v, want 42,Hit,nil", v, o, err)
	}
	if computes.Load() != 1 {
		t.Fatal("late Do recomputed a resident key")
	}
}

func TestDoErrorSharedNotCached(t *testing.T) {
	c := New[int](8)
	boom := errors.New("boom")
	var computes atomic.Int64
	_, o, err := c.Do("k", func() (int, error) { computes.Add(1); return 0, boom })
	if !errors.Is(err, boom) || o != Miss {
		t.Fatalf("first Do = %v,%v, want boom,Miss", o, err)
	}
	// Errors are not cached: the next Do retries and can succeed.
	v, o, err := c.Do("k", func() (int, error) { computes.Add(1); return 7, nil })
	if err != nil || v != 7 || o != Miss {
		t.Fatalf("retry Do = %d,%v,%v, want 7,Miss,nil", v, o, err)
	}
	if computes.Load() != 2 {
		t.Fatalf("%d computes, want 2 (error must not be cached)", computes.Load())
	}
}

func TestDoPanicReleasesWaiters(t *testing.T) {
	c := New[int](8)
	var inFlight sync.WaitGroup
	inFlight.Add(1)
	release := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		c.Do("k", func() (int, error) {
			inFlight.Done()
			<-release
			panic("kaboom")
		})
	}()
	inFlight.Wait()
	go func() {
		_, _, err := c.Do("k", func() (int, error) { return 1, nil })
		waiterDone <- err
	}()
	// Wait until the waiter has joined the flight (Dedups ticks on join)
	// before letting the computation panic, so it is genuinely blocked.
	for c.Stats().Dedups == 0 {
		runtime.Gosched()
	}
	close(release)
	if err := <-waiterDone; err == nil {
		t.Fatal("waiter on a panicked flight got a nil error")
	}
	// The flight is cleaned up: a fresh Do computes normally.
	if v, _, err := c.Do("k", func() (int, error) { return 9, nil }); err != nil || v != 9 {
		t.Fatalf("post-panic Do = %d,%v", v, err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Exercised further by `go test -race`: hammer the cache from many
	// goroutines and make sure counters stay coherent.
	c := New[int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprint(i % 48)
				if v, ok := c.Get(k); ok && v != i%48 {
					t.Errorf("key %s holds %d", k, v)
				}
				c.Put(k, i%48)
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*200 {
		t.Fatalf("counter drift: %+v", s)
	}
	if s.Entries > 32 {
		t.Fatalf("bound exceeded: %+v", s)
	}
}
