// Package dsl implements the CHOPPER programming interface: a synchronous
// dataflow language in the tradition of Usuba/Lustre. Programs are sets of
// nodes; a node equates output and local variables to expressions over its
// inputs. There is no control flow and every variable is assigned exactly
// once, which is what makes whole-program analysis — automatic memory
// allocation and bit-slicing — tractable for the compiler.
//
// Grammar sketch:
//
//	program  := node*
//	node     := attr* "node" ident "(" params ")" "returns" "(" params ")"
//	            ("vars" params ";")? "let" equation* "tel"
//	attr     := "@" ident ("(" ident ("," ident)* ")")?
//	params   := param ("," param)*
//	param    := ident (","" ident)* ":" type
//	type     := "u" digits ("[" digits "]")?
//	node     also admits "const" tables before "let":
//	           "const" ident ":" type "=" "{" int ("," int)* "}" ";"
//	stmt     := equation | "forall" ident "in" int ".." int "{" stmt* "}"
//	equation := lhs "=" expr ";"
//	lhs      := lref | "(" lref ("," lref)+ ")"
//	lref     := ident ("[" expr "]")?
//	expr     := ternary over |, ^, &, == !=, < > <= >=, << >>, + -, *,
//	            unary ~ -, calls, parens, identifiers, integer literals
//	literal  := digits | 0x hex | literal ":" type (width ascription)
package dsl

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt    // integer literal (value in Text, parsed lazily: may exceed 64 bits)
	TokNode   // "node"
	TokReturn // "returns"
	TokVars   // "vars"
	TokLet    // "let"
	TokTel    // "tel"
	TokAt     // '@'
	TokLParen
	TokRParen
	TokComma
	TokSemi
	TokColon
	TokAssign // '='
	TokPlus
	TokMinus
	TokStar
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokShl // "<<"
	TokShr // ">>"
	TokLt
	TokGt
	TokLe // "<="
	TokGe // ">="
	TokEq // "=="
	TokNe // "!="
	TokQuestion
	TokForall // "forall"
	TokIn     // "in"
	TokConst  // "const"
	TokLBracket
	TokRBracket
	TokLBrace
	TokRBrace
	TokDotDot // ".."
)

var tokNames = map[TokKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokInt: "integer",
	TokNode: "'node'", TokReturn: "'returns'", TokVars: "'vars'",
	TokLet: "'let'", TokTel: "'tel'", TokAt: "'@'",
	TokLParen: "'('", TokRParen: "')'", TokComma: "','", TokSemi: "';'",
	TokColon: "':'", TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'",
	TokStar: "'*'", TokAmp: "'&'", TokPipe: "'|'", TokCaret: "'^'",
	TokTilde: "'~'", TokShl: "'<<'", TokShr: "'>>'", TokLt: "'<'",
	TokGt: "'>'", TokLe: "'<='", TokGe: "'>='", TokEq: "'=='",
	TokNe: "'!='", TokQuestion: "'?'",
	TokForall: "'forall'", TokIn: "'in'", TokConst: "'const'",
	TokLBracket: "'['", TokRBracket: "']'",
	TokLBrace: "'{'", TokRBrace: "'}'", TokDotDot: "'..'",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token?%d", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Error is a positioned front-end error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
