package dsl

import (
	"fmt"
	"math/big"
)

// Expand performs the macro-expansion phase of the front end: forall loops
// are statically unrolled, const-table references become integer literals,
// and array variables are scalarized into one variable per element
// ("x" of type u8[4] becomes x__0..x__3). The result contains only the
// constructs the type checker and the dataflow builder understand. A
// program without loops, arrays, or const tables is returned unchanged
// (same pointer).
func Expand(prog *Program) (*Program, error) {
	needs := false
	for _, n := range prog.Nodes {
		if n.NeedsExpansion() {
			needs = true
		}
	}
	if !needs {
		// Even a scalar program may contain stray index expressions;
		// reject them here so the error mentions arrays, not type rules.
		for _, n := range prog.Nodes {
			for _, eq := range n.Eqs {
				if bad := findIndex(eq.Rhs); bad != nil {
					return nil, errf(bad.Pos, "indexing %q, which is not an array or const table", bad.Name)
				}
			}
		}
		return prog, nil
	}
	out := &Program{}
	for _, n := range prog.Nodes {
		en, err := expandNode(n)
		if err != nil {
			return nil, err
		}
		out.Nodes = append(out.Nodes, en)
	}
	return out, nil
}

// findIndex locates an Index expression in a tree (nil if none).
func findIndex(x Expr) *Index {
	switch x := x.(type) {
	case *Index:
		return x
	case *Unary:
		return findIndex(x.X)
	case *Binary:
		if b := findIndex(x.X); b != nil {
			return b
		}
		return findIndex(x.Y)
	case *Cond:
		for _, sub := range []Expr{x.C, x.T, x.F} {
			if b := findIndex(sub); b != nil {
				return b
			}
		}
	case *Call:
		for _, a := range x.Args {
			if b := findIndex(a); b != nil {
				return b
			}
		}
	}
	return nil
}

// ParseAndExpand parses and macro-expands in one step — the canonical
// front-end entry point.
func ParseAndExpand(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Expand(prog)
}

// ElemName returns the scalarized name of array element base[i].
func ElemName(base string, i int) string { return fmt.Sprintf("%s__%d", base, i) }

type expander struct {
	node   *Node
	arrays map[string]Type        // array-typed variables
	tables map[string]*ConstTable // const tables
	out    *Node
}

func expandNode(n *Node) (*Node, error) {
	e := &expander{
		node:   n,
		arrays: make(map[string]Type),
		tables: make(map[string]*ConstTable),
		out: &Node{
			Name:  n.Name,
			Attrs: n.Attrs,
			Pos:   n.Pos,
		},
	}
	for _, ct := range n.Consts {
		if _, dup := e.tables[ct.Name]; dup {
			return nil, errf(ct.Pos, "const table %q redefined", ct.Name)
		}
		e.tables[ct.Name] = ct
	}
	scalarize := func(ps []Param) []Param {
		var out []Param
		for _, p := range ps {
			if !p.Type.IsArray() {
				out = append(out, p)
				continue
			}
			e.arrays[p.Name] = p.Type
			for i := 0; i < p.Type.Count; i++ {
				out = append(out, Param{
					Name: ElemName(p.Name, i),
					Type: Type{Bits: p.Type.Bits},
					Pos:  p.Pos,
				})
			}
		}
		return out
	}
	e.out.Params = scalarize(n.Params)
	e.out.Returns = scalarize(n.Returns)
	e.out.Locals = scalarize(n.Locals)

	env := map[string]int{} // loop variables in scope
	if err := e.expandStmts(n.Eqs, n.Loops, env); err != nil {
		return nil, err
	}
	return e.out, nil
}

// expandStmts unrolls equations then loops (dataflow semantics make
// statement order irrelevant, so grouping is harmless).
func (e *expander) expandStmts(eqs []*Equation, loops []*ForAll, env map[string]int) error {
	for _, eq := range eqs {
		if err := e.expandEquation(eq, env); err != nil {
			return err
		}
	}
	for _, fa := range loops {
		if _, shadow := env[fa.Var]; shadow {
			return errf(fa.Pos, "loop variable %q shadows an enclosing loop variable", fa.Var)
		}
		for i := fa.From; i <= fa.To; i++ {
			env[fa.Var] = i
			if err := e.expandStmts(fa.Eqs, fa.Loops, env); err != nil {
				return err
			}
		}
		delete(env, fa.Var)
	}
	return nil
}

func (e *expander) expandEquation(eq *Equation, env map[string]int) error {
	out := &Equation{Pos: eq.Pos}
	for i, name := range eq.Lhs {
		var idx Expr
		if i < len(eq.LhsIdx) {
			idx = eq.LhsIdx[i]
		}
		if idx == nil {
			if _, isArr := e.arrays[name]; isArr {
				return errf(eq.Pos, "array %q assigned without an index", name)
			}
			out.Lhs = append(out.Lhs, name)
			continue
		}
		ty, isArr := e.arrays[name]
		if !isArr {
			return errf(eq.Pos, "indexing non-array %q on the left-hand side", name)
		}
		iv, err := e.constIndex(idx, env, ty.Count, name)
		if err != nil {
			return err
		}
		out.Lhs = append(out.Lhs, ElemName(name, iv))
	}
	out.LhsIdx = make([]Expr, len(out.Lhs))
	rhs, err := e.expandExpr(eq.Rhs, env)
	if err != nil {
		return err
	}
	out.Rhs = rhs
	e.out.Eqs = append(e.out.Eqs, out)
	return nil
}

// constIndex evaluates an index expression to a constant under env.
func (e *expander) constIndex(idx Expr, env map[string]int, count int, base string) (int, error) {
	v, err := evalConst(idx, env)
	if err != nil {
		return 0, err
	}
	if !v.IsInt64() || v.Int64() < 0 || v.Int64() >= int64(count) {
		return 0, errf(idx.ExprPos(), "index %s out of range for %s[%d]", v, base, count)
	}
	return int(v.Int64()), nil
}

// evalConst evaluates an expression of literals and loop variables.
func evalConst(x Expr, env map[string]int) (*big.Int, error) {
	switch x := x.(type) {
	case *IntLit:
		return x.Value, nil
	case *Ident:
		if v, ok := env[x.Name]; ok {
			return big.NewInt(int64(v)), nil
		}
		return nil, errf(x.Pos, "index uses %q, which is not a loop variable or literal", x.Name)
	case *Unary:
		v, err := evalConst(x.X, env)
		if err != nil {
			return nil, err
		}
		if x.Op == OpNegU {
			return new(big.Int).Neg(v), nil
		}
		return nil, errf(x.Pos, "operator %s not allowed in a constant index", x.Op)
	case *Binary:
		a, err := evalConst(x.X, env)
		if err != nil {
			return nil, err
		}
		b, err := evalConst(x.Y, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpAdd:
			return new(big.Int).Add(a, b), nil
		case OpSub:
			return new(big.Int).Sub(a, b), nil
		case OpMul:
			return new(big.Int).Mul(a, b), nil
		case OpShl:
			if !b.IsInt64() || b.Int64() < 0 || b.Int64() > 63 {
				return nil, errf(x.Pos, "shift amount out of range in constant index")
			}
			return new(big.Int).Lsh(a, uint(b.Int64())), nil
		case OpShr:
			if !b.IsInt64() || b.Int64() < 0 || b.Int64() > 63 {
				return nil, errf(x.Pos, "shift amount out of range in constant index")
			}
			return new(big.Int).Rsh(a, uint(b.Int64())), nil
		}
		return nil, errf(x.Pos, "operator %s not allowed in a constant index", x.Op)
	}
	return nil, errf(x.ExprPos(), "expression not constant at expansion time")
}

// expandExpr rewrites an expression under the loop environment: loop
// variables become literals, array references become scalar identifiers,
// const-table references become literals.
func (e *expander) expandExpr(x Expr, env map[string]int) (Expr, error) {
	switch x := x.(type) {
	case *Ident:
		if v, ok := env[x.Name]; ok {
			return &IntLit{Value: big.NewInt(int64(v)), Pos: x.Pos}, nil
		}
		if _, isArr := e.arrays[x.Name]; isArr {
			return nil, errf(x.Pos, "array %q used without an index", x.Name)
		}
		if _, isTab := e.tables[x.Name]; isTab {
			return nil, errf(x.Pos, "const table %q used without an index", x.Name)
		}
		return x, nil
	case *IntLit:
		return x, nil
	case *Index:
		if ct, ok := e.tables[x.Name]; ok {
			iv, err := e.constIndex(x.Idx, env, ct.Type.Count, x.Name)
			if err != nil {
				return nil, err
			}
			return &IntLit{Value: ct.Values[iv], Width: ct.Type.Bits, Pos: x.Pos}, nil
		}
		ty, ok := e.arrays[x.Name]
		if !ok {
			return nil, errf(x.Pos, "indexing %q, which is not an array or const table", x.Name)
		}
		iv, err := e.constIndex(x.Idx, env, ty.Count, x.Name)
		if err != nil {
			return nil, err
		}
		return &Ident{Name: ElemName(x.Name, iv), Pos: x.Pos}, nil
	case *Unary:
		sub, err := e.expandExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: sub, Pos: x.Pos}, nil
	case *Binary:
		a, err := e.expandExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		b, err := e.expandExpr(x.Y, env)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, X: a, Y: b, Pos: x.Pos}, nil
	case *Cond:
		c, err := e.expandExpr(x.C, env)
		if err != nil {
			return nil, err
		}
		t, err := e.expandExpr(x.T, env)
		if err != nil {
			return nil, err
		}
		f, err := e.expandExpr(x.F, env)
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, T: t, F: f, Pos: x.Pos}, nil
	case *Call:
		out := &Call{Name: x.Name, Pos: x.Pos}
		for _, a := range x.Args {
			ea, err := e.expandExpr(a, env)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ea)
		}
		return out, nil
	}
	return nil, errf(x.ExprPos(), "unsupported expression in expansion")
}
