package dsl

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("node f(a: u8) returns (b: u8) let b = a + 1; tel")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokNode, TokIdent, TokLParen, TokIdent, TokColon, TokIdent,
		TokRParen, TokReturn, TokLParen, TokIdent, TokColon, TokIdent, TokRParen,
		TokLet, TokIdent, TokAssign, TokIdent, TokPlus, TokInt, TokSemi, TokTel, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperatorsAndComments(t *testing.T) {
	toks, err := LexAll("<< >> <= >= == != < > ~ ^ & | ? : @ // comment\n0x1F 42 1_000")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokShl, TokShr, TokLe, TokGe, TokEq, TokNe, TokLt, TokGt,
		TokTilde, TokCaret, TokAmp, TokPipe, TokQuestion, TokColon, TokAt,
		TokInt, TokInt, TokInt, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[15].Text != "0x1F" || toks[17].Text != "1_000" {
		t.Errorf("literal texts: %q %q", toks[15].Text, toks[17].Text)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("a $ b"); err == nil {
		t.Error("'$' accepted")
	}
	if _, err := LexAll("a ! b"); err == nil {
		t.Error("bare '!' accepted")
	}
	if _, err := LexAll("0x"); err == nil {
		t.Error("bare 0x accepted")
	}
}

const exampleSrc = `
// Packed add/sub with predication, the Figure 3 example.
node addsub(a: u8, b: u8) returns (s: u8, d: u8)
let
  s = a + b;
  d = a - b;
tel

@reuse
node main(a: u8, b: u8, pred: u8) returns (c: u8)
vars
  s: u8, d: u8, f: u1;
let
  (s, d) = addsub(a, b);
  f = a > pred;
  c = f ? s : d;
tel
`

func TestParseExample(t *testing.T) {
	prog, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Nodes) != 2 {
		t.Fatalf("got %d nodes", len(prog.Nodes))
	}
	addsub := prog.Lookup("addsub")
	if addsub == nil || len(addsub.Params) != 2 || len(addsub.Returns) != 2 || len(addsub.Eqs) != 2 {
		t.Fatalf("addsub parsed wrong: %+v", addsub)
	}
	main := prog.Entry()
	if main.Name != "main" {
		t.Fatalf("entry = %q", main.Name)
	}
	if !main.HasAttr("reuse") {
		t.Error("@reuse attribute lost")
	}
	if len(main.Locals) != 3 {
		t.Errorf("locals = %d, want 3", len(main.Locals))
	}
	if main.Locals[2].Type.Bits != 1 {
		t.Errorf("f type = %v", main.Locals[2].Type)
	}
	if len(main.Eqs[0].Lhs) != 2 {
		t.Errorf("multi-assign LHS = %v", main.Eqs[0].Lhs)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("node f(a: u8, b: u8, c: u8) returns (z: u8) let z = a + b * c; tel")
	if err != nil {
		t.Fatal(err)
	}
	rhs := prog.Nodes[0].Eqs[0].Rhs.String()
	if rhs != "(a + (b * c))" {
		t.Errorf("precedence: %s", rhs)
	}

	prog2, err := Parse("node f(a: u8, b: u8) returns (z: u1) let z = a + b == a & a < b; tel")
	if err != nil {
		t.Fatal(err)
	}
	rhs2 := prog2.Nodes[0].Eqs[0].Rhs.String()
	// & binds looser than ==, which binds looser than <... per our levels:
	// | ^ & (==/!=) (</>) (<</>>) (+/-) *
	if rhs2 != "(((a + b) == a) & (a < b))" {
		t.Errorf("precedence: %s", rhs2)
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	prog, err := Parse("node f(c: u1, d: u1, a: u8, b: u8, e: u8) returns (z: u8) let z = c ? a : d ? b : e; tel")
	if err != nil {
		t.Fatal(err)
	}
	rhs := prog.Nodes[0].Eqs[0].Rhs.String()
	if rhs != "(c ? a : (d ? b : e))" {
		t.Errorf("ternary: %s", rhs)
	}
}

func TestParseWideLiteralsAndAscription(t *testing.T) {
	prog, err := Parse("node f(a: u128) returns (z: u128) let z = a + 0x1_0000_0000_0000_0000:u128; tel")
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.Nodes[0].Eqs[0].Rhs.(*Binary)
	lit := bin.Y.(*IntLit)
	if lit.Width != 128 {
		t.Errorf("width = %d", lit.Width)
	}
	if lit.Value.BitLen() != 65 {
		t.Errorf("literal bitlen = %d", lit.Value.BitLen())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing tel":      "node f(a: u8) returns (z: u8) let z = a;",
		"no returns":       "node f(a: u8) returns () let tel",
		"bad type":         "node f(a: v8) returns (z: u8) let z = a; tel",
		"huge type":        "node f(a: u99999) returns (z: u8) let z = a; tel",
		"redefined":        "node f(a: u8) returns (z: u8) let z = a; tel node f(a: u8) returns (z: u8) let z = a; tel",
		"empty":            "   // nothing\n",
		"lit overflow":     "node f(a: u8) returns (z: u8) let z = 300:u8; tel",
		"paren single lhs": "node f(a: u8) returns (z: u8) let (z) = a; tel",
		"missing semi":     "node f(a: u8) returns (z: u8) let z = a tel",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("node f(a: u8) returns (z: u8)\nlet\n  z = a +;\ntel")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestEntrySelection(t *testing.T) {
	prog, err := Parse(`
node helper(a: u8) returns (z: u8) let z = a; tel
node last(a: u8) returns (z: u8) let z = helper(a); tel`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry().Name != "last" {
		t.Errorf("entry = %q, want last node when no main", prog.Entry().Name)
	}
}

func TestAttrWithArgs(t *testing.T) {
	prog, err := Parse("@reuse(c0, c1) node f(a: u8) returns (z: u8) let z = a; tel")
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Nodes[0].Attrs[0]
	if a.Name != "reuse" || len(a.Args) != 2 || a.Args[0] != "c0" {
		t.Errorf("attr = %+v", a)
	}
}
