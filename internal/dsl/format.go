package dsl

import (
	"fmt"
	"strings"
)

// Format renders a program back to canonical source text. The output
// parses to an equivalent program (Format ∘ Parse is idempotent on its own
// output), making it usable as a formatter for hand-written sources and as
// a readable dump of expanded programs.
func Format(p *Program) string {
	var sb strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			sb.WriteByte('\n')
		}
		formatNode(&sb, n)
	}
	return sb.String()
}

func formatNode(sb *strings.Builder, n *Node) {
	for _, a := range n.Attrs {
		sb.WriteString("@" + a.Name)
		if len(a.Args) > 0 {
			sb.WriteString("(" + strings.Join(a.Args, ", ") + ")")
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(sb, "node %s(%s) returns (%s)\n",
		n.Name, formatParams(n.Params), formatParams(n.Returns))
	if len(n.Locals) > 0 {
		fmt.Fprintf(sb, "vars\n  %s;\n", formatParams(n.Locals))
	}
	for _, ct := range n.Consts {
		vals := make([]string, len(ct.Values))
		for i, v := range ct.Values {
			vals[i] = v.String()
		}
		fmt.Fprintf(sb, "const %s: %s = {%s};\n", ct.Name, ct.Type, strings.Join(vals, ", "))
	}
	sb.WriteString("let\n")
	for _, eq := range n.Eqs {
		formatEquation(sb, eq, 1)
	}
	for _, fa := range n.Loops {
		formatForAll(sb, fa, 1)
	}
	sb.WriteString("tel\n")
}

// formatParams groups consecutive same-type parameters ("a, b: u8, c: u4").
func formatParams(ps []Param) string {
	var parts []string
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].Type == ps[i].Type {
			j++
		}
		names := make([]string, 0, j-i)
		for _, p := range ps[i:j] {
			names = append(names, p.Name)
		}
		parts = append(parts, strings.Join(names, ", ")+": "+ps[i].Type.String())
		i = j
	}
	return strings.Join(parts, ", ")
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func formatEquation(sb *strings.Builder, eq *Equation, depth int) {
	indent(sb, depth)
	refs := make([]string, len(eq.Lhs))
	for i, name := range eq.Lhs {
		refs[i] = name
		if i < len(eq.LhsIdx) && eq.LhsIdx[i] != nil {
			refs[i] = fmt.Sprintf("%s[%s]", name, formatExpr(eq.LhsIdx[i], 0))
		}
	}
	lhs := refs[0]
	if len(refs) > 1 {
		lhs = "(" + strings.Join(refs, ", ") + ")"
	}
	fmt.Fprintf(sb, "%s = %s;\n", lhs, formatExpr(eq.Rhs, 0))
}

func formatForAll(sb *strings.Builder, fa *ForAll, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "forall %s in %d..%d {\n", fa.Var, fa.From, fa.To)
	for _, eq := range fa.Eqs {
		formatEquation(sb, eq, depth+1)
	}
	for _, inner := range fa.Loops {
		formatForAll(sb, inner, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}\n")
}

// Operator precedence levels matching the parser (higher binds tighter).
func binPrec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpXor:
		return 2
	case OpAnd:
		return 3
	case OpEq, OpNe:
		return 4
	case OpLt, OpGt, OpLe, OpGe:
		return 5
	case OpShl, OpShr:
		return 6
	case OpAdd, OpSub:
		return 7
	case OpMul:
		return 8
	}
	return 9
}

// formatExpr renders with minimal parentheses: parenthesize when the child
// binds looser than the context requires.
func formatExpr(e Expr, ctx int) string {
	switch e := e.(type) {
	case *Ident:
		return e.Name
	case *IntLit:
		return e.String()
	case *Index:
		return fmt.Sprintf("%s[%s]", e.Name, formatExpr(e.Idx, 0))
	case *Unary:
		return e.Op.String() + formatExpr(e.X, 9)
	case *Binary:
		p := binPrec(e.Op)
		// Children at the same level re-parenthesize on the right to
		// keep left associativity explicit.
		s := fmt.Sprintf("%s %s %s", formatExpr(e.X, p), e.Op, formatExpr(e.Y, p+1))
		if p < ctx {
			return "(" + s + ")"
		}
		return s
	case *Cond:
		s := fmt.Sprintf("%s ? %s : %s", formatExpr(e.C, 1), formatExpr(e.T, 0), formatExpr(e.F, 0))
		if ctx > 0 {
			return "(" + s + ")"
		}
		return s
	case *Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = formatExpr(a, 0)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	}
	return "?"
}
