package dsl

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		exampleSrc,
		`
node main(x: u8[4]) returns (s: u8)
vars acc: u8[5];
const w: u8[4] = {1, 2, 3, 4};
let
  acc[0] = 0:u8;
  s = acc[4];
  forall i in 0..3 {
    acc[i+1] = acc[i] + (x[i] ^ w[i]);
  }
tel`,
		`
@noreuse
node main(a: u16, b: u16) returns (z: u16, f: u1)
let
  z = mux(a < b, a * 3 + b, a - b) ^ (a << 2);
  f = slt(a, b) ? a >= 100 : a != b;
tel`,
	}
	for i, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("src %d: formatted output does not parse: %v\n%s", i, err, f1)
		}
		f2 := Format(p2)
		if f1 != f2 {
			t.Errorf("src %d: Format not idempotent:\n--- first\n%s\n--- second\n%s", i, f1, f2)
		}
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	// Formatted-and-reparsed programs expand to identical scalar programs.
	src := `
node main(v: u4[8]) returns (e: u1[8])
let
  forall a in 0..7 {
    e[a] = v[a] >= 3:u4;
  }
tel`
	p1, err := ParseAndExpand(src)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(mustParse(t, src))
	p2, err := ParseAndExpand(formatted)
	if err != nil {
		t.Fatalf("%v\n%s", err, formatted)
	}
	if Format(p1) != Format(p2) {
		t.Errorf("expansion differs after formatting:\n%s\nvs\n%s", Format(p1), Format(p2))
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFormatMinimalParens(t *testing.T) {
	p := mustParse(t, "node f(a: u8, b: u8, c: u8) returns (z: u8) let z = a + b * c; tel")
	f := Format(p)
	if strings.Contains(f, "(b * c)") {
		t.Errorf("unnecessary parentheses:\n%s", f)
	}
	p2 := mustParse(t, "node f(a: u8, b: u8, c: u8) returns (z: u8) let z = (a + b) * c; tel")
	f2 := Format(p2)
	if !strings.Contains(f2, "(a + b) * c") {
		t.Errorf("necessary parentheses lost:\n%s", f2)
	}
}

func TestFormatGroupsParams(t *testing.T) {
	p := mustParse(t, "node f(a: u8, b: u8, c: u4) returns (z: u8) let z = a; tel")
	f := Format(p)
	if !strings.Contains(f, "a, b: u8, c: u4") {
		t.Errorf("params not grouped:\n%s", f)
	}
}

// Property: formatting random precedence combinations survives reparsing
// with identical expression trees (compared through a second format).
func TestQuickFormatExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "==", ">>"}
	for trial := 0; trial < 200; trial++ {
		expr := "a"
		for i := 0; i < 5; i++ {
			op := ops[rng.Intn(len(ops))]
			next := string(rune('a' + rng.Intn(3)))
			if rng.Intn(2) == 0 {
				expr = "(" + expr + " " + op + " " + next + ")"
			} else {
				expr = next + " " + op + " (" + expr + ")"
			}
		}
		// Comparisons force u1 results; wrap in a conversion to stay u8.
		src := "node f(a: u8, b: u8, c: u8) returns (z: u8) let z = u8(" + expr + "); tel"
		p1, err := Parse(src)
		if err != nil {
			continue // some random mixes are ill-typed at parse level; skip
		}
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("trial %d: formatted output unparseable: %v\n%s", trial, err, f1)
		}
		if f2 := Format(p2); f1 != f2 {
			t.Fatalf("trial %d: not idempotent:\n%s\nvs\n%s", trial, f1, f2)
		}
	}
}
