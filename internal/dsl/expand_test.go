package dsl

import (
	"strings"
	"testing"
)

func mustExpand(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseAndExpand(src)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	return p
}

func TestExpandNoopForScalarPrograms(t *testing.T) {
	prog, err := Parse("node f(a: u8) returns (z: u8) let z = a; tel")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Expand(prog)
	if err != nil {
		t.Fatal(err)
	}
	if out != prog {
		t.Error("scalar program was rewritten")
	}
}

func TestExpandArraysAndForall(t *testing.T) {
	p := mustExpand(t, `
node main(x: u8[4]) returns (y: u8[4])
let
  forall i in 0..3 {
    y[i] = x[i] + 1;
  }
tel`)
	n := p.Nodes[0]
	if len(n.Params) != 4 || len(n.Returns) != 4 {
		t.Fatalf("scalarization: %d params, %d returns", len(n.Params), len(n.Returns))
	}
	if n.Params[2].Name != "x__2" {
		t.Errorf("param name %q", n.Params[2].Name)
	}
	if len(n.Eqs) != 4 {
		t.Fatalf("unrolling: %d equations", len(n.Eqs))
	}
	if n.Eqs[3].Lhs[0] != "y__3" {
		t.Errorf("lhs %q", n.Eqs[3].Lhs[0])
	}
	if !strings.Contains(n.Eqs[3].Rhs.String(), "x__3") {
		t.Errorf("rhs %s", n.Eqs[3].Rhs)
	}
	if n.NeedsExpansion() {
		t.Error("expanded node still needs expansion")
	}
}

func TestExpandNestedLoopsAndIndexArithmetic(t *testing.T) {
	p := mustExpand(t, `
node main(a: u4[6]) returns (z: u4[6])
let
  forall i in 0..1 {
    forall j in 0..2 {
      z[i*3 + j] = a[(1-i)*3 + j];
    }
  }
tel`)
	n := p.Nodes[0]
	if len(n.Eqs) != 6 {
		t.Fatalf("%d equations", len(n.Eqs))
	}
	// i=0,j=0: z[0] = a[3].
	if n.Eqs[0].Lhs[0] != "z__0" || !strings.Contains(n.Eqs[0].Rhs.String(), "a__3") {
		t.Errorf("eq0: %s = %s", n.Eqs[0].Lhs[0], n.Eqs[0].Rhs)
	}
}

func TestExpandConstTable(t *testing.T) {
	p := mustExpand(t, `
node main(x: u8[3]) returns (z: u8[3])
const w: u8[3] = {10, 20, 250};
let
  forall i in 0..2 {
    z[i] = x[i] + w[i];
  }
tel`)
	n := p.Nodes[0]
	if !strings.Contains(n.Eqs[2].Rhs.String(), "250") {
		t.Errorf("table value lost: %s", n.Eqs[2].Rhs)
	}
}

func TestExpandLoopVarAsValue(t *testing.T) {
	p := mustExpand(t, `
node main(x: u8[3]) returns (z: u8[3])
let
  forall i in 0..2 {
    z[i] = x[i] + i;
  }
tel`)
	if !strings.Contains(p.Nodes[0].Eqs[2].Rhs.String(), "2") {
		t.Errorf("loop var not substituted: %s", p.Nodes[0].Eqs[2].Rhs)
	}
}

func TestExpandEndToEndSemantics(t *testing.T) {
	// Full pipeline through the facade is covered in the root package;
	// here check that expansion + typecheck compose.
	src := `
node main(x: u8[4]) returns (s: u8)
vars acc: u8[5];
const w: u8[4] = {1, 2, 3, 4};
let
  acc[0] = 0:u8;
  forall i in 0..3 {
    acc[i+1] = acc[i] + (x[i] ^ w[i]);
  }
  s = acc[4];
tel`
	p := mustExpand(t, src)
	n := p.Nodes[0]
	if len(n.Eqs) != 6 {
		t.Fatalf("%d equations", len(n.Eqs))
	}
	if len(n.Locals) != 5 {
		t.Fatalf("%d locals", len(n.Locals))
	}
}

func TestExpandErrors(t *testing.T) {
	cases := map[string]string{
		"index out of range": `
node main(x: u8[4]) returns (z: u8)
let z = x[4]; tel`,
		"negative index": `
node main(x: u8[4]) returns (z: u8)
let forall i in 0..0 { z = x[i-1]; } tel`,
		"array without index": `
node main(x: u8[4]) returns (z: u8)
let z = x; tel`,
		"index non-array": `
node main(x: u8) returns (z: u8)
let z = x[0]; tel`,
		"array lhs without index": `
node main(x: u8) returns (z: u8[2])
let z = x; tel`,
		"non-const index": `
node main(x: u8[4], k: u8) returns (z: u8)
let z = x[k]; tel`,
		"shadowed loop var": `
node main(x: u8[4]) returns (z: u8[4])
let forall i in 0..1 { forall i in 0..1 { z[i] = x[i]; } } tel`,
		"table redefined": `
node main(x: u8) returns (z: u8)
const t: u8[1] = {1};
const t: u8[1] = {2};
let z = x; tel`,
	}
	for name, src := range cases {
		if _, err := ParseAndExpand(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseErrorsForArrays(t *testing.T) {
	cases := map[string]string{
		"table size mismatch": `
node main(x: u8) returns (z: u8)
const t: u8[3] = {1, 2};
let z = x; tel`,
		"table scalar type": `
node main(x: u8) returns (z: u8)
const t: u8 = {1};
let z = x; tel`,
		"empty loop range": `
node main(x: u8) returns (z: u8)
let forall i in 3..1 { z = x; } tel`,
		"table overflow": `
node main(x: u8) returns (z: u8)
const t: u4[1] = {200};
let z = x; tel`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
