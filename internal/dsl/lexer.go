package dsl

import (
	"strings"
	"unicode"
)

// Lexer tokenizes CHOPPER source text. Comments run from "//" to end of
// line; whitespace is insignificant.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

var keywords = map[string]TokKind{
	"node": TokNode, "returns": TokReturn, "vars": TokVars,
	"let": TokLet, "tel": TokTel,
	"forall": TokForall, "in": TokIn, "const": TokConst,
}

// Next returns the next token, or an error for an unrecognized byte.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			sb.WriteByte(l.advance())
		}
		text := sb.String()
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	case unicode.IsDigit(rune(c)):
		var sb strings.Builder
		sb.WriteByte(l.advance())
		if sb.String() == "0" && (l.peek() == 'x' || l.peek() == 'X') {
			sb.WriteByte(l.advance())
			for l.off < len(l.src) && isHex(l.peek()) {
				sb.WriteByte(l.advance())
			}
			if sb.Len() == 2 {
				return Token{}, errf(start, "malformed hex literal")
			}
		} else {
			for l.off < len(l.src) && (unicode.IsDigit(rune(l.peek())) || l.peek() == '_') {
				sb.WriteByte(l.advance())
			}
		}
		return Token{Kind: TokInt, Text: sb.String(), Pos: start}, nil
	}

	two := func(k TokKind) (Token, error) {
		t := string(l.advance()) + string(l.advance())
		return Token{Kind: k, Text: t, Pos: start}, nil
	}
	one := func(k TokKind) (Token, error) {
		return Token{Kind: k, Text: string(l.advance()), Pos: start}, nil
	}

	switch c {
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '.':
		if l.peek2() == '.' {
			return two(TokDotDot)
		}
		return Token{}, errf(start, "unexpected '.' (use '..' for ranges)")
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case ',':
		return one(TokComma)
	case ';':
		return one(TokSemi)
	case ':':
		return one(TokColon)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '&':
		return one(TokAmp)
	case '|':
		return one(TokPipe)
	case '^':
		return one(TokCaret)
	case '~':
		return one(TokTilde)
	case '?':
		return one(TokQuestion)
	case '@':
		return one(TokAt)
	case '=':
		if l.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if l.peek2() == '=' {
			return two(TokNe)
		}
		return Token{}, errf(start, "unexpected '!' (use '!=' or '~')")
	case '<':
		switch l.peek2() {
		case '<':
			return two(TokShl)
		case '=':
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		switch l.peek2() {
		case '>':
			return two(TokShr)
		case '=':
			return two(TokGe)
		}
		return one(TokGt)
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '_'
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
