package dsl

import (
	"fmt"
	"math/big"
	"strings"
)

// Type is a bit-vector type uN, or an array of them uN[K]. Every scalar
// value in the language is an unsigned bit vector; signedness is an
// operator property (future work mirrors the paper's "elementary basic
// types"). Arrays exist only before macro expansion (dsl.Expand
// scalarizes them); the compiler middle end never sees one.
type Type struct {
	Bits int
	// Count is the array length; 0 means scalar.
	Count int
}

// IsArray reports whether the type is an array.
func (t Type) IsArray() bool { return t.Count > 0 }

// MaxBits bounds type widths; wide enough for the 864-bit identifiers of
// the Significance Weighting workload.
const MaxBits = 2048

func (t Type) String() string {
	if t.IsArray() {
		return fmt.Sprintf("u%d[%d]", t.Bits, t.Count)
	}
	return fmt.Sprintf("u%d", t.Bits)
}

// Valid reports whether the type is in range.
func (t Type) Valid() bool { return t.Bits >= 1 && t.Bits <= MaxBits }

// Attr is a node attribute such as @reuse or @noreuse, the annotation hook
// OBS-2 exposes to programmers ("transparently decide whether this
// optimization shall be enforced based on their own specifications").
type Attr struct {
	Name string
	Args []string
	Pos  Pos
}

// Param declares a typed variable (input, output, or local).
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// ConstTable is a node-level constant lookup table:
// "const name: uN[K] = {v0, v1, ...};". Tables are resolved during macro
// expansion: every indexed reference becomes an integer literal.
type ConstTable struct {
	Name   string
	Type   Type // array type
	Values []*big.Int
	Pos    Pos
}

// ForAll is a static loop: "forall i in a..b { ... }" (inclusive bounds).
// Loops are unrolled by dsl.Expand before type checking; bodies may nest
// further loops and equations.
type ForAll struct {
	Var      string
	From, To int
	Eqs      []*Equation
	Loops    []*ForAll
	Pos      Pos
}

// Node is one dataflow node.
type Node struct {
	Name    string
	Attrs   []Attr
	Params  []Param
	Returns []Param
	Locals  []Param
	Consts  []*ConstTable
	Eqs     []*Equation
	Loops   []*ForAll
	Pos     Pos
}

// NeedsExpansion reports whether the node still contains pre-expansion
// constructs (loops, arrays, const tables).
func (n *Node) NeedsExpansion() bool {
	if len(n.Loops) > 0 || len(n.Consts) > 0 {
		return true
	}
	for _, ps := range [][]Param{n.Params, n.Returns, n.Locals} {
		for _, p := range ps {
			if p.Type.IsArray() {
				return true
			}
		}
	}
	return false
}

// HasAttr reports whether the node carries attribute name.
func (n *Node) HasAttr(name string) bool {
	for _, a := range n.Attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Equation assigns an expression to one or more variables:
// "x = e;" or "(x, y) = f(a, b);". Before expansion a left-hand side may
// be an array element: LhsIdx[i] is its index expression (nil = scalar).
type Equation struct {
	Lhs    []string
	LhsIdx []Expr
	Rhs    Expr
	Pos    Pos
}

// Program is a compilation unit. The last node (or the node named "main",
// if present) is the entry point.
type Program struct {
	Nodes []*Node
}

// Lookup finds a node by name.
func (p *Program) Lookup(name string) *Node {
	for _, n := range p.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Entry returns the entry node: "main" if present, otherwise the last node.
func (p *Program) Entry() *Node {
	if n := p.Lookup("main"); n != nil {
		return n
	}
	if len(p.Nodes) == 0 {
		return nil
	}
	return p.Nodes[len(p.Nodes)-1]
}

// Expr is an expression.
type Expr interface {
	ExprPos() Pos
	String() string
}

// Ident references a variable.
type Ident struct {
	Name string
	Pos  Pos
}

func (e *Ident) ExprPos() Pos   { return e.Pos }
func (e *Ident) String() string { return e.Name }

// IntLit is an integer literal, optionally width-ascribed ("42:u8").
// Values may exceed 64 bits (hex literals for wide constants).
type IntLit struct {
	Value *big.Int
	// Width is the ascribed width in bits; 0 means "adopt from context".
	Width int
	Pos   Pos
}

func (e *IntLit) ExprPos() Pos { return e.Pos }
func (e *IntLit) String() string {
	if e.Width > 0 {
		return fmt.Sprintf("%s:u%d", e.Value, e.Width)
	}
	return e.Value.String()
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNotU UnOp = iota // ~x
	OpNegU             // -x
)

func (o UnOp) String() string {
	if o == OpNotU {
		return "~"
	}
	return "-"
}

// Unary applies a unary operator.
type Unary struct {
	Op  UnOp
	X   Expr
	Pos Pos
}

func (e *Unary) ExprPos() Pos   { return e.Pos }
func (e *Unary) String() string { return fmt.Sprintf("(%s%s)", e.Op, e.X) }

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
)

var binOpNames = [...]string{"+", "-", "*", "&", "|", "^", "<<", ">>", "<", ">", "<=", ">=", "==", "!="}

func (o BinOp) String() string { return binOpNames[o] }

// IsComparison reports whether the operator yields u1.
func (o BinOp) IsComparison() bool { return o >= OpLt }

// IsShift reports whether the operator is a shift.
func (o BinOp) IsShift() bool { return o == OpShl || o == OpShr }

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	X, Y Expr
	Pos  Pos
}

func (e *Binary) ExprPos() Pos   { return e.Pos }
func (e *Binary) String() string { return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y) }

// Cond is the ternary conditional c ? t : f (per-lane multiplexer).
type Cond struct {
	C, T, F Expr
	Pos     Pos
}

func (e *Cond) ExprPos() Pos   { return e.Pos }
func (e *Cond) String() string { return fmt.Sprintf("(%s ? %s : %s)", e.C, e.T, e.F) }

// Index references an array element "x[e]". The index must be a constant
// expression after loop-variable substitution; dsl.Expand turns every
// Index into a scalar Ident (or an IntLit, for const tables).
type Index struct {
	Name string
	Idx  Expr
	Pos  Pos
}

func (e *Index) ExprPos() Pos   { return e.Pos }
func (e *Index) String() string { return fmt.Sprintf("%s[%s]", e.Name, e.Idx) }

// Call instantiates another node (or a builtin such as mux/min/max/absdiff/
// popcount) on arguments.
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (e *Call) ExprPos() Pos { return e.Pos }
func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}
