package dsl

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser must never panic, whatever bytes it is fed: errors only.
func TestParserRobustOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := "node main returns vars let tel forall in const " +
		"( ) [ ] { } , ; : = + - * & | ^ ~ ? < > << >> <= >= == != .. @ " +
		"a b c u8 u16 u1 0 1 42 0xFF x y z "
	words := strings.Fields(alphabet)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			prog, err := ParseAndExpand(src)
			_ = prog
			_ = err
		}()
	}
}

// Random byte soup, including invalid UTF-8 and control characters.
func TestLexerRobustOnBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b, r)
				}
			}()
			_, _ = LexAll(string(b))
		}()
	}
}

// Structured near-miss programs: valid skeletons with one token mutated.
func TestParserRobustOnMutations(t *testing.T) {
	base := "node main(a: u8, b: u8) returns (z: u8) vars t: u8; let t = a + b; z = mux(a < b, t, a); tel"
	toks := strings.Fields(base)
	rng := rand.New(rand.NewSource(3))
	junk := []string{"", "(", ")", "tel", "node", "??", "[", "]", "{", "..", "0x", "u0", "u99999"}
	for trial := 0; trial < 500; trial++ {
		mutated := append([]string(nil), toks...)
		i := rng.Intn(len(mutated))
		mutated[i] = junk[rng.Intn(len(junk))]
		src := strings.Join(mutated, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseAndExpand(src)
		}()
	}
}
