package dsl

import (
	"math/big"
	"strings"
)

// Parser builds the AST via recursive descent with precedence climbing.
type Parser struct {
	lex   *Lexer
	tok   Token
	err   error
	depth int
}

// maxExprDepth bounds expression-nesting recursion. Go cannot recover a
// goroutine stack overflow, so deeply nested hostile input (thousands of
// "(((((..." or "~~~~~...") must be cut off with a regular parse error well
// before the stack runs out. Legitimate programs nest a few dozen levels at
// most.
const maxExprDepth = 500

func (p *Parser) enter(pos Pos) error {
	p.depth++
	if p.depth > maxExprDepth {
		return errf(pos, "expression nested deeper than %d levels", maxExprDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse parses a full program.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if prog.Lookup(n.Name) != nil {
			return nil, errf(n.Pos, "node %q redefined", n.Name)
		}
		prog.Nodes = append(prog.Nodes, n)
	}
	if len(prog.Nodes) == 0 {
		return nil, errf(Pos{1, 1}, "empty program: no nodes")
	}
	return prog, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: TokEOF, Pos: p.tok.Pos}
		return
	}
	p.tok = t
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s %q", k, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	p.next()
	return t, p.err
}

func (p *Parser) accept(k TokKind) bool {
	if p.err == nil && p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) parseNode() (*Node, error) {
	var attrs []Attr
	for p.tok.Kind == TokAt {
		a, err := p.parseAttr()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	kw, err := p.expect(TokNode)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	n := &Node{Name: name.Text, Attrs: attrs, Pos: kw.Pos}

	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if n.Params, err = p.parseParams(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokReturn); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if n.Returns, err = p.parseParams(TokRParen); err != nil {
		return nil, err
	}
	if len(n.Returns) == 0 {
		return nil, errf(p.tok.Pos, "node %q returns nothing", n.Name)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if p.accept(TokVars) {
		if n.Locals, err = p.parseParams(TokLet); err != nil {
			return nil, err
		}
		p.accept(TokSemi)
	}
	for p.tok.Kind == TokConst {
		ct, err := p.parseConstTable()
		if err != nil {
			return nil, err
		}
		n.Consts = append(n.Consts, ct)
	}
	if _, err := p.expect(TokLet); err != nil {
		return nil, err
	}
	if err := p.parseStmts(n, nil, TokTel); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokTel); err != nil {
		return nil, err
	}
	return n, nil
}

// parseStmts parses equations and forall loops until stop (not consumed),
// appending either to the node (loop == nil) or to the enclosing loop.
func (p *Parser) parseStmts(n *Node, loop *ForAll, stop TokKind) error {
	for p.tok.Kind != stop && p.tok.Kind != TokEOF {
		if p.tok.Kind == TokForall {
			fa, err := p.parseForAll(n)
			if err != nil {
				return err
			}
			if loop != nil {
				loop.Loops = append(loop.Loops, fa)
			} else {
				n.Loops = append(n.Loops, fa)
			}
			continue
		}
		eq, err := p.parseEquation()
		if err != nil {
			return err
		}
		if loop != nil {
			loop.Eqs = append(loop.Eqs, eq)
		} else {
			n.Eqs = append(n.Eqs, eq)
		}
	}
	if p.err != nil {
		return p.err
	}
	return nil
}

// parseForAll parses "forall i in a..b { stmts }".
func (p *Parser) parseForAll(n *Node) (*ForAll, error) {
	kw, err := p.expect(TokForall)
	if err != nil {
		return nil, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIn); err != nil {
		return nil, err
	}
	from, err := p.parseBoundInt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDotDot); err != nil {
		return nil, err
	}
	to, err := p.parseBoundInt()
	if err != nil {
		return nil, err
	}
	if to < from {
		return nil, errf(kw.Pos, "empty loop range %d..%d", from, to)
	}
	if to-from >= 1<<20 {
		return nil, errf(kw.Pos, "loop range %d..%d too large", from, to)
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	fa := &ForAll{Var: v.Text, From: from, To: to, Pos: kw.Pos}
	if err := p.parseStmts(n, fa, TokRBrace); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return fa, nil
}

// isTypeName reports whether s is a uN type name.
func isTypeName(s string) bool {
	if len(s) < 2 || s[0] != 'u' {
		return false
	}
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func (p *Parser) parseBoundInt() (int, error) {
	t, err := p.expect(TokInt)
	if err != nil {
		return 0, err
	}
	v, ok := new(big.Int).SetString(strings.ReplaceAll(t.Text, "_", ""), 0)
	if !ok || !v.IsInt64() {
		return 0, errf(t.Pos, "malformed loop bound %q", t.Text)
	}
	return int(v.Int64()), nil
}

// parseConstTable parses "const name: uN[K] = {v0, v1, ...};".
func (p *Parser) parseConstTable() (*ConstTable, error) {
	kw, err := p.expect(TokConst)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if !ty.IsArray() {
		return nil, errf(kw.Pos, "const table %q needs an array type (uN[K])", name.Text)
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	ct := &ConstTable{Name: name.Text, Type: ty, Pos: kw.Pos}
	for {
		t, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		v, ok := new(big.Int).SetString(strings.ReplaceAll(t.Text, "_", ""), 0)
		if !ok {
			return nil, errf(t.Pos, "malformed constant %q", t.Text)
		}
		if v.BitLen() > ty.Bits {
			return nil, errf(t.Pos, "constant %s does not fit in u%d", v, ty.Bits)
		}
		ct.Values = append(ct.Values, v)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(ct.Values) != ty.Count {
		return nil, errf(kw.Pos, "const table %q declares %d entries but lists %d", name.Text, ty.Count, len(ct.Values))
	}
	p.accept(TokSemi)
	return ct, nil
}

func (p *Parser) parseAttr() (Attr, error) {
	at, err := p.expect(TokAt)
	if err != nil {
		return Attr{}, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return Attr{}, err
	}
	a := Attr{Name: name.Text, Pos: at.Pos}
	if p.accept(TokLParen) {
		for {
			arg, err := p.expect(TokIdent)
			if err != nil {
				// allow integer args too
				if p.tok.Kind == TokInt {
					arg = p.tok
					p.next()
				} else {
					return Attr{}, err
				}
			}
			a.Args = append(a.Args, arg.Text)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return Attr{}, err
		}
	}
	return a, nil
}

// parseParams parses "a, b : u8, c : u16" until stop (not consumed).
func (p *Parser) parseParams(stop TokKind) ([]Param, error) {
	var out []Param
	for p.tok.Kind != stop && p.tok.Kind != TokEOF {
		var group []Token
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			group = append(group, id)
			if !p.accept(TokComma) {
				break
			}
			// A comma may separate names within one group or whole
			// param groups; lookahead on ':' disambiguates at the
			// next ident. Since both forms interleave the same way,
			// just keep accumulating names until a colon.
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		for _, id := range group {
			out = append(out, Param{Name: id.Text, Type: ty, Pos: id.Pos})
		}
		if !p.accept(TokComma) {
			break
		}
	}
	return out, nil
}

func (p *Parser) parseType() (Type, error) {
	id, err := p.expect(TokIdent)
	if err != nil {
		return Type{}, err
	}
	if !strings.HasPrefix(id.Text, "u") || len(id.Text) < 2 {
		return Type{}, errf(id.Pos, "unknown type %q (expected uN)", id.Text)
	}
	bits := 0
	for _, c := range id.Text[1:] {
		if c < '0' || c > '9' {
			return Type{}, errf(id.Pos, "unknown type %q (expected uN)", id.Text)
		}
		bits = bits*10 + int(c-'0')
		if bits > MaxBits {
			return Type{}, errf(id.Pos, "type %q exceeds u%d", id.Text, MaxBits)
		}
	}
	t := Type{Bits: bits}
	if !t.Valid() {
		return Type{}, errf(id.Pos, "invalid type %q", id.Text)
	}
	if p.accept(TokLBracket) {
		n, err := p.expect(TokInt)
		if err != nil {
			return Type{}, err
		}
		count := 0
		for _, c := range n.Text {
			if c < '0' || c > '9' {
				return Type{}, errf(n.Pos, "array length must be a decimal literal")
			}
			count = count*10 + int(c-'0')
		}
		if count < 1 || count > 1<<20 {
			return Type{}, errf(n.Pos, "array length %d out of range", count)
		}
		t.Count = count
		if _, err := p.expect(TokRBracket); err != nil {
			return Type{}, err
		}
	}
	return t, nil
}

func (p *Parser) parseEquation() (*Equation, error) {
	eq := &Equation{Pos: p.tok.Pos}
	parseLref := func() error {
		id, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		eq.Lhs = append(eq.Lhs, id.Text)
		var idx Expr
		if p.accept(TokLBracket) {
			if idx, err = p.parseExpr(); err != nil {
				return err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return err
			}
		}
		eq.LhsIdx = append(eq.LhsIdx, idx)
		return nil
	}
	if p.tok.Kind == TokLParen {
		p.next()
		for {
			if err := parseLref(); err != nil {
				return nil, err
			}
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if len(eq.Lhs) < 2 {
			return nil, errf(eq.Pos, "parenthesized left-hand side needs at least two variables")
		}
	} else {
		if err := parseLref(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	eq.Rhs = rhs
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return eq, nil
}

// Precedence levels, loosest first:
//
//	?:   (right-assoc, handled by parseExpr)
//	|
//	^
//	&
//	== !=
//	< > <= >=
//	<< >>
//	+ -
//	*
//	unary ~ -
func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(p.tok.Pos); err != nil {
		return nil, err
	}
	defer p.leave()
	c, err := p.parseBin(0)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokQuestion {
		pos := p.tok.Pos
		p.next()
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, T: t, F: f, Pos: pos}, nil
	}
	return c, nil
}

type binLevel struct {
	toks []TokKind
	ops  []BinOp
}

var binLevels = []binLevel{
	{[]TokKind{TokPipe}, []BinOp{OpOr}},
	{[]TokKind{TokCaret}, []BinOp{OpXor}},
	{[]TokKind{TokAmp}, []BinOp{OpAnd}},
	{[]TokKind{TokEq, TokNe}, []BinOp{OpEq, OpNe}},
	{[]TokKind{TokLt, TokGt, TokLe, TokGe}, []BinOp{OpLt, OpGt, OpLe, OpGe}},
	{[]TokKind{TokShl, TokShr}, []BinOp{OpShl, OpShr}},
	{[]TokKind{TokPlus, TokMinus}, []BinOp{OpAdd, OpSub}},
	{[]TokKind{TokStar}, []BinOp{OpMul}},
}

func (p *Parser) parseBin(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	lv := binLevels[level]
	for {
		matched := false
		for i, tk := range lv.toks {
			if p.tok.Kind == tk {
				pos := p.tok.Pos
				p.next()
				rhs, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &Binary{Op: lv.ops[i], X: lhs, Y: rhs, Pos: pos}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(p.tok.Pos); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.tok.Kind {
	case TokTilde:
		pos := p.tok.Pos
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNotU, X: x, Pos: pos}, nil
	case TokMinus:
		pos := p.tok.Pos
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNegU, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokIdent:
		id := p.tok
		p.next()
		if p.tok.Kind == TokLBracket {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &Index{Name: id.Text, Idx: idx, Pos: id.Pos}, nil
		}
		if p.tok.Kind == TokLParen {
			p.next()
			call := &Call{Name: id.Text, Pos: id.Pos}
			if p.tok.Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: id.Text, Pos: id.Pos}, nil

	case TokInt:
		tok := p.tok
		p.next()
		val, ok := new(big.Int).SetString(strings.ReplaceAll(tok.Text, "_", ""), 0)
		if !ok {
			return nil, errf(tok.Pos, "malformed integer literal %q", tok.Text)
		}
		lit := &IntLit{Value: val, Pos: tok.Pos}
		if p.tok.Kind == TokColon {
			// A colon after a literal is a width ascription only when a
			// uN type follows; otherwise it belongs to an enclosing
			// ternary ("c ? 100 : x"). One token of backtracking
			// disambiguates.
			savedTok, savedLex := p.tok, *p.lex
			p.next()
			if p.tok.Kind == TokIdent && isTypeName(p.tok.Text) {
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				lit.Width = ty.Bits
				if val.BitLen() > ty.Bits {
					return nil, errf(tok.Pos, "literal %s does not fit in u%d", val, ty.Bits)
				}
			} else {
				p.tok, *p.lex = savedTok, savedLex
			}
		}
		return lit, nil

	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.err != nil {
		return nil, p.err
	}
	return nil, errf(p.tok.Pos, "expected expression, found %s %q", p.tok.Kind, p.tok.Text)
}
