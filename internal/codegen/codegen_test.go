package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/obs"
	"chopper/internal/sim"
)

// adderNet builds a w-bit adder legalized for arch.
func adderNet(t *testing.T, w int, arch isa.Arch, fold bool) *logic.Net {
	t.Helper()
	b := logic.NewBuilder(logic.BuilderOptions{Fold: fold, CSE: true})
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	b.OutputWord("z", b.Add(x, y))
	n := b.Net()
	leg, err := logic.Legalize(n, arch, logic.BuilderOptions{Fold: fold, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	return leg.DCE()
}

// runOn compiles and functionally executes a net over 64 identical lanes,
// checking outputs against net.Eval.
func runOn(t *testing.T, net *logic.Net, arch isa.Arch, v obs.Variant, dRows int, inputs map[string]uint64) map[string]uint64 {
	t.Helper()
	res, err := Generate(net, Options{Arch: arch, Variant: v, DRows: dRows})
	if err != nil {
		t.Fatalf("%v/%v: %v", arch, v, err)
	}
	got := make(map[string]uint64)
	io := &sim.HostIO{
		WriteData: func(tag int) []uint64 {
			for name, tg := range res.InputTag {
				if tg == tag {
					return []uint64{inputs[name]}
				}
			}
			if pat, ok := res.ConstPattern[tag]; ok {
				return []uint64{pat}
			}
			return nil
		},
		ReadSink: func(tag int, data []uint64) {
			for name, tg := range res.OutputTag {
				if tg == tag {
					got[name] = data[0]
				}
			}
		},
	}
	geom := dram.DefaultGeometry()
	geom.RowsPerSub = dRows + geom.ReservedRows
	if _, err := sim.RunProgram(res.Prog, arch, geom, 64, io); err != nil {
		t.Fatalf("%v/%v run: %v", arch, v, err)
	}
	want, err := net.Eval(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("%v/%v output %s = %#x, want %#x", arch, v, name, got[name], w)
		}
	}
	return got
}

func randInputs(rng *rand.Rand, net *logic.Net) map[string]uint64 {
	in := make(map[string]uint64, len(net.InputNames))
	for _, name := range net.InputNames {
		in[name] = rng.Uint64()
	}
	return in
}

func TestGenerateCorrectAllVariantsAllArchs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, arch := range isa.AllArchs {
		for _, v := range obs.AllVariants {
			net := adderNet(t, 8, arch, v.HasReuse())
			runOn(t, net, arch, v, 100, randInputs(rng, net))
		}
	}
}

func TestGenerateRejectsUnlegalizedNet(t *testing.T) {
	b := logic.NewOptBuilder()
	x := b.Input("x")
	y := b.Input("y")
	b.Output("z", b.Xor(x, y))
	n := b.Net()
	if _, err := Generate(n, Options{Arch: isa.Ambit, Variant: obs.Rename, DRows: 64}); err == nil {
		t.Error("XOR net accepted for Ambit")
	}
}

func TestGenerateRejectsTinyPool(t *testing.T) {
	net := adderNet(t, 8, isa.Ambit, true)
	if _, err := Generate(net, Options{Arch: isa.Ambit, Variant: obs.Rename, DRows: 2}); err == nil {
		t.Error("2-row pool accepted")
	}
}

func TestRenameShortensPrograms(t *testing.T) {
	for _, arch := range isa.AllArchs {
		net := adderNet(t, 16, arch, true)
		r3, err := Generate(net, Options{Arch: arch, Variant: obs.Rename, DRows: 200})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Generate(net, Options{Arch: arch, Variant: obs.Reuse, DRows: 200})
		if err != nil {
			t.Fatal(err)
		}
		if len(r3.Prog.Ops) >= len(r2.Prog.Ops) {
			t.Errorf("%v: rename %d ops, reuse %d ops", arch, len(r3.Prog.Ops), len(r2.Prog.Ops))
		}
		if r3.Stats.StoresElided == 0 {
			t.Errorf("%v: no stores elided", arch)
		}
		if r3.Stats.MaxLiveRows > r2.Stats.MaxLiveRows {
			t.Errorf("%v: rename raised pressure %d -> %d", arch, r2.Stats.MaxLiveRows, r3.Stats.MaxLiveRows)
		}
	}
}

func TestReuseEliminatesConstWrites(t *testing.T) {
	// A net with explicit constant operands: x + 0b1010 (unfolded).
	build := func(fold bool) *logic.Net {
		b := logic.NewBuilder(logic.BuilderOptions{Fold: fold, CSE: true})
		x := b.InputWord("x", 8)
		c := b.ConstWord(0xAA, 8)
		b.OutputWord("z", b.Add(x, c))
		n := b.Net()
		leg, err := logic.Legalize(n, isa.Ambit, logic.BuilderOptions{Fold: fold, CSE: true})
		if err != nil {
			t.Fatal(err)
		}
		return leg.DCE()
	}
	noReuse, err := Generate(build(false), Options{Arch: isa.Ambit, Variant: obs.Schedule, DRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	withReuse, err := Generate(build(true), Options{Arch: isa.Ambit, Variant: obs.Reuse, DRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	if noReuse.Stats.ConstWrites == 0 {
		t.Error("no-reuse variant wrote no constants")
	}
	if withReuse.Stats.ConstWrites != 0 {
		t.Errorf("reuse variant wrote %d constants", withReuse.Stats.ConstWrites)
	}
	if len(withReuse.ConstPattern) != 0 {
		t.Error("reuse variant exposes host const tags")
	}
}

func TestSpillInsertedAndCorrect(t *testing.T) {
	// High-pressure net: interleave products so many values stay live.
	b := logic.NewOptBuilder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	var words []logic.Word
	for i := 0; i < 6; i++ {
		words = append(words, b.Mul(b.ShiftLeft(x, i), y, 8))
	}
	acc := words[0]
	for _, w := range words[1:] {
		acc = b.Add(acc, w)
	}
	b.OutputWord("z", acc)
	n := b.Net()
	leg, err := logic.Legalize(n, isa.Ambit, logic.BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	leg = leg.DCE()

	big, err := Generate(leg, Options{Arch: isa.Ambit, Variant: obs.Bitslice, DRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Generate(leg, Options{Arch: isa.Ambit, Variant: obs.Bitslice, DRows: big.Stats.MaxLiveRows / 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.SpillOuts == 0 && small.Stats.Drops == 0 {
		t.Fatal("halving the pool caused no eviction")
	}
	// Both must compute the same thing.
	rng := rand.New(rand.NewSource(2))
	in := randInputs(rng, leg)
	runOn(t, leg, isa.Ambit, obs.Bitslice, 1000, in)
	runOn(t, leg, isa.Ambit, obs.Bitslice, big.Stats.MaxLiveRows/2, in)
}

func TestInputDropsPreferredOverSpills(t *testing.T) {
	// Inputs are cheap to evict (host re-writes them); verify drops happen
	// before SSD spills when inputs dominate the resident set.
	b := logic.NewOptBuilder()
	var bits []logic.NodeID
	for i := 0; i < 40; i++ {
		bits = append(bits, b.Input(fmt.Sprintf("x%d[0]", i)))
	}
	acc := bits[0]
	for _, bit := range bits[1:] {
		acc = b.And(acc, bit)
	}
	// Touch every input again so they stay live across the whole program.
	acc2 := bits[0]
	for _, bit := range bits[1:] {
		acc2 = b.Or(acc2, bit)
	}
	b.Output("z[0]", b.And(acc, acc2))
	n := b.Net()
	leg, err := logic.Legalize(n, isa.Ambit, logic.BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(leg.DCE(), Options{Arch: isa.Ambit, Variant: obs.Bitslice, DRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Drops == 0 {
		t.Error("no input rows dropped under pressure")
	}
	if res.Stats.SpillOuts > res.Stats.Drops {
		t.Errorf("spills (%d) dominate drops (%d): inputs should be dropped first", res.Stats.SpillOuts, res.Stats.Drops)
	}
}

func TestDirectWritesForOneShotInputs(t *testing.T) {
	// A bitwise net: every input bit has exactly one use, so with O3 all
	// of them can be host-written straight into the compute rows.
	b := logic.NewOptBuilder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	b.OutputWord("z", b.BitwiseAnd(x, y))
	raw := b.Net()
	leg, err0 := logic.Legalize(raw, isa.Ambit, logic.BuilderOptions{Fold: true, CSE: true})
	if err0 != nil {
		t.Fatal(err0)
	}
	net := leg.DCE()
	res, err := Generate(net, Options{Arch: isa.Ambit, Variant: obs.Rename, DRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DirectWrites == 0 {
		t.Error("rename produced no direct-to-compute-row writes")
	}
	noRen, err := Generate(net, Options{Arch: isa.Ambit, Variant: obs.Reuse, DRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	if noRen.Stats.DirectWrites != 0 {
		t.Error("reuse level should not direct-write")
	}
}

func TestProgramValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, arch := range isa.AllArchs {
		net := adderNet(t, 12, arch, true)
		res, err := Generate(net, Options{Arch: arch, Variant: obs.Rename, DRows: 50})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Prog.Validate(50); err != nil {
			t.Errorf("%v: %v", arch, err)
		}
		_ = rng
	}
}

func TestNotChains(t *testing.T) {
	// Deep NOT chains exercise the DCC pairs and their eviction. Folding
	// is disabled so consecutive NOTs are not cancelled.
	b := logic.NewBuilder(logic.BuilderOptions{Fold: false, CSE: true})
	x := b.Input("x[0]")
	y := b.Input("y[0]")
	n1 := b.Not(x)
	n2 := b.Not(n1)
	n3 := b.Not(n2)
	a := b.And(n1, y)
	o := b.Or(n3, a)
	b.Output("z[0]", o)
	net := b.Net()
	runOn(t, net, isa.Ambit, obs.Rename, 50, map[string]uint64{"x[0]": 0xF0F0, "y[0]": 0xFF00})
	runOn(t, net, isa.Ambit, obs.Bitslice, 50, map[string]uint64{"x[0]": 0xF0F0, "y[0]": 0xFF00})
}
