// Package codegen translates a legalized bit-sliced logic net into a PUD
// micro-op program for one subarray. It is where the three OBS
// optimizations become row traffic:
//
//   - the gate execution order comes from obs.ScheduleGates (O1);
//   - constant bitslices are sourced from the C-group rows instead of CPU
//     writes when O2 is enabled, and are host-written, buffered rows when
//     it is not;
//   - with O3 enabled, stores are lazy: a TRA result stays in the compute
//     rows and is only stored to a D-group row when the next operation
//     would clobber it while uses remain ("Store-Copy-Compute" becomes
//     "Store-Compute" for one-shot bitslices), and single-use inputs are
//     host-written directly into the compute rows.
//
// Gate-to-micro-op mapping (the Ambit/SIMDRAM command idiom):
//
//	AND x,y  =>  AAP x->T0; AAP y->T1; AAP C0->T2; AP T0,T1,T2
//	OR  x,y  =>  AAP x->T0; AAP y->T1; AAP C1->T2; AP T0,T1,T2
//	MAJ x,y,z => AAP x->T0; AAP y->T1; AAP z->T2; AP T0,T1,T2  (SIMDRAM)
//	NOT x    =>  AAP x->DCCi  (result available at ~DCCi)
package codegen

import (
	"context"
	"fmt"

	"chopper/internal/alloc"
	"chopper/internal/guard"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/obs"
)

// Options configure code generation. The net must already be legalized for
// Arch (see logic.Legalize); codegen verifies this.
type Options struct {
	Arch    isa.Arch
	Variant obs.Variant
	// DRows is the number of D-group rows the generator may allocate.
	DRows int

	// PoolBase offsets the allocatable region: rows [PoolBase,
	// PoolBase+DRows) belong to the generator, rows below PoolBase to the
	// caller (the baseline driver parks full-width operands there).
	PoolBase int
	// SlotBase offsets SSD spill slot numbering.
	SlotBase int

	// ExtIn declares inputs that do not come from the host: the value
	// already resides in a caller-managed row, or sits in a caller-managed
	// SSD spill slot. ExtOut routes outputs to caller-managed rows or
	// slots instead of host READs.
	ExtIn  map[string]ExtLoc
	ExtOut map[string]ExtLoc

	// MaxOps, when positive, caps how many micro-ops the generated program
	// may contain (the guard.DimMicroOps budget dimension). The check runs
	// after every emitted gate, so a runaway emission stops at a
	// deterministic gate index with a *guard.BudgetError.
	MaxOps int
	// Ctx, when non-nil, is observed periodically during emission for
	// cooperative cancellation.
	Ctx context.Context

	// Scratch, when non-nil, supplies reusable working storage so repeated
	// Generate calls stop allocating per-node tables. The scratch is reset
	// at the start of every Generate (never at the end), so one abandoned
	// by a panicking pass is safe to reuse. Not safe for concurrent use.
	Scratch *Scratch
}

// Scratch is codegen's per-compile working storage: every per-node table
// the emitter walks, in dense reusable slices. A zero Scratch is valid;
// capacity grows to the largest net it has compiled.
type Scratch struct {
	loc      []location
	useOff   []int // CSR offsets into useBuf, len = gates+1
	useBuf   []int // consumption positions, grouped by node, ascending
	useIdx   []int // per-node absolute cursor into useBuf
	cur      []int // CSR fill cursor (shared by both CSR builds)
	isConst  []bool
	isInput  []bool
	external []bool
	nodeTag  []int
	constTag []int // host WRITE tag per constant node, -1 = unassigned
	slotOf   []int // SSD slot per node, -1 = none
	outOff   []int // CSR offsets into outBuf, len = gates+1
	outBuf   []int // output indices fed by each node
	outDone  []bool
	resList  []logic.NodeID // nodes resident in D rows, dense iteration
	resPos   []int          // index into resList, -1 = not resident
	pool     alloc.RowPool
}

// prepare sizes and clears the scratch for a net with gates nodes and
// outs outputs.
func (s *Scratch) prepare(gates, outs int) {
	if cap(s.loc) < gates {
		s.loc = make([]location, gates)
		s.useOff = make([]int, gates+1)
		s.useIdx = make([]int, gates)
		s.cur = make([]int, gates+1)
		s.isConst = make([]bool, gates)
		s.isInput = make([]bool, gates)
		s.external = make([]bool, gates)
		s.nodeTag = make([]int, gates)
		s.constTag = make([]int, gates)
		s.slotOf = make([]int, gates)
		s.outOff = make([]int, gates+1)
		s.resPos = make([]int, gates)
	}
	s.loc = s.loc[:gates]
	clear(s.loc)
	s.useOff = s.useOff[:gates+1]
	s.useIdx = s.useIdx[:gates]
	s.cur = s.cur[:gates+1]
	s.isConst = s.isConst[:gates]
	clear(s.isConst)
	s.isInput = s.isInput[:gates]
	clear(s.isInput)
	s.external = s.external[:gates]
	clear(s.external)
	s.nodeTag = s.nodeTag[:gates]
	s.constTag = s.constTag[:gates]
	s.slotOf = s.slotOf[:gates]
	for i := range s.constTag {
		s.nodeTag[i] = -1
		s.constTag[i] = -1
		s.slotOf[i] = -1
	}
	s.outOff = s.outOff[:gates+1]
	s.resPos = s.resPos[:gates]
	if cap(s.outDone) < outs {
		s.outDone = make([]bool, outs)
	}
	s.outDone = s.outDone[:outs]
	clear(s.outDone)
	s.resList = s.resList[:0]
}

// ExtLoc locates an externally managed value: a resident row, or an SSD
// spill slot when Spilled is set.
type ExtLoc struct {
	Row     isa.Row
	Slot    int
	Spilled bool
}

// Stats summarizes the generated program.
type Stats struct {
	AAPs, APs     int
	Writes, Reads int
	SpillOuts     int
	SpillIns      int
	Drops         int // input/const rows evicted without SSD traffic
	StoresElided  int // TRA results never stored thanks to O3
	DirectWrites  int // inputs host-written straight into compute rows (O3)
	ConstCopies   int // constants sourced from the C-group (O2)
	ConstWrites   int // constant rows written by the host (no O2)
	MaxLiveRows   int // D-group high-water mark
}

// Result is a compiled single-subarray program plus its host interface.
type Result struct {
	Prog *isa.Program

	// InputTag maps a net input name (e.g. "a[3]") to the WRITE tag the
	// host must answer with that bit-row.
	InputTag map[string]int
	// OutputTag maps a net output name to the READ tag it arrives under.
	OutputTag map[string]int
	// ConstPattern maps WRITE tags above the input range to the fill
	// pattern (0 or ^0) of host-materialized constant rows (O2 off).
	ConstPattern map[int]uint64

	// NextSlot is the first spill slot id not used by this program
	// (callers generating multiple programs chain SlotBase through it).
	NextSlot int

	Stats Stats
}

type locKind uint8

const (
	locNowhere  locKind = iota // not materialized (pristine input/const)
	locDRow                    // in a pool-allocated D-group row
	locExternal                // in a caller-managed D-group row (pinned)
	locB                       // in the T rows as the last TRA result
	locDCC                     // in a dual-contact complement row
	locSpilled                 // on the SSD
	locDead                    // no uses remain
)

type location struct {
	kind locKind
	row  isa.Row // D row, or DCC0N/DCC1N for locDCC
	slot int     // spill slot for locSpilled
}

type emitter struct {
	net  *logic.Net
	opts Options

	prog isa.Program
	pool *alloc.RowPool

	// s holds every per-node table (locations, CSR use positions, tags,
	// the resident set) in dense reusable storage; see Scratch.
	s *Scratch

	lr logic.NodeID // node whose value currently fills T0..T2 (None if stale)

	dccHold [2]logic.NodeID // node held by each DCC pair (None if free)

	inputTag  map[string]int
	nextTag   int
	nextSlot  int
	constPats map[int]uint64

	outPos int // schedule position at which outputs are consumed

	stats Stats
}

// outs returns the output indices node n feeds (CSR slice of outBuf).
func (e *emitter) outs(n logic.NodeID) []int {
	return e.s.outBuf[e.s.outOff[n]:e.s.outOff[n+1]]
}

// setLoc updates a node's location, maintaining the resident index (a
// dense list with swap-remove, so spill victim selection both scans at
// most DRows candidates and iterates deterministically).
func (e *emitter) setLoc(n logic.NodeID, l location) {
	was, is := e.s.loc[n].kind == locDRow, l.kind == locDRow
	if was && !is {
		s := e.s
		i := s.resPos[n]
		last := s.resList[len(s.resList)-1]
		s.resList[i] = last
		s.resPos[last] = i
		s.resList = s.resList[:len(s.resList)-1]
	} else if !was && is {
		s := e.s
		s.resPos[n] = len(s.resList)
		s.resList = append(s.resList, n)
	}
	e.s.loc[n] = l
}

// Generate compiles the net into a single-subarray program.
func Generate(net *logic.Net, opts Options) (*Result, error) {
	if err := net.CheckGateSet(logic.NativeGates(opts.Arch)); err != nil {
		return nil, fmt.Errorf("codegen: net not legalized for %v: %w", opts.Arch, err)
	}
	if opts.DRows < 4 {
		return nil, fmt.Errorf("codegen: need at least 4 D-group rows, have %d", opts.DRows)
	}
	order := obs.ScheduleGates(net, opts.Variant.HasSchedule())

	s := opts.Scratch
	if s == nil {
		s = new(Scratch)
	}
	s.prepare(len(net.Gates), len(net.Outputs))
	s.pool.Reset(opts.PoolBase, opts.DRows)

	e := &emitter{
		net:       net,
		opts:      opts,
		pool:      &s.pool,
		s:         s,
		lr:        logic.None,
		dccHold:   [2]logic.NodeID{logic.None, logic.None},
		inputTag:  make(map[string]int),
		constPats: make(map[int]uint64),
		outPos:    len(order),
	}
	// Pre-size the op stream: a computation gate expands to at most ~5
	// micro-ops (three slot fills, the activation, a result store), plus
	// one read/store per output. The buffer escapes into the returned
	// Program, so it is sized here rather than pooled.
	e.prog.Ops = make([]isa.Op, 0, 5*len(order)+2*len(net.Outputs)+8)
	e.prog.EpochMarks = make([]int, 0, len(order)+1)
	// CSR index of the output positions each node feeds, so results can
	// be read back eagerly (as soon as final) instead of buffering every
	// output row until the end of the program.
	clear(s.outOff)
	for _, o := range net.Outputs {
		s.outOff[o+1]++
	}
	for i := 0; i < len(net.Gates); i++ {
		s.outOff[i+1] += s.outOff[i]
	}
	if cap(s.outBuf) < len(net.Outputs) {
		s.outBuf = make([]int, len(net.Outputs))
	}
	s.outBuf = s.outBuf[:len(net.Outputs)]
	copy(s.cur, s.outOff)
	for i, o := range net.Outputs {
		s.outBuf[s.cur[o]] = i
		s.cur[o]++
	}
	for i := range net.Gates {
		switch net.Gates[i].Kind {
		case logic.GConst0, logic.GConst1:
			s.isConst[i] = true
		case logic.GInput:
			s.isInput[i] = true
		}
	}
	for i, in := range net.Inputs {
		if ext, ok := opts.ExtIn[net.InputNames[i]]; ok {
			s.external[in] = true
			if ext.Spilled {
				s.loc[in] = location{kind: locSpilled, slot: ext.Slot}
				s.slotOf[in] = ext.Slot
			} else {
				s.loc[in] = location{kind: locExternal, row: ext.Row}
			}
			continue
		}
		s.nodeTag[in] = i
		e.inputTag[net.InputNames[i]] = i
	}
	e.nextTag = len(net.Inputs)
	e.nextSlot = opts.SlotBase

	// Consumption positions: one entry per (gate, distinct arg); outputs
	// consume at outPos. Two passes build a CSR layout (counts, prefix
	// sum, fill) where per-node append slices would allocate.
	clear(s.useOff)
	countUse := func(count func(arg logic.NodeID)) {
		for _, gid := range order {
			g := &net.Gates[gid]
			var seen [3]logic.NodeID
			ns := 0
			for a := 0; a < g.Kind.Arity(); a++ {
				arg := g.Args[a]
				dup := false
				for k := 0; k < ns; k++ {
					if seen[k] == arg {
						dup = true
					}
				}
				if !dup {
					seen[ns] = arg
					ns++
					count(arg)
				}
			}
		}
	}
	countUse(func(arg logic.NodeID) { s.useOff[arg+1]++ })
	for _, o := range net.Outputs {
		s.useOff[o+1]++
	}
	for i := 0; i < len(net.Gates); i++ {
		s.useOff[i+1] += s.useOff[i]
	}
	totalUses := s.useOff[len(net.Gates)]
	if cap(s.useBuf) < totalUses {
		s.useBuf = make([]int, totalUses)
	}
	s.useBuf = s.useBuf[:totalUses]
	copy(s.cur, s.useOff)
	for pos, gid := range order {
		g := &net.Gates[gid]
		var seen [3]logic.NodeID
		ns := 0
		for a := 0; a < g.Kind.Arity(); a++ {
			arg := g.Args[a]
			dup := false
			for k := 0; k < ns; k++ {
				if seen[k] == arg {
					dup = true
				}
			}
			if !dup {
				seen[ns] = arg
				ns++
				s.useBuf[s.cur[arg]] = pos
				s.cur[arg]++
			}
		}
	}
	for _, o := range net.Outputs {
		s.useBuf[s.cur[o]] = e.outPos
		s.cur[o]++
	}
	copy(s.useIdx, s.useOff[:len(net.Gates)])

	res := &Result{
		InputTag:     e.inputTag,
		OutputTag:    make(map[string]int, len(net.Outputs)),
		ConstPattern: e.constPats,
	}
	for i := range net.Outputs {
		res.OutputTag[net.OutputNames[i]] = i
	}
	for pos, gid := range order {
		if pos&63 == 0 {
			if err := guard.Ctx(opts.Ctx); err != nil {
				return nil, err
			}
		}
		if err := e.emitGate(pos, gid); err != nil {
			return nil, err
		}
		if e.opts.Variant.HasRename() {
			if err := e.eagerRead(pos, gid); err != nil {
				return nil, err
			}
		}
		if err := guard.Check(guard.DimMicroOps, opts.MaxOps, len(e.prog.Ops)); err != nil {
			return nil, err
		}
		e.markEpoch()
	}
	for i, o := range net.Outputs {
		if e.s.outDone[i] {
			continue
		}
		row, err := e.sourceRowForRead(o)
		if err != nil {
			return nil, fmt.Errorf("codegen: output %s: %w", net.OutputNames[i], err)
		}
		if ext, ok := opts.ExtOut[net.OutputNames[i]]; ok {
			if ext.Spilled {
				e.prog.Append(isa.NewSpillOut(row, uint64(ext.Slot)))
				e.stats.SpillOuts++
			} else {
				e.prog.Append(isa.NewAAP(row, ext.Row))
				e.stats.AAPs++
			}
			e.s.outDone[i] = true
			e.finishOutput(o)
			continue
		}
		e.prog.Append(isa.NewRead(row, i))
		e.stats.Reads++
		e.s.outDone[i] = true
		e.finishOutput(o)
	}

	if err := guard.Check(guard.DimMicroOps, opts.MaxOps, len(e.prog.Ops)); err != nil {
		return nil, err
	}
	e.markEpoch()

	e.stats.MaxLiveRows = e.pool.MaxUsed()
	e.prog.DRowsUsed = e.pool.MaxUsed()
	maxSlot := e.nextSlot
	for name, ext := range opts.ExtOut {
		if ext.Spilled && ext.Slot+1 > maxSlot {
			maxSlot = ext.Slot + 1
		}
		_ = name
	}
	for name, ext := range opts.ExtIn {
		if ext.Spilled && ext.Slot+1 > maxSlot {
			maxSlot = ext.Slot + 1
		}
		_ = name
	}
	e.prog.SpillSlots = maxSlot
	res.NextSlot = maxSlot
	if err := e.prog.Validate(opts.PoolBase + opts.DRows); err != nil {
		return nil, err
	}
	res.Prog = &e.prog
	res.Stats = e.stats
	return res, nil
}

// markEpoch records the current op count as a legal recovery cut point.
// It is called after each scheduled gate's expansion (and its eager reads)
// retires, so an epoch boundary chosen by the recovery runtime never lands
// inside the micro-op cluster of a single logic gate. Consecutive gates
// that emitted no ops collapse into one mark.
func (e *emitter) markEpoch() {
	n := len(e.prog.Ops)
	if n == 0 {
		return
	}
	if l := len(e.prog.EpochMarks); l > 0 && e.prog.EpochMarks[l-1] == n {
		return
	}
	e.prog.EpochMarks = append(e.prog.EpochMarks, n)
}

// eagerRead retires outputs whose value just became final: the gate at pos
// feeds one or more program outputs and has no further computational
// consumers. Retiring now — a host READ, or a store to the caller's
// external row/slot for ExtOut — releases the row immediately instead of
// buffering every output until program end, which is essential for kernels
// with many outputs.
func (e *emitter) eagerRead(pos int, gid logic.NodeID) error {
	outs := e.outs(gid)
	if len(outs) == 0 {
		return nil
	}
	// Remaining uses must be exactly the output pseudo-use.
	if e.nextUse(gid) != e.outPos {
		return nil
	}
	return e.retireOutputs(gid, pos)
}

// retireOutputs emits the host READ (or external store) for every output
// fed by node n, then frees n's storage.
func (e *emitter) retireOutputs(n logic.NodeID, pos int) error {
	row, err := e.materialize(n, pos)
	if err != nil {
		return err
	}
	for _, oi := range e.outs(n) {
		if e.s.outDone[oi] {
			continue
		}
		if ext, ok := e.opts.ExtOut[e.net.OutputNames[oi]]; ok {
			if ext.Spilled {
				e.prog.Append(isa.NewSpillOut(row, uint64(ext.Slot)))
				e.stats.SpillOuts++
			} else {
				e.prog.Append(isa.NewAAP(row, ext.Row))
				e.stats.AAPs++
			}
		} else {
			e.prog.Append(isa.NewRead(row, oi))
			e.stats.Reads++
		}
		e.s.outDone[oi] = true
	}
	// The output pseudo-use is satisfied; free the storage.
	e.s.useIdx[n] = e.s.useOff[n+1]
	e.release(n)
	return nil
}

// finishOutput releases node n's storage once every output it feeds has
// been retired, so refills of later (spilled) outputs have rows to land in.
func (e *emitter) finishOutput(n logic.NodeID) {
	for _, oi := range e.outs(n) {
		if !e.s.outDone[oi] {
			return
		}
	}
	if e.s.loc[n].kind != locDead {
		e.s.useIdx[n] = e.s.useOff[n+1]
		e.release(n)
	}
}

// remaining returns the number of unconsumed uses of node n.
func (e *emitter) remaining(n logic.NodeID) int {
	return e.s.useOff[n+1] - e.s.useIdx[n]
}

// nextUse returns the next consumption position of n (outPos+1 if none).
func (e *emitter) nextUse(n logic.NodeID) int {
	if e.s.useIdx[n] >= e.s.useOff[n+1] {
		return e.outPos + 1
	}
	return e.s.useBuf[e.s.useIdx[n]]
}

// consume advances n's use cursor past position pos. If the only use left
// is the output pseudo-use, the output is retired right away (with O3):
// values that are both outputs and operands finalize here, not at their
// defining gate.
func (e *emitter) consume(n logic.NodeID, pos int) {
	for e.s.useIdx[n] < e.s.useOff[n+1] && e.s.useBuf[e.s.useIdx[n]] <= pos {
		e.s.useIdx[n]++
	}
	if e.remaining(n) == 0 && e.s.loc[n].kind != locDead {
		e.release(n)
		return
	}
	if e.opts.Variant.HasRename() && len(e.outs(n)) > 0 &&
		e.remaining(n) == len(e.outs(n)) && e.nextUse(n) == e.outPos &&
		e.s.loc[n].kind != locDead && e.s.loc[n].kind != locB {
		// Ignore retire errors here; the end-of-program path will retry
		// and report them with output context.
		_ = e.retireOutputs(n, pos)
	}
}

// release frees whatever storage a dead node occupies.
func (e *emitter) release(n logic.NodeID) {
	switch e.s.loc[n].kind {
	case locDRow:
		e.pool.Free(e.s.loc[n].row)
	case locDCC:
		for i := range e.dccHold {
			if e.dccHold[i] == n {
				e.dccHold[i] = logic.None
			}
		}
	}
	if e.lr == n {
		e.lr = logic.None
	}
	e.setLoc(n, location{kind: locDead})
}

// allocD obtains a free D row, evicting by Belady order if necessary:
// pristine-on-host rows (inputs/constants) are dropped for free; computed
// values are spilled to the SSD.
func (e *emitter) allocD(pos int) (isa.Row, error) {
	if r, ok := e.pool.Alloc(); ok {
		return r, nil
	}
	// Pick victims among nodes resident in D rows.
	victim := logic.None
	victimDrop := false
	victimNext := -1
	for _, id := range e.s.resList {
		n := int(id)
		nu := e.nextUse(id)
		if nu <= pos {
			// Needed by the operation being assembled right now: pinned.
			continue
		}
		drop := (e.s.isInput[n] || e.s.isConst[n]) && !e.s.external[n]
		// Prefer droppable rows; among equals, furthest next use.
		better := false
		switch {
		case victim == logic.None:
			better = true
		case drop != victimDrop:
			better = drop
		default:
			better = nu > victimNext
		}
		if better {
			victim, victimDrop, victimNext = id, drop, nu
		}
	}
	if victim == logic.None {
		return isa.RowNone, fmt.Errorf("codegen: subarray too small: all %d D rows are needed at step %d", e.opts.DRows, pos)
	}
	row := e.s.loc[victim].row
	if victimDrop {
		// The host still has this data; just forget the row.
		e.setLoc(victim, location{kind: locNowhere})
		e.stats.Drops++
	} else {
		slot := e.s.slotOf[victim]
		if slot < 0 {
			slot = e.nextSlot
			e.nextSlot++
			e.s.slotOf[victim] = slot
		}
		e.prog.Append(isa.NewSpillOut(row, uint64(slot)))
		e.stats.SpillOuts++
		e.setLoc(victim, location{kind: locSpilled, slot: slot})
	}
	e.pool.Free(row)
	r, ok := e.pool.Alloc()
	if !ok {
		return isa.RowNone, fmt.Errorf("codegen: allocator inconsistency")
	}
	return r, nil
}

// materialize ensures node n's value lives in an addressable row and
// returns that row. It never places into B-group (callers copy from the
// returned row into compute rows). pos is the current schedule position.
func (e *emitter) materialize(n logic.NodeID, pos int) (isa.Row, error) {
	switch e.s.loc[n].kind {
	case locDRow, locExternal:
		return e.s.loc[n].row, nil
	case locDCC:
		return e.s.loc[n].row, nil
	case locB:
		return isa.T0, nil
	case locSpilled:
		row, err := e.allocD(pos)
		if err != nil {
			return isa.RowNone, err
		}
		slot := e.s.loc[n].slot
		e.prog.Append(isa.NewSpillIn(row, uint64(slot)))
		e.stats.SpillIns++
		e.setLoc(n, location{kind: locDRow, row: row})
		return row, nil
	case locNowhere:
		switch {
		case e.s.isConst[n]:
			if e.opts.Variant.HasReuse() {
				// O2: the constant is architecturally present.
				if e.net.Gates[n].Kind == logic.GConst1 {
					return isa.C1, nil
				}
				return isa.C0, nil
			}
			// Host writes and buffers a constant row.
			tag := e.s.constTag[n]
			if tag < 0 {
				tag = e.nextTag
				e.nextTag++
				e.s.constTag[n] = tag
				pat := uint64(0)
				if e.net.Gates[n].Kind == logic.GConst1 {
					pat = ^uint64(0)
				}
				e.constPats[tag] = pat
			}
			row, err := e.allocD(pos)
			if err != nil {
				return isa.RowNone, err
			}
			e.prog.Append(isa.NewWrite(row, tag))
			e.stats.Writes++
			e.stats.ConstWrites++
			e.setLoc(n, location{kind: locDRow, row: row})
			return row, nil
		case e.s.isInput[n]:
			row, err := e.allocD(pos)
			if err != nil {
				return isa.RowNone, err
			}
			e.prog.Append(isa.NewWrite(row, e.s.nodeTag[n]))
			e.stats.Writes++
			e.setLoc(n, location{kind: locDRow, row: row})
			return row, nil
		}
		return isa.RowNone, fmt.Errorf("codegen: node %d has no value to materialize", n)
	}
	return isa.RowNone, fmt.Errorf("codegen: node %d is dead but referenced", n)
}

// sourceRowForRead is materialize for output reads (B results read from T0,
// NOT results from their complement row).
func (e *emitter) sourceRowForRead(n logic.NodeID) (isa.Row, error) {
	return e.materialize(n, e.outPos)
}

// flushLR stores the last TRA result to a D row if uses remain beyond the
// current gate's own consumption. consumedNow is how it is referenced by
// the gate about to execute.
func (e *emitter) flushLR(pos int, consumedNow bool) error {
	if e.lr == logic.None {
		return nil
	}
	n := e.lr
	rem := e.remaining(n)
	if consumedNow {
		rem-- // this gate's consumption doesn't require a buffered copy
	}
	if rem > 0 && e.s.loc[n].kind == locB {
		row, err := e.allocD(pos)
		if err != nil {
			return err
		}
		e.prog.Append(isa.NewAAP(isa.T0, row))
		e.stats.AAPs++
		e.setLoc(n, location{kind: locDRow, row: row})
	} else if rem <= 0 && e.s.loc[n].kind == locB && e.opts.Variant.HasRename() {
		e.stats.StoresElided++
	}
	// Either way, the T rows are about to be clobbered.
	if e.s.loc[n].kind == locB {
		if rem > 0 {
			return fmt.Errorf("codegen: losing live value %d", n)
		}
		e.setLoc(n, location{kind: locDead})
	}
	e.lr = logic.None
	return nil
}

// dccFor picks a DCC pair for a NOT result, storing the current holder
// first if it is still live and unbuffered.
func (e *emitter) dccFor(pos int) (int, error) {
	// Prefer a free pair.
	for i, h := range e.dccHold {
		if h == logic.None {
			return i, nil
		}
		if e.s.loc[h].kind != locDCC {
			// Holder moved (stored/spilled/dead); pair is reusable.
			e.dccHold[i] = logic.None
			return i, nil
		}
	}
	// Evict the holder with the furthest next use.
	iv := 0
	if e.nextUse(e.dccHold[1]) > e.nextUse(e.dccHold[0]) {
		iv = 1
	}
	h := e.dccHold[iv]
	if e.remaining(h) > 0 {
		row, err := e.allocD(pos)
		if err != nil {
			return 0, err
		}
		e.prog.Append(isa.NewAAP(e.s.loc[h].row, row))
		e.stats.AAPs++
		e.setLoc(h, location{kind: locDRow, row: row})
	} else {
		e.setLoc(h, location{kind: locDead})
	}
	e.dccHold[iv] = logic.None
	return iv, nil
}

var dccRows = [2][2]isa.Row{{isa.DCC0, isa.DCC0N}, {isa.DCC1, isa.DCC1N}}

func (e *emitter) emitGate(pos int, gid logic.NodeID) error {
	g := &e.net.Gates[gid]
	rename := e.opts.Variant.HasRename()

	switch g.Kind {
	case logic.GNot:
		arg := g.Args[0]
		chained := rename && e.lr == arg && e.s.loc[arg].kind == locB
		if err := e.flushLR(pos, e.lr == arg); err != nil {
			return err
		}
		pair, err := e.dccFor(pos)
		if err != nil {
			return err
		}
		if chained {
			e.prog.Append(isa.NewAAP(isa.T0, dccRows[pair][0]))
			e.stats.AAPs++
		} else if err := e.fillSlot(arg, dccRows[pair][0], pos); err != nil {
			return err
		}
		e.consume(arg, pos)
		e.dccHold[pair] = gid
		e.setLoc(gid, location{kind: locDCC, row: dccRows[pair][1]})
		if !rename {
			// Baseline behavior: store the result immediately.
			row, err := e.allocD(pos)
			if err != nil {
				return err
			}
			e.prog.Append(isa.NewAAP(dccRows[pair][1], row))
			e.stats.AAPs++
			e.dccHold[pair] = logic.None
			e.setLoc(gid, location{kind: locDRow, row: row})
		}
		return nil

	case logic.GAnd, logic.GOr, logic.GMaj:
		// Determine the three TRA operands.
		type slotSrc struct {
			node    logic.NodeID // None for the control row
			control isa.Row
		}
		var slots [3]slotSrc
		switch g.Kind {
		case logic.GAnd:
			slots = [3]slotSrc{{node: g.Args[0]}, {node: g.Args[1]}, {node: logic.None, control: isa.C0}}
		case logic.GOr:
			slots = [3]slotSrc{{node: g.Args[0]}, {node: g.Args[1]}, {node: logic.None, control: isa.C1}}
		case logic.GMaj:
			slots = [3]slotSrc{{node: g.Args[0]}, {node: g.Args[1]}, {node: g.Args[2]}}
		}
		consumesLR := false
		if e.lr != logic.None && e.s.loc[e.lr].kind == locB {
			for _, s := range slots {
				if s.node == e.lr {
					consumesLR = true
				}
			}
		}
		lrNode := e.lr
		if err := e.flushLR(pos, consumesLR); err != nil {
			return err
		}

		tRows := [3]isa.Row{isa.T0, isa.T1, isa.T2}
		// Fill slots; with O3, slots holding the last result need no copy
		// (the value is in every T row after the previous TRA).
		for i, s := range slots {
			if s.node == logic.None {
				e.prog.Append(isa.NewAAP(s.control, tRows[i]))
				e.stats.AAPs++
				continue
			}
			if rename && consumesLR && s.node == lrNode {
				// The previous TRA left its result in all three T rows,
				// so this slot is already filled — claim it copy-free.
				continue
			}
			if err := e.fillSlot(s.node, tRows[i], pos); err != nil {
				return err
			}
		}
		e.prog.Append(isa.NewAP(isa.T0, isa.T1, isa.T2))
		e.stats.APs++
		for a := 0; a < g.Kind.Arity(); a++ {
			e.consume(g.Args[a], pos)
		}
		e.lr = gid
		e.setLoc(gid, location{kind: locB})
		if !rename {
			// Baseline behavior: store every result immediately.
			if err := e.flushLR(pos+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("codegen: unexpected gate kind %s at %d", g.Kind, gid)
}

// fillSlot places node n's value into the compute row target. With O3, a
// pristine single-use input is host-written straight into the compute row
// (eliminating both its D-group buffer and the copy); otherwise the value
// is materialized into an addressable row and copied in with an AAP.
func (e *emitter) fillSlot(n logic.NodeID, target isa.Row, pos int) error {
	if e.opts.Variant.HasRename() && e.s.isInput[n] && !e.s.external[n] && e.s.loc[n].kind == locNowhere && e.s.useOff[n+1]-e.s.useOff[n] == 1 {
		e.prog.Append(isa.NewWrite(target, e.s.nodeTag[n]))
		e.stats.Writes++
		e.stats.DirectWrites++
		return nil
	}
	src, err := e.materialize(n, pos)
	if err != nil {
		return err
	}
	if src.IsCGroup() {
		e.stats.ConstCopies++
	}
	e.prog.Append(isa.NewAAP(src, target))
	e.stats.AAPs++
	return nil
}
