package bitslice

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"chopper/internal/dfg"
	"chopper/internal/dsl"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/typecheck"
)

func lower(t *testing.T, src string, opts Options) (*dfg.Graph, *logic.Net) {
	t.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ch, err := typecheck.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	g, err := dfg.Build(ch)
	if err != nil {
		t.Fatalf("dfg: %v", err)
	}
	n, err := Lower(g, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid net: %v", err)
	}
	return g, n
}

// evalBoth runs one random lane through the dataflow evaluator and through
// the bit-sliced net (and each legalized variant), comparing outputs.
func evalBoth(t *testing.T, g *dfg.Graph, n *logic.Net, rng *rand.Rand) {
	t.Helper()
	inputs := make(map[string]*big.Int)
	widths := make(map[string]int)
	for _, in := range g.Inputs {
		v := g.Values[in]
		val := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(v.Width)))
		inputs[v.Name] = val
		widths[v.Name] = v.Width
	}
	want, err := g.Eval(inputs)
	if err != nil {
		t.Fatalf("dfg eval: %v", err)
	}

	nets := map[string]*logic.Net{"generic": n}
	for _, arch := range isa.AllArchs {
		leg, err := logic.Legalize(n, arch, logic.BuilderOptions{Fold: true, CSE: true})
		if err != nil {
			t.Fatalf("legalize %v: %v", arch, err)
		}
		nets[arch.String()] = leg
	}

	bundles := make(map[string]uint64)
	for name, val := range inputs {
		for bit := 0; bit < widths[name]; bit++ {
			var bun uint64
			if val.Bit(bit) == 1 {
				bun = ^uint64(0) // same value in all 64 lanes
			}
			bundles[fmt.Sprintf("%s[%d]", name, bit)] = bun
		}
	}
	for label, net := range nets {
		got, err := net.Eval(bundles)
		if err != nil {
			t.Fatalf("%s eval: %v", label, err)
		}
		for i, out := range g.Outputs {
			name := g.OutputNames[i]
			w := g.Values[out].Width
			for bit := 0; bit < w; bit++ {
				bun, ok := got[fmt.Sprintf("%s[%d]", name, bit)]
				if !ok {
					t.Fatalf("%s: missing output %s[%d]", label, name, bit)
				}
				wantBit := want[name].Bit(bit)
				gotBit := uint(bun & 1)
				if bun != 0 && bun != ^uint64(0) {
					t.Fatalf("%s: output %s[%d] lanes disagree: %#x", label, name, bit, bun)
				}
				if gotBit != wantBit {
					t.Fatalf("%s: output %s bit %d = %d, want %d (inputs %v)", label, name, bit, gotBit, wantBit, inputs)
				}
			}
		}
	}
}

const kitchenSink = `
node f(a: u8, b: u8, c: u1) returns (
  s: u8, d: u8, p: u8, cmp: u1, m: u8, pc: u8, sh: u8)
let
  s = a + b;
  d = a - b;
  p = a * b;
  cmp = a < b;
  m = mux(c, min(a, b), absdiff(a, b));
  pc = popcount(a ^ b);
  sh = (a << 3) | (b >> 2);
tel`

func TestLowerMatchesDFGSemantics(t *testing.T) {
	for _, fold := range []bool{true, false} {
		t.Run(fmt.Sprintf("fold=%v", fold), func(t *testing.T) {
			g, n := lower(t, kitchenSink, Options{Fold: fold})
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 25; i++ {
				evalBoth(t, g, n, rng)
			}
		})
	}
}

func TestLowerConstantsFold(t *testing.T) {
	// x + 0 with folding collapses to a wire; without folding it keeps a
	// full ripple adder.
	src := "node f(a: u8) returns (z: u8) let z = a + 0; tel"
	_, folded := lower(t, src, Options{Fold: true})
	_, unfolded := lower(t, src, Options{Fold: false})
	if folded.OpGates() != 0 {
		t.Errorf("a+0 with fold has %d gates, want 0", folded.OpGates())
	}
	if unfolded.OpGates() == 0 {
		t.Errorf("a+0 without fold folded anyway")
	}
}

func TestBitLevelSparsity(t *testing.T) {
	// Adding a sparse constant (single set bit) should synthesize far
	// fewer gates than adding a dense operand: the OBS-2 effect.
	sparse := "node f(a: u16) returns (z: u16) let z = a + 256; tel"
	dense := "node f(a: u16, b: u16) returns (z: u16) let z = a + b; tel"
	_, ns := lower(t, sparse, Options{Fold: true})
	_, nd := lower(t, dense, Options{Fold: true})
	if ns.OpGates() >= nd.OpGates() {
		t.Errorf("sparse-constant add (%d gates) not cheaper than dense add (%d gates)", ns.OpGates(), nd.OpGates())
	}
}

func TestLowerInputsOutputsNamed(t *testing.T) {
	g, n := lower(t, "node f(a: u4) returns (z: u4) let z = ~a; tel", Options{Fold: true})
	_ = g
	if len(n.Inputs) != 4 {
		t.Fatalf("inputs = %d", len(n.Inputs))
	}
	if n.InputNames[0] != "a[0]" || n.InputNames[3] != "a[3]" {
		t.Errorf("input names: %v", n.InputNames)
	}
	if len(n.Outputs) != 4 || n.OutputNames[0] != "z[0]" {
		t.Errorf("output names: %v", n.OutputNames)
	}
}

func TestWideOperands(t *testing.T) {
	g, n := lower(t, "node f(a: u96, b: u96) returns (z: u96) let z = a + b; tel", Options{Fold: true})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		evalBoth(t, g, n, rng)
	}
}

func TestMuxConditionWidthChecked(t *testing.T) {
	// Construct a malformed graph directly: mux with wide condition.
	g := &dfg.Graph{
		Values: []dfg.Value{
			{Kind: dfg.OpInput, Width: 2, Name: "c"},
			{Kind: dfg.OpInput, Width: 4, Name: "a"},
			{Kind: dfg.OpInput, Width: 4, Name: "b"},
			{Kind: dfg.OpMux, Width: 4, Args: []dfg.ValueID{0, 1, 2}},
		},
		Inputs:      []dfg.ValueID{0, 1, 2},
		Outputs:     []dfg.ValueID{3},
		OutputNames: []string{"z"},
	}
	if _, err := Lower(g, Options{Fold: true}); err == nil {
		t.Error("wide mux condition accepted")
	}
}

func TestLowerAllNewOps(t *testing.T) {
	// Variable shifts, signed comparisons, and div/mod all lower and
	// match the dataflow evaluator on every architecture.
	g, n := lower(t, `
node main(a: u8, b: u8, s: u4) returns (
  l: u8, r: u8, ls: u1, ge: u1, q: u8, m: u8)
let
  l = a << s;
  r = b >> s;
  ls = slt(a, b);
  ge = sge(a, b);
  q = div(a, b);
  m = mod(a, b);
tel`, Options{Fold: true})
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 20; i++ {
		evalBoth(t, g, n, rng)
	}
}

func TestLowerUnfoldedVariants(t *testing.T) {
	g, n := lower(t, `
node main(a: u8, b: u8) returns (z: u8)
let z = div(a + 3, max(b, 1:u8)); tel`, Options{Fold: false})
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 10; i++ {
		evalBoth(t, g, n, rng)
	}
}
