package bitslice

import (
	"math/big"
	"reflect"
	"testing"

	"chopper/internal/dfg"
)

// twoComponentGraph builds x = a+b, y = c+d — two equations sharing no
// intermediate value, so the parallel path has two components to spread.
func twoComponentGraph() *dfg.Graph {
	g := &dfg.Graph{}
	in := func(name string) dfg.ValueID {
		id := dfg.ValueID(len(g.Values))
		g.Values = append(g.Values, dfg.Value{Kind: dfg.OpInput, Width: 4, Name: name})
		g.Inputs = append(g.Inputs, id)
		return id
	}
	a, b, c, d := in("a"), in("b"), in("c"), in("d")
	add := func(x, y dfg.ValueID) dfg.ValueID {
		id := dfg.ValueID(len(g.Values))
		g.Values = append(g.Values, dfg.Value{Kind: dfg.OpAdd, Args: []dfg.ValueID{x, y}, Width: 4})
		return id
	}
	x, y := add(a, b), add(c, d)
	g.Outputs = []dfg.ValueID{x, y}
	g.OutputNames = []string{"x", "y"}
	return g
}

// sharedConstGraph adds constants and a shared subexpression duplicated
// across components, exercising replay-time CSE and const sharing.
func sharedConstGraph() *dfg.Graph {
	g := &dfg.Graph{}
	in := func(name string) dfg.ValueID {
		id := dfg.ValueID(len(g.Values))
		g.Values = append(g.Values, dfg.Value{Kind: dfg.OpInput, Width: 8, Name: name})
		g.Inputs = append(g.Inputs, id)
		return id
	}
	a, b := in("a"), in("b")
	val := func(k dfg.OpKind, w int, imm int64, args ...dfg.ValueID) dfg.ValueID {
		id := dfg.ValueID(len(g.Values))
		v := dfg.Value{Kind: k, Args: args, Width: w}
		if k == dfg.OpConst {
			v.Imm = big.NewInt(imm)
		}
		g.Values = append(g.Values, v)
		return id
	}
	c5 := val(dfg.OpConst, 8, 5)
	// Both components compute a+5 internally; serial CSE shares the
	// adder, so the merge must reproduce that sharing to stay identical.
	x := val(dfg.OpAdd, 8, 0, a, c5)
	y := val(dfg.OpAdd, 8, 0, a, c5)
	p := val(dfg.OpMul, 8, 0, x, b)
	q := val(dfg.OpSub, 8, 0, y, b)
	g.Outputs = []dfg.ValueID{p, q}
	g.OutputNames = []string{"p", "q"}
	return g
}

func assertSameNet(t *testing.T, g *dfg.Graph, opts Options) {
	t.Helper()
	serial, err := lowerSerial(g, opts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 3, 8} {
		opts := opts
		opts.Workers = workers
		par, err := Lower(g, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Gates, par.Gates) ||
			!reflect.DeepEqual(serial.Inputs, par.Inputs) ||
			!reflect.DeepEqual(serial.InputNames, par.InputNames) ||
			!reflect.DeepEqual(serial.Outputs, par.Outputs) ||
			!reflect.DeepEqual(serial.OutputNames, par.OutputNames) {
			t.Fatalf("workers=%d: parallel net differs from serial (fold=%v)", workers, opts.Fold)
		}
	}
}

// TestDeterminismParallelLower asserts the parallel lowering reproduces
// the serial net exactly, at any worker count, with and without folding.
// CI runs it under -race with -cpu 1,4.
func TestDeterminismParallelLower(t *testing.T) {
	for _, fold := range []bool{false, true} {
		assertSameNet(t, twoComponentGraph(), Options{Fold: fold})
		assertSameNet(t, sharedConstGraph(), Options{Fold: fold})
	}
}

// TestDeterminismParallelComponents pins the component analysis: shared
// inputs/constants never join equations, computation chains do.
func TestDeterminismParallelComponents(t *testing.T) {
	root, n := components(twoComponentGraph())
	if n != 2 {
		t.Fatalf("two-equation graph: got %d components, want 2", n)
	}
	if root[0] != -1 || root[4] == -1 || root[5] == -1 || root[4] == root[5] {
		t.Fatalf("unexpected roots %v", root)
	}
	if _, n := components(sharedConstGraph()); n != 2 {
		t.Fatalf("shared-const graph: got %d components, want 2", n)
	}
}

// TestDeterminismParallelFallback asserts single-component graphs decline
// the parallel path (and still compile).
func TestDeterminismParallelFallback(t *testing.T) {
	g := &dfg.Graph{}
	g.Values = append(g.Values, dfg.Value{Kind: dfg.OpInput, Width: 4, Name: "a"})
	g.Inputs = []dfg.ValueID{0}
	g.Values = append(g.Values, dfg.Value{Kind: dfg.OpAdd, Args: []dfg.ValueID{0, 0}, Width: 4})
	g.Outputs = []dfg.ValueID{1}
	g.OutputNames = []string{"z"}
	if _, ok := lowerParallel(g, Options{Workers: 4}); ok {
		t.Fatal("single-component graph took the parallel path")
	}
	if _, err := Lower(g, Options{Workers: 4}); err != nil {
		t.Fatalf("fallback lower: %v", err)
	}
}
