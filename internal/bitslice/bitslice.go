// Package bitslice implements CHOPPER's bit-slicing lowering: the multi-bit
// dataflow graph is transformed into a net of 1-bit logic gates — the
// "SIMD-Within-A-Register"-style code that Bit-serial SIMD PUD architectures
// execute. Each dataflow value of width W becomes W net nodes; arithmetic is
// synthesized by the logic package's gate-level library.
//
// Bit-slicing is what breaks the granularity mismatch the paper identifies:
// after this pass the compiler reasons about individual bitslices, so
// OBS-1/2/3 can schedule, reuse, and rename at 1-bit granularity instead of
// full operand size.
package bitslice

import (
	"fmt"
	"math/big"

	"chopper/internal/dfg"
	"chopper/internal/logic"
	"chopper/internal/pool"
)

// Options configure the lowering.
type Options struct {
	// Fold enables bit-level constant folding during lowering (the
	// builder-side half of OBS-2). Off in the CHOPPER-bitslice baseline
	// variant.
	Fold bool
	// Workers > 1 enables parallel lowering: connected components of the
	// dataflow graph (equations sharing no intermediate value) are
	// bit-sliced concurrently on private builders, then merged in global
	// value order, reproducing the serial net byte for byte. Graphs with a
	// single component, and any worker failure, fall back to the serial
	// path. 0 and 1 mean serial.
	Workers int
}

// Lower converts a dataflow graph into a logic net. Input value "x" of
// width W produces net inputs "x[0].."x[W-1]"; outputs likewise.
func Lower(g *dfg.Graph, opts Options) (*logic.Net, error) {
	if opts.Workers > 1 {
		if n, ok := lowerParallel(g, opts); ok {
			return n, nil
		}
	}
	return lowerSerial(g, opts)
}

func lowerSerial(g *dfg.Graph, opts Options) (*logic.Net, error) {
	b := logic.AcquireBuilder(logic.BuilderOptions{Fold: opts.Fold, CSE: true})
	defer b.Release()
	words := make([]logic.Word, len(g.Values))
	for i := range g.Values {
		if err := synthValue(b, g, words, i); err != nil {
			return nil, err
		}
	}
	return finishNet(b, g, words)
}

// synthValue lowers value i into gates, leaving its bit vector in
// words[i]. Arguments must already be lowered (values are topologically
// ordered).
func synthValue(b *logic.Builder, g *dfg.Graph, words []logic.Word, i int) error {
	v := &g.Values[i]
	arg := func(j int) logic.Word { return words[v.Args[j]] }
	// resize adapts an argument to this value's width (the checker
	// guarantees equal widths for most ops; comparisons and resize
	// change widths explicitly).
	switch v.Kind {
	case dfg.OpInput:
		words[i] = b.InputWord(v.Name, v.Width)
	case dfg.OpConst:
		words[i] = constWord(b, v.Imm, v.Width)
	case dfg.OpAdd:
		words[i] = b.Add(arg(0), arg(1))
	case dfg.OpSub:
		words[i] = b.Sub(arg(0), arg(1))
	case dfg.OpMul:
		words[i] = b.Mul(arg(0), arg(1), v.Width)
	case dfg.OpAnd:
		words[i] = b.BitwiseAnd(arg(0), arg(1))
	case dfg.OpOr:
		words[i] = b.BitwiseOr(arg(0), arg(1))
	case dfg.OpXor:
		words[i] = b.BitwiseXor(arg(0), arg(1))
	case dfg.OpNot:
		words[i] = b.BitwiseNot(arg(0))
	case dfg.OpNeg:
		words[i] = b.Neg(arg(0))
	case dfg.OpShl:
		words[i] = b.ShiftLeft(arg(0), int(v.Imm.Int64()))
	case dfg.OpShr:
		words[i] = b.ShiftRight(arg(0), int(v.Imm.Int64()), false)
	case dfg.OpShlV:
		words[i] = b.ShiftLeftDyn(arg(0), arg(1))
	case dfg.OpShrV:
		words[i] = b.ShiftRightDyn(arg(0), arg(1))
	case dfg.OpSra:
		words[i] = b.ShiftRight(arg(0), int(v.Imm.Int64()), true)
	case dfg.OpSraV:
		words[i] = b.ShiftRightArithDyn(arg(0), arg(1))
	case dfg.OpDivU:
		q, _ := b.DivMod(arg(0), arg(1))
		words[i] = q
	case dfg.OpModU:
		_, r := b.DivMod(arg(0), arg(1))
		words[i] = r
	case dfg.OpEq:
		words[i] = logic.Word{b.Eq(arg(0), arg(1))}
	case dfg.OpNe:
		words[i] = logic.Word{b.Ne(arg(0), arg(1))}
	case dfg.OpLtU:
		words[i] = logic.Word{b.LtU(arg(0), arg(1))}
	case dfg.OpGtU:
		words[i] = logic.Word{b.GtU(arg(0), arg(1))}
	case dfg.OpLeU:
		words[i] = logic.Word{b.LeU(arg(0), arg(1))}
	case dfg.OpGeU:
		words[i] = logic.Word{b.GeU(arg(0), arg(1))}
	case dfg.OpLtS:
		words[i] = logic.Word{b.LtS(arg(0), arg(1))}
	case dfg.OpGtS:
		words[i] = logic.Word{b.LtS(arg(1), arg(0))}
	case dfg.OpLeS:
		words[i] = logic.Word{b.Not(b.LtS(arg(1), arg(0)))}
	case dfg.OpGeS:
		words[i] = logic.Word{b.Not(b.LtS(arg(0), arg(1)))}
	case dfg.OpMux:
		c := arg(0)
		if len(c) != 1 {
			return fmt.Errorf("bitslice: mux condition is %d bits wide", len(c))
		}
		words[i] = b.MuxWord(c[0], arg(1), arg(2))
	case dfg.OpMin:
		words[i] = b.MinU(arg(0), arg(1))
	case dfg.OpMax:
		words[i] = b.MaxU(arg(0), arg(1))
	case dfg.OpAbsDiff:
		words[i] = b.AbsDiff(arg(0), arg(1))
	case dfg.OpPopCount:
		pc := b.PopCount(arg(0))
		words[i] = b.Extend(pc, v.Width, false)
	case dfg.OpResize:
		words[i] = b.Extend(arg(0), v.Width, false)
	default:
		return fmt.Errorf("bitslice: unsupported dataflow op %s", v.Kind)
	}
	if len(words[i]) != v.Width {
		// Comparisons yield 1 bit; everything else must match.
		if len(words[i]) == 1 && v.Width == 1 {
			// fine
		} else if len(words[i]) > v.Width {
			words[i] = words[i][:v.Width]
		} else {
			words[i] = b.Extend(words[i], v.Width, false)
		}
	}
	return nil
}

// finishNet registers the outputs and finalizes the builder's net.
func finishNet(b *logic.Builder, g *dfg.Graph, words []logic.Word) (*logic.Net, error) {
	for i, o := range g.Outputs {
		b.OutputWord(g.OutputNames[i], words[o])
	}
	n := b.Net()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n.DCE(), nil
}

func constWord(b *logic.Builder, v *big.Int, w int) logic.Word {
	word := make(logic.Word, w)
	for i := 0; i < w; i++ {
		word[i] = b.Const(v.Bit(i) == 1)
	}
	return word
}

// --- Parallel lowering ---------------------------------------------------
//
// Independent equations (connected components of the dataflow graph when
// inputs and constants are treated as freely shared) can be bit-sliced
// concurrently: each worker lowers its components on a private builder,
// recording per-value spans of the gates it created; the merge then
// replays every span in global value order into one builder, remapping
// private ids to global ids and re-applying id-order normalization and
// structural hashing (logic.Builder.Replay). Because the builder's
// folding and CSE decisions depend only on the set identity of a gate's
// arguments — never on id order, which the replay re-derives — the merged
// net is byte-for-byte the net the serial path builds.

// workerOut is one worker's private lowering of its components.
type workerOut struct {
	net   *logic.Net
	words []logic.Word
	spans [][2]int32 // per value: private gate range created for it
}

// components partitions computation values into connected components,
// treating inputs and constants as shared (they never join equations).
// It returns the per-value component root (-1 for shared values) and the
// number of components.
func components(g *dfg.Graph) (root []int32, n int) {
	parent := make([]int32, len(g.Values))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	shared := func(id dfg.ValueID) bool {
		k := g.Values[id].Kind
		return k == dfg.OpInput || k == dfg.OpConst
	}
	for i := range g.Values {
		v := &g.Values[i]
		if shared(dfg.ValueID(i)) {
			continue
		}
		for _, a := range v.Args {
			if !shared(a) {
				parent[find(int32(i))] = find(int32(a))
			}
		}
	}
	root = make([]int32, len(g.Values))
	for i := range g.Values {
		if shared(dfg.ValueID(i)) {
			root[i] = -1
			continue
		}
		r := find(int32(i))
		root[i] = r
		if int(r) == i {
			n++
		}
	}
	return root, n
}

// lowerParallel attempts the parallel path; ok=false means the caller
// should lower serially (single component, or a worker failed — the
// serial path then reproduces any error deterministically).
func lowerParallel(g *dfg.Graph, opts Options) (*logic.Net, bool) {
	root, ncomps := components(g)
	if ncomps < 2 {
		return nil, false
	}
	workers := pool.Size(opts.Workers)
	if workers > ncomps {
		workers = ncomps
	}
	// Deal components to workers round-robin in first-appearance order.
	owner := make([]int16, len(g.Values))
	compOwner := make(map[int32]int16, ncomps)
	next := int16(0)
	for i := range g.Values {
		r := root[i]
		if r < 0 {
			owner[i] = -1
			continue
		}
		w, ok := compOwner[r]
		if !ok {
			w = next
			compOwner[r] = w
			next = (next + 1) % int16(workers)
		}
		owner[i] = w
	}

	results := make([]workerOut, workers)
	err := pool.Run(workers, workers, func(w int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("bitslice: worker %d: %v", w, r)
			}
		}()
		return lowerWorker(g, opts, owner, int16(w), &results[w])
	})
	if err != nil {
		return nil, false
	}
	n, merr := mergeWorkers(g, opts, owner, results)
	if merr != nil {
		return nil, false
	}
	return n, true
}

// lowerWorker bit-slices the values owned by worker w on a private
// builder. Shared inputs and constants are materialized privately (their
// ids are remapped at merge time); values of other components are
// skipped.
func lowerWorker(g *dfg.Graph, opts Options, owner []int16, w int16, out *workerOut) error {
	b := logic.AcquireBuilder(logic.BuilderOptions{Fold: opts.Fold, CSE: true})
	defer b.Release()
	words := make([]logic.Word, len(g.Values))
	spans := make([][2]int32, len(g.Values))
	for i := range g.Values {
		switch {
		case owner[i] == -1:
			// Shared input/constant: materialize a private copy.
			if err := synthValue(b, g, words, i); err != nil {
				return err
			}
		case owner[i] == w:
			start := int32(b.GateCount())
			if err := synthValue(b, g, words, i); err != nil {
				return err
			}
			spans[i] = [2]int32{start, int32(b.GateCount())}
		}
	}
	out.net = b.Net()
	out.words = words
	out.spans = spans
	return nil
}

// mergeWorkers replays every worker's spans in global value order into
// one builder, producing the same net the serial path builds.
func mergeWorkers(g *dfg.Graph, opts Options, owner []int16, results []workerOut) (*logic.Net, error) {
	b := logic.AcquireBuilder(logic.BuilderOptions{Fold: opts.Fold, CSE: true})
	defer b.Release()
	total := 0
	for i := range results {
		total += len(results[i].net.Gates)
	}
	b.Grow(total)

	// ptg[w][privateID] is worker w's node in the merged id space.
	ptg := make([][]logic.NodeID, len(results))
	for w := range results {
		m := make([]logic.NodeID, len(results[w].net.Gates))
		for i := range m {
			m[i] = logic.None
		}
		ptg[w] = m
	}
	// mapShared records a shared value's global word into every worker's
	// remap table (each worker holds its own private copy).
	mapShared := func(i int, word logic.Word) {
		for w := range results {
			pw := results[w].words[i]
			for k, pid := range pw {
				ptg[w][pid] = word[k]
			}
		}
	}

	words := make([]logic.Word, len(g.Values))
	for i := range g.Values {
		v := &g.Values[i]
		switch v.Kind {
		case dfg.OpInput:
			words[i] = b.InputWord(v.Name, v.Width)
			mapShared(i, words[i])
		case dfg.OpConst:
			words[i] = constWord(b, v.Imm, v.Width)
			mapShared(i, words[i])
		default:
			w := owner[i]
			r := &results[w]
			remap := ptg[w]
			sp := r.spans[i]
			for k := sp[0]; k < sp[1]; k++ {
				pg := &r.net.Gates[k]
				var gid logic.NodeID
				switch pg.Kind {
				case logic.GConst0:
					gid = b.Const(false)
				case logic.GConst1:
					gid = b.Const(true)
				case logic.GInput:
					return nil, fmt.Errorf("bitslice: input gate inside replay span")
				default:
					var args [3]logic.NodeID
					args[0], args[1], args[2] = logic.None, logic.None, logic.None
					for a := 0; a < pg.Kind.Arity(); a++ {
						m := remap[pg.Args[a]]
						if m == logic.None {
							return nil, fmt.Errorf("bitslice: unmapped arg in replay of value %d", i)
						}
						args[a] = m
					}
					gid = b.Replay(pg.Kind, args)
				}
				remap[k] = gid
			}
			pw := r.words[i]
			word := make(logic.Word, len(pw))
			for k, pid := range pw {
				m := remap[pid]
				if m == logic.None {
					return nil, fmt.Errorf("bitslice: unmapped word bit of value %d", i)
				}
				word[k] = m
			}
			words[i] = word
		}
	}
	return finishNet(b, g, words)
}
