package typecheck

import (
	"strings"
	"testing"

	"chopper/internal/dsl"
)

func check(t *testing.T, src string) (*Checked, error) {
	t.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	ch, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return ch
}

func TestCheckValidProgram(t *testing.T) {
	ch := mustCheck(t, `
node addsub(a: u8, b: u8) returns (s: u8, d: u8)
let
  s = a + b;
  d = a - b;
tel
node main(a: u8, b: u8, pred: u8) returns (c: u8)
vars s: u8, d: u8, f: u1;
let
  (s, d) = addsub(a, b);
  f = a > pred;
  c = f ? s : d;
tel`)
	main := ch.Prog.Lookup("main")
	cond := main.Eqs[1].Rhs
	if ch.TypeOf(cond).Bits != 1 {
		t.Errorf("comparison type = %v, want u1", ch.TypeOf(cond))
	}
	if ch.TypeOf(main.Eqs[2].Rhs).Bits != 8 {
		t.Errorf("ternary type = %v, want u8", ch.TypeOf(main.Eqs[2].Rhs))
	}
}

func TestLiteralAdoption(t *testing.T) {
	ch := mustCheck(t, "node f(a: u16) returns (z: u16) let z = a + 42; tel")
	bin := ch.Prog.Nodes[0].Eqs[0].Rhs.(*dsl.Binary)
	if ch.TypeOf(bin.Y).Bits != 16 {
		t.Errorf("literal adopted %v, want u16", ch.TypeOf(bin.Y))
	}
}

func TestConversions(t *testing.T) {
	mustCheck(t, `
node f(a: u8) returns (z: u16)
vars w: u16;
let
  w = u16(a);
  z = w + 1;
tel`)
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, `
node f(a: u8, b: u8, c: u1) returns (z: u8, p: u8)
vars m: u8;
let
  m = mux(c, min(a, b), max(a, b));
  z = absdiff(m, b);
  p = popcount(a);
tel`)
}

func TestErrors(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string
	}{
		"undeclared var": {
			"node f(a: u8) returns (z: u8) let z = q; tel",
			"undeclared variable",
		},
		"undeclared lhs": {
			"node f(a: u8) returns (z: u8) let z = a; q = a; tel",
			"undeclared variable",
		},
		"double assign": {
			"node f(a: u8) returns (z: u8) let z = a; z = a; tel",
			"assigned more than once",
		},
		"assign to param": {
			"node f(a: u8) returns (z: u8) let a = z; z = a; tel",
			"assignment to parameter",
		},
		"unassigned return": {
			"node f(a: u8) returns (z: u8, w: u8) let z = a; tel",
			"never assigned",
		},
		"unassigned local": {
			"node f(a: u8) returns (z: u8) vars t: u8; let z = a; tel",
			"never assigned",
		},
		"width mismatch": {
			"node f(a: u8, b: u16) returns (z: u8) let z = u8(a + b); tel",
			"widths differ",
		},
		"cond not u1": {
			"node f(a: u8, b: u8) returns (z: u8) let z = a ? a : b; tel",
			"want u1",
		},
		"arm mismatch": {
			"node f(c: u1, a: u8, b: u16) returns (z: u8) let z = u8(c ? a : b); tel",
			"arms differ",
		},
		"bare literal": {
			"node f(a: u8) returns (z: u1) let z = 1 < 2; tel",
			"cannot infer width",
		},
		"undefined call": {
			"node f(a: u8) returns (z: u8) let z = g(a); tel",
			"undefined node",
		},
		"self recursion": {
			"node f(a: u8) returns (z: u8) let z = f(a); tel",
			"calls itself",
		},
		"arity": {
			"node g(a: u8, b: u8) returns (z: u8) let z = a; tel node f(a: u8) returns (z: u8) let z = g(a); tel",
			"takes 2 arguments",
		},
		"arg type": {
			"node g(a: u16) returns (z: u16) let z = a; tel node f(a: u8) returns (z: u8) let z = u8(g(a)); tel",
			"want u16",
		},
		"multi lhs non-call": {
			"node f(a: u8) returns (z: u8, w: u8) let (z, w) = a; tel",
			"requires a node call",
		},
		"multi arity": {
			"node g(a: u8) returns (z: u8) let z = a; tel node f(a: u8) returns (z: u8, w: u8) let (z, w) = g(a); tel",
			"returns 1 values",
		},
		"multi in expr": {
			"node g(a: u8) returns (z: u8, w: u8) let z = a; w = a; tel node f(a: u8) returns (z: u8) let z = g(a); tel",
			"returns 2 values",
		},
		"shadow builtin": {
			"node f(mux: u8) returns (z: u8) let z = mux; tel",
			"shadows a builtin",
		},
		"redeclared": {
			"node f(a: u8, a: u8) returns (z: u8) let z = a; tel",
			"redeclared",
		},
		"literal overflow": {
			"node f(a: u4) returns (z: u4) let z = a + 99; tel",
			"does not fit",
		},
		"mux cond width": {
			"node f(a: u8, b: u8) returns (z: u8) let z = mux(a, a, b); tel",
			"want u1",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := check(t, tc.src)
			if err == nil {
				t.Fatalf("accepted invalid program")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestMutualRecursionRejected(t *testing.T) {
	// f -> g -> f
	_, err := check(t, `
node f(a: u8) returns (z: u8) let z = g(a); tel
node g(a: u8) returns (z: u8) let z = f(a); tel`)
	if err == nil {
		t.Fatal("mutual recursion accepted")
	}
}

func TestVariableShiftsAccepted(t *testing.T) {
	// Computed shift amounts compile to barrel shifters.
	mustCheck(t, "node f(a: u8, b: u4) returns (z: u8) let z = (a << b) | (a >> b); tel")
}

func TestComparisonOfLiterals(t *testing.T) {
	mustCheck(t, "node f(a: u8) returns (z: u1) let z = a > 50; tel")
}

func TestWideTypes(t *testing.T) {
	mustCheck(t, `
node f(a: u512, b: u512) returns (z: u512)
let z = a + b; tel`)
}

func TestMoreErrorPaths(t *testing.T) {
	cases := map[string]string{
		"signed width mismatch": "node f(a: u8, b: u16) returns (z: u1) let z = slt(a, b); tel",
		"div width mismatch":    "node f(a: u8, b: u16) returns (z: u8) let z = div(a, b); tel",
		"conv arity":            "node f(a: u8) returns (z: u16) let z = u16(a, a); tel",
		"builtin arity":         "node f(a: u8) returns (z: u8) let z = min(a); tel",
		"mux arm widths":        "node f(c: u1, a: u8, b: u16) returns (z: u8) let z = mux(c, a, b); tel",
		"assign cmp to u8":      "node f(a: u8, b: u8) returns (z: u8) let z = a < b; tel",
		"bad conversion name":   "node f(a: u8) returns (z: u8) let z = u0(a); tel",
		"neg shift":             "node f(a: u8) returns (z: u8) let z = a << 0x8000000000000000; tel",
	}
	for name, src := range cases {
		if _, err := check(t, src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDivModAccepted(t *testing.T) {
	mustCheck(t, "node f(a: u8, b: u8) returns (q: u8, r: u8) let q = div(a, b); r = mod(a, b); tel")
}

func TestSignedBuiltinsAccepted(t *testing.T) {
	mustCheck(t, "node f(a: u8, b: u8) returns (x: u1, y: u1, z: u1, w: u1) let x = slt(a,b); y = sle(a,b); z = sgt(a,b); w = sge(a,b); tel")
}
