// Package typecheck validates CHOPPER programs: single assignment, declared
// variables, operator width rules, node call signatures, and absence of
// recursion. It annotates every expression with its bit-vector type so the
// dataflow-graph builder can lower without re-deriving widths.
//
// Width rules (deliberately strict — width changes must be explicit):
//
//   - arithmetic/bitwise operands must have equal widths; integer literals
//     adopt the width of the other operand (or their ascription);
//   - comparisons take equal-width operands and yield u1;
//   - shifts take a literal shift amount and keep the left operand's width;
//   - c ? t : f takes a u1 condition and equal-width arms;
//   - uN(x) converts (zero-extends or truncates) to N bits;
//   - builtins: mux(c,t,f), min(x,y), max(x,y), absdiff(x,y),
//     popcount(x) (result width = operand width).
package typecheck

import (
	"fmt"
	"math/big"
	"strings"

	"chopper/internal/dsl"
)

// Checked is a type-annotated program.
type Checked struct {
	Prog  *dsl.Program
	Types map[dsl.Expr]dsl.Type
	// VarTypes maps "node.var" to the declared type.
	VarTypes map[string]dsl.Type
}

// TypeOf returns the annotated type of e (zero Type if unknown).
func (c *Checked) TypeOf(e dsl.Expr) dsl.Type { return c.Types[e] }

type checker struct {
	prog    *dsl.Program
	types   map[dsl.Expr]dsl.Type
	vars    map[string]dsl.Type
	inStack map[string]bool // recursion detection
	done    map[string]bool
}

// Check validates prog and returns the annotated result.
func Check(prog *dsl.Program) (*Checked, error) {
	c := &checker{
		prog:    prog,
		types:   make(map[dsl.Expr]dsl.Type),
		vars:    make(map[string]dsl.Type),
		inStack: make(map[string]bool),
		done:    make(map[string]bool),
	}
	for _, n := range prog.Nodes {
		if err := c.checkNode(n); err != nil {
			return nil, err
		}
	}
	return &Checked{Prog: prog, Types: c.types, VarTypes: c.vars}, nil
}

// conversionWidth reports whether name is a uN conversion pseudo-function.
func conversionWidth(name string) (int, bool) {
	if !strings.HasPrefix(name, "u") || len(name) < 2 {
		return 0, false
	}
	bits := 0
	for _, ch := range name[1:] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		bits = bits*10 + int(ch-'0')
	}
	if bits < 1 || bits > dsl.MaxBits {
		return 0, false
	}
	return bits, true
}

// builtinArity maps builtin names to their argument counts.
var builtinArity = map[string]int{
	"mux": 3, "min": 2, "max": 2, "absdiff": 2, "popcount": 1,
	// Signed comparisons over two's-complement operands.
	"slt": 2, "sle": 2, "sgt": 2, "sge": 2,
	// Unsigned division and remainder.
	"div": 2, "mod": 2,
	// Arithmetic right shift (sign-filling).
	"asr": 2,
}

func (c *checker) checkNode(n *dsl.Node) error {
	if c.done[n.Name] {
		return nil
	}
	if c.inStack[n.Name] {
		return fmt.Errorf("%s: node %q is recursive (recursion is not allowed in a synchronous dataflow program)", n.Pos, n.Name)
	}
	c.inStack[n.Name] = true
	defer func() { c.inStack[n.Name] = false }()

	env := make(map[string]dsl.Type)
	declare := func(p dsl.Param, kind string) error {
		if !p.Type.Valid() {
			return fmt.Errorf("%s: %s %q has invalid type %s", p.Pos, kind, p.Name, p.Type)
		}
		if _, dup := env[p.Name]; dup {
			return fmt.Errorf("%s: %s %q redeclared", p.Pos, kind, p.Name)
		}
		if _, isConv := conversionWidth(p.Name); isConv || builtinArity[p.Name] != 0 {
			return fmt.Errorf("%s: %q shadows a builtin", p.Pos, p.Name)
		}
		env[p.Name] = p.Type
		c.vars[n.Name+"."+p.Name] = p.Type
		return nil
	}
	params := make(map[string]bool)
	for _, p := range n.Params {
		if err := declare(p, "parameter"); err != nil {
			return err
		}
		params[p.Name] = true
	}
	if err := checkRangeAttrs(n); err != nil {
		return err
	}
	for _, p := range n.Returns {
		if err := declare(p, "return"); err != nil {
			return err
		}
	}
	for _, p := range n.Locals {
		if err := declare(p, "local"); err != nil {
			return err
		}
	}

	assigned := make(map[string]bool)
	for _, eq := range n.Eqs {
		for _, lhs := range eq.Lhs {
			if _, ok := env[lhs]; !ok {
				return fmt.Errorf("%s: assignment to undeclared variable %q", eq.Pos, lhs)
			}
			if params[lhs] {
				return fmt.Errorf("%s: assignment to parameter %q", eq.Pos, lhs)
			}
			if assigned[lhs] {
				return fmt.Errorf("%s: variable %q assigned more than once", eq.Pos, lhs)
			}
			assigned[lhs] = true
		}
		if err := c.checkEquation(n, env, eq); err != nil {
			return err
		}
	}
	for _, r := range n.Returns {
		if !assigned[r.Name] {
			return fmt.Errorf("%s: return variable %q of node %q is never assigned", r.Pos, r.Name, n.Name)
		}
	}
	for _, l := range n.Locals {
		if !assigned[l.Name] {
			return fmt.Errorf("%s: local variable %q of node %q is never assigned", l.Pos, l.Name, n.Name)
		}
	}
	c.done[n.Name] = true
	return nil
}

func (c *checker) checkEquation(n *dsl.Node, env map[string]dsl.Type, eq *dsl.Equation) error {
	// A multi-variable LHS requires a node call returning that many values.
	if len(eq.Lhs) > 1 {
		call, ok := eq.Rhs.(*dsl.Call)
		if !ok {
			return fmt.Errorf("%s: multi-variable assignment requires a node call on the right-hand side", eq.Pos)
		}
		callee := c.prog.Lookup(call.Name)
		if callee == nil {
			return fmt.Errorf("%s: call to undefined node %q", call.Pos, call.Name)
		}
		if err := c.checkNode(callee); err != nil {
			return err
		}
		if len(callee.Returns) != len(eq.Lhs) {
			return fmt.Errorf("%s: node %q returns %d values, assigned to %d variables", eq.Pos, call.Name, len(callee.Returns), len(eq.Lhs))
		}
		if err := c.checkCallArgs(n, env, call, callee); err != nil {
			return err
		}
		for i, lhs := range eq.Lhs {
			want := env[lhs]
			got := callee.Returns[i].Type
			if want != got {
				return fmt.Errorf("%s: %q has type %s but %q returns %s in position %d", eq.Pos, lhs, want, call.Name, got, i)
			}
		}
		return nil
	}

	want := env[eq.Lhs[0]]
	got, err := c.checkExpr(n, env, eq.Rhs, want.Bits)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("%s: cannot assign %s expression to %q of type %s", eq.Pos, got, eq.Lhs[0], want)
	}
	return nil
}

func (c *checker) checkCallArgs(n *dsl.Node, env map[string]dsl.Type, call *dsl.Call, callee *dsl.Node) error {
	if len(call.Args) != len(callee.Params) {
		return fmt.Errorf("%s: node %q takes %d arguments, got %d", call.Pos, call.Name, len(callee.Params), len(call.Args))
	}
	for i, arg := range call.Args {
		want := callee.Params[i].Type
		got, err := c.checkExpr(n, env, arg, want.Bits)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("%s: argument %d of %q has type %s, want %s", arg.ExprPos(), i, call.Name, got, want)
		}
	}
	return nil
}

// checkExpr types e. expected (>0) is a width hint used only to give
// unascribed integer literals a width.
func (c *checker) checkExpr(n *dsl.Node, env map[string]dsl.Type, e dsl.Expr, expected int) (dsl.Type, error) {
	t, err := c.typeExpr(n, env, e, expected)
	if err != nil {
		return dsl.Type{}, err
	}
	c.types[e] = t
	return t, nil
}

func (c *checker) typeExpr(n *dsl.Node, env map[string]dsl.Type, e dsl.Expr, expected int) (dsl.Type, error) {
	switch e := e.(type) {
	case *dsl.Ident:
		t, ok := env[e.Name]
		if !ok {
			return dsl.Type{}, fmt.Errorf("%s: undeclared variable %q", e.Pos, e.Name)
		}
		return t, nil

	case *dsl.IntLit:
		w := e.Width
		if w == 0 {
			w = expected
		}
		if w == 0 {
			return dsl.Type{}, fmt.Errorf("%s: cannot infer width of literal %s; ascribe one (e.g. %s:u8)", e.Pos, e.Value, e.Value)
		}
		if e.Value.Sign() < 0 {
			return dsl.Type{}, fmt.Errorf("%s: negative literal %s (use unary minus on an ascribed literal)", e.Pos, e.Value)
		}
		if e.Value.BitLen() > w {
			return dsl.Type{}, fmt.Errorf("%s: literal %s does not fit in u%d", e.Pos, e.Value, w)
		}
		return dsl.Type{Bits: w}, nil

	case *dsl.Unary:
		t, err := c.checkExpr(n, env, e.X, expected)
		if err != nil {
			return dsl.Type{}, err
		}
		return t, nil

	case *dsl.Binary:
		if e.Op.IsShift() {
			lt, err := c.checkExpr(n, env, e.X, expected)
			if err != nil {
				return dsl.Type{}, err
			}
			if lit, ok := e.Y.(*dsl.IntLit); ok {
				if !lit.Value.IsInt64() || lit.Value.Int64() < 0 {
					return dsl.Type{}, fmt.Errorf("%s: shift amount %s out of range", lit.Pos, lit.Value)
				}
				c.types[e.Y] = dsl.Type{Bits: 32}
				return lt, nil
			}
			// A computed amount (barrel shift); any width is allowed,
			// amounts >= the operand width shift everything out.
			if _, err := c.checkExpr(n, env, e.Y, 0); err != nil {
				return dsl.Type{}, err
			}
			return lt, nil
		}
		// Literals adopt the other operand's width.
		xLit, xIsLit := e.X.(*dsl.IntLit)
		yLit, yIsLit := e.Y.(*dsl.IntLit)
		hintX, hintY := expected, expected
		if e.Op.IsComparison() {
			hintX, hintY = 0, 0
		}
		var xt, yt dsl.Type
		var err error
		switch {
		case xIsLit && !yIsLit:
			if yt, err = c.checkExpr(n, env, e.Y, hintY); err != nil {
				return dsl.Type{}, err
			}
			if xt, err = c.checkExpr(n, env, e.X, yt.Bits); err != nil {
				return dsl.Type{}, err
			}
		case yIsLit && !xIsLit:
			if xt, err = c.checkExpr(n, env, e.X, hintX); err != nil {
				return dsl.Type{}, err
			}
			if yt, err = c.checkExpr(n, env, e.Y, xt.Bits); err != nil {
				return dsl.Type{}, err
			}
		case xIsLit && yIsLit:
			if xLit.Width == 0 && yLit.Width == 0 && hintX == 0 {
				return dsl.Type{}, fmt.Errorf("%s: cannot infer width of literal-only expression; ascribe one operand", e.Pos)
			}
			if xt, err = c.checkExpr(n, env, e.X, firstNonZero(yLit.Width, hintX)); err != nil {
				return dsl.Type{}, err
			}
			if yt, err = c.checkExpr(n, env, e.Y, firstNonZero(xLit.Width, xt.Bits)); err != nil {
				return dsl.Type{}, err
			}
		default:
			if xt, err = c.checkExpr(n, env, e.X, hintX); err != nil {
				return dsl.Type{}, err
			}
			if yt, err = c.checkExpr(n, env, e.Y, xt.Bits); err != nil {
				return dsl.Type{}, err
			}
		}
		if xt != yt {
			return dsl.Type{}, fmt.Errorf("%s: operand widths differ: %s %s %s (use uN(...) to convert)", e.Pos, xt, e.Op, yt)
		}
		if e.Op.IsComparison() {
			return dsl.Type{Bits: 1}, nil
		}
		return xt, nil

	case *dsl.Cond:
		ct, err := c.checkExpr(n, env, e.C, 1)
		if err != nil {
			return dsl.Type{}, err
		}
		if ct.Bits != 1 {
			return dsl.Type{}, fmt.Errorf("%s: condition has type %s, want u1", e.C.ExprPos(), ct)
		}
		tt, err := c.checkExpr(n, env, e.T, expected)
		if err != nil {
			return dsl.Type{}, err
		}
		ft, err := c.checkExpr(n, env, e.F, tt.Bits)
		if err != nil {
			return dsl.Type{}, err
		}
		if tt != ft {
			return dsl.Type{}, fmt.Errorf("%s: conditional arms differ: %s vs %s", e.Pos, tt, ft)
		}
		return tt, nil

	case *dsl.Call:
		// uN(x) conversion.
		if w, ok := conversionWidth(e.Name); ok {
			if len(e.Args) != 1 {
				return dsl.Type{}, fmt.Errorf("%s: conversion %s takes one argument", e.Pos, e.Name)
			}
			if _, err := c.checkExpr(n, env, e.Args[0], 0); err != nil {
				return dsl.Type{}, err
			}
			return dsl.Type{Bits: w}, nil
		}
		// Builtins.
		if ar, ok := builtinArity[e.Name]; ok {
			if len(e.Args) != ar {
				return dsl.Type{}, fmt.Errorf("%s: builtin %q takes %d arguments, got %d", e.Pos, e.Name, ar, len(e.Args))
			}
			switch e.Name {
			case "mux":
				ct, err := c.checkExpr(n, env, e.Args[0], 1)
				if err != nil {
					return dsl.Type{}, err
				}
				if ct.Bits != 1 {
					return dsl.Type{}, fmt.Errorf("%s: mux condition has type %s, want u1", e.Args[0].ExprPos(), ct)
				}
				tt, err := c.checkExpr(n, env, e.Args[1], expected)
				if err != nil {
					return dsl.Type{}, err
				}
				ft, err := c.checkExpr(n, env, e.Args[2], tt.Bits)
				if err != nil {
					return dsl.Type{}, err
				}
				if tt != ft {
					return dsl.Type{}, fmt.Errorf("%s: mux arms differ: %s vs %s", e.Pos, tt, ft)
				}
				return tt, nil
			case "slt", "sle", "sgt", "sge":
				xt, err := c.checkExpr(n, env, e.Args[0], 0)
				if err != nil {
					return dsl.Type{}, err
				}
				yt, err := c.checkExpr(n, env, e.Args[1], xt.Bits)
				if err != nil {
					return dsl.Type{}, err
				}
				if xt != yt {
					return dsl.Type{}, fmt.Errorf("%s: %s operand widths differ: %s vs %s", e.Pos, e.Name, xt, yt)
				}
				return dsl.Type{Bits: 1}, nil
			case "asr":
				xt, err := c.checkExpr(n, env, e.Args[0], expected)
				if err != nil {
					return dsl.Type{}, err
				}
				if lit, ok := e.Args[1].(*dsl.IntLit); ok {
					if !lit.Value.IsInt64() || lit.Value.Int64() < 0 {
						return dsl.Type{}, fmt.Errorf("%s: shift amount %s out of range", lit.Pos, lit.Value)
					}
					c.types[e.Args[1]] = dsl.Type{Bits: 32}
				} else if _, err := c.checkExpr(n, env, e.Args[1], 0); err != nil {
					return dsl.Type{}, err
				}
				return xt, nil
			case "min", "max", "absdiff", "div", "mod":
				xt, err := c.checkExpr(n, env, e.Args[0], expected)
				if err != nil {
					return dsl.Type{}, err
				}
				yt, err := c.checkExpr(n, env, e.Args[1], xt.Bits)
				if err != nil {
					return dsl.Type{}, err
				}
				if xt != yt {
					return dsl.Type{}, fmt.Errorf("%s: %s operand widths differ: %s vs %s", e.Pos, e.Name, xt, yt)
				}
				return xt, nil
			case "popcount":
				xt, err := c.checkExpr(n, env, e.Args[0], 0)
				if err != nil {
					return dsl.Type{}, err
				}
				return xt, nil
			}
		}
		// Node call (single return in expression context).
		callee := c.prog.Lookup(e.Name)
		if callee == nil {
			return dsl.Type{}, fmt.Errorf("%s: call to undefined node or builtin %q", e.Pos, e.Name)
		}
		if callee.Name == n.Name {
			return dsl.Type{}, fmt.Errorf("%s: node %q calls itself", e.Pos, n.Name)
		}
		if err := c.checkNode(callee); err != nil {
			return dsl.Type{}, err
		}
		if len(callee.Returns) != 1 {
			return dsl.Type{}, fmt.Errorf("%s: node %q returns %d values; use (a, b) = %s(...) form", e.Pos, e.Name, len(callee.Returns), e.Name)
		}
		if err := c.checkCallArgs(n, env, e, callee); err != nil {
			return dsl.Type{}, err
		}
		return callee.Returns[0].Type, nil
	}
	return dsl.Type{}, fmt.Errorf("%s: unsupported expression", e.ExprPos())
}

func firstNonZero(a, b int) int {
	if a != 0 {
		return a
	}
	return b
}

// Range is a validated @range(name, lo, hi) annotation: an inclusive,
// non-negative bound on a parameter's runtime values, trusted by the
// annotated narrowing mode.
type Range struct {
	Lo, Hi *big.Int
}

// rangeParams resolves one @range attribute against n's parameters and
// parses its bounds. Array parameters are scalarized before typechecking,
// so @range(v, lo, hi) matches the element parameters v__0, v__1, ... as
// well as a scalar v.
func rangeParams(n *dsl.Node, a *dsl.Attr) ([]*dsl.Param, Range, error) {
	if len(a.Args) != 3 {
		return nil, Range{}, fmt.Errorf("%s: @range takes (name, lo, hi), got %d arguments", a.Pos, len(a.Args))
	}
	name := a.Args[0]
	var ps []*dsl.Param
	for i := range n.Params {
		if p := &n.Params[i]; p.Name == name || strings.HasPrefix(p.Name, name+"__") {
			ps = append(ps, p)
		}
	}
	if len(ps) == 0 {
		return nil, Range{}, fmt.Errorf("%s: @range names %q, which is not a parameter of node %q", a.Pos, name, n.Name)
	}
	lo, okLo := new(big.Int).SetString(a.Args[1], 0)
	hi, okHi := new(big.Int).SetString(a.Args[2], 0)
	if !okLo || !okHi || lo.Sign() < 0 {
		return nil, Range{}, fmt.Errorf("%s: @range(%s) bounds must be non-negative integers", a.Pos, name)
	}
	if lo.Cmp(hi) > 0 {
		return nil, Range{}, fmt.Errorf("%s: @range(%s) has lo %s > hi %s", a.Pos, name, lo, hi)
	}
	for _, p := range ps {
		if hi.BitLen() > p.Type.Bits {
			return nil, Range{}, fmt.Errorf("%s: @range(%s) hi %s does not fit u%d", a.Pos, name, hi, p.Type.Bits)
		}
	}
	return ps, Range{Lo: lo, Hi: hi}, nil
}

// checkRangeAttrs validates every @range annotation on n: the name must
// be a parameter (or array-parameter base), the bounds non-negative with
// lo <= hi and hi inside the parameter's width, and each parameter
// annotated at most once.
func checkRangeAttrs(n *dsl.Node) error {
	seen := make(map[string]bool)
	for i := range n.Attrs {
		a := &n.Attrs[i]
		if a.Name != "range" {
			continue
		}
		if _, _, err := rangeParams(n, a); err != nil {
			return err
		}
		if seen[a.Args[0]] {
			return fmt.Errorf("%s: duplicate @range for %q", a.Pos, a.Args[0])
		}
		seen[a.Args[0]] = true
	}
	return nil
}

// InputRanges extracts n's @range annotations keyed by (scalarized)
// parameter name — the dataflow graph's input names. Call it on a node of
// a program Check has accepted; malformed annotations are skipped rather
// than trusted.
func InputRanges(n *dsl.Node) map[string]Range {
	var out map[string]Range
	for i := range n.Attrs {
		a := &n.Attrs[i]
		if a.Name != "range" {
			continue
		}
		ps, r, err := rangeParams(n, a)
		if err != nil {
			continue
		}
		if out == nil {
			out = make(map[string]Range)
		}
		for _, p := range ps {
			out[p.Name] = r
		}
	}
	return out
}
