// Package perfbench is the tracked performance-benchmark suite: a
// reproducible measurement of the end-to-end kernel run path (compile once,
// RunRows per iteration) over one representative workload per paper domain,
// on every PUD architecture. Results are serialized to BENCH_chopper.json
// at the repository root so simulator-performance changes land with a
// before/after record; docs/PERFORMANCE.md describes how to refresh it.
//
// The methodology is fixed so numbers stay comparable across commits:
// 128 lanes, inputs drawn from math/rand with seed 1 and pre-transposed to
// vertical layout outside the timed region, default optimization level,
// default geometry. The committed baseline section was measured with
// exactly this loop at the last commit before the zero-allocation
// simulator rewrite.
package perfbench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"chopper"
	"chopper/internal/isa"
	"chopper/internal/transpose"
	"chopper/internal/workloads"
)

// Schema identifies the BENCH_chopper.json format.
const Schema = "chopper-bench/v1"

// Lanes is the SIMD width every suite measurement runs at.
const Lanes = 128

// inputSeed seeds the input generator; fixed for reproducibility.
const inputSeed = 1

// Workloads is the measured subset: the smallest Table II configuration of
// each paper domain (compile time stays in seconds while the run path —
// the thing this suite tracks — is exercised for thousands of micro-ops).
var Workloads = []string{"DenseNet-16", "WTC-64", "DiffGen-64", "SW-64"}

// Result is one (workload, arch) measurement.
type Result struct {
	Workload string `json:"workload"`
	Arch     string `json:"arch"`
	Lanes    int    `json:"lanes"`
	// MicroOps is the compiled program length (0 in historical baseline
	// entries, which recorded only the Go benchmark metrics).
	MicroOps int `json:"micro_ops,omitempty"`
	// NsPerOp is wall-clock nanoseconds per RunRows call.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per RunRows call.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// UopsPerSec is simulated micro-ops retired per wall-clock second.
	UopsPerSec float64 `json:"uops_per_sec,omitempty"`
	// CommandsPerSec is DRAM commands issued to the timing engine per
	// wall-clock second (equal to UopsPerSec for single-subarray kernels,
	// where every micro-op becomes exactly one command).
	CommandsPerSec float64 `json:"commands_per_sec,omitempty"`
}

// Report is the persisted benchmark record.
type Report struct {
	Schema string `json:"schema"`
	// BaselineNote says where the baseline numbers came from.
	BaselineNote string `json:"baseline_note,omitempty"`
	// Baseline holds the pre-optimization reference measurements.
	Baseline []Result `json:"baseline,omitempty"`
	// CurrentNote says how/when the current numbers were produced.
	CurrentNote string `json:"current_note,omitempty"`
	// Current holds the latest measurements.
	Current []Result `json:"current"`
	// Compile is the compile-throughput record (see compile.go); nil in
	// reports written before the compiler fast-path work.
	Compile *CompileSection `json:"compile,omitempty"`
	// Tiled is the tiled-execution record (see tiled.go); nil in reports
	// written before the channel-sharded RunTiled work.
	Tiled *TiledSection `json:"tiled,omitempty"`
	// Serve is the chopperd service-throughput record (see serve.go);
	// nil in reports written before the service work.
	Serve *ServeSection `json:"serve,omitempty"`
	// ServeBatch is the request-coalescing record (see serve.go); nil in
	// reports written before the batching work.
	ServeBatch *ServeBatchSection `json:"serve_batch,omitempty"`
	// Narrow is the precision-adaptive compilation record (see narrow.go);
	// nil in reports written before the narrowing work.
	Narrow *NarrowSection `json:"narrow,omitempty"`
}

// arches is the measured architecture set, in paper order.
var arches = []isa.Arch{isa.Ambit, isa.ELP2IM, isa.SIMDRAM}

// Inputs builds the suite's deterministic pre-transposed operand rows for
// a compiled kernel: rand(seed 1), each input filled lane-major with
// width-masked values, transposed to vertical layout once.
func Inputs(k *chopper.Kernel, lanes int) map[string][][]uint64 {
	rng := rand.New(rand.NewSource(inputSeed))
	rows := make(map[string][][]uint64, len(k.Inputs))
	for _, in := range k.Inputs {
		vals := make([][]uint64, lanes)
		for l := range vals {
			limbs := (in.Width + 63) / 64
			v := make([]uint64, limbs)
			for i := range v {
				v[i] = rng.Uint64()
			}
			if r := in.Width % 64; r != 0 {
				v[limbs-1] &= (uint64(1) << uint(r)) - 1
			}
			vals[l] = v
		}
		rows[in.Name] = transpose.ToVerticalWide(vals, in.Width, lanes)
	}
	return rows
}

// measureOpts tunes how long Measure samples.
type measureOpts struct {
	minIters int
	minTime  time.Duration
}

func sampling(quick bool) measureOpts {
	if quick {
		return measureOpts{minIters: 1}
	}
	return measureOpts{minIters: 5, minTime: 300 * time.Millisecond}
}

// Measure benchmarks one (workload, arch) pair. quick runs a single timed
// iteration (CI smoke); otherwise the run loop repeats until both the
// iteration floor and the time floor are met.
func Measure(workload string, arch isa.Arch, quick bool) (Result, error) {
	spec, ok := workloads.Get(workload)
	if !ok {
		return Result{}, fmt.Errorf("perfbench: unknown workload %q", workload)
	}
	k, err := chopper.Compile(spec.Src, chopper.Options{Target: arch})
	if err != nil {
		return Result{}, fmt.Errorf("perfbench: compile %s/%s: %w", workload, arch, err)
	}
	rows := Inputs(k, Lanes)

	// Warm run: first-touch arena growth, pool population, decode cache.
	res, err := k.RunRows(rows, Lanes)
	if err != nil {
		return Result{}, fmt.Errorf("perfbench: run %s/%s: %w", workload, arch, err)
	}
	commandsPerRun := float64(res.Stats.Ops)

	opts := sampling(quick)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for {
		if _, err := k.RunRows(rows, Lanes); err != nil {
			return Result{}, err
		}
		iters++
		if iters >= opts.minIters && time.Since(start) >= opts.minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	uops := len(k.Prog().Ops)
	r := Result{
		Workload:    workload,
		Arch:        arch.String(),
		Lanes:       Lanes,
		MicroOps:    uops,
		NsPerOp:     nsPerOp,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
	}
	if nsPerOp > 0 {
		r.UopsPerSec = float64(uops) * 1e9 / nsPerOp
		r.CommandsPerSec = commandsPerRun * 1e9 / nsPerOp
	}
	return r, nil
}

// RunSuite measures every (workload, arch) pair of the suite.
func RunSuite(quick bool) ([]Result, error) {
	var out []Result
	for _, wl := range Workloads {
		for _, arch := range arches {
			r, err := Measure(wl, arch, quick)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// NewReport wraps current measurements with the recorded baseline.
func NewReport(current []Result, note string) *Report {
	return &Report{
		Schema:       Schema,
		BaselineNote: baselineNote,
		Baseline:     BaselineResults(),
		CurrentNote:  note,
		Current:      current,
	}
}

// Validate checks a report's structure: schema tag, non-empty current
// section, and per-entry sanity (identity fields set, positive timings,
// non-negative allocation counts).
func Validate(r *Report) error {
	if r == nil {
		return fmt.Errorf("perfbench: nil report")
	}
	if r.Schema != Schema {
		return fmt.Errorf("perfbench: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Current) == 0 {
		return fmt.Errorf("perfbench: empty current section")
	}
	check := func(section string, rs []Result, needUops bool) error {
		for i, e := range rs {
			switch {
			case e.Workload == "" || e.Arch == "":
				return fmt.Errorf("perfbench: %s[%d]: missing workload/arch", section, i)
			case e.Lanes <= 0:
				return fmt.Errorf("perfbench: %s[%d] %s/%s: lanes %d", section, i, e.Workload, e.Arch, e.Lanes)
			case e.NsPerOp <= 0:
				return fmt.Errorf("perfbench: %s[%d] %s/%s: ns_per_op %v", section, i, e.Workload, e.Arch, e.NsPerOp)
			case e.AllocsPerOp < 0 || e.BytesPerOp < 0:
				return fmt.Errorf("perfbench: %s[%d] %s/%s: negative allocation metric", section, i, e.Workload, e.Arch)
			case needUops && (e.MicroOps <= 0 || e.UopsPerSec <= 0 || e.CommandsPerSec <= 0):
				return fmt.Errorf("perfbench: %s[%d] %s/%s: missing throughput metrics", section, i, e.Workload, e.Arch)
			}
		}
		return nil
	}
	if err := check("baseline", r.Baseline, false); err != nil {
		return err
	}
	if err := check("current", r.Current, true); err != nil {
		return err
	}
	if r.Compile != nil {
		if err := validateCompile(r.Compile); err != nil {
			return err
		}
	}
	if r.Tiled != nil {
		if err := validateTiled(r.Tiled); err != nil {
			return err
		}
	}
	if r.Serve != nil {
		if err := validateServe(r.Serve); err != nil {
			return err
		}
	}
	if r.ServeBatch != nil {
		if err := validateServeBatch(r.ServeBatch); err != nil {
			return err
		}
	}
	if r.Narrow != nil {
		return validateNarrow(r.Narrow)
	}
	return nil
}

// Speedup returns baseline-ns / current-ns for one (workload, arch) pair,
// or 0 when either side is missing.
func (r *Report) Speedup(workload, arch string) float64 {
	find := func(rs []Result) float64 {
		for _, e := range rs {
			if e.Workload == workload && e.Arch == arch {
				return e.NsPerOp
			}
		}
		return 0
	}
	base, cur := find(r.Baseline), find(r.Current)
	if base <= 0 || cur <= 0 {
		return 0
	}
	return base / cur
}

// Load reads and validates a report file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	return &r, nil
}

// WriteFile serializes the report (indented, trailing newline) to path.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
