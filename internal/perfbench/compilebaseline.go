package perfbench

// The pre-change compile-throughput reference numbers, measured at commit
// c7b7295 (the last commit before the dense-index middle-end rewrite) with
// the exact MeasureCompile loop methodology. They are data, not
// measurements to re-run: refreshing the compile section preserves this
// table verbatim, so every future report keeps the original before/after
// comparison.

const compileBaselineNote = "map-heavy middle-end at commit c7b7295; " +
	"MeasureCompile loop, linux/amd64"

// CompileBaselineResults returns a fresh copy of the recorded
// compile-throughput baseline table.
func CompileBaselineResults() []CompileResult {
	src := []CompileResult{
		{Workload: "DenseNet-16", Arch: "Ambit", Opt: "bitslice", Gates: 11264, MicroOps: 49757, NsPerOp: 11545075, AllocsPerOp: 26532, BytesPerOp: 20545268, GatesPerSec: 975654},
		{Workload: "DenseNet-16", Arch: "Ambit", Opt: "schedule", Gates: 11264, MicroOps: 49757, NsPerOp: 14525162, AllocsPerOp: 101002, BytesPerOp: 22408373, GatesPerSec: 775482},
		{Workload: "DenseNet-16", Arch: "Ambit", Opt: "reuse", Gates: 4933, MicroOps: 21251, NsPerOp: 7588639, AllocsPerOp: 49793, BytesPerOp: 10843342, GatesPerSec: 650051},
		{Workload: "DenseNet-16", Arch: "Ambit", Opt: "rename", Gates: 4933, MicroOps: 18771, NsPerOp: 7882615, AllocsPerOp: 49796, BytesPerOp: 9131472, GatesPerSec: 625808},
		{Workload: "DenseNet-16", Arch: "ELP2IM", Opt: "bitslice", Gates: 11264, MicroOps: 49757, NsPerOp: 12051464, AllocsPerOp: 26533, BytesPerOp: 20545587, GatesPerSec: 934658},
		{Workload: "DenseNet-16", Arch: "ELP2IM", Opt: "schedule", Gates: 11264, MicroOps: 49757, NsPerOp: 14587555, AllocsPerOp: 101000, BytesPerOp: 22393813, GatesPerSec: 772165},
		{Workload: "DenseNet-16", Arch: "ELP2IM", Opt: "reuse", Gates: 4933, MicroOps: 21251, NsPerOp: 7489817, AllocsPerOp: 49793, BytesPerOp: 10843348, GatesPerSec: 658628},
		{Workload: "DenseNet-16", Arch: "ELP2IM", Opt: "rename", Gates: 4933, MicroOps: 18771, NsPerOp: 7287717, AllocsPerOp: 49796, BytesPerOp: 9131459, GatesPerSec: 676892},
		{Workload: "DenseNet-16", Arch: "SIMDRAM", Opt: "bitslice", Gates: 9718, MicroOps: 42027, NsPerOp: 10128862, AllocsPerOp: 24311, BytesPerOp: 16966375, GatesPerSec: 959436},
		{Workload: "DenseNet-16", Arch: "SIMDRAM", Opt: "schedule", Gates: 9718, MicroOps: 42027, NsPerOp: 12964984, AllocsPerOp: 89934, BytesPerOp: 18617449, GatesPerSec: 749557},
		{Workload: "DenseNet-16", Arch: "SIMDRAM", Opt: "reuse", Gates: 4625, MicroOps: 19711, NsPerOp: 7506258, AllocsPerOp: 47609, BytesPerOp: 9082911, GatesPerSec: 616153},
		{Workload: "DenseNet-16", Arch: "SIMDRAM", Opt: "rename", Gates: 4625, MicroOps: 17739, NsPerOp: 6999211, AllocsPerOp: 47609, BytesPerOp: 9082887, GatesPerSec: 660789},
		{Workload: "WTC-64", Arch: "Ambit", Opt: "bitslice", Gates: 29710, MicroOps: 132508, NsPerOp: 38463241, AllocsPerOp: 74316, BytesPerOp: 67663376, GatesPerSec: 772426},
		{Workload: "WTC-64", Arch: "Ambit", Opt: "schedule", Gates: 29710, MicroOps: 132508, NsPerOp: 51563687, AllocsPerOp: 270110, BytesPerOp: 72600320, GatesPerSec: 576181},
		{Workload: "WTC-64", Arch: "Ambit", Opt: "reuse", Gates: 11552, MicroOps: 51200, NsPerOp: 22190986, AllocsPerOp: 122251, BytesPerOp: 25465830, GatesPerSec: 520572},
		{Workload: "WTC-64", Arch: "Ambit", Opt: "rename", Gates: 11552, MicroOps: 40352, NsPerOp: 21051308, AllocsPerOp: 122243, BytesPerOp: 22038262, GatesPerSec: 548755},
		{Workload: "WTC-64", Arch: "ELP2IM", Opt: "bitslice", Gates: 29710, MicroOps: 132508, NsPerOp: 42816079, AllocsPerOp: 74321, BytesPerOp: 67723306, GatesPerSec: 693898},
		{Workload: "WTC-64", Arch: "ELP2IM", Opt: "schedule", Gates: 29710, MicroOps: 132508, NsPerOp: 52276331, AllocsPerOp: 270109, BytesPerOp: 72607511, GatesPerSec: 568326},
		{Workload: "WTC-64", Arch: "ELP2IM", Opt: "reuse", Gates: 11552, MicroOps: 51200, NsPerOp: 24527175, AllocsPerOp: 122252, BytesPerOp: 25467505, GatesPerSec: 470988},
		{Workload: "WTC-64", Arch: "ELP2IM", Opt: "rename", Gates: 11552, MicroOps: 40352, NsPerOp: 21844912, AllocsPerOp: 122240, BytesPerOp: 22036010, GatesPerSec: 528819},
		{Workload: "WTC-64", Arch: "SIMDRAM", Opt: "bitslice", Gates: 22821, MicroOps: 98063, NsPerOp: 29733614, AllocsPerOp: 63126, BytesPerOp: 44770104, GatesPerSec: 767515},
		{Workload: "WTC-64", Arch: "SIMDRAM", Opt: "schedule", Gates: 22821, MicroOps: 98063, NsPerOp: 38156620, AllocsPerOp: 217430, BytesPerOp: 48647080, GatesPerSec: 598088},
		{Workload: "WTC-64", Arch: "SIMDRAM", Opt: "reuse", Gates: 8288, MicroOps: 34880, NsPerOp: 18203742, AllocsPerOp: 97088, BytesPerOp: 20379178, GatesPerSec: 455291},
		{Workload: "WTC-64", Arch: "SIMDRAM", Opt: "rename", Gates: 8288, MicroOps: 27520, NsPerOp: 17638883, AllocsPerOp: 97081, BytesPerOp: 17657560, GatesPerSec: 469871},
		{Workload: "DiffGen-64", Arch: "Ambit", Opt: "bitslice", Gates: 1924, MicroOps: 8710, NsPerOp: 2872808, AllocsPerOp: 8622, BytesPerOp: 3873333, GatesPerSec: 669728},
		{Workload: "DiffGen-64", Arch: "Ambit", Opt: "schedule", Gates: 1924, MicroOps: 8710, NsPerOp: 3451944, AllocsPerOp: 20317, BytesPerOp: 4188698, GatesPerSec: 557367},
		{Workload: "DiffGen-64", Arch: "Ambit", Opt: "reuse", Gates: 576, MicroOps: 1984, NsPerOp: 1528714, AllocsPerOp: 9003, BytesPerOp: 1219501, GatesPerSec: 376787},
		{Workload: "DiffGen-64", Arch: "Ambit", Opt: "rename", Gates: 576, MicroOps: 1408, NsPerOp: 1486055, AllocsPerOp: 8980, BytesPerOp: 1074424, GatesPerSec: 387603},
		{Workload: "DiffGen-64", Arch: "ELP2IM", Opt: "bitslice", Gates: 1924, MicroOps: 8710, NsPerOp: 2959205, AllocsPerOp: 8622, BytesPerOp: 3873330, GatesPerSec: 650175},
		{Workload: "DiffGen-64", Arch: "ELP2IM", Opt: "schedule", Gates: 1924, MicroOps: 8710, NsPerOp: 3597111, AllocsPerOp: 20317, BytesPerOp: 4188227, GatesPerSec: 534874},
		{Workload: "DiffGen-64", Arch: "ELP2IM", Opt: "reuse", Gates: 576, MicroOps: 1984, NsPerOp: 1602029, AllocsPerOp: 9003, BytesPerOp: 1219499, GatesPerSec: 359544},
		{Workload: "DiffGen-64", Arch: "ELP2IM", Opt: "rename", Gates: 576, MicroOps: 1408, NsPerOp: 1533680, AllocsPerOp: 8980, BytesPerOp: 1074424, GatesPerSec: 375567},
		{Workload: "DiffGen-64", Arch: "SIMDRAM", Opt: "bitslice", Gates: 772, MicroOps: 2950, NsPerOp: 1674806, AllocsPerOp: 6996, BytesPerOp: 1628053, GatesPerSec: 460949},
		{Workload: "DiffGen-64", Arch: "SIMDRAM", Opt: "schedule", Gates: 772, MicroOps: 2950, NsPerOp: 1967585, AllocsPerOp: 11647, BytesPerOp: 1764407, GatesPerSec: 392359},
		{Workload: "DiffGen-64", Arch: "SIMDRAM", Opt: "reuse", Gates: 576, MicroOps: 1984, NsPerOp: 1524743, AllocsPerOp: 9003, BytesPerOp: 1219502, GatesPerSec: 377769},
		{Workload: "DiffGen-64", Arch: "SIMDRAM", Opt: "rename", Gates: 576, MicroOps: 1408, NsPerOp: 1409195, AllocsPerOp: 8980, BytesPerOp: 1074427, GatesPerSec: 408744},
		{Workload: "SW-64", Arch: "Ambit", Opt: "bitslice", Gates: 2521, MicroOps: 11046, NsPerOp: 2564953, AllocsPerOp: 4986, BytesPerOp: 4479456, GatesPerSec: 982864},
		{Workload: "SW-64", Arch: "Ambit", Opt: "schedule", Gates: 2521, MicroOps: 11046, NsPerOp: 3501619, AllocsPerOp: 21195, BytesPerOp: 4899433, GatesPerSec: 719953},
		{Workload: "SW-64", Arch: "Ambit", Opt: "reuse", Gates: 1422, MicroOps: 5969, NsPerOp: 1962271, AllocsPerOp: 12122, BytesPerOp: 2380619, GatesPerSec: 724670},
		{Workload: "SW-64", Arch: "Ambit", Opt: "rename", Gates: 1422, MicroOps: 5297, NsPerOp: 1942533, AllocsPerOp: 12122, BytesPerOp: 2380615, GatesPerSec: 732034},
		{Workload: "SW-64", Arch: "ELP2IM", Opt: "bitslice", Gates: 2521, MicroOps: 11046, NsPerOp: 2667461, AllocsPerOp: 4986, BytesPerOp: 4479471, GatesPerSec: 945094},
		{Workload: "SW-64", Arch: "ELP2IM", Opt: "schedule", Gates: 2521, MicroOps: 11046, NsPerOp: 3773712, AllocsPerOp: 21194, BytesPerOp: 4899381, GatesPerSec: 668043},
		{Workload: "SW-64", Arch: "ELP2IM", Opt: "reuse", Gates: 1422, MicroOps: 5969, NsPerOp: 2119568, AllocsPerOp: 12121, BytesPerOp: 2380614, GatesPerSec: 670891},
		{Workload: "SW-64", Arch: "ELP2IM", Opt: "rename", Gates: 1422, MicroOps: 5297, NsPerOp: 1966715, AllocsPerOp: 12122, BytesPerOp: 2380619, GatesPerSec: 723033},
		{Workload: "SW-64", Arch: "SIMDRAM", Opt: "bitslice", Gates: 2277, MicroOps: 9826, NsPerOp: 2308530, AllocsPerOp: 4410, BytesPerOp: 3610572, GatesPerSec: 986342},
		{Workload: "SW-64", Arch: "SIMDRAM", Opt: "schedule", Gates: 2277, MicroOps: 9826, NsPerOp: 3103730, AllocsPerOp: 19324, BytesPerOp: 3994272, GatesPerSec: 733633},
		{Workload: "SW-64", Arch: "SIMDRAM", Opt: "reuse", Gates: 1422, MicroOps: 5969, NsPerOp: 2007714, AllocsPerOp: 12122, BytesPerOp: 2380618, GatesPerSec: 708268},
		{Workload: "SW-64", Arch: "SIMDRAM", Opt: "rename", Gates: 1422, MicroOps: 5297, NsPerOp: 1871852, AllocsPerOp: 12122, BytesPerOp: 2380620, GatesPerSec: 759675},
	}
	out := make([]CompileResult, len(src))
	copy(out, src)
	return out
}
