package perfbench

import (
	"testing"
)

// TestMeasureNarrowQuick smoke-tests one narrowing measurement and checks
// the simulated figures are deterministic: the timing model, not the wall
// clock, produces the makespans, so two runs must agree exactly.
func TestMeasureNarrowQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and verifies a workload repeatedly")
	}
	a, err := MeasureNarrow("DenseNet-16", arches[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.BaseUops <= 0 || a.NarrowUops <= 0 || a.BaseMakespanNs <= 0 || a.NarrowMakespanNs <= 0 {
		t.Fatalf("degenerate measurement: %+v", a)
	}
	if !a.Verified {
		t.Fatal("entry not marked verified")
	}
	b, err := MeasureNarrow("DenseNet-16", arches[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("narrowing figures not deterministic: %+v vs %+v", a, b)
	}
	if err := validateNarrow(&NarrowSection{Entries: []NarrowEntry{a}}); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedNarrowReport validates the narrow section of the
// BENCH_chopper.json checked in at the repository root and holds the PR's
// acceptance criterion: on at least two workloads, some measured
// architecture must show safe-mode narrowing cutting the emitted
// micro-ops by >=20% while speeding the simulated makespan up by >=1.2x
// (the same rule `benchcheck -min-narrow-uop-reduction 0.2` enforces),
// with every entry verified and never worse than the baseline.
func TestCommittedNarrowReport(t *testing.T) {
	rep, err := Load("../../BENCH_chopper.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Narrow == nil {
		t.Fatal("committed report has no narrow section")
	}
	if err := validateNarrow(rep.Narrow); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	qualified := map[string]bool{}
	for _, e := range rep.Narrow.Entries {
		seen[e.Workload] = true
		if e.NarrowUops > e.BaseUops {
			t.Errorf("%s/%s: narrowing grew the program: %d -> %d uops", e.Workload, e.Arch, e.BaseUops, e.NarrowUops)
		}
		if e.UopReduction >= 0.2 && e.MakespanSpeedup >= 1.2 {
			qualified[e.Workload] = true
		}
	}
	for _, wl := range Workloads {
		if !seen[wl] {
			t.Errorf("workload %s missing from the narrow section", wl)
		}
	}
	for wl := range qualified {
		t.Logf("%s meets the narrowing thresholds", wl)
	}
	if len(qualified) < 2 {
		t.Fatalf("only %d workloads meet >=20%% uop reduction with >=1.2x makespan speedup, want >=2", len(qualified))
	}
}
