package perfbench

import "fmt"

// ServeEntry is one chopperd load-generation phase measured by
// cmd/chopperload: offered vs achieved throughput, outcome mix, and the
// latency quantiles the QoS contract is judged on. The "steady" phase
// runs inside capacity; the "overload" phase offers a multiple of
// capacity to prove sheds stay deterministic 429s (ServerErrors == 0).
type ServeEntry struct {
	Phase       string  `json:"phase"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// OKQPS is successfully completed requests per second — the number
	// cmd/benchcheck's -min-serve-qps gate reads.
	OKQPS    float64 `json:"ok_qps"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	// ServerErrors counts 5xx responses other than the 503 drain
	// rejection; any nonzero value fails the CI gate.
	ServerErrors int     `json:"server_errors"`
	ShedRate     float64 `json:"shed_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50Ns        float64 `json:"p50_ns"`
	P99Ns        float64 `json:"p99_ns"`
	P999Ns       float64 `json:"p999_ns"`
	// InteractiveP99Ns is the interactive-class p99 — the latency bound
	// admission control exists to protect.
	InteractiveP99Ns float64 `json:"interactive_p99_ns"`
}

// ServeSection is the chopperd service-throughput record inside a
// Report; nil in reports written before the service work. Like the
// tiled section it has no stored baseline: every refresh remeasures
// both phases with the current code.
type ServeSection struct {
	Note    string       `json:"note,omitempty"`
	Entries []ServeEntry `json:"entries"`
}

// SetServe attaches a serve section to the report.
func (r *Report) SetServe(entries []ServeEntry, note string) {
	r.Serve = &ServeSection{Note: note, Entries: entries}
}

// ServeOKQPS returns the named phase's completed-OK throughput, or 0
// when the section or phase is missing.
func (r *Report) ServeOKQPS(phase string) float64 {
	if r.Serve == nil {
		return 0
	}
	for _, e := range r.Serve.Entries {
		if e.Phase == phase {
			return e.OKQPS
		}
	}
	return 0
}

// ServeServerErrors sums 5xx counts across every phase (-1 when the
// section is missing, so gates can tell "absent" from "clean").
func (r *Report) ServeServerErrors() int {
	if r.Serve == nil {
		return -1
	}
	sum := 0
	for _, e := range r.Serve.Entries {
		sum += e.ServerErrors
	}
	return sum
}

// ServeBatchSection is the request-coalescing record inside a Report:
// the homogeneous same-key load replayed twice — once with every
// request opting out of batching (Solo), once with batching allowed
// (Batched) — plus the achieved members-per-pass. Nil in reports
// written before the batching work. Like the serve section it has no
// stored baseline: every refresh remeasures both phases.
type ServeBatchSection struct {
	Note string `json:"note,omitempty"`
	// MeanBatchSize is the achieved members-per-coalesced-pass in the
	// batched phase (pass-weighted; see serve.LoadPhase.MeanBatchSize).
	MeanBatchSize float64 `json:"mean_batch_size"`
	// Solo and Batched are the same schedule's phases; cmd/benchcheck's
	// -min-batch-speedup gate compares their OKQPS and P99Ns.
	Solo    ServeEntry `json:"solo"`
	Batched ServeEntry `json:"batched"`
}

// SetServeBatch attaches a serve-batch section to the report.
func (r *Report) SetServeBatch(s *ServeBatchSection) {
	r.ServeBatch = s
}

// validateServeBatch checks a serve-batch section's structure.
func validateServeBatch(s *ServeBatchSection) error {
	if s.MeanBatchSize < 0 {
		return fmt.Errorf("perfbench: serve_batch: negative mean batch size %v", s.MeanBatchSize)
	}
	pair := &ServeSection{Entries: []ServeEntry{s.Solo, s.Batched}}
	if err := validateServe(pair); err != nil {
		return fmt.Errorf("serve_batch: %w", err)
	}
	if s.Solo.Phase != "homog-solo" || s.Batched.Phase != "homog-batched" {
		return fmt.Errorf("perfbench: serve_batch: phases %q/%q, want homog-solo/homog-batched",
			s.Solo.Phase, s.Batched.Phase)
	}
	return nil
}

// validateServe checks a serve section's structure: named phases,
// consistent counts, and quantile ordering.
func validateServe(s *ServeSection) error {
	if len(s.Entries) == 0 {
		return fmt.Errorf("perfbench: serve section has no entries")
	}
	for i, e := range s.Entries {
		id := fmt.Sprintf("serve[%d] %q", i, e.Phase)
		switch {
		case e.Phase == "":
			return fmt.Errorf("perfbench: serve[%d]: missing phase name", i)
		case e.Requests <= 0:
			return fmt.Errorf("perfbench: %s: no requests", id)
		case e.OK < 0 || e.Shed < 0 || e.ServerErrors < 0:
			return fmt.Errorf("perfbench: %s: negative outcome count", id)
		case e.OK+e.Shed > e.Requests:
			return fmt.Errorf("perfbench: %s: ok %d + shed %d exceed requests %d", id, e.OK, e.Shed, e.Requests)
		case e.OfferedQPS <= 0 || e.AchievedQPS <= 0:
			return fmt.Errorf("perfbench: %s: missing throughput", id)
		case e.OKQPS < 0 || e.OKQPS > e.AchievedQPS*1.01:
			return fmt.Errorf("perfbench: %s: ok_qps %v out of range (achieved %v)", id, e.OKQPS, e.AchievedQPS)
		case e.ShedRate < 0 || e.ShedRate > 1 || e.CacheHitRate < 0 || e.CacheHitRate > 1:
			return fmt.Errorf("perfbench: %s: rate out of [0,1]", id)
		case e.P50Ns <= 0 || e.P99Ns < e.P50Ns || e.P999Ns < e.P99Ns:
			return fmt.Errorf("perfbench: %s: quantiles out of order (p50 %v p99 %v p999 %v)", id, e.P50Ns, e.P99Ns, e.P999Ns)
		}
	}
	return nil
}
