package perfbench

import (
	"testing"

	"chopper/internal/isa"
	"chopper/internal/obs"
)

// TestMeasureCompileQuick smoke-tests one measurement end to end.
func TestMeasureCompileQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a workload repeatedly")
	}
	r, err := MeasureCompile("DiffGen-64", isa.Ambit, obs.Rename, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Gates <= 0 || r.MicroOps <= 0 || r.NsPerOp <= 0 || r.GatesPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", r)
	}
	if err := validateCompile(&CompileSection{Current: []CompileResult{r}}); err != nil {
		t.Fatal(err)
	}
}

// TestCompileBaselineShape pins the recorded baseline: the full workload x
// arch x opt grid, structurally valid.
func TestCompileBaselineShape(t *testing.T) {
	base := CompileBaselineResults()
	want := len(Workloads) * len(arches) * len(CompileOpts)
	if len(base) != want {
		t.Fatalf("baseline has %d entries, want %d", len(base), want)
	}
	if err := validateCompile(&CompileSection{Baseline: base, Current: base}); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedCompileReport validates the compile section of the
// BENCH_chopper.json checked in at the repository root and holds the PR's
// acceptance criterion: at least a 2x cold-compile ns/op improvement over
// the recorded baseline on at least two workloads (best configuration per
// workload, the same rule `benchcheck -min-compile-speedup 2` enforces).
func TestCommittedCompileReport(t *testing.T) {
	rep, err := Load("../../BENCH_chopper.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compile == nil {
		t.Fatal("committed report has no compile section")
	}
	best := rep.CompileWorkloadBest()
	twoX := 0
	for _, wl := range Workloads {
		s := best[wl]
		if s == 0 {
			t.Fatalf("workload %s missing from compile baseline or current section", wl)
		}
		t.Logf("%s: best %.2fx vs baseline", wl, s)
		if s >= 2 {
			twoX++
		}
	}
	if twoX < 2 {
		t.Fatalf("only %d workloads show >=2x compile speedup over the recorded baseline, want >=2", twoX)
	}
}
