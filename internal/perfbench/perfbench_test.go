package perfbench

import (
	"encoding/json"
	"testing"

	"chopper"
	"chopper/internal/isa"
	"chopper/internal/workloads"
)

// BenchmarkRunRows is the suite under `go test -bench`: same workloads,
// inputs and run loop as Measure, with Go's benchmark machinery doing the
// sampling. uops/s and commands/s are reported as custom metrics.
func BenchmarkRunRows(b *testing.B) {
	wls := Workloads
	if testing.Short() {
		wls = Workloads[:1]
	}
	for _, wl := range wls {
		for _, arch := range arches {
			b.Run(wl+"/"+arch.String(), func(b *testing.B) {
				spec, ok := workloads.Get(wl)
				if !ok {
					b.Fatalf("unknown workload %s", wl)
				}
				k, err := chopper.Compile(spec.Src, chopper.Options{Target: arch})
				if err != nil {
					b.Fatal(err)
				}
				rows := Inputs(k, Lanes)
				var cmds float64
				res, err := k.RunRows(rows, Lanes) // warm
				if err != nil {
					b.Fatal(err)
				}
				cmds = float64(res.Stats.Ops)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.RunRows(rows, Lanes); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				if nsPerOp > 0 {
					b.ReportMetric(float64(len(k.Prog().Ops))*1e9/nsPerOp, "uops/s")
					b.ReportMetric(cmds*1e9/nsPerOp, "commands/s")
				}
			})
		}
	}
}

// TestQuickSuiteAndSchema runs the quick (single-iteration) suite, wraps it
// in a report, and round-trips it through the JSON schema.
func TestQuickSuiteAndSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still compiles 12 kernels")
	}
	cur, err := RunSuite(true)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Workloads) * len(arches); len(cur) != want {
		t.Fatalf("suite returned %d results, want %d", len(cur), want)
	}
	rep := NewReport(cur, "test run")
	if err := Validate(rep); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := Validate(&back); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if back.Baseline[0].NsPerOp != 4167508 {
		t.Fatalf("baseline table lost in round trip: %+v", back.Baseline[0])
	}
}

// TestValidateRejects pins the validator's failure modes.
func TestValidateRejects(t *testing.T) {
	good := func() *Report {
		return NewReport([]Result{{
			Workload: "DenseNet-16", Arch: "Ambit", Lanes: 128,
			MicroOps: 100, NsPerOp: 5, AllocsPerOp: 1, BytesPerOp: 64,
			UopsPerSec: 1, CommandsPerSec: 1,
		}}, "")
	}
	if err := Validate(good()); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	cases := []func(*Report){
		func(r *Report) { r.Schema = "other/v0" },
		func(r *Report) { r.Current = nil },
		func(r *Report) { r.Current[0].Workload = "" },
		func(r *Report) { r.Current[0].NsPerOp = 0 },
		func(r *Report) { r.Current[0].Lanes = 0 },
		func(r *Report) { r.Current[0].AllocsPerOp = -1 },
		func(r *Report) { r.Current[0].UopsPerSec = 0 },
		func(r *Report) { r.Baseline[0].NsPerOp = -3 },
	}
	for i, mutate := range cases {
		r := good()
		mutate(r)
		if err := Validate(r); err == nil {
			t.Errorf("case %d: broken report accepted", i)
		}
	}
	if err := Validate(nil); err == nil {
		t.Error("nil report accepted")
	}
}

// TestCommittedReport validates the BENCH_chopper.json checked in at the
// repository root and holds the PR's acceptance criterion: at least a 2x
// ns/op improvement over the recorded baseline on at least two workloads.
func TestCommittedReport(t *testing.T) {
	rep, err := Load("../../BENCH_chopper.json")
	if err != nil {
		t.Fatal(err)
	}
	twoX := 0
	for _, wl := range Workloads {
		s := rep.Speedup(wl, "Ambit")
		if s == 0 {
			t.Fatalf("workload %s missing from baseline or current section", wl)
		}
		t.Logf("%s/Ambit: %.2fx vs baseline", wl, s)
		if s >= 2 {
			twoX++
		}
	}
	if twoX < 2 {
		t.Fatalf("only %d workloads show >=2x over the recorded baseline, want >=2", twoX)
	}
}

// TestSpeedupMissing pins Speedup's missing-entry behavior.
func TestSpeedupMissing(t *testing.T) {
	r := NewReport([]Result{{
		Workload: "DenseNet-16", Arch: "Ambit", Lanes: 128,
		MicroOps: 1, NsPerOp: 2083754, AllocsPerOp: 0, BytesPerOp: 0,
		UopsPerSec: 1, CommandsPerSec: 1,
	}}, "")
	if s := r.Speedup("DenseNet-16", "Ambit"); s < 1.99 || s > 2.01 {
		t.Fatalf("speedup %v, want ~2", s)
	}
	if s := r.Speedup("NoSuch-1", "Ambit"); s != 0 {
		t.Fatalf("missing workload speedup %v, want 0", s)
	}
	if s := r.Speedup("DenseNet-16", "NoArch"); s != 0 {
		t.Fatalf("missing arch speedup %v, want 0", s)
	}
}

func TestMeasureUnknownWorkload(t *testing.T) {
	if _, err := Measure("NoSuch-1", isa.Ambit, true); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
