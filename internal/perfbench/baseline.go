package perfbench

// The pre-optimization reference numbers, measured at commit 5e56f8e (the
// last commit before the arena/pre-decode simulator rewrite) with the exact
// Measure loop methodology via `go test -bench -benchmem -benchtime=2s` on
// the project's reference machine (Intel Xeon @ 2.10GHz, linux/amd64).
// They are data, not measurements to re-run: refreshing the current section
// (choppersim -bench) preserves this section verbatim so every future
// report keeps the original before/after comparison.

const baselineNote = "map-backed simulator at commit 5e56f8e; " +
	"go test -bench, benchtime=2s, Intel Xeon @ 2.10GHz, linux/amd64"

// BaselineResults returns a fresh copy of the recorded baseline table.
func BaselineResults() []Result {
	src := []Result{
		{Workload: "DenseNet-16", Arch: "Ambit", Lanes: 128, NsPerOp: 4167508, AllocsPerOp: 18948, BytesPerOp: 1831728},
		{Workload: "DenseNet-16", Arch: "ELP2IM", Lanes: 128, NsPerOp: 4322772, AllocsPerOp: 18948, BytesPerOp: 1831728},
		{Workload: "DenseNet-16", Arch: "SIMDRAM", Lanes: 128, NsPerOp: 3995117, AllocsPerOp: 17916, BytesPerOp: 1733296},
		{Workload: "WTC-64", Arch: "Ambit", Lanes: 128, NsPerOp: 8863429, AllocsPerOp: 40701, BytesPerOp: 3945352},
		{Workload: "WTC-64", Arch: "ELP2IM", Lanes: 128, NsPerOp: 8601156, AllocsPerOp: 40701, BytesPerOp: 3945352},
		{Workload: "WTC-64", Arch: "SIMDRAM", Lanes: 128, NsPerOp: 6292558, AllocsPerOp: 27866, BytesPerOp: 2707800},
		{Workload: "DiffGen-64", Arch: "Ambit", Lanes: 128, NsPerOp: 352561, AllocsPerOp: 1587, BytesPerOp: 191792},
		{Workload: "DiffGen-64", Arch: "ELP2IM", Lanes: 128, NsPerOp: 365611, AllocsPerOp: 1587, BytesPerOp: 191792},
		{Workload: "DiffGen-64", Arch: "SIMDRAM", Lanes: 128, NsPerOp: 387067, AllocsPerOp: 1587, BytesPerOp: 191792},
		{Workload: "SW-64", Arch: "Ambit", Lanes: 128, NsPerOp: 1323444, AllocsPerOp: 5658, BytesPerOp: 554496},
		{Workload: "SW-64", Arch: "ELP2IM", Lanes: 128, NsPerOp: 1308953, AllocsPerOp: 5658, BytesPerOp: 554496},
		{Workload: "SW-64", Arch: "SIMDRAM", Lanes: 128, NsPerOp: 1266159, AllocsPerOp: 5658, BytesPerOp: 554496},
	}
	out := make([]Result, len(src))
	copy(out, src)
	return out
}
