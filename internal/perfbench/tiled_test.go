package perfbench

import (
	"math"
	"testing"
)

// TestMeasureTiledQuick smoke-tests one tiled measurement per channel
// count and checks the simulated figures are deterministic: the timing
// model, not the wall clock, produces DeviceNs/TransferNs/EndToEndNs, so
// two quick runs must agree exactly.
func TestMeasureTiledQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiled workload repeatedly")
	}
	for _, ch := range TiledChannels {
		a, err := MeasureTiled("DiffGen-64", ch, true)
		if err != nil {
			t.Fatal(err)
		}
		if a.Tiles <= 0 || a.DeviceNs <= 0 || a.EndToEndNs <= 0 || a.WallNsPerOp <= 0 {
			t.Fatalf("ch%d: degenerate measurement: %+v", ch, a)
		}
		if a.Channels != ch {
			t.Fatalf("ch%d: result reports %d channels", ch, a.Channels)
		}
		b, err := MeasureTiled("DiffGen-64", ch, true)
		if err != nil {
			t.Fatal(err)
		}
		if a.DeviceNs != b.DeviceNs || a.TransferNs != b.TransferNs || a.EndToEndNs != b.EndToEndNs {
			t.Fatalf("ch%d: simulated figures not deterministic: %+v vs %+v", ch, a, b)
		}
		if err := validateTiled(&TiledSection{Entries: []TiledEntry{a}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCommittedTiledReport validates the tiled section of the
// BENCH_chopper.json checked in at the repository root and holds the PR's
// acceptance criterion: at least a 2x end-to-end speedup at Channels>=2
// over the Channels=1 serial replay on at least two workloads (the same
// rule `benchcheck -min-tiled-speedup 2` enforces), with transfer time
// recorded separately from the device makespan.
func TestCommittedTiledReport(t *testing.T) {
	rep, err := Load("../../BENCH_chopper.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiled == nil {
		t.Fatal("committed report has no tiled section")
	}
	for _, e := range rep.Tiled.Entries {
		if e.TransferNs <= 0 {
			t.Fatalf("%s/ch%d: transfer time not recorded", e.Workload, e.Channels)
		}
		if want := e.DeviceNs + e.TransferNs - e.OverlapNs; math.Abs(e.EndToEndNs-want) > 1e-6*want {
			t.Fatalf("%s/ch%d: end-to-end %g inconsistent with device+transfer-overlap %g", e.Workload, e.Channels, e.EndToEndNs, want)
		}
	}
	speedups := rep.TiledSpeedups()
	twoX := 0
	for _, wl := range Workloads {
		s := speedups[wl]
		if s == 0 {
			t.Fatalf("workload %s missing a channels=1 or channels>=2 tiled entry", wl)
		}
		t.Logf("%s: %.2fx end-to-end at %d channels", wl, s, TiledMaxChannels)
		if s >= 2 {
			twoX++
		}
	}
	if twoX < 2 {
		t.Fatalf("only %d workloads show >=2x tiled end-to-end speedup, want >=2", twoX)
	}
}
