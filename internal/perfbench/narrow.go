package perfbench

// The precision-adaptive compilation suite: where Measure tracks the run
// path at declared widths, this file tracks what safe-mode narrowing (the
// internal/narrow middle end) buys on the same workloads — emitted
// micro-ops, simulated single-subarray makespan, and the pass's own
// declared-vs-live bit accounting. Both sides of every entry are compiled
// from the same source at the same optimization level; the only difference
// is Options.Narrow, so the recorded reduction is the narrowing pass's.
//
// The simulated makespan (RunResult.TimeNs) comes from the deterministic
// timing model, so BaseMakespanNs/NarrowMakespanNs/MakespanSpeedup are
// bit-stable across machines and -quick runs; only nothing wall-clock is
// recorded here. Every narrowed kernel is verified against the reference
// dataflow semantics before its numbers are recorded — an entry with
// Verified=false never leaves MeasureNarrow.

import (
	"fmt"

	"chopper"
	"chopper/internal/isa"
	"chopper/internal/workloads"
)

// NarrowEntry is one (workload, arch) narrowing measurement.
type NarrowEntry struct {
	Workload string `json:"workload"`
	Arch     string `json:"arch"`
	Lanes    int    `json:"lanes"`
	// BaseUops/NarrowUops are the emitted program lengths without and with
	// safe-mode narrowing.
	BaseUops   int `json:"base_uops"`
	NarrowUops int `json:"narrow_uops"`
	// UopReduction is 1 - NarrowUops/BaseUops (0.2 = 20% fewer micro-ops).
	UopReduction float64 `json:"uop_reduction"`
	// BaseMakespanNs/NarrowMakespanNs are the simulated single-subarray
	// makespans (RunResult.TimeNs) of one run at Lanes lanes.
	BaseMakespanNs   float64 `json:"base_makespan_ns"`
	NarrowMakespanNs float64 `json:"narrow_makespan_ns"`
	// MakespanSpeedup is BaseMakespanNs / NarrowMakespanNs.
	MakespanSpeedup float64 `json:"makespan_speedup"`
	// DeclaredBits/LiveBits are the pass's width accounting (summed value
	// widths before and after narrowing).
	DeclaredBits int `json:"declared_bits"`
	LiveBits     int `json:"live_bits"`
	// Verified records that the narrowed kernel passed bit-exact
	// verification against the reference dataflow semantics.
	Verified bool `json:"verified"`
}

// NarrowSection is the precision-adaptive compilation record inside a
// Report. Like the tiled section it has no recorded baseline subsection:
// the narrowing-off side of every entry is remeasured with the current
// compiler every refresh, so the comparison stays apples-to-apples.
type NarrowSection struct {
	Note    string        `json:"note,omitempty"`
	Entries []NarrowEntry `json:"entries"`
}

// MeasureNarrow measures one (workload, arch) pair: compile with
// narrowing off and with safe-mode narrowing, verify the narrowed kernel,
// and run both once on the suite inputs for the simulated makespans.
func MeasureNarrow(workload string, arch isa.Arch) (NarrowEntry, error) {
	spec, ok := workloads.Get(workload)
	if !ok {
		return NarrowEntry{}, fmt.Errorf("perfbench: unknown workload %q", workload)
	}
	base, err := chopper.Compile(spec.Src, chopper.Options{Target: arch})
	if err != nil {
		return NarrowEntry{}, fmt.Errorf("perfbench: compile %s/%s: %w", workload, arch, err)
	}
	nk, err := chopper.Compile(spec.Src, chopper.Options{Target: arch, Narrow: chopper.NarrowSafe})
	if err != nil {
		return NarrowEntry{}, fmt.Errorf("perfbench: narrow compile %s/%s: %w", workload, arch, err)
	}
	if nk.Narrow == nil {
		return NarrowEntry{}, fmt.Errorf("perfbench: %s/%s: narrowing fell back to the original graph", workload, arch)
	}
	if err := nk.Verify(2, int64(arch)+4000); err != nil {
		return NarrowEntry{}, fmt.Errorf("perfbench: %s/%s: narrowed kernel failed verification: %w", workload, arch, err)
	}

	baseRes, err := base.RunRows(Inputs(base, Lanes), Lanes)
	if err != nil {
		return NarrowEntry{}, fmt.Errorf("perfbench: run %s/%s: %w", workload, arch, err)
	}
	narrowRes, err := nk.RunRows(Inputs(nk, Lanes), Lanes)
	if err != nil {
		return NarrowEntry{}, fmt.Errorf("perfbench: narrowed run %s/%s: %w", workload, arch, err)
	}

	e := NarrowEntry{
		Workload:         workload,
		Arch:             arch.String(),
		Lanes:            Lanes,
		BaseUops:         len(base.Prog().Ops),
		NarrowUops:       len(nk.Prog().Ops),
		BaseMakespanNs:   baseRes.TimeNs,
		NarrowMakespanNs: narrowRes.TimeNs,
		DeclaredBits:     nk.Narrow.DeclaredBits,
		LiveBits:         nk.Narrow.LiveBits,
		Verified:         true,
	}
	if e.BaseUops > 0 {
		e.UopReduction = 1 - float64(e.NarrowUops)/float64(e.BaseUops)
	}
	if e.NarrowMakespanNs > 0 {
		e.MakespanSpeedup = e.BaseMakespanNs / e.NarrowMakespanNs
	}
	return e, nil
}

// RunNarrowSuite measures every (workload, arch) pair of the suite.
func RunNarrowSuite() ([]NarrowEntry, error) {
	var out []NarrowEntry
	for _, wl := range Workloads {
		for _, arch := range arches {
			e, err := MeasureNarrow(wl, arch)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// SetNarrow attaches a precision-adaptive compilation section to the
// report.
func (r *Report) SetNarrow(entries []NarrowEntry, note string) {
	r.Narrow = &NarrowSection{Note: note, Entries: entries}
}

// NarrowGains returns, per workload, the best (uop reduction, makespan
// speedup) pair over the measured architectures — "best" by uop
// reduction, with that entry's speedup. This is the quantity the CI gate
// counts: a workload meets the narrowing thresholds when some measured
// architecture clears both bars, since how much slack narrowing can turn
// into savings varies with each architecture's instruction repertoire.
func (r *Report) NarrowGains() map[string]NarrowEntry {
	out := make(map[string]NarrowEntry)
	if r.Narrow == nil {
		return out
	}
	for _, e := range r.Narrow.Entries {
		if best, ok := out[e.Workload]; !ok || e.UopReduction > best.UopReduction {
			out[e.Workload] = e
		}
	}
	return out
}

// validateNarrow checks a narrow section's structure: identity fields
// set, positive program sizes and makespans, verified entries, reductions
// consistent with the recorded sizes, and live bits within declared.
func validateNarrow(n *NarrowSection) error {
	if len(n.Entries) == 0 {
		return fmt.Errorf("perfbench: narrow section has no entries")
	}
	for i, e := range n.Entries {
		id := fmt.Sprintf("narrow[%d] %s/%s", i, e.Workload, e.Arch)
		switch {
		case e.Workload == "" || e.Arch == "":
			return fmt.Errorf("perfbench: %s: missing workload/arch", id)
		case e.Lanes <= 0:
			return fmt.Errorf("perfbench: %s: lanes %d", id, e.Lanes)
		case e.BaseUops <= 0 || e.NarrowUops <= 0:
			return fmt.Errorf("perfbench: %s: missing program sizes", id)
		case e.BaseMakespanNs <= 0 || e.NarrowMakespanNs <= 0:
			return fmt.Errorf("perfbench: %s: missing makespans", id)
		case e.DeclaredBits <= 0 || e.LiveBits <= 0 || e.LiveBits > e.DeclaredBits:
			return fmt.Errorf("perfbench: %s: bit accounting %d live / %d declared", id, e.LiveBits, e.DeclaredBits)
		case !e.Verified:
			return fmt.Errorf("perfbench: %s: not verified", id)
		}
		if want := 1 - float64(e.NarrowUops)/float64(e.BaseUops); diffAbs(e.UopReduction, want) > 1e-9 {
			return fmt.Errorf("perfbench: %s: uop_reduction %g inconsistent with %d/%d", id, e.UopReduction, e.NarrowUops, e.BaseUops)
		}
		if want := e.BaseMakespanNs / e.NarrowMakespanNs; diffAbs(e.MakespanSpeedup, want) > 1e-9*want {
			return fmt.Errorf("perfbench: %s: makespan_speedup %g inconsistent with recorded makespans", id, e.MakespanSpeedup)
		}
	}
	return nil
}

func diffAbs(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
