package perfbench

// The tiled-execution suite: where Measure tracks the single-subarray run
// path, this file tracks RunTiled — the whole-dataset path that shards the
// timing replay across memory channels. Each workload is measured on the
// same bank-oversubscribed device at Channels=1 (every bank holds several
// tiles, which serialize without SALP) and at Channels=TiledMaxChannels
// (the same tiles spread across channels, one per bank), so the recorded
// end-to-end speedup is the channel sharding's, not a wall-clock artifact:
// DeviceNs/TransferNs/EndToEndNs come from the deterministic timing model
// and are bit-stable across machines and -quick runs. Wall-clock ns per
// RunTiled call is recorded alongside for the replay-cost trend.
//
// Methodology, fixed so numbers stay comparable across commits: the four
// Table II workloads of the run suite on Ambit, TiledLanes lanes split
// into 16 tiles (Banks=4 x SubarraysPB=8 holds them twice over at one
// channel), default transfer model, default optimization level.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"chopper"
	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/workloads"
)

// TiledLanes is the dataset width of every tiled measurement: 16 tiles of
// 512 lanes on the suite geometry.
const TiledLanes = 8192

// TiledChannels are the measured channel counts: the serial replay and the
// full fan-out.
var TiledChannels = []int{1, TiledMaxChannels}

// TiledMaxChannels is the sharded configuration's channel count.
const TiledMaxChannels = 4

// TiledGeometry is the suite device at a given channel count: few banks
// and a narrow row so TiledLanes becomes 16 tiles that oversubscribe the
// banks at one channel (4 tiles per bank, serialized by the bank-level
// timing model) and spread one-per-bank at four channels.
func TiledGeometry(channels int) dram.Geometry {
	return dram.Geometry{
		Banks: 4, SubarraysPB: 8, RowsPerSub: 1024, RowBytes: 64,
		ReservedRows: 18, Channels: channels,
	}
}

// TiledEntry is one (workload, channels) tiled-run measurement.
type TiledEntry struct {
	Workload string `json:"workload"`
	Arch     string `json:"arch"`
	Lanes    int    `json:"lanes"`
	Tiles    int    `json:"tiles"`
	Channels int    `json:"channels"`
	// DeviceNs is the simulated device makespan (TiledResult.TimeNs).
	DeviceNs float64 `json:"device_ns"`
	// TransferNs is the simulated host<->DRAM DMA time (input scatter +
	// output gather), kept separate from the device makespan.
	TransferNs float64 `json:"transfer_ns"`
	// OverlapNs is the transfer time hidden behind device compute.
	OverlapNs float64 `json:"overlap_ns"`
	// EndToEndNs is the host-visible completion time:
	// DeviceNs + TransferNs - OverlapNs.
	EndToEndNs float64 `json:"end_to_end_ns"`
	// WallNsPerOp is wall-clock nanoseconds per RunTiled call (functional
	// execution plus sharded timing replay).
	WallNsPerOp float64 `json:"wall_ns_per_op"`
}

// TiledSection is the tiled-execution record inside a Report. It has no
// recorded baseline subsection: the Channels=1 entries are the baseline,
// remeasured with the current code every refresh (the serial replay is the
// sharded path at one shard, so the comparison stays apples-to-apples).
type TiledSection struct {
	Note    string       `json:"note,omitempty"`
	Entries []TiledEntry `json:"entries"`
}

// tiledInputs builds deterministic wide-format operands (one limb-slice
// per lane) for a compiled kernel: rand(seed 1), width-masked.
func tiledInputs(k *chopper.Kernel, lanes int) map[string][][]uint64 {
	rng := rand.New(rand.NewSource(inputSeed))
	in := make(map[string][][]uint64, len(k.Inputs))
	for _, op := range k.Inputs {
		vals := make([][]uint64, lanes)
		for l := range vals {
			limbs := (op.Width + 63) / 64
			v := make([]uint64, limbs)
			for i := range v {
				v[i] = rng.Uint64()
			}
			if r := op.Width % 64; r != 0 {
				v[limbs-1] &= (uint64(1) << uint(r)) - 1
			}
			vals[l] = v
		}
		in[op.Name] = vals
	}
	return in
}

// MeasureTiled benchmarks one (workload, channels) tiled configuration.
// quick runs a single timed iteration (CI smoke); the simulated metrics
// are identical either way.
func MeasureTiled(workload string, channels int, quick bool) (TiledEntry, error) {
	spec, ok := workloads.Get(workload)
	if !ok {
		return TiledEntry{}, fmt.Errorf("perfbench: unknown workload %q", workload)
	}
	k, err := chopper.Compile(spec.Src, chopper.Options{
		Target:   isa.Ambit,
		Geometry: TiledGeometry(channels),
	})
	if err != nil {
		return TiledEntry{}, fmt.Errorf("perfbench: compile %s (tiled): %w", workload, err)
	}
	in := tiledInputs(k, TiledLanes)

	// Warm run: pools, decode cache — and the deterministic timing record.
	res, err := k.RunTiled(in, TiledLanes)
	if err != nil {
		return TiledEntry{}, fmt.Errorf("perfbench: tiled run %s/ch%d: %w", workload, channels, err)
	}

	opts := sampling(quick)
	start := time.Now()
	iters := 0
	for {
		if _, err := k.RunTiled(in, TiledLanes); err != nil {
			return TiledEntry{}, err
		}
		iters++
		if iters >= opts.minIters && time.Since(start) >= opts.minTime {
			break
		}
	}
	elapsed := time.Since(start)

	return TiledEntry{
		Workload:    workload,
		Arch:        isa.Ambit.String(),
		Lanes:       TiledLanes,
		Tiles:       res.Tiles,
		Channels:    res.Channels,
		DeviceNs:    res.TimeNs,
		TransferNs:  res.TransferNs,
		OverlapNs:   res.OverlapNs,
		EndToEndNs:  res.EndToEndNs,
		WallNsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
	}, nil
}

// RunTiledSuite measures every (workload, channels) pair of the tiled
// suite.
func RunTiledSuite(quick bool) ([]TiledEntry, error) {
	var out []TiledEntry
	for _, wl := range Workloads {
		for _, ch := range TiledChannels {
			e, err := MeasureTiled(wl, ch, quick)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// SetTiled attaches a tiled-execution section to the report.
func (r *Report) SetTiled(entries []TiledEntry, note string) {
	r.Tiled = &TiledSection{Note: note, Entries: entries}
}

// TiledSpeedup returns the end-to-end channel-sharding speedup for one
// workload: EndToEndNs at Channels=1 over EndToEndNs at the workload's
// highest measured channel count (>1), or 0 when either side is missing.
func (r *Report) TiledSpeedup(workload string) float64 {
	if r.Tiled == nil {
		return 0
	}
	var serial, sharded float64
	best := 1
	for _, e := range r.Tiled.Entries {
		if e.Workload != workload {
			continue
		}
		if e.Channels == 1 {
			serial = e.EndToEndNs
		} else if e.Channels > best {
			best, sharded = e.Channels, e.EndToEndNs
		}
	}
	if serial <= 0 || sharded <= 0 {
		return 0
	}
	return serial / sharded
}

// TiledSpeedups returns the per-workload end-to-end sharding speedup for
// every workload with entries in the tiled section. This is the quantity
// the CI gate counts: a workload "meets" a threshold when its sharded
// configuration beats its own serial replay end to end.
func (r *Report) TiledSpeedups() map[string]float64 {
	out := make(map[string]float64)
	if r.Tiled == nil {
		return out
	}
	for _, e := range r.Tiled.Entries {
		if _, done := out[e.Workload]; done {
			continue
		}
		if s := r.TiledSpeedup(e.Workload); s > 0 {
			out[e.Workload] = s
		}
	}
	return out
}

// validateTiled checks a tiled section's structure: identity fields set,
// positive simulated times, overlap within its transfer bound, and the
// end-to-end identity holding to float tolerance.
func validateTiled(t *TiledSection) error {
	if len(t.Entries) == 0 {
		return fmt.Errorf("perfbench: tiled section has no entries")
	}
	for i, e := range t.Entries {
		id := fmt.Sprintf("tiled[%d] %s/ch%d", i, e.Workload, e.Channels)
		switch {
		case e.Workload == "" || e.Arch == "":
			return fmt.Errorf("perfbench: %s: missing workload/arch", id)
		case e.Lanes <= 0 || e.Tiles <= 0 || e.Channels <= 0:
			return fmt.Errorf("perfbench: %s: bad shape (lanes=%d tiles=%d channels=%d)", id, e.Lanes, e.Tiles, e.Channels)
		case e.DeviceNs <= 0 || e.EndToEndNs <= 0 || e.WallNsPerOp <= 0:
			return fmt.Errorf("perfbench: %s: missing timing metrics", id)
		case e.TransferNs < 0 || e.OverlapNs < 0 || e.OverlapNs > e.TransferNs:
			return fmt.Errorf("perfbench: %s: overlap %g outside [0, transfer %g]", id, e.OverlapNs, e.TransferNs)
		}
		want := e.DeviceNs + e.TransferNs - e.OverlapNs
		if diff := math.Abs(e.EndToEndNs - want); diff > 1e-6*math.Max(1, want) {
			return fmt.Errorf("perfbench: %s: end_to_end %g != device+transfer-overlap %g", id, e.EndToEndNs, want)
		}
	}
	return nil
}
