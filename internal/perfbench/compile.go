package perfbench

// The compile-throughput suite: where perfbench.Measure tracks the *run*
// path (compile once, RunRows per iteration), this file tracks the *cold
// compile* path — the full DSL -> bitslice -> OBS -> codegen pipeline per
// iteration, no kernel cache. CHOPPER's pitch is programmability (many
// distinct kernels compiled on demand), so cold-compile throughput is a
// serving-path cost the kernel cache only amortizes, not removes.
//
// Methodology, fixed so numbers stay comparable across commits: the same
// four Table II workloads as the run suite, every PUD architecture, every
// cumulative optimization level of the paper's breakdown ladder
// (bitslice ⊂ schedule ⊂ reuse ⊂ rename), default geometry, no cache, no
// budget. Results land in the `compile` section of BENCH_chopper.json; the
// recorded pre-change baseline (compilebaseline.go) is carried forward
// verbatim on refresh.

import (
	"fmt"
	"runtime"
	"time"

	"chopper"
	"chopper/internal/isa"
	"chopper/internal/obs"
	"chopper/internal/workloads"
)

// CompileOpts is the optimization ladder the compile suite measures, in
// cumulative order.
var CompileOpts = []obs.Variant{obs.Bitslice, obs.Schedule, obs.Reuse, obs.Rename}

// CompileResult is one (workload, arch, opt) cold-compile measurement.
type CompileResult struct {
	Workload string `json:"workload"`
	Arch     string `json:"arch"`
	Opt      string `json:"opt"`
	// Gates is the legalized logic-net size the pipeline produced; the
	// denominator of GatesPerSec.
	Gates int `json:"gates"`
	// MicroOps is the emitted program length.
	MicroOps int `json:"micro_ops"`
	// NsPerOp is wall-clock nanoseconds per cold Compile call.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per Compile call.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// GatesPerSec is legalized gates compiled per wall-clock second.
	GatesPerSec float64 `json:"gates_per_sec"`
}

// CompileSection is the compile-throughput record inside a Report.
type CompileSection struct {
	BaselineNote string          `json:"baseline_note,omitempty"`
	Baseline     []CompileResult `json:"baseline,omitempty"`
	CurrentNote  string          `json:"current_note,omitempty"`
	Current      []CompileResult `json:"current"`
}

// MeasureCompile benchmarks one (workload, arch, opt) cold-compile
// configuration. quick runs a single timed iteration (CI smoke).
func MeasureCompile(workload string, arch isa.Arch, opt obs.Variant, quick bool) (CompileResult, error) {
	spec, ok := workloads.Get(workload)
	if !ok {
		return CompileResult{}, fmt.Errorf("perfbench: unknown workload %q", workload)
	}
	copts := chopper.Options{Target: arch}.WithOpt(opt)

	// Warm compile: checks the configuration works and yields the gate and
	// micro-op counts (deterministic, so any iteration would agree).
	k, err := chopper.Compile(spec.Src, copts)
	if err != nil {
		return CompileResult{}, fmt.Errorf("perfbench: compile %s/%s/%s: %w", workload, arch, opt, err)
	}
	gates := 0
	if k.Net != nil {
		gates = len(k.Net.Gates)
	}

	mopts := sampling(quick)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for {
		if _, err := chopper.Compile(spec.Src, copts); err != nil {
			return CompileResult{}, err
		}
		iters++
		if iters >= mopts.minIters && time.Since(start) >= mopts.minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	r := CompileResult{
		Workload:    workload,
		Arch:        arch.String(),
		Opt:         opt.String(),
		Gates:       gates,
		MicroOps:    len(k.Prog().Ops),
		NsPerOp:     nsPerOp,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
	}
	if nsPerOp > 0 {
		r.GatesPerSec = float64(gates) * 1e9 / nsPerOp
	}
	return r, nil
}

// RunCompileSuite measures every (workload, arch, opt) triple of the
// compile-throughput suite.
func RunCompileSuite(quick bool) ([]CompileResult, error) {
	var out []CompileResult
	for _, wl := range Workloads {
		for _, arch := range arches {
			for _, opt := range CompileOpts {
				r, err := MeasureCompile(wl, arch, opt, quick)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// SetCompile attaches a compile-throughput section (current measurements
// plus the recorded pre-change baseline) to the report.
func (r *Report) SetCompile(current []CompileResult, note string) {
	r.Compile = &CompileSection{
		BaselineNote: compileBaselineNote,
		Baseline:     CompileBaselineResults(),
		CurrentNote:  note,
		Current:      current,
	}
}

// CompileSpeedup returns baseline-ns / current-ns for one (workload, arch,
// opt) triple of the compile section, or 0 when either side is missing.
func (r *Report) CompileSpeedup(workload, arch, opt string) float64 {
	if r.Compile == nil {
		return 0
	}
	find := func(rs []CompileResult) float64 {
		for _, e := range rs {
			if e.Workload == workload && e.Arch == arch && e.Opt == opt {
				return e.NsPerOp
			}
		}
		return 0
	}
	base, cur := find(r.Compile.Baseline), find(r.Compile.Current)
	if base <= 0 || cur <= 0 {
		return 0
	}
	return base / cur
}

// CompileWorkloadBest returns, per workload, the best compile speedup
// across every (arch, opt) entry present in both the baseline and current
// subsections. This is the quantity the CI gate counts: a workload
// "meets" a threshold when at least one of its measured configurations
// does, which keeps the gate robust to per-config noise while still
// requiring a real end-to-end win on that workload.
func (r *Report) CompileWorkloadBest() map[string]float64 {
	best := make(map[string]float64)
	if r.Compile == nil {
		return best
	}
	for _, e := range r.Compile.Current {
		if s := r.CompileSpeedup(e.Workload, e.Arch, e.Opt); s > best[e.Workload] {
			best[e.Workload] = s
		}
	}
	return best
}

// validateCompile checks a compile section's structure.
func validateCompile(c *CompileSection) error {
	if len(c.Current) == 0 {
		return fmt.Errorf("perfbench: compile section has empty current subsection")
	}
	check := func(section string, rs []CompileResult) error {
		for i, e := range rs {
			switch {
			case e.Workload == "" || e.Arch == "" || e.Opt == "":
				return fmt.Errorf("perfbench: compile %s[%d]: missing workload/arch/opt", section, i)
			case e.Gates <= 0 || e.MicroOps <= 0:
				return fmt.Errorf("perfbench: compile %s[%d] %s/%s/%s: missing gate/micro-op counts", section, i, e.Workload, e.Arch, e.Opt)
			case e.NsPerOp <= 0 || e.GatesPerSec <= 0:
				return fmt.Errorf("perfbench: compile %s[%d] %s/%s/%s: missing timing metrics", section, i, e.Workload, e.Arch, e.Opt)
			case e.AllocsPerOp < 0 || e.BytesPerOp < 0:
				return fmt.Errorf("perfbench: compile %s[%d] %s/%s/%s: negative allocation metric", section, i, e.Workload, e.Arch, e.Opt)
			}
		}
		return nil
	}
	if err := check("baseline", c.Baseline); err != nil {
		return err
	}
	return check("current", c.Current)
}
