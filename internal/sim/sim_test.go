package sim

import (
	"strings"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/ssd"
)

func row(val uint64, words int) []uint64 {
	r := make([]uint64, words)
	for i := range r {
		r[i] = val
	}
	return r
}

func TestConstantRowsInitialized(t *testing.T) {
	s := NewSubarray(16, 128)
	c0 := s.Row(isa.C0)
	c1 := s.Row(isa.C1)
	if c0 == nil || c1 == nil {
		t.Fatal("C rows not initialized")
	}
	for i := range c0 {
		if c0[i] != 0 {
			t.Errorf("C0 word %d = %#x", i, c0[i])
		}
		if c1[i] != ^uint64(0) {
			t.Errorf("C1 word %d = %#x", i, c1[i])
		}
	}
}

func TestLaneMasking(t *testing.T) {
	s := NewSubarray(4, 100) // 100 lanes -> 2 words, top 28 bits masked
	c1 := s.Row(isa.C1)
	if c1[1] != (uint64(1)<<36)-1 {
		t.Errorf("C1 tail word = %#x, want 36 low bits", c1[1])
	}
}

func exec(t *testing.T, s *Subarray, op isa.Op, io *HostIO, sp *SpillStore) {
	t.Helper()
	if err := s.Exec(&op, io, sp); err != nil {
		t.Fatalf("%v: %v", op, err)
	}
}

func TestAAPAndTRA(t *testing.T) {
	s := NewSubarray(8, 64)
	a, b := uint64(0b1100), uint64(0b1010)
	io := &HostIO{WriteData: func(tag int) []uint64 {
		if tag == 0 {
			return []uint64{a}
		}
		return []uint64{b}
	}}
	exec(t, s, isa.NewWrite(isa.Row(0), 0), io, nil)
	exec(t, s, isa.NewWrite(isa.Row(1), 1), io, nil)
	exec(t, s, isa.NewAAP(isa.Row(0), isa.T0), nil, nil)
	exec(t, s, isa.NewAAP(isa.Row(1), isa.T1), nil, nil)
	exec(t, s, isa.NewAAP(isa.C0, isa.T2), nil, nil)
	exec(t, s, isa.NewAP(isa.T0, isa.T1, isa.T2), nil, nil)
	want := a & b
	for _, r := range []isa.Row{isa.T0, isa.T1, isa.T2} {
		if got := s.Row(r)[0]; got != want {
			t.Errorf("%s after AND-TRA = %#x, want %#x", r, got, want)
		}
	}

	// OR via C1 control.
	exec(t, s, isa.NewAAP(isa.Row(0), isa.T0), nil, nil)
	exec(t, s, isa.NewAAP(isa.Row(1), isa.T1), nil, nil)
	exec(t, s, isa.NewAAP(isa.C1, isa.T2), nil, nil)
	exec(t, s, isa.NewAP(isa.T0, isa.T1, isa.T2), nil, nil)
	if got := s.Row(isa.T0)[0]; got != a|b {
		t.Errorf("OR-TRA = %#x, want %#x", got, a|b)
	}
}

func TestMultiDestinationAAP(t *testing.T) {
	s := NewSubarray(8, 64)
	io := &HostIO{WriteData: func(int) []uint64 { return []uint64{0xF0} }}
	exec(t, s, isa.NewWrite(isa.Row(0), 0), io, nil)
	exec(t, s, isa.NewAAP(isa.Row(0), isa.T0, isa.T1, isa.T2), nil, nil)
	for _, r := range []isa.Row{isa.T0, isa.T1, isa.T2} {
		if got := s.Row(r)[0]; got != 0xF0 {
			t.Errorf("%s = %#x", r, got)
		}
	}
}

func TestDualContactNot(t *testing.T) {
	s := NewSubarray(8, 64)
	io := &HostIO{WriteData: func(int) []uint64 { return []uint64{0b0110} }}
	exec(t, s, isa.NewWrite(isa.Row(0), 0), io, nil)
	exec(t, s, isa.NewAAP(isa.Row(0), isa.DCC0), nil, nil)
	if got := s.Row(isa.DCC0N)[0]; got != ^uint64(0b0110) {
		t.Errorf("~DCC0 = %#x, want %#x", got, ^uint64(0b0110))
	}
	// Writing to the complement row flips the primary too.
	exec(t, s, isa.NewAAP(isa.C1, isa.DCC1N), nil, nil)
	if got := s.Row(isa.DCC1)[0]; got != 0 {
		t.Errorf("DCC1 = %#x, want 0", got)
	}
}

func TestTRAWithDCCOperand(t *testing.T) {
	// NOT(a) AND b computed as TRA(~DCC0, T1, T2) with control C0 in T2.
	s := NewSubarray(8, 64)
	a, b := uint64(0b1100), uint64(0b1010)
	io := &HostIO{WriteData: func(tag int) []uint64 {
		if tag == 0 {
			return []uint64{a}
		}
		return []uint64{b}
	}}
	exec(t, s, isa.NewWrite(isa.Row(0), 0), io, nil)
	exec(t, s, isa.NewWrite(isa.Row(1), 1), io, nil)
	exec(t, s, isa.NewAAP(isa.Row(0), isa.DCC0), nil, nil)
	exec(t, s, isa.NewAAP(isa.Row(1), isa.T1), nil, nil)
	exec(t, s, isa.NewAAP(isa.C0, isa.T2), nil, nil)
	exec(t, s, isa.NewAP(isa.DCC0N, isa.T1, isa.T2), nil, nil)
	want := ^a & b & 0xFFFF // only low bits matter here
	if got := s.Row(isa.T1)[0] & 0xFFFF; got != want {
		t.Errorf("~a&b = %#x, want %#x", got, want)
	}
}

func TestReadBack(t *testing.T) {
	s := NewSubarray(8, 64)
	var got []uint64
	io := &HostIO{
		WriteData: func(int) []uint64 { return []uint64{0xAB} },
		ReadSink:  func(tag int, data []uint64) { got = data },
	}
	exec(t, s, isa.NewWrite(isa.Row(3), 0), io, nil)
	exec(t, s, isa.NewRead(isa.Row(3), 7), io, nil)
	if got == nil || got[0] != 0xAB {
		t.Errorf("read back %v", got)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	s := NewSubarray(8, 64)
	sp := NewSpillStore()
	io := &HostIO{WriteData: func(int) []uint64 { return []uint64{0xCD} }}
	exec(t, s, isa.NewWrite(isa.Row(0), 0), io, nil)
	exec(t, s, isa.NewSpillOut(isa.Row(0), 5), nil, sp)
	// Clobber the row, then refill.
	exec(t, s, isa.NewAAP(isa.C0, isa.T0), nil, nil)
	exec(t, s, isa.NewAAP(isa.T0, isa.Row(0)), nil, nil)
	if s.Row(isa.Row(0))[0] != 0 {
		t.Fatal("clobber failed")
	}
	exec(t, s, isa.NewSpillIn(isa.Row(0), 5), nil, sp)
	if got := s.Row(isa.Row(0))[0]; got != 0xCD {
		t.Errorf("after refill = %#x, want 0xCD", got)
	}
}

func TestErrors(t *testing.T) {
	s := NewSubarray(4, 64)
	cases := []struct {
		name string
		op   isa.Op
		io   *HostIO
		want string
	}{
		{"uninit read", isa.NewAAP(isa.Row(2), isa.T0), nil, "uninitialized"},
		{"aap to const", isa.NewAAP(isa.C1, isa.C0), nil, "constant"},
		{"write no host", isa.NewWrite(isa.Row(0), 0), nil, "no host"},
		{"spill-in unwritten", isa.NewSpillIn(isa.Row(0), 1), nil, "unwritten"},
		{"row out of range", isa.NewAAP(isa.Row(99), isa.T0), nil, "beyond"},
	}
	for _, tc := range cases {
		err := s.Exec(&tc.op, tc.io, NewSpillStore())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRowInitWrongConstantRejected(t *testing.T) {
	s := NewSubarray(4, 64)
	op := isa.NewRowInit(isa.C0, 5)
	if err := s.Exec(&op, nil, nil); err == nil {
		t.Error("ROWINIT C0 with nonzero pattern accepted")
	}
}

func TestMachineRunAndTiming(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewMachine(MachineConfig{Geom: g, Arch: isa.Ambit, Lanes: 64})
	io := &HostIO{WriteData: func(tag int) []uint64 { return []uint64{uint64(tag)} }}
	stream := []dram.Placed{
		{Bank: 0, Subarray: 0, Op: isa.NewWrite(isa.Row(0), 1)},
		{Bank: 1, Subarray: 0, Op: isa.NewWrite(isa.Row(0), 2)},
		{Bank: 0, Subarray: 0, Op: isa.NewAAP(isa.Row(0), isa.T0)},
	}
	mk, err := m.Run(stream, io)
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 {
		t.Error("zero makespan")
	}
	if m.Sub(0, 0).Row(isa.T0)[0] != 1 {
		t.Error("bank 0 state wrong")
	}
	if m.Sub(1, 0).Row(isa.Row(0))[0] != 2 {
		t.Error("bank 1 state wrong")
	}
}

func TestMachineWithSSDChargesSpills(t *testing.T) {
	g := dram.DefaultGeometry()
	dev := ssd.New(ssd.DefaultConfig())
	m := NewMachine(MachineConfig{Geom: g, Arch: isa.Ambit, Lanes: 64, SSD: dev})
	io := &HostIO{WriteData: func(int) []uint64 { return []uint64{7} }}
	stream := []dram.Placed{
		{Bank: 0, Subarray: 0, Op: isa.NewWrite(isa.Row(0), 0)},
		{Bank: 0, Subarray: 0, Op: isa.NewSpillOut(isa.Row(0), 0)},
		{Bank: 0, Subarray: 0, Op: isa.NewSpillIn(isa.Row(1), 0)},
	}
	mk, err := m.Run(stream, io)
	if err != nil {
		t.Fatal(err)
	}
	if mk < ssd.DefaultConfig().ProgramLatencyNs {
		t.Errorf("makespan %.0f does not include SSD program latency", mk)
	}
	if dev.Stats().Programs == 0 || dev.Stats().Reads == 0 {
		t.Error("SSD not charged")
	}
	if m.Sub(0, 0).Row(isa.Row(1))[0] != 7 {
		t.Error("spill round trip lost data")
	}
}

func TestRunProgram(t *testing.T) {
	prog := &isa.Program{}
	prog.Append(
		isa.NewWrite(isa.Row(0), 0),
		isa.NewAAP(isa.Row(0), isa.T0),
		isa.NewRead(isa.Row(0), 1),
	)
	var out []uint64
	io := &HostIO{
		WriteData: func(int) []uint64 { return []uint64{0x55} },
		ReadSink:  func(tag int, data []uint64) { out = data },
	}
	mk, err := RunProgram(prog, isa.SIMDRAM, dram.DefaultGeometry(), 64, io)
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 || out == nil || out[0] != 0x55 {
		t.Errorf("mk=%f out=%v", mk, out)
	}
}

func TestFunctionalErrorAborts(t *testing.T) {
	m := NewMachine(MachineConfig{Geom: dram.DefaultGeometry(), Arch: isa.Ambit, Lanes: 64})
	stream := []dram.Placed{{Bank: 0, Subarray: 0, Op: isa.NewAAP(isa.Row(0), isa.T0)}}
	if _, err := m.Run(stream, nil); err == nil {
		t.Error("uninitialized read did not abort run")
	}
}
