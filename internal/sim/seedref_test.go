package sim

// This file carries a verbatim copy of the pre-arena (map-backed) Subarray
// implementation as a reference model, and drives randomized micro-op
// programs through reference, Exec, ExecDecoded and a Reset-reused
// subarray in lockstep, asserting byte-identical results, errors, ReadSink
// payloads and fault-hook call sequences. It is the golden equivalence
// suite for the zero-allocation rewrite: any drift in semantics — error
// text, error position, hook ordering, complement maintenance, the
// write-then-fail behavior of out-of-range rows — fails here.

import (
	"fmt"
	"math/rand"
	"testing"

	"chopper/internal/isa"
)

// seedSub is the map-backed Subarray exactly as it stood before the arena
// rewrite (commit 5e56f8e), with only the type names changed.
type seedSub struct {
	lanes int
	words int
	mask  uint64
	dRows int
	rows  map[isa.Row][]uint64

	hook  FaultHook
	opIdx int
}

type seedSpill struct {
	slots map[uint64][]uint64
}

func newSeedSub(dRows, lanes int) *seedSub {
	words := (lanes + 63) / 64
	mask := ^uint64(0)
	if r := lanes % 64; r != 0 {
		mask = (uint64(1) << uint(r)) - 1
	}
	s := &seedSub{lanes: lanes, words: words, mask: mask, dRows: dRows, rows: make(map[isa.Row][]uint64)}
	s.setRow(isa.C0, s.constRow(0))
	s.setRow(isa.C1, s.constRow(^uint64(0)))
	return s
}

func (s *seedSub) load(idx int, r isa.Row) ([]uint64, error) {
	row, err := s.getRow(r)
	if err != nil {
		return nil, err
	}
	if s.hook != nil {
		s.hook.BeforeLoad(idx, r, row, s.lanes)
	}
	return row, nil
}

func (s *seedSub) stored(idx int, r isa.Row) {
	if s.hook == nil {
		return
	}
	if row, ok := s.rows[r]; ok {
		s.hook.AfterStore(idx, r, row, s.lanes)
	}
}

func (s *seedSub) constRow(pattern uint64) []uint64 {
	row := make([]uint64, s.words)
	for i := range row {
		row[i] = pattern
	}
	row[s.words-1] &= s.mask
	return row
}

func (s *seedSub) getRow(r isa.Row) ([]uint64, error) {
	if r.IsDGroup() && int(r) >= s.dRows {
		return nil, fmt.Errorf("sim: row %s beyond D-group size %d", r, s.dRows)
	}
	row, ok := s.rows[r]
	if !ok {
		return nil, fmt.Errorf("sim: read of uninitialized row %s", r)
	}
	return row, nil
}

func (s *seedSub) setRow(r isa.Row, data []uint64) {
	dst, ok := s.rows[r]
	if !ok {
		dst = make([]uint64, s.words)
		s.rows[r] = dst
	}
	copy(dst, data)
	dst[s.words-1] &= s.mask
	if comp := r.Complement(); comp != isa.RowNone {
		cdst, ok := s.rows[comp]
		if !ok {
			cdst = make([]uint64, s.words)
			s.rows[comp] = cdst
		}
		for i := range cdst {
			cdst[i] = ^dst[i]
		}
		cdst[s.words-1] &= s.mask
	}
}

func (s *seedSub) row(r isa.Row) []uint64 {
	row, ok := s.rows[r]
	if !ok {
		return nil
	}
	out := make([]uint64, len(row))
	copy(out, row)
	return out
}

func (s *seedSub) exec(op *isa.Op, io *HostIO, spill *seedSpill) error {
	idx := s.opIdx
	s.opIdx++
	switch op.Kind {
	case isa.OpRowInit:
		if op.Dst[0].IsCGroup() {
			want := uint64(0)
			if op.Dst[0] == isa.C1 {
				want = ^uint64(0)
			}
			if op.Imm != want {
				return fmt.Errorf("sim: ROWINIT %s with wrong pattern %#x", op.Dst[0], op.Imm)
			}
		}
		s.setRow(op.Dst[0], s.constRow(op.Imm))
		return nil
	case isa.OpAAP:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		tmp := make([]uint64, s.words)
		copy(tmp, src)
		if s.hook != nil {
			s.hook.AfterCopy(idx, tmp, s.lanes)
		}
		for _, d := range op.Dsts() {
			if d.IsCGroup() {
				return fmt.Errorf("sim: AAP into constant row %s", d)
			}
			s.setRow(d, tmp)
			s.stored(idx, d)
		}
		return nil
	case isa.OpAP:
		a, err := s.load(idx, op.Dst[0])
		if err != nil {
			return err
		}
		b, err := s.load(idx, op.Dst[1])
		if err != nil {
			return err
		}
		c, err := s.load(idx, op.Dst[2])
		if err != nil {
			return err
		}
		res := make([]uint64, s.words)
		for i := range res {
			res[i] = (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
		}
		if s.hook != nil {
			s.hook.AfterCompute(idx, res, s.lanes)
		}
		for _, d := range op.Dst {
			s.setRow(d, res)
			s.stored(idx, d)
		}
		return nil
	case isa.OpWrite:
		if io == nil || io.WriteData == nil {
			return fmt.Errorf("sim: WRITE with no host data source (tag %d)", op.Tag)
		}
		data := io.WriteData(op.Tag)
		if data == nil {
			return fmt.Errorf("sim: host has no data for WRITE tag %d", op.Tag)
		}
		if op.Dst[0].IsCGroup() {
			return fmt.Errorf("sim: WRITE into constant row %s", op.Dst[0])
		}
		s.setRow(op.Dst[0], data)
		s.stored(idx, op.Dst[0])
		return nil
	case isa.OpRead:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		if io == nil || io.ReadSink == nil {
			return fmt.Errorf("sim: READ with no host sink (tag %d)", op.Tag)
		}
		out := make([]uint64, s.words)
		copy(out, src)
		io.ReadSink(op.Tag, out)
		return nil
	case isa.OpSpillOut:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		saved := make([]uint64, s.words)
		copy(saved, src)
		spill.slots[op.Imm] = saved
		return nil
	case isa.OpSpillIn:
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		data, ok := spill.slots[op.Imm]
		if !ok {
			return fmt.Errorf("sim: SPILL_IN of unwritten slot %d", op.Imm)
		}
		s.setRow(op.Dst[0], data)
		s.stored(idx, op.Dst[0])
		return nil
	}
	return fmt.Errorf("sim: unknown op kind %d", int(op.Kind))
}

// traceHook records every fault-hook invocation (kind, op index, row, a
// hash of the payload) and deterministically perturbs some payloads, so a
// divergence in hook ordering, arguments or mutation handling between the
// implementations shows up as a trace mismatch or a row mismatch.
type traceHook struct {
	events []string
	n      int
}

func hashRow(data []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range data {
		h = (h ^ w) * 1099511628211
	}
	return h
}

func (h *traceHook) record(kind string, opIdx int, r isa.Row, data []uint64, lanes int) {
	h.events = append(h.events, fmt.Sprintf("%s op%d %v %x l%d", kind, opIdx, r, hashRow(data), lanes))
}

func (h *traceHook) perturb(data []uint64, lanes int) {
	h.n++
	if h.n%5 == 0 {
		lane := (h.n * 13) % lanes
		data[lane/64] ^= 1 << uint(lane%64)
	}
}

func (h *traceHook) BeforeLoad(opIdx int, r isa.Row, data []uint64, lanes int) {
	h.record("load", opIdx, r, data, lanes)
}
func (h *traceHook) AfterCompute(opIdx int, data []uint64, lanes int) {
	h.record("compute", opIdx, isa.RowNone, data, lanes)
	h.perturb(data, lanes)
}
func (h *traceHook) AfterCopy(opIdx int, data []uint64, lanes int) {
	h.record("copy", opIdx, isa.RowNone, data, lanes)
	h.perturb(data, lanes)
}
func (h *traceHook) AfterStore(opIdx int, r isa.Row, data []uint64, lanes int) {
	h.record("store", opIdx, r, data, lanes)
}

// genProgram produces a randomized program mixing valid ops with edge
// cases: AAP into DCC pairs (complement maintenance), C-group ROWINIT
// re-inits (correct and wrong patterns), out-of-range D rows, reads of
// possibly-uninitialized rows, spill round-trips and missing WRITE tags.
func genProgram(rng *rand.Rand, nOps, dRows int) *isa.Program {
	p := &isa.Program{DRowsUsed: dRows, SpillSlots: 4}
	rows := []isa.Row{0, 1, 2, 3, 4, isa.Row(dRows - 1), isa.T0, isa.T1, isa.T2, isa.T3, isa.DCC0, isa.DCC0N, isa.DCC1, isa.DCC1N}
	// Prologue: initialize most of the row pool (and one spill slot) so the
	// random body mixes deep successful runs with occasional error ops.
	for _, r := range rows {
		if rng.Intn(4) != 0 {
			p.Ops = append(p.Ops, isa.NewWrite(r, rng.Intn(5)))
		}
	}
	p.Ops = append(p.Ops, isa.NewSpillOut(rows[rng.Intn(len(rows))], uint64(rng.Intn(4))))
	pick := func() isa.Row { return rows[rng.Intn(len(rows))] }
	anyRow := func() isa.Row {
		switch rng.Intn(10) {
		case 0:
			return isa.Row(dRows + rng.Intn(3)) // beyond D-group: read errors
		case 1:
			return isa.C0
		case 2:
			return isa.C1
		default:
			return pick()
		}
	}
	for i := 0; i < nOps; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			dsts := []isa.Row{anyRow()}
			if rng.Intn(3) == 0 {
				dsts = append(dsts, anyRow())
			}
			p.Ops = append(p.Ops, isa.NewAAP(anyRow(), dsts...))
		case 3, 4:
			p.Ops = append(p.Ops, isa.NewAP(pick(), pick(), pick()))
		case 5, 6:
			p.Ops = append(p.Ops, isa.NewWrite(anyRow(), rng.Intn(6)))
		case 7, 8:
			p.Ops = append(p.Ops, isa.NewRead(anyRow(), rng.Intn(4)))
		case 9:
			p.Ops = append(p.Ops, isa.NewSpillOut(pick(), uint64(rng.Intn(4))))
		case 10:
			p.Ops = append(p.Ops, isa.NewSpillIn(pick(), uint64(rng.Intn(4))))
		default:
			switch rng.Intn(5) {
			case 0:
				p.Ops = append(p.Ops, isa.NewRowInit(isa.C0, 0)) // redundant re-init: skip path
			case 1:
				p.Ops = append(p.Ops, isa.NewRowInit(isa.C1, ^uint64(0)))
			case 2:
				p.Ops = append(p.Ops, isa.NewRowInit(isa.C1, 7)) // wrong pattern: must error
			default:
				pat := rng.Uint64()
				p.Ops = append(p.Ops, isa.NewRowInit(pick(), pat))
			}
		}
	}
	return p
}

// testIO returns a HostIO whose WRITE payloads are deterministic in (tag)
// and whose READ payloads are captured (copied) per call; tag 5 has no
// data, exercising the missing-tag error on both paths.
func testIO(words int, seed uint64, reads *[]string) *HostIO {
	return &HostIO{
		WriteData: func(tag int) []uint64 {
			if tag == 5 {
				return nil
			}
			row := make([]uint64, words)
			for i := range row {
				row[i] = seed*1099511628211 ^ uint64(tag)<<32 ^ uint64(i)*0x9e3779b97f4a7c15
			}
			return row
		},
		ReadSink: func(tag int, data []uint64) {
			*reads = append(*reads, fmt.Sprintf("tag%d %x", tag, hashRow(data)))
		},
	}
}

// runSeedRef executes prog on the seed reference, returning per-op errors
// ("" for success), ReadSink captures, hook trace and final row contents.
func runSeedRef(prog *isa.Program, dRows, lanes int) ([]string, []string, []string, map[isa.Row][]uint64) {
	s := newSeedSub(dRows, lanes)
	h := &traceHook{}
	s.hook = h
	var reads []string
	io := testIO(s.words, 42, &reads)
	spill := &seedSpill{slots: make(map[uint64][]uint64)}
	// Execution continues past per-op errors: the subarray stays in a
	// well-defined state after a failed op (the seed behaved the same way),
	// so comparing the full per-op error sequence checks both the success
	// and the error paths deeply instead of stopping at the first failure.
	errs := make([]string, 0, len(prog.Ops))
	for i := range prog.Ops {
		if err := s.exec(&prog.Ops[i], io, spill); err != nil {
			errs = append(errs, err.Error())
		} else {
			errs = append(errs, "")
		}
	}
	final := make(map[isa.Row][]uint64)
	for _, r := range interestingRows(prog) {
		final[r] = s.row(r)
	}
	return errs, reads, h.events, final
}

// interestingRows lists every row a program mentions plus the special rows.
func interestingRows(prog *isa.Program) []isa.Row {
	seen := map[isa.Row]bool{}
	var out []isa.Row
	add := func(r isa.Row) {
		if r != isa.RowNone && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for i := range prog.Ops {
		add(prog.Ops[i].Src)
		for _, d := range prog.Ops[i].Dst {
			add(d)
		}
	}
	for _, r := range []isa.Row{isa.C0, isa.C1, isa.DCC0, isa.DCC0N, isa.DCC1, isa.DCC1N} {
		add(r)
	}
	return out
}

type execMode int

const (
	modeExec execMode = iota
	modeDecoded
	modeReused // Configure/Reset-recycled subarray, decoded dispatch
)

func (m execMode) String() string {
	return [...]string{"Exec", "ExecDecoded", "ReusedDecoded"}[m]
}

// runNew executes prog on the arena-backed implementation in the given
// dispatch mode, producing the same observables as runSeedRef.
func runNew(t *testing.T, prog *isa.Program, dRows, lanes int, mode execMode, recycled *Subarray) ([]string, []string, []string, map[isa.Row][]uint64) {
	t.Helper()
	var s *Subarray
	if mode == modeReused && recycled != nil {
		recycled.Configure(dRows, lanes)
		s = recycled
	} else {
		s = NewSubarray(dRows, lanes)
	}
	h := &traceHook{}
	s.SetFaultHook(h)
	var reads []string
	io := testIO(s.words, 42, &reads)
	spill := NewSpillStore()
	var d *Decoded
	if mode != modeExec {
		d = Decode(prog)
	}
	errs := make([]string, 0, len(prog.Ops))
	for i := range prog.Ops {
		var err error
		if mode == modeExec {
			err = s.Exec(&prog.Ops[i], io, spill)
		} else {
			err = s.ExecDecoded(d, i, io, spill)
		}
		if err != nil {
			errs = append(errs, err.Error())
		} else {
			errs = append(errs, "")
		}
	}
	final := make(map[isa.Row][]uint64)
	for _, r := range interestingRows(prog) {
		final[r] = s.Row(r)
	}
	return errs, reads, h.events, final
}

var equivalenceLanes = []int{1, 63, 64, 65, 128}

// TestSeedEquivalence is the golden suite: randomized programs through the
// seed reference and all three new dispatch paths must agree on every
// observable. The reused-subarray mode recycles one Subarray across all
// programs and lane widths, proving Reset/Configure leak no state.
func TestSeedEquivalence(t *testing.T) {
	recycled := NewSubarray(8, 32) // deliberately mismatched initial shape
	for progSeed := int64(0); progSeed < 12; progSeed++ {
		rng := rand.New(rand.NewSource(progSeed))
		dRows := 8 + rng.Intn(8)
		prog := genProgram(rng, 80+rng.Intn(80), dRows)
		for _, lanes := range equivalenceLanes {
			wantErrs, wantReads, wantTrace, wantRows := runSeedRef(prog, dRows, lanes)
			for _, mode := range []execMode{modeExec, modeDecoded, modeReused} {
				name := fmt.Sprintf("seed%d/lanes%d/%v", progSeed, lanes, mode)
				gotErrs, gotReads, gotTrace, gotRows := runNew(t, prog, dRows, lanes, mode, recycled)
				if !eqStrings(wantErrs, gotErrs) {
					t.Fatalf("%s: error sequence diverged\nseed: %q\nnew:  %q", name, wantErrs, gotErrs)
				}
				if !eqStrings(wantReads, gotReads) {
					t.Fatalf("%s: ReadSink payloads diverged\nseed: %q\nnew:  %q", name, wantReads, gotReads)
				}
				if !eqStrings(wantTrace, gotTrace) {
					t.Fatalf("%s: fault-hook sequence diverged (%d vs %d events)\nseed: %q\nnew:  %q",
						name, len(wantTrace), len(gotTrace), wantTrace, gotTrace)
				}
				for r, want := range wantRows {
					got := gotRows[r]
					if !eqWords(want, got) {
						t.Fatalf("%s: row %v diverged\nseed: %x\nnew:  %x", name, r, want, got)
					}
				}
			}
		}
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqWords(a, b []uint64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeedEquivalenceOverflowRows pins the historical behavior for rows
// outside the dense range: stores to D rows beyond dRows succeed silently
// (they land in the overflow store) and only reads fail, with the same
// error text.
func TestSeedEquivalenceOverflowRows(t *testing.T) {
	prog := &isa.Program{DRowsUsed: 4, Ops: []isa.Op{
		isa.NewWrite(isa.Row(99), 0), // silently stored beyond dRows
		isa.NewWrite(isa.Row(0), 1),
		isa.NewAAP(isa.Row(0), isa.Row(50)), // also beyond dRows
		isa.NewRead(isa.Row(99), 0),         // must error: beyond D-group
	}}
	for _, lanes := range equivalenceLanes {
		wantErrs, wantReads, wantTrace, wantRows := runSeedRef(prog, 4, lanes)
		for _, mode := range []execMode{modeExec, modeDecoded} {
			gotErrs, gotReads, gotTrace, gotRows := runNew(t, prog, 4, lanes, mode, nil)
			if !eqStrings(wantErrs, gotErrs) || !eqStrings(wantReads, gotReads) || !eqStrings(wantTrace, gotTrace) {
				t.Fatalf("lanes %d %v: diverged\nseed: %q %q %q\nnew:  %q %q %q",
					lanes, mode, wantErrs, wantReads, wantTrace, gotErrs, gotReads, gotTrace)
			}
			for r, want := range wantRows {
				if !eqWords(want, gotRows[r]) {
					t.Fatalf("lanes %d %v: row %v diverged", lanes, mode, r)
				}
			}
		}
	}
}
