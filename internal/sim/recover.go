// Epoch-recovery execution: the simulator's detect-and-recover runtime.
//
// A recovered run splits the program into epochs at scheduler-chosen cut
// points (isa.Program.EpochMarks, with a fixed-stride fallback), snapshots
// the subarray and spill state at each boundary into a pooled checkpoint,
// runs a cheap online detector at the end of every epoch, and on a
// detector mismatch rolls back, scrubs retention state, applies a
// deterministic exponential backoff, and replays the epoch under a salted
// fault draw — at most MaxRetries extra times. Every replayed micro-op is
// charged to the same guard.Budget dimensions as first-try execution, so
// recovery can never loop past a deadline or budget.
//
// Two detectors are provided, with complementary blind spots:
//
//   - parity: a per-row parity bit recorded at store time and re-derived
//     at sense time plus an end-of-epoch sweep. Near-zero overhead. It
//     catches storage faults (stuck bitlines, retention decay) but NOT
//     compute faults: a TRA upset or AAP corruption happens before the
//     store records its parity, so the recorded bit matches the corrupted
//     data.
//   - vote: the epoch is executed at least twice from the checkpoint,
//     each attempt under an independent fault draw, and commits when two
//     attempts agree on a digest of the functional state. Roughly 2x the
//     micro-ops — epoch-granular recompute redundancy, cheaper than
//     whole-kernel TMR's ~3x — and it catches transient compute faults.
//     Permanent defects corrupt every attempt identically, so vote cannot
//     see them (and no replay policy can fix them); parity at least
//     detects them.
package sim

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"

	"chopper/internal/guard"
	"chopper/internal/isa"
)

// DetectorKind selects the online error detector of a recovered run.
type DetectorKind int

const (
	// DetectNone disables recovery (RunRecoveredCtx degenerates to
	// RunDecodedCtx).
	DetectNone DetectorKind = iota
	// DetectParity arms per-row parity tracking with an end-of-epoch sweep.
	DetectParity
	// DetectVote re-executes each epoch until two attempts agree on a
	// functional-state digest.
	DetectVote
)

// RecoveryPolicy parameterizes a recovered run. The zero value disables
// recovery.
type RecoveryPolicy struct {
	// Detector selects the online detector.
	Detector DetectorKind
	// EpochUops is the target epoch length in micro-ops; cut points snap
	// forward to the next scheduler mark. <= 0 means 256.
	EpochUops int
	// MaxRetries bounds the re-executions of one epoch beyond the
	// detector's minimum (parity executes an epoch at least once, vote at
	// least twice). When retries are exhausted the run accepts the last
	// attempt's state and counts the epoch as uncorrected instead of
	// failing — permanent defects would otherwise wedge every run.
	MaxRetries int
	// BackoffNs is the base host stall charged before a retry that follows
	// a detection, doubling with each further detection in the same epoch
	// (deterministic exponential backoff, surfaced as EngineStats.StallNs).
	BackoffNs float64
}

// RecoveryStats counts what the recovery layer did during one run.
type RecoveryStats struct {
	// Epochs is the number of epochs committed.
	Epochs int
	// Detections counts detector mismatches (a parity epoch check that
	// found corrupted rows; a vote digest comparison that disagreed).
	Detections int
	// Retries counts re-executions triggered by a detection (the vote
	// detector's mandatory redundant execution is not a retry).
	Retries int
	// Corrected counts epochs that saw at least one detection and still
	// committed a state the detector accepted.
	Corrected int
	// Uncorrected counts epochs that exhausted their retry budget and
	// accepted a state the detector still rejected (e.g. permanent
	// stuck-at defects, which every replay re-corrupts identically).
	Uncorrected int
	// WastedUops counts micro-ops executed in attempts that were rolled
	// back — for the vote detector this includes the mandatory redundant
	// execution, which is the detector's price.
	WastedUops int
	// WastedCommands counts the DRAM commands those rolled-back attempts
	// issued (they still occupied the device and appear in the makespan).
	WastedCommands int
	// DetectorCommands counts the synthetic commands charged for detector
	// checks themselves (one AAP + one AP per epoch check).
	DetectorCommands int
	// ScrubbedRows totals the rows refreshed by retention scrub passes run
	// before fault-retry attempts.
	ScrubbedRows int
	// CheckpointBytes is the largest epoch snapshot taken (arena, bitmaps,
	// overflow rows and live spill slots).
	CheckpointBytes int64
}

// Add accumulates other into r (CheckpointBytes keeps the maximum).
func (r *RecoveryStats) Add(other RecoveryStats) {
	r.Epochs += other.Epochs
	r.Detections += other.Detections
	r.Retries += other.Retries
	r.Corrected += other.Corrected
	r.Uncorrected += other.Uncorrected
	r.WastedUops += other.WastedUops
	r.WastedCommands += other.WastedCommands
	r.DetectorCommands += other.DetectorCommands
	r.ScrubbedRows += other.ScrubbedRows
	if other.CheckpointBytes > r.CheckpointBytes {
		r.CheckpointBytes = other.CheckpointBytes
	}
}

// EpochHook extends FaultHook with epoch checkpoint/rollback cooperation.
// A fault model that implements it is snapshotted and restored alongside
// the subarray, and its transient draws are re-salted per retry attempt;
// fault.Injector is the canonical implementation. A FaultHook that does
// not implement EpochHook still works under recovery, but replays then
// re-observe whatever the hook does statefully.
type EpochHook interface {
	FaultHook
	// EpochCheckpoint snapshots the hook's state at an epoch boundary.
	EpochCheckpoint()
	// EpochRestore rewinds to the last checkpoint and arms retry attempt
	// `attempt` (0 reproduces the original draw; n > 0 salts it).
	EpochRestore(attempt int)
	// Scrub models a retention scrub pass at opIdx and returns the number
	// of rows refreshed.
	Scrub(opIdx int) int
}

// extraRow is one overflow-map row captured in a checkpoint.
type extraRow struct {
	r    isa.Row
	data []uint64
}

// savedSlot is one live spill slot captured in a checkpoint.
type savedSlot struct {
	slot uint64
	data []uint64
}

// checkpoint is a functional snapshot of one subarray + spill store at an
// epoch boundary. All storage is reused across epochs and runs (see
// recoverScratch), so steady-state snapshots allocate nothing.
type checkpoint struct {
	arena    []uint64
	present  []uint64
	parity   []uint64
	physRows int
	opIdx    int
	cDirty   bool
	parBad   int

	extraRows  []extraRow
	spillSlots []savedSlot
}

func (c *checkpoint) bytes() int64 {
	n := int64(len(c.arena)+len(c.present)+len(c.parity)) * 8
	for i := range c.extraRows {
		n += int64(len(c.extraRows[i].data))*8 + 8
	}
	for i := range c.spillSlots {
		n += int64(len(c.spillSlots[i].data))*8 + 8
	}
	return n
}

// snapshot captures the subarray's functional state into c.
func (s *Subarray) snapshot(c *checkpoint) {
	c.arena = append(c.arena[:0], s.arena...)
	c.present = append(c.present[:0], s.present...)
	if s.parTrack {
		c.parity = append(c.parity[:0], s.parity...)
	} else {
		c.parity = c.parity[:0]
	}
	c.physRows = s.physRows
	c.opIdx = s.opIdx
	c.cDirty = s.cDirty
	c.parBad = s.parBad
	n := 0
	for r, data := range s.extra {
		if n < len(c.extraRows) {
			er := &c.extraRows[n]
			er.r = r
			er.data = append(er.data[:0], data...)
		} else {
			c.extraRows = append(c.extraRows, extraRow{r: r, data: append([]uint64(nil), data...)})
		}
		n++
	}
	c.extraRows = c.extraRows[:n]
}

// restore rewinds the subarray to the snapshot in c. The arena may have
// grown since the snapshot; restoring slices it back down (capacity is
// kept, so the regrowth on replay allocates nothing).
func (s *Subarray) restore(c *checkpoint) {
	s.arena = s.arena[:len(c.arena)]
	copy(s.arena, c.arena)
	copy(s.present, c.present)
	if s.parTrack {
		copy(s.parity, c.parity)
	}
	s.physRows = c.physRows
	s.opIdx = c.opIdx
	s.cDirty = c.cDirty
	s.parBad = c.parBad
	if s.extra != nil {
		clear(s.extra)
	}
	for i := range c.extraRows {
		er := &c.extraRows[i]
		if s.extra == nil {
			s.extra = make(map[isa.Row][]uint64)
		}
		dst := make([]uint64, len(er.data))
		copy(dst, er.data)
		s.extra[er.r] = dst
	}
}

// snapshot captures the store's live slots into c.
func (sp *SpillStore) snapshot(c *checkpoint) {
	n := 0
	for id, sl := range sp.slots {
		if !sl.live {
			continue
		}
		if n < len(c.spillSlots) {
			sv := &c.spillSlots[n]
			sv.slot = id
			sv.data = append(sv.data[:0], sl.data...)
		} else {
			c.spillSlots = append(c.spillSlots, savedSlot{slot: id, data: append([]uint64(nil), sl.data...)})
		}
		n++
	}
	c.spillSlots = c.spillSlots[:n]
}

// restore rewinds the store to the snapshot in c (slot buffers are
// reused via put).
func (sp *SpillStore) restore(c *checkpoint) {
	sp.Reset()
	for i := range c.spillSlots {
		sv := &c.spillSlots[i]
		sp.put(sv.slot, sv.data, len(sv.data))
	}
}

// epochIO buffers READ payloads during an epoch and releases them to the
// real sink only when the epoch commits, which is what makes every op
// index a legal cut point: a rolled-back attempt's host-visible output
// simply never happened. The sink contract (payload valid only during the
// call) is preserved because the buffer copies.
type epochIO struct {
	inner   *HostIO
	io      HostIO // the adapter handed to the executor
	tags    []int32
	offs    []int32 // start offset of each buffered payload
	payload []uint64
}

func (b *epochIO) init(inner *HostIO) {
	b.inner = inner
	b.clear()
	b.io = HostIO{}
	if inner != nil {
		b.io.WriteData = inner.WriteData
		if inner.ReadSink != nil {
			// Only buffer when a sink exists: a READ with no sink must keep
			// failing exactly like it does without recovery.
			b.io.ReadSink = b.buffer
		}
	}
}

func (b *epochIO) buffer(tag int, data []uint64) {
	b.tags = append(b.tags, int32(tag))
	b.offs = append(b.offs, int32(len(b.payload)))
	b.payload = append(b.payload, data...)
}

func (b *epochIO) clear() {
	b.tags = b.tags[:0]
	b.offs = b.offs[:0]
	b.payload = b.payload[:0]
}

// flush releases the committed epoch's buffered reads to the real sink in
// program order.
func (b *epochIO) flush() {
	for i, tag := range b.tags {
		start := int(b.offs[i])
		end := len(b.payload)
		if i+1 < len(b.offs) {
			end = int(b.offs[i+1])
		}
		b.inner.ReadSink(int(tag), b.payload[start:end])
	}
	b.clear()
}

// recoverScratch is the pooled per-run working set of a recovered run: the
// epoch checkpoint, the read buffer, the digest history and the sort
// scratch. One checkout per run; zero allocation across epochs once warm.
type recoverScratch struct {
	ck      checkpoint
	eio     epochIO
	digests []uint64
	rowKeys []int64
	slotIDs []uint64
}

var recoverPool = sync.Pool{New: func() any { return new(recoverScratch) }}

// mix64 is the splitmix64 finalizer (the digest's word mixer).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// digestState hashes the complete functional state an epoch leaves behind:
// every stored dense row (by slot), overflow rows (sorted), live spill
// slots (sorted), the C-dirty flag and the epoch's buffered host reads.
// Two attempts that produce the same digest are functionally
// interchangeable; the vote detector commits on the first agreement.
func (sc *recoverScratch) digestState(s *Subarray, sp *SpillStore) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	word := func(x uint64) {
		h = mix64(h ^ x)
	}
	if s.cDirty {
		word(1)
	}
	n := s.allocRows()
	for idx := 0; idx < n; idx++ {
		if !s.isPresent(idx) {
			continue
		}
		word(uint64(idx) | 1<<32)
		for _, w := range s.rowData(idx) {
			word(w)
		}
	}
	if len(s.extra) > 0 {
		sc.rowKeys = sc.rowKeys[:0]
		for r := range s.extra {
			sc.rowKeys = append(sc.rowKeys, int64(r))
		}
		slices.Sort(sc.rowKeys)
		for _, r := range sc.rowKeys {
			word(uint64(r) | 2<<32)
			for _, w := range s.extra[isa.Row(r)] {
				word(w)
			}
		}
	}
	sc.slotIDs = sc.slotIDs[:0]
	for id, sl := range sp.slots {
		if sl.live {
			sc.slotIDs = append(sc.slotIDs, id)
		}
	}
	if len(sc.slotIDs) > 0 {
		slices.Sort(sc.slotIDs)
		for _, id := range sc.slotIDs {
			word(id | 3<<32)
			for _, w := range sp.slots[id].data {
				word(w)
			}
		}
	}
	for i, tag := range sc.eio.tags {
		word(uint64(uint32(tag)) | 4<<32)
		start := int(sc.eio.offs[i])
		end := len(sc.eio.payload)
		if i+1 < len(sc.eio.offs) {
			end = int(sc.eio.offs[i+1])
		}
		for _, w := range sc.eio.payload[start:end] {
			word(w)
		}
	}
	return h
}

// RunRecoveredCtx executes a decoded single-subarray program under the
// detect-and-recover policy pol: epoch checkpoints, an online detector per
// epoch, and bounded rollback/scrub/backoff/replay on mismatch. It is
// RunDecodedCtx plus the recovery layer — with DetectNone it IS
// RunDecodedCtx — and observes the same guard contract: ctx every 256
// executed ops, b.MaxSimSteps/b.MaxDRAMCommands checked before every op
// (replays and detector checks included, so recovery is always bounded by
// the run's budget and deadline).
//
// Epoch cut points come from the program's EpochMarks (snapping the target
// stride forward to a gate boundary); programs without marks fall back to
// fixed-stride cuts. On exhausted retries the run accepts the last
// attempt's state and counts the epoch in RecoveryStats.Uncorrected —
// graceful degradation, mirroring the compile-time ladder.
func (m *Machine) RunRecoveredCtx(ctx context.Context, d *Decoded, bank, sub int, io *HostIO, b guard.Budget, pol RecoveryPolicy) (float64, RecoveryStats, error) {
	var rs RecoveryStats
	if pol.Detector == DetectNone {
		t, err := m.RunDecodedCtx(ctx, d, bank, sub, io, b)
		return t, rs, err
	}
	if pol.EpochUops <= 0 {
		pol.EpochUops = 256
	}
	if pol.MaxRetries < 0 {
		pol.MaxRetries = 0
	}

	s := m.Sub(bank, sub)
	spill := m.spillAt(bank, sub)
	eng := m.engine
	effIO := io
	if io != nil && (io.WriteDataAt != nil || io.ReadSinkAt != nil) {
		effIO = adapterIO(io, bank, sub)
	}

	sc := recoverPool.Get().(*recoverScratch)
	defer recoverPool.Put(sc)
	sc.eio.init(effIO)
	runIO := &sc.eio.io
	if effIO == nil {
		runIO = nil
	}

	eh, _ := s.hook.(EpochHook)
	if pol.Detector == DetectParity {
		s.SetParityTracking(true)
	}
	fin := func(err error) (float64, RecoveryStats, error) {
		if pol.Detector == DetectParity {
			s.SetParityTracking(false)
		}
		return eng.Makespan(), rs, err
	}

	// Global guard counters: they keep counting across rollbacks, so
	// wasted replay work is charged to the same budget dimensions as
	// first-try work and recovery cannot loop past a budget.
	steps, cmds := 0, 0
	execSpan := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if steps&255 == 0 {
				if err := guard.Ctx(ctx); err != nil {
					return err
				}
			}
			if err := guard.Check(guard.DimSimSteps, b.MaxSimSteps, steps+1); err != nil {
				return err
			}
			if err := guard.Check(guard.DimDRAMCommands, b.MaxDRAMCommands, cmds+1); err != nil {
				return err
			}
			if err := s.ExecDecoded(d, i, runIO, spill); err != nil {
				return fmt.Errorf("op %d at bank %d sub %d: %w", i, bank, sub, err)
			}
			eng.IssueOp(bank, sub, d.ops[i].kind, d.ops[i].imm)
			steps++
			cmds++
		}
		return nil
	}
	// chargeDetector accounts the detector check itself: one AAP (fold the
	// checked rows into the checksum row) and one AP (majority-compare),
	// issued to the timing engine so detector overhead shows up in the
	// makespan and the command budget.
	chargeDetector := func() error {
		for j := 0; j < 2; j++ {
			if err := guard.Check(guard.DimDRAMCommands, b.MaxDRAMCommands, cmds+1); err != nil {
				return err
			}
			kind := isa.OpAAP
			if j == 1 {
				kind = isa.OpAP
			}
			eng.IssueOp(bank, sub, kind, 0)
			cmds++
			rs.DetectorCommands++
		}
		return nil
	}

	marks := d.prog.EpochMarks
	nextCut := func(start int) int {
		target := start + pol.EpochUops
		if target >= len(d.ops) {
			return len(d.ops)
		}
		if len(marks) > 0 {
			if i := sort.SearchInts(marks, target); i < len(marks) {
				return marks[i]
			}
			return len(d.ops)
		}
		return target
	}

	maxAttempts := 1 + pol.MaxRetries
	if pol.Detector == DetectVote {
		maxAttempts = 2 + pol.MaxRetries
	}
	for start := 0; start < len(d.ops); {
		end := nextCut(start)
		s.snapshot(&sc.ck)
		spill.snapshot(&sc.ck)
		if eh != nil {
			eh.EpochCheckpoint()
		}
		if cb := sc.ck.bytes(); cb > rs.CheckpointBytes {
			rs.CheckpointBytes = cb
		}
		sc.digests = sc.digests[:0]
		detections := 0
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				rs.WastedUops += end - start
				rs.WastedCommands += end - start
				s.restore(&sc.ck)
				spill.restore(&sc.ck)
				sc.eio.clear()
				if eh != nil {
					eh.EpochRestore(attempt)
					if detections > 0 {
						rs.ScrubbedRows += eh.Scrub(s.opIdx)
					}
				}
				if detections > 0 {
					rs.Retries++
					if pol.BackoffNs > 0 {
						sh := detections - 1
						if sh > 20 {
							sh = 20
						}
						eng.Stall(pol.BackoffNs * float64(uint64(1)<<uint(sh)))
					}
				}
				if err := guard.Ctx(ctx); err != nil {
					return fin(err)
				}
			}
			if err := execSpan(start, end); err != nil {
				return fin(err)
			}
			commit := false
			switch pol.Detector {
			case DetectParity:
				s.ParitySweep()
				if err := chargeDetector(); err != nil {
					return fin(err)
				}
				if s.ParityMismatches() == 0 {
					commit = true
				} else {
					rs.Detections++
					detections++
				}
			case DetectVote:
				dg := sc.digestState(s, spill)
				if err := chargeDetector(); err != nil {
					return fin(err)
				}
				if slices.Contains(sc.digests, dg) {
					commit = true
				} else {
					if len(sc.digests) > 0 {
						rs.Detections++
						detections++
					}
					sc.digests = append(sc.digests, dg)
				}
			}
			if commit {
				if detections > 0 {
					rs.Corrected++
				}
				break
			}
			if attempt == maxAttempts-1 {
				rs.Uncorrected++
				break
			}
		}
		rs.Epochs++
		sc.eio.flush()
		s.ClearParityMismatches()
		start = end
	}
	return fin(nil)
}
