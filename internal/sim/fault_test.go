package sim

import (
	"testing"

	"chopper/internal/dram"
	"chopper/internal/fault"
	"chopper/internal/isa"
)

// recordingHook logs every hook invocation without perturbing anything.
type recordingHook struct {
	loads, computes, copies, stores int
	lastOp                          int
}

func (h *recordingHook) BeforeLoad(opIdx int, r isa.Row, data []uint64, lanes int) {
	h.loads++
	h.lastOp = opIdx
}
func (h *recordingHook) AfterCompute(opIdx int, data []uint64, lanes int) { h.computes++ }
func (h *recordingHook) AfterCopy(opIdx int, data []uint64, lanes int)    { h.copies++ }
func (h *recordingHook) AfterStore(opIdx int, r isa.Row, data []uint64, lanes int) {
	h.stores++
}

// andProgram computes AND(D0, D1) into a READ: WRITE a->D0; WRITE b->D1;
// AAP D0->T0; AAP D1->T1; AAP C0->T2; AP; READ T0.
func andProgram() *isa.Program {
	p := &isa.Program{DRowsUsed: 2}
	p.Append(
		isa.NewWrite(isa.Row(0), 0),
		isa.NewWrite(isa.Row(1), 1),
		isa.NewAAP(isa.Row(0), isa.T0),
		isa.NewAAP(isa.Row(1), isa.T1),
		isa.NewAAP(isa.C0, isa.T2),
		isa.NewAP(isa.T0, isa.T1, isa.T2),
		isa.NewRead(isa.T0, 0),
	)
	return p
}

func runAnd(t *testing.T, hook FaultHook) uint64 {
	t.Helper()
	const lanes = 64
	s := NewSubarray(8, lanes)
	if hook != nil {
		s.SetFaultHook(hook)
	}
	var out uint64
	io := &HostIO{
		WriteData: func(tag int) []uint64 {
			if tag == 0 {
				return []uint64{0xff00ff00ff00ff00}
			}
			return []uint64{0xffff0000ffff0000}
		},
		ReadSink: func(tag int, data []uint64) { out = data[0] },
	}
	spill := NewSpillStore()
	prog := andProgram()
	for i := range prog.Ops {
		if err := s.Exec(&prog.Ops[i], io, spill); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return out
}

func TestFaultHookInvocations(t *testing.T) {
	h := &recordingHook{}
	out := runAnd(t, h)
	want := uint64(0xff00ff00ff00ff00 & 0xffff0000ffff0000)
	if out != want {
		t.Fatalf("AND result %#x, want %#x (recording hook must not perturb)", out, want)
	}
	// 3 AAP loads + 3 AP loads + 1 READ load.
	if h.loads != 7 {
		t.Errorf("loads = %d, want 7", h.loads)
	}
	if h.computes != 1 {
		t.Errorf("computes = %d, want 1", h.computes)
	}
	if h.copies != 3 {
		t.Errorf("copies = %d, want 3", h.copies)
	}
	// 2 WRITE stores + 3 AAP stores + 3 AP stores.
	if h.stores != 8 {
		t.Errorf("stores = %d, want 8", h.stores)
	}
	if h.lastOp != 6 {
		t.Errorf("last op index = %d, want 6", h.lastOp)
	}
}

// A TRA fault model attached through the Machine factory corrupts exactly
// the seeded lane, reproducibly.
func TestMachineFaultFactoryDeterministic(t *testing.T) {
	cfg := fault.Config{TRAFlipRate: 1, MaxFaults: 1}
	run := func(seed int64) uint64 {
		m := NewMachine(MachineConfig{
			Geom:  dram.DefaultGeometry(),
			Arch:  isa.Ambit,
			Lanes: 64,
			Fault: func(bank, sub int) FaultHook { return fault.New(cfg, seed) },
		})
		var out uint64
		io := &HostIO{
			WriteData: func(tag int) []uint64 {
				if tag == 0 {
					return []uint64{^uint64(0)}
				}
				return []uint64{^uint64(0)}
			},
			ReadSink: func(tag int, data []uint64) { out = data[0] },
		}
		prog := andProgram()
		stream := make([]dram.Placed, len(prog.Ops))
		for i, op := range prog.Ops {
			stream[i] = dram.Placed{Bank: 0, Subarray: 0, Op: op}
		}
		if _, err := m.Run(stream, io); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(11), run(11)
	if a != b {
		t.Fatalf("same seed, different results: %#x vs %#x", a, b)
	}
	if a == ^uint64(0) {
		t.Fatal("TRA fault at rate 1 did not corrupt the all-ones AND result")
	}
	// Exactly one lane flipped.
	bad := ^a
	if bad&(bad-1) != 0 {
		t.Fatalf("more than one lane corrupted: %#x", a)
	}
}
