package sim

import (
	"context"
	"errors"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/fault"
	"chopper/internal/guard"
	"chopper/internal/isa"
)

// The canonical fault model must plug into the recovery layer.
var _ EpochHook = (*fault.Injector)(nil)

// recProgram builds `blocks` independent AND-style blocks (6 ops each:
// WRITE, 3x AAP, AP, READ) with an epoch mark at every block boundary.
// Each block reads back exactly the pattern written for its tag, so the
// expected host output is trivially checkable per tag.
func recProgram(blocks int) *isa.Program {
	p := &isa.Program{DRowsUsed: 1}
	for i := 0; i < blocks; i++ {
		p.Append(
			isa.NewWrite(isa.Row(0), i),
			isa.NewAAP(isa.Row(0), isa.T0),
			isa.NewAAP(isa.Row(0), isa.T1),
			isa.NewAAP(isa.C0, isa.T2),
			isa.NewAP(isa.T0, isa.T1, isa.T2),
			isa.NewRead(isa.T0, i),
		)
		p.EpochMarks = append(p.EpochMarks, len(p.Ops))
	}
	return p
}

func recPattern(tag int) uint64 { return 0x1111111111111111 * uint64(tag%15+1) }

func recMachine(hook FaultHook) *Machine {
	cfg := MachineConfig{Geom: dram.DefaultGeometry(), Arch: isa.Ambit, Lanes: 64}
	if hook != nil {
		cfg.Fault = func(bank, sub int) FaultHook {
			if bank == 0 && sub == 0 {
				return hook
			}
			return nil
		}
	}
	return NewMachine(cfg)
}

type readLog struct {
	tags []int
	data []uint64
}

func recIO(log *readLog) *HostIO {
	return &HostIO{
		WriteData: func(tag int) []uint64 { return []uint64{recPattern(tag)} },
		ReadSink: func(tag int, data []uint64) {
			log.tags = append(log.tags, tag)
			log.data = append(log.data, data[0])
		},
	}
}

func checkReads(t *testing.T, log *readLog, blocks int) {
	t.Helper()
	if len(log.tags) != blocks {
		t.Fatalf("got %d reads, want %d", len(log.tags), blocks)
	}
	for i, tag := range log.tags {
		if tag != i {
			t.Errorf("read %d delivered tag %d (out of order or duplicated)", i, tag)
		}
		if log.data[i] != recPattern(tag) {
			t.Errorf("tag %d: got %#x, want %#x", tag, log.data[i], recPattern(tag))
		}
	}
}

// flakyHook is a deterministic EpochHook for tests: it corrupts exactly
// one op (by global index) — only on retry attempt 0 — so a single replay
// is always clean. The corruption point selects which detector can see it:
// AfterCompute faults are compute faults (vote territory; fires on AP
// ops), AfterStore faults corrupt the stored charge after parity was
// recorded (parity territory; fires on any storing op).
type flakyHook struct {
	fireOp  int
	inStore bool // corrupt the stored charge instead of the compute result

	attempt int
	fired   bool
	ckFired bool
}

func (h *flakyHook) BeforeLoad(opIdx int, r isa.Row, data []uint64, lanes int) {}
func (h *flakyHook) AfterCompute(opIdx int, data []uint64, lanes int) {
	if !h.inStore {
		h.fire(opIdx, data)
	}
}
func (h *flakyHook) AfterCopy(opIdx int, data []uint64, lanes int) {}
func (h *flakyHook) AfterStore(opIdx int, r isa.Row, data []uint64, lanes int) {
	if h.inStore {
		h.fire(opIdx, data)
	}
}
func (h *flakyHook) fire(opIdx int, data []uint64) {
	if h.attempt == 0 && !h.fired && opIdx == h.fireOp {
		data[0] ^= 1
		h.fired = true
	}
}
func (h *flakyHook) EpochCheckpoint()         { h.ckFired = h.fired; h.attempt = 0 }
func (h *flakyHook) EpochRestore(attempt int) { h.fired = h.ckFired; h.attempt = attempt }
func (h *flakyHook) Scrub(opIdx int) int      { return 0 }

func runRecovered(t *testing.T, m *Machine, prog *isa.Program, io *HostIO, b guard.Budget, pol RecoveryPolicy) (float64, RecoveryStats, error) {
	t.Helper()
	return m.RunRecoveredCtx(context.Background(), Decode(prog), 0, 0, io, b, pol)
}

func TestRecoveryZeroFaultEquivalence(t *testing.T) {
	const blocks = 5
	prog := recProgram(blocks)
	for _, pol := range []RecoveryPolicy{
		{Detector: DetectNone},
		{Detector: DetectParity, EpochUops: 6, MaxRetries: 3},
		{Detector: DetectVote, EpochUops: 6, MaxRetries: 3},
	} {
		var log readLog
		m := recMachine(nil)
		_, rs, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{}, pol)
		if err != nil {
			t.Fatalf("detector %d: %v", pol.Detector, err)
		}
		checkReads(t, &log, blocks)
		if rs.Detections != 0 || rs.Retries != 0 || rs.Corrected != 0 || rs.Uncorrected != 0 {
			t.Errorf("detector %d: spurious recovery activity on a clean run: %+v", pol.Detector, rs)
		}
		if pol.Detector != DetectNone && rs.Epochs != blocks {
			t.Errorf("detector %d: %d epochs, want %d", pol.Detector, rs.Epochs, blocks)
		}
		if pol.Detector == DetectVote && rs.WastedUops != blocks*6 {
			t.Errorf("vote redundancy: WastedUops=%d, want %d", rs.WastedUops, blocks*6)
		}
	}
}

func TestRecoveryVoteCorrectsComputeFault(t *testing.T) {
	const blocks = 4
	prog := recProgram(blocks)
	hook := &flakyHook{fireOp: 10} // the AP of the second epoch
	var log readLog
	m := recMachine(hook)
	_, rs, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{},
		RecoveryPolicy{Detector: DetectVote, EpochUops: 6, MaxRetries: 3, BackoffNs: 10})
	if err != nil {
		t.Fatal(err)
	}
	checkReads(t, &log, blocks)
	if rs.Detections == 0 || rs.Corrected != 1 || rs.Uncorrected != 0 {
		t.Errorf("stats = %+v, want one detected+corrected epoch", rs)
	}
	if m.Stats().StallNs <= 0 {
		t.Error("detected retry did not charge backoff stall")
	}
}

func TestRecoveryParityCorrectsStorageFault(t *testing.T) {
	const blocks = 4
	prog := recProgram(blocks)
	hook := &flakyHook{fireOp: 7, inStore: true}
	var log readLog
	m := recMachine(hook)
	_, rs, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{},
		RecoveryPolicy{Detector: DetectParity, EpochUops: 6, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkReads(t, &log, blocks)
	if rs.Detections == 0 || rs.Corrected != 1 || rs.Uncorrected != 0 {
		t.Errorf("stats = %+v, want one detected+corrected epoch", rs)
	}
	if rs.Retries != 1 {
		t.Errorf("Retries = %d, want 1", rs.Retries)
	}
}

func TestRecoveryParityMissesComputeFault(t *testing.T) {
	// A compute fault happens before the store records parity, so the
	// parity detector cannot see it: documented blind spot.
	prog := recProgram(2)
	hook := &flakyHook{fireOp: 10}
	var log readLog
	m := recMachine(hook)
	_, rs, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{},
		RecoveryPolicy{Detector: DetectParity, EpochUops: 6, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Detections != 0 {
		t.Errorf("parity detected a compute fault (stats %+v); the blind-spot contract changed", rs)
	}
	if log.data[1] == recPattern(1) {
		t.Error("expected the undetected compute fault to corrupt the output")
	}
}

func TestRecoveryParityDetectsStuckAtButCannotCorrect(t *testing.T) {
	const blocks = 3
	prog := recProgram(blocks)
	inj := fault.New(fault.Config{StuckColumns: []fault.StuckColumn{{Lane: 3, High: true}}}, 1)
	var log readLog
	m := recMachine(inj)
	_, rs, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{},
		RecoveryPolicy{Detector: DetectParity, EpochUops: 6, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Detections == 0 {
		t.Fatalf("parity failed to detect a stuck-at column: %+v", rs)
	}
	if rs.Uncorrected == 0 {
		t.Errorf("stuck-at is permanent; expected uncorrected epochs, got %+v", rs)
	}
	if rs.Corrected != 0 {
		t.Errorf("replay cannot fix a permanent defect, yet Corrected=%d", rs.Corrected)
	}
	if rs.Retries == 0 || rs.ScrubbedRows == 0 {
		t.Errorf("expected scrubbed retry attempts, got %+v", rs)
	}
}

func TestRecoveryEpochCuts(t *testing.T) {
	const blocks = 6
	prog := recProgram(blocks)
	cases := []struct {
		epochUops int
		marks     bool
		want      int
	}{
		{6, true, 6}, // every mark is a cut
		{7, true, 3}, // snap forward to every second mark
		{1000, true, 1},
		{6, false, 6}, // stride fallback without marks
		{5, false, 8}, // ceil(36 ops / stride 5)
	}
	for _, tc := range cases {
		p := prog
		if !tc.marks {
			cp := *prog
			cp.EpochMarks = nil
			p = &cp
		}
		var log readLog
		m := recMachine(nil)
		_, rs, err := runRecovered(t, m, p, recIO(&log), guard.Budget{},
			RecoveryPolicy{Detector: DetectParity, EpochUops: tc.epochUops})
		if err != nil {
			t.Fatal(err)
		}
		checkReads(t, &log, blocks)
		if rs.Epochs != tc.want {
			t.Errorf("epochUops=%d marks=%v: %d epochs, want %d", tc.epochUops, tc.marks, rs.Epochs, tc.want)
		}
	}
}

func TestRecoveryReadsBufferedUntilCommit(t *testing.T) {
	// The rolled-back attempt's READ must never reach the host sink: each
	// tag is delivered exactly once, in program order, with committed data.
	const blocks = 4
	prog := recProgram(blocks)
	hook := &flakyHook{fireOp: 10}
	var log readLog
	m := recMachine(hook)
	_, rs, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{},
		RecoveryPolicy{Detector: DetectVote, EpochUops: 6, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Detections == 0 {
		t.Fatal("test needs at least one rollback to be meaningful")
	}
	checkReads(t, &log, blocks)
}

func TestRecoveryBudgetBoundsReplay(t *testing.T) {
	// A guard budget must also bound replayed work: with an epoch that
	// keeps retrying, the run surfaces ErrBudget mid-recovery instead of
	// looping or reporting a detector artifact.
	prog := recProgram(4)
	hook := &flakyHook{fireOp: 10}
	var log readLog
	m := recMachine(hook)
	_, _, err := runRecovered(t, m, prog, recIO(&log), guard.Budget{MaxSimSteps: 20},
		RecoveryPolicy{Detector: DetectVote, EpochUops: 6, MaxRetries: 3})
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !guard.IsGuard(err) {
		t.Fatalf("budget violation mid-recovery must classify as a guard error, got %v", err)
	}
}

func TestRecoveryCancelMidRun(t *testing.T) {
	prog := recProgram(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var log readLog
	m := recMachine(nil)
	_, _, err := m.RunRecoveredCtx(ctx, Decode(prog), 0, 0, recIO(&log), guard.Budget{},
		RecoveryPolicy{Detector: DetectParity, EpochUops: 6})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(log.tags) != 0 {
		t.Error("canceled run leaked buffered reads to the host sink")
	}
}

func TestRecoveryMachineReuseAcrossRuns(t *testing.T) {
	// A pooled machine must not leak parity tracking or recovery state
	// into a later plain run, and a second recovered run starts fresh.
	const blocks = 3
	prog := recProgram(blocks)
	hook := &flakyHook{fireOp: 7, inStore: true}
	m := recMachine(hook)
	var log1 readLog
	_, rs1, err := runRecovered(t, m, prog, recIO(&log1), guard.Budget{},
		RecoveryPolicy{Detector: DetectParity, EpochUops: 6, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rs1.Detections == 0 {
		t.Fatal("first run saw no fault; reuse test is vacuous")
	}
	if m.Sub(0, 0).parTrack {
		t.Fatal("parity tracking left armed after the recovered run")
	}
	// Plain decoded run on the same machine: must behave as always.
	m.Reconfigure(MachineConfig{Geom: dram.DefaultGeometry(), Arch: isa.Ambit, Lanes: 64})
	var log2 readLog
	if _, err := m.RunDecodedCtx(context.Background(), Decode(prog), 0, 0, recIO(&log2), guard.Budget{}); err != nil {
		t.Fatal(err)
	}
	checkReads(t, &log2, blocks)
}
