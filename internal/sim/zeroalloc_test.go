package sim

// The acceptance bar for the arena/pre-decode rewrite: once a subarray,
// spill store and timing engine are warm, the decoded Exec + IssueOp loop
// must not allocate at all. testing.AllocsPerRun gates this so a future
// change that reintroduces a per-op make/map write fails the suite rather
// than silently regressing throughput.

import (
	"context"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/guard"
	"chopper/internal/isa"
)

// steadyProgram covers every op kind on its fast path: AAP (single- and
// multi-destination), AP, WRITE, READ, SPILL_OUT, SPILL_IN, and ROWINIT on
// both a D-group row and an already-correct C-group row (the skip path).
func steadyProgram() *isa.Program {
	p := &isa.Program{Ops: []isa.Op{
		isa.NewWrite(isa.Row(0), 0),
		isa.NewWrite(isa.Row(1), 1),
		isa.NewRowInit(isa.Row(2), 0xAAAA),
		isa.NewRowInit(isa.C0, 0),          // correct pattern: skip path
		isa.NewRowInit(isa.C1, ^uint64(0)), // correct pattern: skip path
		isa.NewAAP(isa.Row(0), isa.T0),
		{Kind: isa.OpAAP, Src: isa.Row(1), Dst: [3]isa.Row{isa.T1, isa.T2, isa.RowNone}, NDst: 2},
		isa.NewAP(isa.T0, isa.T1, isa.T2),
		isa.NewSpillOut(isa.T0, 3),
		isa.NewSpillIn(isa.Row(4), 3),
		isa.NewAAP(isa.Row(4), isa.Row(5)),
		isa.NewRead(isa.Row(5), 2),
	}}
	return p
}

func steadyIO(words int) *HostIO {
	w0 := make([]uint64, words)
	w1 := make([]uint64, words)
	for i := range w0 {
		w0[i] = 0x0123456789abcdef
		w1[i] = ^uint64(0) >> 1
	}
	return &HostIO{
		WriteData: func(tag int) []uint64 {
			if tag == 0 {
				return w0
			}
			return w1
		},
		ReadSink: func(tag int, data []uint64) { _ = data[0] },
	}
}

// TestExecDecodedZeroAlloc drives the raw per-op loop — ExecDecoded plus
// Engine.IssueOp — on warm state and requires exactly zero allocations.
func TestExecDecodedZeroAlloc(t *testing.T) {
	const lanes = 128
	sub := NewSubarray(64, lanes)
	spill := NewSpillStore()
	g := dram.DefaultGeometry()
	eng := dram.NewEngine(g, dram.TimingFor(isa.Ambit, g), false)
	d := Decode(steadyProgram())
	io := steadyIO(sub.words)

	run := func() {
		for i := 0; i < d.Len(); i++ {
			if err := sub.ExecDecoded(d, i, io, spill); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			eng.IssueOp(0, 0, d.ops[i].kind, d.ops[i].imm)
		}
	}
	run() // warm: first touch allocates arena rows and the spill slot
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("steady-state ExecDecoded+IssueOp loop allocates %v allocs/op-sequence, want 0", n)
	}
}

// TestRunDecodedCtxZeroAlloc asserts the full Machine entry point — guard
// checkpoints included — is allocation-free once warm.
func TestRunDecodedCtxZeroAlloc(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewMachine(MachineConfig{Geom: g, Arch: isa.Ambit, Lanes: 96})
	d := Decode(steadyProgram())
	io := steadyIO(m.Sub(0, 0).words)
	ctx := context.Background()
	b := guard.Budget{}

	run := func() {
		if _, err := m.RunDecodedCtx(ctx, d, 0, 0, io, b); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	run()
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("steady-state RunDecodedCtx allocates %v allocs/run, want 0", n)
	}
}

// TestResetKeepsZeroAlloc proves trial-style reuse (Reset between replays,
// as verify and reliability loops do) stays allocation-free after the first
// post-reset replay re-touches the arena.
func TestResetKeepsZeroAlloc(t *testing.T) {
	sub := NewSubarray(64, 64)
	spill := NewSpillStore()
	g := dram.DefaultGeometry()
	eng := dram.NewEngine(g, dram.TimingFor(isa.SIMDRAM, g), true)
	d := Decode(steadyProgram())
	io := steadyIO(sub.words)

	trial := func() {
		sub.Reset()
		spill.Reset()
		eng.Reset()
		for i := 0; i < d.Len(); i++ {
			if err := sub.ExecDecoded(d, i, io, spill); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			eng.IssueOp(0, 0, d.ops[i].kind, d.ops[i].imm)
		}
	}
	trial()
	if n := testing.AllocsPerRun(50, trial); n != 0 {
		t.Fatalf("Reset+replay trial allocates %v allocs/trial, want 0", n)
	}
}
