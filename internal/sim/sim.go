// Package sim executes PUD micro-op programs functionally — on a bit-matrix
// model of DRAM subarrays — and, through the dram timing engine and the ssd
// device model, computes how long the execution takes.
//
// The functional model is the ground truth for the whole compiler test
// suite: a kernel is only considered correctly compiled when running its
// micro-ops here reproduces, lane by lane, the result of the corresponding
// plain Go computation.
//
// The row store is a flat preallocated arena indexed by a dense row id
// (special rows first, then D-group rows) plus a presence bitmap, so the
// steady-state execution loop performs no map lookups and no allocations;
// see docs/PERFORMANCE.md for the layout and the pooling rules that let
// verify/reliability sweeps reuse subarrays across trials via Reset.
package sim

import (
	"context"
	"fmt"
	"math/bits"

	"chopper/internal/dram"
	"chopper/internal/guard"
	"chopper/internal/isa"
	"chopper/internal/ssd"
)

// HostIO supplies WRITE payloads and consumes READ results. Tags identify
// logical rows: the compiler assigns a tag to every input bit-row and every
// output bit-row. For multi-subarray runs (each subarray processing its own
// data tile), the At variants take precedence when non-nil.
//
// The slice passed to ReadSink is a reusable scratch buffer owned by the
// subarray: it is valid only for the duration of the call, and a sink that
// wants to retain the payload must copy it.
type HostIO struct {
	// WriteData returns the row payload for a WRITE with the given tag.
	WriteData func(tag int) []uint64
	// ReadSink receives the row payload of a READ with the given tag.
	ReadSink func(tag int, data []uint64)

	// WriteDataAt, when set, supplies per-subarray payloads.
	WriteDataAt func(bank, sub, tag int) []uint64
	// ReadSinkAt, when set, consumes per-subarray results.
	ReadSinkAt func(bank, sub, tag int, data []uint64)
}

// FaultHook observes — and may perturb — a subarray's row operations. It
// is how the fault package's deterministic DRAM fault models (TRA
// charge-sharing flips, copy corruption, stuck bitlines, retention decay)
// attach to the functional simulator; a nil hook costs nothing. All data
// slices are the subarray's live row storage and may be mutated in place.
type FaultHook interface {
	// BeforeLoad runs when row r is about to be sensed as an operand
	// (retention decay materializes here).
	BeforeLoad(opIdx int, r isa.Row, data []uint64, lanes int)
	// AfterCompute runs on a TRA result before it latches back into the
	// participating rows.
	AfterCompute(opIdx int, data []uint64, lanes int)
	// AfterCopy runs on an AAP payload before it is stored.
	AfterCopy(opIdx int, data []uint64, lanes int)
	// AfterStore runs on a row's stored contents (persistent bitline
	// effects apply here).
	AfterStore(opIdx int, r isa.Row, data []uint64, lanes int)
}

// numSpecialRows is the number of dense arena slots reserved for the
// C-group and B-group rows (isa.C0 .. isa.DCC1N map to slots 0..9).
const numSpecialRows = 10

// Subarray is the functional state of one PUD subarray: a set of rows, each
// a bit-vector of `lanes` bits stored as 64-bit words. Dual-contact cell
// pairs are kept complementary on every write, which is how in-DRAM NOT
// works on Ambit-style substrates.
//
// Storage is a flat arena of (numSpecialRows + physRows) x words uint64s.
// Special rows occupy the first ten slots; D-group row r lives at slot
// numSpecialRows+r. The arena grows geometrically with the highest D row
// touched, so a program using 50 rows never pays for the subarray's full
// 1006-row address space, and a pooled subarray reaches steady state (zero
// allocations per op) after its first trial. Rows outside the dense range
// (exotic negative ids, D rows beyond dRows) fall back to a map, preserving
// the historical write-then-fail-on-read semantics byte for byte.
type Subarray struct {
	lanes int
	words int
	mask  uint64 // valid bits of the last word
	dRows int

	arena    []uint64 // (numSpecialRows+physRows) rows x words
	physRows int      // D rows currently backed by the arena
	present  []uint64 // presence bitmap over numSpecialRows+dRows slots
	extra    map[isa.Row][]uint64
	cDirty   bool // a C-group row was overwritten outside ROWINIT

	scratch []uint64 // AAP copy / AP majority staging buffer
	readBuf []uint64 // READ payload buffer handed to ReadSink

	// Online parity tracking (recovery's cheap storage-fault detector).
	// When armed, every dense-row store records the row's parity bit and
	// every sense re-derives it: a mismatch means the stored charge changed
	// behind the program's back (a stuck bitline forced a lane, a cell
	// decayed) and is counted in parBad. Compute faults corrupt the data
	// BEFORE the store records its parity, so they are invisible here by
	// construction — that asymmetry is the detector's documented trade-off.
	// Overflow (extra-map) rows are outside the dense bitline array model
	// and are not tracked.
	parTrack bool
	parity   []uint64 // per-slot parity bitmap, valid where present
	parBad   int      // mismatches observed since the tracker was armed

	hook  FaultHook
	opIdx int // ops executed so far; the index passed to the hook
}

// NewSubarray creates a subarray with dRows data rows and `lanes` bitlines.
// The C-group rows are initialized to their architectural constants.
func NewSubarray(dRows, lanes int) *Subarray {
	s := &Subarray{}
	s.Configure(dRows, lanes)
	return s
}

// Configure resizes the subarray to dRows data rows and `lanes` bitlines
// and resets it to its initial state, reusing allocated storage where the
// shape permits. It is the trial-reuse entry point behind Reset.
func (s *Subarray) Configure(dRows, lanes int) {
	if dRows <= 0 || lanes <= 0 {
		panic(fmt.Sprintf("sim: bad subarray dims dRows=%d lanes=%d", dRows, lanes))
	}
	words := (lanes + 63) / 64
	mask := ^uint64(0)
	if r := lanes % 64; r != 0 {
		mask = (uint64(1) << uint(r)) - 1
	}
	if words != s.words {
		// Row geometry changed: the arena layout is invalid, restart it at
		// special-rows-only (it regrows on demand).
		s.physRows = 0
		need := numSpecialRows * words
		if cap(s.arena) < need {
			s.arena = make([]uint64, need)
		} else {
			s.arena = s.arena[:need]
		}
		if cap(s.scratch) < words {
			s.scratch = make([]uint64, words)
			s.readBuf = make([]uint64, words)
		} else {
			s.scratch = s.scratch[:words]
			s.readBuf = s.readBuf[:words]
		}
	} else if s.arena == nil {
		s.arena = make([]uint64, numSpecialRows*words)
		s.scratch = make([]uint64, words)
		s.readBuf = make([]uint64, words)
	}
	s.lanes, s.words, s.mask, s.dRows = lanes, words, mask, dRows
	pw := (numSpecialRows + dRows + 63) / 64
	if cap(s.present) < pw {
		s.present = make([]uint64, pw)
	} else {
		s.present = s.present[:pw]
	}
	if cap(s.parity) < pw {
		s.parity = make([]uint64, pw)
	} else {
		s.parity = s.parity[:pw]
	}
	s.Reset()
}

// Reset returns the subarray to its initial state — constant rows hold
// their architectural patterns, every other row is uninitialized, the op
// counter is zero and no fault hook is attached — while keeping the arena
// and scratch buffers allocated for reuse across trials.
func (s *Subarray) Reset() {
	for i := range s.present {
		s.present[i] = 0
	}
	if s.extra != nil {
		clear(s.extra)
	}
	s.cDirty = false
	s.opIdx = 0
	s.hook = nil
	s.parTrack = false
	s.parBad = 0
	s.initRow(isa.C0, 0)
	s.initRow(isa.C1, ^uint64(0))
}

// Lanes returns the SIMD width of the subarray.
func (s *Subarray) Lanes() int { return s.lanes }

// SetFaultHook attaches a fault model to the subarray (nil detaches).
func (s *Subarray) SetFaultHook(h FaultHook) { s.hook = h }

// MemBytes reports the bytes of reusable storage the subarray holds (arena,
// presence bitmap and scratch buffers) — the quantity choppersim reports as
// peak scratch.
func (s *Subarray) MemBytes() int64 {
	n := int64(cap(s.arena)+cap(s.scratch)+cap(s.readBuf)) * 8
	n += int64(cap(s.present)+cap(s.parity)) * 8
	for _, row := range s.extra {
		n += int64(cap(row)) * 8
	}
	return n
}

// slot maps a row to its dense arena slot. ok is false for rows outside
// the dense range (exotic negatives, D rows beyond dRows), which live in
// the overflow map instead.
func (s *Subarray) slot(r isa.Row) (int, bool) {
	if r >= 0 {
		if int(r) >= s.dRows {
			return 0, false
		}
		return numSpecialRows + int(r), true
	}
	if r >= isa.DCC1N { // special rows occupy -1..-10
		return -1 - int(r), true
	}
	return 0, false
}

func (s *Subarray) isPresent(idx int) bool { return s.present[idx>>6]&(1<<uint(idx&63)) != 0 }
func (s *Subarray) markPresent(idx int)    { s.present[idx>>6] |= 1 << uint(idx&63) }

// rowParity is the XOR reduction of every bit of a row (masked words only,
// which setRow/initRow guarantee).
func rowParity(data []uint64) uint64 {
	var x uint64
	for _, w := range data {
		x ^= w
	}
	return uint64(bits.OnesCount64(x) & 1)
}

// setParity records the parity bit of a freshly stored dense row.
func (s *Subarray) setParity(idx int, data []uint64) {
	w, b := idx>>6, uint(idx&63)
	if rowParity(data) == 1 {
		s.parity[w] |= 1 << b
	} else {
		s.parity[w] &^= 1 << b
	}
}

// checkParity compares a sensed row against its recorded parity bit,
// counting a mismatch once (the bit re-arms to the corrupted contents, so
// repeated senses of the same corruption are not double-counted).
func (s *Subarray) checkParity(idx int, data []uint64) {
	w, b := idx>>6, uint(idx&63)
	if s.parity[w]>>b&1 != rowParity(data) {
		s.parBad++
		s.setParity(idx, data)
	}
}

// SetParityTracking arms (true) or disarms (false) online parity tracking.
// Arming seeds the parity bit of every currently stored dense row and
// zeroes the mismatch counter; disarming just stops the bookkeeping. The
// recovery layer arms it for parity-detector runs only, so ordinary runs
// pay nothing.
func (s *Subarray) SetParityTracking(on bool) {
	s.parTrack = on
	s.parBad = 0
	if !on {
		return
	}
	n := s.allocRows()
	for idx := 0; idx < n; idx++ {
		if s.isPresent(idx) {
			s.setParity(idx, s.rowData(idx))
		}
	}
}

// ParityMismatches returns the parity mismatches observed since the
// tracker was armed or last cleared.
func (s *Subarray) ParityMismatches() int { return s.parBad }

// ClearParityMismatches zeroes the mismatch counter (an epoch commit
// accepts whatever state it is committing).
func (s *Subarray) ClearParityMismatches() { s.parBad = 0 }

// ParitySweep re-derives the parity of every stored dense row, counts rows
// whose recorded bit no longer matches (adding them to ParityMismatches)
// and re-arms those bits. It is the end-of-epoch detector pass: it catches
// storage corruption in rows the program has not re-sensed since the
// corruption landed. Returns the mismatches found by this sweep.
func (s *Subarray) ParitySweep() int {
	if !s.parTrack {
		return 0
	}
	found := 0
	n := s.allocRows()
	for idx := 0; idx < n; idx++ {
		if !s.isPresent(idx) {
			continue
		}
		data := s.rowData(idx)
		w, b := idx>>6, uint(idx&63)
		if s.parity[w]>>b&1 != rowParity(data) {
			found++
			s.setParity(idx, data)
		}
	}
	s.parBad += found
	return found
}

// allocRows is the number of rows the arena currently backs.
func (s *Subarray) allocRows() int { return numSpecialRows + s.physRows }

// rowData returns the arena storage of a backed slot.
func (s *Subarray) rowData(idx int) []uint64 {
	return s.arena[idx*s.words : (idx+1)*s.words : (idx+1)*s.words]
}

// ensure grows the arena so slot idx is backed. Growth is geometric, so a
// warm subarray never grows again and the loop stays allocation-free.
func (s *Subarray) ensure(idx int) {
	if idx < s.allocRows() {
		return
	}
	need := idx - numSpecialRows + 1
	phys := s.physRows * 2
	if phys < need {
		phys = need
	}
	if phys < 8 {
		phys = 8
	}
	if phys > s.dRows {
		phys = s.dRows
	}
	newLen := (numSpecialRows + phys) * s.words
	if cap(s.arena) < newLen {
		na := make([]uint64, newLen)
		copy(na, s.arena)
		s.arena = na
	} else {
		s.arena = s.arena[:newLen]
	}
	s.physRows = phys
}

// peek returns the live storage of row r if it is initialized.
func (s *Subarray) peek(r isa.Row) ([]uint64, bool) {
	if idx, ok := s.slot(r); ok {
		if idx < s.allocRows() && s.isPresent(idx) {
			return s.rowData(idx), true
		}
		return nil, false
	}
	if s.extra != nil {
		row, ok := s.extra[r]
		return row, ok
	}
	return nil, false
}

// load senses row r as an operand of the op at idx, giving the fault hook
// its chance to materialize retention decay in the stored charge.
func (s *Subarray) load(idx int, r isa.Row) ([]uint64, error) {
	row, err := s.getRow(r)
	if err != nil {
		return nil, err
	}
	if s.hook != nil {
		s.hook.BeforeLoad(idx, r, row, s.lanes)
	}
	if s.parTrack {
		// The hook has materialized any retention decay: a sensed row whose
		// contents no longer match the parity recorded at store time is a
		// detected storage fault.
		if si, ok := s.slot(r); ok {
			s.checkParity(si, row)
		}
	}
	return row, nil
}

// stored notifies the hook that row r was just (re)written, letting
// persistent bitline defects corrupt the stored contents.
func (s *Subarray) stored(idx int, r isa.Row) {
	if s.hook == nil {
		return
	}
	if row, ok := s.peek(r); ok {
		s.hook.AfterStore(idx, r, row, s.lanes)
	}
}

func (s *Subarray) getRow(r isa.Row) ([]uint64, error) {
	if r.IsDGroup() && int(r) >= s.dRows {
		return nil, fmt.Errorf("sim: row %s beyond D-group size %d", r, s.dRows)
	}
	row, ok := s.peek(r)
	if !ok {
		return nil, fmt.Errorf("sim: read of uninitialized row %s", r)
	}
	return row, nil
}

// setRow stores data into r, maintaining the dual-contact complement
// invariant. The slice is copied; a freshly initialized row behaves as if
// zero-filled first (words beyond len(data) read as zero), exactly like
// the historical map-backed store.
func (s *Subarray) setRow(r isa.Row, data []uint64) {
	if idx, ok := s.slot(r); ok {
		s.ensure(idx)
		dst := s.rowData(idx)
		if !s.isPresent(idx) {
			s.markPresent(idx)
			for i := len(data); i < s.words; i++ {
				dst[i] = 0
			}
		}
		copy(dst, data)
		dst[s.words-1] &= s.mask
		if r.IsCGroup() {
			s.cDirty = true
		}
		if s.parTrack {
			// Parity is recorded from the row buffer BEFORE the AfterStore
			// hook can apply stuck-at defects to the stored charge, which is
			// exactly why those defects are detectable on the next sense.
			s.setParity(idx, dst)
		}
		if comp := r.Complement(); comp != isa.RowNone {
			cidx, _ := s.slot(comp) // complements are special rows, always dense
			cdst := s.rowData(cidx)
			s.markPresent(cidx)
			for i := range cdst {
				cdst[i] = ^dst[i]
			}
			cdst[s.words-1] &= s.mask
			if s.parTrack {
				s.setParity(cidx, cdst)
			}
		}
		return
	}
	// Overflow row: preserve the historical map semantics (stores succeed,
	// reads of out-of-range D rows fail with the bound error).
	if s.extra == nil {
		s.extra = make(map[isa.Row][]uint64)
	}
	dst, ok := s.extra[r]
	if !ok {
		dst = make([]uint64, s.words)
		s.extra[r] = dst
	}
	copy(dst, data)
	dst[s.words-1] &= s.mask
}

// initRow fills r with a replicated constant pattern (the ROWINIT
// semantic) without staging the row through a temporary.
func (s *Subarray) initRow(r isa.Row, pattern uint64) {
	if idx, ok := s.slot(r); ok {
		s.ensure(idx)
		dst := s.rowData(idx)
		s.markPresent(idx)
		for i := range dst {
			dst[i] = pattern
		}
		dst[s.words-1] &= s.mask
		if s.parTrack {
			s.setParity(idx, dst)
		}
		if comp := r.Complement(); comp != isa.RowNone {
			cidx, _ := s.slot(comp)
			cdst := s.rowData(cidx)
			s.markPresent(cidx)
			for i := range cdst {
				cdst[i] = ^dst[i]
			}
			cdst[s.words-1] &= s.mask
			if s.parTrack {
				s.setParity(cidx, cdst)
			}
		}
		return
	}
	if s.extra == nil {
		s.extra = make(map[isa.Row][]uint64)
	}
	dst, ok := s.extra[r]
	if !ok {
		dst = make([]uint64, s.words)
		s.extra[r] = dst
	}
	for i := range dst {
		dst[i] = pattern
	}
	dst[s.words-1] &= s.mask
}

// Row returns a copy of the row's contents (nil if uninitialized); intended
// for tests and debugging dumps.
func (s *Subarray) Row(r isa.Row) []uint64 {
	row, ok := s.peek(r)
	if !ok {
		return nil
	}
	out := make([]uint64, len(row))
	copy(out, row)
	return out
}

// spillSlot is one SSD-backed spill slot; the buffer is retained when the
// slot is logically freed so refilling it allocates nothing.
type spillSlot struct {
	data []uint64
	live bool
}

// SpillStore holds spilled rows, keyed by spill slot. Slot buffers are
// reused across overwrites and across Reset, so a warm store performs no
// allocation in the steady state.
type SpillStore struct {
	slots map[uint64]*spillSlot
}

// NewSpillStore creates an empty store.
func NewSpillStore() *SpillStore { return &SpillStore{slots: make(map[uint64]*spillSlot)} }

// Reset logically empties the store (every slot reads as unwritten) while
// keeping slot buffers allocated for trial reuse.
func (sp *SpillStore) Reset() {
	for _, sl := range sp.slots {
		sl.live = false
	}
}

// MemBytes reports the bytes of slot storage the store retains.
func (sp *SpillStore) MemBytes() int64 {
	var n int64
	for _, sl := range sp.slots {
		n += int64(cap(sl.data)) * 8
	}
	return n
}

// put copies src (words wide) into the slot, reusing its buffer.
func (sp *SpillStore) put(slot uint64, src []uint64, words int) {
	sl := sp.slots[slot]
	if sl == nil {
		sl = &spillSlot{}
		sp.slots[slot] = sl
	}
	if cap(sl.data) < words {
		sl.data = make([]uint64, words)
	} else {
		sl.data = sl.data[:words]
	}
	copy(sl.data, src)
	sl.live = true
}

// get returns the slot's payload if it has been written.
func (sp *SpillStore) get(slot uint64) ([]uint64, bool) {
	sl := sp.slots[slot]
	if sl == nil || !sl.live {
		return nil, false
	}
	return sl.data, true
}

// Exec executes one micro-op against the subarray.
func (s *Subarray) Exec(op *isa.Op, io *HostIO, spill *SpillStore) error {
	idx := s.opIdx
	s.opIdx++
	switch op.Kind {
	case isa.OpRowInit:
		if op.Dst[0].IsCGroup() {
			// Re-initializing a constant row is allowed (it is how the
			// architecture maintains them) but must match the constant.
			want := uint64(0)
			if op.Dst[0] == isa.C1 {
				want = ^uint64(0)
			}
			if op.Imm != want {
				return fmt.Errorf("sim: ROWINIT %s with wrong pattern %#x", op.Dst[0], op.Imm)
			}
			if slot, ok := s.slot(op.Dst[0]); ok && s.isPresent(slot) && !s.cDirty {
				// The row already holds its constant: skip the redundant
				// rewrite (and the full-row copy it used to cost).
				return nil
			}
		}
		s.initRow(op.Dst[0], op.Imm)
		return nil

	case isa.OpAAP:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		// Copy out first: a destination may alias the source's complement.
		tmp := s.scratch
		copy(tmp, src)
		if s.hook != nil {
			s.hook.AfterCopy(idx, tmp, s.lanes)
		}
		for _, d := range op.Dsts() {
			if d.IsCGroup() {
				return fmt.Errorf("sim: AAP into constant row %s", d)
			}
			s.setRow(d, tmp)
			s.stored(idx, d)
		}
		return nil

	case isa.OpAP:
		a, err := s.load(idx, op.Dst[0])
		if err != nil {
			return err
		}
		b, err := s.load(idx, op.Dst[1])
		if err != nil {
			return err
		}
		c, err := s.load(idx, op.Dst[2])
		if err != nil {
			return err
		}
		res := s.scratch
		for i := range res {
			res[i] = (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
		}
		if s.hook != nil {
			s.hook.AfterCompute(idx, res, s.lanes)
		}
		for _, d := range op.Dst {
			s.setRow(d, res)
			s.stored(idx, d)
		}
		return nil

	case isa.OpWrite:
		if io == nil || io.WriteData == nil {
			return fmt.Errorf("sim: WRITE with no host data source (tag %d)", op.Tag)
		}
		data := io.WriteData(op.Tag)
		if data == nil {
			return fmt.Errorf("sim: host has no data for WRITE tag %d", op.Tag)
		}
		if op.Dst[0].IsCGroup() {
			return fmt.Errorf("sim: WRITE into constant row %s", op.Dst[0])
		}
		s.setRow(op.Dst[0], data)
		s.stored(idx, op.Dst[0])
		return nil

	case isa.OpRead:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		if io == nil || io.ReadSink == nil {
			return fmt.Errorf("sim: READ with no host sink (tag %d)", op.Tag)
		}
		out := s.readBuf
		copy(out, src)
		io.ReadSink(op.Tag, out)
		return nil

	case isa.OpSpillOut:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		spill.put(op.Imm, src, s.words)
		return nil

	case isa.OpSpillIn:
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		data, ok := spill.get(op.Imm)
		if !ok {
			return fmt.Errorf("sim: SPILL_IN of unwritten slot %d", op.Imm)
		}
		s.setRow(op.Dst[0], data)
		s.stored(idx, op.Dst[0])
		return nil
	}
	return fmt.Errorf("sim: unknown op kind %d", int(op.Kind))
}

// Machine simulates a whole device: many subarrays (created lazily), a
// shared spill store, the timing engine, and optionally an SSD device
// charged for spill traffic. Subarrays and spill stores are held in dense
// slices indexed by (bank, subarray) within the geometry; placements
// outside it fall back to a map, preserving the historical tolerance.
type Machine struct {
	geom  dram.Geometry
	lanes int

	engine *dram.Engine
	ssd    *ssd.Device

	subs   []*Subarray
	spills []*SpillStore
	// xsubs/xspills hold beyond-geometry placements (rare; map fallback).
	xsubs   map[[2]int]*Subarray
	xspills map[[2]int]*SpillStore

	fault func(bank, sub int) FaultHook
}

// MachineConfig configures a Machine.
type MachineConfig struct {
	Geom  dram.Geometry
	Arch  isa.Arch
	SALP  bool
	Lanes int // functional lanes per subarray; 0 means Geom.Bitlines()

	// SSD, when non-nil, charges spill traffic to the device.
	SSD *ssd.Device

	// Fault, when non-nil, supplies a fault model per subarray (each
	// subarray must get its own hook: hooks are stateful and not safe
	// for sharing). A nil return leaves that subarray fault-free.
	Fault func(bank, sub int) FaultHook
}

// NewMachine builds a machine.
func NewMachine(cfg MachineConfig) *Machine {
	m := &Machine{}
	m.Reconfigure(cfg)
	return m
}

// Reconfigure resets the machine for a new run under cfg, reusing every
// allocated subarray arena, spill buffer and engine table the new shape
// permits. It is the trial-reuse entry point the verify/reliability sweeps
// pool machines through.
func (m *Machine) Reconfigure(cfg MachineConfig) {
	lanes := cfg.Lanes
	if lanes == 0 {
		lanes = cfg.Geom.Bitlines()
	}
	timing := dram.TimingFor(cfg.Arch, cfg.Geom)
	units := cfg.Geom.Banks * cfg.Geom.SubarraysPB
	if m.engine == nil {
		m.engine = dram.NewEngine(cfg.Geom, timing, cfg.SALP)
	} else {
		m.engine.Reconfigure(cfg.Geom, timing, cfg.SALP)
	}
	if cfg.Geom != m.geom || len(m.subs) != units {
		m.subs = make([]*Subarray, units)
		m.spills = make([]*SpillStore, units)
	}
	m.geom = cfg.Geom
	m.lanes = lanes
	m.fault = cfg.Fault
	m.xsubs, m.xspills = nil, nil
	dRows := cfg.Geom.DRows()
	for i, s := range m.subs {
		if s == nil {
			continue
		}
		s.Configure(dRows, lanes)
		if cfg.Fault != nil {
			bank := i / cfg.Geom.SubarraysPB
			sub := i % cfg.Geom.SubarraysPB
			s.SetFaultHook(cfg.Fault(bank, sub))
		}
		m.spills[i].Reset()
	}
	m.ssd = cfg.SSD
	if cfg.SSD != nil {
		rowBytes := cfg.Geom.RowBytes
		dev := cfg.SSD
		m.engine.SSDDelay = func(out bool, slot uint64, startNs float64) float64 {
			if out {
				return dev.Write(slot, rowBytes, startNs)
			}
			return dev.Read(slot, startNs)
		}
	} else {
		m.engine.SSDDelay = nil
	}
}

// denseIdx maps (bank, sub) to the dense slice index, reporting whether the
// placement is inside the geometry.
func (m *Machine) denseIdx(bank, sub int) (int, bool) {
	if bank < 0 || sub < 0 || bank >= m.geom.Banks || sub >= m.geom.SubarraysPB {
		return 0, false
	}
	return bank*m.geom.SubarraysPB + sub, true
}

func (m *Machine) newSub(bank, sub int) *Subarray {
	s := NewSubarray(m.geom.DRows(), m.lanes)
	if m.fault != nil {
		s.SetFaultHook(m.fault(bank, sub))
	}
	return s
}

// Sub returns (creating if needed) the functional subarray at (bank, sub).
func (m *Machine) Sub(bank, sub int) *Subarray {
	if i, ok := m.denseIdx(bank, sub); ok {
		s := m.subs[i]
		if s == nil {
			s = m.newSub(bank, sub)
			m.subs[i] = s
			m.spills[i] = NewSpillStore()
		}
		return s
	}
	key := [2]int{bank, sub}
	s, ok := m.xsubs[key]
	if !ok {
		if m.xsubs == nil {
			m.xsubs = make(map[[2]int]*Subarray)
			m.xspills = make(map[[2]int]*SpillStore)
		}
		s = m.newSub(bank, sub)
		m.xsubs[key] = s
		m.xspills[key] = NewSpillStore()
	}
	return s
}

// spillAt returns the spill store of (bank, sub), creating the subarray
// pair if needed.
func (m *Machine) spillAt(bank, sub int) *SpillStore {
	if i, ok := m.denseIdx(bank, sub); ok {
		if m.spills[i] == nil {
			m.Sub(bank, sub)
		}
		return m.spills[i]
	}
	m.Sub(bank, sub)
	return m.xspills[[2]int{bank, sub}]
}

// MemBytes reports the reusable storage the machine retains across trials
// (subarray arenas, spill buffers, engine tables): the peak scratch figure
// surfaced by choppersim and RunResult.
func (m *Machine) MemBytes() int64 {
	n := m.engine.MemBytes()
	for _, s := range m.subs {
		if s != nil {
			n += s.MemBytes()
		}
	}
	for _, sp := range m.spills {
		if sp != nil {
			n += sp.MemBytes()
		}
	}
	for _, s := range m.xsubs {
		n += s.MemBytes()
	}
	for _, sp := range m.xspills {
		n += sp.MemBytes()
	}
	return n
}

// Run executes a placed op stream functionally and through the timing
// engine, returning the makespan in nanoseconds. The first functional error
// aborts the run.
func (m *Machine) Run(stream []dram.Placed, io *HostIO) (float64, error) {
	return m.RunCtx(nil, stream, io, guard.Budget{})
}

// RunCtx is Run under the guard layer: b.MaxSimSteps caps how many
// micro-ops execute functionally and b.MaxDRAMCommands caps how many
// reach the timing engine (both checked per op, so the same stream
// exhausts the same dimension at the same index on every run), and a
// non-nil ctx is observed every 256 ops for cooperative cancellation.
// Guard stops, like functional errors, abort before the offending op
// executes.
func (m *Machine) RunCtx(ctx context.Context, stream []dram.Placed, io *HostIO, b guard.Budget) (float64, error) {
	// Per-subarray HostIO adapters for the At variants are built at most
	// once per (run, subarray) — never per op.
	useAt := io != nil && (io.WriteDataAt != nil || io.ReadSinkAt != nil)
	var adapters []*HostIO
	var xadapters map[[2]int]*HostIO
	if useAt {
		adapters = make([]*HostIO, len(m.subs))
	}
	for i := range stream {
		if i&255 == 0 {
			if err := guard.Ctx(ctx); err != nil {
				return m.engine.Makespan(), err
			}
		}
		if err := guard.Check(guard.DimSimSteps, b.MaxSimSteps, i+1); err != nil {
			return m.engine.Makespan(), err
		}
		if err := guard.Check(guard.DimDRAMCommands, b.MaxDRAMCommands, i+1); err != nil {
			return m.engine.Makespan(), err
		}
		p := &stream[i]
		sub := m.Sub(p.Bank, p.Subarray)
		effIO := io
		if useAt {
			var a *HostIO
			if di, ok := m.denseIdx(p.Bank, p.Subarray); ok {
				a = adapters[di]
				if a == nil {
					a = adapterIO(io, p.Bank, p.Subarray)
					adapters[di] = a
				}
			} else {
				a = xadapters[[2]int{p.Bank, p.Subarray}]
				if a == nil {
					if xadapters == nil {
						xadapters = make(map[[2]int]*HostIO)
					}
					a = adapterIO(io, p.Bank, p.Subarray)
					xadapters[[2]int{p.Bank, p.Subarray}] = a
				}
			}
			effIO = a
		}
		if err := sub.Exec(&p.Op, effIO, m.spillAt(p.Bank, p.Subarray)); err != nil {
			return m.engine.Makespan(), fmt.Errorf("op %d at bank %d sub %d: %w", i, p.Bank, p.Subarray, err)
		}
		m.engine.Issue(*p)
	}
	return m.engine.Makespan(), nil
}

// adapterIO binds the At variants of io to one subarray, mirroring the
// plain WriteData/ReadSink fields when the At variant is absent.
func adapterIO(io *HostIO, bank, sub int) *HostIO {
	local := &HostIO{WriteData: io.WriteData, ReadSink: io.ReadSink}
	if io.WriteDataAt != nil {
		local.WriteData = func(tag int) []uint64 { return io.WriteDataAt(bank, sub, tag) }
	}
	if io.ReadSinkAt != nil {
		local.ReadSink = func(tag int, data []uint64) { io.ReadSinkAt(bank, sub, tag, data) }
	}
	return local
}

// Stats exposes the timing engine counters.
func (m *Machine) Stats() dram.EngineStats { return m.engine.Stats() }

// RunProgram is a convenience for single-subarray programs: it places every
// op at bank 0, subarray 0 and runs it on a fresh machine.
func RunProgram(prog *isa.Program, arch isa.Arch, geom dram.Geometry, lanes int, io *HostIO) (float64, error) {
	m := NewMachine(MachineConfig{Geom: geom, Arch: arch, Lanes: lanes})
	return m.RunDecodedCtx(nil, Decode(prog), 0, 0, io, guard.Budget{})
}
