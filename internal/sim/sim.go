// Package sim executes PUD micro-op programs functionally — on a bit-matrix
// model of DRAM subarrays — and, through the dram timing engine and the ssd
// device model, computes how long the execution takes.
//
// The functional model is the ground truth for the whole compiler test
// suite: a kernel is only considered correctly compiled when running its
// micro-ops here reproduces, lane by lane, the result of the corresponding
// plain Go computation.
package sim

import (
	"context"
	"fmt"

	"chopper/internal/dram"
	"chopper/internal/guard"
	"chopper/internal/isa"
	"chopper/internal/ssd"
)

// HostIO supplies WRITE payloads and consumes READ results. Tags identify
// logical rows: the compiler assigns a tag to every input bit-row and every
// output bit-row. For multi-subarray runs (each subarray processing its own
// data tile), the At variants take precedence when non-nil.
type HostIO struct {
	// WriteData returns the row payload for a WRITE with the given tag.
	WriteData func(tag int) []uint64
	// ReadSink receives the row payload of a READ with the given tag.
	ReadSink func(tag int, data []uint64)

	// WriteDataAt, when set, supplies per-subarray payloads.
	WriteDataAt func(bank, sub, tag int) []uint64
	// ReadSinkAt, when set, consumes per-subarray results.
	ReadSinkAt func(bank, sub, tag int, data []uint64)
}

// FaultHook observes — and may perturb — a subarray's row operations. It
// is how the fault package's deterministic DRAM fault models (TRA
// charge-sharing flips, copy corruption, stuck bitlines, retention decay)
// attach to the functional simulator; a nil hook costs nothing. All data
// slices are the subarray's live row storage and may be mutated in place.
type FaultHook interface {
	// BeforeLoad runs when row r is about to be sensed as an operand
	// (retention decay materializes here).
	BeforeLoad(opIdx int, r isa.Row, data []uint64, lanes int)
	// AfterCompute runs on a TRA result before it latches back into the
	// participating rows.
	AfterCompute(opIdx int, data []uint64, lanes int)
	// AfterCopy runs on an AAP payload before it is stored.
	AfterCopy(opIdx int, data []uint64, lanes int)
	// AfterStore runs on a row's stored contents (persistent bitline
	// effects apply here).
	AfterStore(opIdx int, r isa.Row, data []uint64, lanes int)
}

// Subarray is the functional state of one PUD subarray: a set of rows, each
// a bit-vector of `lanes` bits stored as 64-bit words. Dual-contact cell
// pairs are kept complementary on every write, which is how in-DRAM NOT
// works on Ambit-style substrates.
type Subarray struct {
	lanes int
	words int
	mask  uint64 // valid bits of the last word
	dRows int
	rows  map[isa.Row][]uint64

	hook  FaultHook
	opIdx int // ops executed so far; the index passed to the hook
}

// NewSubarray creates a subarray with dRows data rows and `lanes` bitlines.
// The C-group rows are initialized to their architectural constants.
func NewSubarray(dRows, lanes int) *Subarray {
	if dRows <= 0 || lanes <= 0 {
		panic(fmt.Sprintf("sim: bad subarray dims dRows=%d lanes=%d", dRows, lanes))
	}
	words := (lanes + 63) / 64
	mask := ^uint64(0)
	if r := lanes % 64; r != 0 {
		mask = (uint64(1) << uint(r)) - 1
	}
	s := &Subarray{lanes: lanes, words: words, mask: mask, dRows: dRows, rows: make(map[isa.Row][]uint64)}
	s.setRow(isa.C0, s.constRow(0))
	s.setRow(isa.C1, s.constRow(^uint64(0)))
	return s
}

// Lanes returns the SIMD width of the subarray.
func (s *Subarray) Lanes() int { return s.lanes }

// SetFaultHook attaches a fault model to the subarray (nil detaches).
func (s *Subarray) SetFaultHook(h FaultHook) { s.hook = h }

// load senses row r as an operand of the op at idx, giving the fault hook
// its chance to materialize retention decay in the stored charge.
func (s *Subarray) load(idx int, r isa.Row) ([]uint64, error) {
	row, err := s.getRow(r)
	if err != nil {
		return nil, err
	}
	if s.hook != nil {
		s.hook.BeforeLoad(idx, r, row, s.lanes)
	}
	return row, nil
}

// stored notifies the hook that row r was just (re)written, letting
// persistent bitline defects corrupt the stored contents.
func (s *Subarray) stored(idx int, r isa.Row) {
	if s.hook == nil {
		return
	}
	if row, ok := s.rows[r]; ok {
		s.hook.AfterStore(idx, r, row, s.lanes)
	}
}

func (s *Subarray) constRow(pattern uint64) []uint64 {
	row := make([]uint64, s.words)
	for i := range row {
		row[i] = pattern
	}
	row[s.words-1] &= s.mask
	return row
}

func (s *Subarray) getRow(r isa.Row) ([]uint64, error) {
	if r.IsDGroup() && int(r) >= s.dRows {
		return nil, fmt.Errorf("sim: row %s beyond D-group size %d", r, s.dRows)
	}
	row, ok := s.rows[r]
	if !ok {
		return nil, fmt.Errorf("sim: read of uninitialized row %s", r)
	}
	return row, nil
}

// setRow stores data into r, maintaining the dual-contact complement
// invariant. The slice is copied.
func (s *Subarray) setRow(r isa.Row, data []uint64) {
	dst, ok := s.rows[r]
	if !ok {
		dst = make([]uint64, s.words)
		s.rows[r] = dst
	}
	copy(dst, data)
	dst[s.words-1] &= s.mask
	if comp := r.Complement(); comp != isa.RowNone {
		cdst, ok := s.rows[comp]
		if !ok {
			cdst = make([]uint64, s.words)
			s.rows[comp] = cdst
		}
		for i := range cdst {
			cdst[i] = ^dst[i]
		}
		cdst[s.words-1] &= s.mask
	}
}

// Row returns a copy of the row's contents (nil if uninitialized); intended
// for tests and debugging dumps.
func (s *Subarray) Row(r isa.Row) []uint64 {
	row, ok := s.rows[r]
	if !ok {
		return nil
	}
	out := make([]uint64, len(row))
	copy(out, row)
	return out
}

// SpillStore holds spilled rows, keyed by spill slot.
type SpillStore struct {
	slots map[uint64][]uint64
}

// NewSpillStore creates an empty store.
func NewSpillStore() *SpillStore { return &SpillStore{slots: make(map[uint64][]uint64)} }

// Exec executes one micro-op against the subarray.
func (s *Subarray) Exec(op *isa.Op, io *HostIO, spill *SpillStore) error {
	idx := s.opIdx
	s.opIdx++
	switch op.Kind {
	case isa.OpRowInit:
		if op.Dst[0].IsCGroup() {
			// Re-initializing a constant row is allowed (it is how the
			// architecture maintains them) but must match the constant.
			want := uint64(0)
			if op.Dst[0] == isa.C1 {
				want = ^uint64(0)
			}
			if op.Imm != want {
				return fmt.Errorf("sim: ROWINIT %s with wrong pattern %#x", op.Dst[0], op.Imm)
			}
		}
		s.setRow(op.Dst[0], s.constRow(op.Imm))
		return nil

	case isa.OpAAP:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		// Copy out first: a destination may alias the source's complement.
		tmp := make([]uint64, s.words)
		copy(tmp, src)
		if s.hook != nil {
			s.hook.AfterCopy(idx, tmp, s.lanes)
		}
		for _, d := range op.Dsts() {
			if d.IsCGroup() {
				return fmt.Errorf("sim: AAP into constant row %s", d)
			}
			s.setRow(d, tmp)
			s.stored(idx, d)
		}
		return nil

	case isa.OpAP:
		a, err := s.load(idx, op.Dst[0])
		if err != nil {
			return err
		}
		b, err := s.load(idx, op.Dst[1])
		if err != nil {
			return err
		}
		c, err := s.load(idx, op.Dst[2])
		if err != nil {
			return err
		}
		res := make([]uint64, s.words)
		for i := range res {
			res[i] = (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
		}
		if s.hook != nil {
			s.hook.AfterCompute(idx, res, s.lanes)
		}
		for _, d := range op.Dst {
			s.setRow(d, res)
			s.stored(idx, d)
		}
		return nil

	case isa.OpWrite:
		if io == nil || io.WriteData == nil {
			return fmt.Errorf("sim: WRITE with no host data source (tag %d)", op.Tag)
		}
		data := io.WriteData(op.Tag)
		if data == nil {
			return fmt.Errorf("sim: host has no data for WRITE tag %d", op.Tag)
		}
		if op.Dst[0].IsCGroup() {
			return fmt.Errorf("sim: WRITE into constant row %s", op.Dst[0])
		}
		s.setRow(op.Dst[0], data)
		s.stored(idx, op.Dst[0])
		return nil

	case isa.OpRead:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		if io == nil || io.ReadSink == nil {
			return fmt.Errorf("sim: READ with no host sink (tag %d)", op.Tag)
		}
		out := make([]uint64, s.words)
		copy(out, src)
		io.ReadSink(op.Tag, out)
		return nil

	case isa.OpSpillOut:
		src, err := s.load(idx, op.Src)
		if err != nil {
			return err
		}
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		saved := make([]uint64, s.words)
		copy(saved, src)
		spill.slots[op.Imm] = saved
		return nil

	case isa.OpSpillIn:
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		data, ok := spill.slots[op.Imm]
		if !ok {
			return fmt.Errorf("sim: SPILL_IN of unwritten slot %d", op.Imm)
		}
		s.setRow(op.Dst[0], data)
		s.stored(idx, op.Dst[0])
		return nil
	}
	return fmt.Errorf("sim: unknown op kind %d", int(op.Kind))
}

// Machine simulates a whole device: many subarrays (created lazily), a
// shared spill store, the timing engine, and optionally an SSD device
// charged for spill traffic.
type Machine struct {
	geom   dram.Geometry
	lanes  int
	engine *dram.Engine
	ssd    *ssd.Device
	subs   map[[2]int]*Subarray
	// spills is per subarray: every compiled program numbers its spill
	// slots from zero, so slot namespaces must not collide across
	// subarrays.
	spills map[[2]int]*SpillStore
	fault  func(bank, sub int) FaultHook
}

// MachineConfig configures a Machine.
type MachineConfig struct {
	Geom  dram.Geometry
	Arch  isa.Arch
	SALP  bool
	Lanes int // functional lanes per subarray; 0 means Geom.Bitlines()

	// SSD, when non-nil, charges spill traffic to the device.
	SSD *ssd.Device

	// Fault, when non-nil, supplies a fault model per subarray (each
	// subarray must get its own hook: hooks are stateful and not safe
	// for sharing). A nil return leaves that subarray fault-free.
	Fault func(bank, sub int) FaultHook
}

// NewMachine builds a machine.
func NewMachine(cfg MachineConfig) *Machine {
	lanes := cfg.Lanes
	if lanes == 0 {
		lanes = cfg.Geom.Bitlines()
	}
	eng := dram.NewEngine(cfg.Geom, dram.TimingFor(cfg.Arch, cfg.Geom), cfg.SALP)
	m := &Machine{
		geom:   cfg.Geom,
		lanes:  lanes,
		engine: eng,
		ssd:    cfg.SSD,
		subs:   make(map[[2]int]*Subarray),
		spills: make(map[[2]int]*SpillStore),
		fault:  cfg.Fault,
	}
	if cfg.SSD != nil {
		rowBytes := cfg.Geom.RowBytes
		eng.SSDDelay = func(out bool, slot uint64, startNs float64) float64 {
			if out {
				return cfg.SSD.Write(slot, rowBytes, startNs)
			}
			return cfg.SSD.Read(slot, startNs)
		}
	}
	return m
}

// Sub returns (creating if needed) the functional subarray at (bank, sub).
func (m *Machine) Sub(bank, sub int) *Subarray {
	key := [2]int{bank, sub}
	s, ok := m.subs[key]
	if !ok {
		s = NewSubarray(m.geom.DRows(), m.lanes)
		if m.fault != nil {
			s.SetFaultHook(m.fault(bank, sub))
		}
		m.subs[key] = s
		m.spills[key] = NewSpillStore()
	}
	return s
}

// Run executes a placed op stream functionally and through the timing
// engine, returning the makespan in nanoseconds. The first functional error
// aborts the run.
func (m *Machine) Run(stream []dram.Placed, io *HostIO) (float64, error) {
	return m.RunCtx(nil, stream, io, guard.Budget{})
}

// RunCtx is Run under the guard layer: b.MaxSimSteps caps how many
// micro-ops execute functionally and b.MaxDRAMCommands caps how many
// reach the timing engine (both checked per op, so the same stream
// exhausts the same dimension at the same index on every run), and a
// non-nil ctx is observed every 256 ops for cooperative cancellation.
// Guard stops, like functional errors, abort before the offending op
// executes.
func (m *Machine) RunCtx(ctx context.Context, stream []dram.Placed, io *HostIO, b guard.Budget) (float64, error) {
	for i := range stream {
		if i&255 == 0 {
			if err := guard.Ctx(ctx); err != nil {
				return m.engine.Makespan(), err
			}
		}
		if err := guard.Check(guard.DimSimSteps, b.MaxSimSteps, i+1); err != nil {
			return m.engine.Makespan(), err
		}
		if err := guard.Check(guard.DimDRAMCommands, b.MaxDRAMCommands, i+1); err != nil {
			return m.engine.Makespan(), err
		}
		p := &stream[i]
		sub := m.Sub(p.Bank, p.Subarray)
		effIO := io
		if io != nil && (io.WriteDataAt != nil || io.ReadSinkAt != nil) {
			bank, sa := p.Bank, p.Subarray
			local := &HostIO{WriteData: io.WriteData, ReadSink: io.ReadSink}
			if io.WriteDataAt != nil {
				local.WriteData = func(tag int) []uint64 { return io.WriteDataAt(bank, sa, tag) }
			}
			if io.ReadSinkAt != nil {
				local.ReadSink = func(tag int, data []uint64) { io.ReadSinkAt(bank, sa, tag, data) }
			}
			effIO = local
		}
		if err := sub.Exec(&p.Op, effIO, m.spills[[2]int{p.Bank, p.Subarray}]); err != nil {
			return m.engine.Makespan(), fmt.Errorf("op %d at bank %d sub %d: %w", i, p.Bank, p.Subarray, err)
		}
		m.engine.Issue(*p)
	}
	return m.engine.Makespan(), nil
}

// Stats exposes the timing engine counters.
func (m *Machine) Stats() dram.EngineStats { return m.engine.Stats() }

// RunProgram is a convenience for single-subarray programs: it places every
// op at bank 0, subarray 0 and runs it on a fresh machine.
func RunProgram(prog *isa.Program, arch isa.Arch, geom dram.Geometry, lanes int, io *HostIO) (float64, error) {
	m := NewMachine(MachineConfig{Geom: geom, Arch: arch, Lanes: lanes})
	stream := make([]dram.Placed, len(prog.Ops))
	for i, op := range prog.Ops {
		stream[i] = dram.Placed{Bank: 0, Subarray: 0, Op: op}
	}
	return m.Run(stream, io)
}
