package sim

import (
	"context"
	"fmt"

	"chopper/internal/guard"
	"chopper/internal/isa"
)

// Decoded is an isa.Program pre-decoded into a flat execution stream: per
// op, the fields the executor needs are unpacked once and every statically
// decidable check (C-group destination legality, ROWINIT constant-pattern
// validation) is hoisted out of the per-op dispatch. A Decoded is immutable
// after Decode and safe to share across goroutines and trials; it is how a
// compiled kernel amortizes dispatch cost over thousands of verify /
// reliability replays.
type Decoded struct {
	prog *isa.Program
	ops  []dop
}

// dop is one pre-decoded micro-op. fast marks ops whose static checks all
// passed; ops that would fail them (or whose kind is unknown) run through
// the generic Exec so the error text, error position and fault-hook
// sequence stay byte-for-byte identical to the undecoded path.
type dop struct {
	kind  isa.OpKind
	fast  bool
	cskip bool // ROWINIT of a C-group row with the correct pattern
	ndst  int8
	src   isa.Row
	dst   [3]isa.Row
	tag   int32
	imm   uint64
}

// Decode pre-decodes prog. The result references prog (for the slow-path
// fallback), so the program must not be mutated afterwards.
func Decode(prog *isa.Program) *Decoded {
	d := &Decoded{prog: prog, ops: make([]dop, len(prog.Ops))}
	for i := range prog.Ops {
		op := &prog.Ops[i]
		e := &d.ops[i]
		e.kind = op.Kind
		e.src = op.Src
		e.dst = op.Dst
		e.ndst = int8(op.NDst)
		e.tag = int32(op.Tag)
		e.imm = op.Imm
		switch op.Kind {
		case isa.OpRowInit:
			if op.Dst[0].IsCGroup() {
				want := uint64(0)
				if op.Dst[0] == isa.C1 {
					want = ^uint64(0)
				}
				if op.Imm != want {
					continue // slow: Exec reports the pattern error
				}
				e.cskip = true
			}
			e.fast = true
		case isa.OpAAP:
			clean := true
			for _, r := range op.Dsts() {
				if r.IsCGroup() {
					clean = false // slow: Exec reports the C-group error
					break
				}
			}
			e.fast = clean
		case isa.OpWrite:
			e.fast = !op.Dst[0].IsCGroup()
		case isa.OpAP, isa.OpRead, isa.OpSpillOut, isa.OpSpillIn:
			e.fast = true
		}
	}
	return d
}

// Len returns the number of ops in the stream.
func (d *Decoded) Len() int { return len(d.ops) }

// Prog returns the underlying program.
func (d *Decoded) Prog() *isa.Program { return d.prog }

// ExecDecoded executes op i of the decoded stream. It is Exec with the
// statically hoisted checks removed; dynamic conditions (row presence,
// D-group bounds, host IO availability, spill-slot liveness) are still
// checked per op, and ops Decode flagged as slow delegate to Exec so every
// error and hook interaction is identical to the undecoded path.
func (s *Subarray) ExecDecoded(d *Decoded, i int, io *HostIO, spill *SpillStore) error {
	op := &d.ops[i]
	if !op.fast {
		return s.Exec(&d.prog.Ops[i], io, spill)
	}
	idx := s.opIdx
	s.opIdx++
	switch op.kind {
	case isa.OpAAP:
		src, err := s.load(idx, op.src)
		if err != nil {
			return err
		}
		tmp := s.scratch
		copy(tmp, src)
		if s.hook != nil {
			s.hook.AfterCopy(idx, tmp, s.lanes)
		}
		for k := 0; k < int(op.ndst); k++ {
			s.setRow(op.dst[k], tmp)
			s.stored(idx, op.dst[k])
		}
		return nil

	case isa.OpAP:
		a, err := s.load(idx, op.dst[0])
		if err != nil {
			return err
		}
		b, err := s.load(idx, op.dst[1])
		if err != nil {
			return err
		}
		c, err := s.load(idx, op.dst[2])
		if err != nil {
			return err
		}
		res := s.scratch
		for i := range res {
			res[i] = (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
		}
		if s.hook != nil {
			s.hook.AfterCompute(idx, res, s.lanes)
		}
		for _, r := range op.dst {
			s.setRow(r, res)
			s.stored(idx, r)
		}
		return nil

	case isa.OpWrite:
		if io == nil || io.WriteData == nil {
			return fmt.Errorf("sim: WRITE with no host data source (tag %d)", op.tag)
		}
		data := io.WriteData(int(op.tag))
		if data == nil {
			return fmt.Errorf("sim: host has no data for WRITE tag %d", op.tag)
		}
		s.setRow(op.dst[0], data)
		s.stored(idx, op.dst[0])
		return nil

	case isa.OpRead:
		src, err := s.load(idx, op.src)
		if err != nil {
			return err
		}
		if io == nil || io.ReadSink == nil {
			return fmt.Errorf("sim: READ with no host sink (tag %d)", op.tag)
		}
		out := s.readBuf
		copy(out, src)
		io.ReadSink(int(op.tag), out)
		return nil

	case isa.OpSpillOut:
		src, err := s.load(idx, op.src)
		if err != nil {
			return err
		}
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		spill.put(op.imm, src, s.words)
		return nil

	case isa.OpSpillIn:
		if spill == nil {
			return fmt.Errorf("sim: spill with no spill store")
		}
		data, ok := spill.get(op.imm)
		if !ok {
			return fmt.Errorf("sim: SPILL_IN of unwritten slot %d", op.imm)
		}
		s.setRow(op.dst[0], data)
		s.stored(idx, op.dst[0])
		return nil

	case isa.OpRowInit:
		if op.cskip {
			if slot, ok := s.slot(op.dst[0]); ok && s.isPresent(slot) && !s.cDirty {
				return nil
			}
		}
		s.initRow(op.dst[0], op.imm)
		return nil
	}
	return fmt.Errorf("sim: unknown op kind %d", int(op.kind))
}

// RunDecodedCtx executes a decoded program entirely on one subarray —
// the single-placement fast path behind the kernel run entry points. It is
// RunCtx specialized to a constant (bank, sub): the same guard budget
// checkpoints run per op (sim-steps, then dram-commands, ctx every 256
// ops), errors carry the same "op %d at bank %d sub %d" wrapping, and every
// executed op is issued to the timing engine, so makespans, stats and stop
// points match the generic stream path exactly — without building a
// []dram.Placed or copying an isa.Op per command.
func (m *Machine) RunDecodedCtx(ctx context.Context, d *Decoded, bank, sub int, io *HostIO, b guard.Budget) (float64, error) {
	s := m.Sub(bank, sub)
	spill := m.spillAt(bank, sub)
	effIO := io
	if io != nil && (io.WriteDataAt != nil || io.ReadSinkAt != nil) {
		effIO = adapterIO(io, bank, sub)
	}
	eng := m.engine
	for i := 0; i < len(d.ops); i++ {
		if i&255 == 0 {
			if err := guard.Ctx(ctx); err != nil {
				return eng.Makespan(), err
			}
		}
		if err := guard.Check(guard.DimSimSteps, b.MaxSimSteps, i+1); err != nil {
			return eng.Makespan(), err
		}
		if err := guard.Check(guard.DimDRAMCommands, b.MaxDRAMCommands, i+1); err != nil {
			return eng.Makespan(), err
		}
		if err := s.ExecDecoded(d, i, effIO, spill); err != nil {
			return eng.Makespan(), fmt.Errorf("op %d at bank %d sub %d: %w", i, bank, sub, err)
		}
		eng.IssueOp(bank, sub, d.ops[i].kind, d.ops[i].imm)
	}
	return eng.Makespan(), nil
}
