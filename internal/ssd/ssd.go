// Package ssd models the secondary storage device that absorbs data spilled
// out of the DRAM subarrays, in the spirit of MQSim: a multi-queue SSD with
// per-channel/per-die service units, explicit page read / page program
// latencies, and an interface-bus transfer cost per page.
//
// The evaluation configuration follows Table I of the paper: a 60 GB drive
// with 1 channel, 1 chip per channel, 1 die per chip — i.e. the least
// parallel (and therefore most spill-hostile) configuration, which is what
// makes data spilling so expensive in the paper's spill-regime results.
package ssd

import (
	"fmt"
	"sync"
)

// Config describes the drive.
type Config struct {
	Channels    int
	ChipsPerCh  int
	DiesPerChip int
	PageBytes   int

	ReadLatencyNs    float64 // flash array read (tR)
	ProgramLatencyNs float64 // flash array program (tPROG)
	XferNsPerByte    float64 // channel interface transfer cost
	CapacityBytes    int64
}

// DefaultConfig returns the Table I drive: 60 GB, 1 channel, 1 chip, 1 die,
// 16 KB pages, MLC-class latencies (tR 50 us, tPROG 600 us), 1.2 GB/s
// channel interface.
func DefaultConfig() Config {
	return Config{
		Channels: 1, ChipsPerCh: 1, DiesPerChip: 1,
		PageBytes:        16 << 10,
		ReadLatencyNs:    50_000,
		ProgramLatencyNs: 600_000,
		XferNsPerByte:    1.0 / 1.2,
		CapacityBytes:    60 << 30,
	}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.ChipsPerCh <= 0 || c.DiesPerChip <= 0 {
		return fmt.Errorf("ssd: non-positive parallelism %+v", c)
	}
	if c.PageBytes <= 0 || c.CapacityBytes <= 0 {
		return fmt.Errorf("ssd: non-positive size %+v", c)
	}
	if c.ReadLatencyNs < 0 || c.ProgramLatencyNs < 0 || c.XferNsPerByte < 0 {
		return fmt.Errorf("ssd: negative latency %+v", c)
	}
	return nil
}

// Stats aggregates device activity.
type Stats struct {
	Reads       int
	Programs    int
	BytesRead   int64
	BytesWrite  int64
	BusyNs      float64 // total die-busy time
	QueueWaitNs float64 // total time requests waited for their die
	MaxQueueNs  float64
}

// Device is a queueing model of the drive. Each (channel, chip, die) tuple
// is a serial service unit; the channel interface is a second, shared
// resource. Requests carry an arrival time and experience queueing delay
// when their die or channel is busy.
//
// Device is safe for concurrent use.
type Device struct {
	cfg Config

	mu       sync.Mutex
	dieFree  []float64 // next-free time per die
	chanFree []float64 // next-free time per channel
	stats    Stats

	slotLen map[uint64]int // bytes stored per spill slot
	used    int64
}

// New creates a Device. It panics on an invalid config; use
// Config.Validate to check first when the config is not a literal.
func New(cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nd := cfg.Channels * cfg.ChipsPerCh * cfg.DiesPerChip
	return &Device{
		cfg:      cfg,
		dieFree:  make([]float64, nd),
		chanFree: make([]float64, cfg.Channels),
		slotLen:  make(map[uint64]int),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

func (d *Device) dieFor(slot uint64) (die, channel int) {
	nd := len(d.dieFree)
	die = int(slot % uint64(nd))
	channel = die % d.cfg.Channels
	return die, channel
}

func (d *Device) pages(bytes int) int {
	return (bytes + d.cfg.PageBytes - 1) / d.cfg.PageBytes
}

// Write stores bytes for slot arriving at arrivalNs and returns the request
// latency in nanoseconds (queueing + transfer + program).
func (d *Device) Write(slot uint64, bytes int, arrivalNs float64) float64 {
	return d.access(slot, bytes, arrivalNs, true)
}

// Read fetches a previously written slot and returns the request latency.
// Reading a slot that was never written is a modelling error and panics:
// it means the compiler emitted a SPILL_IN without a matching SPILL_OUT.
func (d *Device) Read(slot uint64, arrivalNs float64) float64 {
	d.mu.Lock()
	bytes, ok := d.slotLen[slot]
	d.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("ssd: read of unwritten spill slot %d", slot))
	}
	return d.access(slot, bytes, arrivalNs, false)
}

func (d *Device) access(slot uint64, bytes int, arrivalNs float64, write bool) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()

	die, ch := d.dieFor(slot)
	pages := d.pages(bytes)
	xfer := float64(bytes) * d.cfg.XferNsPerByte
	var flash float64
	if write {
		flash = float64(pages) * d.cfg.ProgramLatencyNs
	} else {
		flash = float64(pages) * d.cfg.ReadLatencyNs
	}

	start := arrivalNs
	if d.dieFree[die] > start {
		start = d.dieFree[die]
	}
	if d.chanFree[ch] > start {
		start = d.chanFree[ch]
	}
	wait := start - arrivalNs
	end := start + xfer + flash

	d.dieFree[die] = end
	d.chanFree[ch] = start + xfer // channel freed after the burst

	d.stats.BusyNs += xfer + flash
	d.stats.QueueWaitNs += wait
	if wait > d.stats.MaxQueueNs {
		d.stats.MaxQueueNs = wait
	}
	if write {
		d.stats.Programs += pages
		d.stats.BytesWrite += int64(bytes)
		if _, seen := d.slotLen[slot]; !seen {
			d.used += int64(pages * d.cfg.PageBytes)
		}
		d.slotLen[slot] = bytes
	} else {
		d.stats.Reads += pages
		d.stats.BytesRead += int64(bytes)
	}
	return end - arrivalNs
}

// UsedBytes reports the footprint of live spill slots.
func (d *Device) UsedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Overfull reports whether spill data exceeds the drive capacity.
func (d *Device) Overfull() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used > d.cfg.CapacityBytes
}

// Stats returns a snapshot of device activity.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Reset clears all state but keeps the configuration.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.dieFree {
		d.dieFree[i] = 0
	}
	for i := range d.chanFree {
		d.chanFree[i] = 0
	}
	d.stats = Stats{}
	d.slotLen = make(map[uint64]int)
	d.used = 0
}
