package ssd

import (
	"sync"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	c := DefaultConfig()
	c.Channels = 0
	if err := c.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	c = DefaultConfig()
	c.PageBytes = 0
	if err := c.Validate(); err == nil {
		t.Error("zero page accepted")
	}
	c = DefaultConfig()
	c.ReadLatencyNs = -1
	if err := c.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestWriteThenReadLatency(t *testing.T) {
	d := New(DefaultConfig())
	wl := d.Write(1, 8192, 0)
	if wl < DefaultConfig().ProgramLatencyNs {
		t.Errorf("write latency %.0f below program latency", wl)
	}
	// Read arriving after the write completes sees no queueing.
	rl := d.Read(1, wl+1)
	if rl < DefaultConfig().ReadLatencyNs {
		t.Errorf("read latency %.0f below flash read latency", rl)
	}
	if rl > DefaultConfig().ReadLatencyNs+float64(8192)*DefaultConfig().XferNsPerByte+1 {
		t.Errorf("unqueued read latency %.0f too high", rl)
	}
}

func TestReadUnwrittenPanics(t *testing.T) {
	d := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("read of unwritten slot did not panic")
		}
	}()
	d.Read(99, 0)
}

func TestQueueingBuildsUp(t *testing.T) {
	d := New(DefaultConfig()) // 1 die: everything serializes
	var last float64
	for i := 0; i < 10; i++ {
		lat := d.Write(uint64(i), 8192, 0) // all arrive at t=0
		if lat <= last {
			t.Fatalf("write %d latency %.0f did not grow (prev %.0f): no queueing", i, lat, last)
		}
		last = lat
	}
	st := d.Stats()
	if st.QueueWaitNs <= 0 {
		t.Error("no queue wait recorded")
	}
	if st.Programs != 10 {
		t.Errorf("programs = %d, want 10 (8 KB rows fit one 16 KB page)", st.Programs)
	}
}

func TestMultiChannelParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 4
	d := New(cfg)
	// Slots 0..3 map to different dies; simultaneous arrivals should not
	// queue behind each other (channel xfer aside).
	lat0 := d.Write(0, 8192, 0)
	lat1 := d.Write(1, 8192, 0)
	if lat1 > lat0+float64(8192)*cfg.XferNsPerByte+1 {
		t.Errorf("second channel write queued: %.0f vs %.0f", lat1, lat0)
	}
}

func TestMultiPageAccounting(t *testing.T) {
	cfg := DefaultConfig() // 16 KB pages
	d := New(cfg)
	d.Write(0, 40<<10, 0) // 40 KB = 3 pages
	st := d.Stats()
	if st.Programs != 3 {
		t.Errorf("programs = %d, want 3", st.Programs)
	}
	if d.UsedBytes() != 3*int64(cfg.PageBytes) {
		t.Errorf("used = %d", d.UsedBytes())
	}
}

func TestRewriteDoesNotGrowFootprint(t *testing.T) {
	d := New(DefaultConfig())
	d.Write(5, 8192, 0)
	u1 := d.UsedBytes()
	d.Write(5, 8192, 1e9)
	if d.UsedBytes() != u1 {
		t.Errorf("rewriting a slot grew footprint: %d -> %d", u1, d.UsedBytes())
	}
}

func TestOverfull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityBytes = 32 << 10 // two pages
	d := New(cfg)
	d.Write(0, 16<<10, 0)
	d.Write(1, 16<<10, 0)
	if d.Overfull() {
		t.Error("exactly-full drive reported overfull")
	}
	d.Write(2, 16<<10, 0)
	if !d.Overfull() {
		t.Error("overfull drive not reported")
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Write(1, 8192, 0)
	d.Reset()
	if d.UsedBytes() != 0 || d.Stats().Programs != 0 {
		t.Error("reset did not clear state")
	}
}

func TestConcurrentAccessSafe(t *testing.T) {
	d := New(DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				slot := uint64(g*100 + i)
				d.Write(slot, 4096, float64(i))
				d.Read(slot, float64(i)+1e9)
			}
		}(g)
	}
	wg.Wait()
	st := d.Stats()
	if st.Programs != 400 || st.Reads != 400 {
		t.Errorf("stats after concurrency: %+v", st)
	}
}
