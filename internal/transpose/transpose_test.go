package transpose

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m, orig [64]uint64
	for i := range m {
		m[i] = rng.Uint64()
	}
	orig = m
	Transpose64(&m)
	Transpose64(&m)
	if m != orig {
		t.Fatal("double transpose is not identity")
	}
}

func TestTranspose64Bits(t *testing.T) {
	var m [64]uint64
	m[3] = 1 << 17 // bit (row 3, col 17)
	Transpose64(&m)
	for i := range m {
		want := uint64(0)
		if i == 17 {
			want = 1 << 3
		}
		if m[i] != want {
			t.Fatalf("row %d = %#x, want %#x", i, m[i], want)
		}
	}
}

func TestRoundTripVarious(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ width, lanes int }{
		{1, 1}, {1, 64}, {8, 64}, {8, 100}, {16, 256}, {64, 64}, {13, 70}, {64, 1}, {32, 65},
	} {
		mask := ^uint64(0)
		if tc.width < 64 {
			mask = (uint64(1) << uint(tc.width)) - 1
		}
		elems := make([]uint64, tc.lanes)
		for i := range elems {
			elems[i] = rng.Uint64() & mask
		}
		rows := ToVertical(elems, tc.width, tc.lanes)
		if len(rows) != tc.width {
			t.Fatalf("w=%d l=%d: got %d rows", tc.width, tc.lanes, len(rows))
		}
		if len(rows[0]) != Words(tc.lanes) {
			t.Fatalf("w=%d l=%d: row has %d words, want %d", tc.width, tc.lanes, len(rows[0]), Words(tc.lanes))
		}
		back := FromVertical(rows, tc.width, tc.lanes)
		for i := range elems {
			if back[i] != elems[i] {
				t.Fatalf("w=%d l=%d lane %d: %#x != %#x", tc.width, tc.lanes, i, back[i], elems[i])
			}
		}
	}
}

func TestVerticalBitPlacement(t *testing.T) {
	// Element 5 = 0b10 (8-bit): bit 1 of lane 5 must be set in row 1.
	elems := make([]uint64, 64)
	elems[5] = 0b10
	rows := ToVertical(elems, 8, 64)
	if rows[0][0] != 0 {
		t.Errorf("row 0 = %#x, want 0", rows[0][0])
	}
	if rows[1][0] != 1<<5 {
		t.Errorf("row 1 = %#x, want %#x", rows[1][0], uint64(1)<<5)
	}
}

func TestHighBitsIgnored(t *testing.T) {
	elems := []uint64{0xFF}
	rows := ToVertical(elems, 4, 1)
	back := FromVertical(rows, 4, 1)
	if back[0] != 0xF {
		t.Errorf("width-4 round trip of 0xFF = %#x, want 0xF", back[0])
	}
}

func TestWideRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ width, lanes int }{
		{64, 64}, {128, 64}, {100, 70}, {512, 30}, {864, 10}, {65, 1},
	} {
		limbs := (tc.width + 63) / 64
		elems := make([][]uint64, tc.lanes)
		for i := range elems {
			elems[i] = make([]uint64, limbs)
			for j := range elems[i] {
				elems[i][j] = rng.Uint64()
			}
			// Mask the top limb to the width.
			if r := tc.width % 64; r != 0 {
				elems[i][limbs-1] &= (uint64(1) << uint(r)) - 1
			}
		}
		rows := ToVerticalWide(elems, tc.width, tc.lanes)
		if len(rows) != tc.width {
			t.Fatalf("w=%d: %d rows", tc.width, len(rows))
		}
		back := FromVerticalWide(rows, tc.width, tc.lanes)
		for i := range elems {
			for j := range elems[i] {
				if back[i][j] != elems[i][j] {
					t.Fatalf("w=%d lane %d limb %d: %#x != %#x", tc.width, i, j, back[i][j], elems[i][j])
				}
			}
		}
	}
}

func TestWideMatchesNarrowFor64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lanes := 128
	elems := make([]uint64, lanes)
	wide := make([][]uint64, lanes)
	for i := range elems {
		elems[i] = rng.Uint64()
		wide[i] = []uint64{elems[i]}
	}
	r1 := ToVertical(elems, 64, lanes)
	r2 := ToVerticalWide(wide, 64, lanes)
	for b := 0; b < 64; b++ {
		for w := range r1[b] {
			if r1[b][w] != r2[b][w] {
				t.Fatalf("row %d word %d differ", b, w)
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64, wRaw, lRaw uint16) bool {
		width := int(wRaw)%64 + 1
		lanes := int(lRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		mask := ^uint64(0)
		if width < 64 {
			mask = (uint64(1) << uint(width)) - 1
		}
		elems := make([]uint64, lanes)
		for i := range elems {
			elems[i] = rng.Uint64() & mask
		}
		back := FromVertical(ToVertical(elems, width, lanes), width, lanes)
		for i := range elems {
			if back[i] != elems[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"width0":  func() { ToVertical(nil, 0, 0) },
		"width65": func() { ToVertical(nil, 65, 0) },
		"short":   func() { ToVertical(make([]uint64, 3), 8, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestToVerticalIntoMatchesToVertical packs several lane groups into one
// shared arena and checks every span equals a standalone ToVertical of
// the same elements, with untouched words preserved.
func TestToVerticalIntoMatchesToVertical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width = 11
	groups := []int{64, 1, 63, 65, 128, 7}
	total := 0
	offs := make([]int, len(groups))
	for i, lanes := range groups {
		offs[i] = total
		total += Words(lanes)
	}
	dst := make([][]uint64, width)
	for b := range dst {
		dst[b] = make([]uint64, total)
		for i := range dst[b] {
			dst[b][i] = ^uint64(0) // sentinel: must be overwritten span-exactly
		}
	}
	elems := make([][]uint64, len(groups))
	for gi, lanes := range groups {
		elems[gi] = make([]uint64, lanes)
		for i := range elems[gi] {
			elems[gi][i] = rng.Uint64()
		}
		ToVerticalInto(dst, offs[gi], elems[gi], width, lanes)
	}
	for gi, lanes := range groups {
		want := ToVertical(elems[gi], width, lanes)
		w := Words(lanes)
		for b := 0; b < width; b++ {
			for i := 0; i < w; i++ {
				if got := dst[b][offs[gi]+i]; got != want[b][i] {
					t.Fatalf("group %d row %d word %d: got %#x want %#x", gi, b, i, got, want[b][i])
				}
			}
		}
	}
}

// TestPasteRowsMasksTail pastes pre-transposed rows and checks the tail
// word is masked to the lane count and short source rows read as zero.
func TestPasteRowsMasksTail(t *testing.T) {
	src := [][]uint64{{^uint64(0), ^uint64(0)}, {0x123456789abcdef0}}
	dst := [][]uint64{make([]uint64, 5), make([]uint64, 5)}
	for b := range dst {
		for i := range dst[b] {
			dst[b][i] = 0xdead
		}
	}
	PasteRows(dst, 2, src, 70) // 2 words, tail masked to 6 bits
	if dst[0][2] != ^uint64(0) || dst[0][3] != (1<<6)-1 {
		t.Fatalf("row 0 spans wrong: %#x %#x", dst[0][2], dst[0][3])
	}
	if dst[1][2] != 0x123456789abcdef0 || dst[1][3] != 0 {
		t.Fatalf("row 1 spans wrong: %#x %#x (short source must read 0)", dst[1][2], dst[1][3])
	}
	for b := range dst {
		if dst[b][0] != 0xdead || dst[b][1] != 0xdead || dst[b][4] != 0xdead {
			t.Fatalf("row %d: words outside the span were touched", b)
		}
	}
}

// TestFromVerticalOfPastedSpan checks the round trip through a shared
// arena: elements transposed into a span come back exactly.
func TestFromVerticalOfPastedSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const width, lanes, off = 13, 65, 3
	elems := make([]uint64, lanes)
	mask := uint64(1)<<width - 1
	for i := range elems {
		elems[i] = rng.Uint64() & mask
	}
	dst := make([][]uint64, width)
	for b := range dst {
		dst[b] = make([]uint64, off+Words(lanes)+2)
	}
	ToVerticalInto(dst, off, elems, width, lanes)
	sub := make([][]uint64, width)
	for b := range sub {
		sub[b] = dst[b][off : off+Words(lanes)]
	}
	got := FromVertical(sub, width, lanes)
	for i := range elems {
		if got[i] != elems[i] {
			t.Fatalf("lane %d: got %#x want %#x", i, got[i], elems[i])
		}
	}
}
