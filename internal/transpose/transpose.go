// Package transpose implements the host-side data transposition that
// Bit-serial SIMD PUD architectures require: converting operands from the
// conventional horizontal layout (one element per memory word) into the
// vertical, bit-serial layout (bit i of every lane gathered into one DRAM
// row) and back. The CHOPPER front-end emits this code for the host
// processor; the PUD program then consumes the transposed rows via WRITE
// micro-ops.
//
// The core primitive is the classic 64x64 bit-matrix transpose
// (Hacker's Delight, 7-3), applied blockwise over the lane dimension.
package transpose

import "fmt"

// Words returns the number of 64-bit words needed to hold `lanes` bits.
func Words(lanes int) int { return (lanes + 63) / 64 }

// Transpose64 transposes a 64x64 bit matrix in place: bit j of word i moves
// to bit i of word j.
func Transpose64(m *[64]uint64) {
	j := 32
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (m[k] ^ (m[k+j] << j)) & (mask << j)
			m[k] ^= t
			m[k+j] ^= t >> j
		}
		j >>= 1
		mask ^= mask << j
	}
}

// ToVertical converts `lanes` elements of `width` bits (width <= 64, one
// element per entry of elems, low bits significant) into `width` bit-rows of
// Words(lanes) words each: row b, bit l == bit b of element l.
//
// len(elems) must be at least lanes; extra entries are ignored. Bits of an
// element at positions >= width are ignored.
func ToVertical(elems []uint64, width, lanes int) [][]uint64 {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("transpose: width %d out of range (1..64)", width))
	}
	if len(elems) < lanes {
		panic(fmt.Sprintf("transpose: %d elements for %d lanes", len(elems), lanes))
	}
	w := Words(lanes)
	rows := make([][]uint64, width)
	backing := make([]uint64, width*w)
	for b := range rows {
		rows[b], backing = backing[:w], backing[w:]
	}
	var block [64]uint64
	for base := 0; base < lanes; base += 64 {
		n := lanes - base
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			block[i] = elems[base+i]
		}
		for i := n; i < 64; i++ {
			block[i] = 0
		}
		Transpose64(&block)
		word := base / 64
		if n == 64 {
			for b := 0; b < width; b++ {
				rows[b][word] = block[b]
			}
		} else {
			tailMask := (uint64(1) << uint(n)) - 1
			for b := 0; b < width; b++ {
				rows[b][word] = block[b] & tailMask
			}
		}
	}
	return rows
}

// ToVerticalInto is ToVertical writing into caller-allocated rows at a
// word offset: bit b of element l lands in bit l%64 of dst[b][off+l/64].
// It is the zero-copy primitive batched execution uses to pack several
// requests' operands into one shared arena — each request transposes
// directly into its own word-aligned lane span. dst must have at least
// `width` rows of at least off+Words(lanes) words; words outside the
// span are left untouched, and the span's tail word is masked to `lanes`
// bits exactly as ToVertical masks its own tail.
func ToVerticalInto(dst [][]uint64, off int, elems []uint64, width, lanes int) {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("transpose: width %d out of range (1..64)", width))
	}
	if len(elems) < lanes {
		panic(fmt.Sprintf("transpose: %d elements for %d lanes", len(elems), lanes))
	}
	if len(dst) < width {
		panic(fmt.Sprintf("transpose: %d destination rows for width %d", len(dst), width))
	}
	w := Words(lanes)
	for b := 0; b < width; b++ {
		if len(dst[b]) < off+w {
			panic(fmt.Sprintf("transpose: destination row %d has %d words, need %d", b, len(dst[b]), off+w))
		}
	}
	var block [64]uint64
	for base := 0; base < lanes; base += 64 {
		n := lanes - base
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			block[i] = elems[base+i]
		}
		for i := n; i < 64; i++ {
			block[i] = 0
		}
		Transpose64(&block)
		word := off + base/64
		if n == 64 {
			for b := 0; b < width; b++ {
				dst[b][word] = block[b]
			}
		} else {
			tailMask := (uint64(1) << uint(n)) - 1
			for b := 0; b < width; b++ {
				dst[b][word] = block[b] & tailMask
			}
		}
	}
}

// PasteRows copies vertical rows already in bit-row layout into dst at a
// word offset, masking each row's tail word to `lanes` bits. It is the
// paste half of batched packing for operands that arrive pre-transposed
// (wide verify inputs). src rows shorter than Words(lanes) read as zero.
func PasteRows(dst [][]uint64, off int, src [][]uint64, lanes int) {
	w := Words(lanes)
	mask := ^uint64(0)
	if r := lanes % 64; r != 0 {
		mask = (uint64(1) << uint(r)) - 1
	}
	if len(dst) < len(src) {
		panic(fmt.Sprintf("transpose: %d destination rows for %d source rows", len(dst), len(src)))
	}
	for b := range src {
		if len(dst[b]) < off+w {
			panic(fmt.Sprintf("transpose: destination row %d has %d words, need %d", b, len(dst[b]), off+w))
		}
		for i := 0; i < w; i++ {
			var v uint64
			if i < len(src[b]) {
				v = src[b][i]
			}
			if i == w-1 {
				v &= mask
			}
			dst[b][off+i] = v
		}
	}
}

// FromVertical is the inverse of ToVertical: it gathers bit l of every row
// back into element l. Rows beyond len(rows) read as zero, so a narrower
// result can be widened for free.
func FromVertical(rows [][]uint64, width, lanes int) []uint64 {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("transpose: width %d out of range (1..64)", width))
	}
	elems := make([]uint64, lanes)
	var block [64]uint64
	for base := 0; base < lanes; base += 64 {
		n := lanes - base
		if n > 64 {
			n = 64
		}
		word := base / 64
		for b := 0; b < width && b < len(rows); b++ {
			if word < len(rows[b]) {
				block[b] = rows[b][word]
			} else {
				block[b] = 0
			}
		}
		for b := width; b < 64; b++ {
			block[b] = 0
		}
		if width <= len(rows) {
			for b := width; b < 64 && b < len(rows); b++ {
				block[b] = 0
			}
		}
		Transpose64(&block)
		for i := 0; i < n; i++ {
			elems[base+i] = block[i]
		}
	}
	return elems
}

// ToVerticalWide converts wide elements (each a little-endian slice of
// 64-bit limbs) into `width` bit-rows. width may exceed 64; limbs beyond
// an element's length read as zero.
func ToVerticalWide(elems [][]uint64, width, lanes int) [][]uint64 {
	if width <= 0 {
		panic("transpose: non-positive width")
	}
	if len(elems) < lanes {
		panic(fmt.Sprintf("transpose: %d elements for %d lanes", len(elems), lanes))
	}
	w := Words(lanes)
	rows := make([][]uint64, width)
	for b := range rows {
		rows[b] = make([]uint64, w)
	}
	limbs := (width + 63) / 64
	var block [64]uint64
	scratch := make([]uint64, 64)
	for limb := 0; limb < limbs; limb++ {
		lo := limb * 64
		hi := lo + 64
		if hi > width {
			hi = width
		}
		for base := 0; base < lanes; base += 64 {
			n := lanes - base
			if n > 64 {
				n = 64
			}
			for i := 0; i < 64; i++ {
				scratch[i] = 0
			}
			for i := 0; i < n; i++ {
				e := elems[base+i]
				if limb < len(e) {
					scratch[i] = e[limb]
				}
			}
			copy(block[:], scratch)
			Transpose64(&block)
			word := base / 64
			for b := lo; b < hi; b++ {
				rows[b][word] = block[b-lo]
			}
		}
	}
	return rows
}

// FromVerticalWide gathers bit-rows back into wide elements of
// ceil(width/64) limbs each.
func FromVerticalWide(rows [][]uint64, width, lanes int) [][]uint64 {
	if width <= 0 {
		panic("transpose: non-positive width")
	}
	limbs := (width + 63) / 64
	elems := make([][]uint64, lanes)
	for i := range elems {
		elems[i] = make([]uint64, limbs)
	}
	var block [64]uint64
	for limb := 0; limb < limbs; limb++ {
		lo := limb * 64
		hi := lo + 64
		if hi > width {
			hi = width
		}
		for base := 0; base < lanes; base += 64 {
			n := lanes - base
			if n > 64 {
				n = 64
			}
			word := base / 64
			for b := 0; b < 64; b++ {
				block[b] = 0
			}
			for b := lo; b < hi && b < len(rows); b++ {
				if word < len(rows[b]) {
					block[b-lo] = rows[b][word]
				}
			}
			Transpose64(&block)
			for i := 0; i < n; i++ {
				elems[base+i][limb] = block[i]
			}
		}
	}
	return elems
}
