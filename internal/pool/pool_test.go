package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"chopper/internal/guard"
)

func TestRunExecutesAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 97
		hit := make([]atomic.Bool, n)
		if err := Run(workers, n, func(i int) error {
			if hit[i].Swap(true) {
				return fmt.Errorf("index %d ran twice", i)
			}
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hit {
			if !hit[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestRunReturnsLowestError(t *testing.T) {
	// Whatever the interleaving, the reported error must be the one from
	// the lowest failing index.
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 20; rep++ {
			err := Run(workers, 64, func(i int) error {
				if i == 7 || i == 40 {
					return fmt.Errorf("fail at %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail at 7" {
				t.Fatalf("workers=%d rep=%d: got %v, want fail at 7", workers, rep, err)
			}
		}
	}
}

func TestRunLowerIndicesAlwaysRun(t *testing.T) {
	// A failure at a high index must not skip lower indices: the lowest
	// failing index always executes, keeping the result deterministic.
	var ran atomic.Int64
	err := Run(4, 32, func(i int) error {
		ran.Add(1)
		if i >= 16 {
			return errors.New("late failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() < 17 {
		t.Fatalf("only %d indices ran; the 16 passing ones plus a failure must", ran.Load())
	}
}

func TestRunCtxPreCanceledRunsNothing(t *testing.T) {
	// A context that is dead on entry must return its sentinel before any
	// item runs — identically at every worker count.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		var ran atomic.Int64
		err := RunCtx(ctx, workers, 64, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, guard.ErrCanceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d items ran under a pre-canceled ctx", workers, ran.Load())
		}
	}
	// Deadline expiry surfaces as the distinct deadline sentinel.
	d, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := RunCtx(d, 4, 8, func(int) error { return nil }); !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestRunCtxMidRunCancelNeverCompletes(t *testing.T) {
	// Cancel once the run is in flight: the pool must stop promptly and
	// must NOT return nil (a partial run reported as complete).
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := RunCtx(ctx, workers, 10000, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, guard.ErrCanceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled", workers, err)
		}
		if ran.Load() >= 10000 {
			t.Fatalf("workers=%d: all items ran despite cancellation", workers)
		}
	}
}

func TestRunCtxItemErrorBeatsLateCancel(t *testing.T) {
	// The lowest-failing-index contract survives cancellation: an item
	// error recorded before the cancel wins over the sentinel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunCtx(ctx, 4, 64, func(i int) error {
		if i == 3 {
			defer cancel()
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Fatalf("got %v, want fail at 3", err)
	}
}

func TestRunCtxNilCtxBehavesLikeRun(t *testing.T) {
	var ran atomic.Int64
	if err := RunCtx(nil, 4, 32, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32", ran.Load())
	}
}

func TestRunEmptyAndSize(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if got := Size(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Size(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(5); got != 5 {
		t.Errorf("Size(5) = %d", got)
	}
}
