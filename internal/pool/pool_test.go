package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunExecutesAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 97
		hit := make([]atomic.Bool, n)
		if err := Run(workers, n, func(i int) error {
			if hit[i].Swap(true) {
				return fmt.Errorf("index %d ran twice", i)
			}
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hit {
			if !hit[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestRunReturnsLowestError(t *testing.T) {
	// Whatever the interleaving, the reported error must be the one from
	// the lowest failing index.
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 20; rep++ {
			err := Run(workers, 64, func(i int) error {
				if i == 7 || i == 40 {
					return fmt.Errorf("fail at %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail at 7" {
				t.Fatalf("workers=%d rep=%d: got %v, want fail at 7", workers, rep, err)
			}
		}
	}
}

func TestRunLowerIndicesAlwaysRun(t *testing.T) {
	// A failure at a high index must not skip lower indices: the lowest
	// failing index always executes, keeping the result deterministic.
	var ran atomic.Int64
	err := Run(4, 32, func(i int) error {
		ran.Add(1)
		if i >= 16 {
			return errors.New("late failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() < 17 {
		t.Fatalf("only %d indices ran; the 16 passing ones plus a failure must", ran.Load())
	}
}

func TestRunEmptyAndSize(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if got := Size(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Size(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(5); got != 5 {
		t.Errorf("Size(5) = %d", got)
	}
}
