// Package pool provides a bounded fork-join worker pool with a
// deterministic error contract, used to fan independent trials, grid
// points and tiles out across CPU cores.
//
// Parallel sections in this codebase must be byte-identical at any worker
// count: every unit of work derives its randomness from (seed, index), so
// the only scheduling-dependent artifact left is *which* error a failing
// run reports. Run pins that down too — it always reports the error of
// the lowest failing index, regardless of how goroutines interleave — so
// `Verify` under 1 worker and under GOMAXPROCS workers return the same
// error, message and all.
//
// RunCtx adds cooperative cancellation on top: workers observe the
// context between items and a canceled run surfaces as the distinct
// guard.ErrCanceled / guard.ErrDeadline sentinels, never as a silently
// truncated "success".
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"chopper/internal/guard"
)

// Size resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS).
func Size(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes fn(i) for every index i in [0, n), spreading the indices
// over Size(workers) goroutines. If workers resolves to 1 (or n is 1) the
// calls happen inline on the caller's goroutine — no spawn, no overhead.
//
// The error contract is deterministic: Run returns the error of the
// LOWEST failing index. Once some index fails, indices above it that have
// not started yet are skipped (they can never change the result); indices
// below a recorded failure always run, so the winner cannot depend on
// scheduling. fn must confine its side effects to index-disjoint state
// (e.g. slot i of a results slice) for the whole section to stay
// deterministic.
func Run(workers, n int, fn func(i int) error) error {
	return RunCtx(nil, workers, n, fn)
}

// RunCtx is Run with cooperative cancellation: every worker observes ctx
// between items, so a canceled or deadline-expired context stops the
// fan-out promptly — no new items start, in-flight items finish — and
// RunCtx returns guard.ErrCanceled or guard.ErrDeadline. A nil ctx (what
// Run passes) disables the checks at negligible cost.
//
// The deterministic error contract is preserved: if any item failed, the
// error of the LOWEST failing index wins, exactly as in Run, regardless
// of worker count. The cancellation sentinel is returned only when no
// item error was recorded, so a partial run is never reported as
// complete: a nil result still means every index ran. A context that is
// already dead on entry returns its sentinel before item 0 starts, at
// any worker count.
func RunCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return guard.Ctx(ctx)
	}
	if err := guard.Ctx(ctx); err != nil {
		return err
	}
	w := Size(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := guard.Ctx(ctx); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64          // next index to claim
	var minFailAtomic atomic.Int64 // lowest failing index seen so far
	minFailAtomic.Store(int64(n))

	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if guard.Ctx(ctx) != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				// Indices above the lowest known failure cannot win;
				// skip them (but keep draining so lower indices finish).
				if int64(i) > minFailAtomic.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := minFailAtomic.Load()
						if int64(i) >= cur || minFailAtomic.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return guard.Ctx(ctx)
}
