package dram

// Golden equivalence for the dense-slice engine rewrite: a verbatim copy of
// the pre-rewrite map-backed Engine.Issue schedules random command streams
// in lockstep with the new engine, and every per-op completion time plus
// the full stats block must match exactly (float-for-float: the rewrite
// preserves the original operation order, so results are bit-identical).

import (
	"math/rand"
	"testing"

	"chopper/internal/isa"
)

// seedEngine is the map-backed engine exactly as it stood before the
// dense-slice rewrite (commit 5e56f8e).
type seedEngine struct {
	geom   Geometry
	timing Timing
	salp   bool

	IssueGapNs float64

	busFree   float64
	lastStart float64
	unit      map[unitKey]float64
	subSeq    map[unitKey]float64
	now       float64

	SSDDelay func(out bool, slot uint64, startNs float64) float64

	stats EngineStats
}

func newSeedEngine(g Geometry, t Timing, salp bool) *seedEngine {
	return &seedEngine{
		geom: g, timing: t, salp: salp,
		IssueGapNs: 0.833,
		unit:       make(map[unitKey]float64),
		subSeq:     make(map[unitKey]float64),
	}
}

func (e *seedEngine) unitKeyFor(p *Placed) unitKey {
	if e.salp {
		return unitKey{p.Bank, p.Subarray}
	}
	return unitKey{p.Bank, 0}
}

func (e *seedEngine) issue(p Placed) float64 {
	lat := e.timing.OpLatency(&p.Op)
	bus := e.timing.BusLatency(&p.Op)

	uk := e.unitKeyFor(&p)
	sk := unitKey{p.Bank, p.Subarray}

	start := e.unit[uk]
	if s := e.subSeq[sk]; s > start {
		start = s
	}
	if s := e.lastStart + e.IssueGapNs; s > start && e.stats.Ops > 0 {
		start = s
	}

	if bus > 0 {
		if e.busFree > start {
			start = e.busFree
		}
		e.busFree = start + bus
		e.stats.BusBusyNs += bus
	}

	var ssdNs float64
	switch p.Op.Kind {
	case isa.OpSpillOut:
		e.stats.SpillOuts++
		if e.SSDDelay != nil {
			ssdNs = e.SSDDelay(true, p.Op.Imm, start)
		}
	case isa.OpSpillIn:
		e.stats.SpillIns++
		if e.SSDDelay != nil {
			ssdNs = e.SSDDelay(false, p.Op.Imm, start)
		}
	}

	end := start + lat + ssdNs
	e.lastStart = start
	if _, seen := e.unit[uk]; !seen {
		e.stats.DistinctUnit++
	}
	e.unit[uk] = end
	e.subSeq[sk] = end
	if end > e.now {
		e.now = end
	}

	e.stats.Ops++
	e.stats.EnergyPJ += e.timing.OpEnergyPJ(&p.Op)
	if p.Op.IsTransfer() {
		e.stats.Transfers++
		e.stats.TransferNs += lat
	} else {
		e.stats.ComputeNs += lat
	}
	e.stats.SSDNs += ssdNs
	busy := e.unit[uk]
	if busy > e.stats.MaxUnitBusy {
		e.stats.MaxUnitBusy = busy
	}
	return end
}

func (e *seedEngine) makespan() float64 { return e.now * (1 + RefreshOverhead) }

// genStream builds a random placed command stream, including placements
// beyond the geometry (the overflow-map path) and unknown op kinds.
func genStream(rng *rand.Rand, g Geometry, n int) []Placed {
	ops := []isa.Op{
		isa.NewAAP(isa.Row(0), isa.Row(1)),
		isa.NewAP(isa.T0, isa.T1, isa.T2),
		isa.NewWrite(isa.Row(2), 1),
		isa.NewRead(isa.Row(2), 2),
		isa.NewSpillOut(isa.Row(3), 7),
		isa.NewSpillIn(isa.Row(3), 7),
		isa.NewRowInit(isa.Row(4), 0),
		{Kind: isa.OpKind(99)}, // unknown kind: zero-latency, like the seed
	}
	stream := make([]Placed, n)
	for i := range stream {
		bank := rng.Intn(g.Banks)
		sub := rng.Intn(g.SubarraysPB)
		if rng.Intn(20) == 0 { // beyond-geometry placement
			bank = g.Banks + rng.Intn(3)
		}
		stream[i] = Placed{Bank: bank, Subarray: sub, Op: ops[rng.Intn(len(ops))]}
	}
	return stream
}

func TestEngineSeedEquivalence(t *testing.T) {
	for _, salp := range []bool{false, true} {
		for _, withSSD := range []bool{false, true} {
			for streamSeed := int64(0); streamSeed < 6; streamSeed++ {
				g := DefaultGeometry()
				g.Banks, g.SubarraysPB = 4, 8 // small, so contention actually happens
				tm := TimingFor(isa.Ambit, g)
				if streamSeed%2 == 1 {
					tm = TimingFor(isa.ELP2IM, g)
				}
				ref := newSeedEngine(g, tm, salp)
				eng := NewEngine(g, tm, salp)
				if withSSD {
					ssdFn := func(out bool, slot uint64, startNs float64) float64 {
						d := 3000.0 + float64(slot)*17
						if out {
							d += 25000
						}
						return d
					}
					ref.SSDDelay = ssdFn
					eng.SSDDelay = ssdFn
				}
				rng := rand.New(rand.NewSource(streamSeed))
				stream := genStream(rng, g, 400)
				for i, p := range stream {
					want := ref.issue(p)
					got := eng.Issue(p)
					if want != got {
						t.Fatalf("salp=%v ssd=%v seed=%d op %d: completion %v != seed %v", salp, withSSD, streamSeed, i, got, want)
					}
				}
				if ref.makespan() != eng.Makespan() {
					t.Fatalf("salp=%v ssd=%v seed=%d: makespan %v != seed %v", salp, withSSD, streamSeed, eng.Makespan(), ref.makespan())
				}
				refStats := ref.stats
				refStats.MakespanNs = ref.makespan()
				if got := eng.Stats(); got != refStats {
					t.Fatalf("salp=%v ssd=%v seed=%d: stats diverged\nseed: %+v\nnew:  %+v", salp, withSSD, streamSeed, refStats, got)
				}
			}
		}
	}
}

// TestEngineResetEquivalence proves a Reset engine behaves like a fresh
// one, and Reconfigure like a fresh engine of the new shape.
func TestEngineResetEquivalence(t *testing.T) {
	g := DefaultGeometry()
	g.Banks, g.SubarraysPB = 4, 8
	tm := TimingFor(isa.SIMDRAM, g)
	eng := NewEngine(g, tm, true)
	rng := rand.New(rand.NewSource(7))
	for _, p := range genStream(rng, g, 200) {
		eng.Issue(p)
	}

	// Reset: replay a second stream and compare with a fresh engine.
	eng.Reset()
	fresh := NewEngine(g, tm, true)
	rng2 := rand.New(rand.NewSource(8))
	stream := genStream(rng2, g, 200)
	for i, p := range stream {
		if got, want := eng.Issue(p), fresh.Issue(p); got != want {
			t.Fatalf("after Reset, op %d: %v != fresh %v", i, got, want)
		}
	}
	if eng.Stats() != fresh.Stats() {
		t.Fatalf("after Reset: stats diverged\nreused: %+v\nfresh:  %+v", eng.Stats(), fresh.Stats())
	}

	// Reconfigure to a different shape: same comparison.
	g2 := g
	g2.Banks, g2.SubarraysPB = 2, 16
	tm2 := TimingFor(isa.ELP2IM, g2)
	eng.Reconfigure(g2, tm2, false)
	fresh2 := NewEngine(g2, tm2, false)
	rng3 := rand.New(rand.NewSource(9))
	for i, p := range genStream(rng3, g2, 200) {
		if got, want := eng.Issue(p), fresh2.Issue(p); got != want {
			t.Fatalf("after Reconfigure, op %d: %v != fresh %v", i, got, want)
		}
	}
	if eng.Stats() != fresh2.Stats() {
		t.Fatalf("after Reconfigure: stats diverged")
	}
}
