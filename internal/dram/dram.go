// Package dram models the DRAM device that hosts Bit-serial SIMD PUD
// computation: its geometry (channel/rank/bank/subarray/row/bitline), its
// DDR4 command timing, and a command-level timing engine that accounts for
// Bank-Level Parallelism (BLP) and, optionally, Subarray-Level Parallelism
// (SALP) in the style of Kim et al. (ISCA 2012).
//
// The engine is deliberately command-level rather than cycle-level: every
// figure in the CHOPPER evaluation is driven by the number of AAP/AP/transfer
// commands issued per subarray and by how transfers overlap computation, so a
// model of per-command latencies plus shared-bus serialization reproduces the
// quantities the paper measures.
package dram

import (
	"context"
	"fmt"
	"time"

	"chopper/internal/guard"
	"chopper/internal/isa"
)

// Geometry describes the DRAM organization visible to the compiler.
type Geometry struct {
	Banks        int // banks per rank (evaluation default: 16)
	SubarraysPB  int // subarrays per bank
	RowsPerSub   int // rows per subarray (512 / 1024 / 2048 in Fig. 11)
	RowBytes     int // bytes per row (8 KB in the evaluation)
	ReservedRows int // rows reserved for C-group + B-group bookkeeping

	// Channels is the number of independent memory channels, each with
	// its own command/data bus and its own set of Banks banks. A
	// multi-channel device holds Channels x Banks x SubarraysPB
	// subarrays, and streams bound to different channels share no
	// timing resources at all (the tiled path replays each channel on
	// its own Engine). The zero value means 1, so every geometry built
	// before channels existed keeps its exact capacity and timing.
	Channels int
}

// ChannelCount returns the effective channel count (the zero value of
// Channels means one channel).
func (g Geometry) ChannelCount() int {
	if g.Channels < 1 {
		return 1
	}
	return g.Channels
}

// DefaultGeometry returns the evaluation default: 16 banks, 64 subarrays per
// bank, 1024 rows per subarray, 8 KB rows. Of the 1024 rows, 18 are reserved
// (2 C-group + 16 B-group), leaving 1006 D-group rows, matching the Ambit
// row-address split described in the paper.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 16, SubarraysPB: 64, RowsPerSub: 1024, RowBytes: 8192, ReservedRows: 18}
}

// WithRowsPerSub returns a copy with the subarray size changed while keeping
// the total per-bank capacity fixed (as Fig. 11 does): halving the rows per
// subarray doubles the subarray count. When rows does not divide the per-bank
// capacity, the subarray count is EXPLICITLY rounded down (never below 1) and
// the remainder capacity is dropped — use WithRowsPerSubChecked to surface
// that as an error instead. rows must be positive; non-positive values panic
// with a descriptive message (they previously crashed with a bare
// divide-by-zero).
func (g Geometry) WithRowsPerSub(rows int) Geometry {
	g2, err := g.WithRowsPerSubChecked(rows)
	if err == nil {
		return g2
	}
	if rows <= 0 {
		panic(fmt.Sprintf("dram: WithRowsPerSub(%d): rows must be positive", rows))
	}
	// Non-dividing rows: round the subarray count down, documented above.
	total := g.SubarraysPB * g.RowsPerSub
	g.RowsPerSub = rows
	g.SubarraysPB = total / rows
	if g.SubarraysPB < 1 {
		g.SubarraysPB = 1
	}
	return g
}

// WithRowsPerSubChecked is WithRowsPerSub with validation instead of
// rounding: it errors when rows is non-positive, when rows does not divide
// the per-bank row capacity (the silent-capacity-loss case), or when the
// resulting geometry has no usable data rows.
func (g Geometry) WithRowsPerSubChecked(rows int) (Geometry, error) {
	if rows <= 0 {
		return Geometry{}, fmt.Errorf("dram: WithRowsPerSub(%d): rows must be positive", rows)
	}
	total := g.SubarraysPB * g.RowsPerSub
	if total%rows != 0 {
		return Geometry{}, fmt.Errorf("dram: WithRowsPerSub(%d): %d rows per bank is not divisible; %d rows of capacity would be dropped",
			rows, total, total%rows)
	}
	g.RowsPerSub = rows
	g.SubarraysPB = total / rows
	if err := g.Validate(); err != nil {
		return Geometry{}, fmt.Errorf("dram: WithRowsPerSub(%d): %w", rows, err)
	}
	return g, nil
}

// DRows returns the number of usable data rows per subarray.
func (g Geometry) DRows() int { return g.RowsPerSub - g.ReservedRows }

// Bitlines returns the SIMD width of one subarray in lanes (bitlines).
func (g Geometry) Bitlines() int { return g.RowBytes * 8 }

// Validate rejects degenerate geometries.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.SubarraysPB <= 0 || g.RowBytes <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", g)
	}
	if g.Channels < 0 {
		return fmt.Errorf("dram: negative channel count %d", g.Channels)
	}
	if g.DRows() <= 0 {
		return fmt.Errorf("dram: no data rows left (rows=%d reserved=%d)", g.RowsPerSub, g.ReservedRows)
	}
	return nil
}

// Timing holds per-command latencies for one PUD architecture on a DDR4-2400
// substrate. All values are in nanoseconds.
type Timing struct {
	TRCD float64 // ACTIVATE to column command
	TRAS float64 // ACTIVATE to PRECHARGE
	TRP  float64 // PRECHARGE period
	TRC  float64 // full row cycle (TRAS + TRP)

	AAP     float64 // row-copy (ACTIVATE-ACTIVATE-PRECHARGE)
	AP      float64 // triple-row activation compute step
	RowInit float64 // constant-row initialization (a single AAP from C-group)

	// RowXferNs is the pure bus-transfer time for one row (RowBytes over
	// the DDR4-2400 channel), excluding the activation overhead, which is
	// added separately because under BLP the activation happens inside the
	// target bank while the bus is busy with another bank's burst.
	RowXferNs float64
	// XferOverheadNs is the per-row activation + command overhead of a
	// host transfer (tRCD + tRP amortized over a full-row burst).
	XferOverheadNs float64

	// Per-command energies in picojoules. In-DRAM computation costs row
	// activations; host transfers additionally pay I/O energy per bit —
	// the dominant term, and the reason processing-using-DRAM saves
	// energy at all.
	AAPEnergyPJ  float64
	APEnergyPJ   float64
	XferEnergyPJ float64 // full-row transfer over the channel
}

// DDR4-2400 base timings (ns), CL17 speed grade.
const (
	ddr4TRCD = 14.16
	ddr4TRAS = 32.0
	ddr4TRP  = 14.16
	ddr4TRC  = ddr4TRAS + ddr4TRP

	// 19.2 GB/s channel; one 8 KB row burst = 8192 / 19.2 ns/B.
	ddr4RowXfer8K = 8192.0 / 19.2

	// Refresh: one tRFC-long all-bank refresh every tREFI (8 Gb devices).
	ddr4TRFC  = 350.0
	ddr4TREFI = 7800.0
)

// RefreshOverhead is the fraction of time the device is unavailable due to
// periodic refresh; the engine stretches makespans by 1 + this factor.
// Bit-serial PUD architectures keep standard refresh (their cells are
// ordinary DRAM cells), so compute time dilates the same way.
const RefreshOverhead = ddr4TRFC / ddr4TREFI

// TimingFor returns the command timing table for arch. The relative costs
// follow the source papers: Ambit's AAP takes roughly two back-to-back row
// activations plus a precharge; its AP (TRA) is one row cycle. ELP2IM
// performs logic with precharge-unit state in the local row buffer and so
// avoids one full activation per operation relative to Ambit. SIMDRAM uses
// the Ambit substrate (identical command costs) but needs fewer commands per
// arithmetic op because majority is its primitive — that difference
// materializes in code generation, not in this table.
func TimingFor(arch isa.Arch, g Geometry) Timing {
	scale := float64(g.RowBytes) / 8192.0
	t := Timing{
		TRCD: ddr4TRCD, TRAS: ddr4TRAS, TRP: ddr4TRP, TRC: ddr4TRC,
		RowXferNs:      ddr4RowXfer8K * scale,
		XferOverheadNs: ddr4TRCD + ddr4TRP,
	}
	// One full-row activate/precharge cycle moves ~RowBytes of charge:
	// about 909 pJ for an 8 KB row on DDR4; channel I/O costs ~16 pJ/bit.
	actPJ := 909.0 * scale
	ioPJ := 16.0 * float64(g.RowBytes) * 8
	switch arch {
	case isa.Ambit, isa.SIMDRAM:
		t.AAP = 2*ddr4TRAS + ddr4TRP // 78.2 ns
		t.AP = ddr4TRC               // 46.2 ns
		t.AAPEnergyPJ = 2 * actPJ
		t.APEnergyPJ = 3 * actPJ // triple-row activation
	case isa.ELP2IM:
		// ELP2IM's pseudo-precharge scheme removes one activation from
		// the copy path and shortens the compute step, which is where
		// its energy savings come from.
		t.AAP = ddr4TRAS + ddr4TRP + 0.5*ddr4TRAS // 62.2 ns
		t.AP = ddr4TRAS + 0.5*ddr4TRP             // 39.1 ns
		t.AAPEnergyPJ = 1.5 * actPJ
		t.APEnergyPJ = 1.5 * actPJ
	default:
		panic(fmt.Sprintf("dram: unknown arch %v", arch))
	}
	t.RowInit = t.AAP
	t.XferEnergyPJ = actPJ + ioPJ
	return t
}

// OpLatency returns the latency in nanoseconds of a single micro-op,
// excluding any SSD time (spill ops report only their DRAM/bus component;
// the SSD component is charged by the ssd package).
func (t Timing) OpLatency(op *isa.Op) float64 {
	switch op.Kind {
	case isa.OpAAP:
		return t.AAP
	case isa.OpAP:
		return t.AP
	case isa.OpRowInit:
		return t.RowInit
	case isa.OpWrite, isa.OpRead, isa.OpSpillOut, isa.OpSpillIn:
		return t.RowXferNs + t.XferOverheadNs
	}
	return 0
}

// OpEnergyPJ returns the energy of one micro-op in picojoules (excluding
// any SSD component).
func (t Timing) OpEnergyPJ(op *isa.Op) float64 {
	switch op.Kind {
	case isa.OpAAP, isa.OpRowInit:
		return t.AAPEnergyPJ
	case isa.OpAP:
		return t.APEnergyPJ
	case isa.OpWrite, isa.OpRead, isa.OpSpillOut, isa.OpSpillIn:
		return t.XferEnergyPJ
	}
	return 0
}

// BusLatency returns the time the op occupies the shared channel bus
// (zero for in-subarray computation).
func (t Timing) BusLatency(op *isa.Op) float64 {
	if op.IsTransfer() {
		return t.RowXferNs
	}
	return 0
}

// Placed is a micro-op bound to a physical subarray.
type Placed struct {
	Bank     int
	Subarray int
	Op       isa.Op
}

// Engine computes the makespan of a placed micro-op stream. Resources:
//
//   - the host issues commands IN ORDER: an op cannot start before the
//     previous op in the stream has started (plus a small issue gap). This
//     models the sequential command stream a host program produces, and is
//     why code emission order — what VIRCOE optimizes — matters: a transfer
//     buried behind another subarray's compute tail cannot start early;
//   - the channel bus is shared by all transfers (WRITE/READ/SPILL);
//   - without SALP, each bank executes one command at a time;
//   - with SALP, each subarray executes one command at a time and the
//     bank-level constraint is relaxed to the subarray level (the global
//     structures a bank still shares are folded into the per-op latencies).
//
// Ops must be presented in issue order; the engine preserves per-subarray
// program order regardless of resource availability.
//
// Scheduling state lives in dense slices sized from the Geometry (one slot
// per bank x subarray), so issuing a command performs no map operations and
// no allocation; placements outside the geometry fall back to maps,
// preserving the historical tolerance for out-of-range banks.
type Engine struct {
	geom   Geometry
	timing Timing
	salp   bool

	// IssueGapNs is the minimum spacing between consecutive command
	// issues (one DDR4-2400 clock by default).
	IssueGapNs float64

	busFree   float64
	lastStart float64
	now       float64

	unit   []float64 // next-free time per unit (bank, or subarray with SALP)
	subSeq []float64 // per-subarray completion (program order)
	seen   []bool    // unit ever issued to (drives DistinctUnit)
	// Overflow state for placements outside the geometry (lazily built).
	xunit, xsubSeq map[unitKey]float64

	// Per-OpKind latency/bus/energy tables, precomputed from the Timing so
	// the issue path does no switch dispatch.
	latByKind    [numOpKinds]float64
	busByKind    [numOpKinds]float64
	energyByKind [numOpKinds]float64
	xferByKind   [numOpKinds]bool

	// SSDDelay, when non-nil, is consulted for the extra latency of spill
	// ops; it receives the direction, the spill slot, and the time the
	// request reaches the SSD, and returns the extra nanoseconds beyond
	// the DRAM/bus component. Wired to the ssd package by the simulator so
	// this package stays dependency-light.
	SSDDelay func(out bool, slot uint64, startNs float64) float64

	stats EngineStats
}

// numOpKinds bounds the per-kind lookup tables (OpRowInit is the largest
// micro-op kind; unknown kinds cost zero, as Timing.OpLatency always said).
const numOpKinds = int(isa.OpRowInit) + 1

type unitKey struct{ bank, sub int }

// EngineStats aggregates what the engine observed; used by the breakdown
// experiments.
type EngineStats struct {
	Ops          int
	Transfers    int
	ComputeNs    float64 // sum of compute-op latencies (ignores overlap)
	TransferNs   float64 // sum of transfer-op latencies (ignores overlap)
	SSDNs        float64 // sum of SSD components of spills
	BusBusyNs    float64
	MakespanNs   float64
	SpillIns     int
	SpillOuts    int
	EnergyPJ     float64 // DRAM energy (activations + channel I/O)
	MaxUnitBusy  float64
	UnitBusySum  float64
	DistinctUnit int
	// StallNs is host idle time injected via Engine.Stall (recovery
	// backoff waits); it stretches the makespan without issuing commands.
	StallNs float64
}

// NewEngine builds an engine for the geometry/timing pair. salp enables
// Subarray-Level Parallelism.
func NewEngine(g Geometry, t Timing, salp bool) *Engine {
	e := &Engine{}
	e.Reconfigure(g, t, salp)
	return e
}

// Reconfigure re-arms the engine for a new run under a (possibly different)
// geometry/timing pair, reusing the scheduling slices when the unit count
// is unchanged. IssueGapNs and SSDDelay return to their NewEngine defaults.
func (e *Engine) Reconfigure(g Geometry, t Timing, salp bool) {
	units := g.Banks * g.SubarraysPB
	if len(e.unit) != units {
		e.unit = make([]float64, units)
		e.subSeq = make([]float64, units)
		e.seen = make([]bool, units)
	}
	e.geom, e.timing, e.salp = g, t, salp
	e.IssueGapNs = 0.833 // one DDR4-2400 clock
	e.SSDDelay = nil
	for k := 0; k < numOpKinds; k++ {
		op := isa.Op{Kind: isa.OpKind(k)}
		e.latByKind[k] = t.OpLatency(&op)
		e.busByKind[k] = t.BusLatency(&op)
		e.energyByKind[k] = t.OpEnergyPJ(&op)
		e.xferByKind[k] = op.IsTransfer()
	}
	e.Reset()
}

// Reset rewinds the engine to time zero with empty stats, keeping the
// geometry, timing tables and scheduling slices for reuse across trials.
func (e *Engine) Reset() {
	e.busFree, e.lastStart, e.now = 0, 0, 0
	for i := range e.unit {
		e.unit[i] = 0
		e.subSeq[i] = 0
		e.seen[i] = false
	}
	e.xunit, e.xsubSeq = nil, nil
	e.stats = EngineStats{}
}

// MemBytes reports the bytes of scheduling state the engine retains.
func (e *Engine) MemBytes() int64 {
	return int64(cap(e.unit)+cap(e.subSeq))*8 + int64(cap(e.seen))
}

// Issue schedules one placed op and returns its completion time (ns since
// engine start).
func (e *Engine) Issue(p Placed) float64 {
	return e.IssueOp(p.Bank, p.Subarray, p.Op.Kind, p.Op.Imm)
}

// IssueOp is Issue without the Placed wrapper: schedulers that already hold
// the op's kind and immediate (the pre-decoded execution stream) issue
// through it without copying a whole isa.Op per command.
func (e *Engine) IssueOp(bank, sub int, kind isa.OpKind, imm uint64) float64 {
	var lat, bus, energy float64
	var transfer bool
	if k := int(kind); k >= 0 && k < numOpKinds {
		lat, bus, energy, transfer = e.latByKind[k], e.busByKind[k], e.energyByKind[k], e.xferByKind[k]
	}

	dense := bank >= 0 && sub >= 0 && bank < e.geom.Banks && sub < e.geom.SubarraysPB
	var ui, si int
	var uk, sk unitKey
	var uVal, sVal float64
	var unitSeen bool
	if dense {
		si = bank*e.geom.SubarraysPB + sub
		ui = si
		if !e.salp {
			ui = bank * e.geom.SubarraysPB
		}
		uVal, sVal, unitSeen = e.unit[ui], e.subSeq[si], e.seen[ui]
	} else {
		uk = unitKey{bank, 0}
		if e.salp {
			uk.sub = sub
		}
		sk = unitKey{bank, sub}
		uVal, sVal = e.xunit[uk], e.xsubSeq[sk]
		_, unitSeen = e.xunit[uk]
	}

	start := uVal
	if sVal > start {
		start = sVal
	}
	if s := e.lastStart + e.IssueGapNs; s > start && e.stats.Ops > 0 {
		start = s
	}

	if bus > 0 {
		if e.busFree > start {
			start = e.busFree
		}
		e.busFree = start + bus
		e.stats.BusBusyNs += bus
	}

	var ssdNs float64
	switch kind {
	case isa.OpSpillOut:
		e.stats.SpillOuts++
		if e.SSDDelay != nil {
			ssdNs = e.SSDDelay(true, imm, start)
		}
	case isa.OpSpillIn:
		e.stats.SpillIns++
		if e.SSDDelay != nil {
			ssdNs = e.SSDDelay(false, imm, start)
		}
	}

	end := start + lat + ssdNs
	e.lastStart = start
	if !unitSeen {
		e.stats.DistinctUnit++
	}
	if dense {
		e.unit[ui] = end
		e.seen[ui] = true
		e.subSeq[si] = end
	} else {
		if e.xunit == nil {
			e.xunit = make(map[unitKey]float64)
			e.xsubSeq = make(map[unitKey]float64)
		}
		e.xunit[uk] = end
		e.xsubSeq[sk] = end
	}
	if end > e.now {
		e.now = end
	}

	e.stats.Ops++
	e.stats.EnergyPJ += energy
	if transfer {
		e.stats.Transfers++
		e.stats.TransferNs += lat
	} else {
		e.stats.ComputeNs += lat
	}
	e.stats.SSDNs += ssdNs
	if end > e.stats.MaxUnitBusy {
		e.stats.MaxUnitBusy = end
	}
	return end
}

// Stall advances the host command stream by ns nanoseconds of idle wait:
// no command can start before the stall elapses. The recovery layer
// charges its deterministic retry backoff here, so replay delays appear in
// the makespan (and in Stats().StallNs) without fabricating DRAM commands.
// Non-positive stalls are no-ops.
func (e *Engine) Stall(ns float64) {
	if ns <= 0 {
		return
	}
	e.now += ns
	if e.now > e.lastStart {
		e.lastStart = e.now
	}
	e.stats.StallNs += ns
}

// Run issues a whole stream and returns the makespan in nanoseconds,
// including refresh dilation.
func (e *Engine) Run(stream []Placed) float64 {
	ns, _ := e.RunCtx(nil, stream, 0)
	return ns
}

// RunCtx is Run under the guard layer: maxCommands > 0 caps how many
// commands the stream may issue (the guard.DimDRAMCommands budget
// dimension, checked per command so the cap is exact and deterministic),
// and a non-nil ctx is observed every 256 commands for cooperative
// cancellation. The returned makespan covers the commands issued before
// the stop.
func (e *Engine) RunCtx(ctx context.Context, stream []Placed, maxCommands int) (float64, error) {
	for i := range stream {
		if i&255 == 0 {
			if err := guard.Ctx(ctx); err != nil {
				return e.Makespan(), err
			}
		}
		if err := guard.Check(guard.DimDRAMCommands, maxCommands, i+1); err != nil {
			return e.Makespan(), err
		}
		e.Issue(stream[i])
	}
	e.stats.MakespanNs = e.Makespan()
	return e.stats.MakespanNs, guard.Ctx(ctx)
}

// Makespan returns the completion time of everything issued so far,
// stretched by the refresh overhead (the memory controller steals a tRFC
// window every tREFI regardless of what the subarrays are doing).
func (e *Engine) Makespan() float64 { return e.now * (1 + RefreshOverhead) }

// Stats returns aggregate counters (MakespanNs reflects ops issued so far).
func (e *Engine) Stats() EngineStats {
	s := e.stats
	s.MakespanNs = e.Makespan()
	return s
}

// Duration converts a nanosecond figure into a time.Duration, saturating on
// overflow (useful only for display).
func Duration(ns float64) time.Duration {
	if ns > float64(1<<62) {
		return time.Duration(1 << 62)
	}
	return time.Duration(ns)
}
