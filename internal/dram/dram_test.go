package dram

import (
	"strings"
	"testing"

	"chopper/internal/isa"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.DRows() != 1006 {
		t.Errorf("DRows = %d, want 1006 (1024 - 2 C - 16 B)", g.DRows())
	}
	if g.Bitlines() != 65536 {
		t.Errorf("Bitlines = %d, want 65536 (8 KB row)", g.Bitlines())
	}
}

func TestWithRowsPerSubKeepsCapacity(t *testing.T) {
	g := DefaultGeometry()
	total := g.SubarraysPB * g.RowsPerSub
	for _, rows := range []int{512, 1024, 2048} {
		g2 := g.WithRowsPerSub(rows)
		if g2.SubarraysPB*g2.RowsPerSub != total {
			t.Errorf("rows=%d: capacity changed: %d*%d != %d", rows, g2.SubarraysPB, g2.RowsPerSub, total)
		}
		if err := g2.Validate(); err != nil {
			t.Errorf("rows=%d: %v", rows, err)
		}
	}
}

func TestWithRowsPerSubNonPositivePanicsDescriptively(t *testing.T) {
	g := DefaultGeometry()
	for _, rows := range []int{0, -5} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("rows=%d: no panic", rows)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "must be positive") {
					t.Errorf("rows=%d: panic %v lacks a descriptive message", rows, r)
				}
			}()
			g.WithRowsPerSub(rows)
		}()
		if _, err := g.WithRowsPerSubChecked(rows); err == nil {
			t.Errorf("rows=%d: Checked accepted non-positive rows", rows)
		}
	}
}

func TestWithRowsPerSubNonDividing(t *testing.T) {
	g := DefaultGeometry() // 64 * 1024 = 65536 rows per bank
	// Checked surfaces the dropped capacity as an error.
	if _, err := g.WithRowsPerSubChecked(1000); err == nil {
		t.Error("Checked accepted rows=1000, which drops 536 rows of capacity")
	} else if !strings.Contains(err.Error(), "not divisible") {
		t.Errorf("unhelpful error: %v", err)
	}
	// The unchecked variant rounds down, explicitly and predictably.
	g2 := g.WithRowsPerSub(1000)
	if g2.RowsPerSub != 1000 || g2.SubarraysPB != 65 {
		t.Errorf("rounding wrong: got %d x %d, want 65 x 1000", g2.SubarraysPB, g2.RowsPerSub)
	}
	// Valid divisors agree between the two variants.
	gc, err := g.WithRowsPerSubChecked(512)
	if err != nil {
		t.Fatal(err)
	}
	if gc != g.WithRowsPerSub(512) {
		t.Error("checked and unchecked variants disagree on a valid divisor")
	}
	// Degenerate: rows larger than the bank never yields zero subarrays.
	if g3 := g.WithRowsPerSub(65536 + 1); g3.SubarraysPB < 1 {
		t.Errorf("SubarraysPB = %d, want >= 1", g3.SubarraysPB)
	}
}

func TestGeometryValidateRejectsBad(t *testing.T) {
	bad := Geometry{Banks: 0, SubarraysPB: 1, RowsPerSub: 64, RowBytes: 8192}
	if err := bad.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	bad2 := Geometry{Banks: 1, SubarraysPB: 1, RowsPerSub: 10, RowBytes: 8192, ReservedRows: 18}
	if err := bad2.Validate(); err == nil {
		t.Error("no data rows accepted")
	}
}

func TestTimingOrdering(t *testing.T) {
	g := DefaultGeometry()
	amb := TimingFor(isa.Ambit, g)
	elp := TimingFor(isa.ELP2IM, g)
	sd := TimingFor(isa.SIMDRAM, g)

	if amb.AAP != sd.AAP || amb.AP != sd.AP {
		t.Error("SIMDRAM must share the Ambit substrate timings")
	}
	if elp.AAP >= amb.AAP {
		t.Errorf("ELP2IM AAP (%.1f) not cheaper than Ambit (%.1f)", elp.AAP, amb.AAP)
	}
	if elp.AP >= amb.AP {
		t.Errorf("ELP2IM AP (%.1f) not cheaper than Ambit (%.1f)", elp.AP, amb.AP)
	}
	if amb.AAP <= amb.AP {
		t.Error("AAP (two activations) must cost more than AP (one)")
	}
	if amb.RowXferNs <= 0 {
		t.Error("row transfer time must be positive")
	}
}

func TestOpLatencies(t *testing.T) {
	tm := TimingFor(isa.Ambit, DefaultGeometry())
	aap := isa.NewAAP(isa.Row(0), isa.T0)
	ap := isa.NewAP(isa.T0, isa.T1, isa.T2)
	wr := isa.NewWrite(isa.Row(0), 0)
	if tm.OpLatency(&aap) != tm.AAP {
		t.Error("AAP latency mismatch")
	}
	if tm.OpLatency(&ap) != tm.AP {
		t.Error("AP latency mismatch")
	}
	if tm.OpLatency(&wr) != tm.RowXferNs+tm.XferOverheadNs {
		t.Error("WRITE latency mismatch")
	}
	if tm.BusLatency(&ap) != 0 {
		t.Error("compute op should not use the bus")
	}
	if tm.BusLatency(&wr) != tm.RowXferNs {
		t.Error("transfer op must occupy the bus")
	}
}

// Two banks computing in parallel must take about as long as one bank, not
// twice as long.
func TestEngineBankLevelParallelism(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	mkStream := func(banks int) []Placed {
		var s []Placed
		for i := 0; i < 100; i++ {
			for bk := 0; bk < banks; bk++ {
				s = append(s, Placed{Bank: bk, Subarray: 0, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)})
			}
		}
		return s
	}
	e1 := NewEngine(g, tm, false)
	t1 := e1.Run(mkStream(1))
	e2 := NewEngine(g, tm, false)
	t2 := e2.Run(mkStream(2))
	if t2 > t1*1.01 {
		t.Errorf("2-bank compute (%.0f ns) slower than 1-bank (%.0f ns): BLP broken", t2, t1)
	}
}

// Transfers serialize on the shared bus even across banks.
func TestEngineBusSerialization(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	var s []Placed
	const n = 50
	for i := 0; i < n; i++ {
		s = append(s, Placed{Bank: i % 8, Subarray: 0, Op: isa.NewWrite(isa.Row(0), i)})
	}
	e := NewEngine(g, tm, false)
	mk := e.Run(s)
	lower := float64(n) * tm.RowXferNs
	if mk < lower {
		t.Errorf("makespan %.0f ns below bus lower bound %.0f ns", mk, lower)
	}
}

// Overlap: transfers to bank 1 while bank 0 computes should beat the serial
// sum. This is the effect VIRCOE exploits.
func TestEngineTransferComputeOverlap(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	const n = 40
	// Serial: all writes then all computes, same bank.
	var serial []Placed
	for i := 0; i < n; i++ {
		serial = append(serial, Placed{Bank: 0, Subarray: 0, Op: isa.NewWrite(isa.Row(i), i)})
	}
	for i := 0; i < n; i++ {
		serial = append(serial, Placed{Bank: 0, Subarray: 0, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)})
	}
	eS := NewEngine(g, tm, false)
	tS := eS.Run(serial)

	// Interleaved across two banks: bank 0 computes while bank 1 receives.
	var inter []Placed
	for i := 0; i < n; i++ {
		inter = append(inter, Placed{Bank: 1, Subarray: 0, Op: isa.NewWrite(isa.Row(i), i)})
		inter = append(inter, Placed{Bank: 0, Subarray: 0, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)})
	}
	eI := NewEngine(g, tm, false)
	tI := eI.Run(inter)
	if tI >= tS {
		t.Errorf("interleaved (%.0f ns) not faster than serial (%.0f ns)", tI, tS)
	}
}

// Without SALP, two subarrays of one bank serialize; with SALP they overlap.
func TestEngineSALP(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	var s []Placed
	for i := 0; i < 60; i++ {
		s = append(s, Placed{Bank: 0, Subarray: i % 2, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)})
	}
	eNo := NewEngine(g, tm, false)
	tNo := eNo.Run(s)
	eYes := NewEngine(g, tm, true)
	tYes := eYes.Run(s)
	if tYes >= tNo*0.75 {
		t.Errorf("SALP (%.0f ns) should be well below no-SALP (%.0f ns)", tYes, tNo)
	}
}

// Per-subarray program order is preserved even under SALP.
func TestEngineProgramOrder(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	e := NewEngine(g, tm, true)
	first := e.Issue(Placed{Bank: 0, Subarray: 0, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)})
	second := e.Issue(Placed{Bank: 0, Subarray: 0, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)})
	if second <= first {
		t.Errorf("program order violated: %f then %f", first, second)
	}
}

func TestEngineSSDHook(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	e := NewEngine(g, tm, false)
	var sawOut, sawIn bool
	e.SSDDelay = func(out bool, slot uint64, start float64) float64 {
		if out {
			sawOut = true
		} else {
			sawIn = true
		}
		return 1000
	}
	so := e.Issue(Placed{Bank: 0, Subarray: 0, Op: isa.NewSpillOut(isa.Row(0), 1)})
	si := e.Issue(Placed{Bank: 0, Subarray: 0, Op: isa.NewSpillIn(isa.Row(0), 1)})
	if !sawOut || !sawIn {
		t.Error("SSD hook not invoked for spills")
	}
	if si <= so {
		t.Error("spill-in must complete after spill-out")
	}
	st := e.Stats()
	if st.SpillOuts != 1 || st.SpillIns != 1 {
		t.Errorf("spill stats wrong: %+v", st)
	}
	if st.SSDNs != 2000 {
		t.Errorf("SSDNs = %f, want 2000", st.SSDNs)
	}
}

func TestEngineStats(t *testing.T) {
	g := DefaultGeometry()
	tm := TimingFor(isa.Ambit, g)
	e := NewEngine(g, tm, false)
	e.Run([]Placed{
		{Bank: 0, Subarray: 0, Op: isa.NewWrite(isa.Row(0), 0)},
		{Bank: 0, Subarray: 0, Op: isa.NewAP(isa.T0, isa.T1, isa.T2)},
	})
	st := e.Stats()
	if st.Ops != 2 || st.Transfers != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.ComputeNs != tm.AP {
		t.Errorf("ComputeNs = %f, want %f", st.ComputeNs, tm.AP)
	}
	if st.MakespanNs <= 0 {
		t.Error("zero makespan")
	}
}

func TestChannelCount(t *testing.T) {
	g := DefaultGeometry()
	if g.Channels != 0 || g.ChannelCount() != 1 {
		t.Errorf("zero-value Channels should count as 1, got %d (field %d)", g.ChannelCount(), g.Channels)
	}
	g.Channels = 4
	if g.ChannelCount() != 4 {
		t.Errorf("ChannelCount() = %d, want 4", g.ChannelCount())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("4-channel geometry rejected: %v", err)
	}
	g.Channels = -1
	if err := g.Validate(); err == nil {
		t.Error("negative channel count accepted")
	}
}
