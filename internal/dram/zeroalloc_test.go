package dram

import (
	"testing"

	"chopper/internal/isa"
)

// TestIssueZeroAlloc requires the dense-slice scheduler to be allocation-
// free for in-geometry placements across every op kind, including the
// SSD-delayed spill kinds.
func TestIssueZeroAlloc(t *testing.T) {
	g := DefaultGeometry()
	eng := NewEngine(g, TimingFor(isa.Ambit, g), true)
	eng.SSDDelay = func(out bool, slot uint64, startNs float64) float64 { return 100 }
	ops := []isa.Op{
		isa.NewAAP(isa.Row(0), isa.Row(1)),
		isa.NewAP(isa.T0, isa.T1, isa.T2),
		isa.NewWrite(isa.Row(2), 1),
		isa.NewRead(isa.Row(2), 2),
		isa.NewSpillOut(isa.Row(3), 7),
		isa.NewSpillIn(isa.Row(3), 7),
		isa.NewRowInit(isa.Row(4), 0),
	}
	run := func() {
		for b := 0; b < 4; b++ {
			for s := 0; s < 4; s++ {
				for i := range ops {
					eng.IssueOp(b, s, ops[i].Kind, ops[i].Imm)
				}
			}
		}
	}
	run() // warm: first write to each unit marks the seen slice
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("steady-state IssueOp allocates %v allocs/run, want 0", n)
	}
}
