package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// histBuckets log-spaced latency buckets: 1 us growing by 1.3x covers
// 1 us .. ~1000 s, plenty for queue-wait-inclusive request latencies.
const (
	histBuckets = 80
	histBaseNs  = 1e3
	histGrowth  = 1.3
)

// histogram is a fixed log-bucketed latency histogram. Observations and
// quantile reads are mutex-guarded; at service rates the contention is
// negligible and the memory footprint is constant.
type histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	n      uint64
}

func bucketFor(ns float64) int {
	if ns <= histBaseNs {
		return 0
	}
	i := int(math.Log(ns/histBaseNs) / math.Log(histGrowth))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

func bucketUpperNs(i int) float64 {
	return histBaseNs * math.Pow(histGrowth, float64(i+1))
}

func (h *histogram) observe(ns float64) {
	h.mu.Lock()
	h.counts[bucketFor(ns)]++
	h.n++
	h.mu.Unlock()
}

// quantileNs returns an upper-bound estimate of the q-quantile (the upper
// edge of the bucket holding it), or 0 with no observations.
func (h *histogram) quantileNs(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			return bucketUpperNs(i)
		}
	}
	return bucketUpperNs(histBuckets - 1)
}

// occBucketEdges are the upper edges of the batch-occupancy histogram
// (members per coalesced pass). The last edge equals maxBatchSizeCap,
// so every pass lands in a finite bucket.
var occBucketEdges = [...]int{1, 2, 4, 8, 16, 32, 64}

// classMetrics aggregates one QoS class's request accounting.
type classMetrics struct {
	admitted uint64
	shed     uint64
	drained  uint64
	deadline uint64 // gave up waiting in queue (deadline/cancel)
	statuses map[int]uint64
	latency  histogram

	// Coalesced-pass accounting: passes executed, requests served
	// batched (pass occupancy >= 2) vs solo (window closed with one
	// member), and the occupancy histogram.
	batchPasses   uint64
	batchedReqs   uint64
	soloBatchReqs uint64
	occCounts     [len(occBucketEdges)]uint64
	occSum        uint64
}

// metrics is the server-wide observability state rendered by /metrics.
type metrics struct {
	mu      sync.Mutex
	byClass [numClasses]classMetrics
	panics  uint64
}

func newMetrics() *metrics {
	m := &metrics{}
	for i := range m.byClass {
		m.byClass[i].statuses = make(map[int]uint64)
	}
	return m
}

func (m *metrics) admitted(c Class) {
	m.mu.Lock()
	m.byClass[c].admitted++
	m.mu.Unlock()
}

// rejected accounts an admission failure by kind.
func (m *metrics) rejected(c Class, kind string) {
	m.mu.Lock()
	switch kind {
	case "shed":
		m.byClass[c].shed++
	case "draining":
		m.byClass[c].drained++
	default:
		m.byClass[c].deadline++
	}
	m.mu.Unlock()
}

// finished records a completed request: final status code and
// end-to-end latency (queue wait included).
func (m *metrics) finished(c Class, status int, ns float64) {
	m.mu.Lock()
	m.byClass[c].statuses[status]++
	m.mu.Unlock()
	m.byClass[c].latency.observe(ns)
}

// batchExecuted records one coalesced pass of n members.
func (m *metrics) batchExecuted(c Class, n int) {
	m.mu.Lock()
	cm := &m.byClass[c]
	cm.batchPasses++
	cm.occSum += uint64(n)
	for i, edge := range occBucketEdges {
		if n <= edge {
			cm.occCounts[i]++
			break
		}
	}
	if n >= 2 {
		cm.batchedReqs += uint64(n)
	} else {
		cm.soloBatchReqs++
	}
	m.mu.Unlock()
}

func (m *metrics) panicked() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// render writes the Prometheus-style text exposition. gauges carries
// server-level lines (queue depths, cache counters, drain state) the
// metrics struct does not own.
func (m *metrics) render(sb *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for c := Class(0); c < numClasses; c++ {
		cm := &m.byClass[c]
		codes := make([]int, 0, len(cm.statuses))
		for code := range cm.statuses {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(sb, "chopperd_requests_total{class=%q,code=\"%d\"} %d\n", c, code, cm.statuses[code])
		}
		fmt.Fprintf(sb, "chopperd_admitted_total{class=%q} %d\n", c, cm.admitted)
		fmt.Fprintf(sb, "chopperd_shed_total{class=%q} %d\n", c, cm.shed)
		fmt.Fprintf(sb, "chopperd_drain_rejected_total{class=%q} %d\n", c, cm.drained)
		fmt.Fprintf(sb, "chopperd_queue_timeout_total{class=%q} %d\n", c, cm.deadline)
		for _, q := range []float64{0.5, 0.99, 0.999} {
			fmt.Fprintf(sb, "chopperd_latency_ns{class=%q,quantile=\"%g\"} %.0f\n", c, q, cm.byClassQuantile(q))
		}
		fmt.Fprintf(sb, "chopperd_batch_passes_total{class=%q} %d\n", c, cm.batchPasses)
		fmt.Fprintf(sb, "chopperd_batch_requests_total{class=%q,mode=\"batched\"} %d\n", c, cm.batchedReqs)
		fmt.Fprintf(sb, "chopperd_batch_requests_total{class=%q,mode=\"solo\"} %d\n", c, cm.soloBatchReqs)
		var cum uint64
		for i, edge := range occBucketEdges {
			cum += cm.occCounts[i]
			fmt.Fprintf(sb, "chopperd_batch_occupancy_bucket{class=%q,le=\"%d\"} %d\n", c, edge, cum)
		}
		fmt.Fprintf(sb, "chopperd_batch_occupancy_bucket{class=%q,le=\"+Inf\"} %d\n", c, cm.batchPasses)
		fmt.Fprintf(sb, "chopperd_batch_occupancy_sum{class=%q} %d\n", c, cm.occSum)
		fmt.Fprintf(sb, "chopperd_batch_occupancy_count{class=%q} %d\n", c, cm.batchPasses)
	}
	fmt.Fprintf(sb, "chopperd_handler_panics_total %d\n", m.panics)
}

// byClassQuantile reads the latency quantile; split out so render holds
// m.mu while the histogram takes its own lock (ordering: m.mu then h.mu,
// matching finished()'s release-before-observe).
func (cm *classMetrics) byClassQuantile(q float64) float64 {
	return cm.latency.quantileNs(q)
}
