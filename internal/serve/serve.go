// Package serve is chopperd's engine: a production-hardened, multi-tenant
// compile-and-execute HTTP service over the chopper library, where every
// robustness mechanism the library grew — guard budgets and deadlines, the
// content-addressed kernel cache, the graceful-degradation ladder, the
// stage-classed sentinel errors — becomes a per-request contract.
//
//   - Admission control and QoS: requests declare a class (interactive /
//     batch / best-effort); each class maps to a guard.Budget, a deadline,
//     a bounded queue and a max-inflight semaphore. When the queue fills,
//     requests are shed deterministically with HTTP 429 + Retry-After
//     instead of growing goroutines without bound.
//   - Failure isolation: every tenant gets its own kernel-cache shard
//     behind the kcache single-flight layer (a thundering herd of
//     identical compiles does one compile), and a per-tenant circuit
//     breaker that walks repeated degradation/budget/internal failures
//     down the optimization ladder to the baseline pipeline — the tenant
//     keeps getting answers, with the degraded state surfaced in the
//     response. Handler-boundary panic recovery maps everything else onto
//     the stage-classed sentinel taxonomy and stable HTTP statuses.
//   - Lifecycle: SetNotReady flips /readyz ahead of a drain so load
//     balancers stop routing; BeginDrain stops admitting (503); Shutdown
//     waits for in-flight work and hard-cancels it through the guard
//     layer's context checkpoints when the drain deadline passes.
//
// See docs/SERVICE.md for the endpoint reference, the error -> status
// table and the drain sequence.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chopper"
	"chopper/internal/dram"
	"chopper/internal/transpose"
)

// Class is a request QoS class. Classes are admission-control domains:
// each has its own inflight semaphore, bounded queue, deadline and
// resource budget, so a flood of batch work cannot starve interactive
// requests of execution slots.
type Class int

const (
	// Interactive is the low-latency class: tight deadline, moderate
	// budget, shed early rather than queue deep.
	Interactive Class = iota
	// Batch is the throughput class: long deadline, deep queue, the
	// largest budgets.
	Batch
	// BestEffort is the scavenger class: smallest budgets, shortest
	// queue, first to shed under load.
	BestEffort
	numClasses
)

var classNames = [numClasses]string{"interactive", "batch", "best-effort"}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass maps the wire name onto a Class; "" defaults to Batch.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(s) {
	case "":
		return Batch, nil
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "best-effort", "besteffort":
		return BestEffort, nil
	}
	return 0, fmt.Errorf("unknown QoS class %q (valid: interactive, batch, best-effort)", s)
}

// ClassConfig is one QoS class's per-request contract.
type ClassConfig struct {
	// MaxInflight bounds concurrently executing requests of this class.
	MaxInflight int
	// MaxQueue bounds admitted-but-waiting requests; arrivals beyond it
	// are shed with 429. 0 disables queueing (shed when slots are full).
	MaxQueue int
	// Deadline bounds each request end to end — queue wait included —
	// through the guard layer's context checkpoints. 0 means no deadline.
	Deadline time.Duration
	// Budget caps the resource dimensions of each request's compile and
	// simulation (see chopper.Budget). The zero value is unlimited.
	Budget chopper.Budget
	// BatchWindow enables request coalescing for this class: run/verify
	// requests sharing a compatibility key (target, opt level, hardening,
	// entry, source — everything that selects the compiled kernel and the
	// execution semantics) collect for up to this long and execute as ONE
	// simulated device pass, each member keeping byte-identical results.
	// The window never extends a request past its class deadline — a
	// member whose deadline expires while the window is open leaves with
	// 408 exactly as a queued request would. 0 (the default) disables
	// batching for the class.
	BatchWindow time.Duration
	// MaxBatchSize caps members per coalesced pass; a full batch executes
	// before its window closes. <= 1 with a positive BatchWindow selects
	// the default (8); the hard cap is 64.
	MaxBatchSize int
}

// Breaker and tenant-bound defaults.
const (
	defaultBreakerTripAfter    = 5
	defaultBreakerRecoverAfter = 3
	defaultCacheEntries        = 64
	defaultMaxTenants          = 256
	defaultMaxBodyBytes        = 8 << 20
	defaultMaxLanes            = 4096
	defaultMaxVerifyTrials     = 64
	defaultMaxBatchSize        = 8
	maxBatchSizeCap            = 64
)

// Config configures a Server. The zero value of any field selects a
// production-safe default; see DefaultConfig.
type Config struct {
	// Classes configures each QoS class; zero-valued entries get the
	// DefaultConfig entry for that class.
	Classes [numClasses]ClassConfig
	// CacheEntries bounds each tenant's kernel-cache shard (<= 0: 64).
	CacheEntries int
	// MaxTenants bounds the tenant table. Tenants beyond the bound share
	// one overflow shard (cache + breaker) instead of growing the map
	// without limit — graceful degradation, not rejection. <= 0: 256.
	MaxTenants int
	// BreakerTripAfter is the consecutive bad-outcome count that steps a
	// tenant one level down the degradation ladder (<= 0: 5).
	BreakerTripAfter int
	// BreakerRecoverAfter is the consecutive good-outcome count that
	// steps a degraded tenant back up one level (<= 0: 3).
	BreakerRecoverAfter int
	// MaxBodyBytes bounds request bodies (<= 0: 8 MiB).
	MaxBodyBytes int64
	// MaxLanes bounds the SIMD lanes a run/verify request may ask for
	// (<= 0: 4096).
	MaxLanes int
	// MaxVerifyTrials bounds per-request verification trials (<= 0: 64).
	MaxVerifyTrials int
}

// DefaultClassConfig returns the default contract for one class.
func DefaultClassConfig(c Class) ClassConfig {
	procs := runtime.GOMAXPROCS(0)
	switch c {
	case Interactive:
		n := procs
		if n < 4 {
			n = 4
		}
		return ClassConfig{
			MaxInflight: n,
			MaxQueue:    4 * n,
			Deadline:    2 * time.Second,
			Budget: chopper.Budget{
				MaxNetGates: 1 << 18, MaxMicroOps: 1 << 19,
				MaxSimSteps: 1 << 22, MaxDRAMCommands: 1 << 22,
			},
		}
	case BestEffort:
		return ClassConfig{
			MaxInflight: 2,
			MaxQueue:    4,
			Deadline:    time.Second,
			Budget: chopper.Budget{
				MaxNetGates: 1 << 16, MaxMicroOps: 1 << 17,
				MaxSimSteps: 1 << 20, MaxDRAMCommands: 1 << 20,
			},
		}
	default: // Batch
		n := procs / 2
		if n < 2 {
			n = 2
		}
		return ClassConfig{
			MaxInflight: n,
			MaxQueue:    16 * n,
			Deadline:    30 * time.Second,
			Budget: chopper.Budget{
				MaxNetGates: 1 << 20, MaxMicroOps: 1 << 21,
				MaxSimSteps: 1 << 24, MaxDRAMCommands: 1 << 24,
			},
		}
	}
}

func (cfg Config) normalize() Config {
	for c := Class(0); c < numClasses; c++ {
		if cfg.Classes[c] == (ClassConfig{}) {
			cfg.Classes[c] = DefaultClassConfig(c)
		}
		if cfg.Classes[c].MaxInflight < 1 {
			cfg.Classes[c].MaxInflight = 1
		}
		if cfg.Classes[c].BatchWindow < 0 {
			cfg.Classes[c].BatchWindow = 0
		}
		if cfg.Classes[c].BatchWindow > 0 {
			if cfg.Classes[c].MaxBatchSize <= 1 {
				cfg.Classes[c].MaxBatchSize = defaultMaxBatchSize
			}
			if cfg.Classes[c].MaxBatchSize > maxBatchSizeCap {
				cfg.Classes[c].MaxBatchSize = maxBatchSizeCap
			}
		}
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = defaultMaxTenants
	}
	if cfg.BreakerTripAfter <= 0 {
		cfg.BreakerTripAfter = defaultBreakerTripAfter
	}
	if cfg.BreakerRecoverAfter <= 0 {
		cfg.BreakerRecoverAfter = defaultBreakerRecoverAfter
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.MaxLanes <= 0 {
		cfg.MaxLanes = defaultMaxLanes
	}
	if cfg.MaxVerifyTrials <= 0 {
		cfg.MaxVerifyTrials = defaultMaxVerifyTrials
	}
	return cfg
}

// tenant is one isolation shard: a bounded kernel cache and a circuit
// breaker. Tenants never share compile results (the cache key does not
// include the tenant, but the shards are disjoint) and one tenant's
// failure streak degrades only its own pipeline.
type tenant struct {
	name  string
	cache *chopper.KernelCache
	brk   *breaker
}

// Server is the chopperd engine. Construct with New; serve s.Handler().
type Server struct {
	cfg Config
	adm [numClasses]*admitter
	met *metrics

	mu       sync.Mutex
	tenants  map[string]*tenant
	overflow *tenant

	// bat indexes open (still-joinable) coalesced batches by
	// compatibility key; laneWordCap bounds a batch's combined operand
	// words to one physical row.
	bat         batcher
	laneWordCap int

	drainCh   chan struct{}
	drainOnce sync.Once
	notReady  atomic.Bool
	inflight  atomic.Int64

	// baseCtx is canceled at the hard drain deadline; every request
	// context derives from it, so cancellation reaches the guard
	// checkpoints inside compiles and simulations.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// testHookAdmitted, when non-nil, runs after a request is admitted
	// and before it executes — the seam drain/overload tests use to hold
	// requests in flight deterministically.
	testHookAdmitted func(Class, string)
}

// New builds a Server from cfg (zero-valued fields get defaults).
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:         cfg,
		met:         newMetrics(),
		tenants:     make(map[string]*tenant),
		drainCh:     make(chan struct{}),
		bat:         batcher{open: make(map[string]*svcBatch)},
		laneWordCap: dram.DefaultGeometry().Bitlines() / 64,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for c := Class(0); c < numClasses; c++ {
		s.adm[c] = newAdmitter(cfg.Classes[c].MaxInflight, cfg.Classes[c].MaxQueue)
	}
	s.overflow = s.newTenant("(overflow)")
	return s
}

func (s *Server) newTenant(name string) *tenant {
	return &tenant{
		name:  name,
		cache: chopper.NewKernelCache(s.cfg.CacheEntries),
		brk:   newBreaker(s.cfg.BreakerTripAfter, s.cfg.BreakerRecoverAfter),
	}
}

// tenantFor returns the tenant's shard, creating it under the bound;
// beyond MaxTenants, unknown tenants share the overflow shard.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return s.overflow
	}
	t := s.newTenant(name)
	s.tenants[name] = t
	return t
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.handleWork("compile"))
	mux.HandleFunc("/v1/run", s.handleWork("run"))
	mux.HandleFunc("/v1/verify", s.handleWork("verify"))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.notReady.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Request is the JSON body of /v1/compile, /v1/run and /v1/verify.
type Request struct {
	// Tenant selects the isolation shard; "" shares the default shard.
	Tenant string `json:"tenant,omitempty"`
	// Class is the QoS class: interactive, batch (default), best-effort.
	Class string `json:"class,omitempty"`
	// Source is the CHOPPER program.
	Source string `json:"source"`
	// Target is the PUD architecture: ambit (default), elp2im, simdram.
	Target string `json:"target,omitempty"`
	// Opt is the optimization level: bitslice, schedule, reuse,
	// rename (default). The tenant's breaker may cap it lower.
	Opt string `json:"opt,omitempty"`
	// Harden compiles with TMR hardening.
	Harden bool `json:"harden,omitempty"`
	// Baseline requests the hands-tuned SIMDRAM methodology.
	Baseline bool `json:"baseline,omitempty"`
	// Entry overrides the entry node.
	Entry string `json:"entry,omitempty"`
	// Lanes is the SIMD width for run/verify (default 16).
	Lanes int `json:"lanes,omitempty"`
	// Inputs are the run operands, one value per lane (widths <= 64).
	Inputs map[string][]uint64 `json:"inputs,omitempty"`
	// Trials is the verify trial count (default 3).
	Trials int `json:"trials,omitempty"`
	// Seed seeds verification inputs (default 1).
	Seed int64 `json:"seed,omitempty"`
	// NoBatch opts this request out of coalescing even when its class has
	// a batch window (used by load generators to measure the solo path,
	// and by clients that want strict request isolation).
	NoBatch bool `json:"no_batch,omitempty"`
}

// Response is the JSON body of a successful request.
type Response struct {
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class"`

	// Compile facts, present on every endpoint (run and verify compile
	// first, through the tenant's cache shard).
	MicroOps     int    `json:"micro_ops"`
	Pipeline     string `json:"pipeline"` // "chopper" or "baseline"
	RequestedOpt string `json:"requested_opt"`
	EffectiveOpt string `json:"effective_opt"`
	// Degraded is true when the kernel compiled below the requested
	// pipeline — the compiler's own ladder, or the tenant's breaker.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// BreakerLevel is the tenant's current degradation level (0 = none,
	// 4 = baseline pipeline).
	BreakerLevel int `json:"breaker_level,omitempty"`
	// Cache says how the kernel cache served this compile: miss, hit,
	// or shared (joined a concurrent identical compile).
	Cache     string `json:"cache"`
	CompileNs int64  `json:"compile_ns"`

	// Run results.
	Outputs map[string][]uint64 `json:"outputs,omitempty"`
	// TimeNs is the simulated single-subarray makespan.
	TimeNs float64 `json:"time_ns,omitempty"`

	// Verify results. VerifyOK false with a 200 status means the kernel
	// ran but disagreed with the reference semantics.
	VerifyOK     *bool  `json:"verify_ok,omitempty"`
	VerifyDetail string `json:"verify_detail,omitempty"`
	Trials       int    `json:"trials,omitempty"`

	// BatchSize reports how many requests shared this request's coalesced
	// device pass (absent on the solo path; 1 means the batch window
	// closed with no company).
	BatchSize int `json:"batch_size,omitempty"`

	// compilerDegraded is true only when the compiler itself walked the
	// degradation ladder (not when the breaker pre-capped the request).
	// The breaker feeds on this, not on Degraded: a tenant already capped
	// by its breaker must not count its own capping as a new failure, or
	// it could never recover.
	compilerDegraded bool
}

// ErrorResponse is the JSON body of a failed request.
type ErrorResponse struct {
	Error string `json:"error"`
	// ErrorClass is the stable machine-readable class: one of
	// chopper.ErrorClass's values, or "shed" / "draining".
	ErrorClass string `json:"error_class"`
}

// StatusForClass maps an error class (chopper.ErrorClass plus the serve
// layer's "shed" and "draining") onto its HTTP status. One table, used
// by the handlers and pinned by tests, so the wire contract cannot
// drift from the error taxonomy:
//
//	400 options, parse, typecheck, normalize, codegen (bad request)
//	408 deadline, canceled (request timed out / client gave up)
//	413 budget (request exceeds its class's resource budget)
//	422 verify (kernel ran but failed verification)
//	429 shed (class queue full; retry with backoff)
//	500 internal, unknown
//	503 draining (server shutting down; retry elsewhere)
func StatusForClass(class string) int {
	switch class {
	case "options", "parse", "typecheck", "normalize", "codegen":
		return http.StatusBadRequest
	case "deadline", "canceled":
		return http.StatusRequestTimeout
	case "budget":
		return http.StatusRequestEntityTooLarge
	case "verify":
		return http.StatusUnprocessableEntity
	case "shed":
		return http.StatusTooManyRequests
	case "draining":
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// classify maps any request-processing error onto its class name.
// During a drain, hard-canceled work classifies as "draining" (503) —
// the cancellation was the server's choice, not the client's problem.
func (s *Server) classify(err error) string {
	switch {
	case errors.Is(err, errShed):
		return "shed"
	case errors.Is(err, errDraining):
		return "draining"
	}
	var re *reqError
	if errors.As(err, &re) {
		return re.class
	}
	c := chopper.ErrorClass(err)
	if c == "canceled" && s.Draining() {
		return "draining"
	}
	if c == "" {
		return "unknown"
	}
	return c
}

// reqError carries a serve-layer validation failure with its class.
type reqError struct {
	class string
	msg   string
}

func (e *reqError) Error() string { return e.msg }

func optionsErrf(format string, args ...any) error {
	return &reqError{class: "options", msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handleWork(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		// Panic recovery at the handler boundary: the chopper API already
		// recovers its own panics to ErrInternal; this is the last line
		// for serve-layer bugs. 500, never a crashed process.
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panicked()
				writeError(w, fmt.Errorf("internal: %v", rec), "internal")
			}
		}()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if s.Draining() {
			writeError(w, errDraining, "draining")
			return
		}
		var req Request
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("bad request body: %w", err), "options")
			return
		}
		class, err := ParseClass(req.Class)
		if err != nil {
			writeError(w, err, "options")
			return
		}
		cc := s.cfg.Classes[class]
		tn := s.tenantFor(req.Tenant)

		// The class deadline starts at arrival: queue wait spends it.
		ctx, cancel := s.workCtx(r.Context(), cc.Deadline)
		defer cancel()
		start := time.Now()

		if s.batchEligible(kind, cc, &req) {
			if plan, perr := s.planRequest(&req, tn, cc); perr == nil {
				resp, executed, err := s.runBatched(ctx, kind, &req, plan, tn, cc, class)
				s.finishWork(w, class, tn, start, resp, executed, err)
				return
			}
			// Plan (target/opt/source) errors fall through to the solo
			// path so validation keeps its place behind admission.
		}

		if err := s.adm[class].acquire(ctx, s.drainCh); err != nil {
			s.finishWork(w, class, tn, start, nil, false, err)
			return
		}
		s.met.admitted(class)
		defer s.adm[class].release()
		if h := s.testHookAdmitted; h != nil {
			h(class, kind)
		}

		resp, err := s.execute(ctx, kind, &req, tn, cc, class)
		s.finishWork(w, class, tn, start, resp, true, err)
	}
}

// finishWork is the shared request epilogue: breaker observation and
// metrics for executed requests, rejection accounting for requests that
// never reached execution (admission failures, batch-window expiries),
// then the response write.
func (s *Server) finishWork(w http.ResponseWriter, class Class, tn *tenant, start time.Time, resp *Response, executed bool, err error) {
	elapsed := float64(time.Since(start).Nanoseconds())
	if err != nil {
		ec := s.classify(err)
		if executed {
			tn.brk.observe(false, ec)
		} else {
			s.met.rejected(class, ec)
		}
		s.met.finished(class, StatusForClass(ec), elapsed)
		writeError(w, err, ec)
		return
	}
	tn.brk.observe(resp.compilerDegraded, "")
	s.met.finished(class, http.StatusOK, elapsed)
	writeJSON(w, http.StatusOK, resp)
}

// reqPlan is the compile decision for one request after parsing its
// knobs and applying the tenant's breaker plan. It is everything a
// compile needs besides the source text, computed once so the batched
// and solo paths cannot diverge.
type reqPlan struct {
	target    chopper.Target
	requested chopper.OptLevel
	effOpt    chopper.OptLevel
	baseline  bool
	level     int
	opts      chopper.Options
}

// planRequest parses the request's compile knobs and applies the
// tenant's breaker plan. Errors are all options-classed validation
// failures.
func (s *Server) planRequest(req *Request, tn *tenant, cc ClassConfig) (*reqPlan, error) {
	target, err := parseTarget(req.Target)
	if err != nil {
		return nil, err
	}
	requested, err := parseOpt(req.Opt)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, optionsErrf("empty source")
	}

	effOpt, baseline, level := tn.brk.plan(requested)
	baseline = baseline || req.Baseline
	opts := chopper.Options{
		Target: target,
		Harden: req.Harden,
		Entry:  req.Entry,
		Budget: cc.Budget,
		Cache:  tn.cache,
	}.WithOpt(effOpt)
	if baseline && req.Harden {
		// The baseline pipeline rejects Harden; under a breaker reroute,
		// degrade the hardening away rather than failing the tenant.
		if !req.Baseline {
			opts.Harden = false
		}
	}
	return &reqPlan{
		target:    target,
		requested: requested,
		effOpt:    effOpt,
		baseline:  baseline,
		level:     level,
		opts:      opts,
	}, nil
}

// compileForPlan compiles the source under a plan, through the plan's
// cache shard.
func compileForPlan(ctx context.Context, p *reqPlan, source string) (*chopper.Kernel, chopper.CacheOutcome, int64, error) {
	var (
		k       *chopper.Kernel
		outcome chopper.CacheOutcome
		err     error
	)
	compileStart := time.Now()
	if p.baseline {
		k, outcome, err = chopper.CompileBaselineCached(source, p.opts)
	} else {
		k, outcome, err = chopper.CompileCtxCached(ctx, source, p.opts)
	}
	compileNs := time.Since(compileStart).Nanoseconds()
	if err != nil {
		return nil, outcome, compileNs, err
	}
	return k, outcome, compileNs, nil
}

// baseResponse builds the compile-fact part of a response: pipeline,
// optimization/degradation state, cache outcome. Batched members each
// get their own (their breaker level may differ even when the compiled
// kernel is shared).
func baseResponse(req *Request, class Class, p *reqPlan, k *chopper.Kernel, outcome chopper.CacheOutcome, compileNs int64) *Response {
	resp := &Response{
		Tenant:       req.Tenant,
		Class:        class.String(),
		MicroOps:     len(k.Prog().Ops),
		Pipeline:     "chopper",
		RequestedOpt: p.requested.String(),
		EffectiveOpt: p.effOpt.String(),
		BreakerLevel: p.level,
		Cache:        outcome.String(),
		CompileNs:    compileNs,
	}
	if p.baseline {
		resp.Pipeline = "baseline"
		resp.EffectiveOpt = "baseline"
	}
	if p.level > 0 {
		resp.Degraded = true
		resp.DegradedReason = fmt.Sprintf("tenant breaker at level %d: pipeline capped to %s", p.level, resp.EffectiveOpt)
	}
	if k.Degradation != nil {
		resp.Degraded = true
		resp.compilerDegraded = true
		resp.EffectiveOpt = k.Degradation.Effective.String()
		resp.DegradedReason = fmt.Sprintf("compiler degraded to %s after %d pass failures",
			k.Degradation.Effective, len(k.Degradation.Events))
	}
	return resp
}

// batchEligible says whether a request may join a coalesced pass:
// the class must have a batch window, the request must not opt out, and
// the kind must be run or verify with in-bounds lane/trial counts
// (out-of-bounds values take the solo path so their validation errors
// keep the exact solo ordering and wording).
func (s *Server) batchEligible(kind string, cc ClassConfig, req *Request) bool {
	if cc.BatchWindow <= 0 || cc.MaxBatchSize <= 1 || req.NoBatch {
		return false
	}
	switch kind {
	case "run":
		lanes := req.Lanes
		if lanes == 0 {
			lanes = 16
		}
		return lanes >= 1 && lanes <= s.cfg.MaxLanes
	case "verify":
		trials := req.Trials
		if trials == 0 {
			trials = 3
		}
		return trials >= 1 && trials <= s.cfg.MaxVerifyTrials
	}
	return false
}

// execute runs one admitted request end to end: parse knobs, apply the
// tenant's breaker plan, compile through the tenant's cache shard, then
// run or verify as asked.
func (s *Server) execute(ctx context.Context, kind string, req *Request, tn *tenant, cc ClassConfig, class Class) (*Response, error) {
	p, err := s.planRequest(req, tn, cc)
	if err != nil {
		return nil, err
	}
	k, outcome, compileNs, err := compileForPlan(ctx, p, req.Source)
	if err != nil {
		return nil, err
	}
	resp := baseResponse(req, class, p, k, outcome, compileNs)

	switch kind {
	case "compile":
		return resp, nil
	case "run":
		lanes := req.Lanes
		if lanes == 0 {
			lanes = 16
		}
		if lanes < 1 || lanes > s.cfg.MaxLanes {
			return nil, optionsErrf("lanes %d outside [1, %d]", lanes, s.cfg.MaxLanes)
		}
		out, timeNs, err := runKernel(ctx, k, req.Inputs, lanes)
		if err != nil {
			return nil, err
		}
		resp.Outputs, resp.TimeNs = out, timeNs
		return resp, nil
	case "verify":
		trials := req.Trials
		if trials == 0 {
			trials = 3
		}
		if trials < 1 || trials > s.cfg.MaxVerifyTrials {
			return nil, optionsErrf("trials %d outside [1, %d]", trials, s.cfg.MaxVerifyTrials)
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		resp.Trials = trials
		// Verification runs serially (workers=1): per-request fan-out
		// would multiply one admission slot into GOMAXPROCS of load.
		verr := k.VerifyCtx(ctx, trials, seed, 1)
		ok := verr == nil
		switch {
		case verr == nil:
			resp.VerifyOK = &ok
			return resp, nil
		case chopper.ErrorClass(verr) == "verify":
			// A mismatch is a result, not a transport failure: 200 with
			// verify_ok=false and the discrepancy detail.
			resp.VerifyOK = &ok
			resp.VerifyDetail = verr.Error()
			return resp, nil
		default:
			return nil, verr
		}
	default:
		return nil, &reqError{class: "internal", msg: "unknown endpoint kind " + kind}
	}
}

// runKernel is Kernel.Run under a context: operands one value per lane,
// widths up to 64 bits, outputs the same way.
func runKernel(ctx context.Context, k *chopper.Kernel, inputs map[string][]uint64, lanes int) (map[string][]uint64, float64, error) {
	rows := make(map[string][][]uint64, len(k.Inputs))
	for _, in := range k.Inputs {
		vals, ok := inputs[in.Name]
		if !ok {
			return nil, 0, optionsErrf("missing input %q", in.Name)
		}
		if in.Width > 64 {
			return nil, 0, optionsErrf("input %q is %d bits wide; the service handles up to 64", in.Name, in.Width)
		}
		if len(vals) != lanes {
			return nil, 0, optionsErrf("input %q has %d values, want one per lane (%d)", in.Name, len(vals), lanes)
		}
		rows[in.Name] = transpose.ToVertical(vals, in.Width, lanes)
	}
	res, err := k.RunRowsCtx(ctx, rows, lanes)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string][]uint64, len(k.Outputs))
	for _, o := range k.Outputs {
		if o.Width > 64 {
			return nil, 0, optionsErrf("output %q is %d bits wide; the service handles up to 64", o.Name, o.Width)
		}
		out[o.Name] = transpose.FromVertical(res.Rows[o.Name], o.Width, lanes)
	}
	return out, res.TimeNs, nil
}

func parseTarget(s string) (chopper.Target, error) {
	switch strings.ToLower(s) {
	case "", "ambit":
		return chopper.Ambit, nil
	case "elp2im":
		return chopper.ELP2IM, nil
	case "simdram":
		return chopper.SIMDRAM, nil
	}
	return 0, optionsErrf("unknown target %q (valid: ambit, elp2im, simdram)", s)
}

func parseOpt(s string) (chopper.OptLevel, error) {
	switch strings.ToLower(s) {
	case "", "rename", "full":
		return chopper.OptFull, nil
	case "reuse":
		return chopper.OptReuse, nil
	case "schedule":
		return chopper.OptSchedule, nil
	case "bitslice":
		return chopper.OptBitslice, nil
	}
	return 0, optionsErrf("unknown opt level %q (valid: bitslice, schedule, reuse, rename)", s)
}

// workCtx derives a request context that ends when the client goes away,
// the class deadline expires, or the server hard-cancels in-flight work
// at the drain deadline.
func (s *Server) workCtx(parent context.Context, deadline time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	stop := context.AfterFunc(s.baseCtx, cancel)
	if deadline > 0 {
		dctx, dcancel := context.WithTimeout(ctx, deadline)
		return dctx, func() { dcancel(); cancel(); stop() }
	}
	return ctx, func() { cancel(); stop() }
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error, class string) {
	status := StatusForClass(class)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// Shed and drain rejections are retryable; say when.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, &ErrorResponse{Error: err.Error(), ErrorClass: class})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	s.met.render(&sb)
	for c := Class(0); c < numClasses; c++ {
		inflight, queued := s.adm[c].depths()
		fmt.Fprintf(&sb, "chopperd_inflight{class=%q} %d\n", c, inflight)
		fmt.Fprintf(&sb, "chopperd_queued{class=%q} %d\n", c, queued)
	}
	var cache chopper.CacheStats
	var trippedTenants, levels int
	s.mu.Lock()
	shards := make([]*tenant, 0, len(s.tenants)+1)
	for _, t := range s.tenants {
		shards = append(shards, t)
	}
	shards = append(shards, s.overflow)
	nTenants := len(s.tenants)
	s.mu.Unlock()
	for _, t := range shards {
		st := t.cache.Stats()
		cache.Hits += st.Hits
		cache.Misses += st.Misses
		cache.Evictions += st.Evictions
		cache.Dedups += st.Dedups
		cache.Entries += st.Entries
		if lvl, _ := t.brk.state(); lvl > 0 {
			trippedTenants++
			levels += lvl
		}
	}
	fmt.Fprintf(&sb, "chopperd_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(&sb, "chopperd_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(&sb, "chopperd_cache_dedups_total %d\n", cache.Dedups)
	fmt.Fprintf(&sb, "chopperd_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(&sb, "chopperd_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(&sb, "chopperd_tenants %d\n", nTenants)
	fmt.Fprintf(&sb, "chopperd_breaker_tripped_tenants %d\n", trippedTenants)
	fmt.Fprintf(&sb, "chopperd_breaker_level_sum %d\n", levels)
	draining := 0
	if s.Draining() {
		draining = 1
	}
	fmt.Fprintf(&sb, "chopperd_draining %d\n", draining)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}

// CacheStats aggregates the kernel-cache counters across every tenant
// shard (exposed for chopperload's hit-rate reporting and tests).
func (s *Server) CacheStats() chopper.CacheStats {
	var sum chopper.CacheStats
	s.mu.Lock()
	shards := make([]*tenant, 0, len(s.tenants)+1)
	for _, t := range s.tenants {
		shards = append(shards, t)
	}
	shards = append(shards, s.overflow)
	s.mu.Unlock()
	for _, t := range shards {
		st := t.cache.Stats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Dedups += st.Dedups
		sum.Entries += st.Entries
	}
	return sum
}

// ClassConfig returns the effective (normalized) configuration of one
// QoS class.
func (s *Server) ClassConfig(c Class) ClassConfig {
	if c < 0 || c >= numClasses {
		return ClassConfig{}
	}
	return s.cfg.Classes[c]
}

// SetNotReady flips /readyz to 503 without stopping admission — the
// pre-drain step that lets load balancers route away before the server
// starts rejecting.
func (s *Server) SetNotReady() { s.notReady.Store(true) }

// BeginDrain makes the drain irrevocable: /readyz reports 503, new
// requests are rejected with 503, queued requests are released with 503.
// In-flight requests keep running until they finish or Shutdown's hard
// deadline cancels them.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.notReady.Store(true)
		close(s.drainCh)
	})
}

// Draining reports whether BeginDrain has run.
func (s *Server) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Shutdown drains the server: stop admitting, wait for in-flight
// requests, and when ctx expires first, hard-cancel the stragglers
// through the guard layer and wait for them to unwind. Returns nil on a
// clean drain, ctx.Err() when the hard deadline had to fire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			// Hard drain: cancel in-flight work. Guard checkpoints run
			// between micro-ops and pipeline stages, so this lands fast;
			// bound the unwind wait anyway.
			s.baseCancel()
			unwind := time.After(10 * time.Second)
			for s.inflight.Load() != 0 {
				select {
				case <-unwind:
					return fmt.Errorf("serve: %d requests still in flight after hard cancel: %w", s.inflight.Load(), ctx.Err())
				case <-tick.C:
				}
			}
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}
