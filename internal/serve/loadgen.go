package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"chopper"
)

// LoadSource is one workload program the generator draws from.
type LoadSource struct {
	Name   string
	Source string
	// Inputs mirrors the program interface so run requests can build
	// operands without compiling first.
	Inputs []chopper.IOSpec
}

// DefaultSources is a small deterministic workload mix: distinct enough
// to exercise cache misses, repeated enough to exercise hits and the
// single-flight path, and cheap enough that interactive deadlines hold
// on CI hardware.
func DefaultSources() []LoadSource {
	ab8 := []chopper.IOSpec{{Name: "a", Width: 8}, {Name: "b", Width: 8}}
	return []LoadSource{
		{Name: "add8", Source: "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel", Inputs: ab8},
		{Name: "sub8", Source: "node main(a: u8, b: u8) returns (z: u8) let z = a - b; tel", Inputs: ab8},
		{Name: "logic8", Source: "node main(a: u8, b: u8) returns (z: u8) let z = (a ^ b) & (a | b); tel", Inputs: ab8},
		{Name: "mac8", Source: "node main(a: u8, b: u8) returns (z: u8) let z = a * b + a; tel", Inputs: ab8},
	}
}

// LoadConfig configures a deterministic open-loop load run. The seed
// fixes the request sequence (class, tenant, source, kind, operands)
// exactly; only the interleaving of responses varies run to run.
type LoadConfig struct {
	Seed int64
	// QPS and Duration shape the steady phase.
	QPS      float64
	Duration time.Duration
	// OverloadQPS and OverloadDuration, when both positive, append a
	// forced-overload phase (typically several times the server's
	// capacity) to prove sheds stay deterministic 429s.
	OverloadQPS      float64
	OverloadDuration time.Duration
	// HomogeneousQPS and HomogeneousDuration, when both positive, append
	// two same-key run-only phases that isolate the coalescing win:
	// "homog-solo" (every request opts out with NoBatch) and
	// "homog-batched" (the identical schedule with batching allowed).
	// Point these at a server whose batch class has a BatchWindow.
	HomogeneousQPS      float64
	HomogeneousDuration time.Duration
	// Lanes is the SIMD width of run requests (default 8).
	Lanes int
	// Tenants spreads requests over this many tenant shards (default 4).
	Tenants int
	// MaxOutstanding caps the generator's own concurrency so an
	// unresponsive server cannot leak unbounded goroutines (default 256).
	// Open-loop dispatch is preserved until the cap binds.
	MaxOutstanding int
	// Sources is the workload mix (default DefaultSources).
	Sources []LoadSource
	// ClassWeights draws the QoS class (default 2:3:1
	// interactive:batch:best-effort). All zero selects the default.
	ClassWeights [numClasses]int
}

func (cfg LoadConfig) normalize() LoadConfig {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.QPS <= 0 {
		cfg.QPS = 50
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 8
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 256
	}
	if len(cfg.Sources) == 0 {
		cfg.Sources = DefaultSources()
	}
	if cfg.ClassWeights == ([numClasses]int{}) {
		cfg.ClassWeights = [numClasses]int{Interactive: 2, Batch: 3, BestEffort: 1}
	}
	return cfg
}

// LoadTarget dispatches one generated request and reports the HTTP
// status, the decoded success body when there is one, and any transport
// error.
type LoadTarget interface {
	Do(ctx context.Context, kind string, req *Request) (status int, resp *Response, err error)
}

// HandlerTarget drives an http.Handler in process — no sockets, used by
// tests and in-process benchmarking.
type HandlerTarget struct {
	Handler http.Handler
}

func (t HandlerTarget) Do(ctx context.Context, kind string, req *Request) (int, *Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hr := httptest.NewRequest(http.MethodPost, "/v1/"+kind, bytes.NewReader(body)).WithContext(ctx)
	hr.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, hr)
	return decodeLoadResponse(rec.Code, rec.Body.Bytes())
}

// HTTPTarget drives a live chopperd over HTTP (cmd/chopperload).
type HTTPTarget struct {
	BaseURL string
	Client  *http.Client
}

func (t HTTPTarget) Do(ctx context.Context, kind string, req *Request) (int, *Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/v1/"+kind, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hres, err := client.Do(hr)
	if err != nil {
		return 0, nil, err
	}
	defer hres.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(hres.Body); err != nil {
		return hres.StatusCode, nil, err
	}
	return decodeLoadResponse(hres.StatusCode, buf.Bytes())
}

func decodeLoadResponse(status int, body []byte) (int, *Response, error) {
	if status != http.StatusOK {
		return status, nil, nil
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return status, nil, fmt.Errorf("bad 200 body: %w", err)
	}
	return status, &resp, nil
}

// LoadPhase is the measured outcome of one load phase.
type LoadPhase struct {
	Name        string  `json:"name"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// OKQPS is completed-successfully requests per second.
	OKQPS    float64 `json:"ok_qps"`
	Requests int     `json:"requests"`
	// Statuses counts responses by HTTP code ("0" = transport error).
	Statuses map[int]int `json:"statuses"`
	OK       int         `json:"ok"`
	Shed     int         `json:"shed"`
	// ServerErrors counts 5xx other than the 503 drain rejection.
	ServerErrors    int     `json:"server_errors"`
	TransportErrors int     `json:"transport_errors"`
	ShedRate        float64 `json:"shed_rate"`
	// CacheHitRate is (hits+shared)/completed-OK compiles.
	CacheHitRate float64 `json:"cache_hit_rate"`
	Degraded     int     `json:"degraded"`
	// Latency quantiles over all completed requests (ns), plus the
	// interactive-class p99 the QoS contract is judged on.
	P50Ns            float64 `json:"p50_ns"`
	P99Ns            float64 `json:"p99_ns"`
	P999Ns           float64 `json:"p999_ns"`
	InteractiveP99Ns float64 `json:"interactive_p99_ns"`
	DurationNs       int64   `json:"duration_ns"`
	// MeanBatchSize is the achieved members-per-coalesced-pass, estimated
	// from per-response batch_size: each response contributes
	// 1/batch_size of a pass, so requests / sum(1/batch_size) is the
	// pass-weighted mean. 0 when no response reported a batch size.
	MeanBatchSize float64 `json:"mean_batch_size,omitempty"`
	// ByClass breaks latency down per QoS class.
	ByClass map[string]ClassLatency `json:"by_class,omitempty"`
}

// ClassLatency is one QoS class's latency summary within a phase.
type ClassLatency struct {
	Requests int     `json:"requests"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
}

// LoadReport is the full run record.
type LoadReport struct {
	Seed   int64       `json:"seed"`
	Phases []LoadPhase `json:"phases"`
}

// Phase returns the named phase, or nil.
func (r *LoadReport) Phase(name string) *LoadPhase {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// genReq is one pre-generated request (built on the scheduler goroutine
// so the seeded rng is never shared).
type genReq struct {
	kind string
	req  *Request
}

// generate draws the next request from the seeded schedule. heavy mode
// (the forced-overload phase) draws per-request-unique 16-bit multiply
// programs instead of the small cached mix: every compile is a genuine
// multi-millisecond pipeline run, so offered load translates into real
// saturation instead of being absorbed by microsecond cache hits.
func generate(rng *rand.Rand, cfg LoadConfig, heavy bool) genReq {
	// Class by weight.
	total := 0
	for _, w := range cfg.ClassWeights {
		total += w
	}
	pick := rng.Intn(total)
	class := Batch
	for c := Class(0); c < numClasses; c++ {
		if pick < cfg.ClassWeights[c] {
			class = c
			break
		}
		pick -= cfg.ClassWeights[c]
	}
	if heavy {
		req := &Request{
			Tenant: fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants)),
			Class:  class.String(),
			Source: fmt.Sprintf("node main(a: u16, b: u16) returns (z: u16) let z = a * b + %d:u16; tel", rng.Intn(1<<16)),
		}
		kind := "compile"
		if rng.Intn(4) == 0 {
			kind = "verify"
			req.Trials = 4
			req.Seed = rng.Int63n(1 << 30)
		}
		return genReq{kind: kind, req: req}
	}
	src := cfg.Sources[rng.Intn(len(cfg.Sources))]
	req := &Request{
		Tenant: fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants)),
		Class:  class.String(),
		Source: src.Source,
	}
	// Kind mix: compile 60%, run 30%, verify 10%.
	kind := "compile"
	switch k := rng.Intn(10); {
	case k < 3:
		kind = "run"
		req.Lanes = cfg.Lanes
		req.Inputs = make(map[string][]uint64, len(src.Inputs))
		for _, in := range src.Inputs {
			vals := make([]uint64, cfg.Lanes)
			mask := uint64(1)<<uint(in.Width) - 1
			for i := range vals {
				vals[i] = rng.Uint64() & mask
			}
			req.Inputs[in.Name] = vals
		}
	case k < 4:
		kind = "verify"
		req.Trials = 2
		req.Seed = rng.Int63n(1 << 30)
	}
	return genReq{kind: kind, req: req}
}

// homogSource is the homogeneous phase's program: a 16-bit multiply-
// accumulate whose simulated device pass is long enough that a
// saturated solo path queues and sheds — exactly the regime coalescing
// exists for.
var homogSource = LoadSource{
	Name:   "mac16",
	Source: "node main(a: u16, b: u16) returns (z: u16) let z = a * b + a; tel",
	Inputs: []chopper.IOSpec{{Name: "a", Width: 16}, {Name: "b", Width: 16}},
}

// generateHomogeneous draws the same-key phase's schedule: one source,
// one tenant, batch class, run kind — every request shares a batch
// compatibility key, so the achieved batch size is limited only by the
// arrival rate and the window.
func generateHomogeneous(rng *rand.Rand, cfg LoadConfig, noBatch bool) genReq {
	src := homogSource
	req := &Request{
		Tenant:  "tenant-0",
		Class:   Batch.String(),
		Source:  src.Source,
		NoBatch: noBatch,
		Lanes:   cfg.Lanes,
		Inputs:  make(map[string][]uint64, len(src.Inputs)),
	}
	for _, in := range src.Inputs {
		vals := make([]uint64, cfg.Lanes)
		mask := uint64(1)<<uint(in.Width) - 1
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		req.Inputs[in.Name] = vals
	}
	return genReq{kind: "run", req: req}
}

// RunLoad drives target with the configured open-loop schedule: the
// steady phase, then (when configured) the forced-overload phase and
// the homogeneous solo/batched pair.
// ctx cancellation stops scheduling early; in-flight requests are always
// awaited before the report is built.
func RunLoad(ctx context.Context, target LoadTarget, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	report := &LoadReport{Seed: cfg.Seed}
	report.Phases = append(report.Phases, runLoadPhase(ctx, target, cfg, rng, "steady", cfg.QPS, cfg.Duration,
		func(r *rand.Rand) genReq { return generate(r, cfg, false) }))
	if cfg.OverloadQPS > 0 && cfg.OverloadDuration > 0 {
		report.Phases = append(report.Phases,
			runLoadPhase(ctx, target, cfg, rng, "overload", cfg.OverloadQPS, cfg.OverloadDuration,
				func(r *rand.Rand) genReq { return generate(r, cfg, true) }))
	}
	if cfg.HomogeneousQPS > 0 && cfg.HomogeneousDuration > 0 {
		// Both phases replay the identical schedule from the same derived
		// seed; only the NoBatch flag differs, so the solo-vs-batched
		// comparison isolates the coalescing win.
		for _, ph := range []struct {
			name    string
			noBatch bool
		}{{"homog-solo", true}, {"homog-batched", false}} {
			ph := ph
			hr := rand.New(rand.NewSource(cfg.Seed ^ 0x686f6d6f67)) // "homog"
			report.Phases = append(report.Phases,
				runLoadPhase(ctx, target, cfg, hr, ph.name, cfg.HomogeneousQPS, cfg.HomogeneousDuration,
					func(r *rand.Rand) genReq { return generateHomogeneous(r, cfg, ph.noBatch) }))
		}
	}
	return report, ctx.Err()
}

// loadCollector accumulates phase results across dispatch goroutines.
type loadCollector struct {
	mu          sync.Mutex
	statuses    map[int]int
	latencies   []float64
	classLat    map[string][]float64
	ok          int
	shed        int
	serverErr   int
	transport   int
	degraded    int
	cacheHits   int
	cacheSeen   int
	batchN      int
	batchInvSum float64
}

func (lc *loadCollector) record(class string, status int, resp *Response, err error, latNs float64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.statuses[status]++
	lc.latencies = append(lc.latencies, latNs)
	lc.classLat[class] = append(lc.classLat[class], latNs)
	switch {
	case err != nil && status == 0:
		lc.transport++
	case status == http.StatusOK:
		lc.ok++
		if resp != nil {
			lc.cacheSeen++
			if resp.Cache == "hit" || resp.Cache == "shared" {
				lc.cacheHits++
			}
			if resp.Degraded {
				lc.degraded++
			}
			if resp.BatchSize > 0 {
				lc.batchN++
				lc.batchInvSum += 1 / float64(resp.BatchSize)
			}
		}
	case status == http.StatusTooManyRequests:
		lc.shed++
	case status >= 500 && status != http.StatusServiceUnavailable:
		lc.serverErr++
	}
}

func runLoadPhase(ctx context.Context, target LoadTarget, cfg LoadConfig, rng *rand.Rand, name string, qps float64, dur time.Duration, gen func(*rand.Rand) genReq) LoadPhase {
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	n := int(dur / interval)
	if n < 1 {
		n = 1
	}
	lc := &loadCollector{statuses: make(map[int]int), classLat: make(map[string][]float64)}
	sem := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	sent := 0
	for i := 0; i < n && ctx.Err() == nil; i++ {
		g := gen(rng) // on the scheduler goroutine: rng is not shared
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		sem <- struct{}{}
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			status, resp, err := target.Do(ctx, g.kind, g.req)
			lc.record(g.req.Class, status, resp, err, float64(time.Since(t0).Nanoseconds()))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	p := LoadPhase{
		Name:            name,
		OfferedQPS:      qps,
		Requests:        sent,
		Statuses:        lc.statuses,
		OK:              lc.ok,
		Shed:            lc.shed,
		ServerErrors:    lc.serverErr,
		TransportErrors: lc.transport,
		Degraded:        lc.degraded,
		DurationNs:      elapsed.Nanoseconds(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		p.AchievedQPS = float64(sent) / sec
		p.OKQPS = float64(lc.ok) / sec
	}
	if sent > 0 {
		p.ShedRate = float64(lc.shed) / float64(sent)
	}
	if lc.cacheSeen > 0 {
		p.CacheHitRate = float64(lc.cacheHits) / float64(lc.cacheSeen)
	}
	p.P50Ns = exactQuantile(lc.latencies, 0.5)
	p.P99Ns = exactQuantile(lc.latencies, 0.99)
	p.P999Ns = exactQuantile(lc.latencies, 0.999)
	if lc.batchN > 0 && lc.batchInvSum > 0 {
		p.MeanBatchSize = float64(lc.batchN) / lc.batchInvSum
	}
	if len(lc.classLat) > 0 {
		p.ByClass = make(map[string]ClassLatency, len(lc.classLat))
		for class, lat := range lc.classLat {
			p.ByClass[class] = ClassLatency{
				Requests: len(lat),
				P50Ns:    exactQuantile(lat, 0.5),
				P99Ns:    exactQuantile(lat, 0.99),
			}
		}
	}
	p.InteractiveP99Ns = exactQuantile(lc.classLat[Interactive.String()], 0.99)
	return p
}

// exactQuantile sorts in place and returns the ceil-rank q-quantile.
func exactQuantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(float64(len(xs))*q+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
