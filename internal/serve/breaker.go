package serve

import (
	"sync"

	"chopper"
)

// breakerMaxLevel is the deepest degradation step: the hands-tuned
// SIMDRAM baseline pipeline, which skips the OBS passes entirely.
const breakerMaxLevel = 4

// breaker is a per-tenant circuit breaker over compile health. Instead of
// the classic open/closed binary (fail everything while open), it walks
// the same graceful-degradation ladder the compiler itself uses: repeated
// bad outcomes — degraded kernels, budget trips, recovered internal
// panics — step the tenant's pipeline down one optimization level
// (full -> reuse -> schedule -> bitslice -> baseline), trading code
// quality for compile cost and stability; consecutive good outcomes at
// the degraded level step it back up. The tenant keeps getting answers
// either way — the degraded state is surfaced in every response rather
// than turned into failures.
//
// The ladder moves on outcome counts only (no wall clocks), so breaker
// behavior is deterministic and testable.
type breaker struct {
	mu           sync.Mutex
	level        int // 0 = as requested .. breakerMaxLevel = baseline
	bad, good    int // consecutive outcome counters at the current level
	tripAfter    int // bad outcomes that trip one level down
	recoverAfter int // good outcomes that restore one level up
	trips        uint64
}

func newBreaker(tripAfter, recoverAfter int) *breaker {
	if tripAfter < 1 {
		tripAfter = defaultBreakerTripAfter
	}
	if recoverAfter < 1 {
		recoverAfter = defaultBreakerRecoverAfter
	}
	return &breaker{tripAfter: tripAfter, recoverAfter: recoverAfter}
}

// plan caps a requested compilation according to the breaker state:
// level 0 leaves it untouched, levels 1-3 cap the optimization ladder,
// level 4 reroutes to the baseline pipeline. The returned level is
// echoed into responses so tenants can see they are being degraded.
func (b *breaker) plan(requested chopper.OptLevel) (opt chopper.OptLevel, baseline bool, level int) {
	b.mu.Lock()
	level = b.level
	b.mu.Unlock()
	opt = requested
	switch {
	case level >= breakerMaxLevel:
		return chopper.OptBitslice, true, level
	case level > 0:
		caps := [...]chopper.OptLevel{chopper.OptFull, chopper.OptReuse, chopper.OptSchedule, chopper.OptBitslice}
		if c := caps[level]; opt > c {
			opt = c
		}
	}
	return opt, false, level
}

// observe feeds one request outcome into the breaker. Bad outcomes are
// the server-side failure families degrading can actually help with:
// degraded kernels, budget exhaustion, deadline trips and internal
// errors. Client mistakes (parse, typecheck, options) and sheds are
// neutral — they say nothing about this tenant's pipeline health.
func (b *breaker) observe(degraded bool, errClass string) {
	bad := degraded
	switch errClass {
	case "budget", "internal", "deadline":
		bad = true
	case "":
		// success; stays good unless the kernel itself was degraded
	default:
		return // neutral outcome
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if bad {
		b.good = 0
		b.bad++
		if b.bad >= b.tripAfter && b.level < breakerMaxLevel {
			b.level++
			b.bad = 0
			b.trips++
		}
		return
	}
	b.bad = 0
	if b.level > 0 {
		b.good++
		if b.good >= b.recoverAfter {
			b.level--
			b.good = 0
		}
	}
}

// state snapshots the breaker for /metrics.
func (b *breaker) state() (level int, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level, b.trips
}
