package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"chopper"
)

const (
	addSrc = "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel"
	mulSrc = "node main(a: u16, b: u16) returns (z: u16) let z = a * b; tel"
)

// post sends one request through the handler in process and decodes the
// body into out (which may be *Response or *ErrorResponse).
func post(t *testing.T, h http.Handler, kind string, req *Request, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr := httptest.NewRequest(http.MethodPost, "/v1/"+kind, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hr)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s status %d: undecodable body %q: %v", kind, rec.Code, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

func TestCompileEndpoint(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	var resp Response
	if code := post(t, h, "compile", &Request{Tenant: "acme", Source: addSrc}, &resp); code != http.StatusOK {
		t.Fatalf("compile status %d: %+v", code, resp)
	}
	if resp.MicroOps == 0 || resp.Pipeline != "chopper" || resp.Cache != "miss" {
		t.Fatalf("first compile response %+v", resp)
	}
	if resp.Class != "batch" {
		t.Fatalf("default class %q, want batch", resp.Class)
	}
	// Same tenant, same source: cache hit from the tenant's shard.
	if post(t, h, "compile", &Request{Tenant: "acme", Source: addSrc}, &resp); resp.Cache != "hit" {
		t.Fatalf("repeat compile cache %q, want hit", resp.Cache)
	}
	// Different tenant: isolated shard, so a miss.
	if post(t, h, "compile", &Request{Tenant: "rival", Source: addSrc}, &resp); resp.Cache != "miss" {
		t.Fatalf("other tenant's compile cache %q, want miss (shards must be isolated)", resp.Cache)
	}
}

func TestRunEndpoint(t *testing.T) {
	s := New(Config{})
	req := &Request{
		Source: addSrc,
		Lanes:  4,
		Inputs: map[string][]uint64{
			"a": {1, 2, 250, 255},
			"b": {2, 3, 10, 1},
		},
	}
	var resp Response
	if code := post(t, s.Handler(), "run", req, &resp); code != http.StatusOK {
		t.Fatalf("run status %d: %+v", code, resp)
	}
	want := []uint64{3, 5, 4, 0} // mod 256
	got := resp.Outputs["z"]
	if len(got) != len(want) {
		t.Fatalf("outputs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d: got %d, want %d (outputs %v)", i, got[i], want[i], got)
		}
	}
	if resp.TimeNs <= 0 {
		t.Fatal("run reported no simulated time")
	}
}

func TestVerifyEndpoint(t *testing.T) {
	s := New(Config{})
	var resp Response
	if code := post(t, s.Handler(), "verify", &Request{Source: addSrc, Trials: 2, Seed: 7}, &resp); code != http.StatusOK {
		t.Fatalf("verify status %d: %+v", code, resp)
	}
	if resp.VerifyOK == nil || !*resp.VerifyOK || resp.Trials != 2 {
		t.Fatalf("verify response %+v", resp)
	}
}

// TestErrorStatusContract pins the wire contract end to end: each
// failure family produces its documented HTTP status and a stable
// error_class string — the same classification chopper.ErrorClass gives
// the CLI.
func TestErrorStatusContract(t *testing.T) {
	small := DefaultClassConfig(BestEffort)
	small.Budget = chopper.Budget{MaxNetGates: 4}
	cfg := Config{}
	cfg.Classes[BestEffort] = small
	s := New(cfg)
	h := s.Handler()

	cases := []struct {
		name   string
		req    *Request
		status int
		class  string
	}{
		{"parse", &Request{Source: "not a program"}, http.StatusBadRequest, "parse"},
		{"typecheck", &Request{Source: "node main(a: u8) returns (z: u16) let z = a; tel"}, http.StatusBadRequest, "typecheck"},
		{"bad target", &Request{Source: addSrc, Target: "hbm"}, http.StatusBadRequest, "options"},
		{"bad opt", &Request{Source: addSrc, Opt: "turbo"}, http.StatusBadRequest, "options"},
		{"bad class", &Request{Source: addSrc, Class: "platinum"}, http.StatusBadRequest, "options"},
		{"empty source", &Request{}, http.StatusBadRequest, "options"},
		{"bad lanes", &Request{Source: addSrc, Lanes: -1}, http.StatusBadRequest, "options"},
		{"budget", &Request{Source: mulSrc, Class: "best-effort"}, http.StatusRequestEntityTooLarge, "budget"},
		{"missing input", &Request{Source: addSrc, Lanes: 2, Inputs: map[string][]uint64{"a": {1, 2}}}, http.StatusBadRequest, "options"},
	}
	for _, tc := range cases {
		var er ErrorResponse
		kind := "compile"
		if tc.req.Lanes != 0 || tc.req.Inputs != nil {
			kind = "run"
		}
		code := post(t, h, kind, tc.req, &er)
		if code != tc.status || er.ErrorClass != tc.class {
			t.Errorf("%s: status %d class %q, want %d %q (error %q)", tc.name, code, er.ErrorClass, tc.status, tc.class, er.Error)
		}
	}

	// Malformed JSON body.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/compile", strings.NewReader("{nope")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", rec.Code)
	}
	// Wrong method.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/compile", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", rec.Code)
	}
}

// TestStatusForClassTable pins the class -> status table against the
// documented contract (docs/SERVICE.md).
func TestStatusForClassTable(t *testing.T) {
	want := map[string]int{
		"options": 400, "parse": 400, "typecheck": 400, "normalize": 400, "codegen": 400,
		"deadline": 408, "canceled": 408,
		"budget": 413, "verify": 422, "shed": 429,
		"internal": 500, "unknown": 500, "": 500,
		"draining": 503,
	}
	for class, status := range want {
		if got := StatusForClass(class); got != status {
			t.Errorf("StatusForClass(%q) = %d, want %d", class, got, status)
		}
	}
}

func TestDeadlineClassifiesAs408(t *testing.T) {
	cc := DefaultClassConfig(Interactive)
	cc.Deadline = time.Nanosecond // expires before the compile starts
	cfg := Config{}
	cfg.Classes[Interactive] = cc
	s := New(cfg)
	var er ErrorResponse
	code := post(t, s.Handler(), "compile", &Request{Source: mulSrc, Class: "interactive"}, &er)
	if code != http.StatusRequestTimeout || er.ErrorClass != "deadline" {
		t.Fatalf("status %d class %q, want 408 deadline", code, er.ErrorClass)
	}
}

func TestHandlerPanicRecovery(t *testing.T) {
	s := New(Config{})
	s.testHookAdmitted = func(Class, string) { panic("injected handler bug") }
	var er ErrorResponse
	code := post(t, s.Handler(), "compile", &Request{Source: addSrc}, &er)
	if code != http.StatusInternalServerError || er.ErrorClass != "internal" {
		t.Fatalf("panicked handler: status %d class %q, want 500 internal", code, er.ErrorClass)
	}
	if s.inflight.Load() != 0 {
		t.Fatal("panicked handler leaked an inflight count")
	}
	// The process survived; the next request works.
	s.testHookAdmitted = nil
	var resp Response
	if code := post(t, s.Handler(), "compile", &Request{Source: addSrc}, &resp); code != http.StatusOK {
		t.Fatalf("request after panic: status %d", code)
	}
}

// TestBreakerDegradesAndRecovers walks one tenant down the ladder with
// deterministic budget failures and back up with successes, while a
// second tenant stays untouched — failure isolation at the tenant
// boundary.
func TestBreakerDegradesAndRecovers(t *testing.T) {
	small := DefaultClassConfig(BestEffort)
	small.Budget = chopper.Budget{MaxNetGates: 4}
	cfg := Config{BreakerTripAfter: 2, BreakerRecoverAfter: 2}
	cfg.Classes[BestEffort] = small
	s := New(cfg)
	h := s.Handler()

	// Two budget failures trip tenant "hot" one level.
	for i := 0; i < 2; i++ {
		var er ErrorResponse
		if code := post(t, h, "compile", &Request{Tenant: "hot", Class: "best-effort", Source: mulSrc}, &er); code != http.StatusRequestEntityTooLarge {
			t.Fatalf("budget request %d: status %d (%+v)", i, code, er)
		}
	}
	var resp Response
	if code := post(t, h, "compile", &Request{Tenant: "hot", Source: addSrc}, &resp); code != http.StatusOK {
		t.Fatalf("degraded-tenant success: status %d", code)
	}
	if !resp.Degraded || resp.BreakerLevel != 1 || resp.EffectiveOpt != chopper.OptReuse.String() {
		t.Fatalf("degraded-tenant response %+v, want breaker level 1 capping opt to reuse", resp)
	}

	// The other tenant is unaffected.
	var other Response
	post(t, h, "compile", &Request{Tenant: "cold", Source: addSrc}, &other)
	if other.Degraded || other.BreakerLevel != 0 {
		t.Fatalf("unrelated tenant degraded: %+v", other)
	}

	// Two consecutive successes recover the level.
	post(t, h, "compile", &Request{Tenant: "hot", Source: addSrc}, &resp) // good #2 (the one above was #1)
	var after Response
	post(t, h, "compile", &Request{Tenant: "hot", Source: "node main(a: u8) returns (z: u8) let z = a ^ 3:u8; tel"}, &after)
	if after.Degraded || after.BreakerLevel != 0 {
		t.Fatalf("tenant did not recover after consecutive successes: %+v", after)
	}
}

// TestBreakerReachesBaseline drives a tenant to the ladder floor and
// checks it reroutes to the baseline pipeline instead of failing.
func TestBreakerReachesBaseline(t *testing.T) {
	b := newBreaker(1, 1) // every bad outcome steps a level
	for i := 0; i < breakerMaxLevel+3; i++ {
		b.observe(false, "budget")
	}
	opt, baseline, level := b.plan(chopper.OptFull)
	if !baseline || level != breakerMaxLevel || opt != chopper.OptBitslice {
		t.Fatalf("floor plan = (%v, %v, %d), want baseline at level %d", opt, baseline, level, breakerMaxLevel)
	}
	// Neutral outcomes (client errors, sheds) move nothing.
	b.observe(false, "parse")
	b.observe(false, "shed")
	if lvl, _ := b.state(); lvl != breakerMaxLevel {
		t.Fatalf("neutral outcomes moved the level to %d", lvl)
	}
	// Successes climb back to 0.
	for i := 0; i < breakerMaxLevel; i++ {
		b.observe(false, "")
	}
	if lvl, _ := b.state(); lvl != 0 {
		t.Fatalf("level %d after full recovery, want 0", lvl)
	}
}

func TestTenantOverflowShared(t *testing.T) {
	s := New(Config{MaxTenants: 2})
	h := s.Handler()
	for _, tn := range []string{"t1", "t2", "t3", "t4"} {
		var resp Response
		if code := post(t, h, "compile", &Request{Tenant: tn, Source: addSrc}, &resp); code != http.StatusOK {
			t.Fatalf("tenant %s: status %d", tn, code)
		}
	}
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("tenant table grew to %d entries, want the bound 2", n)
	}
	if s.tenantFor("t3") != s.overflow || s.tenantFor("t4") != s.overflow {
		t.Fatal("overflow tenants did not share the overflow shard")
	}
	// Overflow tenants share one cache shard: t4 re-compiling t3's source
	// hits.
	var resp Response
	post(t, h, "compile", &Request{Tenant: "t9", Source: addSrc}, &resp)
	if resp.Cache != "hit" {
		t.Fatalf("overflow shard compile %q, want hit (t3 warmed it)", resp.Cache)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz %d %q", code, body)
	}
	if code, _ := get(t, h, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz %d before drain, want 200", code)
	}
	// Generate some traffic, then check the exposition contains the
	// advertised series.
	var resp Response
	post(t, h, "compile", &Request{Source: addSrc, Class: "interactive"}, &resp)
	post(t, h, "compile", &Request{Source: addSrc, Class: "interactive"}, &resp)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics %d", code)
	}
	for _, series := range []string{
		`chopperd_requests_total{class="interactive",code="200"} 2`,
		`chopperd_admitted_total{class="interactive"} 2`,
		`chopperd_latency_ns{class="interactive",quantile="0.99"}`,
		"chopperd_cache_hits_total 1",
		"chopperd_cache_misses_total 1",
		"chopperd_tenants 1",
		"chopperd_draining 0",
		"chopperd_handler_panics_total 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q\n%s", series, body)
		}
	}
}

func TestAdmitterShedsDeterministically(t *testing.T) {
	a := newAdmitter(1, 1)
	ctx := context.Background()
	drain := make(chan struct{})
	if err := a.acquire(ctx, drain); err != nil {
		t.Fatal(err)
	}
	// Queue the one allowed waiter.
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx, drain) }()
	waitFor(t, func() bool { _, q := a.depths(); return q == 1 })
	// Third arrival: queue full, shed immediately.
	if err := a.acquire(ctx, drain); err != errShed {
		t.Fatalf("over-queue acquire returned %v, want errShed", err)
	}
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire returned %v after a slot freed", err)
	}
	a.release()
}

// waitFor polls cond with a 5s timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{
		"": Batch, "batch": Batch, "interactive": Interactive,
		"best-effort": BestEffort, "BestEffort": BestEffort,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("gold"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	for c := Class(0); c < numClasses; c++ {
		if rt, err := ParseClass(c.String()); err != nil || rt != c {
			t.Errorf("round trip %v failed: %v %v", c, rt, err)
		}
	}
}

func TestRetryAfterOnShedAndDrain(t *testing.T) {
	// Capacity 1/queue 0: a held request forces the next to shed.
	cc := DefaultClassConfig(Batch)
	cc.MaxInflight, cc.MaxQueue = 1, 0
	cfg := Config{}
	cfg.Classes[Batch] = cc
	s := New(cfg)
	h := s.Handler()

	admitted := make(chan struct{})
	release := make(chan struct{})
	s.testHookAdmitted = func(Class, string) {
		close(admitted)
		<-release
	}
	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		body, _ := json.Marshal(&Request{Source: addSrc})
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/compile", bytes.NewReader(body)))
		done <- rec.Code
	}()
	<-admitted
	s.testHookAdmitted = nil

	rec := httptest.NewRecorder()
	body, _ := json.Marshal(&Request{Source: addSrc})
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/compile", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded request status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var er ErrorResponse
	if json.Unmarshal(rec.Body.Bytes(), &er); er.ErrorClass != "shed" {
		t.Fatalf("shed error class %q", er.ErrorClass)
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.normalize()
	for c := Class(0); c < numClasses; c++ {
		if cfg.Classes[c].MaxInflight < 1 {
			t.Errorf("class %v: MaxInflight %d", c, cfg.Classes[c].MaxInflight)
		}
		if cfg.Classes[c].Deadline <= 0 {
			t.Errorf("class %v: no deadline", c)
		}
		if cfg.Classes[c].Budget == (chopper.Budget{}) {
			t.Errorf("class %v: unlimited budget by default", c)
		}
	}
	if cfg.MaxTenants <= 0 || cfg.CacheEntries <= 0 || cfg.MaxBodyBytes <= 0 {
		t.Errorf("unbounded defaults: %+v", cfg)
	}
}

func ExampleStatusForClass() {
	fmt.Println(StatusForClass("budget"), StatusForClass("shed"), StatusForClass("draining"))
	// Output: 413 429 503
}
