package serve

import (
	"context"
	"errors"
	"sync"

	"chopper/internal/guard"
)

// Admission-control errors. These never escape the package as-is — the
// handler layer maps them onto HTTP statuses (429 for a shed, 503 for a
// drain rejection) — but tests and the metrics layer dispatch on them.
var (
	// errShed marks a deterministic load-shedding rejection: the class's
	// queue was full at arrival. The client should back off and retry.
	errShed = errors.New("serve: overloaded, request shed")
	// errDraining marks a rejection because the server is draining: it
	// stopped admitting work and will shut down once in-flight requests
	// finish.
	errDraining = errors.New("serve: draining, not admitting requests")
)

// admitter enforces one QoS class's concurrency contract: at most
// maxInflight requests executing and at most maxQueue admitted-but-
// waiting. Arrivals beyond both bounds are rejected immediately with
// errShed — deterministic load shedding instead of unbounded goroutine
// growth. The zero value is not usable; construct with newAdmitter.
type admitter struct {
	// tokens is the execution semaphore: a buffered channel with one slot
	// per allowed in-flight request.
	tokens chan struct{}

	mu       sync.Mutex
	queued   int
	maxQueue int
}

func newAdmitter(maxInflight, maxQueue int) *admitter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admitter{tokens: make(chan struct{}, maxInflight), maxQueue: maxQueue}
}

// acquire admits one request: immediately if an execution slot is free,
// after queueing if the bounded queue has room, with errShed otherwise.
// A queued request gives up when the server starts draining (errDraining)
// or its context ends (guard.ErrDeadline/ErrCanceled) — queue wait counts
// against the request's deadline, so a slow class cannot park interactive
// requests forever. The caller must release() after a nil return.
func (a *admitter) acquire(ctx context.Context, drain <-chan struct{}) error {
	select {
	case a.tokens <- struct{}{}:
		return nil
	default:
	}
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return errShed
	}
	a.queued++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	select {
	case a.tokens <- struct{}{}:
		return nil
	case <-drain:
		return errDraining
	case <-ctx.Done():
		return guard.Ctx(ctx)
	}
}

func (a *admitter) release() { <-a.tokens }

// depths snapshots the gauges for /metrics.
func (a *admitter) depths() (inflight, queued int) {
	a.mu.Lock()
	queued = a.queued
	a.mu.Unlock()
	return len(a.tokens), queued
}
