package serve

// Request batching: run/verify requests that share a compatibility key
// (everything that selects the compiled kernel and the execution
// semantics — kind, class, target, effective opt level, pipeline,
// hardening, entry, source) collect in a per-key batch for up to the
// class's BatchWindow, then execute as ONE coalesced simulated device
// pass. The pass compiles once through the leader's cache shard,
// concatenates every member's operand lanes into word-aligned spans of
// one shared arena, runs the micro-op stream once, and demultiplexes
// each member's output slice — byte-identical to the member's solo run
// (pinned by chopper's batch tests and this package's identity tests).
//
// Admission: the executor goroutine holds exactly ONE admission slot
// for the whole pass, which is the throughput win — N requests spend
// one inflight token. The slot is acquired with a nil drain channel so
// a drain flushes open windows (members get answers) instead of
// rejecting them; the window select also wakes on drainCh so the flush
// is prompt.
//
// Deadlines: the batch window never extends a request's life. Members
// keep racing their own class-deadline contexts while the window is
// open and withdraw with the standard 408 if the deadline lands first;
// once the pass starts executing, withdrawal is over and the member
// gets the pass's result.
//
// Tenancy: the key deliberately omits the tenant, so identical requests
// from different tenants coalesce (their breaker levels must agree for
// the keys to match, since the key includes the effective opt level and
// pipeline). The compile goes through the first member's cache shard;
// per-member breaker accounting still happens on each member's own
// breaker in finishWork.

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"chopper"
	"chopper/internal/guard"
	"chopper/internal/kcache"
	"chopper/internal/transpose"
)

// batcher indexes the open (still-joinable) batches by compatibility
// key. Lock ordering: batcher.mu before svcBatch.mu.
type batcher struct {
	mu   sync.Mutex
	open map[string]*svcBatch
}

// batchMember is one request waiting inside a batch. The handler
// goroutine blocks on done; the executor fills resp/err/executed and
// closes it.
type batchMember struct {
	req  *Request
	plan *reqPlan
	ctx  context.Context
	done chan struct{}

	// Result fields, written by the executor before close(done).
	resp     *Response
	err      error
	executed bool

	delivered bool // executor-only guard against double delivery
	gone      bool // withdrew before execution; guarded by svcBatch.mu
}

// svcBatch is one forming-or-executing coalesced pass.
type svcBatch struct {
	key   string
	kind  string
	class Class

	window    *time.Timer
	execCtx   context.Context
	cancelAll context.CancelFunc

	mu        sync.Mutex
	members   []*batchMember
	live      int // members not yet withdrawn
	laneWords int // combined operand words across members
	sealed    bool
	executing bool
	full      chan struct{} // closed when the batch reaches MaxBatchSize
}

// batchKey hashes everything that must agree for two requests to share
// one compiled kernel and one device pass.
func batchKey(kind string, class Class, p *reqPlan, req *Request) string {
	return kcache.Key("serve-batch", kind, class.String(),
		strconv.Itoa(int(p.target)), p.effOpt.String(),
		strconv.FormatBool(p.baseline), strconv.FormatBool(p.opts.Harden),
		req.Entry, req.Source)
}

// memberLaneWords is the operand-word footprint one member adds to the
// shared arena: its lane span for a run, the sum of its trials' lane
// spans for a verify sweep.
func memberLaneWords(kind string, req *Request) int {
	switch kind {
	case "run":
		lanes := req.Lanes
		if lanes == 0 {
			lanes = 16
		}
		return transpose.Words(lanes)
	default: // verify
		trials := req.Trials
		if trials == 0 {
			trials = 3
		}
		return chopper.VerifySpanWords(trials)
	}
}

// runBatched is the member side of a coalesced execution: join (or
// open) the batch for this request's key, then wait for the executor —
// still racing the request's own deadline, which the window never
// extends. The bool result mirrors finishWork's executed flag.
func (s *Server) runBatched(ctx context.Context, kind string, req *Request, plan *reqPlan, tn *tenant, cc ClassConfig, class Class) (*Response, bool, error) {
	m := &batchMember{req: req, plan: plan, ctx: ctx, done: make(chan struct{})}
	b := s.joinBatch(kind, class, cc, m)
	select {
	case <-m.done:
	case <-ctx.Done():
		if b.withdraw(m) {
			// Left the window before execution began: the deadline (or
			// client cancel) wins, exactly as it would in the queue.
			return nil, false, guard.Ctx(ctx)
		}
		// Execution already started; the pass's result is moments away.
		<-m.done
	}
	return m.resp, m.executed, m.err
}

// joinBatch adds m to the open batch for its key, sealing full batches,
// or opens a fresh batch (and its executor goroutine) when none fits.
func (s *Server) joinBatch(kind string, class Class, cc ClassConfig, m *batchMember) *svcBatch {
	key := batchKey(kind, class, m.plan, m.req)
	words := memberLaneWords(kind, m.req)
	s.bat.mu.Lock()
	defer s.bat.mu.Unlock()
	if b, ok := s.bat.open[key]; ok {
		b.mu.Lock()
		if !b.sealed && len(b.members) < cc.MaxBatchSize && b.laneWords+words <= s.laneWordCap {
			b.members = append(b.members, m)
			b.live++
			b.laneWords += words
			if len(b.members) >= cc.MaxBatchSize {
				// Full: execute now instead of waiting out the window.
				b.sealed = true
				close(b.full)
				delete(s.bat.open, key)
			}
			b.mu.Unlock()
			return b
		}
		// No room (size, lane capacity, or already sealed): let the
		// existing batch run with what it has and open a fresh one.
		if !b.sealed {
			b.sealed = true
			close(b.full)
		}
		b.mu.Unlock()
		delete(s.bat.open, key)
	}
	execCtx, cancel := context.WithCancel(s.baseCtx)
	b := &svcBatch{
		key:       key,
		kind:      kind,
		class:     class,
		window:    time.NewTimer(cc.BatchWindow),
		execCtx:   execCtx,
		cancelAll: cancel,
		members:   []*batchMember{m},
		live:      1,
		laneWords: words,
		full:      make(chan struct{}),
	}
	s.bat.open[key] = b
	go s.batchExec(b)
	return b
}

// withdraw removes a member whose context ended while the window was
// open. It reports false once execution has begun (the member must wait
// for the pass result instead). The last member to leave cancels the
// executor so an empty batch does not hold its admission slot for the
// rest of the window.
func (b *svcBatch) withdraw(m *batchMember) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.executing || m.gone {
		return false
	}
	m.gone = true
	b.live--
	if b.live == 0 {
		b.sealed = true
		b.cancelAll()
	}
	return true
}

// detach removes the batch from the open index and seals it, so late
// arrivals open a fresh batch instead of joining one that is executing.
func (b *svcBatch) detach(s *Server) {
	s.bat.mu.Lock()
	if s.bat.open[b.key] == b {
		delete(s.bat.open, b.key)
	}
	s.bat.mu.Unlock()
	b.mu.Lock()
	b.sealed = true
	b.mu.Unlock()
}

// beginExecute closes the withdrawal window and snapshots the members
// still waiting.
func (b *svcBatch) beginExecute() []*batchMember {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.executing = true
	live := make([]*batchMember, 0, len(b.members))
	for _, m := range b.members {
		if !m.gone {
			live = append(live, m)
		}
	}
	return live
}

// deliver hands one member its result and releases its handler. Only
// the executor goroutine calls it, so the delivered guard needs no
// extra lock.
func (b *svcBatch) deliver(m *batchMember, resp *Response, executed bool, err error) {
	if m.delivered {
		return
	}
	m.delivered = true
	m.resp, m.executed, m.err = resp, executed, err
	close(m.done)
}

// deliverErr fails every undelivered member with one error.
func (b *svcBatch) deliverErr(err error, executed bool) {
	for _, m := range b.beginExecute() {
		b.deliver(m, nil, executed, err)
	}
}

// batchExec is the executor goroutine: hold one admission slot, wait
// for the batch to fill / the window to close / a drain to flush it,
// then run the coalesced pass and deliver every member's result.
func (s *Server) batchExec(b *svcBatch) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer b.cancelAll()
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panicked()
			b.deliverErr(&reqError{class: "internal", msg: fmt.Sprintf("internal: batch executor: %v", rec)}, true)
		}
	}()

	// One slot for the whole pass. The nil drain channel is deliberate:
	// a drain must flush open batches (members get answers before
	// shutdown), not reject them — the select below wakes on drainCh.
	if err := s.adm[b.class].acquire(b.execCtx, nil); err != nil {
		b.detach(s)
		b.window.Stop()
		b.deliverErr(err, false)
		return
	}
	defer s.adm[b.class].release()

	select {
	case <-b.full:
	case <-b.window.C:
	case <-s.drainCh:
	case <-b.execCtx.Done():
	}
	b.window.Stop()
	b.detach(s)

	members := b.beginExecute()
	if len(members) == 0 {
		// Everyone withdrew (deadlines beat the window); nothing to run.
		return
	}
	s.runBatchPass(b, members)
}

// runBatchPass compiles once and executes the coalesced device pass,
// delivering per-member responses.
func (s *Server) runBatchPass(b *svcBatch, members []*batchMember) {
	occupancy := len(members)
	s.met.batchExecuted(b.class, occupancy)
	for range members {
		s.met.admitted(b.class)
	}

	// The pass runs under the latest member deadline: no member's
	// deadline is extended past what the slowest co-member already has,
	// and the guard layer still classifies an expiry as "deadline" for
	// everyone left in the pass.
	runCtx := b.execCtx
	latest := time.Time{}
	allHave := true
	for _, m := range members {
		if d, ok := m.ctx.Deadline(); ok {
			if d.After(latest) {
				latest = d
			}
		} else {
			allHave = false
		}
	}
	if allHave {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithDeadline(b.execCtx, latest)
		defer cancel()
	}

	lead := members[0]
	k, outcome, compileNs, err := compileForPlan(runCtx, lead.plan, lead.req.Source)
	if err != nil {
		b.deliverErr(err, true)
		return
	}

	resps := make([]*Response, occupancy)
	for i, m := range members {
		resps[i] = baseResponse(m.req, b.class, m.plan, k, outcome, compileNs)
		resps[i].BatchSize = occupancy
	}

	switch b.kind {
	case "run":
		s.batchPassRun(runCtx, b, k, members, resps)
	default:
		s.batchPassVerify(runCtx, b, k, members, resps)
	}
}

// validateRunShape mirrors runKernel's operand validation, message for
// message, so a malformed member fails identically on either path.
func validateRunShape(k *chopper.Kernel, inputs map[string][]uint64, lanes int) error {
	for _, in := range k.Inputs {
		vals, ok := inputs[in.Name]
		if !ok {
			return optionsErrf("missing input %q", in.Name)
		}
		if in.Width > 64 {
			return optionsErrf("input %q is %d bits wide; the service handles up to 64", in.Name, in.Width)
		}
		if len(vals) != lanes {
			return optionsErrf("input %q has %d values, want one per lane (%d)", in.Name, len(vals), lanes)
		}
	}
	for _, o := range k.Outputs {
		if o.Width > 64 {
			return optionsErrf("output %q is %d bits wide; the service handles up to 64", o.Name, o.Width)
		}
	}
	return nil
}

// batchPassRun executes the run-kind pass: malformed members fail
// individually; the rest share one coalesced RunBatch.
func (s *Server) batchPassRun(ctx context.Context, b *svcBatch, k *chopper.Kernel, members []*batchMember, resps []*Response) {
	var reqs []chopper.BatchRun
	var idx []int
	for i, m := range members {
		lanes := m.req.Lanes
		if lanes == 0 {
			lanes = 16
		}
		if err := validateRunShape(k, m.req.Inputs, lanes); err != nil {
			b.deliver(m, nil, true, err)
			continue
		}
		reqs = append(reqs, chopper.BatchRun{Inputs: m.req.Inputs, Lanes: lanes})
		idx = append(idx, i)
	}
	if len(reqs) == 0 {
		return
	}
	outs, results, err := k.RunBatchCtx(ctx, reqs)
	if err != nil {
		for _, i := range idx {
			b.deliver(members[i], nil, true, err)
		}
		return
	}
	for j, i := range idx {
		resps[i].Outputs = outs[j]
		resps[i].TimeNs = results[j].TimeNs
		b.deliver(members[i], resps[i], true, nil)
	}
}

// batchPassVerify executes the verify-kind pass: one coalesced sweep
// serves every trial of every member simultaneously; per-member verify
// failures stay results (200 with verify_ok=false), like the solo path.
func (s *Server) batchPassVerify(ctx context.Context, b *svcBatch, k *chopper.Kernel, members []*batchMember, resps []*Response) {
	specs := make([]chopper.VerifySpec, len(members))
	for i, m := range members {
		trials := m.req.Trials
		if trials == 0 {
			trials = 3
		}
		seed := m.req.Seed
		if seed == 0 {
			seed = 1
		}
		specs[i] = chopper.VerifySpec{Trials: trials, Seed: seed}
		resps[i].Trials = trials
	}
	perSpec, err := k.VerifyBatchCtx(ctx, specs)
	if err != nil {
		for _, m := range members {
			b.deliver(m, nil, true, err)
		}
		return
	}
	for i, m := range members {
		verr := perSpec[i]
		ok := verr == nil
		switch {
		case verr == nil:
			resps[i].VerifyOK = &ok
			b.deliver(m, resps[i], true, nil)
		case chopper.ErrorClass(verr) == "verify":
			resps[i].VerifyOK = &ok
			resps[i].VerifyDetail = verr.Error()
			b.deliver(m, resps[i], true, nil)
		default:
			b.deliver(m, nil, true, verr)
		}
	}
}
