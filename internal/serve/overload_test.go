package serve

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestOverloadShedsDeterministically is the acceptance proof for
// admission control: with every execution slot held and the queue full,
// a burst of 2x capacity resolves every excess request to exactly 429 —
// no 500s, no hangs, no unbounded queueing — and the shed count is
// exact, not probabilistic.
func TestOverloadShedsDeterministically(t *testing.T) {
	const inflight, queue = 2, 2
	cc := DefaultClassConfig(Interactive)
	cc.MaxInflight, cc.MaxQueue = inflight, queue
	cfg := Config{}
	cfg.Classes[Interactive] = cc
	s := New(cfg)
	h := s.Handler()

	admitted := make(chan struct{}, inflight)
	release := make(chan struct{})
	s.testHookAdmitted = func(Class, string) {
		admitted <- struct{}{}
		<-release
	}

	// Saturate every execution slot.
	results := make([]chan int, 0, 2*(inflight+queue))
	req := func() *Request { return &Request{Source: addSrc, Class: "interactive"} }
	for i := 0; i < inflight; i++ {
		ch := make(chan int, 1)
		results = append(results, ch)
		go func() { rec := <-postAsync(h, "compile", req()); ch <- rec.Code }()
		<-admitted
	}
	// Fill the queue.
	for i := 0; i < queue; i++ {
		ch := make(chan int, 1)
		results = append(results, ch)
		go func() { rec := <-postAsync(h, "compile", req()); ch <- rec.Code }()
	}
	waitFor(t, func() bool { _, q := s.adm[Interactive].depths(); return q == queue })

	// The 2x burst: every one of these must shed with 429, immediately.
	var wg sync.WaitGroup
	burst := inflight + queue
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := <-postAsync(h, "compile", req())
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Fatalf("burst request %d resolved with %d, want 429", i, code)
		}
	}

	// Release the held slots: the saturating and queued requests all
	// complete with 200 — overload shed the excess, not the admitted
	// work. (The hook stays installed: the queued requests flow through
	// it too, against the now-closed release channel.)
	close(release)
	for i, ch := range results {
		if code := <-ch; code != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d, want 200", i, code)
		}
	}

	// The accounting agrees: exactly `burst` sheds, zero 5xx.
	cm := &s.met.byClass[Interactive]
	s.met.mu.Lock()
	shed, admittedN := cm.shed, cm.admitted
	fiveHundreds := cm.statuses[http.StatusInternalServerError]
	s.met.mu.Unlock()
	if shed != uint64(burst) || admittedN != uint64(inflight+queue) || fiveHundreds != 0 {
		t.Fatalf("metrics: shed %d admitted %d 500s %d, want %d/%d/0", shed, admittedN, fiveHundreds, burst, inflight+queue)
	}
}

// TestLoadGenSteadyPhase exercises the seeded open-loop generator
// end to end against an in-process server: the report must show healthy
// throughput, zero server errors, cache reuse, and an interactive p99
// inside the class deadline — the QoS contract the service exists to
// keep.
func TestLoadGenSteadyPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation in -short mode")
	}
	s := New(Config{})
	report, err := RunLoad(context.Background(), HandlerTarget{Handler: s.Handler()}, LoadConfig{
		Seed:     42,
		QPS:      80,
		Duration: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := report.Phase("steady")
	if p == nil {
		t.Fatal("no steady phase in report")
	}
	if p.Requests < 50 {
		t.Fatalf("only %d requests dispatched", p.Requests)
	}
	if p.ServerErrors != 0 || p.TransportErrors != 0 {
		t.Fatalf("steady phase errors: %d server, %d transport (statuses %v)", p.ServerErrors, p.TransportErrors, p.Statuses)
	}
	if p.OK == 0 {
		t.Fatalf("no request succeeded: statuses %v", p.Statuses)
	}
	if p.CacheHitRate == 0 {
		t.Fatal("no cache reuse across a repeated workload mix")
	}
	deadline := DefaultClassConfig(Interactive).Deadline
	if p.InteractiveP99Ns > 0 && p.InteractiveP99Ns > float64(deadline.Nanoseconds()) {
		t.Fatalf("interactive p99 %v exceeds the class deadline %v", time.Duration(p.InteractiveP99Ns), deadline)
	}
	if p.P50Ns <= 0 || p.P99Ns < p.P50Ns || p.P999Ns < p.P99Ns {
		t.Fatalf("quantiles out of order: p50 %v p99 %v p999 %v", p.P50Ns, p.P99Ns, p.P999Ns)
	}
}

// TestLoadGenOverloadPhase runs the forced-overload phase against a
// deliberately tiny server: sheds must appear and every failure must be
// a 429 or a queue-deadline 408 — never a 5xx.
func TestLoadGenOverloadPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation in -short mode")
	}
	cfg := Config{}
	for c := Class(0); c < numClasses; c++ {
		cc := DefaultClassConfig(c)
		cc.MaxInflight, cc.MaxQueue = 1, 1
		cfg.Classes[c] = cc
	}
	s := New(cfg)

	// Hold every admitted request briefly so offered load outruns
	// capacity regardless of machine speed.
	s.testHookAdmitted = func(Class, string) { time.Sleep(20 * time.Millisecond) }

	report, err := RunLoad(context.Background(), HandlerTarget{Handler: s.Handler()}, LoadConfig{
		Seed:             7,
		QPS:              30,
		Duration:         300 * time.Millisecond,
		OverloadQPS:      400,
		OverloadDuration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := report.Phase("overload")
	if p == nil {
		t.Fatal("no overload phase in report")
	}
	if p.Shed == 0 {
		t.Fatalf("overload at 400 qps against capacity ~50/s shed nothing: %v", p.Statuses)
	}
	if p.ServerErrors != 0 || p.TransportErrors != 0 {
		t.Fatalf("overload produced %d server / %d transport errors, want 0 (statuses %v)",
			p.ServerErrors, p.TransportErrors, p.Statuses)
	}
	for code := range p.Statuses {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusRequestTimeout:
		default:
			t.Fatalf("overload produced status %d (statuses %v); only 200/429/408 are acceptable", code, p.Statuses)
		}
	}
	// Determinism of the schedule: the same seed regenerates the same
	// request sequence (content, not timing).
	rng1, rng2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	lcfg := LoadConfig{}.normalize()
	for i := 0; i < 100; i++ {
		heavy := i%2 == 0
		a, b := generate(rng1, lcfg, heavy), generate(rng2, lcfg, heavy)
		if a.kind != b.kind || a.req.Tenant != b.req.Tenant || a.req.Class != b.req.Class || a.req.Source != b.req.Source {
			t.Fatalf("request %d diverged across same-seed generators", i)
		}
	}
}
