package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines polls until the goroutine count returns to within
// slack of before (handler goroutines need a moment to observe channel
// closes and exit) and returns the final count.
func settleGoroutines(t *testing.T, before, slack int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before+slack && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func postAsync(h http.Handler, kind string, req *Request) chan *httptest.ResponseRecorder {
	out := make(chan *httptest.ResponseRecorder, 1)
	body, _ := json.Marshal(req)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/"+kind, bytes.NewReader(body)))
		out <- rec
	}()
	return out
}

// TestGracefulDrain drives the full drain sequence deterministically:
//
//  1. a held request is in flight, a second request is queued
//  2. SetNotReady flips /readyz to 503 while both keep their fates open
//  3. BeginDrain releases the queued request with 503-draining and
//     rejects new arrivals with 503, all before the in-flight request
//     is touched
//  4. the in-flight request completes with 200
//  5. Shutdown returns cleanly and no goroutines leak
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	cc := DefaultClassConfig(Batch)
	cc.MaxInflight, cc.MaxQueue = 1, 4
	cfg := Config{}
	cfg.Classes[Batch] = cc
	s := New(cfg)
	h := s.Handler()

	admitted := make(chan struct{})
	release := make(chan struct{})
	s.testHookAdmitted = func(Class, string) {
		admitted <- struct{}{}
		<-release
	}

	// 1: in-flight request holds the only batch slot; a second queues.
	inflight := postAsync(h, "compile", &Request{Source: addSrc})
	<-admitted
	queued := postAsync(h, "compile", &Request{Source: mulSrc})
	waitFor(t, func() bool { _, q := s.adm[Batch].depths(); return q == 1 })

	// 2: readyz flips before any request is rejected or canceled.
	if code, _ := get(t, h, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz %d before drain, want 200", code)
	}
	s.SetNotReady()
	if code, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d after SetNotReady, want 503", code)
	}
	select {
	case rec := <-queued:
		t.Fatalf("queued request resolved (%d) before BeginDrain", rec.Code)
	default:
	}

	// 3: drain releases the queued request with 503 and rejects new work.
	s.BeginDrain()
	rec := <-queued
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request drained with %d, want 503", rec.Code)
	}
	var er ErrorResponse
	if json.Unmarshal(rec.Body.Bytes(), &er); er.ErrorClass != "draining" {
		t.Fatalf("queued request error class %q, want draining", er.ErrorClass)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("drain rejection missing Retry-After")
	}
	if rec = <-postAsync(h, "compile", &Request{Source: addSrc}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("new arrival during drain got %d, want 503", rec.Code)
	}

	// 4: the in-flight request is unharmed and completes.
	close(release)
	if rec = <-inflight; rec.Code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", rec.Code)
	}

	// 5: clean shutdown, no leaked goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if after := settleGoroutines(t, before, 2); after > before+2 {
		t.Fatalf("goroutine leak across drain: %d before, %d after", before, after)
	}
}

// TestShutdownHardCancelsStuckWork proves the drain deadline is a real
// bound: an in-flight request that never finishes on its own is
// canceled through the request context and Shutdown returns the
// deadline error instead of hanging.
func TestShutdownHardCancelsStuckWork(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{})
	h := s.Handler()

	admitted := make(chan struct{})
	s.testHookAdmitted = func(Class, string) { close(admitted) }

	// A compile big enough to hit many guard checkpoints; the hard cancel
	// stops it long before it completes on a deadline this tight.
	inflight := postAsync(h, "verify", &Request{Source: mulSrc, Trials: 64, Class: "batch"})
	<-admitted

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	rec := <-inflight
	if err == nil {
		// The verify genuinely finished inside 10ms; the drain was clean
		// and nothing was canceled — not a failure of the bound.
		if rec.Code != http.StatusOK {
			t.Fatalf("clean drain but request finished with %d", rec.Code)
		}
	} else {
		if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusRequestTimeout {
			t.Fatalf("hard-canceled request finished with %d, want 503 (draining) or 408", rec.Code)
		}
	}
	if after := settleGoroutines(t, before, 2); after > before+2 {
		t.Fatalf("goroutine leak after hard drain: %d before, %d after", before, after)
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	s := New(Config{})
	s.BeginDrain()
	s.BeginDrain() // second call must not panic (double close)
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown of an idle server: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("repeated Shutdown: %v", err)
	}
}
