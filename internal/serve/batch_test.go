package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// batchedConfig returns a config with coalescing enabled on the Batch
// class: a window wide enough that concurrent test requests always meet
// inside it, sealed early by maxSize.
func batchedConfig(window time.Duration, maxSize int) Config {
	cfg := Config{}
	cc := DefaultClassConfig(Batch)
	cc.BatchWindow = window
	cc.MaxBatchSize = maxSize
	cfg.Classes[Batch] = cc
	return cfg
}

// postConcurrently sends every request at once and returns the per-call
// statuses and responses in request order.
func postConcurrently(t *testing.T, h http.Handler, kind string, reqs []*Request) ([]int, []Response) {
	t.Helper()
	codes := make([]int, len(reqs))
	resps := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r *Request) {
			defer wg.Done()
			codes[i] = post(t, h, kind, r, &resps[i])
		}(i, r)
	}
	wg.Wait()
	return codes, resps
}

// TestBatchedRunByteIdentity pins the tentpole contract on the wire: a
// full coalesced pass returns, member by member, exactly the outputs
// and simulated time the solo (NoBatch) path returns for the same
// operands — and reports the occupancy it ran at.
func TestBatchedRunByteIdentity(t *testing.T) {
	const size = 4
	s := New(batchedConfig(2*time.Second, size))
	h := s.Handler()

	lanes := []int{3, 64, 65, 16}
	reqs := make([]*Request, size)
	for i := range reqs {
		n := lanes[i]
		a := make([]uint64, n)
		b := make([]uint64, n)
		for l := 0; l < n; l++ {
			a[l] = uint64(i*31+l) & 0xFF
			b[l] = uint64(255 - l&0xFF)
		}
		reqs[i] = &Request{Source: addSrc, Lanes: n, Inputs: map[string][]uint64{"a": a, "b": b}}
	}
	codes, resps := postConcurrently(t, h, "run", reqs)
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("member %d status %d: %+v", i, code, resps[i])
		}
		if resps[i].BatchSize != size {
			t.Errorf("member %d batch_size %d, want %d", i, resps[i].BatchSize, size)
		}
	}

	for i, r := range reqs {
		solo := *r
		solo.NoBatch = true
		var want Response
		if code := post(t, h, "run", &solo, &want); code != http.StatusOK {
			t.Fatalf("solo member %d status %d: %+v", i, code, want)
		}
		if want.BatchSize != 0 {
			t.Errorf("solo member %d reports batch_size %d, want absent", i, want.BatchSize)
		}
		if resps[i].TimeNs != want.TimeNs {
			t.Errorf("member %d TimeNs %v != solo %v", i, resps[i].TimeNs, want.TimeNs)
		}
		for name, wv := range want.Outputs {
			gv := resps[i].Outputs[name]
			if len(gv) != len(wv) {
				t.Fatalf("member %d output %q: %d lanes, want %d", i, name, len(gv), len(wv))
			}
			for l := range wv {
				if gv[l] != wv[l] {
					t.Errorf("member %d output %q lane %d: %d != solo %d", i, name, l, gv[l], wv[l])
				}
			}
		}
	}
}

// TestBatchedVerifyMatchesSolo: coalesced verify sweeps report the same
// verdicts and trial counts the solo path reports.
func TestBatchedVerifyMatchesSolo(t *testing.T) {
	const size = 3
	s := New(batchedConfig(2*time.Second, size))
	h := s.Handler()

	reqs := []*Request{
		{Source: addSrc, Trials: 2, Seed: 7},
		{Source: addSrc, Trials: 4, Seed: 11},
		{Source: addSrc, Trials: 1, Seed: 3},
	}
	codes, resps := postConcurrently(t, h, "verify", reqs)
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("member %d status %d: %+v", i, code, resps[i])
		}
		if resps[i].BatchSize != size {
			t.Errorf("member %d batch_size %d, want %d", i, resps[i].BatchSize, size)
		}
		solo := *reqs[i]
		solo.NoBatch = true
		var want Response
		if code := post(t, h, "verify", &solo, &want); code != http.StatusOK {
			t.Fatalf("solo member %d status %d: %+v", i, code, want)
		}
		if resps[i].Trials != want.Trials {
			t.Errorf("member %d trials %d != solo %d", i, resps[i].Trials, want.Trials)
		}
		if resps[i].VerifyOK == nil || want.VerifyOK == nil || *resps[i].VerifyOK != *want.VerifyOK {
			t.Errorf("member %d verify_ok %v != solo %v", i, resps[i].VerifyOK, want.VerifyOK)
		}
		if resps[i].VerifyDetail != want.VerifyDetail {
			t.Errorf("member %d detail %q != solo %q", i, resps[i].VerifyDetail, want.VerifyDetail)
		}
	}
}

// TestBatchMetricsNames pins the /metrics names the batching layer
// exports — dashboards depend on them.
func TestBatchMetricsNames(t *testing.T) {
	s := New(batchedConfig(2*time.Second, 2))
	h := s.Handler()
	reqs := []*Request{
		{Source: addSrc, Lanes: 2, Inputs: map[string][]uint64{"a": {1, 2}, "b": {3, 4}}},
		{Source: addSrc, Lanes: 2, Inputs: map[string][]uint64{"a": {5, 6}, "b": {7, 8}}},
	}
	codes, _ := postConcurrently(t, h, "run", reqs)
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("member %d status %d", i, code)
		}
	}
	_, body := get(t, h, "/metrics")
	for _, want := range []string{
		`chopperd_batch_passes_total{class="batch"} 1`,
		`chopperd_batch_requests_total{class="batch",mode="batched"} 2`,
		`chopperd_batch_requests_total{class="batch",mode="solo"} 0`,
		`chopperd_batch_occupancy_bucket{class="batch",le="2"} 1`,
		`chopperd_batch_occupancy_bucket{class="batch",le="64"} 1`,
		`chopperd_batch_occupancy_bucket{class="batch",le="+Inf"} 1`,
		`chopperd_batch_occupancy_sum{class="batch"} 2`,
		`chopperd_batch_occupancy_count{class="batch"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBatchWindowChargesDeadline: the batch window never extends a
// request past its class deadline — a member whose deadline expires
// inside an open window leaves with the standard 408, and the idle
// executor unwinds so the server still drains cleanly.
func TestBatchWindowChargesDeadline(t *testing.T) {
	cfg := Config{}
	cc := DefaultClassConfig(Batch)
	cc.Deadline = 60 * time.Millisecond
	cc.BatchWindow = 10 * time.Second // far beyond the deadline
	cc.MaxBatchSize = 8
	cfg.Classes[Batch] = cc
	s := New(cfg)
	h := s.Handler()

	start := time.Now()
	var er ErrorResponse
	code := post(t, h, "run", &Request{
		Source: addSrc, Lanes: 1,
		Inputs: map[string][]uint64{"a": {1}, "b": {2}},
	}, &er)
	waited := time.Since(start)
	if code != http.StatusRequestTimeout {
		t.Fatalf("status %d (%+v), want 408: the window must not outlive the deadline", code, er)
	}
	if er.ErrorClass != "deadline" {
		t.Errorf("error_class %q, want deadline", er.ErrorClass)
	}
	if waited >= cc.BatchWindow {
		t.Errorf("request held %v, longer than the batch window itself", waited)
	}

	// The abandoned batch must not pin its admission slot or inflight
	// count: a drain right after finishes promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after window-deadline expiry: %v", err)
	}
}

// TestDrainFlushesOpenBatchWindow: BeginDrain flushes open batch
// windows — the waiting member gets its executed 200, not a 503, and
// the server then shuts down cleanly.
func TestDrainFlushesOpenBatchWindow(t *testing.T) {
	s := New(batchedConfig(10*time.Second, 8))
	h := s.Handler()

	type result struct {
		code int
		resp Response
	}
	done := make(chan result, 1)
	go func() {
		var resp Response
		code := post(t, h, "run", &Request{
			Source: addSrc, Lanes: 2,
			Inputs: map[string][]uint64{"a": {40, 1}, "b": {2, 2}},
		}, &resp)
		done <- result{code, resp}
	}()

	// Wait until the request is inside an open window.
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		s.bat.mu.Lock()
		open := len(s.bat.open)
		s.bat.mu.Unlock()
		if open > 0 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("request never opened a batch window")
		}
		time.Sleep(time.Millisecond)
	}

	s.BeginDrain()
	select {
	case r := <-done:
		if r.code != http.StatusOK {
			t.Fatalf("drained batch member status %d (%+v), want 200: drain must flush, not drop", r.code, r.resp)
		}
		if got := r.resp.Outputs["z"]; len(got) != 2 || got[0] != 42 {
			t.Fatalf("flushed member outputs %v", r.resp.Outputs)
		}
		if r.resp.BatchSize != 1 {
			t.Errorf("flushed member batch_size %d, want 1", r.resp.BatchSize)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not flush the open batch window")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after flush: %v", err)
	}
}

// TestDeterminismBatchedServe: repeated coalesced passes over the same
// members produce byte-identical responses (CI runs TestDeterminism*
// under -race -cpu 1,4).
func TestDeterminismBatchedServe(t *testing.T) {
	const size = 3
	reqs := make([]*Request, size)
	for i := range reqs {
		n := []int{5, 64, 65}[i]
		a := make([]uint64, n)
		b := make([]uint64, n)
		for l := 0; l < n; l++ {
			a[l], b[l] = uint64(l*7+i), uint64(l^i)
		}
		reqs[i] = &Request{Source: addSrc, Lanes: n, Inputs: map[string][]uint64{"a": a, "b": b}}
	}

	var first []Response
	for rep := 0; rep < 3; rep++ {
		s := New(batchedConfig(2*time.Second, size))
		codes, resps := postConcurrently(t, s.Handler(), "run", reqs)
		for i, code := range codes {
			if code != http.StatusOK {
				t.Fatalf("rep %d member %d status %d", rep, i, code)
			}
		}
		if rep == 0 {
			first = resps
			continue
		}
		for i := range resps {
			if resps[i].TimeNs != first[i].TimeNs || resps[i].BatchSize != first[i].BatchSize {
				t.Fatalf("rep %d member %d: TimeNs/BatchSize drifted", rep, i)
			}
			if fmt.Sprint(resps[i].Outputs) != fmt.Sprint(first[i].Outputs) {
				t.Fatalf("rep %d member %d: outputs drifted", rep, i)
			}
		}
	}
}
