// Package dfg normalizes a type-checked CHOPPER program into a flat
// dataflow graph: node calls are inlined, equations are scheduled by data
// dependency (with cycle detection — the "normalization and scheduling"
// phase of a synchronous dataflow compiler), and every value carries its bit
// width. The graph is the unit of whole-program analysis: the bit-slicing
// pass lowers it to a logic net, and OBS-1 draws its dependency and
// occurrence statistics from it.
package dfg

import (
	"fmt"
	"math/big"

	"chopper/internal/dsl"
	"chopper/internal/typecheck"
)

// OpKind enumerates dataflow operations.
type OpKind int

const (
	OpInput OpKind = iota
	OpConst
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl // amount in Imm
	OpShr // amount in Imm
	OpEq
	OpNe
	OpLtU
	OpGtU
	OpLeU
	OpGeU
	OpMux // args: c, t, f
	OpMin
	OpMax
	OpAbsDiff
	OpPopCount
	OpResize // zero-extend or truncate to Width

	// Signed comparisons (two's-complement operands, u1 result).
	OpLtS
	OpLeS
	OpGtS
	OpGeS

	// Variable shifts: the amount is the second operand (barrel shifter).
	OpShlV
	OpShrV

	// Unsigned division and remainder (restoring long division). Division
	// by zero yields all-ones / the dividend (the RISC-V convention).
	OpDivU
	OpModU

	// Arithmetic (sign-filling) right shifts: constant amount in Imm, or
	// a computed amount as the second operand.
	OpSra
	OpSraV
)

var opNames = [...]string{
	"input", "const", "add", "sub", "mul", "and", "or", "xor", "not", "neg",
	"shl", "shr", "eq", "ne", "ltu", "gtu", "leu", "geu", "mux", "min", "max",
	"absdiff", "popcount", "resize", "lts", "les", "gts", "ges", "shlv", "shrv", "divu", "modu", "sra", "srav",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op?%d", int(k))
}

// ValueID indexes a value in the graph (topologically ordered).
type ValueID int32

// Value is one dataflow operation result.
type Value struct {
	Kind  OpKind
	Args  []ValueID
	Width int      // result width in bits
	Imm   *big.Int // constant value (OpConst) or shift amount (OpShl/OpShr)
	Name  string   // input name (OpInput)
}

// Graph is the flattened program.
type Graph struct {
	Values      []Value
	Inputs      []ValueID
	Outputs     []ValueID
	OutputNames []string
}

// NumValues returns the number of values.
func (g *Graph) NumValues() int { return len(g.Values) }

// OpCount tallies non-input, non-const operations.
func (g *Graph) OpCount() int {
	n := 0
	for i := range g.Values {
		if g.Values[i].Kind != OpInput && g.Values[i].Kind != OpConst {
			n++
		}
	}
	return n
}

// Uses computes the use count of every value (argument references plus
// output references) — the occurrence statistics OBS-1 ranks by.
func (g *Graph) Uses() []int {
	uses := make([]int, len(g.Values))
	for i := range g.Values {
		for _, a := range g.Values[i].Args {
			uses[a]++
		}
	}
	for _, o := range g.Outputs {
		uses[o]++
	}
	return uses
}

// Validate checks topological order and arities.
func (g *Graph) Validate() error {
	arity := func(k OpKind) int {
		switch k {
		case OpInput, OpConst:
			return 0
		case OpNot, OpNeg, OpShl, OpShr, OpSra, OpPopCount, OpResize:
			return 1
		case OpLtS, OpLeS, OpGtS, OpGeS:
			return 2
		case OpMux:
			return 3
		default:
			return 2
		}
	}
	for i := range g.Values {
		v := &g.Values[i]
		if len(v.Args) != arity(v.Kind) {
			return fmt.Errorf("dfg: value %d (%s) has %d args, want %d", i, v.Kind, len(v.Args), arity(v.Kind))
		}
		for _, a := range v.Args {
			if a < 0 || int(a) >= i {
				return fmt.Errorf("dfg: value %d (%s) references %d out of order", i, v.Kind, a)
			}
		}
		if v.Width <= 0 {
			return fmt.Errorf("dfg: value %d (%s) has width %d", i, v.Kind, v.Width)
		}
	}
	for i, o := range g.Outputs {
		if o < 0 || int(o) >= len(g.Values) {
			return fmt.Errorf("dfg: output %d out of range", i)
		}
	}
	return nil
}

// toSigned reinterprets a width-bit unsigned value as two's complement.
func toSigned(v *big.Int, width int) *big.Int {
	if v.Bit(width-1) == 0 {
		return v
	}
	m := new(big.Int).Lsh(big.NewInt(1), uint(width))
	return new(big.Int).Sub(v, m)
}

func maskTo(v *big.Int, bits int) *big.Int {
	mask := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	mask.Sub(mask, big.NewInt(1))
	return new(big.Int).And(v, mask)
}

// Eval executes the graph on one lane of input values (arbitrary width via
// big.Int), returning the outputs by name. It is the semantic reference the
// compiled PUD programs are tested against.
func (g *Graph) Eval(inputs map[string]*big.Int) (map[string]*big.Int, error) {
	vals := make([]*big.Int, len(g.Values))
	for i := range g.Values {
		v := &g.Values[i]
		arg := func(j int) *big.Int { return vals[v.Args[j]] }
		boolInt := func(b bool) *big.Int {
			if b {
				return big.NewInt(1)
			}
			return big.NewInt(0)
		}
		switch v.Kind {
		case OpInput:
			in, ok := inputs[v.Name]
			if !ok {
				return nil, fmt.Errorf("dfg: missing input %q", v.Name)
			}
			vals[i] = maskTo(in, v.Width)
		case OpConst:
			vals[i] = maskTo(v.Imm, v.Width)
		case OpAdd:
			vals[i] = maskTo(new(big.Int).Add(arg(0), arg(1)), v.Width)
		case OpSub:
			vals[i] = maskTo(new(big.Int).Sub(arg(0), arg(1)), v.Width)
		case OpMul:
			vals[i] = maskTo(new(big.Int).Mul(arg(0), arg(1)), v.Width)
		case OpAnd:
			vals[i] = new(big.Int).And(arg(0), arg(1))
		case OpOr:
			vals[i] = new(big.Int).Or(arg(0), arg(1))
		case OpXor:
			vals[i] = new(big.Int).Xor(arg(0), arg(1))
		case OpNot:
			vals[i] = maskTo(new(big.Int).Not(arg(0)), v.Width)
		case OpNeg:
			vals[i] = maskTo(new(big.Int).Neg(arg(0)), v.Width)
		case OpShl:
			vals[i] = maskTo(new(big.Int).Lsh(arg(0), uint(v.Imm.Int64())), v.Width)
		case OpShr:
			vals[i] = new(big.Int).Rsh(arg(0), uint(v.Imm.Int64()))
		case OpEq:
			vals[i] = boolInt(arg(0).Cmp(arg(1)) == 0)
		case OpNe:
			vals[i] = boolInt(arg(0).Cmp(arg(1)) != 0)
		case OpLtU:
			vals[i] = boolInt(arg(0).Cmp(arg(1)) < 0)
		case OpGtU:
			vals[i] = boolInt(arg(0).Cmp(arg(1)) > 0)
		case OpLeU:
			vals[i] = boolInt(arg(0).Cmp(arg(1)) <= 0)
		case OpGeU:
			vals[i] = boolInt(arg(0).Cmp(arg(1)) >= 0)
		case OpMux:
			if arg(0).Sign() != 0 {
				vals[i] = arg(1)
			} else {
				vals[i] = arg(2)
			}
		case OpMin:
			if arg(0).Cmp(arg(1)) <= 0 {
				vals[i] = arg(0)
			} else {
				vals[i] = arg(1)
			}
		case OpMax:
			if arg(0).Cmp(arg(1)) >= 0 {
				vals[i] = arg(0)
			} else {
				vals[i] = arg(1)
			}
		case OpAbsDiff:
			d := new(big.Int).Sub(arg(0), arg(1))
			vals[i] = d.Abs(d)
		case OpPopCount:
			n := 0
			a := arg(0)
			for bit := 0; bit < a.BitLen(); bit++ {
				if a.Bit(bit) == 1 {
					n++
				}
			}
			vals[i] = big.NewInt(int64(n))
		case OpResize:
			vals[i] = maskTo(arg(0), v.Width)
		case OpShlV:
			amt := arg(1)
			if !amt.IsInt64() || amt.Int64() >= int64(v.Width) {
				vals[i] = big.NewInt(0)
			} else {
				vals[i] = maskTo(new(big.Int).Lsh(arg(0), uint(amt.Int64())), v.Width)
			}
		case OpShrV:
			amt := arg(1)
			if !amt.IsInt64() || amt.Int64() >= int64(v.Width) {
				vals[i] = big.NewInt(0)
			} else {
				vals[i] = new(big.Int).Rsh(arg(0), uint(amt.Int64()))
			}
		case OpSra, OpSraV:
			w := g.Values[v.Args[0]].Width
			var amt int64
			if v.Kind == OpSra {
				amt = v.Imm.Int64()
			} else {
				a := arg(1)
				if !a.IsInt64() || a.Int64() > int64(w) {
					amt = int64(w)
				} else {
					amt = a.Int64()
				}
			}
			if amt > int64(w) {
				amt = int64(w)
			}
			s := toSigned(arg(0), w)
			vals[i] = maskTo(new(big.Int).Rsh(s, uint(amt)), v.Width)
		case OpDivU:
			if arg(1).Sign() == 0 {
				m := new(big.Int).Lsh(big.NewInt(1), uint(v.Width))
				vals[i] = m.Sub(m, big.NewInt(1))
			} else {
				vals[i] = new(big.Int).Div(arg(0), arg(1))
			}
		case OpModU:
			if arg(1).Sign() == 0 {
				vals[i] = arg(0)
			} else {
				vals[i] = new(big.Int).Mod(arg(0), arg(1))
			}
		case OpLtS, OpLeS, OpGtS, OpGeS:
			w := g.Values[v.Args[0]].Width
			sa := toSigned(arg(0), w)
			sb := toSigned(arg(1), w)
			cmp := sa.Cmp(sb)
			var b bool
			switch v.Kind {
			case OpLtS:
				b = cmp < 0
			case OpLeS:
				b = cmp <= 0
			case OpGtS:
				b = cmp > 0
			case OpGeS:
				b = cmp >= 0
			}
			vals[i] = boolInt(b)
		default:
			return nil, fmt.Errorf("dfg: unknown op %d", int(v.Kind))
		}
	}
	out := make(map[string]*big.Int, len(g.Outputs))
	for i, o := range g.Outputs {
		out[g.OutputNames[i]] = vals[o]
	}
	return out, nil
}

// builder constructs graphs with hash-consing.
type builder struct {
	g    Graph
	hash map[valueKey]ValueID
}

// valueKey is the comparable identity of a value for hash-consing. Args
// are padded with -1 (never a real id); every kind has a fixed arity, so
// padding cannot collide. Imm is keyed by its decimal text ("" for nil —
// big.Int.String never returns the empty string).
type valueKey struct {
	kind       OpKind
	a0, a1, a2 ValueID
	width      int
	imm        string
	name       string
}

func (b *builder) add(v Value) ValueID {
	if v.Kind != OpInput {
		key := valueKey{kind: v.Kind, a0: -1, a1: -1, a2: -1, width: v.Width, name: v.Name}
		switch len(v.Args) {
		case 3:
			key.a2 = v.Args[2]
			fallthrough
		case 2:
			key.a1 = v.Args[1]
			fallthrough
		case 1:
			key.a0 = v.Args[0]
		}
		if v.Imm != nil {
			key.imm = v.Imm.String()
		}
		if id, ok := b.hash[key]; ok {
			return id
		}
		id := ValueID(len(b.g.Values))
		b.g.Values = append(b.g.Values, v)
		b.hash[key] = id
		return id
	}
	id := ValueID(len(b.g.Values))
	b.g.Values = append(b.g.Values, v)
	return id
}

// Build flattens the checked program, using its entry node, into a graph.
// Entry parameters become graph inputs; entry returns become outputs.
func Build(ch *typecheck.Checked) (*Graph, error) {
	entry := ch.Prog.Entry()
	if entry == nil {
		return nil, fmt.Errorf("dfg: program has no entry node")
	}
	return BuildNode(ch, entry.Name)
}

// BuildNode flattens the named node as the entry point.
func BuildNode(ch *typecheck.Checked, name string) (*Graph, error) {
	entry := ch.Prog.Lookup(name)
	if entry == nil {
		return nil, fmt.Errorf("dfg: no node named %q", name)
	}
	b := &builder{hash: make(map[valueKey]ValueID)}
	args := make([]ValueID, len(entry.Params))
	for i, p := range entry.Params {
		id := b.add(Value{Kind: OpInput, Width: p.Type.Bits, Name: p.Name})
		b.g.Inputs = append(b.g.Inputs, id)
		args[i] = id
	}
	outs, err := b.instantiate(ch, entry, args, 0)
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		b.g.Outputs = append(b.g.Outputs, o)
		b.g.OutputNames = append(b.g.OutputNames, entry.Returns[i].Name)
	}
	g := b.g
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

const maxInlineDepth = 64

// instantiate inlines a node invocation: args are the already-built values
// for the node's parameters; returns the values of the node's return
// variables. Equation scheduling is demand-driven with cycle detection.
func (b *builder) instantiate(ch *typecheck.Checked, node *dsl.Node, args []ValueID, depth int) ([]ValueID, error) {
	if depth > maxInlineDepth {
		return nil, fmt.Errorf("dfg: node %q exceeds inline depth %d", node.Name, maxInlineDepth)
	}
	// defs: variable -> defining equation; env: variable -> built value.
	defs := make(map[string]*dsl.Equation)
	for _, eq := range node.Eqs {
		for _, lhs := range eq.Lhs {
			defs[lhs] = eq
		}
	}
	env := make(map[string]ValueID, len(args))
	for i, p := range node.Params {
		env[p.Name] = args[i]
	}
	inProgress := make(map[string]bool)

	var evalVar func(name string, pos dsl.Pos) (ValueID, error)
	var evalExpr func(e dsl.Expr) (ValueID, error)

	evalVar = func(name string, pos dsl.Pos) (ValueID, error) {
		if id, ok := env[name]; ok {
			return id, nil
		}
		eq, ok := defs[name]
		if !ok {
			return 0, fmt.Errorf("%s: variable %q has no defining equation in node %q", pos, name, node.Name)
		}
		if inProgress[name] {
			return 0, fmt.Errorf("%s: dependency cycle through variable %q in node %q", pos, name, node.Name)
		}
		for _, lhs := range eq.Lhs {
			inProgress[lhs] = true
		}
		defer func() {
			for _, lhs := range eq.Lhs {
				delete(inProgress, lhs)
			}
		}()
		if len(eq.Lhs) == 1 {
			id, err := evalExpr(eq.Rhs)
			if err != nil {
				return 0, err
			}
			env[name] = id
			return id, nil
		}
		// Multi-return call.
		call := eq.Rhs.(*dsl.Call)
		callee := ch.Prog.Lookup(call.Name)
		cargs := make([]ValueID, len(call.Args))
		for i, a := range call.Args {
			id, err := evalExpr(a)
			if err != nil {
				return 0, err
			}
			cargs[i] = id
		}
		outs, err := b.instantiate(ch, callee, cargs, depth+1)
		if err != nil {
			return 0, err
		}
		for i, lhs := range eq.Lhs {
			env[lhs] = outs[i]
		}
		return env[name], nil
	}

	width := func(e dsl.Expr) int { return ch.TypeOf(e).Bits }

	evalExpr = func(e dsl.Expr) (ValueID, error) {
		switch e := e.(type) {
		case *dsl.Ident:
			return evalVar(e.Name, e.Pos)
		case *dsl.IntLit:
			return b.add(Value{Kind: OpConst, Width: width(e), Imm: e.Value}), nil
		case *dsl.Unary:
			x, err := evalExpr(e.X)
			if err != nil {
				return 0, err
			}
			k := OpNot
			if e.Op == dsl.OpNegU {
				k = OpNeg
			}
			return b.add(Value{Kind: k, Args: []ValueID{x}, Width: width(e)}), nil
		case *dsl.Binary:
			x, err := evalExpr(e.X)
			if err != nil {
				return 0, err
			}
			if e.Op.IsShift() {
				if lit, ok := e.Y.(*dsl.IntLit); ok {
					k := OpShl
					if e.Op == dsl.OpShr {
						k = OpShr
					}
					return b.add(Value{Kind: k, Args: []ValueID{x}, Width: width(e), Imm: lit.Value}), nil
				}
				// Computed amount: a barrel shift.
				y, err := evalExpr(e.Y)
				if err != nil {
					return 0, err
				}
				k := OpShlV
				if e.Op == dsl.OpShr {
					k = OpShrV
				}
				return b.add(Value{Kind: k, Args: []ValueID{x, y}, Width: width(e)}), nil
			}
			y, err := evalExpr(e.Y)
			if err != nil {
				return 0, err
			}
			var k OpKind
			switch e.Op {
			case dsl.OpAdd:
				k = OpAdd
			case dsl.OpSub:
				k = OpSub
			case dsl.OpMul:
				k = OpMul
			case dsl.OpAnd:
				k = OpAnd
			case dsl.OpOr:
				k = OpOr
			case dsl.OpXor:
				k = OpXor
			case dsl.OpEq:
				k = OpEq
			case dsl.OpNe:
				k = OpNe
			case dsl.OpLt:
				k = OpLtU
			case dsl.OpGt:
				k = OpGtU
			case dsl.OpLe:
				k = OpLeU
			case dsl.OpGe:
				k = OpGeU
			default:
				return 0, fmt.Errorf("%s: unsupported operator %s", e.Pos, e.Op)
			}
			return b.add(Value{Kind: k, Args: []ValueID{x, y}, Width: width(e)}), nil
		case *dsl.Cond:
			c, err := evalExpr(e.C)
			if err != nil {
				return 0, err
			}
			t, err := evalExpr(e.T)
			if err != nil {
				return 0, err
			}
			f, err := evalExpr(e.F)
			if err != nil {
				return 0, err
			}
			return b.add(Value{Kind: OpMux, Args: []ValueID{c, t, f}, Width: width(e)}), nil
		case *dsl.Call:
			// Conversion uN(x)?
			if w := width(e); isConversion(e.Name) {
				x, err := evalExpr(e.Args[0])
				if err != nil {
					return 0, err
				}
				return b.add(Value{Kind: OpResize, Args: []ValueID{x}, Width: w}), nil
			}
			if e.Name == "asr" {
				x, err := evalExpr(e.Args[0])
				if err != nil {
					return 0, err
				}
				if lit, ok := e.Args[1].(*dsl.IntLit); ok {
					return b.add(Value{Kind: OpSra, Args: []ValueID{x}, Width: width(e), Imm: lit.Value}), nil
				}
				amt, err := evalExpr(e.Args[1])
				if err != nil {
					return 0, err
				}
				return b.add(Value{Kind: OpSraV, Args: []ValueID{x, amt}, Width: width(e)}), nil
			}
			switch e.Name {
			case "mux", "min", "max", "absdiff", "popcount",
				"slt", "sle", "sgt", "sge", "div", "mod":
				argIDs := make([]ValueID, len(e.Args))
				for i, a := range e.Args {
					id, err := evalExpr(a)
					if err != nil {
						return 0, err
					}
					argIDs[i] = id
				}
				var k OpKind
				switch e.Name {
				case "mux":
					k = OpMux
				case "min":
					k = OpMin
				case "max":
					k = OpMax
				case "absdiff":
					k = OpAbsDiff
				case "popcount":
					k = OpPopCount
				case "slt":
					k = OpLtS
				case "sle":
					k = OpLeS
				case "sgt":
					k = OpGtS
				case "sge":
					k = OpGeS
				case "div":
					k = OpDivU
				case "mod":
					k = OpModU
				}
				return b.add(Value{Kind: k, Args: argIDs, Width: width(e)}), nil
			}
			callee := ch.Prog.Lookup(e.Name)
			cargs := make([]ValueID, len(e.Args))
			for i, a := range e.Args {
				id, err := evalExpr(a)
				if err != nil {
					return 0, err
				}
				cargs[i] = id
			}
			outs, err := b.instantiate(ch, callee, cargs, depth+1)
			if err != nil {
				return 0, err
			}
			return outs[0], nil
		}
		return 0, fmt.Errorf("%s: unsupported expression", e.ExprPos())
	}

	outs := make([]ValueID, len(node.Returns))
	for i, r := range node.Returns {
		id, err := evalVar(r.Name, r.Pos)
		if err != nil {
			return nil, err
		}
		outs[i] = id
	}
	return outs, nil
}

func isConversion(name string) bool {
	if len(name) < 2 || name[0] != 'u' {
		return false
	}
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
