package dfg

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"chopper/internal/dsl"
	"chopper/internal/typecheck"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ch, err := typecheck.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	g, err := Build(ch)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func evalOne(t *testing.T, g *Graph, in map[string]int64, out string) *big.Int {
	t.Helper()
	inputs := make(map[string]*big.Int, len(in))
	for k, v := range in {
		inputs[k] = big.NewInt(v)
	}
	res, err := g.Eval(inputs)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	v, ok := res[out]
	if !ok {
		t.Fatalf("no output %q in %v", out, res)
	}
	return v
}

func TestBuildSimple(t *testing.T) {
	g := build(t, "node f(a: u8, b: u8) returns (z: u8) let z = a + b; tel")
	if len(g.Inputs) != 2 || len(g.Outputs) != 1 {
		t.Fatalf("I/O: %d in, %d out", len(g.Inputs), len(g.Outputs))
	}
	if got := evalOne(t, g, map[string]int64{"a": 200, "b": 100}, "z"); got.Int64() != 44 {
		t.Errorf("200+100 mod 256 = %v, want 44", got)
	}
}

func TestInlining(t *testing.T) {
	g := build(t, `
node double(a: u8) returns (z: u8) let z = a + a; tel
node main(x: u8) returns (y: u8) let y = double(double(x)); tel`)
	if got := evalOne(t, g, map[string]int64{"x": 5}, "y"); got.Int64() != 20 {
		t.Errorf("4*5 = %v", got)
	}
}

func TestMultiReturnInlining(t *testing.T) {
	g := build(t, `
node addsub(a: u8, b: u8) returns (s: u8, d: u8)
let s = a + b; d = a - b; tel
node main(a: u8, b: u8) returns (x: u8, y: u8)
let (x, y) = addsub(a, b); tel`)
	if got := evalOne(t, g, map[string]int64{"a": 9, "b": 4}, "x"); got.Int64() != 13 {
		t.Errorf("sum = %v", got)
	}
	if got := evalOne(t, g, map[string]int64{"a": 9, "b": 4}, "y"); got.Int64() != 5 {
		t.Errorf("diff = %v", got)
	}
}

func TestOutOfOrderEquations(t *testing.T) {
	// Dataflow semantics: equation order is irrelevant.
	g := build(t, `
node f(a: u8) returns (z: u8)
vars t: u8;
let
  z = t + 1;
  t = a + a;
tel`)
	if got := evalOne(t, g, map[string]int64{"a": 3}, "z"); got.Int64() != 7 {
		t.Errorf("got %v, want 7", got)
	}
}

func TestCycleDetected(t *testing.T) {
	prog, err := dsl.Parse(`
node f(a: u8) returns (z: u8)
vars x: u8, y: u8;
let
  x = y + 1;
  y = x + 1;
  z = x;
tel`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ch); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestAllOperators(t *testing.T) {
	g := build(t, `
node f(a: u8, b: u8, c: u1) returns (
  s: u8, d: u8, p: u8, an: u8, o: u8, x: u8, n: u8, ng: u8,
  sl: u8, sr: u8, e: u1, ne_: u1, lt: u1, gt: u1, le: u1, ge: u1,
  m: u8, mn: u8, mx: u8, ad: u8, pc: u8, rz: u8)
let
  s = a + b; d = a - b; p = a * b;
  an = a & b; o = a | b; x = a ^ b; n = ~a; ng = -a;
  sl = a << 2; sr = a >> 2;
  e = a == b; ne_ = a != b; lt = a < b; gt = a > b; le = a <= b; ge = a >= b;
  m = mux(c, a, b); mn = min(a, b); mx = max(a, b); ad = absdiff(a, b);
  pc = popcount(a); rz = u8(u16(a) + u16(b));
tel`)
	a, b := int64(0xC5), int64(0x3A)
	in := map[string]int64{"a": a, "b": b, "c": 1}
	checks := map[string]int64{
		"s": (a + b) & 0xFF, "d": (a - b) & 0xFF, "p": (a * b) & 0xFF,
		"an": a & b, "o": a | b, "x": a ^ b, "n": ^a & 0xFF, "ng": -a & 0xFF,
		"sl": (a << 2) & 0xFF, "sr": a >> 2,
		"e": 0, "ne_": 1, "lt": 0, "gt": 1, "le": 0, "ge": 1,
		"m": a, "mn": b, "mx": a, "ad": a - b,
		"pc": 4, "rz": (a + b) & 0xFF,
	}
	for name, want := range checks {
		if got := evalOne(t, g, in, name); got.Int64() != want {
			t.Errorf("%s = %v, want %d", name, got, want)
		}
	}
}

func TestUsesAndOpCount(t *testing.T) {
	g := build(t, `
node f(a: u8, b: u8) returns (z: u8)
vars t: u8;
let
  t = a + b;
  z = t * t;
tel`)
	uses := g.Uses()
	// Find the add value; it must be used twice (t*t) — but hash-consing
	// means mul(t,t) references it twice.
	var addID ValueID = -1
	for i := range g.Values {
		if g.Values[i].Kind == OpAdd {
			addID = ValueID(i)
		}
	}
	if addID < 0 {
		t.Fatal("no add value")
	}
	if uses[addID] != 2 {
		t.Errorf("add used %d times, want 2", uses[addID])
	}
	if g.OpCount() != 2 {
		t.Errorf("op count = %d, want 2 (add, mul)", g.OpCount())
	}
}

func TestHashConsing(t *testing.T) {
	g := build(t, `
node f(a: u8, b: u8) returns (z: u8, w: u8)
let
  z = a + b;
  w = a + b;
tel`)
	adds := 0
	for i := range g.Values {
		if g.Values[i].Kind == OpAdd {
			adds++
		}
	}
	if adds != 1 {
		t.Errorf("identical adds not shared: %d", adds)
	}
}

func TestWideEval(t *testing.T) {
	g := build(t, "node f(a: u128, b: u128) returns (z: u128) let z = a + b; tel")
	x := new(big.Int).Lsh(big.NewInt(1), 100)
	res, err := g.Eval(map[string]*big.Int{"a": x, "b": x})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 101)
	if res["z"].Cmp(want) != 0 {
		t.Errorf("2^100+2^100 = %v", res["z"])
	}
}

func TestMissingInput(t *testing.T) {
	g := build(t, "node f(a: u8) returns (z: u8) let z = a; tel")
	if _, err := g.Eval(map[string]*big.Int{}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestBuildNodeByName(t *testing.T) {
	prog, _ := dsl.Parse(`
node g(a: u8) returns (z: u8) let z = a + 1; tel
node main(a: u8) returns (z: u8) let z = a; tel`)
	ch, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildNode(ch, "g")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Eval(map[string]*big.Int{"a": big.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	if res["z"].Int64() != 6 {
		t.Errorf("g(5) = %v", res["z"])
	}
	if _, err := BuildNode(ch, "nosuch"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestRandomizedSemantics(t *testing.T) {
	g := build(t, `
node clamp(x: u16, lo: u16, hi: u16) returns (z: u16)
let z = min(max(x, lo), hi); tel
node main(a: u16, b: u16) returns (z: u16)
vars s: u16;
let
  s = a + b;
  z = clamp(s, 10:u16, 1000:u16);
tel`)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := rng.Int63n(1 << 16)
		b := rng.Int63n(1 << 16)
		s := (a + b) & 0xFFFF
		want := s
		if want < 10 {
			want = 10
		}
		if want > 1000 {
			want = 1000
		}
		if got := evalOne(t, g, map[string]int64{"a": a, "b": b}, "z"); got.Int64() != want {
			t.Fatalf("clamp(%d+%d): got %v, want %d", a, b, got, want)
		}
	}
}
