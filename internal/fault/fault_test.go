package fault

import (
	"testing"

	"chopper/internal/isa"
)

const lanes = 128

func row(pattern uint64) []uint64 { return []uint64{pattern, pattern} }

func TestZeroConfigInjectsNothing(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	in := New(Config{}, 7)
	data := row(0xdeadbeef)
	for op := 0; op < 100; op++ {
		in.AfterCompute(op, data, lanes)
		in.AfterCopy(op, data, lanes)
		in.BeforeLoad(op, isa.Row(3), data, lanes)
		in.AfterStore(op, isa.Row(3), data, lanes)
	}
	if data[0] != 0xdeadbeef || data[1] != 0xdeadbeef {
		t.Fatalf("data corrupted by zero config: %#x", data)
	}
	if in.Counts().Total() != 0 {
		t.Fatalf("counts = %+v, want zero", in.Counts())
	}
}

// Identical Config + seed must reproduce identical corruption.
func TestDeterministicAcrossInjectors(t *testing.T) {
	cfg := Config{TRAFlipRate: 0.3, CopyFlipRate: 0.2, RetentionRate: 0.5, RefreshOps: 4}
	mk := func(seed int64) ([]uint64, Counts) {
		in := New(cfg, seed)
		data := row(0x0123456789abcdef)
		for op := 0; op < 200; op++ {
			switch op % 3 {
			case 0:
				in.AfterCompute(op, data, lanes)
			case 1:
				in.AfterCopy(op, data, lanes)
			case 2:
				in.BeforeLoad(op, isa.Row(op%7), data, lanes)
			}
		}
		return data, in.Counts()
	}
	d1, c1 := mk(42)
	d2, c2 := mk(42)
	if d1[0] != d2[0] || d1[1] != d2[1] {
		t.Fatalf("same seed diverged: %#x vs %#x", d1, d2)
	}
	if c1 != c2 {
		t.Fatalf("same seed counts diverged: %+v vs %+v", c1, c2)
	}
	if c1.Total() == 0 {
		t.Fatal("no faults injected at 30%/20%/50% rates over 200 ops")
	}
	d3, _ := mk(43)
	if d1[0] == d3[0] && d1[1] == d3[1] {
		t.Fatal("different seeds produced identical corruption (suspicious)")
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	in := New(Config{TRAFlipRate: 1, MaxFaults: 3}, 1)
	data := row(0)
	for op := 0; op < 50; op++ {
		in.AfterCompute(op, data, lanes)
	}
	if got := in.Counts().TRAFlips; got != 3 {
		t.Fatalf("TRAFlips = %d, want MaxFaults = 3", got)
	}
}

func TestFirstOpWindow(t *testing.T) {
	in := New(Config{TRAFlipRate: 1, FirstOp: 10, MaxFaults: 1}, 1)
	data := row(0)
	for op := 0; op < 20; op++ {
		before := [2]uint64{data[0], data[1]}
		in.AfterCompute(op, data, lanes)
		if op < 10 && (data[0] != before[0] || data[1] != before[1]) {
			t.Fatalf("fault fired at op %d, before FirstOp=10", op)
		}
	}
	if in.Counts().TRAFlips != 1 {
		t.Fatalf("TRAFlips = %d, want exactly 1 at op 10", in.Counts().TRAFlips)
	}
}

func TestSingleLaneFlip(t *testing.T) {
	in := New(Config{TRAFlipRate: 1}, 9)
	data := row(0)
	in.AfterCompute(0, data, lanes)
	ones := 0
	for _, w := range data {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("TRA flip changed %d lanes, want exactly 1", ones)
	}
}

func TestStuckColumns(t *testing.T) {
	cfg := Config{StuckColumns: []StuckColumn{{Lane: 5, High: true}, {Lane: 70, High: false}, {Lane: 9999, High: true}}}
	in := New(cfg, 1)
	data := []uint64{0, ^uint64(0)}
	in.AfterStore(0, isa.Row(2), data, lanes)
	if data[0]>>5&1 != 1 {
		t.Fatal("lane 5 not stuck high")
	}
	if data[1]>>(70-64)&1 != 0 {
		t.Fatal("lane 70 not stuck low")
	}
	if in.Counts().StuckLanes != 2 {
		t.Fatalf("StuckLanes = %d, want 2 (out-of-range lane ignored)", in.Counts().StuckLanes)
	}

	// C-group constant rows are exempt.
	cdata := []uint64{0, 0}
	in.AfterStore(1, isa.C1, cdata, lanes)
	if cdata[0] != 0 {
		t.Fatal("stuck column applied to C-group row")
	}
}

func TestRetentionDecay(t *testing.T) {
	cfg := Config{RetentionRate: 1, RefreshOps: 10}
	in := New(cfg, 3)
	r := isa.Row(4)
	data := row(0)
	in.BeforeLoad(0, r, data, lanes) // first access: records, no decay
	if data[0] != 0 || data[1] != 0 {
		t.Fatal("decay on first access")
	}
	in.BeforeLoad(5, r, data, lanes) // idle 5 <= 10: refreshed
	if data[0] != 0 || data[1] != 0 {
		t.Fatal("decay within refresh threshold")
	}
	in.BeforeLoad(20, r, data, lanes) // idle 15 > 10: decays
	if in.Counts().DecayFlips != 1 {
		t.Fatalf("DecayFlips = %d, want 1", in.Counts().DecayFlips)
	}
	// A store also refreshes the row.
	in2 := New(cfg, 3)
	in2.AfterStore(0, r, data, lanes)
	in2.BeforeLoad(8, r, data, lanes)
	if in2.Counts().DecayFlips != 0 {
		t.Fatal("decay despite recent store")
	}
}

// Epoch replay contract: EpochRestore(0) reproduces the original draw
// bit-for-bit, EpochRestore(n>0) re-salts it, and the retention/budget
// bookkeeping rewinds with the state.
func TestEpochRestoreReplaysDeterministically(t *testing.T) {
	cfg := Config{TRAFlipRate: 0.3, RetentionRate: 0.4, RefreshOps: 4, MaxFaults: 16}
	run := func(in *Injector) ([]uint64, Counts) {
		data := row(0x0123456789abcdef)
		for op := 10; op < 60; op++ {
			switch op % 3 {
			case 0:
				in.AfterCompute(op, data, lanes)
			case 2:
				in.BeforeLoad(op, isa.Row(op%5), data, lanes)
			}
		}
		return data, in.Counts()
	}
	in := New(cfg, 9)
	in.EpochCheckpoint()
	d1, c1 := run(in)
	in.EpochRestore(0)
	d2, c2 := run(in)
	if d1[0] != d2[0] || d1[1] != d2[1] || c1 != c2 {
		t.Fatalf("attempt 0 replay diverged: %#x/%+v vs %#x/%+v", d1, c1, d2, c2)
	}
	in.EpochRestore(1)
	d3, _ := run(in)
	if d1[0] == d3[0] && d1[1] == d3[1] {
		t.Fatal("salted retry reproduced the original draw (retry would be pointless)")
	}
	if c := in.Counts(); c.Total() == 0 {
		t.Fatalf("restore wiped the running counts: %+v", c)
	}
}

// Scrub models a refresh pass: after it, rows are no longer stale, so no
// decay can fire until the idle window fills up again.
func TestScrubClearsRetentionState(t *testing.T) {
	in := New(Config{RetentionRate: 1, RefreshOps: 10}, 3)
	data := row(^uint64(0))
	in.AfterStore(0, isa.Row(1), data, lanes)
	in.BeforeLoad(50, isa.Row(1), data, lanes)
	if in.Counts().DecayFlips == 0 {
		t.Fatal("setup failed: no decay fired on a 50-op-stale row")
	}
	before := in.Counts()
	if n := in.Scrub(50); n == 0 {
		t.Fatal("scrub refreshed no rows")
	}
	fresh := row(^uint64(0))
	in.BeforeLoad(55, isa.Row(1), fresh, lanes)
	if in.Counts().DecayFlips != before.DecayFlips {
		t.Fatal("decay fired on a freshly scrubbed row")
	}
	in.BeforeLoad(120, isa.Row(1), fresh, lanes)
	if in.Counts().DecayFlips == before.DecayFlips {
		t.Fatal("decay stopped firing entirely after scrub; rows should age again")
	}
}

// Reset must make a pooled injector indistinguishable from a fresh New,
// including the epoch bookkeeping (checkpoint map, salt, saved budget)
// that recovery runs leave behind.
func TestResetClearsEpochState(t *testing.T) {
	cfg := Config{TRAFlipRate: 0.3, RetentionRate: 0.4, RefreshOps: 4}
	exercise := func(in *Injector) ([]uint64, Counts) {
		data := row(0xfeedface)
		for op := 0; op < 80; op++ {
			in.AfterCompute(op, data, lanes)
			in.BeforeLoad(op, isa.Row(op%3), data, lanes)
		}
		return data, in.Counts()
	}
	fresh := New(cfg, 21)
	wantData, wantCounts := exercise(fresh)

	used := New(cfg, 99)
	used.EpochCheckpoint()
	exercise(used)
	used.EpochRestore(3) // leaves a non-zero attempt salt armed
	used.Scrub(80)
	used.Reset(cfg, 21)
	gotData, gotCounts := exercise(used)
	if gotData[0] != wantData[0] || gotData[1] != wantData[1] || gotCounts != wantCounts {
		t.Fatalf("reset injector diverged from fresh New: %#x/%+v vs %#x/%+v",
			gotData, gotCounts, wantData, wantCounts)
	}
}
