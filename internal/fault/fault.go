// Package fault provides deterministic, seedable fault models for the
// functional PUD simulator. Real processing-using-DRAM substrates are not
// the perfect bit-matrices the functional model assumes: triple-row
// activation (TRA) and in-DRAM row copy (AAP) are analog charge-sharing
// operations whose error rates depend on which rows and bitlines
// participate, DRAM cells leak charge between refreshes, and manufacturing
// defects leave individual bitlines stuck. The Injector wraps the
// simulator's row operations with four independently parameterizable
// models of those effects:
//
//   - TRA charge-sharing flips: each AP (triple-row activation) suffers a
//     single-lane upset of its majority result with a configurable per-op
//     probability;
//   - row-copy corruption: each AAP copy suffers a single-lane flip of the
//     copied payload with a configurable per-op probability;
//   - stuck-at bitline columns: a fixed set of lanes is forced to 0 or 1
//     on every row store (a permanent defect, not a transient event);
//   - retention decay: a row that sits idle (neither loaded nor stored)
//     longer than a refresh threshold suffers a single-lane flip, with a
//     configurable probability, when it is next sensed.
//
// Every transient decision is drawn from a stateless hash of
// (seed, op index, fault kind, row), so injection is fully reproducible:
// identical Config and seed produce identical per-lane corruption on
// identical programs, regardless of how many other fault models are
// enabled alongside.
package fault

import (
	"chopper/internal/isa"
)

// StuckColumn describes a permanently defective bitline: lane Lane reads
// and writes as the constant High on every stored row.
type StuckColumn struct {
	Lane int
	High bool
}

// Config parameterizes the fault models. The zero value injects nothing.
type Config struct {
	// TRAFlipRate is the per-AP probability that the TRA result suffers a
	// one-lane flip (the charge-sharing consensus resolves wrongly on one
	// bitline). The flipped value lands in all three participating rows,
	// as it would physically.
	TRAFlipRate float64

	// CopyFlipRate is the per-AAP probability that the copied row suffers
	// a one-lane flip in transit through the row buffer.
	CopyFlipRate float64

	// RetentionRate is the probability that a row idle for more than
	// RefreshOps micro-ops suffers a one-lane decay flip when next
	// sensed. Ignored unless RefreshOps > 0.
	RetentionRate float64
	// RefreshOps is the idle threshold, in micro-ops, beyond which a row
	// becomes vulnerable to retention decay. 0 disables the model.
	RefreshOps int

	// StuckColumns lists permanently defective bitlines, applied on every
	// row store outside the C-group. Stuck lanes are defects, not events:
	// they ignore MaxFaults/FirstOp and are tallied separately.
	StuckColumns []StuckColumn

	// MaxFaults caps the number of injected transient events (TRA, copy
	// and decay flips). 0 means unlimited. MaxFaults=1 with a rate of 1
	// yields a deterministic single-fault run.
	MaxFaults int
	// FirstOp suppresses transient injection before the given op index,
	// so single faults can be aimed at a chosen point of the program.
	FirstOp int
}

// Enabled reports whether any fault model is active.
func (c Config) Enabled() bool {
	return c.TRAFlipRate > 0 || c.CopyFlipRate > 0 ||
		(c.RetentionRate > 0 && c.RefreshOps > 0) || len(c.StuckColumns) > 0
}

// Counts tallies injected faults by model.
type Counts struct {
	TRAFlips   int // charge-sharing upsets of AP results
	CopyFlips  int // AAP payload corruptions
	DecayFlips int // retention-decay flips
	StuckLanes int // lane values forced by stuck-at columns
}

// Total sums all injected fault events.
func (c Counts) Total() int { return c.TRAFlips + c.CopyFlips + c.DecayFlips + c.StuckLanes }

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.TRAFlips += other.TRAFlips
	c.CopyFlips += other.CopyFlips
	c.DecayFlips += other.DecayFlips
	c.StuckLanes += other.StuckLanes
}

// Injector implements the simulator's fault hook (sim.FaultHook) for one
// subarray. It is not safe for concurrent use; give each subarray its own.
//
// It also implements the simulator's EpochHook: the recovery layer
// checkpoints the injector at epoch boundaries, restores it on rollback,
// and salts each retry attempt so a replayed epoch faces an independent
// transient-fault draw (the stateless hash would otherwise re-inject the
// identical faults on every retry and recovery could never converge).
type Injector struct {
	cfg    Config
	seed   uint64
	spent  int
	last   map[isa.Row]int // op index of each row's most recent access
	counts Counts

	// attemptSalt is folded into every transient roll. Zero for attempt 0
	// of every epoch, so a recovery run that never retries draws byte for
	// byte the fault pattern a recovery-free run would.
	attemptSalt uint64

	// Epoch checkpoint storage (EpochCheckpoint/EpochRestore). The map is
	// reused across epochs, so steady-state snapshots allocate nothing.
	ckLast   map[isa.Row]int
	ckSpent  int
	ckCounts Counts
}

// New creates an injector for cfg, reproducible from seed.
func New(cfg Config, seed int64) *Injector {
	in := &Injector{last: make(map[isa.Row]int)}
	in.Reset(cfg, seed)
	return in
}

// Reset re-arms the injector for a new trial under (cfg, seed), clearing
// all counters and retention state while keeping its storage. A reset
// injector is indistinguishable from New(cfg, seed) — the fault sequence
// is a stateless hash of (seed, op index), not of injector history — which
// is what lets reliability sweeps pool injectors across trials.
func (in *Injector) Reset(cfg Config, seed int64) {
	in.cfg = cfg
	in.seed = mix(uint64(seed) ^ 0x9e3779b97f4a7c15)
	in.spent = 0
	clear(in.last)
	in.counts = Counts{}
	in.attemptSalt = 0
	if in.ckLast != nil {
		clear(in.ckLast)
	}
	in.ckSpent = 0
	in.ckCounts = Counts{}
}

// Counts returns the faults injected so far.
func (in *Injector) Counts() Counts { return in.counts }

// Fault event kinds, salted into the per-event hash so co-enabled models
// draw independent randomness.
const (
	kindTRA uint64 = iota + 1
	kindCopy
	kindDecay
)

// mix is the splitmix64 finalizer: a strong stateless 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// roll draws the event hash for (op, kind, row-salt). The attempt salt is
// zero outside epoch retries, so the draw is unchanged for ordinary runs.
func (in *Injector) roll(kind uint64, opIdx int, salt uint64) uint64 {
	return mix(in.seed ^ in.attemptSalt ^ mix(uint64(opIdx)+1) ^ mix(kind<<32^salt))
}

// fires converts the hash's top 53 bits into a uniform [0,1) draw.
func fires(p float64, h uint64) bool {
	return p > 0 && float64(h>>11)/(1<<53) < p
}

// budget reports whether a transient fault may fire at opIdx.
func (in *Injector) budget(opIdx int) bool {
	if opIdx < in.cfg.FirstOp {
		return false
	}
	return in.cfg.MaxFaults <= 0 || in.spent < in.cfg.MaxFaults
}

// flipLane flips the hash-chosen lane of data.
func flipLane(data []uint64, h uint64, lanes int) {
	lane := int(h % uint64(lanes))
	data[lane/64] ^= 1 << uint(lane%64)
}

// BeforeLoad is called when a row is about to be sensed; it materializes
// retention decay on rows idle beyond the refresh threshold and refreshes
// the row's access time (sensing restores the charge).
func (in *Injector) BeforeLoad(opIdx int, r isa.Row, data []uint64, lanes int) {
	if in.cfg.RefreshOps > 0 && in.cfg.RetentionRate > 0 {
		if lastT, seen := in.last[r]; seen && opIdx-lastT > in.cfg.RefreshOps && in.budget(opIdx) {
			h := in.roll(kindDecay, opIdx, uint64(int64(r)))
			if fires(in.cfg.RetentionRate, h) {
				flipLane(data, mix(h), lanes)
				in.spent++
				in.counts.DecayFlips++
			}
		}
	}
	in.last[r] = opIdx
}

// AfterCompute perturbs a TRA (AP) result before it latches back into the
// participating rows: a charge-sharing upset flips one lane's consensus.
func (in *Injector) AfterCompute(opIdx int, data []uint64, lanes int) {
	if !in.budget(opIdx) {
		return
	}
	h := in.roll(kindTRA, opIdx, 0)
	if !fires(in.cfg.TRAFlipRate, h) {
		return
	}
	flipLane(data, mix(h), lanes)
	in.spent++
	in.counts.TRAFlips++
}

// AfterCopy perturbs an AAP payload in the row buffer before it is stored
// into the destination rows.
func (in *Injector) AfterCopy(opIdx int, data []uint64, lanes int) {
	if !in.budget(opIdx) {
		return
	}
	h := in.roll(kindCopy, opIdx, 0)
	if !fires(in.cfg.CopyFlipRate, h) {
		return
	}
	flipLane(data, mix(h), lanes)
	in.spent++
	in.counts.CopyFlips++
}

// EpochCheckpoint snapshots the injector's trial state — transient-budget
// spend, per-model tallies and the retention timestamps — at an epoch
// boundary, and rewinds the attempt salt so the epoch's first execution
// draws exactly the fault pattern a recovery-free run would. Snapshot
// storage is reused across epochs; the steady state allocates nothing.
func (in *Injector) EpochCheckpoint() {
	if in.ckLast == nil {
		in.ckLast = make(map[isa.Row]int, len(in.last))
	} else {
		clear(in.ckLast)
	}
	for r, t := range in.last {
		in.ckLast[r] = t
	}
	in.ckSpent = in.spent
	in.ckCounts = in.counts
	in.attemptSalt = 0
}

// EpochRestore rewinds the injector to the last EpochCheckpoint and arms
// retry attempt `attempt`: attempt 0 reproduces the original draw byte for
// byte, while attempt n > 0 salts every transient roll with a value derived
// from n, so each replay of the epoch faces an independent fault pattern.
// Permanent defects (stuck-at columns) are configuration, not state, and
// re-apply identically on every attempt — which is what makes them
// detectable but uncorrectable by replay.
func (in *Injector) EpochRestore(attempt int) {
	clear(in.last)
	for r, t := range in.ckLast {
		in.last[r] = t
	}
	in.spent = in.ckSpent
	in.counts = in.ckCounts
	if attempt == 0 {
		in.attemptSalt = 0
	} else {
		in.attemptSalt = mix(uint64(attempt) * 0x9e3779b97f4a7c15)
	}
}

// Scrub models a retention scrub pass issued at opIdx: every tracked row is
// re-sensed and its charge restored, so decay idle clocks restart from the
// scrub point — a row cannot decay during the retried epoch unless it sits
// idle past the refresh threshold again. Returns the number of rows
// refreshed.
func (in *Injector) Scrub(opIdx int) int {
	for r := range in.last {
		in.last[r] = opIdx
	}
	return len(in.last)
}

// AfterStore applies persistent bitline defects to a freshly stored row
// and records the access. C-group constant rows are architectural
// references outside the data bitline array and are exempt.
func (in *Injector) AfterStore(opIdx int, r isa.Row, data []uint64, lanes int) {
	if len(in.cfg.StuckColumns) > 0 && !r.IsCGroup() {
		for _, sc := range in.cfg.StuckColumns {
			if sc.Lane < 0 || sc.Lane >= lanes {
				continue
			}
			w, b := sc.Lane/64, uint(sc.Lane%64)
			if (data[w]>>b&1 == 1) != sc.High {
				data[w] ^= 1 << b
				in.counts.StuckLanes++
			}
		}
	}
	in.last[r] = opIdx
}
