package obs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chopper/internal/logic"
)

// chainNet builds two dependent W-bit adds feeding a comparison — the
// paper's Figure 6 example shape (dependent operations whose intermediate
// words need not be buffered), with a 1-bit result so output rows do not
// mask the scheduling effect.
func chainNet(w int) *logic.Net {
	b := logic.NewOptBuilder()
	a := b.InputWord("a", w)
	bb := b.InputWord("b", w)
	c := b.InputWord("c", w)
	d := b.InputWord("d", w)
	t := b.Add(a, bb)
	b.Output("z[0]", b.Eq(b.Add(t, c), d))
	return b.Net().DCE()
}

func TestVariantHierarchy(t *testing.T) {
	if Full != Rename {
		t.Error("Full must equal Rename")
	}
	checks := []struct {
		v                 Variant
		sched, reuse, ren bool
	}{
		{Bitslice, false, false, false},
		{Schedule, true, false, false},
		{Reuse, true, true, false},
		{Rename, true, true, true},
	}
	for _, c := range checks {
		if c.v.HasSchedule() != c.sched || c.v.HasReuse() != c.reuse || c.v.HasRename() != c.ren {
			t.Errorf("%v: flags wrong", c.v)
		}
	}
	names := []string{"bitslice", "schedule", "reuse", "rename"}
	for i, v := range AllVariants {
		if v.String() != names[i] {
			t.Errorf("variant %d name %q", i, v.String())
		}
	}
}

func TestScheduleCoversAllGates(t *testing.T) {
	n := chainNet(8)
	for _, aware := range []bool{false, true} {
		order := ScheduleGates(n, aware)
		if len(order) != n.OpGates() {
			t.Fatalf("aware=%v: order has %d gates, net has %d", aware, len(order), n.OpGates())
		}
		seen := make(map[logic.NodeID]bool)
		for _, id := range order {
			if seen[id] {
				t.Fatalf("aware=%v: gate %d scheduled twice", aware, id)
			}
			seen[id] = true
		}
	}
}

func TestScheduleRespectsDependencies(t *testing.T) {
	n := chainNet(16)
	order := ScheduleGates(n, true)
	posOf := make(map[logic.NodeID]int, len(order))
	for i, id := range order {
		posOf[id] = i
	}
	for _, id := range order {
		g := &n.Gates[id]
		for a := 0; a < g.Kind.Arity(); a++ {
			arg := g.Args[a]
			if p, ok := posOf[arg]; ok && p >= posOf[id] {
				t.Fatalf("gate %d scheduled before its operand %d", id, arg)
			}
		}
	}
}

// The Figure 6 effect: dependent additions aggregated, so pressure is far
// below "buffer the whole intermediate word".
func TestScheduleReducesPressureOnChains(t *testing.T) {
	n := chainNet(32)
	nat := MaxLive(n, ScheduleGates(n, false))
	opt := MaxLive(n, ScheduleGates(n, true))
	if opt >= nat {
		t.Fatalf("scheduling did not reduce pressure: %d -> %d", nat, opt)
	}
	// The aggregated schedule should need O(1) rows, not O(width).
	if opt > 12 {
		t.Errorf("aggregated pressure %d still scales with width", opt)
	}
}

func TestScheduleNeverWorseThanNatural(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := logic.NewOptBuilder()
		nodes := []logic.NodeID{b.Input("x"), b.Input("y"), b.Input("z")}
		for i := 0; i < 60; i++ {
			pick := func() logic.NodeID { return nodes[rng.Intn(len(nodes))] }
			var id logic.NodeID
			switch rng.Intn(4) {
			case 0:
				id = b.And(pick(), pick())
			case 1:
				id = b.Or(pick(), pick())
			case 2:
				id = b.Not(pick())
			case 3:
				id = b.Maj(pick(), pick(), pick())
			}
			nodes = append(nodes, id)
		}
		for i := 0; i < 4; i++ {
			b.Output("o", nodes[len(nodes)-1-i*3])
		}
		n := b.Net().DCE()
		return MaxLive(n, ScheduleGates(n, true)) <= MaxLive(n, ScheduleGates(n, false))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLiveSimple(t *testing.T) {
	// x&y and x|y both feeding a final and: natural order holds both
	// intermediates live at once.
	b := logic.NewOptBuilder()
	x := b.Input("x")
	y := b.Input("y")
	a1 := b.And(x, y)
	o1 := b.Or(x, y)
	b.Output("z", b.And(a1, o1))
	n := b.Net()
	order := ScheduleGates(n, false)
	// a1 and o1 are live together, then the output result joins them
	// before they are freed: peak 3 (output rows stay resident).
	if got := MaxLive(n, order); got != 3 {
		t.Errorf("MaxLive = %d, want 3", got)
	}
}

func TestScheduleEmptyNet(t *testing.T) {
	b := logic.NewOptBuilder()
	x := b.Input("x")
	b.Output("z", x)
	n := b.Net()
	if got := ScheduleGates(n, true); len(got) != 0 {
		t.Errorf("passthrough net scheduled %d gates", len(got))
	}
}
