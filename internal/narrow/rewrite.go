package narrow

import (
	"math/big"

	"chopper/internal/dfg"
)

// gKey identifies a value for hash-consing in the rewrite builder. Imm is
// keyed by its decimal string (big.Int is not comparable); unused arg
// slots are -1.
type gKey struct {
	kind       dfg.OpKind
	a0, a1, a2 dfg.ValueID
	width      int
	imm        string
	name       string
}

// graphBuilder appends values to a fresh graph with hash-consing, so the
// resize nodes and split-compare subtrees the rewrite introduces are
// shared rather than duplicated. Inputs are never consed: two inputs are
// distinct even when structurally identical.
type graphBuilder struct {
	g       *dfg.Graph
	cons    map[gKey]dfg.ValueID
	resizes int
}

func newBuilder(hint int) *graphBuilder {
	return &graphBuilder{
		g:    &dfg.Graph{Values: make([]dfg.Value, 0, hint)},
		cons: make(map[gKey]dfg.ValueID, hint),
	}
}

func (b *graphBuilder) width(id dfg.ValueID) int { return b.g.Values[id].Width }

func (b *graphBuilder) addRaw(v dfg.Value) dfg.ValueID {
	id := dfg.ValueID(len(b.g.Values))
	b.g.Values = append(b.g.Values, v)
	return id
}

func (b *graphBuilder) add(v dfg.Value) dfg.ValueID {
	if v.Kind == dfg.OpInput {
		return b.addRaw(v)
	}
	k := gKey{kind: v.Kind, a0: -1, a1: -1, a2: -1, width: v.Width, name: v.Name}
	if len(v.Args) > 0 {
		k.a0 = v.Args[0]
	}
	if len(v.Args) > 1 {
		k.a1 = v.Args[1]
	}
	if len(v.Args) > 2 {
		k.a2 = v.Args[2]
	}
	if v.Imm != nil {
		k.imm = v.Imm.String()
	}
	if id, ok := b.cons[k]; ok {
		return id
	}
	id := b.addRaw(v)
	b.cons[k] = id
	return id
}

func (b *graphBuilder) bin(kind dfg.OpKind, a0, a1 dfg.ValueID, w int) dfg.ValueID {
	return b.add(dfg.Value{Kind: kind, Args: []dfg.ValueID{a0, a1}, Width: w})
}

func (b *graphBuilder) konst(imm *big.Int, w int) dfg.ValueID {
	return b.add(dfg.Value{Kind: dfg.OpConst, Width: w, Imm: new(big.Int).Set(imm)})
}

// resize adapts id to width w, inserting a canonical OpResize only when
// the widths differ (OpResize semantics are mask-to-width / zero-extend,
// matching both Eval and the bit-slicer's width adaptation). Constants are
// rematerialized at the target width instead — a resize node costs real
// micro-ops downstream, a re-emitted constant is just another literal (and
// the hash-consing dedups it); the orphaned original is swept by compact.
func (b *graphBuilder) resize(id dfg.ValueID, w int) dfg.ValueID {
	if b.width(id) == w {
		return id
	}
	if v := &b.g.Values[id]; v.Kind == dfg.OpConst {
		imm := new(big.Int)
		if v.Imm != nil {
			imm.And(v.Imm, maxOf(w))
		}
		return b.konst(imm, w)
	}
	before := len(b.g.Values)
	nid := b.add(dfg.Value{Kind: dfg.OpResize, Args: []dfg.ValueID{id}, Width: w})
	if len(b.g.Values) > before {
		b.resizes++
	}
	return nid
}

func clampW(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// reassociate rebuilds g with single-use add chains rebalanced into
// pairwise trees. A left-leaning accumulation a+b+c+d keeps every partial
// sum at the declared accumulator width; the balanced form (a+b)+(c+d)
// lets the forward range analysis prove each partial needs only
// log-many extra bits, which is where reduction-style workloads
// (popcount sums, MACs) get their narrowing from. The transform is exact:
// addition mod 2^w is associative and every chain node sits at one width.
// The lazy output-driven rebuild also drops values unreachable from any
// output; dead counts them. Returns the rebuilt graph, the number of
// chains (>= 4 leaves) rebalanced, and the dead-value count.
func reassociate(g *dfg.Graph) (ng *dfg.Graph, chains, dead int) {
	uses := make([]int, len(g.Values))
	for i := range g.Values {
		for _, a := range g.Values[i].Args {
			uses[a]++
		}
	}
	isOut := make([]bool, len(g.Values))
	for _, o := range g.Outputs {
		isOut[o] = true
	}

	b := newBuilder(len(g.Values))
	memo := make([]dfg.ValueID, len(g.Values))
	for i := range memo {
		memo[i] = -1
	}
	// Inputs come first, in interface order, whether or not they are
	// reachable from an output.
	for _, in := range g.Inputs {
		v := &g.Values[in]
		id := b.addRaw(dfg.Value{Kind: dfg.OpInput, Width: v.Width, Name: v.Name})
		b.g.Inputs = append(b.g.Inputs, id)
		memo[in] = id
	}

	var build func(id dfg.ValueID) dfg.ValueID
	build = func(id dfg.ValueID) dfg.ValueID {
		if memo[id] >= 0 {
			return memo[id]
		}
		v := &g.Values[id]
		if v.Kind == dfg.OpAdd {
			// Absorb single-use same-width add operands into one chain.
			var leaves []dfg.ValueID
			var walk func(x dfg.ValueID)
			walk = func(x dfg.ValueID) {
				xv := &g.Values[x]
				if xv.Kind == dfg.OpAdd && xv.Width == v.Width && uses[x] == 1 && !isOut[x] && memo[x] < 0 {
					walk(xv.Args[0])
					walk(xv.Args[1])
					return
				}
				leaves = append(leaves, build(x))
			}
			walk(v.Args[0])
			walk(v.Args[1])
			if len(leaves) >= 4 {
				chains++
			}
			for len(leaves) > 1 {
				next := leaves[:0:0]
				for i := 0; i+1 < len(leaves); i += 2 {
					next = append(next, b.bin(dfg.OpAdd, leaves[i], leaves[i+1], v.Width))
				}
				if len(leaves)%2 == 1 {
					next = append(next, leaves[len(leaves)-1])
				}
				leaves = next
			}
			memo[id] = leaves[0]
			return leaves[0]
		}
		args := make([]dfg.ValueID, len(v.Args))
		for i, a := range v.Args {
			args[i] = build(a)
		}
		var imm *big.Int
		if v.Imm != nil {
			imm = new(big.Int).Set(v.Imm)
		}
		nv := dfg.Value{Kind: v.Kind, Args: args, Width: v.Width, Imm: imm, Name: v.Name}
		var nid dfg.ValueID
		if v.Kind == dfg.OpInput {
			nid = b.addRaw(nv) // input not in g.Inputs: keep it distinct
		} else {
			nid = b.add(nv)
		}
		memo[id] = nid
		return nid
	}
	for i, o := range g.Outputs {
		b.g.Outputs = append(b.g.Outputs, build(o))
		b.g.OutputNames = append(b.g.OutputNames, g.OutputNames[i])
	}
	for id := range memo {
		if memo[id] < 0 {
			dead++
		}
	}
	return b.g, chains, dead
}

// rewrite re-emits g with every live value at width
// min(declared, range bits, demanded bits), per the canonicalization
// rules documented on each case. The width each case reads from an
// argument never exceeds the demand joined onto that argument in
// demand.go — that pairing is what makes every resize-up exact (an
// argument emitted below its demand is range-limited, hence carries its
// exact value).
func rewrite(g *dfg.Graph, iv []interval, dem []int, st *Stats) *dfg.Graph {
	b := newBuilder(len(g.Values) + 16)
	m := make([]dfg.ValueID, len(g.Values))
	for i := range m {
		m[i] = -1
	}
	zero := new(big.Int)

	for id := range g.Values {
		v := &g.Values[id]
		w := v.Width
		d := dem[id]
		if d == 0 && v.Kind != dfg.OpInput {
			// Unreachable from any output. (Outputs themselves always
			// carry demand, so nothing downstream can miss this value.)
			st.DeadValues++
			continue
		}
		rb := iv[id].rb()
		nw := clampW(min2(w, min2(rb, d)))
		arg := func(i int) dfg.ValueID { return m[v.Args[i]] }
		argW := func(i int) int { return b.width(m[v.Args[i]]) }
		origW := func(i int) int { return g.Values[v.Args[i]].Width }
		copyImm := func() *big.Int {
			if v.Imm == nil {
				return nil
			}
			return new(big.Int).Set(v.Imm)
		}

		switch v.Kind {
		case dfg.OpInput:
			aw := 1
			if d > 0 {
				aw = nw
			}
			m[id] = b.addRaw(dfg.Value{Kind: dfg.OpInput, Width: aw, Name: v.Name})

		case dfg.OpConst:
			imm := new(big.Int)
			if v.Imm != nil {
				imm.And(v.Imm, maxOf(nw))
			}
			m[id] = b.konst(imm, nw)

		case dfg.OpAdd, dfg.OpSub:
			// The bit-serial adder computes at the operand length and
			// drops the carry out, so both operands must sit at exactly
			// the result width: a narrower operand would lose a carry
			// into the bits we keep.
			m[id] = b.bin(v.Kind, b.resize(arg(0), nw), b.resize(arg(1), nw), nw)

		case dfg.OpAnd, dfg.OpOr, dfg.OpXor:
			// Bitwise: operands only ever shrink (the synthesizer
			// zero-extends internally, and high bits beyond nw are not
			// demanded).
			a0 := b.resize(arg(0), min2(argW(0), nw))
			a1 := b.resize(arg(1), min2(argW(1), nw))
			m[id] = b.bin(v.Kind, a0, a1, nw)

		case dfg.OpNot, dfg.OpNeg:
			m[id] = b.add(dfg.Value{Kind: v.Kind, Args: []dfg.ValueID{b.resize(arg(0), nw)}, Width: nw})

		case dfg.OpMul:
			// The multiplier accumulates at the result width, so
			// operands only shrink; the narrower operand drives the
			// partial-product loop, so put it second.
			a0 := b.resize(arg(0), min2(argW(0), nw))
			a1 := b.resize(arg(1), min2(argW(1), nw))
			if b.width(a0) < b.width(a1) {
				a0, a1 = a1, a0
			}
			m[id] = b.bin(dfg.OpMul, a0, a1, nw)

		case dfg.OpShl:
			k := immShift(v)
			switch {
			case k < 0:
				// Unanalyzable immediate: replicate verbatim.
				m[id] = b.add(dfg.Value{Kind: dfg.OpShl, Args: []dfg.ValueID{b.resize(arg(0), origW(0))}, Width: w, Imm: copyImm()})
			case k >= nw:
				// Every live bit is shifted out.
				m[id] = b.konst(zero, nw)
			default:
				m[id] = b.add(dfg.Value{Kind: dfg.OpShl, Args: []dfg.ValueID{b.resize(arg(0), nw)}, Width: nw, Imm: big.NewInt(int64(k))})
			}

		case dfg.OpShr:
			m[id] = b.emitShr(v, arg(0), origW(0), d, w, copyImm())

		case dfg.OpSra:
			k := immShift(v)
			switch {
			case k >= 0 && signClear(iv[v.Args[0]], origW(0)):
				// Sign bit provably clear: arithmetic == logical shift.
				st.SignedRewrites++
				m[id] = b.emitShr(v, arg(0), origW(0), d, w, copyImm())
			case k >= 0:
				// Kept signed: the operand must sit at its declared width
				// (both Eval and the synthesizer take the sign bit from
				// there), but the result still truncates to the demand.
				m[id] = b.add(dfg.Value{Kind: dfg.OpSra, Args: []dfg.ValueID{b.resize(arg(0), origW(0))}, Width: clampW(d), Imm: copyImm()})
			default:
				m[id] = b.add(dfg.Value{Kind: dfg.OpSra, Args: []dfg.ValueID{b.resize(arg(0), origW(0))}, Width: w, Imm: copyImm()})
			}

		case dfg.OpEq, dfg.OpNe, dfg.OpLtU, dfg.OpGtU, dfg.OpLeU, dfg.OpGeU:
			m[id] = b.emitCmpU(v.Kind, arg(0), arg(1), st)

		case dfg.OpLtS, dfg.OpLeS, dfg.OpGtS, dfg.OpGeS:
			// Eval interprets both operands at arg0's declared width; if
			// neither can have that sign bit set, signed order equals
			// unsigned order.
			w0 := origW(0)
			if iv[v.Args[0]].hi.BitLen() < w0 && iv[v.Args[1]].hi.BitLen() < w0 {
				st.SignedRewrites++
				var uk dfg.OpKind
				switch v.Kind {
				case dfg.OpLtS:
					uk = dfg.OpLtU
				case dfg.OpLeS:
					uk = dfg.OpLeU
				case dfg.OpGtS:
					uk = dfg.OpGtU
				default:
					uk = dfg.OpGeU
				}
				m[id] = b.emitCmpU(uk, arg(0), arg(1), st)
			} else {
				m[id] = b.bin(v.Kind, b.resize(arg(0), w0), b.resize(arg(1), origW(1)), 1)
			}

		case dfg.OpMux:
			// The selector stays at its declared width (Eval tests the
			// whole value); the arms only need the demanded bits.
			cond := b.resize(arg(0), origW(0))
			t := b.resize(arg(1), min2(argW(1), nw))
			f := b.resize(arg(2), min2(argW(2), nw))
			m[id] = b.add(dfg.Value{Kind: dfg.OpMux, Args: []dfg.ValueID{cond, t, f}, Width: nw})

		case dfg.OpMin, dfg.OpMax, dfg.OpAbsDiff:
			// Value-based: operands keep their (exact) emitted widths —
			// the synthesizer zero-extends internally — and the result
			// shrinks to its range.
			m[id] = b.bin(v.Kind, arg(0), arg(1), clampW(min2(w, rb)))

		case dfg.OpPopCount:
			m[id] = b.add(dfg.Value{Kind: dfg.OpPopCount, Args: []dfg.ValueID{arg(0)}, Width: clampW(min2(w, rb))})

		case dfg.OpDivU, dfg.OpModU:
			if iv[v.Args[1]].lo.Sign() >= 1 {
				// Divisor provably nonzero: pure value semantics.
				m[id] = b.bin(v.Kind, arg(0), arg(1), clampW(min2(w, rb)))
			} else {
				// Division by zero is width-dependent (2^w-1 / dividend):
				// replicate at declared widths.
				m[id] = b.bin(v.Kind, b.resize(arg(0), origW(0)), b.resize(arg(1), origW(1)), w)
			}

		case dfg.OpShlV:
			// Both Eval and the barrel shifter zero the result once the
			// (exact) amount reaches the node width; at nw <= w that
			// zeroes exactly the bits shifted past the live window.
			m[id] = b.bin(dfg.OpShlV, b.resize(arg(0), nw), arg(1), nw)

		case dfg.OpShrV, dfg.OpSraV:
			// Amount-dependent clamping makes these width-sensitive:
			// replicate at declared widths.
			m[id] = b.bin(v.Kind, b.resize(arg(0), origW(0)), b.resize(arg(1), origW(1)), w)

		case dfg.OpResize:
			m[id] = b.resize(arg(0), clampW(min2(w, min2(rb, d))))

		default:
			// Future op kinds: replicate verbatim at declared widths.
			args := make([]dfg.ValueID, len(v.Args))
			for i := range v.Args {
				args[i] = b.resize(arg(i), origW(i))
			}
			m[id] = b.add(dfg.Value{Kind: v.Kind, Args: args, Width: w, Imm: copyImm()})
		}

		if b.width(m[id]) < w {
			st.Narrowed++
		}
	}

	// Interface: inputs in declaration order (they were emitted in value
	// order above), outputs adapted to their live bits.
	ng := b.g
	ng.Inputs = make([]dfg.ValueID, len(g.Inputs))
	for i, in := range g.Inputs {
		ng.Inputs[i] = m[in]
	}
	ng.Outputs = make([]dfg.ValueID, len(g.Outputs))
	ng.OutputNames = append([]string(nil), g.OutputNames...)
	for i, o := range g.Outputs {
		ow := clampW(min2(g.Values[o].Width, iv[o].rb()))
		ng.Outputs[i] = b.resize(m[o], ow)
	}
	return compact(ng)
}

// compact drops values unreachable from any output (constant
// rematerialization in resize and shift-past-width folds can orphan a
// value's first emission), preserving order and the full input interface.
func compact(g *dfg.Graph) *dfg.Graph {
	keep := make([]bool, len(g.Values))
	var mark func(id dfg.ValueID)
	mark = func(id dfg.ValueID) {
		if keep[id] {
			return
		}
		keep[id] = true
		for _, a := range g.Values[id].Args {
			mark(a)
		}
	}
	for _, in := range g.Inputs {
		keep[in] = true // inputs are interface, reachable or not
	}
	for _, o := range g.Outputs {
		mark(o)
	}
	remap := make([]dfg.ValueID, len(g.Values))
	ng := &dfg.Graph{Values: make([]dfg.Value, 0, len(g.Values))}
	for id := range g.Values {
		if !keep[id] {
			remap[id] = -1
			continue
		}
		v := g.Values[id]
		args := make([]dfg.ValueID, len(v.Args))
		for i, a := range v.Args {
			args[i] = remap[a]
		}
		v.Args = args
		remap[id] = dfg.ValueID(len(ng.Values))
		ng.Values = append(ng.Values, v)
	}
	ng.Inputs = make([]dfg.ValueID, len(g.Inputs))
	for i, in := range g.Inputs {
		ng.Inputs[i] = remap[in]
	}
	ng.Outputs = make([]dfg.ValueID, len(g.Outputs))
	for i, o := range g.Outputs {
		ng.Outputs[i] = remap[o]
	}
	ng.OutputNames = append([]string(nil), g.OutputNames...)
	return ng
}

// emitShr emits a logical right shift by a constant of the already-mapped
// operand a0 (also the lowering for sign-clear OpSra). The operand keeps
// its emitted width aw: the shift lands at its natural aw-k bits and an
// explicit resize truncates to the demand. The resize matters even though
// the bit-slicer would truncate for free: OpShr is unmasked in the Eval
// semantics, so only an OpResize keeps the reference value inside the
// emitted width (the invariant every identity-collapsed resize relies
// on). A shift past the operand's live bits is constant zero — and
// exactly zero, since the live bits bound the operand's value.
func (b *graphBuilder) emitShr(v *dfg.Value, a0 dfg.ValueID, w0, d, w int, imm *big.Int) dfg.ValueID {
	k := immShift(v)
	if k < 0 {
		return b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{b.resize(a0, w0)}, Width: w, Imm: imm})
	}
	aw := b.width(a0)
	if k >= aw {
		return b.konst(new(big.Int), 1)
	}
	shr := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{a0}, Width: aw - k, Imm: big.NewInt(int64(k))})
	return b.resize(shr, clampW(min2(aw-k, d)))
}

// splitGap is the minimum operand-width difference before an order
// comparison is split into a high-bits test plus a narrow comparison.
const splitGap = 2

// emitCmpU emits an unsigned comparison of two already-mapped (and, by the
// full-width demand on comparison operands, value-exact) operands. Order
// comparisons between two variables whose widths differ by >= splitGap
// bits split into a high-bits test plus a comparison at the narrow width:
// a variable-vs-variable compare synthesizes a full borrow network per bit
// while the equality test is a cheap reduction, so cutting compared bits
// dominates. Comparisons against a constant are left whole — the logic
// synthesizer's constant fast path is already cheaper per bit than the
// split's high-bits test, so splitting those is a measured net loss.
func (b *graphBuilder) emitCmpU(kind dfg.OpKind, a0, a1 dfg.ValueID, st *Stats) dfg.ValueID {
	// Equality needs no split: the synthesizer zero-extends internally.
	if kind == dfg.OpEq || kind == dfg.OpNe {
		return b.bin(kind, a0, a1, 1)
	}
	// Normalize to Lt/Le so x is the left operand.
	switch kind {
	case dfg.OpGtU:
		kind, a0, a1 = dfg.OpLtU, a1, a0
	case dfg.OpGeU:
		kind, a0, a1 = dfg.OpLeU, a1, a0
	}
	ax, ay := b.width(a0), b.width(a1)
	if b.g.Values[a0].Kind == dfg.OpConst || b.g.Values[a1].Kind == dfg.OpConst {
		return b.bin(kind, a0, a1, 1)
	}
	switch {
	case ax >= ay+splitGap:
		// x < y only if x's high bits are zero and its low bits compare.
		// The zero test is phrased as an order comparison against 1, not
		// Eq against 0: the logic synthesizer has a constant fast path
		// for order comparisons but lowers Eq/Ne bit by bit.
		st.SplitCompares++
		hi := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{a0}, Width: ax - ay, Imm: big.NewInt(int64(ay))})
		hiZero := b.bin(dfg.OpLtU, hi, b.konst(big.NewInt(1), ax-ay), 1)
		low := b.bin(kind, b.resize(a0, ay), a1, 1)
		return b.bin(dfg.OpAnd, hiZero, low, 1)
	case ay >= ax+splitGap:
		// x < y if y's high bits are set, else compare at x's width.
		st.SplitCompares++
		hi := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{a1}, Width: ay - ax, Imm: big.NewInt(int64(ax))})
		hiSet := b.bin(dfg.OpGeU, hi, b.konst(big.NewInt(1), ay-ax), 1)
		low := b.bin(kind, a0, b.resize(a1, ax), 1)
		return b.bin(dfg.OpOr, hiSet, low, 1)
	default:
		return b.bin(kind, a0, a1, 1)
	}
}
