package narrow

import (
	"math/big"

	"chopper/internal/dfg"
)

// interval is an inclusive unsigned bound [lo, hi] on a value's reference
// Eval result (the true mathematical value, before any consumer masks it).
// lo >= 0 always; hi can exceed 2^width-1 only transiently inside a
// transfer function — every stored interval for a masked operator is
// clamped to its declared width, while operators whose Eval result is
// derived without masking (shr, popcount, mux, min/max, ...) keep finite
// bounds computed from their argument intervals.
type interval struct {
	lo, hi *big.Int
}

// rb is the number of bits needed to represent every value in the
// interval: max(1, hi.BitLen()).
func (iv interval) rb() int {
	if n := iv.hi.BitLen(); n > 1 {
		return n
	}
	return 1
}

var bigOne = big.NewInt(1)

// maxOf returns 2^w - 1.
func maxOf(w int) *big.Int {
	m := new(big.Int).Lsh(bigOne, uint(w))
	return m.Sub(m, bigOne)
}

// full returns the interval spanning an entire w-bit width.
func full(w int) interval {
	return interval{lo: new(big.Int), hi: maxOf(w)}
}

func bigMin(a, b *big.Int) *big.Int {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

func bigMax(a, b *big.Int) *big.Int {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// immShift extracts a constant shift amount from v.Imm, or -1 when the
// immediate is missing, negative, or absurdly large (graphs built outside
// the typechecker can carry arbitrary immediates; Validate does not check
// them). Amounts are capped so << never allocates unbounded memory.
func immShift(v *dfg.Value) int {
	if v.Imm == nil || !v.Imm.IsInt64() {
		return -1
	}
	k := v.Imm.Int64()
	if k < 0 || k > 1<<20 {
		return -1
	}
	return int(k)
}

// signClear reports whether arg0's interval proves its sign bit (at the
// declared width w0) is always zero, making signed and unsigned
// interpretations coincide.
func signClear(iv0 interval, w0 int) bool {
	return iv0.hi.BitLen() < w0
}

// intervals runs the forward range analysis. Graph order is topological
// (Validate guarantees args precede uses), so one pass suffices. Inputs
// take their annotated range when one is present and valid, the full
// declared width otherwise.
func intervals(g *dfg.Graph, ranges map[string]Range) []interval {
	out := make([]interval, len(g.Values))
	for id := range g.Values {
		v := &g.Values[id]
		if v.Kind == dfg.OpInput {
			if r, ok := ranges[v.Name]; ok && r.valid(v.Width) {
				out[id] = interval{lo: new(big.Int).Set(r.Lo), hi: new(big.Int).Set(r.Hi)}
			} else {
				out[id] = full(v.Width)
			}
			continue
		}
		out[id] = transfer(v, out)
	}
	return out
}

// transfer computes one value's interval from its arguments'. Operators
// whose Eval result is masked to the declared width may fall back to
// full(w); operators that propagate argument values unmasked must always
// return bounds derived from the argument intervals, because those values
// can exceed 2^w when an argument is wider than the node.
func transfer(v *dfg.Value, iv []interval) interval {
	w := v.Width
	arg := func(i int) interval { return iv[v.Args[i]] }
	switch v.Kind {
	case dfg.OpInput:
		return full(w)
	case dfg.OpConst:
		c := new(big.Int)
		if v.Imm != nil {
			c.And(v.Imm, maxOf(w))
		}
		return interval{lo: c, hi: new(big.Int).Set(c)}
	case dfg.OpAdd:
		a, b := arg(0), arg(1)
		hi := new(big.Int).Add(a.hi, b.hi)
		if hi.Cmp(maxOf(w)) <= 0 {
			return interval{lo: new(big.Int).Add(a.lo, b.lo), hi: hi}
		}
		return full(w)
	case dfg.OpSub:
		a, b := arg(0), arg(1)
		lo := new(big.Int).Sub(a.lo, b.hi)
		hi := new(big.Int).Sub(a.hi, b.lo)
		if lo.Sign() >= 0 && hi.Cmp(maxOf(w)) <= 0 {
			return interval{lo: lo, hi: hi}
		}
		return full(w)
	case dfg.OpMul:
		a, b := arg(0), arg(1)
		hi := new(big.Int).Mul(a.hi, b.hi)
		if hi.Cmp(maxOf(w)) <= 0 {
			return interval{lo: new(big.Int).Mul(a.lo, b.lo), hi: hi}
		}
		return full(w)
	case dfg.OpAnd:
		a, b := arg(0), arg(1)
		return interval{lo: new(big.Int), hi: new(big.Int).Set(bigMin(a.hi, b.hi))}
	case dfg.OpOr:
		a, b := arg(0), arg(1)
		n := a.rb()
		if m := b.rb(); m > n {
			n = m
		}
		return interval{lo: new(big.Int).Set(bigMax(a.lo, b.lo)), hi: maxOf(n)}
	case dfg.OpXor:
		a, b := arg(0), arg(1)
		n := a.rb()
		if m := b.rb(); m > n {
			n = m
		}
		return interval{lo: new(big.Int), hi: maxOf(n)}
	case dfg.OpNot:
		a := arg(0)
		if a.hi.Cmp(maxOf(w)) <= 0 {
			return interval{
				lo: new(big.Int).Sub(maxOf(w), a.hi),
				hi: new(big.Int).Sub(maxOf(w), a.lo),
			}
		}
		return full(w)
	case dfg.OpNeg:
		a := arg(0)
		if a.hi.Sign() == 0 {
			return interval{lo: new(big.Int), hi: new(big.Int)}
		}
		if a.lo.Sign() >= 1 && a.hi.Cmp(maxOf(w)) <= 0 {
			two := new(big.Int).Lsh(bigOne, uint(w))
			return interval{
				lo: new(big.Int).Sub(two, a.hi),
				hi: new(big.Int).Sub(two, a.lo),
			}
		}
		return full(w)
	case dfg.OpShl:
		k := immShift(v)
		if k < 0 {
			return full(w)
		}
		a := arg(0)
		hi := new(big.Int).Lsh(a.hi, uint(k))
		if hi.Cmp(maxOf(w)) <= 0 {
			return interval{lo: new(big.Int).Lsh(a.lo, uint(k)), hi: hi}
		}
		return full(w)
	case dfg.OpShr:
		// Eval computes arg>>k unmasked: bound from the argument, never
		// from the declared width.
		k := immShift(v)
		a := arg(0)
		if k < 0 {
			return interval{lo: new(big.Int), hi: new(big.Int).Set(a.hi)}
		}
		return interval{lo: new(big.Int).Rsh(a.lo, uint(k)), hi: new(big.Int).Rsh(a.hi, uint(k))}
	case dfg.OpSra:
		k := immShift(v)
		a := arg(0)
		if k >= 0 && signClear(a, v.Width) {
			// Sign bit clear: arithmetic shift == logical shift, and the
			// result is also masked to w by Eval.
			return interval{lo: new(big.Int).Rsh(a.lo, uint(k)), hi: bigMin(new(big.Int).Rsh(a.hi, uint(k)), maxOf(w))}
		}
		return full(w)
	case dfg.OpEq, dfg.OpNe, dfg.OpLtU, dfg.OpGtU, dfg.OpLeU, dfg.OpGeU,
		dfg.OpLtS, dfg.OpLeS, dfg.OpGtS, dfg.OpGeS:
		return interval{lo: new(big.Int), hi: new(big.Int).Set(bigOne)}
	case dfg.OpMux:
		t, f := arg(1), arg(2)
		return interval{lo: new(big.Int).Set(bigMin(t.lo, f.lo)), hi: new(big.Int).Set(bigMax(t.hi, f.hi))}
	case dfg.OpMin:
		a, b := arg(0), arg(1)
		return interval{lo: new(big.Int).Set(bigMin(a.lo, b.lo)), hi: new(big.Int).Set(bigMin(a.hi, b.hi))}
	case dfg.OpMax:
		a, b := arg(0), arg(1)
		return interval{lo: new(big.Int).Set(bigMax(a.lo, b.lo)), hi: new(big.Int).Set(bigMax(a.hi, b.hi))}
	case dfg.OpAbsDiff:
		a, b := arg(0), arg(1)
		h1 := new(big.Int).Sub(a.hi, b.lo)
		h2 := new(big.Int).Sub(b.hi, a.lo)
		hi := bigMax(h1, h2)
		if hi.Sign() < 0 {
			hi = new(big.Int)
		}
		return interval{lo: new(big.Int), hi: new(big.Int).Set(hi)}
	case dfg.OpPopCount:
		a := arg(0)
		lo := new(big.Int)
		if a.lo.Sign() >= 1 {
			lo.SetInt64(1)
		}
		return interval{lo: lo, hi: big.NewInt(int64(a.rb()))}
	case dfg.OpResize:
		a := arg(0)
		if a.hi.Cmp(maxOf(w)) <= 0 {
			return interval{lo: new(big.Int).Set(a.lo), hi: new(big.Int).Set(a.hi)}
		}
		return full(w)
	case dfg.OpShlV:
		a, b := arg(0), arg(1)
		if b.hi.IsInt64() && b.hi.Int64() < int64(w) {
			hi := new(big.Int).Lsh(a.hi, uint(b.hi.Int64()))
			if hi.Cmp(maxOf(w)) <= 0 {
				return interval{lo: new(big.Int).Lsh(a.lo, uint(b.lo.Int64())), hi: hi}
			}
		}
		return full(w)
	case dfg.OpShrV:
		a := arg(0)
		return interval{lo: new(big.Int), hi: new(big.Int).Set(a.hi)}
	case dfg.OpSraV:
		a := arg(0)
		if signClear(a, v.Width) {
			return interval{lo: new(big.Int), hi: bigMin(new(big.Int).Set(a.hi), maxOf(w))}
		}
		return full(w)
	case dfg.OpDivU:
		a, b := arg(0), arg(1)
		if b.lo.Sign() >= 1 {
			return interval{lo: new(big.Int).Div(a.lo, b.hi), hi: new(big.Int).Div(a.hi, b.lo)}
		}
		// Division by zero yields 2^w-1 in the reference semantics.
		return interval{lo: new(big.Int), hi: new(big.Int).Set(bigMax(a.hi, maxOf(w)))}
	case dfg.OpModU:
		a, b := arg(0), arg(1)
		if b.lo.Sign() >= 1 {
			hiM := new(big.Int).Sub(b.hi, bigOne)
			return interval{lo: new(big.Int), hi: new(big.Int).Set(bigMin(a.hi, hiM))}
		}
		// Mod by zero yields the dividend.
		return interval{lo: new(big.Int), hi: new(big.Int).Set(a.hi)}
	default:
		return full(w)
	}
}
