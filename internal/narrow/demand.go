package narrow

import "chopper/internal/dfg"

// demands runs the backward demanded-bits analysis: dem[id] is the number
// of low bits of value id that any consumer (or output) can observe. 0
// means dead. The transfer functions mirror exactly how many bits the
// rewrite in rewrite.go will read from each argument — the two tables must
// stay in lockstep, because the rewrite's resize-up steps are only exact
// when the demand join covered the read width (an argument emitted below
// its demand is range-limited, hence value-exact).
//
// Value-based operators (compares, min/max/absdiff, div/mod, popcount,
// variable shifts, mux conditions) demand their arguments' full declared
// widths: their results depend on the argument's value, not a bit slice.
func demands(g *dfg.Graph, iv []interval) []int {
	dem := make([]int, len(g.Values))
	for _, o := range g.Outputs {
		if w := g.Values[o].Width; w > dem[o] {
			dem[o] = w
		}
	}
	join := func(id dfg.ValueID, n int) {
		if w := g.Values[id].Width; n > w {
			n = w
		}
		if n > dem[id] {
			dem[id] = n
		}
	}
	fullArgs := func(v *dfg.Value) {
		for _, a := range v.Args {
			join(a, g.Values[a].Width)
		}
	}
	for id := len(g.Values) - 1; id >= 0; id-- {
		v := &g.Values[id]
		d := dem[id]
		if d == 0 {
			continue // dead: demands nothing from its arguments
		}
		switch v.Kind {
		case dfg.OpInput, dfg.OpConst:
			// no arguments
		case dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpAnd, dfg.OpOr, dfg.OpXor,
			dfg.OpNot, dfg.OpNeg:
			// Low d bits of the result depend only on low d bits of the
			// arguments (modular arithmetic / bitwise).
			for _, a := range v.Args {
				join(a, d)
			}
		case dfg.OpShl:
			if k := immShift(v); k >= 0 {
				join(v.Args[0], d)
			} else {
				// Conservative rewrite replicates the node verbatim and
				// reads the full argument.
				join(v.Args[0], g.Values[v.Args[0]].Width)
			}
		case dfg.OpShr:
			if k := immShift(v); k >= 0 {
				join(v.Args[0], d+k)
			} else {
				join(v.Args[0], g.Values[v.Args[0]].Width)
			}
		case dfg.OpSra:
			k := immShift(v)
			if k >= 0 && signClear(iv[v.Args[0]], g.Values[v.Args[0]].Width) {
				// Rewritten to a logical shift.
				join(v.Args[0], d+k)
			} else {
				join(v.Args[0], g.Values[v.Args[0]].Width)
			}
		case dfg.OpMux:
			join(v.Args[0], g.Values[v.Args[0]].Width)
			join(v.Args[1], d)
			join(v.Args[2], d)
		case dfg.OpShlV:
			join(v.Args[0], d)
			join(v.Args[1], g.Values[v.Args[1]].Width)
		case dfg.OpResize:
			n := d
			if v.Width < n {
				n = v.Width
			}
			join(v.Args[0], n)
		default:
			// Compares (signed and unsigned), min/max/absdiff, popcount,
			// div/mod, variable right shifts: value-based.
			fullArgs(v)
		}
	}
	return dem
}
