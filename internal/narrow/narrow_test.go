package narrow

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"chopper/internal/dfg"
)

func mask(x *big.Int, w int) *big.Int {
	return new(big.Int).And(x, maxOf(w))
}

// checkEquiv narrows g and cross-checks Eval of the original vs the
// narrowed graph on `trials` deterministic input assignments, comparing
// outputs masked to their declared widths. When ranges is non-nil the
// inputs are drawn from the annotated ranges (the annotated-mode
// contract: annotations are trusted).
func checkEquiv(t *testing.T, g *dfg.Graph, ranges map[string]Range, trials int, seed int64) {
	t.Helper()
	ng, _, err := Run(g, Opts{Ranges: ranges})
	if err != nil {
		t.Fatalf("narrow.Run: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		in := make(map[string]*big.Int, len(g.Inputs))
		for _, i := range g.Inputs {
			v := &g.Values[i]
			x := new(big.Int).Rand(rng, new(big.Int).Lsh(bigOne, uint(v.Width)))
			switch trial {
			case 0:
				x.SetInt64(0)
			case 1:
				x.Set(maxOf(v.Width))
			}
			if r, ok := ranges[v.Name]; ok && r.valid(v.Width) {
				span := new(big.Int).Sub(r.Hi, r.Lo)
				span.Add(span, bigOne)
				x.Mod(x, span).Add(x, r.Lo)
			}
			in[v.Name] = x
		}
		want, err := g.Eval(in)
		if err != nil {
			t.Fatalf("original Eval: %v", err)
		}
		got, err := ng.Eval(in)
		if err != nil {
			t.Fatalf("narrowed Eval: %v", err)
		}
		for i, name := range g.OutputNames {
			w := g.Values[g.Outputs[i]].Width
			if mask(want[name], w).Cmp(mask(got[name], w)) != 0 {
				t.Fatalf("trial %d output %q: original %v, narrowed %v (inputs %v)",
					trial, name, mask(want[name], w), mask(got[name], w), in)
			}
		}
	}
}

// graph builds a test graph from a tiny op list. Each entry appends one
// value; negative args index previously appended values.
type tb struct {
	g *dfg.Graph
}

func (b *tb) add(v dfg.Value) dfg.ValueID {
	b.g.Values = append(b.g.Values, v)
	return dfg.ValueID(len(b.g.Values) - 1)
}

func (b *tb) input(name string, w int) dfg.ValueID {
	id := b.add(dfg.Value{Kind: dfg.OpInput, Width: w, Name: name})
	b.g.Inputs = append(b.g.Inputs, id)
	return id
}

func (b *tb) out(name string, id dfg.ValueID) {
	b.g.Outputs = append(b.g.Outputs, id)
	b.g.OutputNames = append(b.g.OutputNames, name)
}

func newTB() *tb { return &tb{g: &dfg.Graph{}} }

// TestShrDemandNarrows pins the motivating shape: a 16-bit value whose
// consumer keeps only a high slice should shrink everything to the live
// bits.
func TestShrDemandNarrows(t *testing.T) {
	b := newTB()
	x := b.input("x", 16)
	sh := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{x}, Width: 16, Imm: big.NewInt(12)})
	r := b.add(dfg.Value{Kind: dfg.OpResize, Args: []dfg.ValueID{sh}, Width: 4})
	b.out("y", r)

	ng, st, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveBits >= st.DeclaredBits {
		t.Fatalf("no narrowing: declared %d, live %d", st.DeclaredBits, st.LiveBits)
	}
	if w := ng.Values[ng.Outputs[0]].Width; w != 4 {
		t.Fatalf("output width %d, want 4", w)
	}
	checkEquiv(t, b.g, nil, 32, 1)
}

// TestAddChainReassoc checks that a left-leaning accumulation of narrow
// terms is rebalanced and its partials narrowed: eight 1-bit terms summed
// into a 16-bit accumulator need at most 4-bit partials.
func TestAddChainReassoc(t *testing.T) {
	b := newTB()
	x := b.input("x", 8)
	var acc dfg.ValueID
	for i := 0; i < 8; i++ {
		bit := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{x}, Width: 8, Imm: big.NewInt(int64(i))})
		bit = b.add(dfg.Value{Kind: dfg.OpAnd, Args: []dfg.ValueID{bit, b.add(dfg.Value{Kind: dfg.OpConst, Width: 8, Imm: big.NewInt(1)})}, Width: 8})
		wide := b.add(dfg.Value{Kind: dfg.OpResize, Args: []dfg.ValueID{bit}, Width: 16})
		if i == 0 {
			acc = wide
		} else {
			acc = b.add(dfg.Value{Kind: dfg.OpAdd, Args: []dfg.ValueID{acc, wide}, Width: 16})
		}
	}
	b.out("n", acc)

	ng, st, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReassocChains == 0 {
		t.Fatalf("no add chain rebalanced: %+v", st)
	}
	if w := ng.Values[ng.Outputs[0]].Width; w > 4 {
		t.Fatalf("accumulator output width %d, want <= 4", w)
	}
	checkEquiv(t, b.g, nil, 64, 2)
}

// TestSplitCompare: a 10-bit value against 7-bit variable thresholds
// splits into a 3-bit high check plus a 7-bit compare; two thresholds
// share the high check through consing. Comparisons against constants are
// exempt — the synthesizer's constant fast path beats the split — so the
// third compare below must stay whole.
func TestSplitCompare(t *testing.T) {
	b := newTB()
	c := b.input("c", 10)
	base := b.input("base", 10)
	// Two variable thresholds, both provably 7-bit: base>>3 and base>>3+25.
	t1 := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{base}, Width: 10, Imm: big.NewInt(3)})
	t2 := b.add(dfg.Value{Kind: dfg.OpAdd, Args: []dfg.ValueID{t1, b.add(dfg.Value{Kind: dfg.OpConst, Width: 10, Imm: big.NewInt(25)})}, Width: 10})
	kc := b.add(dfg.Value{Kind: dfg.OpConst, Width: 10, Imm: big.NewInt(97)})
	lt := b.add(dfg.Value{Kind: dfg.OpLtU, Args: []dfg.ValueID{c, t2}, Width: 1})
	ge := b.add(dfg.Value{Kind: dfg.OpGeU, Args: []dfg.ValueID{c, t1}, Width: 1})
	gc := b.add(dfg.Value{Kind: dfg.OpGeU, Args: []dfg.ValueID{c, kc}, Width: 1})
	both := b.add(dfg.Value{Kind: dfg.OpAnd, Args: []dfg.ValueID{lt, ge}, Width: 1})
	b.out("in_range", b.add(dfg.Value{Kind: dfg.OpAnd, Args: []dfg.ValueID{both, gc}, Width: 1}))

	_, st, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SplitCompares != 2 {
		t.Fatalf("SplitCompares = %d, want 2", st.SplitCompares)
	}
	checkEquiv(t, b.g, nil, 128, 3)
}

// TestSignedRewrite: sra and signed compares over values with a provably
// clear sign bit become their unsigned forms.
func TestSignedRewrite(t *testing.T) {
	b := newTB()
	x := b.input("x", 8)
	half := b.add(dfg.Value{Kind: dfg.OpShr, Args: []dfg.ValueID{x}, Width: 8, Imm: big.NewInt(1)})
	sra := b.add(dfg.Value{Kind: dfg.OpSra, Args: []dfg.ValueID{half}, Width: 8, Imm: big.NewInt(2)})
	cmp := b.add(dfg.Value{Kind: dfg.OpLtS, Args: []dfg.ValueID{sra, half}, Width: 1})
	b.out("q", sra)
	b.out("lt", cmp)

	_, st, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SignedRewrites < 2 {
		t.Fatalf("SignedRewrites = %d, want >= 2", st.SignedRewrites)
	}
	checkEquiv(t, b.g, nil, 64, 4)
}

// TestKeptSigned: a genuinely signed sra (sign bit reachable) must be
// preserved bit-exactly.
func TestKeptSigned(t *testing.T) {
	b := newTB()
	x := b.input("x", 6)
	sra := b.add(dfg.Value{Kind: dfg.OpSra, Args: []dfg.ValueID{x}, Width: 6, Imm: big.NewInt(2)})
	cmp := b.add(dfg.Value{Kind: dfg.OpGeS, Args: []dfg.ValueID{x, sra}, Width: 1})
	b.out("q", sra)
	b.out("ge", cmp)
	_, st, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SignedRewrites != 0 {
		t.Fatalf("SignedRewrites = %d, want 0", st.SignedRewrites)
	}
	checkEquiv(t, b.g, nil, 64, 5)
}

// TestAnnotatedRange: a trusted input range narrows everything downstream
// of a wide input; an invalid range is ignored rather than trusted.
func TestAnnotatedRange(t *testing.T) {
	b := newTB()
	a := b.input("a", 16)
	bIn := b.input("b", 16)
	sum := b.add(dfg.Value{Kind: dfg.OpAdd, Args: []dfg.ValueID{a, bIn}, Width: 16})
	b.out("s", sum)

	ranges := map[string]Range{
		"a": {Lo: big.NewInt(0), Hi: big.NewInt(15)},
		"b": {Lo: big.NewInt(0), Hi: big.NewInt(15)},
	}
	ng, st, err := Run(b.g, Opts{Ranges: ranges})
	if err != nil {
		t.Fatal(err)
	}
	if w := ng.Values[ng.Outputs[0]].Width; w != 5 {
		t.Fatalf("annotated sum width %d, want 5", w)
	}
	if st.Narrowed == 0 {
		t.Fatal("expected narrowed values")
	}
	checkEquiv(t, b.g, ranges, 64, 6)

	// Invalid ranges (hi below lo, hi too wide, negative lo) are ignored.
	for _, bad := range []Range{
		{Lo: big.NewInt(9), Hi: big.NewInt(3)},
		{Lo: big.NewInt(0), Hi: new(big.Int).Lsh(bigOne, 20)},
		{Lo: big.NewInt(-4), Hi: big.NewInt(3)},
		{},
	} {
		ng, _, err := Run(b.g, Opts{Ranges: map[string]Range{"a": bad}})
		if err != nil {
			t.Fatal(err)
		}
		if w := ng.Values[ng.Outputs[0]].Width; w != 16 {
			t.Fatalf("invalid range %v narrowed the sum to %d bits", bad, w)
		}
	}
}

// TestDeadValue: values unreachable from outputs are dropped.
func TestDeadValue(t *testing.T) {
	b := newTB()
	x := b.input("x", 8)
	b.add(dfg.Value{Kind: dfg.OpNot, Args: []dfg.ValueID{x}, Width: 8}) // dead
	b.out("y", b.add(dfg.Value{Kind: dfg.OpNeg, Args: []dfg.ValueID{x}, Width: 8}))
	ng, st, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadValues != 1 {
		t.Fatalf("DeadValues = %d, want 1", st.DeadValues)
	}
	for i := range ng.Values {
		if ng.Values[i].Kind == dfg.OpNot {
			t.Fatal("dead OpNot survived the rewrite")
		}
	}
	checkEquiv(t, b.g, nil, 16, 7)
}

// TestDivByConstNonzero narrows through a provably nonzero divisor, and
// keeps the width-dependent zero-divisor semantics when it cannot prove
// one.
func TestDivByConstNonzero(t *testing.T) {
	b := newTB()
	x := b.input("x", 12)
	ten := b.add(dfg.Value{Kind: dfg.OpConst, Width: 12, Imm: big.NewInt(10)})
	b.out("q", b.add(dfg.Value{Kind: dfg.OpDivU, Args: []dfg.ValueID{x, ten}, Width: 12}))
	b.out("r", b.add(dfg.Value{Kind: dfg.OpModU, Args: []dfg.ValueID{x, ten}, Width: 12}))
	ng, _, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if w := ng.Values[ng.Outputs[1]].Width; w != 4 {
		t.Fatalf("x %% 10 width %d, want 4", w)
	}
	checkEquiv(t, b.g, nil, 64, 8)

	b2 := newTB()
	x2 := b2.input("x", 8)
	y2 := b2.input("y", 8)
	b2.out("q", b2.add(dfg.Value{Kind: dfg.OpDivU, Args: []dfg.ValueID{x2, y2}, Width: 8}))
	b2.out("r", b2.add(dfg.Value{Kind: dfg.OpModU, Args: []dfg.ValueID{x2, y2}, Width: 8}))
	checkEquiv(t, b2.g, nil, 64, 9) // trial 0 drives y=0 through the zero-div path
}

// TestInterfacePreserved: dead inputs keep their interface slot and name.
func TestInterfacePreserved(t *testing.T) {
	b := newTB()
	b.input("unused", 16)
	x := b.input("x", 8)
	b.out("y", x)
	ng, _, err := Run(b.g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ng.Inputs) != 2 || ng.Values[ng.Inputs[0]].Name != "unused" {
		t.Fatalf("interface not preserved: %+v", ng.Inputs)
	}
	if w := ng.Values[ng.Inputs[0]].Width; w != 1 {
		t.Fatalf("dead input kept %d bits, want 1", w)
	}
}

// TestNarrowedStatsAccounting sanity-checks the declared/live totals.
func TestNarrowedStatsAccounting(t *testing.T) {
	g, _ := GenGraph([]byte("stats-seed"))
	ng, st, err := Run(g, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Values != len(g.Values) {
		t.Fatalf("Values = %d, want %d", st.Values, len(g.Values))
	}
	want := 0
	for i := range ng.Values {
		want += ng.Values[i].Width
	}
	if st.LiveBits != want {
		t.Fatalf("LiveBits = %d, want %d", st.LiveBits, want)
	}
}

// TestGenCorpusEquivalence sweeps the generator over a deterministic
// corpus in both safe and annotated modes.
func TestGenCorpusEquivalence(t *testing.T) {
	for i := 0; i < 300; i++ {
		data := []byte(fmt.Sprintf("corpus-%d-%d", i, i*i*2654435761))
		g, ranges := GenGraph(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("generated graph %d invalid: %v", i, err)
		}
		checkEquiv(t, g, nil, 8, int64(i))
		if ranges != nil {
			checkEquiv(t, g, ranges, 8, int64(i)+1000)
		}
	}
}

// FuzzNarrowEval is the in-package oracle: Eval of the narrowed graph
// must match Eval of the original on every generated graph, in safe and
// annotated modes.
func FuzzNarrowEval(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x10, 0x07, 0x22, 0x2a})
	f.Add([]byte("signed-sra-compare"))
	f.Add([]byte("resize-edges-resize"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ranges := GenGraph(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("generated graph invalid: %v", err)
		}
		seed := int64(len(data))
		checkEquiv(t, g, nil, 6, seed)
		if ranges != nil {
			checkEquiv(t, g, ranges, 6, seed+1)
		}
	})
}
