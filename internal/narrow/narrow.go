// Package narrow is the precision-inference middle end: a pass between DFG
// construction and bit-slicing that shrinks every value to the bits it can
// actually carry and need. Bit-serial cost is linear in operand width, so a
// 16-bit accumulator that provably holds 7-bit values costs more than twice
// the micro-ops it should; this pass recovers that slack (the Proteus-style
// dynamic-precision idea applied at compile time).
//
// The pass is three phases over one graph:
//
//  1. Forward value-range analysis (interval.go): an unsigned interval
//     [lo, hi] per value bounding its reference Eval result — exact for
//     constants, the annotated range for annotated inputs, the full
//     declared width otherwise, with per-operator transfer functions that
//     fall back to the declared width whenever wraparound is possible.
//
//  2. Backward demanded-bits analysis (demand.go): from the outputs, how
//     many low bits of each value any consumer can observe. The join is
//     max; a value nothing demands is dead.
//
//  3. A rewrite (rewrite.go) that re-emits the graph with each value at
//     width min(declared, range bits, demanded bits), inserting canonical
//     OpResize nodes at width boundaries, splitting wide-vs-narrow
//     unsigned comparisons into a high-bits check plus a narrow compare,
//     rewriting provably sign-clear signed operations to their unsigned
//     forms, and rebalancing single-use add chains so partial sums grow
//     logarithmically instead of staying at the declared width.
//
// Soundness contract, maintained by construction and checked by the fuzz
// harness in this package: for every value, the narrowed graph's value is
// congruent to the original modulo 2^w where w is at least the bits any
// consumer reads; values whose range fits their emitted width are exact.
// Outputs are exact in their live bits, so a narrowed kernel verifies
// bit-identically against the original graph's Eval on every input that
// honors the annotations (all inputs, in safe mode).
package narrow

import (
	"fmt"
	"math/big"

	"chopper/internal/dfg"
)

// Range is an inclusive bound on an input's runtime values (unsigned).
type Range struct {
	Lo, Hi *big.Int
}

// valid reports whether the range is usable for an input of width w.
func (r Range) valid(w int) bool {
	return r.Lo != nil && r.Hi != nil && r.Lo.Sign() >= 0 &&
		r.Lo.Cmp(r.Hi) <= 0 && r.Hi.BitLen() <= w
}

// Opts configure a narrowing run.
type Opts struct {
	// Ranges annotates inputs — keyed by dfg input name, after array
	// scalarization — with trusted value ranges. Inputs without an entry
	// (and every input in safe mode) are assumed to span their declared
	// width. Invalid ranges are ignored, never widened into unsoundness.
	Ranges map[string]Range
}

// Stats summarize what one narrowing run did.
type Stats struct {
	// Values is the value count of the original graph; DeclaredBits the
	// sum of its declared widths.
	Values       int
	DeclaredBits int
	// LiveBits is the sum of widths actually emitted (the narrowed
	// graph's total, including inserted resizes).
	LiveBits int
	// Narrowed counts live values emitted below their declared width.
	Narrowed int
	// DeadValues counts values no output demands (dropped entirely).
	DeadValues int
	// ResizesInserted counts OpResize nodes added at width boundaries.
	ResizesInserted int
	// SignedRewrites counts signed operations (sra, signed compares)
	// proven sign-clear and rewritten to their unsigned forms.
	SignedRewrites int
	// SplitCompares counts wide-vs-narrow unsigned order comparisons
	// split into a shared high-bits check plus a narrow compare.
	SplitCompares int
	// ReassocChains counts single-use add chains (length >= 4) rebuilt as
	// balanced trees so partial-sum ranges grow logarithmically.
	ReassocChains int
}

// Run narrows g under opts and returns the rewritten graph. The input
// graph is never mutated; the result has the same inputs (same names, same
// order — possibly narrower) and the same outputs (same names, same order,
// each exact in its live bits and at most its declared width). An error
// means the pass could not prove its own output well-formed; callers
// should fall back to the original graph.
func Run(g *dfg.Graph, opts Opts) (*dfg.Graph, Stats, error) {
	var st Stats
	if err := g.Validate(); err != nil {
		return nil, st, fmt.Errorf("narrow: input graph: %w", err)
	}
	st.Values = len(g.Values)
	for i := range g.Values {
		st.DeclaredBits += g.Values[i].Width
	}

	g2, chains, dead := reassociate(g)
	st.ReassocChains = chains
	st.DeadValues = dead

	iv := intervals(g2, opts.Ranges)
	dem := demands(g2, iv)
	ng := rewrite(g2, iv, dem, &st)

	for i := range ng.Values {
		st.LiveBits += ng.Values[i].Width
	}
	if err := ng.Validate(); err != nil {
		return nil, st, fmt.Errorf("narrow: rewritten graph: %w", err)
	}
	if len(ng.Inputs) != len(g.Inputs) || len(ng.Outputs) != len(g.Outputs) {
		return nil, st, fmt.Errorf("narrow: interface mismatch: %d/%d inputs, %d/%d outputs",
			len(ng.Inputs), len(g.Inputs), len(ng.Outputs), len(g.Outputs))
	}
	for i, in := range ng.Inputs {
		want := g.Values[g.Inputs[i]].Name
		if got := ng.Values[in].Name; got != want {
			return nil, st, fmt.Errorf("narrow: input %d renamed %q -> %q", i, want, got)
		}
	}
	for i, name := range ng.OutputNames {
		if name != g.OutputNames[i] {
			return nil, st, fmt.Errorf("narrow: output %d renamed %q -> %q", i, g.OutputNames[i], name)
		}
		if w, dw := ng.Values[ng.Outputs[i]].Width, g.Values[g.Outputs[i]].Width; w > dw {
			return nil, st, fmt.Errorf("narrow: output %q widened %d -> %d", name, dw, w)
		}
	}
	return ng, st, nil
}
