package narrow

import (
	"math/big"

	"chopper/internal/dfg"
)

// cursor draws deterministic pseudo-random decisions from a byte string,
// cycling when it runs out. The same bytes always produce the same graph,
// which is what lets fuzz findings reproduce from their corpus entry.
type cursor struct {
	data []byte
	i    int
}

func (c *cursor) next() byte {
	if len(c.data) == 0 {
		return 0
	}
	b := c.data[c.i%len(c.data)]
	c.i++
	return b
}

func (c *cursor) intn(n int) int {
	if n <= 1 {
		return 0
	}
	v := int(c.next())<<8 | int(c.next())
	return v % n
}

// genKinds are the operator kinds GenGraph draws from — every evaluable
// kind, so the fuzz targets exercise each rewrite rule.
var genKinds = []dfg.OpKind{
	dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpAnd, dfg.OpOr, dfg.OpXor,
	dfg.OpNot, dfg.OpNeg, dfg.OpShl, dfg.OpShr, dfg.OpSra,
	dfg.OpEq, dfg.OpNe, dfg.OpLtU, dfg.OpGtU, dfg.OpLeU, dfg.OpGeU,
	dfg.OpLtS, dfg.OpLeS, dfg.OpGtS, dfg.OpGeS,
	dfg.OpMux, dfg.OpMin, dfg.OpMax, dfg.OpAbsDiff, dfg.OpPopCount,
	dfg.OpResize, dfg.OpShlV, dfg.OpShrV, dfg.OpSraV, dfg.OpDivU, dfg.OpModU,
}

// GenGraph derives a small well-typed graph (every operator's operands
// sit at the operator's width, adapted through OpResize) plus an optional
// annotation for input "i0" from a fuzz byte string. Inputs are "i0" and
// "i1", outputs "o0" and "o1", widths 1..16.
func GenGraph(data []byte) (*dfg.Graph, map[string]Range) {
	c := &cursor{data: data}
	g := &dfg.Graph{}
	addV := func(v dfg.Value) dfg.ValueID {
		g.Values = append(g.Values, v)
		return dfg.ValueID(len(g.Values) - 1)
	}
	resizeTo := func(id dfg.ValueID, w int) dfg.ValueID {
		if g.Values[id].Width == w {
			return id
		}
		return addV(dfg.Value{Kind: dfg.OpResize, Args: []dfg.ValueID{id}, Width: w})
	}

	w0 := 1 + c.intn(16)
	w1 := 1 + c.intn(16)
	i0 := addV(dfg.Value{Kind: dfg.OpInput, Width: w0, Name: "i0"})
	i1 := addV(dfg.Value{Kind: dfg.OpInput, Width: w1, Name: "i1"})
	g.Inputs = []dfg.ValueID{i0, i1}
	ids := []dfg.ValueID{i0, i1}
	for j := 0; j < 2; j++ {
		w := 1 + c.intn(16)
		ids = append(ids, addV(dfg.Value{
			Kind: dfg.OpConst, Width: w,
			Imm: big.NewInt(int64(c.intn(1 << uint(min2(w, 12))))),
		}))
	}

	n := 6 + c.intn(19)
	for j := 0; j < n; j++ {
		kind := genKinds[c.intn(len(genKinds))]
		w := 1 + c.intn(16)
		pick := func() dfg.ValueID { return ids[c.intn(len(ids))] }
		var id dfg.ValueID
		switch kind {
		case dfg.OpNot, dfg.OpNeg, dfg.OpPopCount:
			id = addV(dfg.Value{Kind: kind, Args: []dfg.ValueID{resizeTo(pick(), w)}, Width: w})
		case dfg.OpShl, dfg.OpShr, dfg.OpSra:
			// Amounts occasionally exceed the width to hit the clamp paths.
			k := c.intn(w + 2)
			id = addV(dfg.Value{Kind: kind, Args: []dfg.ValueID{resizeTo(pick(), w)}, Width: w, Imm: big.NewInt(int64(k))})
		case dfg.OpEq, dfg.OpNe, dfg.OpLtU, dfg.OpGtU, dfg.OpLeU, dfg.OpGeU,
			dfg.OpLtS, dfg.OpLeS, dfg.OpGtS, dfg.OpGeS:
			x, y := resizeTo(pick(), w), resizeTo(pick(), w)
			id = addV(dfg.Value{Kind: kind, Args: []dfg.ValueID{x, y}, Width: 1})
		case dfg.OpMux:
			cond := resizeTo(pick(), 1)
			x, y := resizeTo(pick(), w), resizeTo(pick(), w)
			id = addV(dfg.Value{Kind: dfg.OpMux, Args: []dfg.ValueID{cond, x, y}, Width: w})
		case dfg.OpResize:
			id = resizeTo(pick(), w)
		default:
			x, y := resizeTo(pick(), w), resizeTo(pick(), w)
			id = addV(dfg.Value{Kind: kind, Args: []dfg.ValueID{x, y}, Width: w})
		}
		ids = append(ids, id)
	}

	g.Outputs = []dfg.ValueID{ids[len(ids)-1], ids[c.intn(len(ids))]}
	g.OutputNames = []string{"o0", "o1"}

	var ranges map[string]Range
	if c.next()&1 == 1 {
		span := maxOf(w0)
		lo := big.NewInt(int64(c.intn(1 << uint(min2(w0, 10)))))
		hi := new(big.Int).Add(lo, big.NewInt(int64(c.intn(64))))
		if hi.Cmp(span) > 0 {
			hi.Set(span)
		}
		if lo.Cmp(hi) <= 0 {
			ranges = map[string]Range{"i0": {Lo: lo, Hi: hi}}
		}
	}
	return g, ranges
}
