package logic

import (
	"fmt"
	"math/bits"
	"sync"
)

// BuilderOptions control the local simplifications the Builder applies as
// gates are created. CHOPPER-bitslice (the no-optimization variant in the
// paper's breakdown) disables constant folding; structural hashing is part
// of bit-slicing itself (shared sub-expressions in the dataflow graph stay
// shared) and remains on in every variant.
type BuilderOptions struct {
	// Fold enables constant folding and algebraic identities
	// (x&0=0, x|1=1, ~~x=x, maj with constant arm, ...). This is the
	// builder-level half of OBS-2 "bit-sliced instruction selection":
	// exploiting bit-level patterns such as sparsity of constant operands.
	Fold bool
	// CSE enables structural hashing (identical gates share one node).
	CSE bool
	// Target, when non-nil, restricts fold rewrites to gates the target
	// architecture can execute; used when (re)building during
	// legalization so simplification never reintroduces foreign gates.
	Target *GateSet
}

// Builder constructs Nets incrementally. The structural-hashing and
// negation caches live in dense, reusable storage (an open-addressed
// interning table and NodeID-indexed slices) rather than Go maps, so a
// pooled builder compiles in steady state without per-gate allocation.
type Builder struct {
	opts   BuilderOptions
	net    Net
	intern internTable
	zero   NodeID
	one    NodeID
	// nots[x] is the cached NOT of node x (for ~~x = x); notOf[id] is the
	// node id negates. None when absent; maintained only under Fold, with
	// length kept equal to len(net.Gates).
	nots  []NodeID
	notOf []NodeID
}

// internTable is an open-addressed (linear probing, power-of-two sized)
// hash table interning computation gates for CSE. Slots are stamped with
// the table's generation, so reset is O(1) — stale slots from earlier
// nets read as empty without a bulk clear (a pooled builder carries the
// largest table it ever grew; small compiles must not pay to wipe it).
type internTable struct {
	slots []internSlot
	n     int
	cur   uint32 // current generation; 0 is never current, so zeroed slots are empty
}

type internSlot struct {
	kind GateKind
	args [3]NodeID
	idP1 int32  // NodeID + 1; 0 marks an empty slot
	gen  uint32 // generation the slot was written in
}

func hashGate(kind GateKind, a [3]NodeID) uint64 {
	h := uint64(kind) + 1
	h = h*0x9E3779B97F4A7C15 + uint64(uint32(a[0]))
	h = h*0x9E3779B97F4A7C15 + uint64(uint32(a[1]))
	h = h*0x9E3779B97F4A7C15 + uint64(uint32(a[2]))
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// lookup returns the interned id for (kind, args), or None with the probe
// slot where it belongs.
func (t *internTable) lookup(kind GateKind, args [3]NodeID) (NodeID, int) {
	mask := uint64(len(t.slots) - 1)
	i := hashGate(kind, args) & mask
	for {
		s := &t.slots[i]
		if s.idP1 == 0 || s.gen != t.cur {
			return None, int(i)
		}
		if s.kind == kind && s.args == args {
			return NodeID(s.idP1 - 1), int(i)
		}
		i = (i + 1) & mask
	}
}

// insert stores id at slot (from a preceding lookup miss), growing and
// rehashing past 3/4 load.
func (t *internTable) insert(slot int, kind GateKind, args [3]NodeID, id NodeID) {
	t.slots[slot] = internSlot{kind: kind, args: args, idP1: int32(id) + 1, gen: t.cur}
	t.n++
	if t.n*4 >= len(t.slots)*3 {
		t.grow(len(t.slots) * 2)
	}
}

func (t *internTable) grow(size int) {
	old := t.slots
	t.slots = make([]internSlot, size)
	mask := uint64(size - 1)
	for _, s := range old {
		if s.idP1 == 0 || s.gen != t.cur {
			continue
		}
		i := hashGate(s.kind, s.args) & mask
		for t.slots[i].idP1 != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}

// reset empties the table keeping its capacity by advancing the
// generation (O(1); a full clear happens only on uint32 wraparound).
func (t *internTable) reset() {
	t.cur++
	if t.cur == 0 {
		clear(t.slots)
		t.cur = 1
	}
	t.n = 0
}

func nextPow2(n int) int {
	if n < 16 {
		return 16
	}
	return 1 << bits.Len(uint(n-1))
}

// NewBuilder creates a builder with the given options.
func NewBuilder(opts BuilderOptions) *Builder {
	b := &Builder{}
	b.intern.slots = make([]internSlot, 256)
	b.Reset(opts)
	return b
}

// NewOptBuilder returns a builder with all local simplifications enabled.
func NewOptBuilder() *Builder { return NewBuilder(BuilderOptions{Fold: true, CSE: true}) }

// Reset re-initializes the builder for a fresh net under opts, keeping
// every internal buffer's capacity (and, when the previous net was not
// taken with Net(), the net slices' capacity too).
func (b *Builder) Reset(opts BuilderOptions) {
	b.opts = opts
	b.net.Gates = b.net.Gates[:0]
	b.net.Inputs = b.net.Inputs[:0]
	b.net.InputNames = b.net.InputNames[:0]
	b.net.Outputs = b.net.Outputs[:0]
	b.net.OutputNames = b.net.OutputNames[:0]
	b.net.inIdx = nil
	b.net.inDup = ""
	b.intern.reset()
	b.zero, b.one = None, None
	b.nots = b.nots[:0]
	b.notOf = b.notOf[:0]
}

// Grow hints the expected gate count, pre-sizing the gate slice and the
// interning table so steady-state building does not reallocate.
func (b *Builder) Grow(gates int) {
	if cap(b.net.Gates) < gates {
		g := make([]Gate, len(b.net.Gates), gates)
		copy(g, b.net.Gates)
		b.net.Gates = g
	}
	if want := nextPow2(gates * 2); len(b.intern.slots) < want {
		b.intern.grow(want)
	}
	if b.opts.Fold && cap(b.nots) < gates {
		ns := make([]NodeID, len(b.nots), gates)
		copy(ns, b.nots)
		b.nots = ns
		no := make([]NodeID, len(b.notOf), gates)
		copy(no, b.notOf)
		b.notOf = no
	}
}

// builderPool recycles Builders across compiles; see AcquireBuilder.
var builderPool = sync.Pool{New: func() any { return NewBuilder(BuilderOptions{}) }}

// AcquireBuilder returns a pooled builder reset to opts. Release it with
// Builder.Release once the net has been taken; builders abandoned on
// panic/error paths may simply be dropped.
func AcquireBuilder(opts BuilderOptions) *Builder {
	b := builderPool.Get().(*Builder)
	b.Reset(opts)
	return b
}

// Release returns the builder to the pool. The caller must not use it
// afterwards. Net slices still held (when Net was never called) are
// dropped so the pool retains only the dense scratch structures.
func (b *Builder) Release() {
	b.net = Net{}
	b.opts.Target = nil
	builderPool.Put(b)
}

func (b *Builder) raw(kind GateKind, args ...NodeID) NodeID {
	g := Gate{Kind: kind}
	copy(g.Args[:], args)
	for i := len(args); i < 3; i++ {
		g.Args[i] = None
	}
	if b.opts.CSE && kind != GInput {
		id, slot := b.intern.lookup(kind, g.Args)
		if id != None {
			return id
		}
		id = NodeID(len(b.net.Gates))
		b.append(g)
		b.intern.insert(slot, kind, g.Args, id)
		return id
	}
	id := NodeID(len(b.net.Gates))
	b.append(g)
	return id
}

// append adds the gate, keeping the negation caches in step under Fold.
func (b *Builder) append(g Gate) {
	b.net.Gates = append(b.net.Gates, g)
	if b.opts.Fold {
		b.nots = append(b.nots, None)
		b.notOf = append(b.notOf, None)
	}
}

// Input declares a fresh named input bit.
func (b *Builder) Input(name string) NodeID {
	id := b.raw(GInput)
	b.net.Inputs = append(b.net.Inputs, id)
	b.net.InputNames = append(b.net.InputNames, name)
	return id
}

// Const returns the constant node for v (shared).
func (b *Builder) Const(v bool) NodeID {
	if v {
		if b.one == None {
			b.one = b.raw(GConst1)
		}
		return b.one
	}
	if b.zero == None {
		b.zero = b.raw(GConst0)
	}
	return b.zero
}

func (b *Builder) allowAnd() bool { return b.opts.Target == nil || b.opts.Target.And }
func (b *Builder) allowOr() bool  { return b.opts.Target == nil || b.opts.Target.Or }

// isNotOf reports whether y is the negation of x (in either direction).
func (b *Builder) isNotOf(x, y NodeID) bool {
	if n := b.notOf[x]; n == y {
		return true
	}
	if n := b.notOf[y]; n == x {
		return true
	}
	return false
}

func (b *Builder) isConst(id NodeID) (val, ok bool) {
	switch b.net.Gates[id].Kind {
	case GConst0:
		return false, true
	case GConst1:
		return true, true
	}
	return false, false
}

// Not returns ~x.
func (b *Builder) Not(x NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			return b.Const(!v)
		}
		if orig := b.notOf[x]; orig != None { // ~~y = y
			return orig
		}
		if n := b.nots[x]; n != None {
			return n
		}
	}
	id := b.raw(GNot, x)
	if b.opts.Fold {
		b.nots[x] = id
		b.notOf[id] = x
	}
	return id
}

// normalize2 orders commutative arguments for better CSE hits.
func normalize2(x, y NodeID) (NodeID, NodeID) {
	if y < x {
		return y, x
	}
	return x, y
}

// And returns x & y.
func (b *Builder) And(x, y NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			if !v {
				return b.Const(false)
			}
			return y
		}
		if v, ok := b.isConst(y); ok {
			if !v {
				return b.Const(false)
			}
			return x
		}
		if x == y {
			return x
		}
		if b.isNotOf(x, y) {
			return b.Const(false)
		}
	}
	x, y = normalize2(x, y)
	return b.raw(GAnd, x, y)
}

// Or returns x | y.
func (b *Builder) Or(x, y NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			if v {
				return b.Const(true)
			}
			return y
		}
		if v, ok := b.isConst(y); ok {
			if v {
				return b.Const(true)
			}
			return x
		}
		if x == y {
			return x
		}
		if b.isNotOf(x, y) {
			return b.Const(true)
		}
	}
	x, y = normalize2(x, y)
	return b.raw(GOr, x, y)
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			if v {
				return b.Not(y)
			}
			return y
		}
		if v, ok := b.isConst(y); ok {
			if v {
				return b.Not(x)
			}
			return x
		}
		if x == y {
			return b.Const(false)
		}
		if b.isNotOf(x, y) {
			return b.Const(true)
		}
	}
	x, y = normalize2(x, y)
	return b.raw(GXor, x, y)
}

// Maj returns the 3-input majority MAJ(x, y, z).
func (b *Builder) Maj(x, y, z NodeID) NodeID {
	if b.opts.Fold {
		// A constant arm reduces majority to AND/OR (kept as MAJ when
		// the target architecture has no native AND/OR: a MAJ with a
		// C-group operand row *is* that architecture's AND/OR).
		if _, ok := b.isConst(x); ok {
			x, z = z, x
		} else if _, ok := b.isConst(y); ok {
			y, z = z, y
		}
		if v, ok := b.isConst(z); ok {
			if v && b.allowOr() {
				return b.Or(x, y)
			}
			if !v && b.allowAnd() {
				return b.And(x, y)
			}
			// Keep the constant in the last arm and fall through to
			// gate creation (identity folds below still apply).
		}
		if x == y {
			return x
		}
		if x == z {
			return x
		}
		if y == z {
			return y
		}
		// maj(x, ~x, z) = z
		if b.isNotOf(x, y) {
			return z
		}
		if b.isNotOf(x, z) {
			return y
		}
		if b.isNotOf(y, z) {
			return x
		}
	}
	// Sort all three for CSE (majority is fully symmetric).
	if y < x {
		x, y = y, x
	}
	if z < y {
		y, z = z, y
	}
	if y < x {
		x, y = y, x
	}
	return b.raw(GMaj, x, y, z)
}

// Mux returns c ? t : f, built from AND/OR/NOT.
func (b *Builder) Mux(c, t, f NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(c); ok {
			if v {
				return t
			}
			return f
		}
		if t == f {
			return t
		}
	}
	return b.Or(b.And(c, t), b.And(b.Not(c), f))
}

// Replay appends a computation gate whose folding decisions were already
// made elsewhere (a worker building a private sub-net), re-applying only
// the id-order normalization and structural hashing of this builder. The
// caller passes args already remapped into this builder's id space; the
// returned id reflects any CSE merge with an existing gate. Constants and
// inputs are not replayable (use Const and Input, which keep their
// sharing semantics).
func (b *Builder) Replay(kind GateKind, args [3]NodeID) NodeID {
	switch kind {
	case GNot:
		return b.raw(GNot, args[0])
	case GAnd, GOr, GXor:
		x, y := normalize2(args[0], args[1])
		return b.raw(kind, x, y)
	case GMaj:
		x, y, z := args[0], args[1], args[2]
		if y < x {
			x, y = y, x
		}
		if z < y {
			y, z = z, y
		}
		if y < x {
			x, y = y, x
		}
		return b.raw(GMaj, x, y, z)
	}
	panic(fmt.Sprintf("logic: replay of non-computation gate %v", kind))
}

// Output registers node id as a named output.
func (b *Builder) Output(name string, id NodeID) {
	if id < 0 || int(id) >= len(b.net.Gates) {
		panic(fmt.Sprintf("logic: output %q references invalid node %d", name, id))
	}
	b.net.Outputs = append(b.net.Outputs, id)
	b.net.OutputNames = append(b.net.OutputNames, name)
}

// GateCount returns the number of gates created so far (the id the next
// appended gate would get); used to record replayable gate spans.
func (b *Builder) GateCount() int { return len(b.net.Gates) }

// Net finalizes and returns the constructed net (with its input index
// precomputed). The builder must not be used for further gate creation
// afterwards; pooled builders should then be Released.
func (b *Builder) Net() *Net {
	n := b.net
	b.net = Net{}
	n.buildInputIndex()
	return &n
}
