package logic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chopper/internal/isa"
)

// evalWordNet evaluates a net built with InputWord/OutputWord on per-lane
// operand values and returns the named output word per lane.
func evalWordNet(t *testing.T, n *Net, widths map[string]int, inputs map[string][]uint64, out string, outWidth int) []uint64 {
	t.Helper()
	bundles := make(map[string]uint64)
	lanes := 0
	for base, vals := range inputs {
		w := widths[base]
		if len(vals) > lanes {
			lanes = len(vals)
		}
		for bit := 0; bit < w; bit++ {
			var bun uint64
			for l, v := range vals {
				bun |= (v >> uint(bit) & 1) << uint(l)
			}
			bundles[fmt.Sprintf("%s[%d]", base, bit)] = bun
		}
	}
	res, err := n.Eval(bundles)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	outs := make([]uint64, lanes)
	for bit := 0; bit < outWidth; bit++ {
		bun, ok := res[fmt.Sprintf("%s[%d]", out, bit)]
		if !ok {
			t.Fatalf("missing output %s[%d]", out, bit)
		}
		for l := 0; l < lanes; l++ {
			outs[l] |= (bun >> uint(l) & 1) << uint(bit)
		}
	}
	return outs
}

func randVals(rng *rand.Rand, n, width int) []uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() & mask
	}
	return vals
}

func TestBuilderConstantFolding(t *testing.T) {
	b := NewOptBuilder()
	x := b.Input("x")
	zero := b.Const(false)
	one := b.Const(true)

	if got := b.And(x, zero); got != zero {
		t.Errorf("x&0: got node %d, want const0 %d", got, zero)
	}
	if got := b.And(x, one); got != x {
		t.Errorf("x&1: got node %d, want x %d", got, x)
	}
	if got := b.Or(x, one); got != one {
		t.Errorf("x|1: got node %d, want const1", got)
	}
	if got := b.Or(x, zero); got != x {
		t.Errorf("x|0: got node %d, want x", got)
	}
	if got := b.Xor(x, x); got != zero {
		t.Errorf("x^x: got node %d, want const0", got)
	}
	nx := b.Not(x)
	if got := b.Not(nx); got != x {
		t.Errorf("~~x: got node %d, want x", got)
	}
	if got := b.And(x, nx); got != zero {
		t.Errorf("x&~x: got node %d, want const0", got)
	}
	if got := b.Or(x, nx); got != one {
		t.Errorf("x|~x: got node %d, want const1", got)
	}
	if got := b.Maj(x, x, nx); got != x {
		t.Errorf("maj(x,x,~x): got node %d, want x", got)
	}
	y := b.Input("y")
	if got := b.Maj(x, y, zero); got != b.And(x, y) {
		t.Errorf("maj(x,y,0) != and(x,y)")
	}
	if got := b.Maj(x, y, one); got != b.Or(x, y) {
		t.Errorf("maj(x,y,1) != or(x,y)")
	}
}

func TestBuilderCSE(t *testing.T) {
	b := NewOptBuilder()
	x := b.Input("x")
	y := b.Input("y")
	a1 := b.And(x, y)
	a2 := b.And(y, x) // commuted
	if a1 != a2 {
		t.Errorf("CSE missed commuted AND: %d vs %d", a1, a2)
	}
	m1 := b.Maj(x, y, a1)
	m2 := b.Maj(a1, x, y)
	if m1 != m2 {
		t.Errorf("CSE missed permuted MAJ: %d vs %d", m1, m2)
	}
}

func TestBuilderNoFoldKeepsGates(t *testing.T) {
	b := NewBuilder(BuilderOptions{Fold: false, CSE: false})
	x := b.Input("x")
	one := b.Const(true)
	got := b.And(x, one)
	if got == x {
		t.Errorf("fold disabled but x&1 simplified")
	}
	b.Output("o", got)
	n := b.Net()
	if n.OpGates() != 1 {
		t.Errorf("expected 1 op gate, got %d", n.OpGates())
	}
}

func buildBinop(t *testing.T, w int, f func(b *Builder, x, y Word) Word) *Net {
	t.Helper()
	b := NewOptBuilder()
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	b.OutputWord("z", f(b, x, y))
	n := b.Net()
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid net: %v", err)
	}
	return n
}

func TestArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := []int{1, 3, 8, 16, 31, 64}
	cases := []struct {
		name string
		f    func(b *Builder, x, y Word) Word
		ref  func(x, y, mask uint64, w int) uint64
	}{
		{"add", func(b *Builder, x, y Word) Word { return b.Add(x, y) },
			func(x, y, mask uint64, w int) uint64 { return (x + y) & mask }},
		{"sub", func(b *Builder, x, y Word) Word { return b.Sub(x, y) },
			func(x, y, mask uint64, w int) uint64 { return (x - y) & mask }},
		{"and", func(b *Builder, x, y Word) Word { return b.BitwiseAnd(x, y) },
			func(x, y, mask uint64, w int) uint64 { return x & y }},
		{"or", func(b *Builder, x, y Word) Word { return b.BitwiseOr(x, y) },
			func(x, y, mask uint64, w int) uint64 { return x | y }},
		{"xor", func(b *Builder, x, y Word) Word { return b.BitwiseXor(x, y) },
			func(x, y, mask uint64, w int) uint64 { return x ^ y }},
		{"min", func(b *Builder, x, y Word) Word { return b.MinU(x, y) },
			func(x, y, mask uint64, w int) uint64 { return min(x, y) }},
		{"max", func(b *Builder, x, y Word) Word { return b.MaxU(x, y) },
			func(x, y, mask uint64, w int) uint64 { return max(x, y) }},
		{"absdiff", func(b *Builder, x, y Word) Word { return b.AbsDiff(x, y) },
			func(x, y, mask uint64, w int) uint64 {
				if x >= y {
					return (x - y) & mask
				}
				return (y - x) & mask
			}},
	}
	for _, tc := range cases {
		for _, w := range widths {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, w), func(t *testing.T) {
				n := buildBinop(t, w, tc.f)
				mask := ^uint64(0)
				if w < 64 {
					mask = (uint64(1) << uint(w)) - 1
				}
				xs := randVals(rng, 64, w)
				ys := randVals(rng, 64, w)
				got := evalWordNet(t, n, map[string]int{"x": w, "y": w},
					map[string][]uint64{"x": xs, "y": ys}, "z", w)
				for l := range xs {
					want := tc.ref(xs[l], ys[l], mask, w)
					if got[l] != want {
						t.Fatalf("lane %d: %s(%#x,%#x) = %#x, want %#x", l, tc.name, xs[l], ys[l], got[l], want)
					}
				}
			})
		}
	}
}

func TestComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := 16
	preds := []struct {
		name string
		f    func(b *Builder, x, y Word) NodeID
		ref  func(x, y uint64) bool
	}{
		{"ltu", (*Builder).LtU, func(x, y uint64) bool { return x < y }},
		{"geu", (*Builder).GeU, func(x, y uint64) bool { return x >= y }},
		{"gtu", (*Builder).GtU, func(x, y uint64) bool { return x > y }},
		{"leu", (*Builder).LeU, func(x, y uint64) bool { return x <= y }},
		{"eq", (*Builder).Eq, func(x, y uint64) bool { return x == y }},
		{"ne", (*Builder).Ne, func(x, y uint64) bool { return x != y }},
		{"lts", (*Builder).LtS, func(x, y uint64) bool { return int16(x) < int16(y) }},
	}
	for _, p := range preds {
		t.Run(p.name, func(t *testing.T) {
			b := NewOptBuilder()
			x := b.InputWord("x", w)
			y := b.InputWord("y", w)
			b.Output("z[0]", p.f(b, x, y))
			n := b.Net()
			xs := randVals(rng, 64, w)
			ys := randVals(rng, 64, w)
			// Force some equal pairs for eq/ne/le/ge edges.
			for i := 0; i < 8; i++ {
				ys[i] = xs[i]
			}
			got := evalWordNet(t, n, map[string]int{"x": w, "y": w},
				map[string][]uint64{"x": xs, "y": ys}, "z", 1)
			for l := range xs {
				want := uint64(0)
				if p.ref(xs[l], ys[l]) {
					want = 1
				}
				if got[l] != want {
					t.Fatalf("lane %d: %s(%#x,%#x) = %d, want %d", l, p.name, xs[l], ys[l], got[l], want)
				}
			}
		})
	}
}

func TestMul(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []int{4, 8, 12} {
		b := NewOptBuilder()
		x := b.InputWord("x", w)
		y := b.InputWord("y", w)
		b.OutputWord("z", b.Mul(x, y, 2*w))
		n := b.Net()
		mask := (uint64(1) << uint(2*w)) - 1
		xs := randVals(rng, 64, w)
		ys := randVals(rng, 64, w)
		got := evalWordNet(t, n, map[string]int{"x": w, "y": w},
			map[string][]uint64{"x": xs, "y": ys}, "z", 2*w)
		for l := range xs {
			want := (xs[l] * ys[l]) & mask
			if got[l] != want {
				t.Fatalf("w=%d lane %d: %d*%d = %d, want %d", w, l, xs[l], ys[l], got[l], want)
			}
		}
	}
}

func TestShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := 16
	xs := randVals(rng, 64, w)
	for _, k := range []int{0, 1, 5, 15, 16, 20} {
		b := NewOptBuilder()
		x := b.InputWord("x", w)
		b.OutputWord("l", b.ShiftLeft(x, k))
		b.OutputWord("r", b.ShiftRight(x, k, false))
		b.OutputWord("a", b.ShiftRight(x, k, true))
		n := b.Net()
		mask := (uint64(1) << uint(w)) - 1
		gotL := evalWordNet(t, n, map[string]int{"x": w}, map[string][]uint64{"x": xs}, "l", w)
		gotR := evalWordNet(t, n, map[string]int{"x": w}, map[string][]uint64{"x": xs}, "r", w)
		gotA := evalWordNet(t, n, map[string]int{"x": w}, map[string][]uint64{"x": xs}, "a", w)
		for l := range xs {
			wantL := xs[l] << uint(k) & mask
			wantR := xs[l] >> uint(k)
			wantA := uint64(uint16(int16(uint16(xs[l])) >> uint(min(k, 15))))
			if k >= 64 {
				wantR = 0
			}
			if gotL[l] != wantL || gotR[l] != wantR || gotA[l] != wantA {
				t.Fatalf("k=%d lane %d x=%#x: l=%#x/%#x r=%#x/%#x a=%#x/%#x",
					k, l, xs[l], gotL[l], wantL, gotR[l], wantR, gotA[l], wantA)
			}
		}
	}
}

func TestPopCount(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, w := range []int{1, 7, 16, 33} {
		b := NewOptBuilder()
		x := b.InputWord("x", w)
		pc := b.PopCount(x)
		b.OutputWord("z", pc)
		n := b.Net()
		xs := randVals(rng, 64, w)
		got := evalWordNet(t, n, map[string]int{"x": w}, map[string][]uint64{"x": xs}, "z", len(pc))
		for l := range xs {
			want := uint64(popcount(xs[l]))
			if got[l] != want {
				t.Fatalf("w=%d lane %d: popcount(%#x) = %d, want %d", w, l, xs[l], got[l], want)
			}
		}
	}
}

func popcount(v uint64) int {
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c
}

func TestMuxWord(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := 12
	b := NewOptBuilder()
	c := b.Input("c[0]")
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	b.OutputWord("z", b.MuxWord(c, x, y))
	n := b.Net()
	xs := randVals(rng, 64, w)
	ys := randVals(rng, 64, w)
	cs := randVals(rng, 64, 1)
	got := evalWordNet(t, n, map[string]int{"x": w, "y": w, "c": 1},
		map[string][]uint64{"x": xs, "y": ys, "c": cs}, "z", w)
	for l := range xs {
		want := ys[l]
		if cs[l] == 1 {
			want = xs[l]
		}
		if got[l] != want {
			t.Fatalf("lane %d: mux(%d,%#x,%#x) = %#x, want %#x", l, cs[l], xs[l], ys[l], got[l], want)
		}
	}
}

func TestLegalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	w := 10
	build := func() *Net {
		b := NewOptBuilder()
		x := b.InputWord("x", w)
		y := b.InputWord("y", w)
		sum := b.Add(x, y)
		lt := b.LtU(x, y)
		sel := b.MuxWord(lt, sum, b.Sub(x, y))
		b.OutputWord("z", sel)
		return b.Net()
	}
	ref := build()
	xs := randVals(rng, 64, w)
	ys := randVals(rng, 64, w)
	want := evalWordNet(t, ref, map[string]int{"x": w, "y": w},
		map[string][]uint64{"x": xs, "y": ys}, "z", w)
	for _, arch := range isa.AllArchs {
		leg, err := Legalize(ref, arch, BuilderOptions{Fold: true, CSE: true})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if err := leg.CheckGateSet(NativeGates(arch)); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		got := evalWordNet(t, leg, map[string]int{"x": w, "y": w},
			map[string][]uint64{"x": xs, "y": ys}, "z", w)
		for l := range want {
			if got[l] != want[l] {
				t.Fatalf("%v lane %d: got %#x want %#x", arch, l, got[l], want[l])
			}
		}
	}
}

func TestLegalizeGateSets(t *testing.T) {
	b := NewOptBuilder()
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	b.Output("m", b.Maj(x, y, z))
	b.Output("o", b.Xor(x, y))
	n := b.Net()

	amb, err := Legalize(n, isa.Ambit, BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range amb.Gates {
		if k := amb.Gates[i].Kind; k == GXor || k == GMaj {
			t.Errorf("Ambit net contains %s gate", k)
		}
	}
	sd, err := Legalize(n, isa.SIMDRAM, BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	majs := 0
	for i := range sd.Gates {
		switch sd.Gates[i].Kind {
		case GXor:
			t.Error("SIMDRAM net contains xor gate")
		case GMaj:
			majs++
		}
	}
	if majs == 0 {
		t.Error("SIMDRAM net lost its native MAJ gate")
	}
}

func TestSIMDRAMAdderCheaperThanAmbit(t *testing.T) {
	// The reason SIMDRAM exists: MAJ-native synthesis needs fewer in-DRAM
	// steps per full adder than AND/OR/NOT synthesis.
	w := 32
	b := NewOptBuilder()
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	b.OutputWord("z", b.Add(x, y))
	n := b.Net()
	amb, err := Legalize(n, isa.Ambit, BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := Legalize(n, isa.SIMDRAM, BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	if sd.OpGates() >= amb.OpGates() {
		t.Errorf("SIMDRAM adder (%d gates) not cheaper than Ambit (%d gates)", sd.OpGates(), amb.OpGates())
	}
}

func TestDCE(t *testing.T) {
	b := NewOptBuilder()
	x := b.Input("x")
	y := b.Input("y")
	used := b.And(x, y)
	_ = b.Or(x, y) // dead
	b.Output("z", used)
	n := b.Net()
	before := n.NumGates()
	after := n.DCE()
	if err := after.Validate(); err != nil {
		t.Fatalf("DCE produced invalid net: %v", err)
	}
	if after.NumGates() >= before {
		t.Errorf("DCE removed nothing: %d -> %d", before, after.NumGates())
	}
	res, err := after.Eval(map[string]uint64{"x": 0b1100, "y": 0b1010})
	if err != nil {
		t.Fatal(err)
	}
	if res["z"] != 0b1000 {
		t.Errorf("DCE changed semantics: got %#x", res["z"])
	}
	if len(after.Inputs) != 2 {
		t.Errorf("DCE dropped inputs: %d", len(after.Inputs))
	}
}

// Property: for random widths and operands, the synthesized adder matches
// machine addition on all three architectures after legalization.
func TestQuickAdderAllArchs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(31))}
	prop := func(xr, yr uint64, wRaw uint8) bool {
		w := int(wRaw)%32 + 1
		mask := (uint64(1) << uint(w)) - 1
		if w == 64 {
			mask = ^uint64(0)
		}
		x, y := xr&mask, yr&mask
		b := NewOptBuilder()
		xw := b.InputWord("x", w)
		yw := b.InputWord("y", w)
		b.OutputWord("z", b.Add(xw, yw))
		n := b.Net()
		for _, arch := range isa.AllArchs {
			leg, err := Legalize(n, arch, BuilderOptions{Fold: true, CSE: true})
			if err != nil {
				return false
			}
			in := make(map[string]uint64)
			for bit := 0; bit < w; bit++ {
				var xb, yb uint64
				if x>>uint(bit)&1 == 1 {
					xb = ^uint64(0)
				}
				if y>>uint(bit)&1 == 1 {
					yb = ^uint64(0)
				}
				in[fmt.Sprintf("x[%d]", bit)] = xb
				in[fmt.Sprintf("y[%d]", bit)] = yb
			}
			out, err := leg.Eval(in)
			if err != nil {
				return false
			}
			want := (x + y) & mask
			for bit := 0; bit < w; bit++ {
				got := out[fmt.Sprintf("z[%d]", bit)]
				wantBit := uint64(0)
				if want>>uint(bit)&1 == 1 {
					wantBit = ^uint64(0)
				}
				if got != wantBit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: DCE never changes output values.
func TestQuickDCEPreserves(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(37))}
	prop := func(seed int64, xv, yv uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewOptBuilder()
		nodes := []NodeID{b.Input("x"), b.Input("y")}
		for i := 0; i < 30; i++ {
			pick := func() NodeID { return nodes[rng.Intn(len(nodes))] }
			var id NodeID
			switch rng.Intn(5) {
			case 0:
				id = b.And(pick(), pick())
			case 1:
				id = b.Or(pick(), pick())
			case 2:
				id = b.Xor(pick(), pick())
			case 3:
				id = b.Not(pick())
			case 4:
				id = b.Maj(pick(), pick(), pick())
			}
			nodes = append(nodes, id)
		}
		b.Output("z", nodes[len(nodes)-1])
		n := b.Net()
		d := n.DCE()
		if err := d.Validate(); err != nil {
			return false
		}
		in := map[string]uint64{"x": xv, "y": yv}
		r1, err1 := n.Eval(in)
		r2, err2 := d.Eval(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1["z"] == r2["z"]
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadNets(t *testing.T) {
	n := &Net{
		Gates:       []Gate{{Kind: GAnd, Args: [3]NodeID{1, 0, None}}, {Kind: GInput}},
		Inputs:      []NodeID{1},
		InputNames:  []string{"x"},
		Outputs:     []NodeID{0},
		OutputNames: []string{"z"},
	}
	if err := n.Validate(); err == nil {
		t.Error("forward reference not caught")
	}
	n2 := &Net{
		Gates:       []Gate{{Kind: GInput}},
		Inputs:      []NodeID{0},
		InputNames:  []string{"x"},
		Outputs:     []NodeID{5},
		OutputNames: []string{"z"},
	}
	if err := n2.Validate(); err == nil {
		t.Error("out-of-range output not caught")
	}
}

func TestDivMod(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, w := range []int{4, 9, 16} {
		b := NewOptBuilder()
		x := b.InputWord("x", w)
		y := b.InputWord("y", w)
		q, r := b.DivMod(x, y)
		b.OutputWord("q", q)
		b.OutputWord("r", r)
		n := b.Net()
		mask := (uint64(1) << uint(w)) - 1
		xs := randVals(rng, 64, w)
		ys := randVals(rng, 64, w)
		ys[0] = 0 // divide by zero
		ys[1] = 1
		xs[2] = 0
		gotQ := evalWordNet(t, n, map[string]int{"x": w, "y": w},
			map[string][]uint64{"x": xs, "y": ys}, "q", w)
		gotR := evalWordNet(t, n, map[string]int{"x": w, "y": w},
			map[string][]uint64{"x": xs, "y": ys}, "r", w)
		for l := range xs {
			var wantQ, wantR uint64
			if ys[l] == 0 {
				wantQ, wantR = mask, xs[l]
			} else {
				wantQ, wantR = xs[l]/ys[l], xs[l]%ys[l]
			}
			if gotQ[l] != wantQ || gotR[l] != wantR {
				t.Fatalf("w=%d lane %d: %d/%d = %d rem %d, want %d rem %d",
					w, l, xs[l], ys[l], gotQ[l], gotR[l], wantQ, wantR)
			}
		}
	}
}
