package logic

import (
	"math/rand"
	"testing"

	"chopper/internal/isa"
)

// buildAdder4 constructs a 4-bit ripple adder net legalized for the Ambit
// gate set (AND/OR/NOT).
func buildAdder4(t *testing.T) *Net {
	t.Helper()
	b := NewOptBuilder()
	a := b.InputWord("a", 4)
	c := b.InputWord("b", 4)
	b.OutputWord("z", b.Add(a, c))
	leg, err := Legalize(b.Net(), isa.Ambit, BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	return leg.DCE()
}

func TestTMRPreservesSemantics(t *testing.T) {
	for _, arch := range isa.AllArchs {
		gs := NativeGates(arch)
		base := buildAdder4(t)
		leg, err := Legalize(base, arch, BuilderOptions{Fold: true, CSE: true})
		if err != nil {
			t.Fatal(err)
		}
		leg = leg.DCE()
		hard, err := TMR(leg, gs)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if err := hard.Validate(); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if err := hard.CheckGateSet(gs); err != nil {
			t.Fatalf("%v: TMR output not legal: %v", arch, err)
		}
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 20; trial++ {
			in := make(map[string]uint64, len(leg.InputNames))
			for _, name := range leg.InputNames {
				in[name] = rng.Uint64()
			}
			want, err := leg.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := hard.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for name, w := range want {
				if got[name] != w {
					t.Fatalf("%v: output %s = %#x, want %#x", arch, name, got[name], w)
				}
			}
		}
	}
}

// The whole point of TMR is that replicas are structurally independent:
// the hardened net must carry roughly three copies of the computation plus
// the votes — CSE must not have merged them back.
func TestTMRTriplicatesGates(t *testing.T) {
	leg := buildAdder4(t)
	hard, err := TMR(leg, NativeGates(isa.Ambit))
	if err != nil {
		t.Fatal(err)
	}
	minWant := 3 * leg.OpGates()
	if hard.OpGates() < minWant {
		t.Fatalf("hardened net has %d op gates, want >= 3x%d", hard.OpGates(), leg.OpGates())
	}
	if len(hard.Inputs) != len(leg.Inputs) {
		t.Fatalf("inputs %d, want %d (inputs are shared, not triplicated)", len(hard.Inputs), len(leg.Inputs))
	}
	if len(hard.Outputs) != len(leg.Outputs) {
		t.Fatalf("outputs %d, want %d", len(hard.Outputs), len(leg.Outputs))
	}
}

// Corrupting any single replica gate must be outvoted at every output.
func TestTMRVoteMasksSingleReplicaFault(t *testing.T) {
	leg := buildAdder4(t)
	hard, err := TMR(leg, NativeGates(isa.Ambit))
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{}
	rng := rand.New(rand.NewSource(7))
	for _, name := range hard.InputNames {
		in[name] = rng.Uint64()
	}
	want, err := hard.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	// Replay evaluation with one gate's value flipped, for every replica
	// computation gate. TMR appends vote gates after all replicas, and
	// the and/or vote expansion of each output occupies the four ids
	// ending at the output node, so everything strictly below the
	// smallest output cone is replica computation.
	voteZone := len(hard.Gates)
	for _, o := range hard.Outputs {
		if start := int(o) - 3; start < voteZone {
			voteZone = start
		}
	}
	faulted := 0
	for g := 0; g < voteZone; g++ {
		switch hard.Gates[g].Kind {
		case GInput, GConst0, GConst1:
			continue
		}
		got, err := hard.EvalFaulty(in, NodeID(g), 1<<uint(g%64))
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("single fault at replica gate %d leaked to output %s: %#x want %#x", g, name, got[name], w)
			}
		}
		faulted++
	}
	if faulted == 0 {
		t.Fatal("no replica gates exercised")
	}
}
