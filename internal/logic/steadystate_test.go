package logic

import "testing"

// buildSteadyNet drives one Reset+build cycle over a fixed medium circuit
// with folding and CSE on — the steady-state interning loop the compile
// fast path runs per kernel. It deliberately never calls Net(), so every
// slice and the open-addressed intern table keep their capacity across
// cycles.
func buildSteadyNet(b *Builder) {
	b.Reset(BuilderOptions{Fold: true, CSE: true})
	var ins [64]NodeID
	for i := range ins {
		ins[i] = b.Input("")
	}
	acc := b.Const(false)
	carry := b.Const(true)
	for i := 0; i < 63; i++ {
		x := b.Xor(ins[i], ins[i+1])
		a := b.And(x, acc)
		m := b.Maj(x, a, carry)
		acc = b.Or(acc, m)
		carry = b.Not(m)
		// Re-derive a shared subexpression so the CSE hit path runs too.
		_ = b.Xor(ins[i], ins[i+1])
	}
	b.Output("acc", acc)
	b.Output("carry", carry)
}

// TestInternSteadyStateAllocs is the PR's allocation ceiling: once a
// builder has warmed up, repeated Reset+build cycles must not allocate at
// all. A regression here (a map rebuilt per compile, an intern table
// cleared by reallocation, a negation cache regrown) shows up as a
// non-zero count.
func TestInternSteadyStateAllocs(t *testing.T) {
	b := NewBuilder(BuilderOptions{})
	b.Grow(1024)
	buildSteadyNet(b) // warm-up sizes every buffer
	if n := testing.AllocsPerRun(20, func() { buildSteadyNet(b) }); n != 0 {
		t.Fatalf("steady-state build allocates %.1f times per cycle, want 0", n)
	}
}
