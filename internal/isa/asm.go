package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the textual assembly round trip: Format renders a
// program in the syntax Op.String produces, and ParseProgram reads it back.
// The text form is what chopperc emits and what hardware bring-up tooling
// would consume.

// Format renders the program as assembly text, one op per line.
func (p *Program) Format() string {
	var sb strings.Builder
	for i := range p.Ops {
		sb.WriteString(p.Ops[i].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseRow parses a row name in the syntax Row.String produces
// ("D12", "C0", "T3", "DCC0", "~DCC1", "-").
func ParseRow(s string) (Row, error) {
	switch s {
	case "C0":
		return C0, nil
	case "C1":
		return C1, nil
	case "T0":
		return T0, nil
	case "T1":
		return T1, nil
	case "T2":
		return T2, nil
	case "T3":
		return T3, nil
	case "DCC0":
		return DCC0, nil
	case "~DCC0":
		return DCC0N, nil
	case "DCC1":
		return DCC1, nil
	case "~DCC1":
		return DCC1N, nil
	case "-":
		return RowNone, nil
	}
	if strings.HasPrefix(s, "D") {
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 {
			return RowNone, fmt.Errorf("isa: bad row %q", s)
		}
		return Row(n), nil
	}
	return RowNone, fmt.Errorf("isa: bad row %q", s)
}

// ParseOp parses one assembly line (without a trailing newline). An
// optional "NN:" position prefix, as printed by chopperc, is ignored.
func ParseOp(line string) (Op, error) {
	line = strings.TrimSpace(line)
	if i := strings.Index(line, ":"); i >= 0 {
		if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
			line = strings.TrimSpace(line[i+1:])
		}
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Op{}, fmt.Errorf("isa: empty op")
	}
	fail := func() (Op, error) { return Op{}, fmt.Errorf("isa: malformed op %q", line) }

	switch fields[0] {
	case "AAP":
		// AAP <src> -> <dst> [<dst> [<dst>]]
		arrow := -1
		for i, f := range fields {
			if f == "->" {
				arrow = i
			}
		}
		if arrow != 2 || len(fields) < 4 || len(fields) > 6 {
			return fail()
		}
		src, err := ParseRow(fields[1])
		if err != nil {
			return Op{}, err
		}
		var dsts []Row
		for _, f := range fields[3:] {
			d, err := ParseRow(f)
			if err != nil {
				return Op{}, err
			}
			dsts = append(dsts, d)
		}
		return NewAAP(src, dsts...), nil

	case "AP":
		// AP T0,T1,T2
		if len(fields) != 2 {
			return fail()
		}
		parts := strings.Split(fields[1], ",")
		if len(parts) != 3 {
			return fail()
		}
		var rows [3]Row
		for i, p := range parts {
			r, err := ParseRow(p)
			if err != nil {
				return Op{}, err
			}
			rows[i] = r
		}
		return NewAP(rows[0], rows[1], rows[2]), nil

	case "WRITE":
		// WRITE -> <dst> (tag N)
		var dst string
		var tag int
		if _, err := fmt.Sscanf(line, "WRITE -> %s (tag %d)", &dst, &tag); err != nil {
			return fail()
		}
		d, err := ParseRow(dst)
		if err != nil {
			return Op{}, err
		}
		return NewWrite(d, tag), nil

	case "READ":
		var src string
		var tag int
		if _, err := fmt.Sscanf(line, "READ %s (tag %d)", &src, &tag); err != nil {
			return fail()
		}
		s, err := ParseRow(src)
		if err != nil {
			return Op{}, err
		}
		return NewRead(s, tag), nil

	case "SPILL_OUT":
		var src string
		var slot uint64
		if _, err := fmt.Sscanf(line, "SPILL_OUT %s (slot %d)", &src, &slot); err != nil {
			return fail()
		}
		s, err := ParseRow(src)
		if err != nil {
			return Op{}, err
		}
		return NewSpillOut(s, slot), nil

	case "SPILL_IN":
		var dst string
		var slot uint64
		if _, err := fmt.Sscanf(line, "SPILL_IN -> %s (slot %d)", &dst, &slot); err != nil {
			return fail()
		}
		d, err := ParseRow(dst)
		if err != nil {
			return Op{}, err
		}
		return NewSpillIn(d, slot), nil

	case "ROWINIT":
		var dst string
		var pat uint64
		if _, err := fmt.Sscanf(line, "ROWINIT -> %s (0x%x)", &dst, &pat); err != nil {
			return fail()
		}
		d, err := ParseRow(dst)
		if err != nil {
			return Op{}, err
		}
		return NewRowInit(d, pat), nil
	}
	return fail()
}

// ParseProgram parses assembly text (blank lines and "//"/"#" comments are
// skipped) into a Program. DRowsUsed and SpillSlots are reconstructed from
// the row and slot references.
func ParseProgram(text string) (*Program, error) {
	p := &Program{}
	maxRow := -1
	maxSlot := -1
	for lineNo, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") || strings.HasPrefix(trimmed, "#") {
			continue
		}
		op, err := ParseOp(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		p.Ops = append(p.Ops, op)
		rows := append([]Row{op.Src}, op.Dst[:]...)
		for _, r := range rows {
			if r.IsDGroup() && int(r) > maxRow {
				maxRow = int(r)
			}
		}
		if op.Kind == OpSpillOut || op.Kind == OpSpillIn {
			if int(op.Imm) > maxSlot {
				maxSlot = int(op.Imm)
			}
		}
	}
	p.DRowsUsed = maxRow + 1
	p.SpillSlots = maxSlot + 1
	return p, nil
}
