// Package isa defines the micro-operation instruction set for Bit-serial
// SIMD Processing-Using-DRAM (PUD) architectures, following the command
// vocabulary of Ambit, ELP2IM and SIMDRAM: row-to-row copies implemented as
// ACTIVATE-ACTIVATE-PRECHARGE (AAP), in-DRAM computation implemented as a
// triple-row ACTIVATE-PRECHARGE (AP, a.k.a. TRA), and host-mediated row
// transfers (WRITE/READ) over the memory bus.
//
// Row addresses within a subarray are split into three groups, mirroring the
// Ambit subarray organization:
//
//   - D-group: regular data rows, selected by the regular row decoder.
//   - C-group: two constant rows C0 (all zeros) and C1 (all ones).
//   - B-group: compute rows T0..T3 plus two dual-contact cell pairs
//     (DCC0, ~DCC0) and (DCC1, ~DCC1), driven by a special decoder that can
//     activate up to three rows at once (a TRA).
package isa

import "fmt"

// Row identifies a row within a subarray. Non-negative values address the
// D-group (row index within the data region); negative values address the
// C-group and B-group through the named constants below.
type Row int

// Special (non-D-group) row addresses. The numeric values are arbitrary but
// stable; they only need to be distinct from valid D-group indices (>= 0).
const (
	// C-group constant rows.
	C0 Row = -1 // all zeros
	C1 Row = -2 // all ones

	// B-group compute rows.
	T0 Row = -3
	T1 Row = -4
	T2 Row = -5
	T3 Row = -6

	// Dual-contact cell rows. Writing to DCCi also latches the complement
	// into DCCiN (and vice versa); this is how in-DRAM NOT is realized.
	DCC0  Row = -7
	DCC0N Row = -8
	DCC1  Row = -9
	DCC1N Row = -10

	// RowNone marks an unused row operand slot.
	RowNone Row = -128
)

// NumBRows is the number of addressable B-group rows.
const NumBRows = 8

// BRows lists every B-group row in a canonical order.
var BRows = [NumBRows]Row{T0, T1, T2, T3, DCC0, DCC0N, DCC1, DCC1N}

// IsDGroup reports whether r addresses a regular data row.
func (r Row) IsDGroup() bool { return r >= 0 }

// IsCGroup reports whether r is one of the constant rows.
func (r Row) IsCGroup() bool { return r == C0 || r == C1 }

// IsBGroup reports whether r is a compute row (T or DCC).
func (r Row) IsBGroup() bool { return r <= T0 && r >= DCC1N }

// Complement returns the dual-contact complement row for DCC rows, and
// RowNone for every other row.
func (r Row) Complement() Row {
	switch r {
	case DCC0:
		return DCC0N
	case DCC0N:
		return DCC0
	case DCC1:
		return DCC1N
	case DCC1N:
		return DCC1
	}
	return RowNone
}

// String renders the row in the assembly syntax used throughout the
// compiler's dumps ("D12", "C0", "T3", "DCC0", "~DCC0").
func (r Row) String() string {
	switch {
	case r.IsDGroup():
		return fmt.Sprintf("D%d", int(r))
	case r == C0:
		return "C0"
	case r == C1:
		return "C1"
	case r == T0, r == T1, r == T2, r == T3:
		return fmt.Sprintf("T%d", int(T0-r))
	case r == DCC0:
		return "DCC0"
	case r == DCC0N:
		return "~DCC0"
	case r == DCC1:
		return "DCC1"
	case r == DCC1N:
		return "~DCC1"
	case r == RowNone:
		return "-"
	}
	return fmt.Sprintf("R?%d", int(r))
}

// OpKind enumerates the PUD micro-operations.
type OpKind int

const (
	// OpAAP copies Src into every row listed in Dst (1-3 rows, B-group
	// multi-row activation) via ACTIVATE-ACTIVATE-PRECHARGE.
	OpAAP OpKind = iota

	// OpAP performs a triple-row activation (TRA) over Dst[0..2], leaving
	// the bitwise majority of the three rows in all three.
	OpAP

	// OpWrite transfers one row of data from the host into Dst[0] over the
	// memory bus (used for input operands and spilled-row refill).
	OpWrite

	// OpRead transfers the row Src out to the host over the memory bus
	// (used for results and for spilling rows out).
	OpRead

	// OpSpillOut reads Src out to the host and enqueues an SSD page
	// program for it. Timing-wise it is an OpRead plus SSD traffic.
	OpSpillOut

	// OpSpillIn fetches a previously spilled row from the SSD and writes
	// it into Dst[0]. Timing-wise an SSD read plus an OpWrite.
	OpSpillIn

	// OpRowInit initializes Dst[0] with the constant pattern in Imm
	// (used only at program setup for the C-group).
	OpRowInit
)

var opKindNames = [...]string{"AAP", "AP", "WRITE", "READ", "SPILL_OUT", "SPILL_IN", "ROWINIT"}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OP?%d", int(k))
}

// Op is a single PUD micro-operation targeted at one subarray.
type Op struct {
	Kind OpKind
	Src  Row    // source row (AAP, READ, SPILL_OUT)
	Dst  [3]Ow  // destination rows; see OpKind docs
	NDst int    // number of valid entries in Dst
	Imm  uint64 // constant pattern for ROWINIT; spill slot id for spills

	// Tag carries the host-transfer payload identity (which logical input
	// row a WRITE carries); used by VIRCOE and the simulator.
	Tag int
}

// Ow is an alias kept distinct to catch accidental misuse in array literals.
type Ow = Row

// NewAAP builds a row-copy op from src into one, two or three destinations.
func NewAAP(src Row, dst ...Row) Op {
	if len(dst) == 0 || len(dst) > 3 {
		panic(fmt.Sprintf("isa: AAP needs 1-3 destinations, got %d", len(dst)))
	}
	op := Op{Kind: OpAAP, Src: src, NDst: len(dst)}
	op.Dst = [3]Row{RowNone, RowNone, RowNone}
	copy(op.Dst[:], dst)
	return op
}

// NewAP builds a triple-row-activation op over exactly three B-group rows.
func NewAP(a, b, c Row) Op {
	return Op{Kind: OpAP, Src: RowNone, Dst: [3]Row{a, b, c}, NDst: 3}
}

// NewWrite builds a host-to-DRAM row transfer carrying payload tag.
func NewWrite(dst Row, tag int) Op {
	return Op{Kind: OpWrite, Src: RowNone, Dst: [3]Row{dst, RowNone, RowNone}, NDst: 1, Tag: tag}
}

// NewRead builds a DRAM-to-host row transfer.
func NewRead(src Row, tag int) Op {
	return Op{Kind: OpRead, Src: src, Dst: [3]Row{RowNone, RowNone, RowNone}, Tag: tag}
}

// NewSpillOut builds a spill-to-SSD op for row src into spill slot.
func NewSpillOut(src Row, slot uint64) Op {
	return Op{Kind: OpSpillOut, Src: src, Dst: [3]Row{RowNone, RowNone, RowNone}, Imm: slot}
}

// NewSpillIn builds a refill-from-SSD op for spill slot into row dst.
func NewSpillIn(dst Row, slot uint64) Op {
	return Op{Kind: OpSpillIn, Src: RowNone, Dst: [3]Row{dst, RowNone, RowNone}, NDst: 1, Imm: slot}
}

// NewRowInit builds a constant-row initialization op. pattern is replicated
// across the row (0 => all zeros, ^uint64(0) => all ones).
func NewRowInit(dst Row, pattern uint64) Op {
	return Op{Kind: OpRowInit, Src: RowNone, Dst: [3]Row{dst, RowNone, RowNone}, NDst: 1, Imm: pattern}
}

// Dsts returns the valid destination rows as a slice (aliasing op storage).
func (o *Op) Dsts() []Row { return o.Dst[:o.NDst] }

// IsTransfer reports whether the op occupies the shared memory bus
// (host-mediated data movement), as opposed to in-subarray computation.
func (o *Op) IsTransfer() bool {
	switch o.Kind {
	case OpWrite, OpRead, OpSpillOut, OpSpillIn:
		return true
	}
	return false
}

// IsCompute reports whether the op is in-subarray work (AAP/AP/ROWINIT).
func (o *Op) IsCompute() bool { return !o.IsTransfer() }

// String renders the op in assembly syntax.
func (o Op) String() string {
	switch o.Kind {
	case OpAAP:
		s := "AAP " + o.Src.String() + " ->"
		for _, d := range o.Dsts() {
			s += " " + d.String()
		}
		return s
	case OpAP:
		return fmt.Sprintf("AP %s,%s,%s", o.Dst[0], o.Dst[1], o.Dst[2])
	case OpWrite:
		return fmt.Sprintf("WRITE -> %s (tag %d)", o.Dst[0], o.Tag)
	case OpRead:
		return fmt.Sprintf("READ %s (tag %d)", o.Src, o.Tag)
	case OpSpillOut:
		return fmt.Sprintf("SPILL_OUT %s (slot %d)", o.Src, o.Imm)
	case OpSpillIn:
		return fmt.Sprintf("SPILL_IN -> %s (slot %d)", o.Dst[0], o.Imm)
	case OpRowInit:
		return fmt.Sprintf("ROWINIT -> %s (0x%x)", o.Dst[0], o.Imm)
	}
	return "?"
}

// Arch identifies one of the supported Bit-serial SIMD PUD architectures.
type Arch int

const (
	// Ambit implements bulk AND/OR through triple-row activation with a
	// C-group control row, and NOT through dual-contact cells.
	Ambit Arch = iota
	// ELP2IM augments the precharge units in the local row buffer so that
	// consecutive bitwise operations need fewer full activations.
	ELP2IM
	// SIMDRAM exposes majority (MAJ) as the computation primitive and
	// synthesizes arithmetic from MAJ/NOT, over the Ambit substrate.
	SIMDRAM
)

var archNames = [...]string{"Ambit", "ELP2IM", "SIMDRAM"}

func (a Arch) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("Arch?%d", int(a))
}

// AllArchs lists every supported architecture in evaluation order.
var AllArchs = []Arch{Ambit, ELP2IM, SIMDRAM}

// SupportsMajority reports whether the architecture exposes 3-input
// majority as a directly programmable primitive (true only for SIMDRAM;
// Ambit and ELP2IM expose AND/OR/NOT).
func (a Arch) SupportsMajority() bool { return a == SIMDRAM }

// Program is a straight-line micro-op sequence for a single subarray,
// together with the row-resource footprint it requires.
type Program struct {
	Ops []Op

	// DRowsUsed is the number of D-group rows the program touches
	// (the high-water mark of allocated data rows).
	DRowsUsed int

	// SpillSlots is the number of distinct SSD spill slots referenced.
	SpillSlots int

	// EpochMarks lists legal recovery cut points as strictly increasing
	// op-stream indices in (0, len(Ops)]: the code generator records one
	// after each gate's micro-op cluster retires, so an epoch boundary
	// never splits the multi-op lowering of a single logic gate. Nil means
	// the producer recorded none (hand-built or baseline programs) and the
	// recovery runtime falls back to fixed-stride cuts. Marks carry no
	// execution semantics and do not appear in the assembly dump.
	EpochMarks []int
}

// Append adds ops to the program.
func (p *Program) Append(ops ...Op) { p.Ops = append(p.Ops, ops...) }

// Counts summarizes a program by op kind.
func (p *Program) Counts() map[OpKind]int {
	m := make(map[OpKind]int)
	for i := range p.Ops {
		m[p.Ops[i].Kind]++
	}
	return m
}

// NumTransfers returns the number of bus-occupying ops.
func (p *Program) NumTransfers() int {
	n := 0
	for i := range p.Ops {
		if p.Ops[i].IsTransfer() {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: AAP destinations are rows, AP
// operands are B-group rows, D-group references stay below dRows, and spill
// ops carry slot ids below SpillSlots.
func (p *Program) Validate(dRows int) error {
	for i := range p.Ops {
		op := &p.Ops[i]
		check := func(r Row, what string) error {
			if r == RowNone {
				return fmt.Errorf("isa: op %d (%s): missing %s row", i, op, what)
			}
			if r.IsDGroup() && int(r) >= dRows {
				return fmt.Errorf("isa: op %d (%s): %s row %s exceeds D-group size %d", i, op, what, r, dRows)
			}
			return nil
		}
		switch op.Kind {
		case OpAAP:
			if err := check(op.Src, "source"); err != nil {
				return err
			}
			if op.NDst < 1 || op.NDst > 3 {
				return fmt.Errorf("isa: op %d (%s): AAP with %d destinations", i, op, op.NDst)
			}
			for _, d := range op.Dsts() {
				if err := check(d, "destination"); err != nil {
					return err
				}
				if op.NDst > 1 && !d.IsBGroup() {
					return fmt.Errorf("isa: op %d (%s): multi-destination AAP outside B-group", i, op)
				}
			}
		case OpAP:
			for _, d := range op.Dst {
				if !d.IsBGroup() {
					return fmt.Errorf("isa: op %d (%s): TRA operand %s outside B-group", i, op, d)
				}
			}
		case OpWrite, OpSpillIn, OpRowInit:
			if err := check(op.Dst[0], "destination"); err != nil {
				return err
			}
		case OpRead, OpSpillOut:
			if err := check(op.Src, "source"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("isa: op %d: unknown kind %d", i, int(op.Kind))
		}
		if op.Kind == OpSpillOut || op.Kind == OpSpillIn {
			if int(op.Imm) >= p.SpillSlots {
				return fmt.Errorf("isa: op %d (%s): spill slot %d out of range %d", i, op, op.Imm, p.SpillSlots)
			}
		}
	}
	prev := 0
	for _, m := range p.EpochMarks {
		if m <= prev || m > len(p.Ops) {
			return fmt.Errorf("isa: epoch mark %d not strictly increasing in (0, %d]", m, len(p.Ops))
		}
		prev = m
	}
	return nil
}
