package isa

import (
	"strings"
	"testing"
)

func TestRowClassification(t *testing.T) {
	cases := []struct {
		r          Row
		d, c, b    bool
		complement Row
	}{
		{Row(0), true, false, false, RowNone},
		{Row(1005), true, false, false, RowNone},
		{C0, false, true, false, RowNone},
		{C1, false, true, false, RowNone},
		{T0, false, false, true, RowNone},
		{T3, false, false, true, RowNone},
		{DCC0, false, false, true, DCC0N},
		{DCC0N, false, false, true, DCC0},
		{DCC1, false, false, true, DCC1N},
		{DCC1N, false, false, true, DCC1},
	}
	for _, tc := range cases {
		if got := tc.r.IsDGroup(); got != tc.d {
			t.Errorf("%s.IsDGroup() = %v, want %v", tc.r, got, tc.d)
		}
		if got := tc.r.IsCGroup(); got != tc.c {
			t.Errorf("%s.IsCGroup() = %v, want %v", tc.r, got, tc.c)
		}
		if got := tc.r.IsBGroup(); got != tc.b {
			t.Errorf("%s.IsBGroup() = %v, want %v", tc.r, got, tc.b)
		}
		if got := tc.r.Complement(); got != tc.complement {
			t.Errorf("%s.Complement() = %v, want %v", tc.r, got, tc.complement)
		}
	}
}

func TestRowStrings(t *testing.T) {
	want := map[Row]string{
		Row(7): "D7", C0: "C0", C1: "C1", T0: "T0", T1: "T1", T2: "T2", T3: "T3",
		DCC0: "DCC0", DCC0N: "~DCC0", DCC1: "DCC1", DCC1N: "~DCC1", RowNone: "-",
	}
	for r, s := range want {
		if got := r.String(); got != s {
			t.Errorf("Row(%d).String() = %q, want %q", int(r), got, s)
		}
	}
}

func TestBRowsAllBGroup(t *testing.T) {
	for _, r := range BRows {
		if !r.IsBGroup() {
			t.Errorf("BRows contains non-B-group row %s", r)
		}
	}
	if len(BRows) != NumBRows {
		t.Errorf("NumBRows = %d, len(BRows) = %d", NumBRows, len(BRows))
	}
}

func TestOpConstructorsAndStrings(t *testing.T) {
	aap := NewAAP(Row(3), T0, T1)
	if aap.Kind != OpAAP || aap.NDst != 2 || aap.Src != Row(3) {
		t.Errorf("bad AAP: %+v", aap)
	}
	if !strings.Contains(aap.String(), "AAP D3 -> T0 T1") {
		t.Errorf("AAP string: %q", aap.String())
	}
	ap := NewAP(T0, T1, T2)
	if ap.Kind != OpAP || ap.Dst[2] != T2 {
		t.Errorf("bad AP: %+v", ap)
	}
	w := NewWrite(Row(5), 42)
	if w.Kind != OpWrite || w.Tag != 42 || !w.IsTransfer() {
		t.Errorf("bad WRITE: %+v", w)
	}
	r := NewRead(Row(5), 7)
	if r.Kind != OpRead || !r.IsTransfer() {
		t.Errorf("bad READ: %+v", r)
	}
	if ap.IsTransfer() || !ap.IsCompute() {
		t.Errorf("AP misclassified")
	}
	so := NewSpillOut(Row(1), 9)
	si := NewSpillIn(Row(2), 9)
	if !so.IsTransfer() || !si.IsTransfer() {
		t.Errorf("spills must be transfers")
	}
	ri := NewRowInit(C0, 0)
	if ri.Kind != OpRowInit || ri.IsTransfer() {
		t.Errorf("bad ROWINIT: %+v", ri)
	}
}

func TestNewAAPPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAAP with 0 destinations did not panic")
		}
	}()
	NewAAP(Row(0))
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Ops: []Op{
		NewWrite(Row(0), 0),
		NewAAP(Row(0), T0, T1),
		NewAAP(C0, T2),
		NewAP(T0, T1, T2),
		NewAAP(T0, Row(1)),
		NewRead(Row(1), 0),
	}}
	if err := good.Validate(10); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	bad := &Program{Ops: []Op{NewAAP(Row(50), T0)}}
	if err := bad.Validate(10); err == nil {
		t.Error("out-of-range D row not caught")
	}

	badTRA := &Program{Ops: []Op{NewAP(T0, T1, T2)}}
	badTRA.Ops[0].Dst[2] = Row(3)
	if err := badTRA.Validate(10); err == nil {
		t.Error("TRA outside B-group not caught")
	}

	multiD := &Program{Ops: []Op{NewAAP(Row(0), Row(1), Row(2))}}
	if err := multiD.Validate(10); err == nil {
		t.Error("multi-destination AAP outside B-group not caught")
	}

	badSpill := &Program{Ops: []Op{NewSpillOut(Row(0), 3)}, SpillSlots: 2}
	if err := badSpill.Validate(10); err == nil {
		t.Error("out-of-range spill slot not caught")
	}
}

func TestProgramCounts(t *testing.T) {
	p := &Program{Ops: []Op{
		NewWrite(Row(0), 0), NewWrite(Row(1), 1),
		NewAAP(Row(0), T0), NewAP(T0, T1, T2),
		NewRead(Row(2), 0),
	}}
	c := p.Counts()
	if c[OpWrite] != 2 || c[OpAAP] != 1 || c[OpAP] != 1 || c[OpRead] != 1 {
		t.Errorf("bad counts: %v", c)
	}
	if p.NumTransfers() != 3 {
		t.Errorf("NumTransfers = %d, want 3", p.NumTransfers())
	}
}

func TestArchProperties(t *testing.T) {
	if Ambit.SupportsMajority() || ELP2IM.SupportsMajority() {
		t.Error("Ambit/ELP2IM should not expose MAJ")
	}
	if !SIMDRAM.SupportsMajority() {
		t.Error("SIMDRAM must expose MAJ")
	}
	if len(AllArchs) != 3 {
		t.Errorf("AllArchs = %v", AllArchs)
	}
	if Ambit.String() != "Ambit" || ELP2IM.String() != "ELP2IM" || SIMDRAM.String() != "SIMDRAM" {
		t.Error("arch names wrong")
	}
}
