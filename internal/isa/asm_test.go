package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseRowRoundTrip(t *testing.T) {
	rows := []Row{Row(0), Row(7), Row(1005), C0, C1, T0, T1, T2, T3, DCC0, DCC0N, DCC1, DCC1N, RowNone}
	for _, r := range rows {
		got, err := ParseRow(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRow(%q) = %v, %v", r.String(), got, err)
		}
	}
	for _, bad := range []string{"", "D", "D-1", "Q3", "T9", "dcc0"} {
		if _, err := ParseRow(bad); err == nil {
			t.Errorf("ParseRow(%q) accepted", bad)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	ops := []Op{
		NewAAP(Row(3), T0),
		NewAAP(C1, T0, T1, T2),
		NewAAP(DCC0N, Row(12)),
		NewAP(T0, T1, T2),
		NewAP(DCC0N, T1, T2),
		NewWrite(Row(0), 42),
		NewWrite(T1, 0),
		NewRead(Row(99), 7),
		NewSpillOut(Row(5), 11),
		NewSpillIn(Row(6), 11),
		NewRowInit(Row(1), 0xDEAD),
	}
	for _, op := range ops {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got.String() != op.String() {
			t.Errorf("round trip: %q -> %q", op.String(), got.String())
		}
	}
}

func TestParseOpWithPositionPrefix(t *testing.T) {
	op, err := ParseOp("  42: AP T0,T1,T2")
	if err != nil || op.Kind != OpAP {
		t.Fatalf("position prefix: %v %v", op, err)
	}
}

func TestParseOpRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "NOP", "AAP D0", "AAP D0 -> ", "AAP -> T0",
		"AP T0,T1", "AP T0,T1,T2,T3", "WRITE D0", "READ (tag 3)",
		"AAP D0 -> T0 T1 T2 T3",
	} {
		if _, err := ParseOp(bad); err == nil {
			t.Errorf("ParseOp(%q) accepted", bad)
		}
	}
}

func TestParseProgram(t *testing.T) {
	text := `
// a tiny AND kernel
WRITE -> D0 (tag 0)
WRITE -> D1 (tag 1)
AAP D0 -> T0
AAP D1 -> T1
AAP C0 -> T2
AP T0,T1,T2
AAP T0 -> D2
READ D2 (tag 0)
`
	p, err := ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 8 {
		t.Fatalf("%d ops", len(p.Ops))
	}
	if p.DRowsUsed != 3 {
		t.Errorf("DRowsUsed = %d, want 3", p.DRowsUsed)
	}
	if err := p.Validate(10); err != nil {
		t.Error(err)
	}
}

func TestParseProgramReportsLine(t *testing.T) {
	_, err := ParseProgram("AP T0,T1,T2\nBOGUS\n")
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if want := "line 2"; !contains(err.Error(), want) {
		t.Errorf("error %q lacks %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: Format then ParseProgram reproduces any valid program.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	bRows := []Row{T0, T1, T2, T3, DCC0, DCC0N, DCC1, DCC1N}
	prop := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Program{}
		anyRow := func() Row {
			if rng.Intn(2) == 0 {
				return Row(rng.Intn(100))
			}
			return bRows[rng.Intn(len(bRows))]
		}
		for i := 0; i < int(nOps)%40+1; i++ {
			switch rng.Intn(6) {
			case 0:
				nd := rng.Intn(3) + 1
				dsts := make([]Row, nd)
				for j := range dsts {
					dsts[j] = bRows[rng.Intn(len(bRows))]
				}
				p.Append(NewAAP(anyRow(), dsts...))
			case 1:
				p.Append(NewAP(bRows[rng.Intn(8)], bRows[rng.Intn(8)], bRows[rng.Intn(8)]))
			case 2:
				p.Append(NewWrite(anyRow(), rng.Intn(1000)))
			case 3:
				p.Append(NewRead(anyRow(), rng.Intn(1000)))
			case 4:
				p.Append(NewSpillOut(anyRow(), uint64(rng.Intn(50))))
			case 5:
				p.Append(NewSpillIn(anyRow(), uint64(rng.Intn(50))))
			}
		}
		text := p.Format()
		q, err := ParseProgram(text)
		if err != nil {
			return false
		}
		return q.Format() == text
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Round trip a real compiled kernel's assembly (integration-ish, but kept
// here since it exercises only isa surfaces given a canned program).
func TestFormatParseRealKernelShape(t *testing.T) {
	p := &Program{}
	p.Append(
		NewWrite(T0, 0), NewWrite(T1, 1), NewAAP(C0, T2),
		NewAP(T0, T1, T2), NewAAP(T0, Row(0)), NewRead(Row(0), 0),
	)
	q, err := ParseProgram(p.Format())
	if err != nil {
		t.Fatal(err)
	}
	if q.Format() != p.Format() {
		t.Error("round trip changed program")
	}
}
