package vircoe

import (
	"testing"

	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/sim"
)

// testProgram builds a kernel-shaped program: interleaved writes and
// computation, ending with a read. w writes, c computes per write.
func testProgram(writes, computesPer int) *isa.Program {
	p := &isa.Program{}
	for i := 0; i < writes; i++ {
		p.Append(isa.NewWrite(isa.Row(i), i))
		for j := 0; j < computesPer; j++ {
			p.Append(isa.NewAAP(isa.Row(i), isa.T0))
			p.Append(isa.NewAP(isa.T0, isa.T1, isa.T2))
		}
	}
	p.Append(isa.NewRead(isa.Row(0), 0))
	p.DRowsUsed = writes
	return p
}

func makespan(t *testing.T, stream []dram.Placed, salp bool) float64 {
	t.Helper()
	g := dram.DefaultGeometry()
	eng := dram.NewEngine(g, dram.TimingFor(isa.Ambit, g), salp)
	return eng.Run(stream)
}

func TestPlacements(t *testing.T) {
	g := dram.DefaultGeometry()
	ps := mustPlacements(t, g, 20)
	if len(ps) != 20 {
		t.Fatalf("got %d placements", len(ps))
	}
	// First 16 must land in 16 distinct banks (bank-major order).
	banks := make(map[int]bool)
	for _, p := range ps[:16] {
		banks[p.Bank] = true
	}
	if len(banks) != 16 {
		t.Errorf("first 16 placements span %d banks", len(banks))
	}
	if ps[16].Subarray != 1 {
		t.Errorf("17th placement subarray = %d, want 1", ps[16].Subarray)
	}
	if _, err := Placements(g, g.Banks*g.SubarraysPB+1); err == nil {
		t.Error("oversubscription did not error")
	}
	if _, err := Placements(g, -1); err == nil {
		t.Error("negative placement count did not error")
	}
}

// mustPlacements is Placements for tests whose geometry is known to fit.
func mustPlacements(t *testing.T, g dram.Geometry, n int) []Placement {
	t.Helper()
	ps, err := Placements(g, n)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestEmitPreservesPerSubarrayOrder(t *testing.T) {
	prog := testProgram(6, 3)
	g := dram.DefaultGeometry()
	ps := mustPlacements(t, g, 8)
	stream, st := Emit(prog, ps, BankAware, dram.TimingFor(isa.Ambit, g))
	if st.Ops != len(prog.Ops)*8 || len(stream) != st.Ops {
		t.Fatalf("ops = %d, want %d", st.Ops, len(prog.Ops)*8)
	}
	// Per placement, the op subsequence must equal the program.
	idx := make(map[[2]int]int)
	for _, pl := range stream {
		key := [2]int{pl.Bank, pl.Subarray}
		want := prog.Ops[idx[key]]
		if pl.Op.String() != want.String() {
			t.Fatalf("subarray %v op %d = %v, want %v", key, idx[key], pl.Op, want)
		}
		idx[key]++
	}
	for key, n := range idx {
		if n != len(prog.Ops) {
			t.Errorf("subarray %v ran %d ops", key, n)
		}
	}
}

func TestVircoeBeatsSerialBroadcast(t *testing.T) {
	prog := testProgram(8, 4)
	g := dram.DefaultGeometry()
	ps := mustPlacements(t, g, 16)
	tm := dram.TimingFor(isa.Ambit, g)

	serial := makespan(t, Serial(prog, ps), false)
	inter, st := Emit(prog, ps, BankAware, tm)
	vir := makespan(t, inter, false)
	if vir >= serial {
		t.Fatalf("VIRCOE (%.0f ns) not faster than serial broadcast (%.0f ns)", vir, serial)
	}
	if st.Interleave == 0 {
		t.Error("no interleaving happened")
	}
	// The win should be substantial: transfers hidden under computation.
	if vir > 0.8*serial {
		t.Errorf("VIRCOE win too small: %.0f vs %.0f ns", vir, serial)
	}
}

// Figure 12's shape: without SALP, subarray-aware emission is worse than
// bank-aware (its parallelism assumption is wrong); with SALP it is better.
func TestModeVsSALP(t *testing.T) {
	// A compute-dominated regime (small rows, long compute runs) with
	// oversubscribed banks: 64 placements on 16 banks = 4 subarrays per
	// bank, so same-bank scheduling decisions matter.
	prog := testProgram(4, 25)
	g := dram.DefaultGeometry()
	g.RowBytes = 512
	ps := mustPlacements(t, g, 64)
	tm := dram.TimingFor(isa.Ambit, g)

	bankStream, _ := Emit(prog, ps, BankAware, tm)
	subStream, _ := Emit(prog, ps, SubarrayAware, tm)

	mk := func(stream []dram.Placed, salp bool) float64 {
		eng := dram.NewEngine(g, tm, salp)
		return eng.Run(stream)
	}
	bankNoSALP := mk(bankStream, false)
	subNoSALP := mk(subStream, false)
	bankSALP := mk(bankStream, true)
	subSALP := mk(subStream, true)
	t.Logf("bank/noSALP=%.0f sub/noSALP=%.0f bank/SALP=%.0f sub/SALP=%.0f",
		bankNoSALP, subNoSALP, bankSALP, subSALP)

	if subNoSALP < bankNoSALP {
		t.Errorf("without SALP, subarray-aware (%.0f) should not beat bank-aware (%.0f)", subNoSALP, bankNoSALP)
	}
	if subSALP >= subNoSALP {
		t.Errorf("SALP did not help subarray-aware emission: %.0f vs %.0f", subSALP, subNoSALP)
	}
	if subSALP >= bankSALP {
		t.Errorf("with SALP, subarray-aware (%.0f) should beat bank-aware (%.0f)", subSALP, bankSALP)
	}
}

func TestEmitFunctionallyCorrectPerSubarray(t *testing.T) {
	// Each subarray gets its own tile: write a value, AND it with itself
	// (identity), read it back; results must match per subarray.
	prog := &isa.Program{}
	prog.Append(
		isa.NewWrite(isa.Row(0), 0),
		isa.NewAAP(isa.Row(0), isa.T0, isa.T1),
		isa.NewAAP(isa.C1, isa.T2),
		isa.NewAP(isa.T0, isa.T1, isa.T2),
		isa.NewAAP(isa.T0, isa.Row(1)),
		isa.NewRead(isa.Row(1), 0),
	)
	prog.DRowsUsed = 2
	g := dram.DefaultGeometry()
	ps := mustPlacements(t, g, 6)
	stream, _ := Emit(prog, ps, BankAware, dram.TimingFor(isa.Ambit, g))

	m := sim.NewMachine(sim.MachineConfig{Geom: g, Arch: isa.Ambit, Lanes: 64})
	got := make(map[[2]int]uint64)
	io := &sim.HostIO{
		WriteDataAt: func(bank, sub, tag int) []uint64 {
			return []uint64{uint64(bank*100 + sub + 7)}
		},
		ReadSinkAt: func(bank, sub, tag int, data []uint64) {
			got[[2]int{bank, sub}] = data[0]
		},
	}
	if _, err := m.Run(stream, io); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("read back %d tiles, want 6", len(got))
	}
	for _, p := range ps {
		want := uint64(p.Bank*100 + p.Subarray + 7)
		if got[[2]int{p.Bank, p.Subarray}] != want {
			t.Errorf("tile %v = %d, want %d", p, got[[2]int{p.Bank, p.Subarray}], want)
		}
	}
}

func TestSerialStreamShape(t *testing.T) {
	prog := testProgram(2, 1)
	ps := []Placement{{0, 0}, {1, 0}}
	stream := Serial(prog, ps)
	if len(stream) != 2*len(prog.Ops) {
		t.Fatalf("stream len %d", len(stream))
	}
	// First half all bank 0.
	for _, pl := range stream[:len(prog.Ops)] {
		if pl.Bank != 0 {
			t.Fatal("serial broadcast interleaved")
		}
	}
}

func TestModeStrings(t *testing.T) {
	if BankAware.String() != "bank-aware" || SubarrayAware.String() != "subarray-aware" {
		t.Error("mode names wrong")
	}
}

// referenceEmit is the O(ops*n) linear-scan earliest-start emitter the heap
// implementation replaced; used as a property-test oracle.
func referenceEmit(prog *isa.Program, placements []Placement, mode Mode, t dram.Timing) []dram.Placed {
	n := len(placements)
	ops := prog.Ops
	pcs := make([]int, n)
	var stream []dram.Placed
	unitKeyOf := func(i int) [2]int {
		if mode == SubarrayAware {
			return [2]int{placements[i].Bank, placements[i].Subarray}
		}
		return [2]int{placements[i].Bank, 0}
	}
	var busFree, lastStart float64
	unitFree := map[[2]int]float64{}
	subSeq := make([]float64, n)
	const issueGap = 0.833
	emitted := 0
	for emitted < n*len(ops) {
		best := -1
		var bestStart float64
		for i := 0; i < n; i++ {
			if pcs[i] >= len(ops) {
				continue
			}
			op := &ops[pcs[i]]
			start := subSeq[i]
			if u := unitFree[unitKeyOf(i)]; u > start {
				start = u
			}
			if op.IsTransfer() && busFree > start {
				start = busFree
			}
			if best < 0 || start < bestStart {
				best = i
				bestStart = start
			}
		}
		if s := lastStart + issueGap; s > bestStart && emitted > 0 {
			bestStart = s
		}
		op := &ops[pcs[best]]
		stream = append(stream, dram.Placed{Bank: placements[best].Bank, Subarray: placements[best].Subarray, Op: *op})
		if op.IsTransfer() {
			busFree = bestStart + t.BusLatency(op)
		}
		end := bestStart + t.OpLatency(op)
		unitFree[unitKeyOf(best)] = end
		subSeq[best] = end
		lastStart = bestStart
		pcs[best]++
		emitted++
	}
	return stream
}

// The heap-based emitter must schedule as well as the reference emitter:
// identical makespans under the engine (emission order may differ on ties,
// which cannot change the earliest-start objective by more than rounding).
func TestEmitHeapMatchesReference(t *testing.T) {
	g := dram.DefaultGeometry()
	tm := dram.TimingFor(isa.Ambit, g)
	for trial := 0; trial < 6; trial++ {
		prog := testProgram(3+trial, 2+trial%3)
		for _, mode := range []Mode{BankAware, SubarrayAware} {
			for _, nPl := range []int{4, 16, 33} {
				ps := mustPlacements(t, g, nPl)
				heapStream, _ := Emit(prog, ps, mode, tm)
				refStream := referenceEmit(prog, ps, mode, tm)
				for _, salp := range []bool{false, true} {
					mkHeap := makespan(t, heapStream, salp)
					mkRef := makespan(t, refStream, salp)
					// Tie-breaking may differ; the heap must schedule at
					// least as well as the linear-scan reference when the
					// emitter's parallelism assumption matches the
					// hardware. On mismatched hardware (the deliberate
					// mis-prediction Figure 12 studies) both orders are
					// equally blind, so only gross regressions count.
					tol := 1.02
					if (mode == SubarrayAware) != salp {
						tol = 1.15
					}
					if mkHeap > mkRef*tol {
						t.Fatalf("trial %d mode %v n=%d salp=%v: heap %.0f worse than reference %.0f",
							trial, mode, nPl, salp, mkHeap, mkRef)
					}
				}
			}
		}
	}
}
