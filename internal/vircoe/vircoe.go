// Package vircoe implements the VIRtual COde Emitter, CHOPPER's
// compilation abstraction for exploiting memory-level parallelism (Section
// IV-B of the paper). A compiled kernel targets one subarray; real data is
// tiled over many subarrays across many banks. The naive approach — emit
// the whole program for subarray 1, then subarray 2, ... — serializes data
// transfer and computation, because the host issues commands in order.
//
// VIRCOE maintains a virtual program counter per subarray and emits one
// micro-op at a time: at every step it evaluates, for each subarray's next
// op, when that op could start under the emitter's device model (shared
// bus for transfers; one command at a time per bank, or per subarray when
// subarray-aware), and emits the op that can start earliest. The result is
// the Figure 5B interleaving: one bank's data transfers ride under another
// bank's triple-row activations.
//
// The mode is the emitter's *assumption* about the device. A
// subarray-aware emitter believes same-bank subarrays overlap; on hardware
// without Subarray-Level Parallelism that assumption is wrong and the
// emitted order exaggerates bank conflicts (the degradation Figure 12
// reports), while on SALP hardware it unlocks the extra parallelism.
package vircoe

import (
	"fmt"

	"chopper/internal/dram"
	"chopper/internal/isa"
)

// Mode selects the parallelism assumption of the emitter's device model.
type Mode int

const (
	// BankAware assumes banks are parallel and subarrays within a bank
	// serialize (true on any device).
	BankAware Mode = iota
	// SubarrayAware assumes every subarray is an independent unit (true
	// only with Subarray-Level Parallelism enabled).
	SubarrayAware
)

func (m Mode) String() string {
	if m == BankAware {
		return "bank-aware"
	}
	return "subarray-aware"
}

// Placement identifies a subarray instance running a copy of the program.
type Placement struct {
	Bank     int
	Subarray int
}

// Placements enumerates n subarrays spread across one channel of the
// geometry in bank-major order (subarray s of every bank before subarray
// s+1), the order that maximizes bank-level parallelism for small n. It
// errors when the geometry cannot hold n subarrays or n is negative
// (historically this panicked; callers that pre-check capacity, like the
// tiled runner, never see the error).
func Placements(g dram.Geometry, n int) ([]Placement, error) {
	if n < 0 {
		return nil, fmt.Errorf("vircoe: negative placement count %d", n)
	}
	if cap := g.Banks * g.SubarraysPB; n > cap {
		return nil, fmt.Errorf("vircoe: %d placements requested, geometry holds %d", n, cap)
	}
	out := make([]Placement, 0, n)
	for s := 0; s < g.SubarraysPB && len(out) < n; s++ {
		for b := 0; b < g.Banks && len(out) < n; b++ {
			out = append(out, Placement{Bank: b, Subarray: s})
		}
	}
	return out, nil
}

// Stats reports what the emitter did.
type Stats struct {
	Ops        int
	Transfers  int
	Subarrays  int
	SpanNs     float64 // emitter-model completion estimate
	BusBusyNs  float64
	Interleave int // ops emitted out of naive subarray-major order
}

// Sink consumes placed micro-ops as they are emitted. The streaming (To)
// emitters exist because a full issue stream for a large program over many
// subarrays can run to hundreds of millions of ops; the timing engine only
// needs them one at a time.
type Sink func(dram.Placed)

// Serial is the naive broadcast: the whole program for each subarray in
// turn — the emission order of the baseline methodology and of CHOPPER
// without VIRCOE.
func Serial(prog *isa.Program, placements []Placement) []dram.Placed {
	stream := make([]dram.Placed, 0, len(prog.Ops)*len(placements))
	SerialTo(prog, placements, func(p dram.Placed) { stream = append(stream, p) })
	return stream
}

// SerialTo streams the naive broadcast into sink.
func SerialTo(prog *isa.Program, placements []Placement, sink Sink) {
	for _, p := range placements {
		for _, op := range prog.Ops {
			sink(dram.Placed{Bank: p.Bank, Subarray: p.Subarray, Op: op})
		}
	}
}

// Lockstep is the hands-tuned methodology's bank-parallel broadcast: each
// micro-op is issued for every subarray before the next micro-op — how a
// bbop macro over a multi-bank array executes. Computation overlaps across
// banks (Table I: all architectures exploit BLP), but transfer phases and
// compute phases still alternate in lockstep, with no cross-phase overlap.
func Lockstep(prog *isa.Program, placements []Placement) []dram.Placed {
	stream := make([]dram.Placed, 0, len(prog.Ops)*len(placements))
	LockstepTo(prog, placements, func(p dram.Placed) { stream = append(stream, p) })
	return stream
}

// LockstepTo streams the lockstep broadcast into sink.
func LockstepTo(prog *isa.Program, placements []Placement, sink Sink) {
	for _, op := range prog.Ops {
		for _, p := range placements {
			sink(dram.Placed{Bank: p.Bank, Subarray: p.Subarray, Op: op})
		}
	}
}

// Emit produces the VIRCOE-interleaved issue stream for one program
// replicated over the placements.
func Emit(prog *isa.Program, placements []Placement, mode Mode, t dram.Timing) ([]dram.Placed, Stats) {
	var stream []dram.Placed
	st := EmitTo(prog, placements, mode, t, func(p dram.Placed) { stream = append(stream, p) })
	return stream, st
}

// EmitTo streams the VIRCOE-interleaved issue order into sink.
func EmitTo(prog *isa.Program, placements []Placement, mode Mode, t dram.Timing, sink Sink) Stats {
	n := len(placements)
	ops := prog.Ops
	pcs := make([]int, n)
	st := Stats{Subarrays: n}

	// Map each placement to a dense unit index (its bank, or its own slot
	// when subarray-aware) so the inner loop is pure slice arithmetic.
	unitIdx := make([]int, n)
	unitIDs := make(map[[2]int]int)
	for i, p := range placements {
		key := [2]int{p.Bank, 0}
		if mode == SubarrayAware {
			key = [2]int{p.Bank, p.Subarray}
		}
		id, ok := unitIDs[key]
		if !ok {
			id = len(unitIDs)
			unitIDs[key] = id
		}
		unitIdx[i] = id
	}

	// Emitter-internal device model (mirrors the dram engine's resources).
	var busFree float64
	unitFree := make([]float64, len(unitIDs))
	subSeq := make([]float64, n)
	var lastStart float64
	const issueGap = 0.833

	// isXfer caches the per-op transfer classification once.
	isXfer := make([]bool, len(ops))
	opLat := make([]float64, len(ops))
	busLat := make([]float64, len(ops))
	for i := range ops {
		isXfer[i] = ops[i].IsTransfer()
		opLat[i] = t.OpLatency(&ops[i])
		busLat[i] = t.BusLatency(&ops[i])
	}

	// Placements are kept in a min-heap on their estimated next start
	// time. Estimates are lazily refreshed: resource-free times only ever
	// increase, so a popped entry whose true start exceeds its key is
	// simply re-pushed with the fresh key — when a pop matches its key,
	// it is the true minimum.
	estimate := func(i int) float64 {
		start := subSeq[i]
		if u := unitFree[unitIdx[i]]; u > start {
			start = u
		}
		if isXfer[pcs[i]] && busFree > start {
			start = busFree
		}
		return start
	}
	h := &startHeap{}
	for i := 0; i < n; i++ {
		h.push(heapEntry{key: 0, seq: i, idx: i})
	}
	seq := n

	remaining := n * len(ops)
	lastEmitted := -1
	for remaining > 0 {
		var best int
		var bestStart float64
		for {
			e := h.pop()
			cur := estimate(e.idx)
			if cur > e.key {
				e.key = cur
				h.push(e)
				continue
			}
			best = e.idx
			bestStart = cur
			break
		}
		if s := lastStart + issueGap; s > bestStart && st.Ops > 0 {
			bestStart = s
		}
		pc := pcs[best]
		sink(dram.Placed{
			Bank:     placements[best].Bank,
			Subarray: placements[best].Subarray,
			Op:       ops[pc],
		})
		if lastEmitted >= 0 && best != lastEmitted && pcs[lastEmitted] < len(ops) {
			st.Interleave++
		}
		lastEmitted = best

		if isXfer[pc] {
			st.Transfers++
			busFree = bestStart + busLat[pc]
			st.BusBusyNs += busLat[pc]
		}
		end := bestStart + opLat[pc]
		unitFree[unitIdx[best]] = end
		subSeq[best] = end
		lastStart = bestStart
		if end > st.SpanNs {
			st.SpanNs = end
		}
		pcs[best]++
		st.Ops++
		remaining--
		if pcs[best] < len(ops) {
			h.push(heapEntry{key: estimate(best), seq: seq, idx: best})
			seq++
		}
	}
	return st
}

type heapEntry struct {
	key float64
	seq int // FIFO tie-break: on equal keys the longest-waiting placement wins
	idx int
}

// less orders by start estimate, then FIFO, so equal-key placements are
// served round-robin (starving none, which matters under in-order issue).
func (a heapEntry) less(b heapEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// startHeap is a binary min-heap of placement start estimates; hand-rolled
// (rather than container/heap) to avoid interface boxing in the hot loop.
type startHeap struct{ a []heapEntry }

func (h *startHeap) push(e heapEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.a[i].less(h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *startHeap) pop() heapEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.a[l].less(h.a[m]) {
			m = l
		}
		if r < last && h.a[r].less(h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
