// Package guard is the cancellation and resource-budget layer of the
// compiler: a tiny dependency-free vocabulary (sentinel errors, a Budget
// of per-dimension limits, and checkpoint helpers) that the compile,
// verify, simulate and timing loops consult at deterministic points.
//
// Two failure families are distinguished:
//
//   - cancellation: a context.Context expired or was canceled. Workers
//     observe it *between* units of work (cooperative cancellation), so a
//     canceled operation stops promptly but never mid-mutation. Surfaces
//     as ErrCanceled or ErrDeadline.
//   - budget exhaustion: a counted resource (emitted micro-ops, logic
//     gates, simulated steps, issued DRAM commands) crossed its limit.
//     Surfaces as a *BudgetError carrying the exhausted dimension and the
//     count, so a service can log exactly which ceiling a runaway program
//     hit. Budget checks depend only on the counted work, never on wall
//     clock or scheduling, so the same program exhausts the same
//     dimension at the same count at any worker count.
//
// See docs/GUARDS.md for how the checkpoints thread through the stack.
package guard

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors for guard-layer terminations. The chopper package
// re-exports these, so callers can errors.Is against either package.
var (
	// ErrCanceled marks a cooperative stop because the context was
	// canceled before the work completed.
	ErrCanceled = errors.New("guard: canceled")
	// ErrDeadline marks a cooperative stop because the context's deadline
	// expired before the work completed.
	ErrDeadline = errors.New("guard: deadline exceeded")
	// ErrBudget marks a deterministic stop because a resource budget
	// dimension was exhausted; the concrete error is a *BudgetError.
	ErrBudget = errors.New("guard: budget exceeded")
)

// Budget dimension names, used in BudgetError.Dimension and diagnostics.
const (
	DimMicroOps     = "micro-ops"     // micro-ops emitted by code generation
	DimDRAMCommands = "dram-commands" // commands issued to the DRAM timing engine
	DimNetGates     = "net-gates"     // gates in the bit-sliced logic net
	DimSimSteps     = "sim-steps"     // micro-ops executed by the functional simulator
)

// Budget caps resource dimensions across the compile/verify/simulate
// pipeline. A zero field means unlimited; negative fields are invalid
// (Validate rejects them, and entry points surface that as an options
// error). Budgets are enforced at checkpoints — codegen emission, logic
// net construction, functional simulation, DRAM command issue — not by
// wall clock, so exceeding one is deterministic and reproducible.
type Budget struct {
	// MaxMicroOps bounds the micro-op program a single compilation may
	// emit (checked after every gate during codegen emission).
	MaxMicroOps int
	// MaxDRAMCommands bounds the commands one run may issue to the DRAM
	// timing engine.
	MaxDRAMCommands int
	// MaxNetGates bounds the bit-sliced logic net (checked after
	// bit-slicing, legalization and hardening).
	MaxNetGates int
	// MaxSimSteps bounds the micro-ops one run may execute on the
	// functional simulator.
	MaxSimSteps int
}

// IsZero reports whether no dimension is limited.
func (b Budget) IsZero() bool { return b == Budget{} }

// Validate rejects negative limits, naming the offending dimension.
func (b Budget) Validate() error {
	for _, d := range []struct {
		dim string
		v   int
	}{
		{DimMicroOps, b.MaxMicroOps},
		{DimDRAMCommands, b.MaxDRAMCommands},
		{DimNetGates, b.MaxNetGates},
		{DimSimSteps, b.MaxSimSteps},
	} {
		if d.v < 0 {
			return fmt.Errorf("guard: negative %s limit %d", d.dim, d.v)
		}
	}
	return nil
}

// BudgetError reports an exhausted budget dimension. It matches ErrBudget
// under errors.Is and carries the dimension, limit and observed count for
// diagnostics ("which ceiling did this program hit, and by how much").
type BudgetError struct {
	Dimension string // one of the Dim* constants
	Limit     int    // the configured ceiling
	Count     int    // the count that crossed it
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("guard: budget exceeded: %s %d > limit %d", e.Dimension, e.Count, e.Limit)
}

// Is makes errors.Is(err, ErrBudget) true for every BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// Check is the budget checkpoint: it returns a *BudgetError when count
// exceeds a positive limit, nil otherwise (including limit <= 0, which
// means unlimited).
func Check(dim string, limit, count int) error {
	if limit > 0 && count > limit {
		return &BudgetError{Dimension: dim, Limit: limit, Count: count}
	}
	return nil
}

// Ctx is the cancellation checkpoint: it maps a context's termination to
// the guard sentinels — ErrDeadline for an expired deadline, ErrCanceled
// for everything else — and returns nil while the context is live. A nil
// context is always live, so un-guarded call paths cost one comparison.
func Ctx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// IsGuard reports whether err is a guard-layer termination (budget
// exhaustion, cancellation or deadline) as opposed to an ordinary
// failure. Wrapping layers use it to pass guard errors through with their
// sentinel identity intact instead of re-classing them.
func IsGuard(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}
