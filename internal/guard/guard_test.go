package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCheck(t *testing.T) {
	if err := Check(DimMicroOps, 0, 1<<30); err != nil {
		t.Fatalf("unlimited dimension errored: %v", err)
	}
	if err := Check(DimMicroOps, 10, 10); err != nil {
		t.Fatalf("count == limit must pass: %v", err)
	}
	err := Check(DimSimSteps, 10, 11)
	if err == nil {
		t.Fatal("count > limit must fail")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("%v does not match ErrBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("%v is not a *BudgetError", err)
	}
	if be.Dimension != DimSimSteps || be.Limit != 10 || be.Count != 11 {
		t.Fatalf("bad fields: %+v", be)
	}
	for _, want := range []string{DimSimSteps, "11", "10"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("message %q missing %q", err, want)
		}
	}
	// A BudgetError matches only ErrBudget, not the cancellation sentinels.
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) {
		t.Error("BudgetError matched a cancellation sentinel")
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := (Budget{}).Validate(); err != nil {
		t.Fatalf("zero budget invalid: %v", err)
	}
	if err := (Budget{MaxMicroOps: 5, MaxSimSteps: 1 << 40}).Validate(); err != nil {
		t.Fatalf("positive budget invalid: %v", err)
	}
	err := Budget{MaxNetGates: -1}.Validate()
	if err == nil || !strings.Contains(err.Error(), DimNetGates) {
		t.Fatalf("negative limit not rejected by dimension: %v", err)
	}
	if !(Budget{}).IsZero() || (Budget{MaxSimSteps: 1}).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestCtx(t *testing.T) {
	if err := Ctx(nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := Ctx(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	c, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Ctx(c); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx gave %v, want ErrCanceled", err)
	}
	d, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := Ctx(d); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx gave %v, want ErrDeadline", err)
	}
}

func TestIsGuard(t *testing.T) {
	for _, err := range []error{ErrBudget, ErrCanceled, ErrDeadline, Check(DimMicroOps, 1, 2)} {
		if !IsGuard(err) {
			t.Errorf("IsGuard(%v) = false", err)
		}
	}
	if IsGuard(errors.New("boom")) || IsGuard(nil) {
		t.Error("IsGuard matched a non-guard error")
	}
}
