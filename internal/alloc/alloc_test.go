package alloc

import (
	"testing"

	"chopper/internal/isa"
)

func TestRowPoolBasics(t *testing.T) {
	p := NewRowPool(3)
	r1, ok := p.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	r2, _ := p.Alloc()
	r3, _ := p.Alloc()
	if _, ok := p.Alloc(); ok {
		t.Error("alloc beyond capacity succeeded")
	}
	if p.Live() != 3 || p.MaxUsed() != 3 {
		t.Errorf("live=%d max=%d", p.Live(), p.MaxUsed())
	}
	if r1 == r2 || r2 == r3 || r1 == r3 {
		t.Error("duplicate rows handed out")
	}
	p.Free(r2)
	if p.Live() != 2 {
		t.Errorf("live after free = %d", p.Live())
	}
	r4, ok := p.Alloc()
	if !ok || r4 != r2 {
		t.Errorf("expected %v back, got %v", r2, r4)
	}
	if !p.InUse(r1) || p.InUse(isa.Row(99)) {
		t.Error("InUse wrong")
	}
}

func TestRowPoolDoubleFreePanics(t *testing.T) {
	p := NewRowPool(2)
	r, _ := p.Alloc()
	p.Free(r)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	p.Free(r)
}

func TestRowPoolLowRowsFirst(t *testing.T) {
	p := NewRowPool(4)
	r, _ := p.Alloc()
	if r != isa.Row(0) {
		t.Errorf("first alloc = %v, want D0", r)
	}
}

func TestLinearScanNoSpill(t *testing.T) {
	// Three non-overlapping intervals fit in one row.
	ivs := []Interval{
		{ID: 1, Start: 0, End: 2, Rows: 1},
		{ID: 2, Start: 3, End: 5, Rows: 1},
		{ID: 3, Start: 6, End: 9, Rows: 1},
	}
	res := LinearScan(ivs, 1)
	if res.Spilled != 0 {
		t.Fatalf("spilled %d", res.Spilled)
	}
	if res.MaxRows != 1 {
		t.Errorf("max rows = %d", res.MaxRows)
	}
}

func TestLinearScanOverlapNeedsRows(t *testing.T) {
	ivs := []Interval{
		{ID: 1, Start: 0, End: 10, Rows: 1},
		{ID: 2, Start: 1, End: 9, Rows: 1},
		{ID: 3, Start: 2, End: 8, Rows: 1},
	}
	res := LinearScan(ivs, 3)
	if res.Spilled != 0 || res.MaxRows != 3 {
		t.Fatalf("spilled=%d max=%d", res.Spilled, res.MaxRows)
	}
}

func TestLinearScanSpillsFurthestEnd(t *testing.T) {
	ivs := []Interval{
		{ID: 1, Start: 0, End: 100, Rows: 1}, // longest: should be the victim
		{ID: 2, Start: 1, End: 5, Rows: 1},
		{ID: 3, Start: 2, End: 6, Rows: 1},
	}
	res := LinearScan(ivs, 2)
	if res.Spilled != 1 {
		t.Fatalf("spilled = %d, want 1", res.Spilled)
	}
	if !res.Assignments[1].Spilled {
		t.Errorf("victim was %+v, want interval 1", res.Assignments)
	}
	if res.Assignments[2].Spilled || res.Assignments[3].Spilled {
		t.Error("short intervals spilled")
	}
}

func TestLinearScanSpillsNewWhenItEndsLast(t *testing.T) {
	ivs := []Interval{
		{ID: 1, Start: 0, End: 5, Rows: 1},
		{ID: 2, Start: 0, End: 6, Rows: 1},
		{ID: 3, Start: 1, End: 100, Rows: 1}, // new interval ends last
	}
	res := LinearScan(ivs, 2)
	if !res.Assignments[3].Spilled {
		t.Errorf("expected the late-ending newcomer spilled: %+v", res.Assignments)
	}
}

func TestLinearScanMultiRow(t *testing.T) {
	// Full-size operands: 8-row values, as the SIMDRAM methodology
	// allocates them.
	ivs := []Interval{
		{ID: 1, Start: 0, End: 10, Rows: 8},
		{ID: 2, Start: 2, End: 12, Rows: 8},
		{ID: 3, Start: 11, End: 20, Rows: 8},
	}
	res := LinearScan(ivs, 16)
	if res.Spilled != 0 {
		t.Fatalf("spilled %d with capacity for two", res.Spilled)
	}
	if res.MaxRows != 16 {
		t.Errorf("max rows = %d, want 16", res.MaxRows)
	}
	res2 := LinearScan(ivs, 8)
	if res2.Spilled == 0 {
		t.Error("no spill with capacity for one 8-row value")
	}
	if res2.SpillRows%8 != 0 {
		t.Errorf("spill rows = %d, want multiple of 8", res2.SpillRows)
	}
}

func TestLinearScanExpiryReleasesRows(t *testing.T) {
	ivs := []Interval{
		{ID: 1, Start: 0, End: 1, Rows: 4},
		{ID: 2, Start: 2, End: 3, Rows: 4},
		{ID: 3, Start: 4, End: 5, Rows: 4},
	}
	res := LinearScan(ivs, 4)
	if res.Spilled != 0 {
		t.Fatalf("spilled %d; expiry broken", res.Spilled)
	}
}

func TestLinearScanDefaultRows(t *testing.T) {
	res := LinearScan([]Interval{{ID: 1, Start: 0, End: 1}}, 4)
	if res.Assignments[1].Spilled {
		t.Error("single interval spilled")
	}
	if res.MaxRows != 1 {
		t.Errorf("max rows = %d", res.MaxRows)
	}
}
