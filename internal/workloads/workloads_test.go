package workloads

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"chopper/internal/dfg"
	"chopper/internal/dsl"
	"chopper/internal/typecheck"
)

func graphOf(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	prog, err := dsl.ParseAndExpand(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ch, err := typecheck.Check(prog)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g, err := dfg.Build(ch)
	if err != nil {
		t.Fatalf("dfg: %v", err)
	}
	return g
}

func TestAllSixteenSpecsWellFormed(t *testing.T) {
	specs := All()
	if len(specs) != 16 {
		t.Fatalf("got %d specs, want 16", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
		if s.TotalLanes <= 0 || s.HostCost.Bytes <= 0 || s.HostCost.Ops <= 0 {
			t.Errorf("%s: bad scale %+v", s.Name, s)
		}
		if !strings.Contains(s.Src, "node main") {
			t.Errorf("%s: no main node", s.Name)
		}
		g := graphOf(t, s.Src) // parses, checks, normalizes
		if g.OpCount() == 0 {
			t.Errorf("%s: empty kernel", s.Name)
		}
		if LoC(s.Src) <= 0 {
			t.Errorf("%s: zero LoC", s.Name)
		}
	}
}

func TestGetByName(t *testing.T) {
	s, ok := Get("DiffGen-128")
	if !ok || s.Config != 128 || s.Domain != "DiffGen" {
		t.Fatalf("Get: %+v ok=%v", s, ok)
	}
	if _, ok := Get("nope-1"); ok {
		t.Error("bogus name resolved")
	}
}

func TestSpecsDeterministic(t *testing.T) {
	a := Build("SW", 128)
	b := Build("SW", 128)
	if a.Src != b.Src {
		t.Error("workload generation is not deterministic")
	}
}

// goldenWTC independently computes the unbalanced wavelet-tree encoding
// of one character.
func goldenWTC(c uint64, sigma int) []uint64 {
	levels := 0
	for 1<<levels < sigma {
		levels++
	}
	r := 2 * sigma
	cuts := make([]int, levels)
	span := r
	for l := 0; l < levels; l++ {
		cuts[l] = span * 5 / 8
		if cuts[l] < 1 {
			cuts[l] = 1
		}
		span -= cuts[l]
		if span < 2 {
			span = 2
		}
	}
	bits := make([]uint64, levels)
	lo := uint64(0)
	for l := 0; l < levels; l++ {
		med := (lo + uint64(cuts[l])) & 1023
		if c >= med {
			bits[l] = 1
			lo = med
		}
	}
	return bits
}

func TestWTCSemantics(t *testing.T) {
	for _, sigma := range []int{64, 256} {
		s := Build("WTC", sigma)
		g := graphOf(t, s.Src)
		chars := sigma / 2
		levels := 0
		for 1<<levels < sigma {
			levels++
		}
		rng := rand.New(rand.NewSource(int64(sigma)))
		in := make(map[string]*big.Int, chars)
		vals := make([]uint64, chars)
		for i := 0; i < chars; i++ {
			vals[i] = uint64(rng.Intn(2 * sigma))
			in["c__"+itoa(i)] = new(big.Int).SetUint64(vals[i])
		}
		out, err := g.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < chars; i++ {
			want := goldenWTC(vals[i], sigma)
			for l, wb := range want {
				name := "b__" + itoa(i*levels+l)
				if out[name].Uint64() != wb {
					t.Fatalf("sigma=%d char %d level %d: got %v want %d (c=%d)", sigma, i, l, out[name], wb, vals[i])
				}
			}
		}
	}
}

func keyB(l int) string { return "b" + itoa(l) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSWSemantics(t *testing.T) {
	s := Build("SW", 64)
	g := graphOf(t, s.Src)
	// Extract the constants from the generated source for the golden.
	var cHex, mHex string
	for _, line := range strings.Split(s.Src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "t = s + 0x") {
			cHex = line[len("t = s + 0x"):strings.Index(line, ":")]
		}
		if strings.HasPrefix(line, "dev = absdiff(sp, 0x") {
			mHex = line[len("dev = absdiff(sp, 0x"):strings.LastIndex(line, ":")]
		}
	}
	cVal, ok1 := new(big.Int).SetString(cHex, 16)
	mVal, ok2 := new(big.Int).SetString(mHex, 16)
	if !ok1 || !ok2 {
		t.Fatalf("could not extract constants %q %q", cHex, mHex)
	}
	mask := new(big.Int).Lsh(big.NewInt(1), 64)
	mask.Sub(mask, big.NewInt(1))

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := int64(rng.Intn(120))
		sv := new(big.Int).SetUint64(rng.Uint64())
		out, err := g.Eval(map[string]*big.Int{"n": big.NewInt(n), "s": sv})
		if err != nil {
			t.Fatal(err)
		}
		sp := new(big.Int).Set(sv)
		if n < 50 {
			sp.Add(sv, cVal)
			sp.And(sp, mask)
		}
		dev := new(big.Int).Sub(sp, mVal)
		dev.Abs(dev)
		if out["sp"].Cmp(sp) != 0 {
			t.Fatalf("trial %d: sp=%v want %v", trial, out["sp"], sp)
		}
		if out["dev"].Cmp(dev) != 0 {
			t.Fatalf("trial %d: dev=%v want %v", trial, out["dev"], dev)
		}
	}
}

func TestDiffGenSemantics(t *testing.T) {
	s := Build("DiffGen", 64)
	g := graphOf(t, s.Src)
	rng2 := rand.New(rand.NewSource(3))
	in := make(map[string]*big.Int, 64)
	vals := make([]uint64, 64)
	for a := 0; a < 64; a++ {
		vals[a] = uint64(rng2.Intn(16))
		in["v__"+itoa(a)] = new(big.Int).SetUint64(vals[a])
	}
	out, err := g.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	thr := [2]uint64{3, 10}
	for a := 0; a < 64; a++ {
		for j := 0; j < 2; j++ {
			want := uint64(0)
			if vals[a] >= thr[j] {
				want = 1
			}
			name := "e__" + itoa(2*a+j)
			if out[name].Uint64() != want {
				t.Fatalf("attr %d level %d: got %v want %d (v=%d)", a, j, out[name], want, vals[a])
			}
		}
	}
}

func TestDenseNetFeatureReuse(t *testing.T) {
	s := Build("DenseNet", 32)
	g := graphOf(t, s.Src)
	out, err := g.Eval(map[string]*big.Int{"x0": big.NewInt(0xB)})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"].BitLen() > 4 {
		t.Errorf("feature wider than u4: %v", out["y"])
	}
	// Each layer's input list must include early features (the reuse
	// property): layer 30 must consume feature 0.
	found := false
	for _, k := range denseInputs(30) {
		if k == 0 {
			found = true
		}
	}
	if !found {
		t.Error("dense connectivity lost: layer 30 ignores feature 0")
	}
}

func TestLoC(t *testing.T) {
	if got := LoC("// c\n\nnode f\nlet\n"); got != 2 {
		t.Errorf("LoC = %d, want 2", got)
	}
}

// goldenDenseNet independently evaluates the dense block, reconstructing
// the generator's deterministic weights.
func goldenDenseNet(x0 uint64, layers int) uint64 {
	r := &rng{s: 0x9E3779B97F4A7C15}
	feats := make([]uint64, layers+1)
	feats[0] = x0 & 0xF
	for l := 1; l <= layers; l++ {
		var acc uint64
		for _, k := range denseInputs(l) {
			w := uint64(r.intn(16))
			v := (feats[k] ^ w) & 0xF
			pc := uint64(0)
			for ; v != 0; v &= v - 1 {
				pc++
			}
			acc = (acc + pc) & 0xFF
		}
		feats[l] = (acc >> 3) & 0xF
	}
	return feats[layers]
}

func TestDenseNetSemantics(t *testing.T) {
	for _, layers := range []int{16, 32} {
		s := Build("DenseNet", layers)
		g := graphOf(t, s.Src)
		for x0 := uint64(0); x0 < 16; x0++ {
			out, err := g.Eval(map[string]*big.Int{"x0": new(big.Int).SetUint64(x0)})
			if err != nil {
				t.Fatal(err)
			}
			want := goldenDenseNet(x0, layers)
			if out["y"].Uint64() != want {
				t.Fatalf("layers=%d x0=%d: got %v want %d", layers, x0, out["y"], want)
			}
		}
	}
}
