// Package workloads defines the 16 evaluation workloads of Table II — four
// PUD-friendly application domains, four configurations each — as CHOPPER
// kernel generators plus whole-problem scale descriptors for the benchmark
// harness and the host (CPU/GPU) cost models.
//
// Each workload is a per-lane kernel: one SIMD lane (DRAM bitline)
// processes one element (a pixel's feature vector, a document character, a
// record, a user-item entry). The kernel is replicated over every lane of
// every subarray; the Spec records how many lanes the full problem needs.
package workloads

import (
	"fmt"
	"math/big"
	"strings"

	"chopper/internal/hostmodel"
)

// Spec describes one workload configuration.
type Spec struct {
	// Name is "Domain-Config", e.g. "DenseNet-16".
	Name string
	// Domain is one of "DenseNet", "WTC", "DiffGen", "SW".
	Domain string
	// Config is the Table II knob: dense-block layers, alphabet size,
	// attribute count, or element bit width.
	Config int
	// Src is the CHOPPER kernel source.
	Src string
	// TotalLanes is the number of elements the full problem processes.
	TotalLanes int64
	// HostCost models the tuned CPU/GPU implementation's demands.
	HostCost hostmodel.Cost
	// Desc is a one-line description for reports.
	Desc string
}

// Domains lists the four application domains in paper order.
var Domains = []string{"DenseNet", "WTC", "DiffGen", "SW"}

// Configs maps each domain to its four Table II configurations.
var Configs = map[string][]int{
	"DenseNet": {16, 32, 64, 128},   // layers within a dense block
	"WTC":      {64, 128, 256, 512}, // alphabet size sigma
	"DiffGen":  {64, 128, 256, 512}, // number of attributes
	"SW":       {64, 128, 256, 512}, // element bit width
}

// All returns the 16 workload specs in paper order.
func All() []Spec {
	var out []Spec
	for _, d := range Domains {
		for _, c := range Configs[d] {
			out = append(out, Build(d, c))
		}
	}
	return out
}

// Get returns the named spec ("Domain-Config").
func Get(name string) (Spec, bool) {
	for _, d := range Domains {
		for _, c := range Configs[d] {
			if fmt.Sprintf("%s-%d", d, c) == name {
				return Build(d, c), true
			}
		}
	}
	return Spec{}, false
}

// Build constructs the spec for one domain/config pair.
func Build(domain string, config int) Spec {
	switch domain {
	case "DenseNet":
		return denseNet(config)
	case "WTC":
		return waveletTree(config)
	case "DiffGen":
		return diffGen(config)
	case "SW":
		return sigWeight(config)
	}
	panic(fmt.Sprintf("workloads: unknown domain %q", domain))
}

// rng is a small deterministic generator for weights/thresholds (the same
// values on every run, so compiled programs are reproducible).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// denseNet builds a binary-DenseNet dense block with `layers` layers.
// Layer l consumes the block input plus earlier features (full feature
// reuse onto the first 8 and the most recent 24 features, the bottleneck
// compression of DenseNet-BC): for each consumed feature, an XNOR-style
// binary convolution term popcount(y_k ^ w) accumulates into the layer's
// pre-activation, which is re-quantized to a 4-bit feature. The defining
// property for PUD: features cannot be overwritten layer by layer — every
// feature stays live for many subsequent layers.
func denseNet(layers int) Spec {
	r := &rng{s: 0x9E3779B97F4A7C15}
	var sb strings.Builder
	sb.WriteString("// Binary DenseNet dense block: feature reuse across layers.\n")
	sb.WriteString("node main(x0: u4) returns (y: u4)\nvars\n")
	var vars []string
	for l := 1; l <= layers; l++ {
		vars = append(vars, fmt.Sprintf("y%d: u4", l))
		vars = append(vars, fmt.Sprintf("a%d: u8", l))
	}
	sb.WriteString("  " + strings.Join(vars, ", ") + ";\nlet\n")
	feat := func(k int) string {
		if k == 0 {
			return "x0"
		}
		return fmt.Sprintf("y%d", k)
	}
	for l := 1; l <= layers; l++ {
		ks := denseInputs(l)
		var terms []string
		for _, k := range ks {
			w := r.intn(16)
			terms = append(terms, fmt.Sprintf("u8(popcount(%s ^ %d:u4))", feat(k), w))
		}
		sb.WriteString(fmt.Sprintf("  a%d = %s;\n", l, strings.Join(terms, " + ")))
		sb.WriteString(fmt.Sprintf("  y%d = u4(a%d >> 3);\n", l, l))
	}
	sb.WriteString(fmt.Sprintf("  y = y%d;\ntel\n", layers))
	src := sb.String()

	pairs := 0
	for l := 1; l <= layers; l++ {
		pairs += len(denseInputs(l))
	}
	lanes := int64(5) << 24 // 5 dense blocks over a 16M-activation map
	return Spec{
		Name: fmt.Sprintf("DenseNet-%d", layers), Domain: "DenseNet", Config: layers,
		Src: src, TotalLanes: lanes,
		HostCost: hostmodel.Cost{
			Bytes: float64(lanes) * float64(pairs) * 1.0,
			Ops:   float64(lanes) * float64(pairs) * 3,
		},
		Desc: fmt.Sprintf("dense block, %d layers, %d binary-conv terms", layers, pairs),
	}
}

// denseInputs returns the feature indices layer l consumes (0 = block
// input x0).
func denseInputs(l int) []int {
	seen := map[int]bool{}
	var ks []int
	add := func(k int) {
		if k >= 0 && k < l && !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	for k := 0; k < 8; k++ {
		add(k)
	}
	for k := l - 24; k < l; k++ {
		add(k)
	}
	return ks
}

// waveletTree builds the wavelet-tree encoding step for an unbalanced
// (frequency-skewed, Huffman-shaped) wavelet tree over an alphabet of
// sigma symbols: log2(sigma) levels, each emitting the sign bit of a
// bit-serial comparison between the symbol and the running partition cut
// point, which itself depends on all previously emitted bits — so every
// level's encoding stays buffered, the property the paper calls out.
//
// Each SIMD lane processes a strip of sigma/2 document characters
// (standard blocking), which is what makes the alphabet size the footprint
// knob: wider alphabets mean both deeper trees and larger strips.
func waveletTree(sigma int) Spec {
	levels := 0
	for 1<<levels < sigma {
		levels++
	}
	chars := sigma / 2 // strip length per lane
	r := 2 * sigma     // symbol code domain [0, r)

	cuts := wtCuts(r, levels)
	cutList := make([]string, levels)
	for l, c := range cuts {
		cutList[l] = fmt.Sprintf("%d", c)
	}
	src := fmt.Sprintf(`// Wavelet Tree construction: per-level partition encodings.
node main(c: u10[%d]) returns (b: u1[%d])
vars lo: u10[%d];
const cut: u10[%d] = {%s};
let
  forall i in 0..%d {
    lo[i*%d] = 0:u10;
    forall l in 0..%d {
      lo[i*%d + l + 1] = (c[i] >= lo[i*%d + l] + cut[l]) ? lo[i*%d + l] + cut[l] : lo[i*%d + l];
    }
    forall l in 0..%d {
      b[i*%d + l] = c[i] >= lo[i*%d + l] + cut[l];
    }
  }
tel
`, chars, chars*levels, chars*levels, levels, strings.Join(cutList, ", "),
		chars-1,
		levels,
		levels-2, levels, levels, levels, levels,
		levels-1, levels, levels)

	lanes := int64(2<<30) / int64(chars) // 2 GB document, one strip per lane
	return Spec{
		Name: fmt.Sprintf("WTC-%d", sigma), Domain: "WTC", Config: sigma,
		Src: src, TotalLanes: lanes,
		HostCost: hostmodel.Cost{
			Bytes: float64(2<<30) * 2 * float64(levels), // level-wise passes
			Ops:   float64(2<<30) * float64(levels) * 2,
		},
		Desc: fmt.Sprintf("alphabet %d, %d levels, %d-char strips, 2 GB document", sigma, levels, chars),
	}
}

// wtCuts returns the per-level cut offsets of the unbalanced tree: each
// level cuts 5/8 of the (nominal) remaining span, which keeps the cut
// points off power-of-two boundaries so encodings are genuine comparisons.
func wtCuts(r, levels int) []int {
	cuts := make([]int, levels)
	span := r
	for l := 0; l < levels; l++ {
		cuts[l] = span * 5 / 8
		if cuts[l] < 1 {
			cuts[l] = 1
		}
		span -= cuts[l] // nominal upper-branch span
		if span < 2 {
			span = 2
		}
	}
	return cuts
}

// diffGen builds the DiffGen taxonomy encoding for `attrs` categorical
// attributes (4-bit codes, as census-style categorical data is stored):
// each attribute is generalized by its position among the two shared
// taxonomy-level cut points of the current specialization, emitting two
// indicator bits per attribute. One record per lane; all attributes of the
// record live in the lane, which is what makes the attribute count the
// footprint knob.
func diffGen(attrs int) Spec {
	src := fmt.Sprintf(`// DiffGen: taxonomy-tree generalization of record attributes.
node main(v: u4[%d]) returns (e: u1[%d])
let
  forall a in 0..%d {
    e[2*a] = v[a] >= 3:u4;
    e[2*a + 1] = v[a] >= 10:u4;
  }
tel
`, attrs, 2*attrs, attrs-1)

	records := int64(4<<30) * 2 / int64(attrs) // 4-bit attributes
	return Spec{
		Name: fmt.Sprintf("DiffGen-%d", attrs), Domain: "DiffGen", Config: attrs,
		Src: src, TotalLanes: records,
		HostCost: hostmodel.Cost{
			Bytes: float64(4<<30) * 2,
			Ops:   float64(records) * float64(attrs) * 2,
		},
		Desc: fmt.Sprintf("%d attributes x 4-bit over a 4 GB table", attrs),
	}
}

// sigWeight builds Significance Weighting normalization: users with fewer
// than 50 rated items get their statistics adjusted (by addition, as the
// paper specifies), and the deviation from the global mean is computed for
// downstream weighting. Element width is the Table II knob.
func sigWeight(width int) Spec {
	r := &rng{s: 0x165667B19E3779F9}
	c := randHex(r, width)
	m := randHex(r, width)
	src := fmt.Sprintf(`// Significance Weighting: normalize sparse users, deviation from mean.
node main(n: u16, s: u%d) returns (sp: u%d, dev: u%d)
vars t: u%d, few: u1;
let
  t = s + 0x%s:u%d;
  few = n < 50;
  sp = few ? t : s;
  dev = absdiff(sp, 0x%s:u%d);
tel
`, width, width, width, width, c, width, m, width)

	elemBytes := int64(width/8) + 108 // element plus its 864-bit identifier
	lanes := int64(4<<30) / elemBytes
	return Spec{
		Name: fmt.Sprintf("SW-%d", width), Domain: "SW", Config: width,
		Src: src, TotalLanes: lanes,
		HostCost: hostmodel.Cost{
			Bytes: float64(4<<30) * 2,
			Ops:   float64(lanes) * float64(width/16+4),
		},
		Desc: fmt.Sprintf("%d-bit elements + 864-bit ids over a 4 GB matrix", width),
	}
}

// randHex produces a deterministic width-bit hex constant (top bit clear so
// additions cannot be folded trivially, bottom bit set for the same
// reason).
func randHex(r *rng, width int) string {
	v := new(big.Int)
	for i := 0; i < (width+63)/64; i++ {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(r.next()))
	}
	mask := new(big.Int).Lsh(big.NewInt(1), uint(width-1))
	mask.Sub(mask, big.NewInt(1))
	v.And(v, mask)
	v.SetBit(v, 0, 1)
	return v.Text(16)
}

// LoC counts the non-blank, non-comment lines of a kernel source — the
// quantity Table III compares.
func LoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}
