package bench

import (
	"context"
	"fmt"

	"chopper"
	"chopper/internal/guard"
	"chopper/internal/isa"
)

// RecoveryPolicies lists the hardening policies the coverage sweep
// compares, in report order: no protection, whole-kernel TMR, and the two
// epoch-recovery detectors.
var RecoveryPolicies = []string{"plain", "tmr", "parity", "vote"}

// RecoveryPoint is one (fault model, policy) cell of a recovery coverage
// sweep.
type RecoveryPoint struct {
	// Model names the fault model ("tra", "copy", "decay").
	Model string
	// Policy names the hardening policy ("plain", "tmr", "parity", "vote").
	Policy string
	// SDCRate is the fraction of runs with silent data corruption.
	SDCRate float64
	// Detections/Corrected/Uncorrected total the recovery layer's epoch
	// outcomes across all runs (zero for plain and tmr).
	Detections  int
	Corrected   int
	Uncorrected int
	// UopOverhead is the micro-op cost of the policy relative to the
	// unprotected kernel: static program growth for TMR, measured
	// replay + detector work (averaged over runs) for epoch recovery.
	UopOverhead float64
	// TimeOverhead is the fault-free makespan of this policy's kernel
	// relative to the unprotected one (DRAM timing model).
	TimeOverhead float64
}

// RecoveryCoverageSweep measures the coverage-versus-overhead trade-off of
// the self-healing execution layer on one kernel source: the kernel is
// compiled unprotected, TMR-hardened, and recovery-enabled with each
// detector, then every variant runs `trials` random-input runs under each
// of three seeded fault models (TRA charge-sharing flips, AAP copy
// corruption, retention decay), calibrated to a few expected fault events
// per unprotected run. It returns a table (series = policy, one row per
// fault model, values = SDC rate) plus the per-cell detail points.
//
// This is the experiment behind the recovery section of
// docs/RELIABILITY.md: whole-kernel TMR masks transient faults at ~3x
// static cost on every run; epoch recovery buys comparable coverage for
// transient faults at ~1x (parity, storage faults only) to ~2x (vote) by
// paying for redundancy only where the detector demands it.
func RecoveryCoverageSweep(src string, arch isa.Arch, trials int, seed int64) (*Table, []RecoveryPoint, error) {
	return RecoveryCoverageSweepCtx(nil, src, arch, trials, seed, 0)
}

// RecoveryCoverageSweepCtx is RecoveryCoverageSweep under the guard layer
// with an explicit worker count (<= 0 means GOMAXPROCS); a canceled or
// deadline-expired context stops the sweep with the guard sentinel and no
// partial table.
func RecoveryCoverageSweepCtx(ctx context.Context, src string, arch isa.Arch, trials int, seed int64, workers int) (*Table, []RecoveryPoint, error) {
	wrap := func(what string, err error) error {
		if guard.IsGuard(err) {
			return err
		}
		return fmt.Errorf("bench: recovery sweep: %s: %w", what, err)
	}
	kernels := make(map[string]*chopper.Kernel, len(RecoveryPolicies))
	for _, pol := range RecoveryPolicies {
		opts := chopper.Options{Target: arch}
		switch pol {
		case "tmr":
			opts.Harden = true
		case "parity":
			opts.Recovery = chopper.Recovery{Detector: chopper.DetectorParity}
		case "vote":
			opts.Recovery = chopper.Recovery{Detector: chopper.DetectorVote}
		}
		k, err := chopper.CompileCtx(ctx, src, opts)
		if err != nil {
			return nil, nil, wrap("compile "+pol, err)
		}
		kernels[pol] = k
	}
	plainOps := len(kernels["plain"].Prog().Ops)
	models := RecoveryFaultModels(plainOps)

	cfgs := make([]chopper.FaultConfig, len(models))
	for i, m := range models {
		cfgs[i] = m.Cfg
	}
	reports := make(map[string]*chopper.ReliabilityReport, len(RecoveryPolicies))
	for _, pol := range RecoveryPolicies {
		rep, err := kernels[pol].ReliabilityCtx(ctx, trials, seed, cfgs, workers)
		if err != nil {
			return nil, nil, wrap(pol, err)
		}
		reports[pol] = rep
	}

	t := &Table{
		Title:  fmt.Sprintf("SDC rate vs fault model and policy (%v, %d trials)", arch, trials),
		Unit:   "fraction of runs corrupted",
		Series: RecoveryPolicies,
	}
	var points []RecoveryPoint
	plainTime := reports["plain"].TimeNs
	for i, m := range models {
		for _, pol := range RecoveryPolicies {
			pt := reports[pol].Points[i]
			p := RecoveryPoint{
				Model:       m.Name,
				Policy:      pol,
				SDCRate:     pt.SDCRate(),
				Detections:  pt.Recovery.Detections,
				Corrected:   pt.Recovery.Corrected,
				Uncorrected: pt.Recovery.Uncorrected,
			}
			switch pol {
			case "plain":
				p.UopOverhead = 1
			case "tmr":
				// TMR's cost is static program growth: every run pays it.
				p.UopOverhead = float64(len(kernels["tmr"].Prog().Ops)) / float64(plainOps)
			default:
				// Recovery's cost is measured: replayed spans plus detector
				// commands, averaged over the runs that were actually taken.
				extra := float64(pt.Recovery.WastedUops+pt.Recovery.DetectorCommands) / float64(pt.Runs)
				p.UopOverhead = (float64(plainOps) + extra) / float64(plainOps)
			}
			if plainTime > 0 {
				p.TimeOverhead = reports[pol].TimeNs / plainTime
			}
			points = append(points, p)
			t.Rows = append(t.Rows, Row{Workload: m.Name, Series: pol, Value: p.SDCRate})
		}
	}
	return t, points, nil
}

// RecoveryFaultModel is one seeded fault model of the coverage sweep.
type RecoveryFaultModel struct {
	Name string
	Cfg  chopper.FaultConfig
}

// RecoveryFaultModels builds the sweep's three fault models, calibrated to
// a program of `ops` micro-ops: transient rates target a few expected
// events per unprotected run (enough that most unprotected runs corrupt,
// while a replayed epoch under an independent draw is very likely clean),
// and the retention model refreshes every ops/8 operations so long-lived
// rows actually decay.
func RecoveryFaultModels(ops int) []RecoveryFaultModel {
	if ops < 1 {
		ops = 1
	}
	rate := 3.0 / float64(ops)
	refresh := ops / 8
	if refresh < 1 {
		refresh = 1
	}
	return []RecoveryFaultModel{
		{Name: "tra", Cfg: chopper.FaultConfig{TRAFlipRate: rate}},
		{Name: "copy", Cfg: chopper.FaultConfig{CopyFlipRate: rate}},
		{Name: "decay", Cfg: chopper.FaultConfig{RetentionRate: 4 * rate, RefreshOps: refresh}},
	}
}
