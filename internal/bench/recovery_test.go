package bench

import (
	"testing"

	"chopper/internal/isa"
	"chopper/internal/workloads"
)

func recoveryCell(t *testing.T, points []RecoveryPoint, model, policy string) RecoveryPoint {
	t.Helper()
	for _, p := range points {
		if p.Model == model && p.Policy == policy {
			return p
		}
	}
	t.Fatalf("missing sweep cell %s/%s", model, policy)
	return RecoveryPoint{}
}

// TestFaultCampaignSmoke is the CI fault campaign: two fault models
// (transient TRA flips, retention decay) crossed with three policies
// (unprotected, parity recovery, vote recovery) on a small kernel, run
// under -race in CI. It validates the campaign machinery — detectors
// fire, corrections happen, overheads are sane — not the coverage
// numbers; TestRecoveryCoverageAcceptance holds those.
func TestFaultCampaignSmoke(t *testing.T) {
	// Seed and trial count are chosen so every detector engages on this
	// deterministic campaign; the run stays cheap enough for -race CI.
	tbl, points, err := RecoveryCoverageSweep(sweepSrc, isa.Ambit, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	models := RecoveryFaultModels(1)
	if want := len(models) * len(RecoveryPolicies); len(tbl.Rows) != want || len(points) != want {
		t.Fatalf("sweep shape: %d rows / %d points, want %d", len(tbl.Rows), len(points), want)
	}
	for _, model := range []string{"tra", "decay"} {
		plain := recoveryCell(t, points, model, "plain")
		if plain.UopOverhead != 1 || plain.Detections != 0 {
			t.Errorf("%s/plain should be the unprotected reference, got %+v", model, plain)
		}
		for _, policy := range []string{"parity", "vote"} {
			p := recoveryCell(t, points, model, policy)
			if p.UopOverhead < 1 {
				t.Errorf("%s/%s overhead %.2f < 1 (recovery cannot be free)", model, policy, p.UopOverhead)
			}
			if p.SDCRate > plain.SDCRate {
				t.Errorf("%s/%s made reliability worse: %.2f vs plain %.2f", model, policy, p.SDCRate, plain.SDCRate)
			}
		}
		// The matched detector must actually engage on this campaign.
		det := "vote"
		if model == "decay" {
			det = "parity"
		}
		if p := recoveryCell(t, points, model, det); p.Detections == 0 {
			t.Errorf("%s/%s campaign fired no detections; fault calibration is off", model, det)
		}
	}
	if tmr := recoveryCell(t, points, "tra", "tmr"); tmr.UopOverhead < 2 {
		t.Errorf("TMR overhead %.2f implausibly low", tmr.UopOverhead)
	}
}

// TestRecoveryCoverageAcceptance holds the tentpole acceptance bar on the
// paper workloads: under each seeded transient fault model, epoch
// recovery (best detector) corrects at least 90% of the runs that fail
// unprotected, at less than 2x the micro-op overhead of whole-kernel TMR.
func TestRecoveryCoverageAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload fault campaign; skipped with -short")
	}
	const trials = 20
	for _, name := range []string{"DenseNet-16", "WTC-64", "SW-64", "DiffGen-64"} {
		spec, ok := workloads.Get(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		_, points, err := RecoveryCoverageSweep(spec.Src, isa.Ambit, trials, 23)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, model := range []string{"tra", "copy", "decay"} {
			plain := recoveryCell(t, points, model, "plain")
			tmr := recoveryCell(t, points, model, "tmr")
			best := recoveryCell(t, points, model, "vote")
			if par := recoveryCell(t, points, model, "parity"); par.SDCRate < best.SDCRate ||
				(par.SDCRate == best.SDCRate && par.UopOverhead < best.UopOverhead) {
				best = par
			}
			failing := plain.SDCRate * trials
			if failing < 3 {
				// The model barely bites this workload (faults land in
				// masked logic); a correction ratio over so few failing
				// runs is noise, and weakening the fault model to force
				// failures would test the calibration, not the recovery.
				continue
			}
			if best.SDCRate > 0.1*plain.SDCRate {
				t.Errorf("%s/%s: recovery (%s) leaves SDC %.3f vs plain %.3f — corrects < 90%% of failing runs",
					name, model, best.Policy, best.SDCRate, plain.SDCRate)
			}
			if best.UopOverhead >= 2*tmr.UopOverhead {
				t.Errorf("%s/%s: recovery (%s) overhead %.2fx >= 2x TMR's %.2fx",
					name, model, best.Policy, best.UopOverhead, tmr.UopOverhead)
			}
		}
	}
}
