package bench

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"chopper"
	"chopper/internal/isa"
)

const sweepSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func TestReliabilitySweep(t *testing.T) {
	rates := []float64{0, 1}
	tbl, overhead, err := ReliabilitySweep(sweepSrc, isa.Ambit, rates, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Rows); got != 2*len(rates) {
		t.Fatalf("table has %d rows, want %d", got, 2*len(rates))
	}
	cell := func(wl, series string) float64 {
		for _, r := range tbl.Rows {
			if r.Workload == wl && r.Series == series {
				return r.Value
			}
		}
		t.Fatalf("missing cell %s/%s", wl, series)
		return 0
	}
	if v := cell("rate=0", "plain"); v != 0 {
		t.Fatalf("plain SDC at rate 0 = %v", v)
	}
	if v := cell("rate=0", "tmr"); v != 0 {
		t.Fatalf("tmr SDC at rate 0 = %v", v)
	}
	// At rate 1 the single fault strikes the first TRA: replica
	// computation in the hardened build (outvoted), live logic in the
	// plain one (corrupts).
	plain, tmr := cell("rate=1", "plain"), cell("rate=1", "tmr")
	if plain == 0 {
		t.Fatal("plain kernel shows no SDC under guaranteed single faults")
	}
	if tmr != 0 {
		t.Fatalf("hardened kernel shows SDC under single faults: %v", tmr)
	}
	if overhead <= 1 {
		t.Fatalf("TMR latency overhead %v, want > 1", overhead)
	}
	if tbl.Render() == "" || tbl.CSV() == "" {
		t.Fatal("empty rendering")
	}
}

// A canceled sweep must stop promptly with the guard sentinel, report no
// table (a half-measured grid is not a result), and leave no worker
// goroutines behind.
func TestReliabilitySweepCtxCancelNoLeakNoPartial(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		tbl *Table
		err error
	}
	done := make(chan result, 1)
	go func() {
		// A large grid so cancellation lands mid-sweep.
		tbl, _, err := ReliabilitySweepCtx(ctx, sweepSrc, isa.Ambit,
			[]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}, 500, 7, 4)
		done <- result{tbl, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ReliabilitySweepCtx did not return after cancellation")
	}
	if !errors.Is(res.err, chopper.ErrCanceled) {
		t.Fatalf("canceled sweep returned %v, want chopper.ErrCanceled", res.err)
	}
	if res.tbl != nil {
		t.Fatalf("canceled sweep returned a table with %d rows", len(res.tbl.Rows))
	}

	deadline := time.Now().Add(5 * time.Second)
	after := runtime.NumGoroutine()
	for after > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after cancellation", before, after)
	}
}

// A pre-expired deadline stops the sweep before any work, with the
// deadline sentinel, at any worker count.
func TestReliabilitySweepCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, workers := range []int{1, 4} {
		tbl, _, err := ReliabilitySweepCtx(ctx, sweepSrc, isa.Ambit, []float64{0, 1}, 5, 7, workers)
		if !errors.Is(err, chopper.ErrDeadline) {
			t.Fatalf("workers=%d: %v does not match chopper.ErrDeadline", workers, err)
		}
		if tbl != nil {
			t.Fatalf("workers=%d: deadline-expired sweep returned a table", workers)
		}
	}
}

// The sweep grid fans out over a worker pool; the table must be
// byte-identical at any worker count (CI runs this under -cpu 1,4).
func TestDeterminismReliabilitySweepAcrossWorkers(t *testing.T) {
	rates := []float64{0, 0.5, 1}
	ref, refOverhead, err := ReliabilitySweepParallel(sweepSrc, isa.Ambit, rates, 5, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		tbl, overhead, err := ReliabilitySweepParallel(sweepSrc, isa.Ambit, rates, 5, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if overhead != refOverhead {
			t.Errorf("workers=%d: overhead %v != %v", workers, overhead, refOverhead)
		}
		if !reflect.DeepEqual(ref.Rows, tbl.Rows) {
			t.Errorf("workers=%d: table diverged from 1-worker reference", workers)
		}
	}
}
