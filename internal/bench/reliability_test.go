package bench

import (
	"reflect"
	"testing"

	"chopper/internal/isa"
)

const sweepSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func TestReliabilitySweep(t *testing.T) {
	rates := []float64{0, 1}
	tbl, overhead, err := ReliabilitySweep(sweepSrc, isa.Ambit, rates, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Rows); got != 2*len(rates) {
		t.Fatalf("table has %d rows, want %d", got, 2*len(rates))
	}
	cell := func(wl, series string) float64 {
		for _, r := range tbl.Rows {
			if r.Workload == wl && r.Series == series {
				return r.Value
			}
		}
		t.Fatalf("missing cell %s/%s", wl, series)
		return 0
	}
	if v := cell("rate=0", "plain"); v != 0 {
		t.Fatalf("plain SDC at rate 0 = %v", v)
	}
	if v := cell("rate=0", "tmr"); v != 0 {
		t.Fatalf("tmr SDC at rate 0 = %v", v)
	}
	// At rate 1 the single fault strikes the first TRA: replica
	// computation in the hardened build (outvoted), live logic in the
	// plain one (corrupts).
	plain, tmr := cell("rate=1", "plain"), cell("rate=1", "tmr")
	if plain == 0 {
		t.Fatal("plain kernel shows no SDC under guaranteed single faults")
	}
	if tmr != 0 {
		t.Fatalf("hardened kernel shows SDC under single faults: %v", tmr)
	}
	if overhead <= 1 {
		t.Fatalf("TMR latency overhead %v, want > 1", overhead)
	}
	if tbl.Render() == "" || tbl.CSV() == "" {
		t.Fatal("empty rendering")
	}
}

// The sweep grid fans out over a worker pool; the table must be
// byte-identical at any worker count (CI runs this under -cpu 1,4).
func TestDeterminismReliabilitySweepAcrossWorkers(t *testing.T) {
	rates := []float64{0, 0.5, 1}
	ref, refOverhead, err := ReliabilitySweepParallel(sweepSrc, isa.Ambit, rates, 5, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		tbl, overhead, err := ReliabilitySweepParallel(sweepSrc, isa.Ambit, rates, 5, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if overhead != refOverhead {
			t.Errorf("workers=%d: overhead %v != %v", workers, overhead, refOverhead)
		}
		if !reflect.DeepEqual(ref.Rows, tbl.Rows) {
			t.Errorf("workers=%d: table diverged from 1-worker reference", workers)
		}
	}
}
