package bench

import (
	"testing"

	"chopper/internal/isa"
)

const sweepSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func TestReliabilitySweep(t *testing.T) {
	rates := []float64{0, 1}
	tbl, overhead, err := ReliabilitySweep(sweepSrc, isa.Ambit, rates, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Rows); got != 2*len(rates) {
		t.Fatalf("table has %d rows, want %d", got, 2*len(rates))
	}
	cell := func(wl, series string) float64 {
		for _, r := range tbl.Rows {
			if r.Workload == wl && r.Series == series {
				return r.Value
			}
		}
		t.Fatalf("missing cell %s/%s", wl, series)
		return 0
	}
	if v := cell("rate=0", "plain"); v != 0 {
		t.Fatalf("plain SDC at rate 0 = %v", v)
	}
	if v := cell("rate=0", "tmr"); v != 0 {
		t.Fatalf("tmr SDC at rate 0 = %v", v)
	}
	// At rate 1 the single fault strikes the first TRA: replica
	// computation in the hardened build (outvoted), live logic in the
	// plain one (corrupts).
	plain, tmr := cell("rate=1", "plain"), cell("rate=1", "tmr")
	if plain == 0 {
		t.Fatal("plain kernel shows no SDC under guaranteed single faults")
	}
	if tmr != 0 {
		t.Fatalf("hardened kernel shows SDC under single faults: %v", tmr)
	}
	if overhead <= 1 {
		t.Fatalf("TMR latency overhead %v, want > 1", overhead)
	}
	if tbl.Render() == "" || tbl.CSV() == "" {
		t.Fatal("empty rendering")
	}
}
