package bench

import (
	"strings"
	"testing"

	"chopper/internal/isa"
	"chopper/internal/obs"
	"chopper/internal/vircoe"
	"chopper/internal/workloads"
)

func TestPUDTimePositiveAndCached(t *testing.T) {
	h := NewHarness()
	spec := workloads.Build("DiffGen", 64)
	cfg := DefaultConfig()
	t1, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, obs.Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= 0 {
		t.Fatal("non-positive time")
	}
	t2, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, obs.Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Errorf("measurement not deterministic: %f vs %f", t1, t2)
	}
}

func TestChopperBeatsHandsTuned(t *testing.T) {
	h := NewHarness()
	cfg := DefaultConfig()
	for _, spec := range QuickWorkloads() {
		for _, arch := range isa.AllArchs {
			hand, err := h.PUDTimeNs(spec, arch, HandsTuned, obs.Full, cfg)
			if err != nil {
				t.Fatal(err)
			}
			chop, err := h.PUDTimeNs(spec, arch, Chopper, obs.Full, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if chop >= hand {
				t.Errorf("%s/%v: CHOPPER (%.0f) not faster than hands-tuned (%.0f)", spec.Name, arch, chop, hand)
			}
		}
	}
}

func TestSpillRegimeSpeedupLarger(t *testing.T) {
	// Figure 9's second observation: the CHOPPER-over-hands-tuned speedup
	// is much larger when the baseline spills (config 4) than when it fits
	// (config 1).
	h := NewHarness()
	cfg := DefaultConfig()
	for _, domain := range []string{"DiffGen", "SW"} {
		fit := workloads.Build(domain, workloads.Configs[domain][0])
		spill := workloads.Build(domain, workloads.Configs[domain][3])

		fitSpills, err := h.SpillsInBaseline(fit, isa.Ambit)
		if err != nil {
			t.Fatal(err)
		}
		spillSpills, err := h.SpillsInBaseline(spill, isa.Ambit)
		if err != nil {
			t.Fatal(err)
		}
		if fitSpills {
			t.Errorf("%s: smallest config spills in baseline", fit.Name)
		}
		if !spillSpills {
			t.Errorf("%s: largest config does not spill in baseline", spill.Name)
		}

		speedup := func(spec workloads.Spec) float64 {
			hand, err := h.PUDTimeNs(spec, isa.Ambit, HandsTuned, obs.Full, cfg)
			if err != nil {
				t.Fatal(err)
			}
			chop, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, obs.Full, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return hand / chop
		}
		sFit, sSpill := speedup(fit), speedup(spill)
		if sSpill <= sFit {
			t.Errorf("%s: spill-regime speedup (%.2f) not larger than fit-regime (%.2f)", domain, sSpill, sFit)
		}
	}
}

func TestBreakdownMonotonic(t *testing.T) {
	// Figure 10: each added OBS optimization must not slow things down.
	h := NewHarness()
	cfg := DefaultConfig()
	for _, spec := range QuickWorkloads() {
		var prev float64
		for i, v := range obs.AllVariants {
			ns, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && ns > prev*1.02 { // 2% tolerance for scheduling noise
				t.Errorf("%s: variant %v (%.0f ns) slower than previous (%.0f ns)", spec.Name, v, ns, prev)
			}
			prev = ns
		}
	}
}

func TestFig11RobustAcrossSubarraySizes(t *testing.T) {
	h := NewHarness()
	spec := workloads.Build("SW", 64)
	for _, rows := range []int{512, 1024, 2048} {
		cfg := DefaultConfig()
		cfg.Geom = cfg.Geom.WithRowsPerSub(rows)
		hand, err := h.PUDTimeNs(spec, isa.Ambit, HandsTuned, obs.Full, cfg)
		if err != nil {
			t.Fatal(err)
		}
		chop, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, obs.Full, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if chop >= hand {
			t.Errorf("rows=%d: CHOPPER (%.0f) not faster than hands-tuned (%.0f)", rows, chop, hand)
		}
	}
}

func TestFig12SALPAmplifies(t *testing.T) {
	h := NewHarness()
	spec := workloads.Build("DenseNet", 16)
	base := DefaultConfig()
	base.Placements = base.Geom.Banks * 4

	timeWith := func(mode vircoe.Mode, salp bool) float64 {
		cfg := base
		cfg.Mode = mode
		cfg.SALP = salp
		ns, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, obs.Full, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	subNo := timeWith(vircoe.SubarrayAware, false)
	subYes := timeWith(vircoe.SubarrayAware, true)
	bankNo := timeWith(vircoe.BankAware, false)
	bankYes := timeWith(vircoe.BankAware, true)

	if subYes >= subNo {
		t.Errorf("SALP did not speed up subarray-aware emission: %.0f vs %.0f", subYes, subNo)
	}
	if subYes >= bankYes {
		t.Errorf("with SALP, subarray-aware (%.0f) should beat bank-aware (%.0f)", subYes, bankYes)
	}
	if subNo < bankNo*0.98 {
		t.Errorf("without SALP, subarray-aware (%.0f) should not beat bank-aware (%.0f)", subNo, bankNo)
	}
}

func TestCPUGPUModels(t *testing.T) {
	spec := workloads.Build("WTC", 64)
	cpu := CPUTimeNs(spec)
	gpu := GPUTimeNs(spec)
	if cpu <= 0 || gpu <= 0 {
		t.Fatal("non-positive host time")
	}
	if gpu >= cpu {
		t.Error("GPU should beat CPU on streaming workloads")
	}
}

func TestTable3Shape(t *testing.T) {
	h := NewHarness()
	tab, err := h.Table3()
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[2]string]float64{}
	for _, r := range tab.Rows {
		byCell[[2]string{r.Workload, r.Series}] = r.Value
	}
	for _, d := range workloads.Domains {
		name := workloads.Build(d, workloads.Configs[d][1]).Name
		single := byCell[[2]string{name, "hand-single"}]
		all := byCell[[2]string{name, "hand-all"}]
		ch := byCell[[2]string{name, "CHOPPER"}]
		if !(ch < single && single < all) {
			t.Errorf("%s: LoC ordering broken: chopper=%.0f single=%.0f all=%.0f", name, ch, single, all)
		}
		if all < 1000*ch {
			t.Errorf("%s: all-subarray hands-tuning (%.0f) not >10^3x CHOPPER (%.0f)", name, all, ch)
		}
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(Table1(), "DDR4-2400") {
		t.Error("Table1 missing DRAM config")
	}
	if !strings.Contains(Table2(), "DenseNet-16") {
		t.Error("Table2 missing workloads")
	}
	tab := &Table{Title: "t", Unit: "x", Rows: []Row{{"w", "s", 1.5}}}
	if !strings.Contains(tab.Render(), "1.50") {
		t.Error("Render lost values")
	}
}

func TestGeoMean(t *testing.T) {
	tab := &Table{Rows: []Row{{"a", "s", 2}, {"b", "s", 8}}}
	if g := tab.GeoMean("s"); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %f, want 4", g)
	}
	if g := tab.GeoMean("none"); g != 0 {
		t.Errorf("geomean of empty series = %f", g)
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	h := NewHarness()
	bad := workloads.Spec{Name: "bad", Src: "node main(", TotalLanes: 1}
	if _, err := h.PUDTimeNs(bad, isa.Ambit, Chopper, obs.Full, DefaultConfig()); err == nil {
		t.Error("compile error swallowed")
	}
	// Cached error resurfaces.
	if _, err := h.PUDTimeNs(bad, isa.Ambit, Chopper, obs.Full, DefaultConfig()); err == nil {
		t.Error("cached compile error swallowed")
	}
}

// Smoke-run every experiment generator on a single tiny workload so the
// table plumbing stays covered without the full sweep's cost.
func TestExperimentGeneratorsSmoke(t *testing.T) {
	h := NewHarness()
	sel := Selection{workloads.Build("SW", 64)}
	for name, f := range map[string]func(Selection) (*Table, error){
		"fig9":        h.Fig9,
		"fig9summary": h.Fig9Speedups,
		"fig10":       h.Fig10,
		"fig11":       h.Fig11,
		"emission":    h.EmissionStudy,
		"energy":      h.EnergyStudy,
	} {
		tab, err := f(sel)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
		if tab.Render() == "" {
			t.Errorf("%s: empty render", name)
		}
	}
	// Fig12 uses many placements; run it on the tiniest workload only.
	if tab, err := h.Fig12(Selection{workloads.Build("DiffGen", 64)}); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("fig12: %v", err)
	}
}

func TestSSDStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("SSD sweep compiles the largest configurations")
	}
	h := NewHarness()
	tab, err := h.SSDStudy()
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[2]string]float64{}
	for _, r := range tab.Rows {
		byCell[[2]string{r.Workload, r.Series}] = r.Value
	}
	for _, d := range workloads.Domains {
		name := workloads.Build(d, workloads.Configs[d][3]).Name
		sata := byCell[[2]string{name, "hand/SATA"}]
		nvme := byCell[[2]string{name, "hand/NVMe"}]
		xl := byCell[[2]string{name, "hand/XL-Flash"}]
		if !(xl < nvme && nvme < sata) {
			t.Errorf("%s: faster storage did not help hands-tuned: %f %f %f", name, sata, nvme, xl)
		}
		if xl <= 1 {
			t.Errorf("%s: hands-tuned beat CHOPPER even on XL-Flash (%f)", name, xl)
		}
	}
}

func TestCSVRender(t *testing.T) {
	tab := &Table{
		Series: []string{"s1", "s2"},
		Rows: []Row{
			{"w1", "s1", 1.5}, {"w1", "s2", 2},
			{"w2", "s1", 3},
		},
	}
	csv := tab.CSV()
	want := "workload,s1,s2\nw1,1.5,2\nw2,3,\n"
	if csv != want {
		t.Errorf("CSV:\n%q\nwant\n%q", csv, want)
	}
}
