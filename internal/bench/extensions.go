package bench

import (
	"fmt"

	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/obs"
	"chopper/internal/ssd"
	"chopper/internal/vircoe"
	"chopper/internal/workloads"
)

// The experiments in this file go beyond the paper's evaluation section —
// ablations the DESIGN.md calls out: the emission-strategy study behind
// Figure 5, and a DRAM energy comparison (the ELP2IM line of work is
// motivated by energy, which the paper leaves implicit).

// EmissionStudy compares the three code-emission strategies over the same
// compiled kernel: naive serial broadcast (Figure 5A), the lockstep
// bank-parallel broadcast of the bbop interface, and VIRCOE (Figure 5B).
// Values are the makespan of one wave, normalized to VIRCOE = 1.
func (h *Harness) EmissionStudy(sel Selection) (*Table, error) {
	cfg := DefaultConfig()
	t := &Table{
		Title:  "Emission study (Ambit, bitslice-variant code): wave makespan relative to VIRCOE",
		Unit:   "slowdown vs VIRCOE (x)",
		Series: []string{"serial", "lockstep", "VIRCOE"},
	}
	for _, spec := range sel {
		// The bitslice variant still host-writes constant rows, so the
		// stream carries real transfers for the strategies to overlap
		// (fully optimized code in the fit regime has almost none, and
		// all bank-parallel strategies coincide on pure computation).
		c, err := h.compile(spec, isa.Ambit, Chopper, obs.Bitslice, cfg.Geom)
		if err != nil {
			return nil, err
		}
		prog := residentProgram(c.prog, c.constTags)
		pls, err := vircoe.Placements(cfg.Geom, cfg.placements())
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		timing := dram.TimingFor(isa.Ambit, cfg.Geom)

		measure := func(feed func(vircoe.Sink)) float64 {
			dev := ssd.New(ssd.DefaultConfig())
			eng := getEngine(cfg.Geom, timing, cfg.SALP)
			defer putEngine(eng)
			rowBytes := cfg.Geom.RowBytes
			eng.SSDDelay = func(out bool, slot uint64, start float64) float64 {
				if out {
					return dev.Write(slot, rowBytes, start)
				}
				return dev.Read(slot, start)
			}
			feed(func(p dram.Placed) { eng.Issue(p) })
			return eng.Makespan()
		}
		vir := measure(func(s vircoe.Sink) { vircoe.EmitTo(prog, pls, cfg.Mode, timing, s) })
		ser := measure(func(s vircoe.Sink) { vircoe.SerialTo(prog, pls, s) })
		lock := measure(func(s vircoe.Sink) { vircoe.LockstepTo(prog, pls, s) })
		t.Rows = append(t.Rows,
			Row{spec.Name, "serial", ser / vir},
			Row{spec.Name, "lockstep", lock / vir},
			Row{spec.Name, "VIRCOE", 1.0})
	}
	return t, nil
}

// EnergyStudy compares DRAM energy per processed element: hands-tuned
// versus CHOPPER on each PUD architecture. Spill traffic's channel I/O is
// included; SSD-internal energy is not.
func (h *Harness) EnergyStudy(sel Selection) (*Table, error) {
	cfg := DefaultConfig()
	t := &Table{
		Title: "Energy study: DRAM energy per element",
		Unit:  "pJ/element",
		Series: []string{
			"Ambit-hand", "Ambit-CHOPPER",
			"ELP2IM-hand", "ELP2IM-CHOPPER",
			"SIMDRAM-hand", "SIMDRAM-CHOPPER"},
	}
	for _, spec := range sel {
		for _, arch := range isa.AllArchs {
			for _, comp := range []Compiler{HandsTuned, Chopper} {
				pj, err := h.PUDEnergyPJ(spec, arch, comp, obs.Full, cfg)
				if err != nil {
					return nil, err
				}
				label := arch.String() + "-hand"
				if comp == Chopper {
					label = arch.String() + "-CHOPPER"
				}
				t.Rows = append(t.Rows, Row{spec.Name, label, pj})
			}
		}
	}
	return t, nil
}

// SSDStudy sweeps the spill device's speed and reports the hands-tuned
// and CHOPPER times on the largest (spill-regime) configuration of each
// domain, normalized to the CHOPPER time on the default (Table I) drive.
// It answers "how much of the spill-regime gap is the storage device":
// hands-tuned improves with faster storage but stays behind, because
// CHOPPER's bit-granularity footprints avoid the device altogether.
func (h *Harness) SSDStudy() (*Table, error) {
	cfg := DefaultConfig()
	t := &Table{
		Title: "SSD sensitivity: spill-regime time vs storage speed (Ambit)",
		Unit:  "slowdown vs CHOPPER on the default drive (x)",
		Series: []string{
			"hand/SATA", "hand/NVMe", "hand/XL-Flash",
			"CHOPPER/SATA"},
	}
	drives := []struct {
		name           string
		readNs, progNs float64
	}{
		{"SATA", 50_000, 600_000},   // the Table I drive
		{"NVMe", 20_000, 100_000},   // mainstream TLC NVMe
		{"XL-Flash", 4_000, 30_000}, // low-latency storage class
	}
	for _, domain := range workloads.Domains {
		spec := workloads.Build(domain, workloads.Configs[domain][3])
		base, err := h.pudTimeWithSSD(spec, Chopper, cfg, drives[0].readNs, drives[0].progNs)
		if err != nil {
			return nil, err
		}
		for _, d := range drives {
			hand, err := h.pudTimeWithSSD(spec, HandsTuned, cfg, d.readNs, d.progNs)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{spec.Name, "hand/" + d.name, hand / base})
		}
		t.Rows = append(t.Rows, Row{spec.Name, "CHOPPER/SATA", 1.0})
	}
	return t, nil
}

// pudTimeWithSSD is PUDTimeNs with custom spill-device latencies.
func (h *Harness) pudTimeWithSSD(spec workloads.Spec, comp Compiler, cfg Config, readNs, progNs float64) (float64, error) {
	c, err := h.compile(spec, isa.Ambit, comp, obs.Full, cfg.Geom)
	if err != nil {
		return 0, err
	}
	lanesPerTile := int64(cfg.Geom.Bitlines())
	tiles := (spec.TotalLanes + lanesPerTile - 1) / lanesPerTile
	inFlight := int64(cfg.placements())
	if inFlight > tiles {
		inFlight = tiles
	}
	pls, err := vircoe.Placements(cfg.Geom, int(inFlight))
	if err != nil {
		return 0, fmt.Errorf("bench: %s: %w", spec.Name, err)
	}
	timing := dram.TimingFor(isa.Ambit, cfg.Geom)
	prog := residentProgram(c.prog, c.constTags)

	sc := ssd.DefaultConfig()
	sc.ReadLatencyNs = readNs
	sc.ProgramLatencyNs = progNs
	dev := ssd.New(sc)
	eng := getEngine(cfg.Geom, timing, cfg.SALP)
	defer putEngine(eng)
	rowBytes := cfg.Geom.RowBytes
	eng.SSDDelay = func(out bool, slot uint64, start float64) float64 {
		if out {
			return dev.Write(slot, rowBytes, start)
		}
		return dev.Read(slot, start)
	}
	sink := func(p dram.Placed) { eng.Issue(p) }
	if comp == Chopper {
		vircoe.EmitTo(prog, pls, cfg.Mode, timing, sink)
	} else {
		vircoe.LockstepTo(prog, pls, sink)
	}
	waves := (tiles + inFlight - 1) / inFlight
	return eng.Makespan() * float64(waves), nil
}

// PUDEnergyPJ measures the full-problem DRAM energy per element.
func (h *Harness) PUDEnergyPJ(spec workloads.Spec, arch isa.Arch, comp Compiler, v obs.Variant, cfg Config) (float64, error) {
	c, err := h.compile(spec, arch, comp, v, cfg.Geom)
	if err != nil {
		return 0, fmt.Errorf("bench: %s/%v/%v: %w", spec.Name, arch, comp, err)
	}
	prog := residentProgram(c.prog, c.constTags)
	timing := dram.TimingFor(arch, cfg.Geom)
	var perTile float64
	for i := range prog.Ops {
		perTile += timing.OpEnergyPJ(&prog.Ops[i])
	}
	lanesPerTile := float64(cfg.Geom.Bitlines())
	return perTile / lanesPerTile, nil
}
