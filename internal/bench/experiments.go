package bench

import (
	"fmt"

	"chopper/internal/dfg"
	"chopper/internal/dram"
	"chopper/internal/hostmodel"
	"chopper/internal/isa"
	"chopper/internal/obs"
	"chopper/internal/ssd"
	"chopper/internal/vircoe"
	"chopper/internal/workloads"
)

// Selection narrows an experiment to a subset of workloads (nil = all 16).
type Selection []workloads.Spec

// AllWorkloads selects the full Table II set.
func AllWorkloads() Selection { return workloads.All() }

// QuickWorkloads selects one small configuration per domain, for smoke
// runs and Go benchmarks.
func QuickWorkloads() Selection {
	var out Selection
	for _, d := range workloads.Domains {
		out = append(out, workloads.Build(d, workloads.Configs[d][0]))
	}
	return out
}

// Fig9 reproduces Figure 9: speedup over the Skylake CPU of the TITAN V
// GPU and of the three PUD architectures under the hands-tuned methodology
// and under CHOPPER.
func (h *Harness) Fig9(sel Selection) (*Table, error) {
	cfg := DefaultConfig()
	t := &Table{
		Title: "Figure 9: speedup over Intel Skylake multi-core CPU",
		Unit:  "speedup (x)",
		Series: []string{"TITAN V",
			"Ambit-hand", "Ambit-CHOPPER",
			"ELP2IM-hand", "ELP2IM-CHOPPER",
			"SIMDRAM-hand", "SIMDRAM-CHOPPER"},
	}
	for _, spec := range sel {
		cpu := CPUTimeNs(spec)
		t.Rows = append(t.Rows, Row{spec.Name, "TITAN V", cpu / GPUTimeNs(spec)})
		for _, arch := range isa.AllArchs {
			hand, err := h.PUDTimeNs(spec, arch, HandsTuned, obs.Full, cfg)
			if err != nil {
				return nil, err
			}
			chop, err := h.PUDTimeNs(spec, arch, Chopper, obs.Full, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows,
				Row{spec.Name, arch.String() + "-hand", cpu / hand},
				Row{spec.Name, arch.String() + "-CHOPPER", cpu / chop})
		}
	}
	return t, nil
}

// Fig9Speedups summarizes CHOPPER-over-hands-tuned speedups per
// architecture, split into the fit and spill regimes (the paper's headline
// numbers: 1.20/1.29/1.26x fit, 12.61/9.05/9.81x spill).
func (h *Harness) Fig9Speedups(sel Selection) (*Table, error) {
	cfg := DefaultConfig()
	t := &Table{
		Title:  "Figure 9 summary: CHOPPER speedup over hands-tuned codes",
		Unit:   "speedup (x)",
		Series: []string{"Ambit", "ELP2IM", "SIMDRAM"},
	}
	for _, spec := range sel {
		for _, arch := range isa.AllArchs {
			hand, err := h.PUDTimeNs(spec, arch, HandsTuned, obs.Full, cfg)
			if err != nil {
				return nil, err
			}
			chop, err := h.PUDTimeNs(spec, arch, Chopper, obs.Full, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{spec.Name, arch.String(), hand / chop})
		}
	}
	return t, nil
}

// SpillsInBaseline reports whether the hands-tuned compilation of spec
// spills (the regime split used when summarizing Figure 9).
func (h *Harness) SpillsInBaseline(spec workloads.Spec, arch isa.Arch) (bool, error) {
	c, err := h.compile(spec, arch, HandsTuned, obs.Full, dram.DefaultGeometry())
	if err != nil {
		return false, err
	}
	return c.baseStats.SpilledValues > 0, nil
}

// Table3 reproduces Table III: lines of code of the hands-tuned
// methodology (single subarray / all subarrays) versus CHOPPER, one
// representative configuration (the second) per domain.
func (h *Harness) Table3() (*Table, error) {
	geom := dram.DefaultGeometry()
	t := &Table{
		Title:  "Table III: lines of code",
		Unit:   "LoC",
		Series: []string{"hand-single", "hand-all", "CHOPPER"},
	}
	for _, d := range workloads.Domains {
		spec := workloads.Build(d, workloads.Configs[d][1])
		g, err := buildGraph(spec.Src)
		if err != nil {
			return nil, err
		}
		// Hands-tuned single-subarray code: one line per multi-bit macro
		// (bbop call), plus allocation/free per named value and
		// transposition/write per input — the boilerplate the SIMDRAM
		// interface requires (Figure 3A). Note the counting is honest
		// rather than calibrated: our dataflow language packs several
		// operations per source line, so the reduction factors exceed
		// the paper's 3.2-5.1x (see EXPERIMENTS.md).
		ops, values, inputs := 0, 0, len(g.Inputs)
		for i := range g.Values {
			k := g.Values[i].Kind
			if !isLeafKind(k) {
				ops++
				values++
			} else if k == dfg.OpConst {
				values++
			}
		}
		single := ops + 2*values + 2*inputs
		all := single * geom.Banks * geom.SubarraysPB
		t.Rows = append(t.Rows,
			Row{spec.Name, "hand-single", float64(single)},
			Row{spec.Name, "hand-all", float64(all)},
			Row{spec.Name, "CHOPPER", float64(workloads.LoC(spec.Src))})
	}
	return t, nil
}

// Fig10 reproduces Figure 10 / Table IV: the OBS breakdown on Ambit —
// speedup over the CPU of the bitslice / schedule / reuse / rename
// variants (plus the GPU reference).
func (h *Harness) Fig10(sel Selection) (*Table, error) {
	cfg := DefaultConfig()
	t := &Table{
		Title:  "Figure 10: CHOPPER breakdown on Ambit, speedup over CPU",
		Unit:   "speedup (x)",
		Series: []string{"TITAN V", "bitslice", "schedule", "reuse", "rename"},
	}
	for _, spec := range sel {
		cpu := CPUTimeNs(spec)
		t.Rows = append(t.Rows, Row{spec.Name, "TITAN V", cpu / GPUTimeNs(spec)})
		for _, v := range obs.AllVariants {
			ns, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, v, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{spec.Name, v.String(), cpu / ns})
		}
	}
	return t, nil
}

// Fig11 reproduces Figure 11: sensitivity to the subarray size (512 /
// 1024 / 2048 rows, fixed total capacity) for hands-tuned and CHOPPER on
// Ambit, as speedup over the CPU.
func (h *Harness) Fig11(sel Selection) (*Table, error) {
	t := &Table{
		Title: "Figure 11: subarray-size sensitivity (Ambit), speedup over CPU",
		Unit:  "speedup (x)",
		Series: []string{
			"hand-512", "CHOPPER-512",
			"hand-1024", "CHOPPER-1024",
			"hand-2048", "CHOPPER-2048"},
	}
	for _, rows := range []int{512, 1024, 2048} {
		cfg := DefaultConfig()
		cfg.Geom = cfg.Geom.WithRowsPerSub(rows)
		for _, spec := range sel {
			cpu := CPUTimeNs(spec)
			hand, err := h.PUDTimeNs(spec, isa.Ambit, HandsTuned, obs.Full, cfg)
			if err != nil {
				return nil, err
			}
			chop, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, obs.Full, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows,
				Row{spec.Name, fmt.Sprintf("hand-%d", rows), cpu / hand},
				Row{spec.Name, fmt.Sprintf("CHOPPER-%d", rows), cpu / chop})
		}
	}
	return t, nil
}

// Fig12 reproduces Figure 12: bank-aware versus subarray-aware VIRCOE,
// with and without SALP, for the CHOPPER-bitslice and CHOPPER-rename
// variants on Ambit (exactly the comparison the paper describes), as
// speedup over the CPU. All runs oversubscribe each bank with four tiles
// so that same-bank scheduling matters.
func (h *Harness) Fig12(sel Selection) (*Table, error) {
	t := &Table{
		Title: "Figure 12: VIRCOE awareness x SALP (Ambit), speedup over CPU",
		Unit:  "speedup (x)",
	}
	for _, v := range []obs.Variant{obs.Bitslice, obs.Rename} {
		for _, salp := range []bool{false, true} {
			for _, mode := range []vircoe.Mode{vircoe.BankAware, vircoe.SubarrayAware} {
				cfg := DefaultConfig()
				cfg.SALP = salp
				cfg.Mode = mode
				cfg.Placements = cfg.Geom.Banks * 4
				name := v.String() + "/bank"
				if mode == vircoe.SubarrayAware {
					name = v.String() + "/sub"
				}
				if salp {
					name += "/SALP"
				} else {
					name += "/noSALP"
				}
				t.Series = append(t.Series, name)
				for _, spec := range sel {
					cpu := CPUTimeNs(spec)
					ns, err := h.PUDTimeNs(spec, isa.Ambit, Chopper, v, cfg)
					if err != nil {
						return nil, err
					}
					t.Rows = append(t.Rows, Row{spec.Name, name, cpu / ns})
				}
			}
		}
	}
	return t, nil
}

// Table1 renders the evaluated system configurations.
func Table1() string {
	g := dram.DefaultGeometry()
	cpu := CPUDescription()
	gpu := GPUDescription()
	s := ssd.DefaultConfig()
	return fmt.Sprintf(`Table I: evaluated system configurations
  CPU:  %s
  GPU:  %s
  PUD:  DDR4-2400, 1 channel, 1 rank, %d banks, %d subarrays/bank,
        %d rows/subarray (%d data rows), %d B rows (%d SIMD lanes)
  SSD:  %d GB, %d channel(s), %d chip(s)/channel, %d die(s)/chip,
        tR %.0f us, tPROG %.0f us
`, cpu, gpu,
		g.Banks, g.SubarraysPB, g.RowsPerSub, g.DRows(), g.RowBytes, g.Bitlines(),
		s.CapacityBytes>>30, s.Channels, s.ChipsPerCh, s.DiesPerChip,
		s.ReadLatencyNs/1000, s.ProgramLatencyNs/1000)
}

// CPUDescription and GPUDescription summarize the host models.
func CPUDescription() string {
	m := hostmodel.Skylake()
	return fmt.Sprintf("%s, %.1f GB/s memory, %.0f Gop/s", m.Name, m.MemBWGBs, m.GopsPerSec)
}

// GPUDescription summarizes the GPU model.
func GPUDescription() string {
	m := hostmodel.TitanV()
	return fmt.Sprintf("%s, %.1f GB/s memory, %.0f Gop/s", m.Name, m.MemBWGBs, m.GopsPerSec)
}

// Table2 renders the workload configurations.
func Table2() string {
	var sb []byte
	sb = append(sb, "Table II: workload configurations\n"...)
	for _, s := range workloads.All() {
		sb = append(sb, fmt.Sprintf("  %-14s %s\n", s.Name, s.Desc)...)
	}
	return string(sb)
}

func isLeafKind(k dfg.OpKind) bool {
	return k == dfg.OpInput || k == dfg.OpConst
}
