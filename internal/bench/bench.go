// Package bench is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (Section VIII) from the compiled
// workloads, the DRAM/SSD timing models, and the host machine models.
//
// The execution-time methodology mirrors the paper's setup: a workload's
// data is tiled over subarrays (one element per bitline, 65536 lanes per
// subarray); a wave of tiles — one subarray per bank, or several with SALP
// — executes the compiled kernel; the wave's issue stream is produced by
// VIRCOE (CHOPPER) or by naive serial broadcast (hands-tuned baseline),
// and its makespan is measured on the command-level DRAM engine with SSD
// spill charging; the whole problem is waves x wave-makespan.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"chopper/internal/baseline"
	"chopper/internal/bitslice"
	"chopper/internal/codegen"
	"chopper/internal/dfg"
	"chopper/internal/dram"
	"chopper/internal/dsl"
	"chopper/internal/hostmodel"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/obs"
	"chopper/internal/ssd"
	"chopper/internal/typecheck"
	"chopper/internal/vircoe"
	"chopper/internal/workloads"
)

// Compiler selects which code generator produces the kernel.
type Compiler int

const (
	// HandsTuned is the SIMDRAM methodology baseline.
	HandsTuned Compiler = iota
	// Chopper is the CHOPPER pipeline (at some OBS variant).
	Chopper
)

func (c Compiler) String() string {
	if c == HandsTuned {
		return "hand"
	}
	return "chopper"
}

// Config fixes the machine-side parameters of an experiment.
type Config struct {
	Geom       dram.Geometry
	SALP       bool
	Mode       vircoe.Mode
	Placements int // tiles in flight per wave; 0 = one per bank
}

// DefaultConfig is the Table I machine: default geometry, BLP only.
func DefaultConfig() Config {
	return Config{Geom: dram.DefaultGeometry(), Mode: vircoe.BankAware}
}

func (c Config) placements() int {
	if c.Placements > 0 {
		return c.Placements
	}
	return c.Geom.Banks
}

// Key identifies a compiled artifact for caching.
type key struct {
	workload string
	arch     isa.Arch
	compiler Compiler
	variant  obs.Variant
	rows     int
}

// Harness compiles workloads on demand and measures them. It is safe for
// concurrent use.
type Harness struct {
	mu    sync.Mutex
	progs map[key]*compiled
}

type compiled struct {
	prog      *isa.Program
	stats     codegen.Stats
	baseStats baseline.Stats
	graph     *dfg.Graph
	constTags map[int]bool
	err       error
}

// NewHarness creates an empty harness.
func NewHarness() *Harness {
	return &Harness{progs: make(map[key]*compiled)}
}

func buildGraph(src string) (*dfg.Graph, error) {
	prog, err := dsl.ParseAndExpand(src)
	if err != nil {
		return nil, err
	}
	ch, err := typecheck.Check(prog)
	if err != nil {
		return nil, err
	}
	return dfg.Build(ch)
}

// compile returns (caching) the compiled program for a workload.
func (h *Harness) compile(spec workloads.Spec, arch isa.Arch, comp Compiler, v obs.Variant, geom dram.Geometry) (*compiled, error) {
	k := key{spec.Name, arch, comp, v, geom.DRows()}
	h.mu.Lock()
	if c, ok := h.progs[k]; ok {
		h.mu.Unlock()
		return c, c.err
	}
	h.mu.Unlock()

	c := &compiled{}
	graph, err := buildGraph(spec.Src)
	if err != nil {
		c.err = err
	} else {
		c.graph = graph
		switch comp {
		case HandsTuned:
			res, err := baseline.Generate(graph, baseline.Options{Arch: arch, DRows: geom.DRows()})
			if err != nil {
				c.err = err
			} else {
				c.prog = res.Prog
				c.baseStats = res.Stats
				c.constTags = make(map[int]bool, len(res.ConstPattern))
				for tag := range res.ConstPattern {
					c.constTags[tag] = true
				}
			}
		case Chopper:
			net, err := bitslice.Lower(graph, bitslice.Options{Fold: v.HasReuse()})
			if err != nil {
				c.err = err
				break
			}
			leg, err := logic.Legalize(net, arch, logic.BuilderOptions{Fold: v.HasReuse(), CSE: true})
			if err != nil {
				c.err = err
				break
			}
			res, err := codegen.Generate(leg.DCE(), codegen.Options{Arch: arch, Variant: v, DRows: geom.DRows()})
			if err != nil {
				c.err = err
			} else {
				c.prog = res.Prog
				c.stats = res.Stats
				c.constTags = make(map[int]bool, len(res.ConstPattern))
				for tag := range res.ConstPattern {
					c.constTags[tag] = true
				}
			}
		}
	}
	h.mu.Lock()
	h.progs[k] = c
	h.mu.Unlock()
	return c, c.err
}

// PUDTimeNs measures the full-problem execution time of a workload on a
// PUD architecture under cfg.
func (h *Harness) PUDTimeNs(spec workloads.Spec, arch isa.Arch, comp Compiler, v obs.Variant, cfg Config) (float64, error) {
	c, err := h.compile(spec, arch, comp, v, cfg.Geom)
	if err != nil {
		return 0, fmt.Errorf("bench: %s/%v/%v: %w", spec.Name, arch, comp, err)
	}
	lanesPerTile := int64(cfg.Geom.Bitlines())
	tiles := (spec.TotalLanes + lanesPerTile - 1) / lanesPerTile
	if tiles < 1 {
		tiles = 1
	}
	inFlight := int64(cfg.placements())
	if inFlight > tiles {
		inFlight = tiles
	}
	pls, err := vircoe.Placements(cfg.Geom, int(inFlight))
	if err != nil {
		return 0, fmt.Errorf("bench: %s: %w", spec.Name, err)
	}
	timing := dram.TimingFor(arch, cfg.Geom)

	// Workload data resides in the PUD DRAM (it is main memory): input and
	// output rows move within the subarray (placement copies at AAP cost),
	// not over the host bus. What does cross the bus: CPU-written constant
	// rows (the hands-tuned methodology's Figure 7 cost) and SSD spill
	// traffic.
	prog := residentProgram(c.prog, c.constTags)

	dev := ssd.New(ssd.DefaultConfig())
	eng := getEngine(cfg.Geom, timing, cfg.SALP)
	defer putEngine(eng)
	rowBytes := cfg.Geom.RowBytes
	eng.SSDDelay = func(out bool, slot uint64, start float64) float64 {
		if out {
			return dev.Write(slot, rowBytes, start)
		}
		return dev.Read(slot, start)
	}
	// Issue streams can run to hundreds of millions of ops on the largest
	// workloads; feed the engine directly rather than materializing them.
	sink := func(p dram.Placed) { eng.Issue(p) }
	if comp == Chopper {
		vircoe.EmitTo(prog, pls, cfg.Mode, timing, sink)
	} else {
		vircoe.LockstepTo(prog, pls, sink)
	}
	waveNs := eng.Makespan()
	waves := (tiles + inFlight - 1) / inFlight
	return waveNs * float64(waves), nil
}

// enginePool recycles timing engines across measurements: every sweep cell
// re-arms a pooled engine via Reconfigure instead of allocating fresh
// scheduling tables (a bank x subarray slice set per engine).
var enginePool sync.Pool

func getEngine(g dram.Geometry, t dram.Timing, salp bool) *dram.Engine {
	if v := enginePool.Get(); v != nil {
		e := v.(*dram.Engine)
		e.Reconfigure(g, t, salp)
		return e
	}
	return dram.NewEngine(g, t, salp)
}

func putEngine(e *dram.Engine) {
	e.SSDDelay = nil
	enginePool.Put(e)
}

// residentProgram rewrites input WRITEs and output READs into
// intra-subarray placement copies (AAP-class, no bus), keeping constant
// writes and spill traffic as real transfers. Timing-model use only: the
// rewritten program is not functionally executable.
func residentProgram(p *isa.Program, constTags map[int]bool) *isa.Program {
	out := &isa.Program{DRowsUsed: p.DRowsUsed, SpillSlots: p.SpillSlots}
	out.Ops = make([]isa.Op, len(p.Ops))
	for i, op := range p.Ops {
		switch op.Kind {
		case isa.OpWrite:
			if !constTags[op.Tag] {
				op = isa.NewAAP(isa.C0, op.Dst[0])
			}
		case isa.OpRead:
			op = isa.NewAAP(op.Src, isa.T3)
		}
		out.Ops[i] = op
	}
	return out
}

// CPUTimeNs and GPUTimeNs evaluate the host models.
func CPUTimeNs(spec workloads.Spec) float64 {
	return hostTimeNs(hostmodel.Skylake(), spec.HostCost)
}

// GPUTimeNs models the TITAN V.
func GPUTimeNs(spec workloads.Spec) float64 {
	return hostTimeNs(hostmodel.TitanV(), spec.HostCost)
}

// hostTimeNs is the harness's single entry point into a host machine
// model; it validates the machine first so a degenerate model (zero
// value, negative overhead) can never silently feed NaN/Inf into a
// normalized figure. The package machines always validate, so the panic
// is unreachable short of a corrupted model table.
func hostTimeNs(m hostmodel.Machine, c hostmodel.Cost) float64 {
	ns, err := m.TimeNsChecked(c.Bytes, c.Ops)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return ns
}

// Row is one measurement: a (workload, series) cell.
type Row struct {
	Workload string
	Series   string
	Value    float64
}

// Table is a named collection of rows plus rendering metadata.
type Table struct {
	Title  string
	Unit   string // "speedup over CPU", "LoC", "ns"
	Rows   []Row
	Series []string // column order
}

// Render formats the table with workloads as rows and series as columns.
func (t *Table) Render() string {
	byCell := make(map[[2]string]float64, len(t.Rows))
	var wls []string
	seenWL := map[string]bool{}
	for _, r := range t.Rows {
		byCell[[2]string{r.Workload, r.Series}] = r.Value
		if !seenWL[r.Workload] {
			seenWL[r.Workload] = true
			wls = append(wls, r.Workload)
		}
	}
	series := t.Series
	if len(series) == 0 {
		seen := map[string]bool{}
		for _, r := range t.Rows {
			if !seen[r.Series] {
				seen[r.Series] = true
				series = append(series, r.Series)
			}
		}
		sort.Strings(series)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s)\n", t.Title, t.Unit)
	fmt.Fprintf(&sb, "%-14s", "workload")
	for _, s := range series {
		fmt.Fprintf(&sb, " %14s", s)
	}
	sb.WriteString("\n")
	for _, wl := range wls {
		fmt.Fprintf(&sb, "%-14s", wl)
		for _, s := range series {
			v, ok := byCell[[2]string{wl, s}]
			if !ok {
				fmt.Fprintf(&sb, " %14s", "-")
			} else if v >= 1000 {
				fmt.Fprintf(&sb, " %14.0f", v)
			} else {
				fmt.Fprintf(&sb, " %14.2f", v)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (workload rows, series
// columns), for plotting outside Go.
func (t *Table) CSV() string {
	byCell := make(map[[2]string]float64, len(t.Rows))
	var wls []string
	seenWL := map[string]bool{}
	for _, r := range t.Rows {
		byCell[[2]string{r.Workload, r.Series}] = r.Value
		if !seenWL[r.Workload] {
			seenWL[r.Workload] = true
			wls = append(wls, r.Workload)
		}
	}
	series := t.Series
	if len(series) == 0 {
		seen := map[string]bool{}
		for _, r := range t.Rows {
			if !seen[r.Series] {
				seen[r.Series] = true
				series = append(series, r.Series)
			}
		}
		sort.Strings(series)
	}
	var sb strings.Builder
	sb.WriteString("workload")
	for _, s := range series {
		sb.WriteString("," + s)
	}
	sb.WriteByte('\n')
	for _, wl := range wls {
		sb.WriteString(wl)
		for _, s := range series {
			if v, ok := byCell[[2]string{wl, s}]; ok {
				fmt.Fprintf(&sb, ",%g", v)
			} else {
				sb.WriteString(",")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GeoMean returns the geometric mean of the series' values across rows.
func (t *Table) GeoMean(series string) float64 {
	logSum, n := 0.0, 0
	for _, r := range t.Rows {
		if r.Series == series && r.Value > 0 {
			logSum += math.Log(r.Value)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
