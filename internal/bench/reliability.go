package bench

import (
	"context"
	"fmt"

	"chopper"
	"chopper/internal/guard"
	"chopper/internal/isa"
)

// ReliabilitySweep measures silent-data-corruption rates for one kernel
// source across a grid of TRA fault rates, compiled both plain and with TMR
// hardening. It returns a table (series "plain" and "tmr", one row per
// rate, values = SDC rate over `trials` runs) and the TMR latency overhead
// ratio from the DRAM timing model (hardened makespan / plain makespan).
//
// The sweep runs in the single-event-upset regime: each run injects at most
// one fault (MaxFaults=1), with the rate setting how early in the program
// it strikes. This is the regime TMR is designed for — any single replica
// fault is outvoted — so the table shows what hardening buys. Note that at
// a fixed per-op fault rate with unbounded faults, TMR can come out WORSE:
// the hardened program executes ~3x the ops, so it absorbs ~3x the faults,
// and its majority voters are themselves unprotected single points of
// failure. Use Kernel.Reliability directly with uncapped FaultConfigs to
// measure that regime.
//
// This is the experiment behind docs/RELIABILITY.md's trade-off numbers:
// how many nines a single fault costs an unhardened kernel, and what the
// voted version buys back for its ~3x op count.
//
// The rates x trials grid is embarrassingly parallel and fans out across
// GOMAXPROCS workers; results are byte-identical at any worker count. Use
// ReliabilitySweepParallel to pin the worker count.
func ReliabilitySweep(src string, arch isa.Arch, rates []float64, trials int, seed int64) (*Table, float64, error) {
	return ReliabilitySweepParallel(src, arch, rates, trials, seed, 0)
}

// ReliabilitySweepParallel is ReliabilitySweep with an explicit worker
// count (<= 0 means GOMAXPROCS).
func ReliabilitySweepParallel(src string, arch isa.Arch, rates []float64, trials int, seed int64, workers int) (*Table, float64, error) {
	return ReliabilitySweepCtx(nil, src, arch, rates, trials, seed, workers)
}

// ReliabilitySweepCtx is ReliabilitySweepParallel under the guard layer:
// both compiles and both reliability grids observe ctx, so a canceled or
// deadline-expired context stops the sweep promptly with the
// chopper.ErrCanceled/ErrDeadline sentinel (unwrapped, so errors.Is works
// on the return) and a nil table — a half-measured sweep is never
// reported as a result.
func ReliabilitySweepCtx(ctx context.Context, src string, arch isa.Arch, rates []float64, trials int, seed int64, workers int) (*Table, float64, error) {
	wrap := func(what string, err error) error {
		if guard.IsGuard(err) {
			return err
		}
		return fmt.Errorf("bench: reliability: %s: %w", what, err)
	}
	plain, err := chopper.CompileCtx(ctx, src, chopper.Options{Target: arch})
	if err != nil {
		return nil, 0, wrap("compile", err)
	}
	hard, err := chopper.CompileCtx(ctx, src, chopper.Options{Target: arch, Harden: true})
	if err != nil {
		return nil, 0, wrap("harden", err)
	}

	cfgs := make([]chopper.FaultConfig, len(rates))
	for i, r := range rates {
		cfgs[i] = chopper.FaultConfig{TRAFlipRate: r, MaxFaults: 1}
	}
	pr, err := plain.ReliabilityCtx(ctx, trials, seed, cfgs, workers)
	if err != nil {
		return nil, 0, wrap("plain", err)
	}
	hr, err := hard.ReliabilityCtx(ctx, trials, seed, cfgs, workers)
	if err != nil {
		return nil, 0, wrap("tmr", err)
	}

	t := &Table{
		Title:  fmt.Sprintf("SDC rate vs TRA fault rate (%v, %d trials)", arch, trials),
		Unit:   "fraction of runs corrupted",
		Series: []string{"plain", "tmr"},
	}
	for i, r := range rates {
		wl := fmt.Sprintf("rate=%g", r)
		t.Rows = append(t.Rows,
			Row{Workload: wl, Series: "plain", Value: pr.Points[i].SDCRate()},
			Row{Workload: wl, Series: "tmr", Value: hr.Points[i].SDCRate()},
		)
	}
	overhead := 0.0
	if pr.TimeNs > 0 {
		overhead = hr.TimeNs / pr.TimeNs
	}
	return t, overhead, nil
}
