// Package seedcompile is a frozen, verbatim snapshot of the compile
// middle-end as it stood before the dense-index fast-path rewrite (commit
// c7b7295): the logic builder, bitslice lowering, OBS scheduling, row
// allocation, and codegen packages are byte-for-byte copies with only
// their import paths rewritten. It exists solely as the reference side of
// the golden-equivalence suite — the rewritten compiler must emit
// byte-identical isa.Programs to this one on every target × optimization
// level × hardening × budget configuration. Do not fix bugs or accept
// refactors here; the whole point is that it does not change.
package seedcompile

import (
	"chopper/internal/dfg"
	"chopper/internal/guard"
	"chopper/internal/isa"
	"chopper/internal/seedcompile/bitslice"
	"chopper/internal/seedcompile/codegen"
	"chopper/internal/seedcompile/logic"
	"chopper/internal/seedcompile/obs"
)

// Options mirrors the subset of chopper.Options that reaches the back-end
// pipeline in compileGraphAt.
type Options struct {
	Arch        isa.Arch
	Opt         obs.Variant
	DRows       int
	Harden      bool
	MaxNetGates int
	MaxMicroOps int
}

// Result is what the seed pipeline hands back for comparison: the emitted
// code and the legalized (possibly hardened) net it came from.
type Result struct {
	Code *codegen.Result
	Net  *logic.Net
}

// Compile runs the frozen back-end pipeline at one fixed optimization
// level, mirroring compileGraphAt pass for pass: lower, gate-budget check,
// validate, legalize+DCE, optional TMR, gate-budget check, validate,
// codegen, program validate. Errors come back raw (guard errors included)
// rather than wrapped in chopper's error taxonomy, since golden tests
// compare the underlying guard.BudgetError, not the wrapping.
func Compile(graph *dfg.Graph, o Options) (*Result, error) {
	net, err := bitslice.Lower(graph, bitslice.Options{Fold: o.Opt.HasReuse()})
	if err != nil {
		return nil, err
	}
	if err := guard.Check(guard.DimNetGates, o.MaxNetGates, len(net.Gates)); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}

	leg, err := logic.Legalize(net, o.Arch, logic.BuilderOptions{Fold: o.Opt.HasReuse(), CSE: true})
	if err != nil {
		return nil, err
	}
	leg = leg.DCE()
	if o.Harden {
		h, err := logic.TMR(leg, logic.NativeGates(o.Arch))
		if err != nil {
			return nil, err
		}
		leg = h
	}
	if err := guard.Check(guard.DimNetGates, o.MaxNetGates, len(leg.Gates)); err != nil {
		return nil, err
	}
	if err := leg.Validate(); err != nil {
		return nil, err
	}

	code, err := codegen.Generate(leg, codegen.Options{
		Arch:    o.Arch,
		Variant: o.Opt,
		DRows:   o.DRows,
		MaxOps:  o.MaxMicroOps,
	})
	if err != nil {
		return nil, err
	}
	if err := code.Prog.Validate(o.DRows); err != nil {
		return nil, err
	}
	return &Result{Code: code, Net: leg}, nil
}
