// Package bitslice implements CHOPPER's bit-slicing lowering: the multi-bit
// dataflow graph is transformed into a net of 1-bit logic gates — the
// "SIMD-Within-A-Register"-style code that Bit-serial SIMD PUD architectures
// execute. Each dataflow value of width W becomes W net nodes; arithmetic is
// synthesized by the logic package's gate-level library.
//
// Bit-slicing is what breaks the granularity mismatch the paper identifies:
// after this pass the compiler reasons about individual bitslices, so
// OBS-1/2/3 can schedule, reuse, and rename at 1-bit granularity instead of
// full operand size.
package bitslice

import (
	"fmt"
	"math/big"

	"chopper/internal/dfg"
	"chopper/internal/seedcompile/logic"
)

// Options configure the lowering.
type Options struct {
	// Fold enables bit-level constant folding during lowering (the
	// builder-side half of OBS-2). Off in the CHOPPER-bitslice baseline
	// variant.
	Fold bool
}

// Lower converts a dataflow graph into a logic net. Input value "x" of
// width W produces net inputs "x[0].."x[W-1]"; outputs likewise.
func Lower(g *dfg.Graph, opts Options) (*logic.Net, error) {
	b := logic.NewBuilder(logic.BuilderOptions{Fold: opts.Fold, CSE: true})
	words := make([]logic.Word, len(g.Values))

	for i := range g.Values {
		v := &g.Values[i]
		arg := func(j int) logic.Word { return words[v.Args[j]] }
		// resize adapts an argument to this value's width (the checker
		// guarantees equal widths for most ops; comparisons and resize
		// change widths explicitly).
		switch v.Kind {
		case dfg.OpInput:
			words[i] = b.InputWord(v.Name, v.Width)
		case dfg.OpConst:
			words[i] = constWord(b, v.Imm, v.Width)
		case dfg.OpAdd:
			words[i] = b.Add(arg(0), arg(1))
		case dfg.OpSub:
			words[i] = b.Sub(arg(0), arg(1))
		case dfg.OpMul:
			words[i] = b.Mul(arg(0), arg(1), v.Width)
		case dfg.OpAnd:
			words[i] = b.BitwiseAnd(arg(0), arg(1))
		case dfg.OpOr:
			words[i] = b.BitwiseOr(arg(0), arg(1))
		case dfg.OpXor:
			words[i] = b.BitwiseXor(arg(0), arg(1))
		case dfg.OpNot:
			words[i] = b.BitwiseNot(arg(0))
		case dfg.OpNeg:
			words[i] = b.Neg(arg(0))
		case dfg.OpShl:
			words[i] = b.ShiftLeft(arg(0), int(v.Imm.Int64()))
		case dfg.OpShr:
			words[i] = b.ShiftRight(arg(0), int(v.Imm.Int64()), false)
		case dfg.OpShlV:
			words[i] = b.ShiftLeftDyn(arg(0), arg(1))
		case dfg.OpShrV:
			words[i] = b.ShiftRightDyn(arg(0), arg(1))
		case dfg.OpSra:
			words[i] = b.ShiftRight(arg(0), int(v.Imm.Int64()), true)
		case dfg.OpSraV:
			words[i] = b.ShiftRightArithDyn(arg(0), arg(1))
		case dfg.OpDivU:
			q, _ := b.DivMod(arg(0), arg(1))
			words[i] = q
		case dfg.OpModU:
			_, r := b.DivMod(arg(0), arg(1))
			words[i] = r
		case dfg.OpEq:
			words[i] = logic.Word{b.Eq(arg(0), arg(1))}
		case dfg.OpNe:
			words[i] = logic.Word{b.Ne(arg(0), arg(1))}
		case dfg.OpLtU:
			words[i] = logic.Word{b.LtU(arg(0), arg(1))}
		case dfg.OpGtU:
			words[i] = logic.Word{b.GtU(arg(0), arg(1))}
		case dfg.OpLeU:
			words[i] = logic.Word{b.LeU(arg(0), arg(1))}
		case dfg.OpGeU:
			words[i] = logic.Word{b.GeU(arg(0), arg(1))}
		case dfg.OpLtS:
			words[i] = logic.Word{b.LtS(arg(0), arg(1))}
		case dfg.OpGtS:
			words[i] = logic.Word{b.LtS(arg(1), arg(0))}
		case dfg.OpLeS:
			words[i] = logic.Word{b.Not(b.LtS(arg(1), arg(0)))}
		case dfg.OpGeS:
			words[i] = logic.Word{b.Not(b.LtS(arg(0), arg(1)))}
		case dfg.OpMux:
			c := arg(0)
			if len(c) != 1 {
				return nil, fmt.Errorf("bitslice: mux condition is %d bits wide", len(c))
			}
			words[i] = b.MuxWord(c[0], arg(1), arg(2))
		case dfg.OpMin:
			words[i] = b.MinU(arg(0), arg(1))
		case dfg.OpMax:
			words[i] = b.MaxU(arg(0), arg(1))
		case dfg.OpAbsDiff:
			words[i] = b.AbsDiff(arg(0), arg(1))
		case dfg.OpPopCount:
			pc := b.PopCount(arg(0))
			words[i] = b.Extend(pc, v.Width, false)
		case dfg.OpResize:
			words[i] = b.Extend(arg(0), v.Width, false)
		default:
			return nil, fmt.Errorf("bitslice: unsupported dataflow op %s", v.Kind)
		}
		if len(words[i]) != v.Width {
			// Comparisons yield 1 bit; everything else must match.
			if len(words[i]) == 1 && v.Width == 1 {
				// fine
			} else if len(words[i]) > v.Width {
				words[i] = words[i][:v.Width]
			} else {
				words[i] = b.Extend(words[i], v.Width, false)
			}
		}
	}

	for i, o := range g.Outputs {
		b.OutputWord(g.OutputNames[i], words[o])
	}
	n := b.Net()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n.DCE(), nil
}

func constWord(b *logic.Builder, v *big.Int, w int) logic.Word {
	word := make(logic.Word, w)
	for i := 0; i < w; i++ {
		word[i] = b.Const(v.Bit(i) == 1)
	}
	return word
}
