// Package alloc provides the row allocators used by the two code
// generators:
//
//   - RowPool, a free-list allocator over D-group rows with explicit
//     free/occupancy tracking, used by the CHOPPER back-end, which assigns
//     rows at single-bitslice granularity and picks spill victims by
//     furthest-next-use (Belady);
//   - LinearScan, the classic Poletto–Sarkar linear scan over live
//     intervals, which is the allocation strategy the SIMDRAM hands-tuned
//     methodology reuses (at full operand granularity).
package alloc

import (
	"fmt"
	"sort"

	"chopper/internal/isa"
)

// RowPool allocates D-group row indices [0, n).
type RowPool struct {
	n       int
	free    []isa.Row // stack of free rows
	inUse   map[isa.Row]bool
	maxUsed int // high-water mark of simultaneously allocated rows
}

// NewRowPool creates a pool of n rows starting at row 0.
func NewRowPool(n int) *RowPool { return NewRowPoolAt(0, n) }

// NewRowPoolAt creates a pool of n rows starting at row base (used when a
// region of the subarray is reserved for externally managed operands).
func NewRowPoolAt(base, n int) *RowPool {
	if n <= 0 || base < 0 {
		panic(fmt.Sprintf("alloc: pool of %d rows at %d", n, base))
	}
	p := &RowPool{n: n, inUse: make(map[isa.Row]bool)}
	// Hand out low rows first (stable, debuggable programs).
	for i := base + n - 1; i >= base; i-- {
		p.free = append(p.free, isa.Row(i))
	}
	return p
}

// Alloc returns a free row, or ok=false when the pool is exhausted (the
// caller must then spill a victim and Free its row).
func (p *RowPool) Alloc() (isa.Row, bool) {
	if len(p.free) == 0 {
		return isa.RowNone, false
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[r] = true
	if used := p.n - len(p.free); used > p.maxUsed {
		p.maxUsed = used
	}
	return r, true
}

// Free returns a row to the pool. Freeing a row that is not allocated is a
// compiler bug and panics.
func (p *RowPool) Free(r isa.Row) {
	if !p.inUse[r] {
		panic(fmt.Sprintf("alloc: double free of row %s", r))
	}
	delete(p.inUse, r)
	p.free = append(p.free, r)
}

// InUse reports whether r is currently allocated.
func (p *RowPool) InUse(r isa.Row) bool { return p.inUse[r] }

// Live returns the number of currently allocated rows.
func (p *RowPool) Live() int { return p.n - len(p.free) }

// MaxUsed returns the high-water mark of simultaneously allocated rows.
func (p *RowPool) MaxUsed() int { return p.maxUsed }

// Size returns the pool capacity.
func (p *RowPool) Size() int { return p.n }

// Interval is a live range over instruction positions [Start, End]
// (inclusive), Rows wide (a full-size operand occupies Width rows; CHOPPER
// intervals are 1 row).
type Interval struct {
	ID    int
	Start int
	End   int
	Rows  int
}

// Assignment is the result of linear scan for one interval.
type Assignment struct {
	ID      int
	Rows    []isa.Row // one row per value row; nil if spilled
	Spilled bool
}

// LinearScanResult summarizes an allocation.
type LinearScanResult struct {
	Assignments map[int]Assignment
	MaxRows     int // high-water mark of rows in use
	Spilled     int // number of spilled intervals
	SpillRows   int // total rows' worth of spilled data
}

// LinearScan allocates intervals over a pool of `rows` rows using the
// Poletto–Sarkar algorithm generalized to multi-row values: intervals are
// visited in order of increasing start; expired intervals release their
// rows; if no block of Rows consecutive... (rows need not be consecutive in
// DRAM — any set of rows works, so only the count matters); when the pool
// is exhausted the interval with the furthest end point among the active
// set (or the new one) is spilled.
func LinearScan(intervals []Interval, rows int) LinearScanResult {
	res := LinearScanResult{Assignments: make(map[int]Assignment, len(intervals))}
	ivs := append([]Interval(nil), intervals...)
	sort.SliceStable(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })

	type active struct {
		iv   Interval
		rows []isa.Row
	}
	var actives []active
	pool := NewRowPool(rows)

	expire := func(pos int) {
		kept := actives[:0]
		for _, a := range actives {
			if a.iv.End < pos {
				for _, r := range a.rows {
					pool.Free(r)
				}
			} else {
				kept = append(kept, a)
			}
		}
		actives = kept
	}

	for _, iv := range ivs {
		if iv.Rows <= 0 {
			iv.Rows = 1
		}
		expire(iv.Start)
		for pool.Live()+iv.Rows > rows {
			// Spill the active interval ending furthest away; if the
			// new interval ends even later (or nothing can be freed),
			// spill the new one.
			victim := -1
			furthest := iv.End
			for i, a := range actives {
				if a.iv.End > furthest {
					furthest = a.iv.End
					victim = i
				}
			}
			if victim < 0 {
				res.Assignments[iv.ID] = Assignment{ID: iv.ID, Spilled: true}
				res.Spilled++
				res.SpillRows += iv.Rows
				iv.Rows = 0 // nothing to allocate
				break
			}
			v := actives[victim]
			for _, r := range v.rows {
				pool.Free(r)
			}
			actives = append(actives[:victim], actives[victim+1:]...)
			res.Assignments[v.iv.ID] = Assignment{ID: v.iv.ID, Spilled: true}
			res.Spilled++
			res.SpillRows += v.iv.Rows
		}
		if iv.Rows == 0 {
			continue
		}
		got := make([]isa.Row, iv.Rows)
		for i := range got {
			r, ok := pool.Alloc()
			if !ok {
				panic("alloc: linear scan accounting error")
			}
			got[i] = r
		}
		actives = append(actives, active{iv, got})
		res.Assignments[iv.ID] = Assignment{ID: iv.ID, Rows: got}
		if pool.Live() > res.MaxRows {
			res.MaxRows = pool.Live()
		}
	}
	if pool.MaxUsed() > res.MaxRows {
		res.MaxRows = pool.MaxUsed()
	}
	return res
}
