// Package codegen translates a legalized bit-sliced logic net into a PUD
// micro-op program for one subarray. It is where the three OBS
// optimizations become row traffic:
//
//   - the gate execution order comes from obs.ScheduleGates (O1);
//   - constant bitslices are sourced from the C-group rows instead of CPU
//     writes when O2 is enabled, and are host-written, buffered rows when
//     it is not;
//   - with O3 enabled, stores are lazy: a TRA result stays in the compute
//     rows and is only stored to a D-group row when the next operation
//     would clobber it while uses remain ("Store-Copy-Compute" becomes
//     "Store-Compute" for one-shot bitslices), and single-use inputs are
//     host-written directly into the compute rows.
//
// Gate-to-micro-op mapping (the Ambit/SIMDRAM command idiom):
//
//	AND x,y  =>  AAP x->T0; AAP y->T1; AAP C0->T2; AP T0,T1,T2
//	OR  x,y  =>  AAP x->T0; AAP y->T1; AAP C1->T2; AP T0,T1,T2
//	MAJ x,y,z => AAP x->T0; AAP y->T1; AAP z->T2; AP T0,T1,T2  (SIMDRAM)
//	NOT x    =>  AAP x->DCCi  (result available at ~DCCi)
package codegen

import (
	"context"
	"fmt"

	"chopper/internal/guard"
	"chopper/internal/isa"
	"chopper/internal/seedcompile/alloc"
	"chopper/internal/seedcompile/logic"
	"chopper/internal/seedcompile/obs"
)

// Options configure code generation. The net must already be legalized for
// Arch (see logic.Legalize); codegen verifies this.
type Options struct {
	Arch    isa.Arch
	Variant obs.Variant
	// DRows is the number of D-group rows the generator may allocate.
	DRows int

	// PoolBase offsets the allocatable region: rows [PoolBase,
	// PoolBase+DRows) belong to the generator, rows below PoolBase to the
	// caller (the baseline driver parks full-width operands there).
	PoolBase int
	// SlotBase offsets SSD spill slot numbering.
	SlotBase int

	// ExtIn declares inputs that do not come from the host: the value
	// already resides in a caller-managed row, or sits in a caller-managed
	// SSD spill slot. ExtOut routes outputs to caller-managed rows or
	// slots instead of host READs.
	ExtIn  map[string]ExtLoc
	ExtOut map[string]ExtLoc

	// MaxOps, when positive, caps how many micro-ops the generated program
	// may contain (the guard.DimMicroOps budget dimension). The check runs
	// after every emitted gate, so a runaway emission stops at a
	// deterministic gate index with a *guard.BudgetError.
	MaxOps int
	// Ctx, when non-nil, is observed periodically during emission for
	// cooperative cancellation.
	Ctx context.Context
}

// ExtLoc locates an externally managed value: a resident row, or an SSD
// spill slot when Spilled is set.
type ExtLoc struct {
	Row     isa.Row
	Slot    int
	Spilled bool
}

// Stats summarizes the generated program.
type Stats struct {
	AAPs, APs     int
	Writes, Reads int
	SpillOuts     int
	SpillIns      int
	Drops         int // input/const rows evicted without SSD traffic
	StoresElided  int // TRA results never stored thanks to O3
	DirectWrites  int // inputs host-written straight into compute rows (O3)
	ConstCopies   int // constants sourced from the C-group (O2)
	ConstWrites   int // constant rows written by the host (no O2)
	MaxLiveRows   int // D-group high-water mark
}

// Result is a compiled single-subarray program plus its host interface.
type Result struct {
	Prog *isa.Program

	// InputTag maps a net input name (e.g. "a[3]") to the WRITE tag the
	// host must answer with that bit-row.
	InputTag map[string]int
	// OutputTag maps a net output name to the READ tag it arrives under.
	OutputTag map[string]int
	// ConstPattern maps WRITE tags above the input range to the fill
	// pattern (0 or ^0) of host-materialized constant rows (O2 off).
	ConstPattern map[int]uint64

	// NextSlot is the first spill slot id not used by this program
	// (callers generating multiple programs chain SlotBase through it).
	NextSlot int

	Stats Stats
}

type locKind uint8

const (
	locNowhere  locKind = iota // not materialized (pristine input/const)
	locDRow                    // in a pool-allocated D-group row
	locExternal                // in a caller-managed D-group row (pinned)
	locB                       // in the T rows as the last TRA result
	locDCC                     // in a dual-contact complement row
	locSpilled                 // on the SSD
	locDead                    // no uses remain
)

type location struct {
	kind locKind
	row  isa.Row // D row, or DCC0N/DCC1N for locDCC
	slot int     // spill slot for locSpilled
}

type emitter struct {
	net  *logic.Net
	opts Options

	prog isa.Program
	pool *alloc.RowPool

	loc    []location
	usePos [][]int // consumption positions per node, ascending
	useIdx []int   // cursor into usePos

	lr logic.NodeID // node whose value currently fills T0..T2 (None if stale)

	dccHold [2]logic.NodeID // node held by each DCC pair (None if free)

	isConst  []bool
	isInput  []bool
	external []bool // value managed by the caller (never host-written)

	constTag  map[logic.NodeID]int
	inputTag  map[string]int
	nodeTag   []int // WRITE tag per input node
	nextTag   int
	nextSlot  int
	slotOf    map[logic.NodeID]int
	constPats map[int]uint64

	outPos int // schedule position at which outputs are consumed

	// outIdx lists the output indices each node feeds, so results can be
	// read back eagerly (as soon as final) instead of buffering every
	// output row until the end of the program.
	outIdx  map[logic.NodeID][]int
	outDone []bool

	// resident tracks nodes currently occupying a D-group row, so spill
	// victim selection scans at most DRows candidates.
	resident map[logic.NodeID]struct{}

	stats Stats
}

// setLoc updates a node's location, maintaining the resident index.
func (e *emitter) setLoc(n logic.NodeID, l location) {
	if e.loc[n].kind == locDRow {
		delete(e.resident, n)
	}
	if l.kind == locDRow {
		e.resident[n] = struct{}{}
	}
	e.loc[n] = l
}

// Generate compiles the net into a single-subarray program.
func Generate(net *logic.Net, opts Options) (*Result, error) {
	if err := net.CheckGateSet(logic.NativeGates(opts.Arch)); err != nil {
		return nil, fmt.Errorf("codegen: net not legalized for %v: %w", opts.Arch, err)
	}
	if opts.DRows < 4 {
		return nil, fmt.Errorf("codegen: need at least 4 D-group rows, have %d", opts.DRows)
	}
	order := obs.ScheduleGates(net, opts.Variant.HasSchedule())

	e := &emitter{
		net:       net,
		opts:      opts,
		pool:      alloc.NewRowPoolAt(opts.PoolBase, opts.DRows),
		loc:       make([]location, len(net.Gates)),
		usePos:    make([][]int, len(net.Gates)),
		useIdx:    make([]int, len(net.Gates)),
		lr:        logic.None,
		dccHold:   [2]logic.NodeID{logic.None, logic.None},
		isConst:   make([]bool, len(net.Gates)),
		isInput:   make([]bool, len(net.Gates)),
		external:  make([]bool, len(net.Gates)),
		constTag:  make(map[logic.NodeID]int),
		inputTag:  make(map[string]int),
		nodeTag:   make([]int, len(net.Gates)),
		slotOf:    make(map[logic.NodeID]int),
		constPats: make(map[int]uint64),
		resident:  make(map[logic.NodeID]struct{}),
		outPos:    len(order),
		outIdx:    make(map[logic.NodeID][]int),
		outDone:   make([]bool, len(net.Outputs)),
	}
	for i, o := range net.Outputs {
		e.outIdx[o] = append(e.outIdx[o], i)
	}
	for i := range net.Gates {
		switch net.Gates[i].Kind {
		case logic.GConst0, logic.GConst1:
			e.isConst[i] = true
		case logic.GInput:
			e.isInput[i] = true
		}
		e.nodeTag[i] = -1
	}
	for i, in := range net.Inputs {
		if ext, ok := opts.ExtIn[net.InputNames[i]]; ok {
			e.external[in] = true
			if ext.Spilled {
				e.loc[in] = location{kind: locSpilled, slot: ext.Slot}
				e.slotOf[in] = ext.Slot
			} else {
				e.loc[in] = location{kind: locExternal, row: ext.Row}
			}
			continue
		}
		e.nodeTag[in] = i
		e.inputTag[net.InputNames[i]] = i
	}
	e.nextTag = len(net.Inputs)
	e.nextSlot = opts.SlotBase

	// Consumption positions: one entry per (gate, distinct arg); outputs
	// consume at outPos.
	for pos, gid := range order {
		g := &net.Gates[gid]
		var seen [3]logic.NodeID
		ns := 0
		for a := 0; a < g.Kind.Arity(); a++ {
			arg := g.Args[a]
			dup := false
			for s := 0; s < ns; s++ {
				if seen[s] == arg {
					dup = true
				}
			}
			if !dup {
				seen[ns] = arg
				ns++
				e.usePos[arg] = append(e.usePos[arg], pos)
			}
		}
	}
	for _, o := range net.Outputs {
		e.usePos[o] = append(e.usePos[o], e.outPos)
	}

	res := &Result{
		InputTag:     e.inputTag,
		OutputTag:    make(map[string]int, len(net.Outputs)),
		ConstPattern: e.constPats,
	}
	for i := range net.Outputs {
		res.OutputTag[net.OutputNames[i]] = i
	}
	for pos, gid := range order {
		if pos&63 == 0 {
			if err := guard.Ctx(opts.Ctx); err != nil {
				return nil, err
			}
		}
		if err := e.emitGate(pos, gid); err != nil {
			return nil, err
		}
		if e.opts.Variant.HasRename() {
			if err := e.eagerRead(pos, gid); err != nil {
				return nil, err
			}
		}
		if err := guard.Check(guard.DimMicroOps, opts.MaxOps, len(e.prog.Ops)); err != nil {
			return nil, err
		}
	}
	for i, o := range net.Outputs {
		if e.outDone[i] {
			continue
		}
		row, err := e.sourceRowForRead(o)
		if err != nil {
			return nil, fmt.Errorf("codegen: output %s: %w", net.OutputNames[i], err)
		}
		if ext, ok := opts.ExtOut[net.OutputNames[i]]; ok {
			if ext.Spilled {
				e.prog.Append(isa.NewSpillOut(row, uint64(ext.Slot)))
				e.stats.SpillOuts++
			} else {
				e.prog.Append(isa.NewAAP(row, ext.Row))
				e.stats.AAPs++
			}
			e.outDone[i] = true
			e.finishOutput(o)
			continue
		}
		e.prog.Append(isa.NewRead(row, i))
		e.stats.Reads++
		e.outDone[i] = true
		e.finishOutput(o)
	}

	if err := guard.Check(guard.DimMicroOps, opts.MaxOps, len(e.prog.Ops)); err != nil {
		return nil, err
	}

	e.stats.MaxLiveRows = e.pool.MaxUsed()
	e.prog.DRowsUsed = e.pool.MaxUsed()
	maxSlot := e.nextSlot
	for name, ext := range opts.ExtOut {
		if ext.Spilled && ext.Slot+1 > maxSlot {
			maxSlot = ext.Slot + 1
		}
		_ = name
	}
	for name, ext := range opts.ExtIn {
		if ext.Spilled && ext.Slot+1 > maxSlot {
			maxSlot = ext.Slot + 1
		}
		_ = name
	}
	e.prog.SpillSlots = maxSlot
	res.NextSlot = maxSlot
	if err := e.prog.Validate(opts.PoolBase + opts.DRows); err != nil {
		return nil, err
	}
	res.Prog = &e.prog
	res.Stats = e.stats
	return res, nil
}

// eagerRead retires outputs whose value just became final: the gate at pos
// feeds one or more program outputs and has no further computational
// consumers. Retiring now — a host READ, or a store to the caller's
// external row/slot for ExtOut — releases the row immediately instead of
// buffering every output until program end, which is essential for kernels
// with many outputs.
func (e *emitter) eagerRead(pos int, gid logic.NodeID) error {
	outs := e.outIdx[gid]
	if len(outs) == 0 {
		return nil
	}
	// Remaining uses must be exactly the output pseudo-use.
	if e.nextUse(gid) != e.outPos {
		return nil
	}
	return e.retireOutputs(gid, pos)
}

// retireOutputs emits the host READ (or external store) for every output
// fed by node n, then frees n's storage.
func (e *emitter) retireOutputs(n logic.NodeID, pos int) error {
	row, err := e.materialize(n, pos)
	if err != nil {
		return err
	}
	for _, oi := range e.outIdx[n] {
		if e.outDone[oi] {
			continue
		}
		if ext, ok := e.opts.ExtOut[e.net.OutputNames[oi]]; ok {
			if ext.Spilled {
				e.prog.Append(isa.NewSpillOut(row, uint64(ext.Slot)))
				e.stats.SpillOuts++
			} else {
				e.prog.Append(isa.NewAAP(row, ext.Row))
				e.stats.AAPs++
			}
		} else {
			e.prog.Append(isa.NewRead(row, oi))
			e.stats.Reads++
		}
		e.outDone[oi] = true
	}
	// The output pseudo-use is satisfied; free the storage.
	e.useIdx[n] = len(e.usePos[n])
	e.release(n)
	return nil
}

// finishOutput releases node n's storage once every output it feeds has
// been retired, so refills of later (spilled) outputs have rows to land in.
func (e *emitter) finishOutput(n logic.NodeID) {
	for _, oi := range e.outIdx[n] {
		if !e.outDone[oi] {
			return
		}
	}
	if e.loc[n].kind != locDead {
		e.useIdx[n] = len(e.usePos[n])
		e.release(n)
	}
}

// remaining returns the number of unconsumed uses of node n.
func (e *emitter) remaining(n logic.NodeID) int {
	return len(e.usePos[n]) - e.useIdx[n]
}

// nextUse returns the next consumption position of n (outPos+1 if none).
func (e *emitter) nextUse(n logic.NodeID) int {
	if e.useIdx[n] >= len(e.usePos[n]) {
		return e.outPos + 1
	}
	return e.usePos[n][e.useIdx[n]]
}

// consume advances n's use cursor past position pos. If the only use left
// is the output pseudo-use, the output is retired right away (with O3):
// values that are both outputs and operands finalize here, not at their
// defining gate.
func (e *emitter) consume(n logic.NodeID, pos int) {
	for e.useIdx[n] < len(e.usePos[n]) && e.usePos[n][e.useIdx[n]] <= pos {
		e.useIdx[n]++
	}
	if e.remaining(n) == 0 && e.loc[n].kind != locDead {
		e.release(n)
		return
	}
	if e.opts.Variant.HasRename() && len(e.outIdx[n]) > 0 &&
		e.remaining(n) == len(e.outIdx[n]) && e.nextUse(n) == e.outPos &&
		e.loc[n].kind != locDead && e.loc[n].kind != locB {
		// Ignore retire errors here; the end-of-program path will retry
		// and report them with output context.
		_ = e.retireOutputs(n, pos)
	}
}

// release frees whatever storage a dead node occupies.
func (e *emitter) release(n logic.NodeID) {
	switch e.loc[n].kind {
	case locDRow:
		e.pool.Free(e.loc[n].row)
	case locDCC:
		for i := range e.dccHold {
			if e.dccHold[i] == n {
				e.dccHold[i] = logic.None
			}
		}
	}
	if e.lr == n {
		e.lr = logic.None
	}
	e.setLoc(n, location{kind: locDead})
}

// allocD obtains a free D row, evicting by Belady order if necessary:
// pristine-on-host rows (inputs/constants) are dropped for free; computed
// values are spilled to the SSD.
func (e *emitter) allocD(pos int) (isa.Row, error) {
	if r, ok := e.pool.Alloc(); ok {
		return r, nil
	}
	// Pick victims among nodes resident in D rows.
	victim := logic.None
	victimDrop := false
	victimNext := -1
	for id := range e.resident {
		n := int(id)
		nu := e.nextUse(id)
		if nu <= pos {
			// Needed by the operation being assembled right now: pinned.
			continue
		}
		drop := (e.isInput[n] || e.isConst[n]) && !e.external[n]
		// Prefer droppable rows; among equals, furthest next use.
		better := false
		switch {
		case victim == logic.None:
			better = true
		case drop != victimDrop:
			better = drop
		default:
			better = nu > victimNext
		}
		if better {
			victim, victimDrop, victimNext = id, drop, nu
		}
	}
	if victim == logic.None {
		return isa.RowNone, fmt.Errorf("codegen: subarray too small: all %d D rows are needed at step %d", e.opts.DRows, pos)
	}
	row := e.loc[victim].row
	if victimDrop {
		// The host still has this data; just forget the row.
		e.setLoc(victim, location{kind: locNowhere})
		e.stats.Drops++
	} else {
		slot, ok := e.slotOf[victim]
		if !ok {
			slot = e.nextSlot
			e.nextSlot++
			e.slotOf[victim] = slot
		}
		e.prog.Append(isa.NewSpillOut(row, uint64(slot)))
		e.stats.SpillOuts++
		e.setLoc(victim, location{kind: locSpilled, slot: slot})
	}
	e.pool.Free(row)
	r, ok := e.pool.Alloc()
	if !ok {
		return isa.RowNone, fmt.Errorf("codegen: allocator inconsistency")
	}
	return r, nil
}

// materialize ensures node n's value lives in an addressable row and
// returns that row. It never places into B-group (callers copy from the
// returned row into compute rows). pos is the current schedule position.
func (e *emitter) materialize(n logic.NodeID, pos int) (isa.Row, error) {
	switch e.loc[n].kind {
	case locDRow, locExternal:
		return e.loc[n].row, nil
	case locDCC:
		return e.loc[n].row, nil
	case locB:
		return isa.T0, nil
	case locSpilled:
		row, err := e.allocD(pos)
		if err != nil {
			return isa.RowNone, err
		}
		slot := e.loc[n].slot
		e.prog.Append(isa.NewSpillIn(row, uint64(slot)))
		e.stats.SpillIns++
		e.setLoc(n, location{kind: locDRow, row: row})
		return row, nil
	case locNowhere:
		switch {
		case e.isConst[n]:
			if e.opts.Variant.HasReuse() {
				// O2: the constant is architecturally present.
				if e.net.Gates[n].Kind == logic.GConst1 {
					return isa.C1, nil
				}
				return isa.C0, nil
			}
			// Host writes and buffers a constant row.
			tag, ok := e.constTag[n]
			if !ok {
				tag = e.nextTag
				e.nextTag++
				e.constTag[n] = tag
				pat := uint64(0)
				if e.net.Gates[n].Kind == logic.GConst1 {
					pat = ^uint64(0)
				}
				e.constPats[tag] = pat
			}
			row, err := e.allocD(pos)
			if err != nil {
				return isa.RowNone, err
			}
			e.prog.Append(isa.NewWrite(row, tag))
			e.stats.Writes++
			e.stats.ConstWrites++
			e.setLoc(n, location{kind: locDRow, row: row})
			return row, nil
		case e.isInput[n]:
			row, err := e.allocD(pos)
			if err != nil {
				return isa.RowNone, err
			}
			e.prog.Append(isa.NewWrite(row, e.nodeTag[n]))
			e.stats.Writes++
			e.setLoc(n, location{kind: locDRow, row: row})
			return row, nil
		}
		return isa.RowNone, fmt.Errorf("codegen: node %d has no value to materialize", n)
	}
	return isa.RowNone, fmt.Errorf("codegen: node %d is dead but referenced", n)
}

// sourceRowForRead is materialize for output reads (B results read from T0,
// NOT results from their complement row).
func (e *emitter) sourceRowForRead(n logic.NodeID) (isa.Row, error) {
	return e.materialize(n, e.outPos)
}

// flushLR stores the last TRA result to a D row if uses remain beyond the
// current gate's own consumption. consumedNow is how it is referenced by
// the gate about to execute.
func (e *emitter) flushLR(pos int, consumedNow bool) error {
	if e.lr == logic.None {
		return nil
	}
	n := e.lr
	rem := e.remaining(n)
	if consumedNow {
		rem-- // this gate's consumption doesn't require a buffered copy
	}
	if rem > 0 && e.loc[n].kind == locB {
		row, err := e.allocD(pos)
		if err != nil {
			return err
		}
		e.prog.Append(isa.NewAAP(isa.T0, row))
		e.stats.AAPs++
		e.setLoc(n, location{kind: locDRow, row: row})
	} else if rem <= 0 && e.loc[n].kind == locB && e.opts.Variant.HasRename() {
		e.stats.StoresElided++
	}
	// Either way, the T rows are about to be clobbered.
	if e.loc[n].kind == locB {
		if rem > 0 {
			return fmt.Errorf("codegen: losing live value %d", n)
		}
		e.setLoc(n, location{kind: locDead})
	}
	e.lr = logic.None
	return nil
}

// dccFor picks a DCC pair for a NOT result, storing the current holder
// first if it is still live and unbuffered.
func (e *emitter) dccFor(pos int) (int, error) {
	// Prefer a free pair.
	for i, h := range e.dccHold {
		if h == logic.None {
			return i, nil
		}
		if e.loc[h].kind != locDCC {
			// Holder moved (stored/spilled/dead); pair is reusable.
			e.dccHold[i] = logic.None
			return i, nil
		}
	}
	// Evict the holder with the furthest next use.
	iv := 0
	if e.nextUse(e.dccHold[1]) > e.nextUse(e.dccHold[0]) {
		iv = 1
	}
	h := e.dccHold[iv]
	if e.remaining(h) > 0 {
		row, err := e.allocD(pos)
		if err != nil {
			return 0, err
		}
		e.prog.Append(isa.NewAAP(e.loc[h].row, row))
		e.stats.AAPs++
		e.setLoc(h, location{kind: locDRow, row: row})
	} else {
		e.setLoc(h, location{kind: locDead})
	}
	e.dccHold[iv] = logic.None
	return iv, nil
}

var dccRows = [2][2]isa.Row{{isa.DCC0, isa.DCC0N}, {isa.DCC1, isa.DCC1N}}

func (e *emitter) emitGate(pos int, gid logic.NodeID) error {
	g := &e.net.Gates[gid]
	rename := e.opts.Variant.HasRename()

	switch g.Kind {
	case logic.GNot:
		arg := g.Args[0]
		chained := rename && e.lr == arg && e.loc[arg].kind == locB
		if err := e.flushLR(pos, e.lr == arg); err != nil {
			return err
		}
		pair, err := e.dccFor(pos)
		if err != nil {
			return err
		}
		if chained {
			e.prog.Append(isa.NewAAP(isa.T0, dccRows[pair][0]))
			e.stats.AAPs++
		} else if err := e.fillSlot(arg, dccRows[pair][0], pos); err != nil {
			return err
		}
		e.consume(arg, pos)
		e.dccHold[pair] = gid
		e.setLoc(gid, location{kind: locDCC, row: dccRows[pair][1]})
		if !rename {
			// Baseline behavior: store the result immediately.
			row, err := e.allocD(pos)
			if err != nil {
				return err
			}
			e.prog.Append(isa.NewAAP(dccRows[pair][1], row))
			e.stats.AAPs++
			e.dccHold[pair] = logic.None
			e.setLoc(gid, location{kind: locDRow, row: row})
		}
		return nil

	case logic.GAnd, logic.GOr, logic.GMaj:
		// Determine the three TRA operands.
		type slotSrc struct {
			node    logic.NodeID // None for the control row
			control isa.Row
		}
		var slots [3]slotSrc
		switch g.Kind {
		case logic.GAnd:
			slots = [3]slotSrc{{node: g.Args[0]}, {node: g.Args[1]}, {node: logic.None, control: isa.C0}}
		case logic.GOr:
			slots = [3]slotSrc{{node: g.Args[0]}, {node: g.Args[1]}, {node: logic.None, control: isa.C1}}
		case logic.GMaj:
			slots = [3]slotSrc{{node: g.Args[0]}, {node: g.Args[1]}, {node: g.Args[2]}}
		}
		consumesLR := false
		if e.lr != logic.None && e.loc[e.lr].kind == locB {
			for _, s := range slots {
				if s.node == e.lr {
					consumesLR = true
				}
			}
		}
		lrNode := e.lr
		if err := e.flushLR(pos, consumesLR); err != nil {
			return err
		}

		tRows := [3]isa.Row{isa.T0, isa.T1, isa.T2}
		// Fill slots; with O3, slots holding the last result need no copy
		// (the value is in every T row after the previous TRA).
		for i, s := range slots {
			if s.node == logic.None {
				e.prog.Append(isa.NewAAP(s.control, tRows[i]))
				e.stats.AAPs++
				continue
			}
			if rename && consumesLR && s.node == lrNode {
				// The previous TRA left its result in all three T rows,
				// so this slot is already filled — claim it copy-free.
				continue
			}
			if err := e.fillSlot(s.node, tRows[i], pos); err != nil {
				return err
			}
		}
		e.prog.Append(isa.NewAP(isa.T0, isa.T1, isa.T2))
		e.stats.APs++
		for a := 0; a < g.Kind.Arity(); a++ {
			e.consume(g.Args[a], pos)
		}
		e.lr = gid
		e.setLoc(gid, location{kind: locB})
		if !rename {
			// Baseline behavior: store every result immediately.
			if err := e.flushLR(pos+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("codegen: unexpected gate kind %s at %d", g.Kind, gid)
}

// fillSlot places node n's value into the compute row target. With O3, a
// pristine single-use input is host-written straight into the compute row
// (eliminating both its D-group buffer and the copy); otherwise the value
// is materialized into an addressable row and copied in with an AAP.
func (e *emitter) fillSlot(n logic.NodeID, target isa.Row, pos int) error {
	if e.opts.Variant.HasRename() && e.isInput[n] && !e.external[n] && e.loc[n].kind == locNowhere && len(e.usePos[n]) == 1 {
		e.prog.Append(isa.NewWrite(target, e.nodeTag[n]))
		e.stats.Writes++
		e.stats.DirectWrites++
		return nil
	}
	src, err := e.materialize(n, pos)
	if err != nil {
		return err
	}
	if src.IsCGroup() {
		e.stats.ConstCopies++
	}
	e.prog.Append(isa.NewAAP(src, target))
	e.stats.AAPs++
	return nil
}
