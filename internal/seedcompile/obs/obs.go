// Package obs implements CHOPPER's Optimizations for Bit-Sliced codes
// (OBS), the paper's Section V:
//
//   - O1, bit-sliced code scheduling: reorder gates so dependent
//     operations are aggregated, minimizing the number of rows needed to
//     buffer intermediate bitslices (ScheduleGates);
//   - O2, bit-sliced instruction selection: exploit bit patterns of
//     constant operands (folding at bit-slicing time) and source surviving
//     constants from the C-group rows instead of CPU writes (a flag the
//     code generator honors);
//   - O3, bit-sliced instruction renaming: shorten Store-Copy-Compute to
//     Store-Compute for one-shot bitslices (a flag the code generator
//     honors).
//
// The Variant type names the cumulative optimization levels of the paper's
// breakdown study (Table IV): bitslice ⊂ schedule ⊂ reuse ⊂ rename.
package obs

import (
	"fmt"
	"sort"

	"chopper/internal/seedcompile/logic"
)

// Variant is a cumulative optimization level, per Table IV of the paper.
type Variant int

const (
	// Bitslice: bit-slicing only, no OBS optimizations.
	Bitslice Variant = iota
	// Schedule: + O1 bit-sliced code scheduling.
	Schedule
	// Reuse: + O2 bit-sliced instruction selection (constant reuse).
	Reuse
	// Rename: + O3 bit-sliced instruction renaming (full CHOPPER).
	Rename
)

var variantNames = [...]string{"bitslice", "schedule", "reuse", "rename"}

func (v Variant) String() string {
	if int(v) < len(variantNames) {
		return variantNames[v]
	}
	return fmt.Sprintf("variant?%d", int(v))
}

// AllVariants lists the breakdown levels in cumulative order.
var AllVariants = []Variant{Bitslice, Schedule, Reuse, Rename}

// Full is the complete CHOPPER optimization level.
const Full = Rename

// HasSchedule reports whether O1 is enabled at this level.
func (v Variant) HasSchedule() bool { return v >= Schedule }

// HasReuse reports whether O2 is enabled at this level.
func (v Variant) HasReuse() bool { return v >= Reuse }

// HasRename reports whether O3 is enabled at this level.
func (v Variant) HasRename() bool { return v >= Rename }

// TestPanicHook, when non-nil, is invoked at the top of ScheduleGates with
// the pressureAware flag. It exists so tests of the compiler's graceful
// degradation ladder can force an OBS pass to panic on demand; production
// code never sets it.
var TestPanicHook func(pressureAware bool)

// ScheduleGates computes an execution order for the net's computation gates.
// When pressureAware is false it returns the natural (creation) order,
// which mirrors the full-size-operand execution order the bit-sliced code
// inherits from the source program: every multi-bit operation completes all
// of its bitslices before the next operation starts, so whole intermediate
// words must be buffered.
//
// When true it runs the O1 scheduler. Two candidate orders are built —
// the natural order, and a depth-first post-order walk from the outputs
// that visits at each gate the operand sub-cone with the larger
// register-need label first (Sethi–Ullman ordering, generalized to the
// DAG) — and the one with lower buffering pressure (MaxLive) is kept. The
// DFS order realizes the paper's Figure 6 aggregation: bit i of a consumer
// is computed as soon as bit i of its producers exists, so intermediate
// words never need to be buffered in full, only carry-chain state stays
// live. On accumulator-shaped cones (multipliers) the natural order is
// already the aggregated one and the cost model keeps it.
func ScheduleGates(n *logic.Net, pressureAware bool) []logic.NodeID {
	if TestPanicHook != nil {
		TestPanicHook(pressureAware)
	}
	isComp := func(k logic.GateKind) bool {
		switch k {
		case logic.GInput, logic.GConst0, logic.GConst1:
			return false
		}
		return true
	}
	var natural []logic.NodeID
	for i := range n.Gates {
		if isComp(n.Gates[i].Kind) {
			natural = append(natural, logic.NodeID(i))
		}
	}
	if !pressureAware {
		return natural
	}

	// Register-need labels (Sethi–Ullman, treating the DAG as a tree;
	// shared sub-cones are approximated, which is standard practice).
	label := make([]int, len(n.Gates))
	for i := range n.Gates {
		g := &n.Gates[i]
		if !isComp(g.Kind) {
			label[i] = 0
			continue
		}
		// Gather child labels, descending.
		var ls []int
		for a := 0; a < g.Kind.Arity(); a++ {
			ls = append(ls, label[g.Args[a]])
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ls)))
		need := 1
		for k, l := range ls {
			if v := l + k; v > need {
				need = v
			}
		}
		label[i] = need
	}

	visited := make([]bool, len(n.Gates))
	order := make([]logic.NodeID, 0, len(n.Gates))
	// Iterative DFS post-order; children visited heavier-label first.
	var stack []logic.NodeID
	var phase []bool // false = expand, true = emit
	push := func(id logic.NodeID) {
		if !visited[id] && isComp(n.Gates[id].Kind) {
			stack = append(stack, id)
			phase = append(phase, false)
		}
	}
	for _, o := range n.Outputs {
		push(o)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			emit := phase[len(phase)-1]
			stack = stack[:len(stack)-1]
			phase = phase[:len(phase)-1]
			if visited[id] {
				continue
			}
			if emit {
				visited[id] = true
				order = append(order, id)
				continue
			}
			stack = append(stack, id)
			phase = append(phase, true)
			g := &n.Gates[id]
			// Push lighter children first so heavier pop first.
			var kids []logic.NodeID
			for a := 0; a < g.Kind.Arity(); a++ {
				kids = append(kids, g.Args[a])
			}
			sort.SliceStable(kids, func(i, j int) bool {
				return label[kids[i]] < label[kids[j]]
			})
			for _, k := range kids {
				push(k)
			}
		}
	}
	if MaxLive(n, order) <= MaxLive(n, natural) {
		return order
	}
	return natural
}

// MaxLive simulates a schedule and returns the maximum number of
// computation-gate results simultaneously live (still awaiting consumers
// or referenced by outputs) — the row-buffering pressure the schedule
// induces. Inputs and constants are excluded: their buffering is governed
// by O2/O3, not by O1.
func MaxLive(n *logic.Net, order []logic.NodeID) int {
	fanout := n.Fanout()
	remaining := make([]int, len(n.Gates))
	copy(remaining, fanout)
	isComp := func(id logic.NodeID) bool {
		switch n.Gates[id].Kind {
		case logic.GInput, logic.GConst0, logic.GConst1:
			return false
		}
		return true
	}
	outputs := make(map[logic.NodeID]bool)
	for _, o := range n.Outputs {
		outputs[o] = true
	}
	live := 0
	maxLive := 0
	for _, id := range order {
		g := &n.Gates[id]
		// Result becomes live if anything will consume it.
		if remaining[id] > 0 {
			live++
			if live > maxLive {
				maxLive = live
			}
		}
		for a := 0; a < g.Kind.Arity(); a++ {
			arg := g.Args[a]
			remaining[arg]--
			if remaining[arg] == 0 && isComp(arg) && !outputs[arg] {
				live--
			}
		}
	}
	return maxLive
}
