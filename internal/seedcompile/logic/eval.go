package logic

import "fmt"

// Eval evaluates the net over 64 SIMD lanes at once: each input is a uint64
// whose bit l is the input's value in lane l; each output likewise. This is
// the reference semantics the DRAM functional simulator is checked against,
// and the fast path the property tests use.
//
// inputs maps input name -> lane bundle; missing inputs default to 0.
func (n *Net) Eval(inputs map[string]uint64) (map[string]uint64, error) {
	return n.evalWith(inputs, -1, 0)
}

// EvalFaulty evaluates the net like Eval but XORs flipMask into the value
// of faultNode right after it is computed, modeling a transient single-gate
// fault. The fault-injection tests use it to show that TMR voting masks any
// single replica-gate corruption.
func (n *Net) EvalFaulty(inputs map[string]uint64, faultNode NodeID, flipMask uint64) (map[string]uint64, error) {
	return n.evalWith(inputs, int(faultNode), flipMask)
}

func (n *Net) evalWith(inputs map[string]uint64, faultNode int, flipMask uint64) (map[string]uint64, error) {
	vals := make([]uint64, len(n.Gates))
	inIdx := make(map[string]int, len(n.InputNames))
	for i, name := range n.InputNames {
		if _, dup := inIdx[name]; dup {
			return nil, fmt.Errorf("logic: duplicate input name %q", name)
		}
		inIdx[name] = i
	}
	for name, v := range inputs {
		i, ok := inIdx[name]
		if !ok {
			return nil, fmt.Errorf("logic: unknown input %q", name)
		}
		vals[n.Inputs[i]] = v
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		switch g.Kind {
		case GInput:
			// preset above
		case GConst0:
			vals[i] = 0
		case GConst1:
			vals[i] = ^uint64(0)
		case GNot:
			vals[i] = ^vals[g.Args[0]]
		case GAnd:
			vals[i] = vals[g.Args[0]] & vals[g.Args[1]]
		case GOr:
			vals[i] = vals[g.Args[0]] | vals[g.Args[1]]
		case GXor:
			vals[i] = vals[g.Args[0]] ^ vals[g.Args[1]]
		case GMaj:
			a, b, c := vals[g.Args[0]], vals[g.Args[1]], vals[g.Args[2]]
			vals[i] = (a & b) | (b & c) | (a & c)
		default:
			return nil, fmt.Errorf("logic: gate %d has unknown kind %d", i, int(g.Kind))
		}
		if i == faultNode {
			vals[i] ^= flipMask
		}
	}
	out := make(map[string]uint64, len(n.Outputs))
	for i, o := range n.Outputs {
		out[n.OutputNames[i]] = vals[o]
	}
	return out, nil
}
