package logic

import "fmt"

// TMR returns a triple-modular-redundancy hardened version of a net that
// is already legalized for the gate set gs: every computation gate is
// triplicated into three structurally independent replicas (inputs and
// constants stay shared — they are host-supplied or architecturally
// maintained), and each output is the bitwise majority vote of its three
// replicas. A transient fault that corrupts any single intermediate value
// — one TRA result, one copied row — lands in exactly one replica and is
// outvoted; the unhardened net has no such slack.
//
// The vote is emitted as a native MAJ gate when gs has one (SIMDRAM), and
// as the and/or expansion maj(a,b,c) = (a&b)|(c&(a|b)) otherwise, so the
// result needs no re-legalization. Replicas are built without structural
// hashing: CSE would merge the three copies back into one and undo the
// redundancy.
//
// The protection boundary is the computation: the voter itself and the
// final read-out, like any TMR voter, remain single points of failure,
// and a corrupted shared input row is common-mode (it feeds all three
// replicas). See docs/RELIABILITY.md for the measured trade-offs.
func TMR(n *Net, gs GateSet) (*Net, error) {
	if err := n.CheckGateSet(gs); err != nil {
		return nil, fmt.Errorf("logic: TMR input %w", err)
	}
	out := &Net{
		InputNames:  append([]string(nil), n.InputNames...),
		OutputNames: append([]string(nil), n.OutputNames...),
	}
	add := func(kind GateKind, args ...NodeID) NodeID {
		g := Gate{Kind: kind, Args: [3]NodeID{None, None, None}}
		copy(g.Args[:], args)
		id := NodeID(len(out.Gates))
		out.Gates = append(out.Gates, g)
		return id
	}

	// rep[r][old] is replica r's node for the original node old. Shared
	// nodes (inputs, constants) map to the same id in all three replicas.
	var rep [3][]NodeID
	for r := range rep {
		rep[r] = make([]NodeID, len(n.Gates))
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		switch g.Kind {
		case GInput, GConst0, GConst1:
			id := add(g.Kind)
			for r := range rep {
				rep[r][i] = id
			}
		default:
			for r := range rep {
				args := make([]NodeID, g.Kind.Arity())
				for a := range args {
					args[a] = rep[r][g.Args[a]]
				}
				rep[r][i] = add(g.Kind, args...)
			}
		}
	}

	out.Inputs = make([]NodeID, len(n.Inputs))
	for i, in := range n.Inputs {
		out.Inputs[i] = rep[0][in]
	}

	vote := func(a, b, c NodeID) NodeID {
		if gs.Maj {
			return add(GMaj, a, b, c)
		}
		ab := add(GAnd, a, b)
		aob := add(GOr, a, b)
		return add(GOr, ab, add(GAnd, c, aob))
	}
	out.Outputs = make([]NodeID, len(n.Outputs))
	for i, o := range n.Outputs {
		a, b, c := rep[0][o], rep[1][o], rep[2][o]
		if a == b && b == c {
			// Shared node (input or constant passed through): no replicas
			// exist to disagree, so a vote would be dead weight.
			out.Outputs[i] = a
			continue
		}
		out.Outputs[i] = vote(a, b, c)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("logic: TMR produced invalid net: %w", err)
	}
	return out, nil
}
