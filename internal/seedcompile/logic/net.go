// Package logic defines the bit-sliced intermediate representation at the
// heart of CHOPPER: a net of 1-bit logic gates (AND/OR/NOT/XOR/MAJ plus
// constants), produced by bit-slicing the multi-bit dataflow graph and
// consumed by the PUD back-end.
//
// The package provides:
//
//   - the Net/Gate IR with structural hashing and constant folding (Builder);
//   - a synthesis library for multi-bit arithmetic over bit Words (ripple
//     adders, comparators, shifters, multipliers, multiplexers);
//   - functional evaluation of nets over 64-lane bundles (Eval), used
//     pervasively by the test suite;
//   - legalization rewrites restricting a net to the gate set a given PUD
//     architecture can execute natively.
package logic

import "fmt"

// GateKind enumerates gate types.
type GateKind uint8

const (
	GInput GateKind = iota // named 1-bit input (one bitslice of an operand)
	GConst0
	GConst1
	GNot
	GAnd
	GOr
	GXor
	GMaj
)

var gateNames = [...]string{"in", "const0", "const1", "not", "and", "or", "xor", "maj"}

func (k GateKind) String() string {
	if int(k) < len(gateNames) {
		return gateNames[k]
	}
	return fmt.Sprintf("gate?%d", int(k))
}

// Arity returns the number of arguments a gate kind takes.
func (k GateKind) Arity() int {
	switch k {
	case GInput, GConst0, GConst1:
		return 0
	case GNot:
		return 1
	case GAnd, GOr, GXor:
		return 2
	case GMaj:
		return 3
	}
	return 0
}

// NodeID indexes a gate within a Net. Gates are stored in topological order:
// every argument of gate i has id < i.
type NodeID int32

// None is the invalid node id.
const None NodeID = -1

// Gate is one node of the net.
type Gate struct {
	Kind GateKind
	Args [3]NodeID
}

// Net is a bit-level dataflow graph.
type Net struct {
	Gates []Gate

	// Inputs lists the GInput nodes in declaration order; InputNames gives
	// each one a stable name ("a[3]" = bit 3 of operand a).
	Inputs     []NodeID
	InputNames []string

	// Outputs lists the nodes whose values leave the net, with names.
	Outputs     []NodeID
	OutputNames []string
}

// NumGates returns the total gate count.
func (n *Net) NumGates() int { return len(n.Gates) }

// Counts tallies gates by kind.
func (n *Net) Counts() map[GateKind]int {
	m := make(map[GateKind]int)
	for i := range n.Gates {
		m[n.Gates[i].Kind]++
	}
	return m
}

// OpGates returns the number of "real" computation gates (everything except
// inputs and constants), the quantity that maps one-to-one onto in-DRAM
// computation steps.
func (n *Net) OpGates() int {
	c := 0
	for i := range n.Gates {
		switch n.Gates[i].Kind {
		case GInput, GConst0, GConst1:
		default:
			c++
		}
	}
	return c
}

// Fanout computes, for every node, how many gate arguments and outputs
// reference it. This is the "occurrence statistics" the OBS-1 scheduler
// ranks variables by.
func (n *Net) Fanout() []int {
	f := make([]int, len(n.Gates))
	for i := range n.Gates {
		g := &n.Gates[i]
		for a := 0; a < g.Kind.Arity(); a++ {
			f[g.Args[a]]++
		}
	}
	for _, o := range n.Outputs {
		f[o]++
	}
	return f
}

// Validate checks structural invariants: topological argument order, arity,
// and output references.
func (n *Net) Validate() error {
	for i := range n.Gates {
		g := &n.Gates[i]
		ar := g.Kind.Arity()
		for a := 0; a < ar; a++ {
			if g.Args[a] < 0 || int(g.Args[a]) >= i {
				return fmt.Errorf("logic: gate %d (%s) arg %d = %d violates topological order", i, g.Kind, a, g.Args[a])
			}
		}
	}
	for idx, o := range n.Outputs {
		if o < 0 || int(o) >= len(n.Gates) {
			return fmt.Errorf("logic: output %d (%s) references node %d of %d", idx, n.OutputNames[idx], o, len(n.Gates))
		}
	}
	if len(n.Outputs) != len(n.OutputNames) || len(n.Inputs) != len(n.InputNames) {
		return fmt.Errorf("logic: name/node count mismatch")
	}
	for _, in := range n.Inputs {
		if in < 0 || int(in) >= len(n.Gates) || n.Gates[in].Kind != GInput {
			return fmt.Errorf("logic: input list references non-input node %d", in)
		}
	}
	return nil
}

// DCE returns a copy of the net with gates unreachable from the outputs
// removed (inputs are always kept, preserving the input interface).
func (n *Net) DCE() *Net {
	live := make([]bool, len(n.Gates))
	var mark func(NodeID)
	mark = func(id NodeID) {
		if live[id] {
			return
		}
		live[id] = true
		g := &n.Gates[id]
		for a := 0; a < g.Kind.Arity(); a++ {
			mark(g.Args[a])
		}
	}
	for _, o := range n.Outputs {
		mark(o)
	}
	for _, in := range n.Inputs {
		live[in] = true
	}
	remap := make([]NodeID, len(n.Gates))
	out := &Net{
		InputNames:  append([]string(nil), n.InputNames...),
		OutputNames: append([]string(nil), n.OutputNames...),
	}
	for i := range n.Gates {
		if !live[i] {
			remap[i] = None
			continue
		}
		g := n.Gates[i]
		for a := 0; a < g.Kind.Arity(); a++ {
			g.Args[a] = remap[g.Args[a]]
		}
		remap[i] = NodeID(len(out.Gates))
		out.Gates = append(out.Gates, g)
	}
	out.Inputs = make([]NodeID, len(n.Inputs))
	for i, in := range n.Inputs {
		out.Inputs[i] = remap[in]
	}
	out.Outputs = make([]NodeID, len(n.Outputs))
	for i, o := range n.Outputs {
		out.Outputs[i] = remap[o]
	}
	return out
}

// String renders a compact summary.
func (n *Net) String() string {
	return fmt.Sprintf("net{gates=%d ops=%d in=%d out=%d}", len(n.Gates), n.OpGates(), len(n.Inputs), len(n.Outputs))
}
