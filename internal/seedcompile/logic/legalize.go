package logic

import (
	"fmt"

	"chopper/internal/isa"
)

// GateSet describes which computation gates an architecture executes
// natively (inputs and constants are always representable: constants live in
// the C-group rows).
type GateSet struct {
	And, Or, Not, Xor, Maj bool
}

// NativeGates returns the gate set of arch.
//
// Ambit exposes AND/OR (triple-row activation with a C-group control row)
// and NOT (dual-contact cells). ELP2IM implements the same logical gate set
// with cheaper row-buffer-level operations. SIMDRAM additionally programs
// the triple-row activation with three *data* operands, adding MAJ to the
// gate set — the source of its advantage on carry chains (a full-adder
// carry is one MAJ instead of four AND/OR gates). AND/OR remain native on
// SIMDRAM too: they are MAJ with a C-group control row, exactly as on
// Ambit.
func NativeGates(arch isa.Arch) GateSet {
	switch arch {
	case isa.Ambit, isa.ELP2IM:
		return GateSet{And: true, Or: true, Not: true}
	case isa.SIMDRAM:
		return GateSet{And: true, Or: true, Not: true, Maj: true}
	}
	panic(fmt.Sprintf("logic: unknown arch %v", arch))
}

// Legalize rewrites the net so that every computation gate belongs to the
// architecture's native gate set, preserving I/O names and semantics. The
// builder options control whether the rewrite may simplify as it goes (they
// should match the optimization level the net was built with, so the
// no-optimization compiler variant stays unoptimized).
func Legalize(n *Net, arch isa.Arch, opts BuilderOptions) (*Net, error) {
	return legalizeTwoPhase(n, arch, opts)
}

// legalizeTwoPhase performs the rewrite with inputs declared first so the
// rebuilt net keeps the original input order and names.
func legalizeTwoPhase(n *Net, arch isa.Arch, opts BuilderOptions) (*Net, error) {
	gs := NativeGates(arch)
	opts.Target = &gs
	b := NewBuilder(opts)
	remap := make([]NodeID, len(n.Gates))
	for i := range remap {
		remap[i] = None
	}
	for i, in := range n.Inputs {
		remap[in] = b.Input(n.InputNames[i])
	}
	for i := range n.Gates {
		if remap[i] != None {
			continue
		}
		g := &n.Gates[i]
		var id NodeID
		switch g.Kind {
		case GInput:
			return nil, fmt.Errorf("logic: input node %d not listed in Inputs", i)
		case GConst0:
			id = b.Const(false)
		case GConst1:
			id = b.Const(true)
		case GNot:
			id = b.Not(remap[g.Args[0]])
		case GAnd:
			x, y := remap[g.Args[0]], remap[g.Args[1]]
			if gs.And {
				id = b.And(x, y)
			} else {
				id = b.Maj(x, y, b.Const(false))
			}
		case GOr:
			x, y := remap[g.Args[0]], remap[g.Args[1]]
			if gs.Or {
				id = b.Or(x, y)
			} else {
				id = b.Maj(x, y, b.Const(true))
			}
		case GXor:
			x, y := remap[g.Args[0]], remap[g.Args[1]]
			switch {
			case gs.Xor:
				id = b.Xor(x, y)
			case gs.And:
				id = b.And(b.Or(x, y), b.Not(b.And(x, y)))
			default:
				or := b.Maj(x, y, b.Const(true))
				nand := b.Not(b.Maj(x, y, b.Const(false)))
				id = b.Maj(or, nand, b.Const(false))
			}
		case GMaj:
			x, y, z := remap[g.Args[0]], remap[g.Args[1]], remap[g.Args[2]]
			if gs.Maj {
				id = b.Maj(x, y, z)
			} else {
				id = b.Or(b.And(x, y), b.And(z, b.Or(x, y)))
			}
		default:
			return nil, fmt.Errorf("logic: gate %d has unknown kind %d", i, int(g.Kind))
		}
		remap[i] = id
	}
	for i, o := range n.Outputs {
		b.Output(n.OutputNames[i], remap[o])
	}
	out := b.Net()
	if err := out.CheckGateSet(gs); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckGateSet verifies every computation gate is native to gs.
func (n *Net) CheckGateSet(gs GateSet) error {
	for i := range n.Gates {
		ok := true
		switch n.Gates[i].Kind {
		case GAnd:
			ok = gs.And
		case GOr:
			ok = gs.Or
		case GNot:
			ok = gs.Not
		case GXor:
			ok = gs.Xor
		case GMaj:
			ok = gs.Maj
		}
		if !ok {
			return fmt.Errorf("logic: gate %d (%s) not in native gate set", i, n.Gates[i].Kind)
		}
	}
	return nil
}
