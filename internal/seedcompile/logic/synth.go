package logic

import "fmt"

// Word is a multi-bit value as a vector of net nodes, least-significant bit
// first. Words are what the bit-slicing pass manipulates: every arithmetic
// operation of the dataflow graph becomes a gate-level construction over
// Words.
type Word []NodeID

// InputWord declares a fresh w-bit input named base ("base[0]".."base[w-1]").
func (b *Builder) InputWord(base string, w int) Word {
	word := make(Word, w)
	for i := range word {
		word[i] = b.Input(fmt.Sprintf("%s[%d]", base, i))
	}
	return word
}

// ConstWord builds a w-bit constant word from the low bits of v.
func (b *Builder) ConstWord(v uint64, w int) Word {
	word := make(Word, w)
	for i := range word {
		word[i] = b.Const(v>>uint(i)&1 == 1)
	}
	return word
}

// ConstWordBig builds a constant word of arbitrary width from little-endian
// 64-bit limbs.
func (b *Builder) ConstWordBig(limbs []uint64, w int) Word {
	word := make(Word, w)
	for i := range word {
		var bit bool
		if li := i / 64; li < len(limbs) {
			bit = limbs[li]>>uint(i%64)&1 == 1
		}
		word[i] = b.Const(bit)
	}
	return word
}

// OutputWord registers every bit of word as outputs "base[i]".
func (b *Builder) OutputWord(base string, word Word) {
	for i, id := range word {
		b.Output(fmt.Sprintf("%s[%d]", base, i), id)
	}
}

// Extend returns word widened (zero- or sign-extended) or truncated to w bits.
func (b *Builder) Extend(x Word, w int, signed bool) Word {
	if len(x) == w {
		return x
	}
	out := make(Word, w)
	n := copy(out, x)
	fill := b.Const(false)
	if signed && len(x) > 0 {
		fill = x[len(x)-1]
	}
	for i := n; i < w; i++ {
		out[i] = fill
	}
	return out[:w]
}

// fullAdder returns (sum, carry) of three bits using the canonical
// XOR/MAJ decomposition; legalization maps these onto each architecture's
// native gate set later.
func (b *Builder) fullAdder(x, y, c NodeID) (sum, carry NodeID) {
	carry = b.Maj(x, y, c)
	sum = b.Xor(b.Xor(x, y), c)
	return sum, carry
}

// AddCarry returns x + y + cin as a word of max(len(x),len(y)) bits plus the
// carry-out bit. Operands of different widths are zero-extended.
func (b *Builder) AddCarry(x, y Word, cin NodeID) (Word, NodeID) {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	x = b.Extend(x, w, false)
	y = b.Extend(y, w, false)
	out := make(Word, w)
	c := cin
	for i := 0; i < w; i++ {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

// Add returns x + y modulo 2^w.
func (b *Builder) Add(x, y Word) Word {
	s, _ := b.AddCarry(x, y, b.Const(false))
	return s
}

// Sub returns x - y modulo 2^w (two's complement: x + ~y + 1).
func (b *Builder) Sub(x, y Word) Word {
	s, _ := b.SubBorrow(x, y)
	return s
}

// SubBorrow returns x - y and the final carry (1 = no borrow, i.e. x >= y
// for unsigned operands).
func (b *Builder) SubBorrow(x, y Word) (Word, NodeID) {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	x = b.Extend(x, w, false)
	y = b.Extend(y, w, false)
	ny := make(Word, w)
	for i := range ny {
		ny[i] = b.Not(y[i])
	}
	return b.AddCarry(x, ny, b.Const(true))
}

// Neg returns -x (two's complement).
func (b *Builder) Neg(x Word) Word {
	zero := b.ConstWord(0, len(x))
	return b.Sub(zero, x)
}

// Inc returns x + 1.
func (b *Builder) Inc(x Word) Word {
	s, _ := b.AddCarry(x, b.ConstWord(1, len(x)), b.Const(false))
	return s
}

// BitwiseAnd / BitwiseOr / BitwiseXor / BitwiseNot apply per-bit ops; widths
// must match after zero extension to the wider operand.
func (b *Builder) BitwiseAnd(x, y Word) Word { return b.bitwise2(x, y, b.And) }
func (b *Builder) BitwiseOr(x, y Word) Word  { return b.bitwise2(x, y, b.Or) }
func (b *Builder) BitwiseXor(x, y Word) Word { return b.bitwise2(x, y, b.Xor) }

func (b *Builder) bitwise2(x, y Word, f func(NodeID, NodeID) NodeID) Word {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	x = b.Extend(x, w, false)
	y = b.Extend(y, w, false)
	out := make(Word, w)
	for i := range out {
		out[i] = f(x[i], y[i])
	}
	return out
}

// BitwiseNot returns ~x.
func (b *Builder) BitwiseNot(x Word) Word {
	out := make(Word, len(x))
	for i := range out {
		out[i] = b.Not(x[i])
	}
	return out
}

// ShiftLeft returns x << k (constant shift: pure rewiring, no gates).
func (b *Builder) ShiftLeft(x Word, k int) Word {
	out := make(Word, len(x))
	zero := b.Const(false)
	for i := range out {
		if i-k >= 0 && i-k < len(x) {
			out[i] = x[i-k]
		} else {
			out[i] = zero
		}
	}
	return out
}

// ShiftRight returns x >> k, logical (constant shift).
func (b *Builder) ShiftRight(x Word, k int, signed bool) Word {
	out := make(Word, len(x))
	fill := b.Const(false)
	if signed && len(x) > 0 {
		fill = x[len(x)-1]
	}
	for i := range out {
		if i+k < len(x) {
			out[i] = x[i+k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// ShiftLeftDyn returns x << amt for a computed amount: a barrel shifter of
// log2(w) mux stages. Amounts >= len(x) yield zero.
func (b *Builder) ShiftLeftDyn(x, amt Word) Word {
	return b.barrel(x, amt, func(cur Word, k int) Word { return b.ShiftLeft(cur, k) }, b.Const(false))
}

// ShiftRightDyn returns x >> amt (logical) for a computed amount.
// Amounts >= len(x) yield zero.
func (b *Builder) ShiftRightDyn(x, amt Word) Word {
	return b.barrel(x, amt, func(cur Word, k int) Word { return b.ShiftRight(cur, k, false) }, b.Const(false))
}

// ShiftRightArithDyn returns x >> amt with sign fill for a computed
// amount; amounts >= len(x) yield all sign bits.
func (b *Builder) ShiftRightArithDyn(x, amt Word) Word {
	sign := b.Const(false)
	if len(x) > 0 {
		sign = x[len(x)-1]
	}
	return b.barrel(x, amt, func(cur Word, k int) Word { return b.ShiftRight(cur, k, true) }, sign)
}

// barrel applies the shared barrel-shifter structure: stage k muxes a
// fixed shift by 2^k under amt's bit k; amount bits addressing shifts of
// the full width or more select the fill value everywhere.
func (b *Builder) barrel(x, amt Word, step func(Word, int) Word, fill NodeID) Word {
	w := len(x)
	cur := x
	for k := 0; k < len(amt) && 1<<uint(k) < w; k++ {
		shifted := step(cur, 1<<uint(k))
		out := make(Word, w)
		for i := range out {
			out[i] = b.Mux(amt[k], shifted[i], cur[i])
		}
		cur = out
	}
	// Any set amount bit at or beyond the width selects the fill.
	over := b.Const(false)
	for k := 0; k < len(amt); k++ {
		if 1<<uint(k) >= w {
			over = b.Or(over, amt[k])
		}
	}
	out := make(Word, w)
	for i := range out {
		out[i] = b.Mux(over, fill, cur[i])
	}
	return out
}

// MuxWord returns c ? t : f per bit.
func (b *Builder) MuxWord(c NodeID, t, f Word) Word {
	w := len(t)
	if len(f) > w {
		w = len(f)
	}
	t = b.Extend(t, w, false)
	f = b.Extend(f, w, false)
	out := make(Word, w)
	for i := range out {
		out[i] = b.Mux(c, t[i], f[i])
	}
	return out
}

// Eq returns the single bit (x == y).
func (b *Builder) Eq(x, y Word) NodeID {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	x = b.Extend(x, w, false)
	y = b.Extend(y, w, false)
	acc := b.Const(true)
	for i := 0; i < w; i++ {
		acc = b.And(acc, b.Not(b.Xor(x[i], y[i])))
	}
	return acc
}

// Ne returns the single bit (x != y).
func (b *Builder) Ne(x, y Word) NodeID { return b.Not(b.Eq(x, y)) }

// LtU returns the single bit (x < y), unsigned: the borrow of x - y.
func (b *Builder) LtU(x, y Word) NodeID {
	_, carry := b.SubBorrow(x, y)
	return b.Not(carry)
}

// GeU returns x >= y unsigned.
func (b *Builder) GeU(x, y Word) NodeID {
	_, carry := b.SubBorrow(x, y)
	return carry
}

// GtU returns x > y unsigned.
func (b *Builder) GtU(x, y Word) NodeID { return b.LtU(y, x) }

// LeU returns x <= y unsigned.
func (b *Builder) LeU(x, y Word) NodeID { return b.GeU(y, x) }

// LtS returns x < y for two's-complement signed words of equal width.
func (b *Builder) LtS(x, y Word) NodeID {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	x = b.Extend(x, w, true)
	y = b.Extend(y, w, true)
	diff, carry := b.SubBorrow(x, y)
	// Signed less-than: sign(diff) XOR overflow.
	sx := x[w-1]
	sy := y[w-1]
	sd := diff[w-1]
	_ = carry
	// Overflow when operand signs differ and result sign != sign(x).
	ovf := b.And(b.Xor(sx, sy), b.Xor(sx, sd))
	return b.Xor(sd, ovf)
}

// Mul returns x * y truncated to w bits (shift-and-add; w defaults to
// len(x)+len(y) if w <= 0).
func (b *Builder) Mul(x, y Word, w int) Word {
	if w <= 0 {
		w = len(x) + len(y)
	}
	acc := b.ConstWord(0, w)
	for i := 0; i < len(y) && i < w; i++ {
		// partial = (x << i) & y[i]
		part := make(Word, w)
		zero := b.Const(false)
		for j := range part {
			if j-i >= 0 && j-i < len(x) {
				part[j] = b.And(x[j-i], y[i])
			} else {
				part[j] = zero
			}
		}
		acc = b.Add(acc, part)
	}
	return acc
}

// DivMod returns (x / y, x %% y) for unsigned words of equal width, as a
// restoring long divider: w iterations of shift-compare-subtract. Division
// by zero follows the RISC-V convention: quotient all-ones, remainder x.
func (b *Builder) DivMod(x, y Word) (q, r Word) {
	w := len(x)
	if len(y) > w {
		w = len(y)
	}
	x = b.Extend(x, w, false)
	y = b.Extend(y, w, false)
	q = make(Word, w)
	r = b.ConstWord(0, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		shifted := make(Word, w)
		shifted[0] = x[i]
		copy(shifted[1:], r[:w-1])
		diff, ge := b.SubBorrow(shifted, y) // ge=1 means shifted >= y
		r = b.MuxWord(ge, diff, shifted)
		q[i] = ge
	}
	return q, r
}

// PopCount returns the number of set bits of x as a word of ceil(log2(w))+1
// bits, built as a balanced adder tree.
func (b *Builder) PopCount(x Word) Word {
	if len(x) == 0 {
		return b.ConstWord(0, 1)
	}
	// Start with 1-bit words; pairwise add until one word remains.
	words := make([]Word, len(x))
	for i, bit := range x {
		words[i] = Word{bit}
	}
	for len(words) > 1 {
		var next []Word
		for i := 0; i+1 < len(words); i += 2 {
			a, c := words[i], words[i+1]
			w := len(a)
			if len(c) > w {
				w = len(c)
			}
			s, carry := b.AddCarry(b.Extend(a, w, false), b.Extend(c, w, false), b.Const(false))
			s = append(s, carry)
			next = append(next, s)
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	return words[0]
}

// AbsDiff returns |x - y| for unsigned words, synthesized as a single
// subtraction followed by a conditional negation (flip by the borrow and
// re-increment). This form keeps only one difference word live — half the
// buffering of the naive mux of both differences, which matters on PUD
// where every live bitslice is a DRAM row.
func (b *Builder) AbsDiff(x, y Word) Word {
	d, carry := b.SubBorrow(x, y) // carry=1 means x >= y (d is correct)
	nb := b.Not(carry)            // 1 means y > x: negate d
	flip := make(Word, len(d))
	for i := range d {
		flip[i] = b.Xor(d[i], nb)
	}
	// |x-y| = (d ^ broadcast(nb)) + nb  (two's-complement negate when nb).
	sum, _ := b.AddCarry(flip, b.ConstWord(0, len(d)), nb)
	return sum
}

// Min / Max over unsigned words.
func (b *Builder) MinU(x, y Word) Word { return b.MuxWord(b.LtU(x, y), x, y) }
func (b *Builder) MaxU(x, y Word) Word { return b.MuxWord(b.LtU(x, y), y, x) }
