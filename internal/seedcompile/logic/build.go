package logic

import "fmt"

// BuilderOptions control the local simplifications the Builder applies as
// gates are created. CHOPPER-bitslice (the no-optimization variant in the
// paper's breakdown) disables constant folding; structural hashing is part
// of bit-slicing itself (shared sub-expressions in the dataflow graph stay
// shared) and remains on in every variant.
type BuilderOptions struct {
	// Fold enables constant folding and algebraic identities
	// (x&0=0, x|1=1, ~~x=x, maj with constant arm, ...). This is the
	// builder-level half of OBS-2 "bit-sliced instruction selection":
	// exploiting bit-level patterns such as sparsity of constant operands.
	Fold bool
	// CSE enables structural hashing (identical gates share one node).
	CSE bool
	// Target, when non-nil, restricts fold rewrites to gates the target
	// architecture can execute; used when (re)building during
	// legalization so simplification never reintroduces foreign gates.
	Target *GateSet
}

// Builder constructs Nets incrementally.
type Builder struct {
	opts  BuilderOptions
	net   Net
	hash  map[gateKey]NodeID
	zero  NodeID
	one   NodeID
	nots  map[NodeID]NodeID // cached NOT of each node (for ~~x = x)
	notOf map[NodeID]NodeID // inverse: node -> the node it is the NOT of
}

type gateKey struct {
	kind GateKind
	a    [3]NodeID
}

// NewBuilder creates a builder with the given options.
func NewBuilder(opts BuilderOptions) *Builder {
	return &Builder{
		opts:  opts,
		hash:  make(map[gateKey]NodeID),
		zero:  None,
		one:   None,
		nots:  make(map[NodeID]NodeID),
		notOf: make(map[NodeID]NodeID),
	}
}

// NewOptBuilder returns a builder with all local simplifications enabled.
func NewOptBuilder() *Builder { return NewBuilder(BuilderOptions{Fold: true, CSE: true}) }

func (b *Builder) raw(kind GateKind, args ...NodeID) NodeID {
	g := Gate{Kind: kind}
	copy(g.Args[:], args)
	for i := len(args); i < 3; i++ {
		g.Args[i] = None
	}
	if b.opts.CSE && kind != GInput {
		key := gateKey{kind, g.Args}
		if id, ok := b.hash[key]; ok {
			return id
		}
		id := NodeID(len(b.net.Gates))
		b.net.Gates = append(b.net.Gates, g)
		b.hash[key] = id
		return id
	}
	id := NodeID(len(b.net.Gates))
	b.net.Gates = append(b.net.Gates, g)
	return id
}

// Input declares a fresh named input bit.
func (b *Builder) Input(name string) NodeID {
	id := b.raw(GInput)
	b.net.Inputs = append(b.net.Inputs, id)
	b.net.InputNames = append(b.net.InputNames, name)
	return id
}

// Const returns the constant node for v (shared).
func (b *Builder) Const(v bool) NodeID {
	if v {
		if b.one == None {
			b.one = b.raw(GConst1)
		}
		return b.one
	}
	if b.zero == None {
		b.zero = b.raw(GConst0)
	}
	return b.zero
}

func (b *Builder) allowAnd() bool { return b.opts.Target == nil || b.opts.Target.And }
func (b *Builder) allowOr() bool  { return b.opts.Target == nil || b.opts.Target.Or }

// isNotOf reports whether y is the negation of x (in either direction).
func (b *Builder) isNotOf(x, y NodeID) bool {
	if n, ok := b.notOf[x]; ok && n == y {
		return true
	}
	if n, ok := b.notOf[y]; ok && n == x {
		return true
	}
	return false
}

func (b *Builder) isConst(id NodeID) (val, ok bool) {
	switch b.net.Gates[id].Kind {
	case GConst0:
		return false, true
	case GConst1:
		return true, true
	}
	return false, false
}

// Not returns ~x.
func (b *Builder) Not(x NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			return b.Const(!v)
		}
		if orig, ok := b.notOf[x]; ok { // ~~y = y
			return orig
		}
		if n, ok := b.nots[x]; ok {
			return n
		}
	}
	id := b.raw(GNot, x)
	if b.opts.Fold {
		b.nots[x] = id
		b.notOf[id] = x
	}
	return id
}

// normalize2 orders commutative arguments for better CSE hits.
func normalize2(x, y NodeID) (NodeID, NodeID) {
	if y < x {
		return y, x
	}
	return x, y
}

// And returns x & y.
func (b *Builder) And(x, y NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			if !v {
				return b.Const(false)
			}
			return y
		}
		if v, ok := b.isConst(y); ok {
			if !v {
				return b.Const(false)
			}
			return x
		}
		if x == y {
			return x
		}
		if b.isNotOf(x, y) {
			return b.Const(false)
		}
	}
	x, y = normalize2(x, y)
	return b.raw(GAnd, x, y)
}

// Or returns x | y.
func (b *Builder) Or(x, y NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			if v {
				return b.Const(true)
			}
			return y
		}
		if v, ok := b.isConst(y); ok {
			if v {
				return b.Const(true)
			}
			return x
		}
		if x == y {
			return x
		}
		if b.isNotOf(x, y) {
			return b.Const(true)
		}
	}
	x, y = normalize2(x, y)
	return b.raw(GOr, x, y)
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(x); ok {
			if v {
				return b.Not(y)
			}
			return y
		}
		if v, ok := b.isConst(y); ok {
			if v {
				return b.Not(x)
			}
			return x
		}
		if x == y {
			return b.Const(false)
		}
		if b.isNotOf(x, y) {
			return b.Const(true)
		}
	}
	x, y = normalize2(x, y)
	return b.raw(GXor, x, y)
}

// Maj returns the 3-input majority MAJ(x, y, z).
func (b *Builder) Maj(x, y, z NodeID) NodeID {
	if b.opts.Fold {
		// A constant arm reduces majority to AND/OR (kept as MAJ when
		// the target architecture has no native AND/OR: a MAJ with a
		// C-group operand row *is* that architecture's AND/OR).
		if v, ok := b.isConst(x); ok {
			x, z = z, x
			_ = v
		} else if v, ok := b.isConst(y); ok {
			y, z = z, y
			_ = v
		}
		if v, ok := b.isConst(z); ok {
			if v && b.allowOr() {
				return b.Or(x, y)
			}
			if !v && b.allowAnd() {
				return b.And(x, y)
			}
			// Keep the constant in the last arm and fall through to
			// gate creation (identity folds below still apply).
		}
		if x == y {
			return x
		}
		if x == z {
			return x
		}
		if y == z {
			return y
		}
		// maj(x, ~x, z) = z
		if b.isNotOf(x, y) {
			return z
		}
		if b.isNotOf(x, z) {
			return y
		}
		if b.isNotOf(y, z) {
			return x
		}
	}
	// Sort all three for CSE (majority is fully symmetric).
	if y < x {
		x, y = y, x
	}
	if z < y {
		y, z = z, y
	}
	if y < x {
		x, y = y, x
	}
	return b.raw(GMaj, x, y, z)
}

// Mux returns c ? t : f, built from AND/OR/NOT.
func (b *Builder) Mux(c, t, f NodeID) NodeID {
	if b.opts.Fold {
		if v, ok := b.isConst(c); ok {
			if v {
				return t
			}
			return f
		}
		if t == f {
			return t
		}
	}
	return b.Or(b.And(c, t), b.And(b.Not(c), f))
}

// Output registers node id as a named output.
func (b *Builder) Output(name string, id NodeID) {
	if id < 0 || int(id) >= len(b.net.Gates) {
		panic(fmt.Sprintf("logic: output %q references invalid node %d", name, id))
	}
	b.net.Outputs = append(b.net.Outputs, id)
	b.net.OutputNames = append(b.net.OutputNames, name)
}

// Net finalizes and returns the constructed net. The builder must not be
// used afterwards.
func (b *Builder) Net() *Net {
	n := b.net
	b.net = Net{}
	return &n
}
